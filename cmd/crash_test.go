package cmd

import (
	"bufio"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe boots erisserve with the given extra flags and returns the
// process and its announced listen address. Output after the first line is
// drained in the background so the server never blocks on a full pipe.
func startServe(t *testing.T, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-machine", "single", "-workers", "4",
		"-keys", "65536",
	}, extra...)
	srv := exec.Command(tool(t, "erisserve"), args...)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		// A restart prints its recovery report before the listen line.
		if a, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = a
			break
		}
		if !strings.HasPrefix(line, "recovered from ") && !strings.HasPrefix(line, "metrics:") {
			srv.Process.Kill()
			t.Fatalf("unexpected erisserve line %q", line)
		}
	}
	if addr == "" {
		srv.Process.Kill()
		t.Fatalf("erisserve never announced its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return srv, addr
}

// TestErisserveKillDashNine is the end-to-end crash smoke: a -datadir
// -syncwrites erisserve takes an acked write workload, dies by SIGKILL
// mid-run (no drain, no final checkpoint — the workload sees its
// connections drop), restarts on the same directory, and every write that
// was acknowledged over the wire must still be there.
func TestErisserveKillDashNine(t *testing.T) {
	dataDir := t.TempDir()
	ackFile := filepath.Join(t.TempDir(), "acks.txt")

	srv, addr := startServe(t, "-datadir", dataDir, "-syncwrites", "-checkpoint", "50ms", "-preload", "0")

	// The workload runs for 4s but the server dies after ~1s of it; the
	// load tool tolerates the dropped connections and dumps what was acked.
	load := exec.Command(tool(t, "erisload"),
		"-remote", addr, "-ackfile", ackFile, "-dur", "4", "-conns", "2", "-workers", "4")
	loadOut := &strings.Builder{}
	load.Stdout, load.Stderr = loadOut, loadOut
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv.Wait()
	if err := load.Wait(); err != nil {
		t.Fatalf("erisload -ackfile: %v\n%s", err, loadOut)
	}
	if !strings.Contains(loadOut.String(), "keys recorded") {
		t.Fatalf("erisload ack report:\n%s", loadOut)
	}
	info, err := os.Stat(ackFile)
	if err != nil || info.Size() == 0 {
		t.Fatalf("ackfile empty or missing (err %v): the server died before anything was acked; output:\n%s", err, loadOut)
	}

	// Restart on the crashed directory and verify no acked write was lost.
	srv2, addr2 := startServe(t, "-datadir", dataDir, "-syncwrites")
	defer srv2.Process.Kill()
	out, err := exec.Command(tool(t, "erisload"),
		"-remote", addr2, "-ackfile", ackFile, "-verify").CombinedOutput()
	if err != nil {
		t.Fatalf("erisload -verify: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "acked writes survived") {
		t.Fatalf("verify report:\n%s", out)
	}

	// Clean shutdown of the restarted server must also succeed (its drain
	// checkpoint runs against the recovered state).
	if err := srv2.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() { werr <- srv2.Wait() }()
	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("restarted erisserve exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted erisserve did not drain within 60s of SIGINT")
	}
}
