// Package cmd holds end-to-end smoke tests for the command-line tools:
// each binary is built from source and executed for real, and the
// erisserve/erisload pair is exercised over an actual TCP connection.
package cmd

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildTools compiles every cmd/ binary once per test run into a shared
// temp dir and returns its path.
var buildTools = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "eris-cmd-smoke")
	if err != nil {
		return "", err
	}
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &exec.Error{Name: "go build ./cmd/...: " + string(out), Err: err}
	}
	return dir, nil
})

func tool(t *testing.T, name string) string {
	t.Helper()
	dir, err := buildTools()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, name)
}

func TestErisloadSmoke(t *testing.T) {
	out, err := exec.Command(tool(t, "erisload"),
		"-machine", "single", "-workers", "4", "-keys", "4096",
		"-dur", "0.0005", "-mix", "lookup").CombinedOutput()
	if err != nil {
		t.Fatalf("erisload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "lookup workload over 4096 keys") ||
		!strings.Contains(string(out), "routing:") {
		t.Fatalf("erisload output missing report:\n%s", out)
	}
}

func TestEristopSmoke(t *testing.T) {
	out, err := exec.Command(tool(t, "eristop"),
		"-machine", "single", "-workers", "4", "-keys", "16384",
		"-dur", "0.002", "-balancer", "oneshot", "-refresh", "100ms").CombinedOutput()
	if err != nil {
		t.Fatalf("eristop: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "--- final") {
		t.Fatalf("eristop never printed its final frame:\n%s", out)
	}
}

// TestErisserveRemoteSmoke boots erisserve on an ephemeral port, drives it
// with erisload -remote for each workload mix, shuts it down with SIGINT
// and checks the drain report.
func TestErisserveRemoteSmoke(t *testing.T) {
	srv := exec.Command(tool(t, "erisserve"),
		"-addr", "127.0.0.1:0", "-machine", "single", "-workers", "4",
		"-keys", "16384", "-balancer", "oneshot")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// First line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("erisserve printed nothing: %v", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		t.Fatalf("unexpected first line %q", line)
	}
	var rest strings.Builder
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
	}()

	for _, mix := range []string{"lookup", "upsert", "scan"} {
		out, err := exec.Command(tool(t, "erisload"),
			"-remote", addr, "-mix", mix, "-dur", "0.2", "-conns", "2", "-workers", "4").CombinedOutput()
		if err != nil {
			t.Fatalf("erisload -remote -mix %s: %v\n%s", mix, err, out)
		}
		if !strings.Contains(string(out), "remote "+addr) ||
			!strings.Contains(string(out), "0 errors, 0 connection errors") {
			t.Fatalf("erisload -remote -mix %s report:\n%s", mix, out)
		}
	}

	if err := srv.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() { werr <- srv.Wait() }()
	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("erisserve exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("erisserve did not drain within 60s of SIGINT")
	}
	<-drained
	tail := rest.String()
	if !strings.Contains(tail, "draining...") || !strings.Contains(tail, "served 6 connections") {
		t.Fatalf("erisserve drain report:\n%s", tail)
	}
	if !strings.Contains(tail, "0 bad frames") {
		t.Fatalf("erisserve saw protocol errors:\n%s", tail)
	}
}

// TestErisloadCheckSmoke boots a balancing erisserve and drives it with
// the erisload -check mode: a concurrent mixed workload is recorded through
// the history harness and verified for linearizability offline. The run
// must end with a clean verdict — any violation makes erisload exit
// non-zero with a dump path.
func TestErisloadCheckSmoke(t *testing.T) {
	srv := exec.Command(tool(t, "erisserve"),
		"-addr", "127.0.0.1:0", "-machine", "single", "-workers", "4",
		"-keys", "16384", "-balancer", "oneshot")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("erisserve printed nothing: %v", sc.Err())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "listening on ")
	if !ok {
		t.Fatalf("unexpected first line %q", sc.Text())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	out, err := exec.Command(tool(t, "erisload"),
		"-remote", addr, "-mix", "mixed", "-check", "-dur", "1",
		"-conns", "2", "-workers", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("erisload -check: %v\n%s", err, out)
	}
	report := string(out)
	if !strings.Contains(report, "history check: linearizable") {
		t.Fatalf("erisload -check report missing clean verdict:\n%s", report)
	}
	if !strings.Contains(report, "(0 dropped)") {
		t.Fatalf("erisload -check overflowed its event rings (coverage lost):\n%s", report)
	}
}

// TestErisserveOverloadSmoke boots erisserve with a tiny global admission
// budget and drives it with the erisload -overload scenario: shed requests
// must be tolerated and reported as a goodput/shed split rather than
// aborting the run, and the server's drain report must show the admission
// counters.
func TestErisserveOverloadSmoke(t *testing.T) {
	srv := exec.Command(tool(t, "erisserve"),
		"-addr", "127.0.0.1:0", "-machine", "single", "-workers", "4",
		"-keys", "16384", "-inflight", "2", "-deadline", "100ms")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("erisserve printed nothing: %v", sc.Err())
	}
	addr, ok := strings.CutPrefix(sc.Text(), "listening on ")
	if !ok {
		t.Fatalf("unexpected first line %q", sc.Text())
	}
	var rest strings.Builder
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
	}()

	out, err := exec.Command(tool(t, "erisload"),
		"-remote", addr, "-mix", "scan", "-dur", "0.3",
		"-conns", "2", "-workers", "16", "-overload", "-timeout", "3ms").CombinedOutput()
	if err != nil {
		t.Fatalf("erisload -overload: %v\n%s", err, out)
	}
	report := string(out)
	if !strings.Contains(report, "goodput") || !strings.Contains(report, "shed or expired") {
		t.Fatalf("erisload -overload report missing goodput/shed split:\n%s", report)
	}
	if !strings.Contains(report, "0 connection errors") {
		t.Fatalf("erisload -overload hit connection errors:\n%s", report)
	}

	if err := srv.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() { werr <- srv.Wait() }()
	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("erisserve exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("erisserve did not drain within 60s of SIGINT")
	}
	<-drained
	if !strings.Contains(rest.String(), "admission: ") {
		t.Fatalf("erisserve drain report missing admission counters:\n%s", rest.String())
	}
}
