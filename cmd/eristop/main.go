// Command eristop runs a skewed lookup workload on an ERIS engine and
// prints a live, top-like view of the system while the load balancer works:
// per-AEU operation counts, partition sizes and bounds, the busiest
// interconnect links, and the balancing cycles as they happen.
//
// Usage:
//
//	eristop [-machine amd] [-workers 16] [-keys 262144] [-dur 0.05]
//	        [-balancer oneshot] [-refresh 500ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"eris"
	"eris/internal/aeu"
	"eris/internal/command"
	"eris/internal/metrics"
	"eris/internal/workload"
)

func main() {
	machine := flag.String("machine", "amd", "simulated machine")
	workers := flag.Int("workers", 16, "AEU count (0 = all cores)")
	keys := flag.Uint64("keys", 1<<18, "key domain size")
	dur := flag.Float64("dur", 0.05, "workload duration in virtual seconds")
	balancer := flag.String("balancer", "oneshot", "balancing algorithm (oneshot, maN, empty = off)")
	refresh := flag.Duration("refresh", 500*time.Millisecond, "real-time refresh interval")
	flag.Parse()

	db, err := eris.Open(eris.Options{
		Machine: *machine, Workers: *workers,
		Balancer: *balancer, BalancerIntervalSec: *dur / 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	idx, err := db.CreateIndex("live", *keys)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.LoadDense(*keys, nil); err != nil {
		log.Fatal(err)
	}
	col, err := db.CreateColumn("readings")
	if err != nil {
		log.Fatal(err)
	}
	// Clustered values (position = value) so the periodic analytical scan
	// exercises the zone maps: its narrow predicate prunes most blocks.
	if err := col.LoadUniform(int64(*keys/8), func(w int, i int64) uint64 {
		return uint64(w)<<40 | uint64(i)
	}); err != nil {
		log.Fatal(err)
	}

	// Skewed workload: all lookups hit the first quarter of the domain,
	// with an occasional multicast column scan mixed in so the colscan
	// frame line has block-verdict traffic to report.
	hot := workload.HotRange{Lo: 0, Hi: *keys / 4}
	durSec := *dur
	scanPred := eris.PredBetween(1<<8, 1<<12)
	db.Engine().SetGenerators(func(i int) aeu.Generator {
		start := -1.0
		loops := 0
		buf := make([]uint64, 512)
		return aeu.GeneratorFunc(func(a *aeu.AEU) bool {
			if start < 0 {
				start = a.ClockNS()
			}
			if (a.ClockNS()-start)/1e9 >= durSec {
				return false
			}
			workload.FillBatch(hot, a.Rng, 0, buf)
			a.Outbox().RouteLookup(1, buf, command.NoReply, 0)
			if loops++; loops%16 == 0 {
				a.Outbox().RouteScan(2, scanPred, command.NoReply, 0)
			}
			return true
		})
	})
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}

	e := db.Engine()
	epoch := e.Machine().StartEpoch()
	prev := db.MetricsSnapshot()
	done := make(chan error, 1)
	go func() { done <- e.WaitVirtual(durSec, 10*time.Minute) }()

	frame := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				log.Fatal(err)
			}
			db.Close()
			prev = printFrame(db, prev, epoch, frame, true)
			return
		case <-time.After(*refresh):
			frame++
			prev = printFrame(db, prev, epoch, frame, false)
		}
	}
}

// printFrame renders one top frame from the interval delta between the
// previous metrics snapshot and now, returning the new snapshot.
func printFrame(db *eris.DB, prev metrics.Snapshot, epoch interface {
	Throughput() float64
	LinkBandwidthGBs() float64
	MCBandwidthGBs() float64
}, frame int, final bool) metrics.Snapshot {
	e := db.Engine()
	snap := db.MetricsSnapshot()
	delta := snap.Delta(prev)
	header := fmt.Sprintf("--- frame %d  t=%.4fs virtual  %.1f M ops/s  links %.1f GB/s  mem %.1f GB/s ---",
		frame, e.MinClockSec(), epoch.Throughput()/1e6, epoch.LinkBandwidthGBs(), epoch.MCBandwidthGBs())
	if final {
		header = "--- final " + header[4:]
	}
	fmt.Println(header)

	entries := e.Router().OwnerEntries(1)
	domain, _ := e.Domain(1)
	var maxDelta int64 = 1
	deltas := make([]int64, e.NumAEUs())
	for i := range deltas {
		deltas[i] = delta.Counter(fmt.Sprintf("aeu.%d.ops", i))
		if deltas[i] > maxDelta {
			maxDelta = deltas[i]
		}
	}
	for i, a := range e.AEUs() {
		lo := entries[i].Low
		hi := domain
		if i+1 < len(entries) {
			hi = entries[i+1].Low
		}
		bar := strings.Repeat("#", int(deltas[i]*30/maxDelta))
		fmt.Printf("AEU %2d  node %d  range [%7d,%7d)  %8d keys  +%-8d %s\n",
			a.ID, a.Node, lo, hi, a.Partition(1).SizeTuples(), deltas[i], bar)
	}
	fmt.Printf("routing: +%d inbox appends  +%d swaps  +%d overflows  +%d outbox flushes  +%d routed keys  link +%s  mem +%s\n",
		delta.SumCounters("routing.inbox.", ".appends"),
		delta.SumCounters("routing.inbox.", ".swaps"),
		delta.SumCounters("routing.inbox.", ".overflows"),
		delta.SumCounters("routing.outbox.", ".flushes"),
		delta.SumCounters("routing.outbox.", ".routed_keys"),
		fmtBytes(delta.Counter("machine.link_bytes_total")),
		fmtBytes(delta.Counter("machine.mc_bytes_total")))
	scanned := delta.SumCounters("aeu.", ".colscan.blocks_scanned")
	pruned := delta.SumCounters("aeu.", ".colscan.blocks_pruned")
	fullHit := delta.SumCounters("aeu.", ".colscan.blocks_full_hit")
	if scanned+pruned+fullHit > 0 {
		fmt.Printf("colscan: +%d blocks scanned  +%d pruned  +%d full-hit (%.0f%% untouched)\n",
			scanned, pruned, fullHit,
			100*float64(pruned+fullHit)/float64(scanned+pruned+fullHit))
	}
	if cycles := e.Balancer().Cycles(); len(cycles) > 0 {
		last := cycles[len(cycles)-1]
		fmt.Printf("balancer: %d cycles, last at t=%.4fs (%s, imbalance %.2f, ~%d tuples)\n",
			len(cycles), last.TimeSec, last.Algorithm, last.Imbalance, last.MovedEst)
	}
	fmt.Println()
	return snap
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
