// Command erisserve runs an ERIS engine and serves it over the eriswire
// TCP protocol. It creates a range index "kv" (bulk-loaded dense unless
// -preload 0) and, with -coltuples > 0, a column "values", then accepts
// connections until SIGINT/SIGTERM, drains them gracefully and prints the
// serving counters.
//
// Usage:
//
//	erisserve [-addr 127.0.0.1:0] [-machine intel] [-workers N]
//	          [-keys 1048576] [-preload -1] [-coltuples 0]
//	          [-balancer oneshot|maN] [-maxinflight 64]
//	          [-inflight 1024] [-deadline 0]
//	          [-datadir DIR] [-syncwrites] [-checkpoint 2s]
//
// With -datadir the engine write-ahead-logs every applied write and cuts
// periodic checkpoints into DIR; restarting erisserve on the same DIR
// recovers the objects and contents that were durable at the kill point
// (everything acked when -syncwrites is set), skipping the create/preload
// phase.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eris"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "TCP listen address (port 0 = ephemeral)")
	machine := flag.String("machine", "intel", "simulated machine: intel, amd, sgi, single")
	workers := flag.Int("workers", 0, "AEU count (0 = all cores)")
	keys := flag.Uint64("keys", 1<<20, "key domain of the \"kv\" index")
	preload := flag.Int64("preload", -1, "dense keys to bulk-load into \"kv\" (-1 = whole domain, 0 = none)")
	colTuples := flag.Int64("coltuples", 0, "tuples per worker of the \"values\" column (0 = no column)")
	balancer := flag.String("balancer", "", "load balancing algorithm (oneshot, maN; empty = off)")
	maxInFlight := flag.Int("maxinflight", 0, "per-connection in-flight request limit (0 = default)")
	inFlight := flag.Int("inflight", 0, "global admission budget across all connections (0 = default)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline for clients that send none (0 = unbounded)")
	metricsAddr := flag.String("metricsaddr", "", "serve live engine metrics as JSON on this address")
	faultSeed := flag.Int64("faultseed", 0, "enable deterministic fault injection with this seed")
	dataDir := flag.String("datadir", "", "durable data directory for WAL + checkpoints (empty = in-memory only)")
	syncWrites := flag.Bool("syncwrites", false, "with -datadir: ack writes only after their log records are fsynced")
	checkpoint := flag.Duration("checkpoint", 2*time.Second, "with -datadir: periodic checkpoint interval (0 = checkpoints only at start and close)")
	flag.Parse()

	db, err := eris.Open(eris.Options{
		Machine: *machine, Workers: *workers, Balancer: *balancer,
		ListenAddr: *addr, MaxInFlight: *maxInFlight,
		GlobalInFlight: *inFlight, DefaultDeadline: *deadline,
		MetricsAddr: *metricsAddr, FaultSeed: *faultSeed,
		DataDir: *dataDir, SyncWrites: *syncWrites, CheckpointEvery: *checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	if db.Recovered() {
		// The data directory held a previous instance's state: every object
		// (and its durable contents) is already loaded, so the create and
		// preload phase is skipped entirely.
		if _, err := db.Index("kv"); err != nil {
			log.Fatalf("recovered directory %s has no \"kv\" index: %v", *dataDir, err)
		}
		st := db.Durable().Stats()
		fmt.Printf("recovered from %s: replayed %d log records (%d bytes) in %.3fs\n",
			*dataDir, st.ReplayRecords, st.ReplayBytes, float64(st.RecoveryNS)/1e9)
	} else {
		idx, err := db.CreateIndex("kv", *keys)
		if err != nil {
			log.Fatal(err)
		}
		n := *preload
		if n < 0 || uint64(n) > *keys {
			n = int64(*keys)
		}
		if n > 0 {
			if err := idx.LoadDense(uint64(n), nil); err != nil {
				log.Fatal(err)
			}
		}
		if *colTuples > 0 {
			col, err := db.CreateColumn("values")
			if err != nil {
				log.Fatal(err)
			}
			if err := col.LoadUniform(*colTuples, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s\n", db.ServeAddr())
	if ma := db.MetricsListenAddr(); ma != "" {
		fmt.Printf("metrics: http://%s/metrics\n", ma)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("draining...")
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	snap := db.MetricsSnapshot()
	fmt.Printf("served %d connections, %d requests (%d responses, %d errors, %d bad frames)\n",
		snap.Counter("server.accepted"), snap.Counter("server.requests"),
		snap.Counter("server.responses"), snap.Counter("server.errors"),
		snap.Counter("server.bad_frames"))
	fmt.Printf("admission: %d admitted, %d shed, %d expired\n",
		snap.Counter("server.admitted"), snap.Counter("server.shed"),
		snap.Counter("server.expired"))
	if *dataDir != "" {
		st := db.Durable().Stats()
		fmt.Printf("durability: %d records logged (%d bytes), %d fsyncs, %d checkpoints\n",
			st.Records, st.BytesLogged, st.Fsyncs, st.Checkpoints)
	}
}
