// Command erisbench regenerates the ERIS paper's tables and figures on the
// simulated NUMA machines.
//
// Usage:
//
//	erisbench [-quick] [-scale N] [experiment ...]
//
// With no arguments it runs every experiment in paper order. Experiment IDs
// are listed with -list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"eris/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sizes/durations")
	scale := flag.Float64("scale", 0, "override the data scale-down factor (default 2048)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	metricsDir := flag.String("metricsdir", "", "write a <id>-metrics.json engine-metrics sidecar per experiment into this directory")
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-18s %s\n", e.ID, e.Paper)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	}
	params := bench.Params{Quick: *quick, Scale: *scale}
	for _, id := range ids {
		exp, err := bench.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s: %s\n", exp.ID, exp.Paper)
		start := time.Now()
		tables, err := exp.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		if runs := bench.TakeRunMetrics(); *metricsDir != "" && len(runs) > 0 {
			if err := writeMetricsSidecar(*metricsDir, exp.ID, runs); err != nil {
				fmt.Fprintf(os.Stderr, "%s: metrics sidecar: %v\n", exp.ID, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
	}
}

// writeMetricsSidecar stores the experiment's per-run engine metrics as
// <dir>/<id>-metrics.json next to the printed tables.
func writeMetricsSidecar(dir, id string, runs []bench.RunMetrics) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+"-metrics.json"), append(data, '\n'), 0o644)
}
