// Command erisvet is the engine's own multichecker: it runs the
// internal/analysis suite (atomicfield, hotpath, loopblock, counterlit,
// faulthook) over the module and exits non-zero on any finding. It sits
// next to `go vet` in CI and in scripts/vet.sh:
//
//	go run ./cmd/erisvet ./...
//
// Flags:
//
//	-only a,b   run only the named analyzers
//	-list       print the available analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eris/internal/analysis"
	"eris/internal/analysis/atomicfield"
	"eris/internal/analysis/counterlit"
	"eris/internal/analysis/faulthook"
	"eris/internal/analysis/hotpath"
	"eris/internal/analysis/loopblock"
)

// suite is every analyzer erisvet runs, in report order.
var suite = []*analysis.Analyzer{
	atomicfield.Analyzer,
	hotpath.Analyzer,
	loopblock.Analyzer,
	counterlit.Analyzer,
	faulthook.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "erisvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "erisvet: %v\n", err)
		os.Exit(2)
	}
	mod, err := analysis.LoadModule(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "erisvet: %v\n", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(mod, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "erisvet: %v\n", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "erisvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
