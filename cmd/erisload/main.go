// Command erisload drives a configurable lookup/upsert/scan workload
// against an ERIS engine through the public API and reports throughput and
// interconnect counters — a smoke/load-test tool for the storage engine.
//
// Usage:
//
//	erisload [-machine intel] [-workers N] [-keys 1048576] [-dur 0.002]
//	         [-mix lookup|upsert|scan] [-balancer oneshot|maN] [-hot 0.25]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"eris"
	"eris/internal/aeu"
	"eris/internal/core"
	"eris/internal/hwcounter"
	"eris/internal/workload"
)

func main() {
	machine := flag.String("machine", "intel", "simulated machine: intel, amd, sgi, single")
	workers := flag.Int("workers", 0, "AEU count (0 = all cores)")
	keys := flag.Uint64("keys", 1<<20, "key domain size")
	dur := flag.Float64("dur", 0.002, "measured virtual seconds")
	mix := flag.String("mix", "lookup", "workload: lookup, upsert, or scan")
	balancer := flag.String("balancer", "", "load balancing algorithm (oneshot, maN; empty = off)")
	hot := flag.Float64("hot", 0, "restrict lookups to the first fraction of the domain (0 = uniform)")
	metricsAddr := flag.String("metricsaddr", "", "serve live engine metrics as JSON on this address (e.g. 127.0.0.1:0)")
	flag.Parse()

	db, err := eris.Open(eris.Options{
		Machine: *machine, Workers: *workers,
		Balancer: *balancer, BalancerIntervalSec: *dur / 10,
		MetricsAddr: *metricsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const obj = 1
	var keygen workload.KeyGen = workload.Uniform{Domain: *keys}
	if *hot > 0 && *hot < 1 {
		keygen = workload.HotRange{Lo: 0, Hi: uint64(float64(*keys) * *hot)}
	}

	switch *mix {
	case "lookup", "upsert":
		idx, err := db.CreateIndex("bench", *keys)
		if err != nil {
			log.Fatal(err)
		}
		if *mix == "lookup" {
			if err := idx.LoadDense(*keys, nil); err != nil {
				log.Fatal(err)
			}
		}
		db.Engine().SetGenerators(func(i int) aeu.Generator {
			if *mix == "lookup" {
				return &core.LookupGenerator{Object: obj, Keys: keygen, Batch: 64, DurationSec: *dur * 3}
			}
			return &core.UpsertGenerator{Object: obj, Keys: keygen, Batch: 64, DurationSec: *dur * 3}
		})
	case "scan":
		col, err := db.CreateColumn("bench")
		if err != nil {
			log.Fatal(err)
		}
		per := int64(*keys) / int64(db.Engine().NumAEUs())
		if err := col.LoadUniform(per, nil); err != nil {
			log.Fatal(err)
		}
		db.Engine().SetGenerators(func(i int) aeu.Generator {
			return &core.SelfScanGenerator{Object: obj, Pred: eris.PredAll(), DurationSec: *dur * 3}
		})
	default:
		log.Fatalf("unknown mix %q", *mix)
	}

	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	if addr := db.MetricsListenAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	session := hwcounter.Start(db.Engine().Machine())
	before := db.MetricsSnapshot()
	start := time.Now()
	if err := db.Engine().WaitVirtual(*dur, 30*time.Minute); err != nil {
		log.Fatal(err)
	}
	report := session.Report()
	delta := db.MetricsSnapshot().Delta(before)
	db.Close()

	fmt.Printf("machine %s, %d AEUs, %s workload over %d keys\n",
		*machine, db.Engine().NumAEUs(), *mix, *keys)
	fmt.Print(report)
	fmt.Printf("routing: %d inbox appends, %d swaps, %d overflows, %d outbox flushes, %d routed keys\n",
		delta.SumCounters("routing.inbox.", ".appends"),
		delta.SumCounters("routing.inbox.", ".swaps"),
		delta.SumCounters("routing.inbox.", ".overflows"),
		delta.SumCounters("routing.outbox.", ".flushes"),
		delta.SumCounters("routing.outbox.", ".routed_keys"))
	if cycles := db.Engine().Balancer().Cycles(); len(cycles) > 0 {
		fmt.Printf("balancing cycles: %d\n", len(cycles))
	}
	fmt.Printf("(real time: %.1fs)\n", time.Since(start).Seconds())
}
