// Command erisload drives a configurable lookup/upsert/scan workload
// against an ERIS engine through the public API and reports throughput and
// interconnect counters — a smoke/load-test tool for the storage engine.
//
// With -remote addr it instead drives the workload over the eriswire
// protocol against a running erisserve: a connection pool of -conns
// pipelined connections shared by -workers goroutines issuing batches of
// 64 for -dur REAL seconds (in local mode -dur is virtual seconds).
//
// Usage:
//
//	erisload [-machine intel] [-workers N] [-keys 1048576] [-dur 0.002]
//	         [-mix lookup|upsert|scan] [-balancer oneshot|maN] [-hot 0.25]
//	erisload -remote 127.0.0.1:7807 [-conns 4] [-workers 16] [-dur 1]
//	         [-mix lookup|upsert|scan] [-hot 0.25] [-overload] [-timeout 5ms]
//	erisload -remote 127.0.0.1:7807 -ackfile acks.txt [-dur 2]
//	erisload -remote 127.0.0.1:7807 -ackfile acks.txt -verify
//
// The -ackfile pair is the kill -9 durability scenario: the first form
// runs a striped upsert workload against a -datadir erisserve and records
// every acknowledged write (a dropped connection — the server being
// killed — ends the run gracefully); after restarting the server on the
// same data directory, the -verify form checks every recorded write
// survived recovery.
//
// The -overload scenario stamps every request with a short deadline and
// disables retries so admission-control rejections surface; the report
// then shows goodput versus shed rate instead of failing on the first
// wire.ErrOverloaded.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"eris"
	"eris/internal/aeu"
	"eris/internal/client"
	"eris/internal/core"
	"eris/internal/histcheck"
	"eris/internal/history"
	"eris/internal/hwcounter"
	"eris/internal/metrics"
	"eris/internal/prefixtree"
	"eris/internal/wire"
	"eris/internal/workload"
)

func main() {
	machine := flag.String("machine", "intel", "simulated machine: intel, amd, sgi, single")
	workers := flag.Int("workers", 0, "AEU count; with -remote, load goroutines (0 = default)")
	keys := flag.Uint64("keys", 1<<20, "key domain size")
	dur := flag.Float64("dur", 0.002, "measured virtual seconds (real seconds with -remote)")
	mix := flag.String("mix", "lookup", "workload: lookup, upsert, or scan; with -remote also mixed (read-mostly lookup/upsert/delete)")
	balancer := flag.String("balancer", "", "load balancing algorithm (oneshot, maN; empty = off)")
	hot := flag.Float64("hot", 0, "restrict lookups to the first fraction of the domain (0 = uniform)")
	metricsAddr := flag.String("metricsaddr", "", "serve live engine metrics as JSON on this address (e.g. 127.0.0.1:0)")
	remote := flag.String("remote", "", "drive a running erisserve at this address instead of an in-process engine")
	conns := flag.Int("conns", 4, "pooled connections with -remote")
	overload := flag.Bool("overload", false, "with -remote: overload scenario — per-request deadlines, no retries, shed requests tolerated; reports goodput vs shed rate")
	timeout := flag.Duration("timeout", 0, "with -remote: per-request client timeout (0 = none; 5ms under -overload)")
	check := flag.Bool("check", false, "with -remote: record every operation and verify the history is linearizable after the run; violations dump to results/")
	checkRing := flag.Int("checkring", 1<<16, "with -check: per-worker event ring capacity (overflow drops coverage, never soundness)")
	scanScen := flag.Bool("scan", false, "analytical scan scenario: selectivity sweep (0.1%/1%/10%/100%) reporting scan goodput and zone-map block pruning")
	serverMetrics := flag.String("servermetrics", "", "with -remote -scan: the server's -metricsaddr endpoint (host:port) to read colscan.* block counters from")
	ackFile := flag.String("ackfile", "", "with -remote: run a striped upsert workload recording every acknowledged write to this file; a dropped connection (server killed) ends the worker without failing the run")
	verify := flag.Bool("verify", false, "with -remote -ackfile: look up every recorded acked write and exit non-zero if any is missing or older than its acked value")
	flag.Parse()

	if *verify {
		if *remote == "" || *ackFile == "" {
			log.Fatal("-verify requires -remote and -ackfile")
		}
		runVerify(*remote, *conns, *ackFile)
		return
	}
	if *ackFile != "" {
		if *remote == "" {
			log.Fatal("-ackfile requires -remote")
		}
		runAcked(*remote, *conns, *workers, *dur, *ackFile)
		return
	}

	if *scanScen {
		if *remote != "" {
			runRemoteScanSweep(*remote, *conns, *workers, *dur, *serverMetrics)
		} else {
			runLocalScanSweep(*machine, *workers, *keys, *metricsAddr)
		}
		return
	}

	if *remote != "" {
		runRemote(*remote, *conns, *workers, *dur, *mix, *hot, *overload, *timeout, *check, *checkRing)
		return
	}
	if *check {
		log.Fatal("-check requires -remote: history recording wraps the wire client")
	}

	db, err := eris.Open(eris.Options{
		Machine: *machine, Workers: *workers,
		Balancer: *balancer, BalancerIntervalSec: *dur / 10,
		MetricsAddr: *metricsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const obj = 1
	var keygen workload.KeyGen = workload.Uniform{Domain: *keys}
	if *hot > 0 && *hot < 1 {
		keygen = workload.HotRange{Lo: 0, Hi: uint64(float64(*keys) * *hot)}
	}

	switch *mix {
	case "lookup", "upsert":
		idx, err := db.CreateIndex("bench", *keys)
		if err != nil {
			log.Fatal(err)
		}
		if *mix == "lookup" {
			if err := idx.LoadDense(*keys, nil); err != nil {
				log.Fatal(err)
			}
		}
		db.Engine().SetGenerators(func(i int) aeu.Generator {
			if *mix == "lookup" {
				return &core.LookupGenerator{Object: obj, Keys: keygen, Batch: 64, DurationSec: *dur * 3}
			}
			return &core.UpsertGenerator{Object: obj, Keys: keygen, Batch: 64, DurationSec: *dur * 3}
		})
	case "scan":
		col, err := db.CreateColumn("bench")
		if err != nil {
			log.Fatal(err)
		}
		per := int64(*keys) / int64(db.Engine().NumAEUs())
		if err := col.LoadUniform(per, nil); err != nil {
			log.Fatal(err)
		}
		db.Engine().SetGenerators(func(i int) aeu.Generator {
			return &core.SelfScanGenerator{Object: obj, Pred: eris.PredAll(), DurationSec: *dur * 3}
		})
	default:
		log.Fatalf("unknown mix %q", *mix)
	}

	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	if addr := db.MetricsListenAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	session := hwcounter.Start(db.Engine().Machine())
	before := db.MetricsSnapshot()
	start := time.Now()
	if err := db.Engine().WaitVirtual(*dur, 30*time.Minute); err != nil {
		log.Fatal(err)
	}
	report := session.Report()
	delta := db.MetricsSnapshot().Delta(before)
	db.Close()

	fmt.Printf("machine %s, %d AEUs, %s workload over %d keys\n",
		*machine, db.Engine().NumAEUs(), *mix, *keys)
	fmt.Print(report)
	fmt.Printf("routing: %d inbox appends, %d swaps, %d overflows, %d outbox flushes, %d routed keys\n",
		delta.SumCounters("routing.inbox.", ".appends"),
		delta.SumCounters("routing.inbox.", ".swaps"),
		delta.SumCounters("routing.inbox.", ".overflows"),
		delta.SumCounters("routing.outbox.", ".flushes"),
		delta.SumCounters("routing.outbox.", ".routed_keys"))
	if cycles := db.Engine().Balancer().Cycles(); len(cycles) > 0 {
		fmt.Printf("balancing cycles: %d\n", len(cycles))
	}
	fmt.Printf("(real time: %.1fs)\n", time.Since(start).Seconds())
}

// sweepFracs are the selectivity points of the -scan scenario.
var sweepFracs = []float64{0.001, 0.01, 0.1, 1.0}

// runLocalScanSweep drives the analytical scan scenario against an
// in-process engine: a column bulk-loaded with clustered values (value =
// global position, so block value ranges are tight and a selectivity
// threshold is also a prunable range), then a selectivity sweep of
// multicast scans reporting goodput and the zone-map block outcomes.
func runLocalScanSweep(machine string, workers int, keys uint64, metricsAddr string) {
	db, err := eris.Open(eris.Options{Machine: machine, Workers: workers, MetricsAddr: metricsAddr})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateColumn("bench")
	if err != nil {
		log.Fatal(err)
	}
	per := int64(keys) / int64(db.Engine().NumAEUs())
	total := uint64(per) * uint64(db.Engine().NumAEUs())
	if err := col.LoadUniform(per, func(worker int, i int64) uint64 {
		return uint64(int64(worker)*per + i)
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	if addr := db.MetricsListenAddr(); addr != "" {
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}

	const scansPerPoint = 64
	fmt.Printf("local scan sweep: machine %s, %d AEUs, %d clustered tuples, %d scans per point\n",
		machine, db.Engine().NumAEUs(), total, scansPerPoint)
	fmt.Printf("%-8s %10s %14s %16s %9s %9s %9s %10s\n",
		"sel", "scans/s", "matched/scan", "tuples/s", "scanned", "pruned", "full-hit", "untouched")
	for _, frac := range sweepFracs {
		pred := eris.PredLess(uint64(float64(total) * frac))
		if frac >= 1 {
			pred = eris.PredAll()
		}
		before := db.MetricsSnapshot()
		start := time.Now()
		var matched uint64
		for i := 0; i < scansPerPoint; i++ {
			res, err := col.Scan(pred)
			if err != nil {
				log.Fatal(err)
			}
			matched = res.Matched
		}
		elapsed := time.Since(start).Seconds()
		delta := db.MetricsSnapshot().Delta(before)
		printSweepPoint(frac, scansPerPoint, elapsed, matched, delta)
	}
}

// runRemoteScanSweep runs the selectivity sweep over eriswire against a
// running erisserve with a column (-coltuples > 0). The server's default
// column values are hash-uniform over the full 64-bit domain, so the
// thresholds scale fractions of that domain; when serverMetrics names the
// server's -metricsaddr endpoint, the per-point zone-map block outcomes are
// read from it (uniform values leave nothing to prune — the sweep makes
// that visible rather than hiding it).
func runRemoteScanSweep(addr string, conns, workers int, durSec float64, serverMetrics string) {
	if workers <= 0 {
		workers = 2 * conns
	}
	if durSec <= 0.01 {
		durSec = 0.5 // the -dur default targets virtual seconds; a sweep point needs real time
	}
	pool, err := client.NewPool(addr, conns, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	var obj wire.ObjectInfo
	found := false
	for _, o := range pool.Get().Objects() {
		if o.Kind == wire.KindColumn {
			obj, found = o, true
			break
		}
	}
	if !found {
		log.Fatalf("server at %s exports no column; start erisserve with -coltuples > 0", addr)
	}

	fmt.Printf("remote scan sweep: %s, column %q, %d conns, %d workers, %.2fs per point\n",
		addr, obj.Name, pool.Size(), workers, durSec)
	fmt.Printf("%-8s %10s %14s %16s %9s %9s %9s %10s\n",
		"sel", "scans/s", "matched/scan", "tuples/s", "scanned", "pruned", "full-hit", "untouched")
	for _, frac := range sweepFracs {
		pred := eris.PredLess(uint64(float64(1<<63) * frac * 2))
		if frac >= 1 {
			pred = eris.PredAll()
		}
		before := fetchServerMetrics(serverMetrics)
		var scans, matched atomic.Uint64
		deadline := time.Now().Add(time.Duration(durSec * float64(time.Second)))
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					agg, err := pool.Get().ColScan(obj.ID, pred)
					if err != nil {
						errc <- err
						return
					}
					scans.Add(1)
					matched.Store(agg.Matched)
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errc:
			log.Fatalf("remote scan sweep: %v", err)
		default:
		}
		delta := fetchServerMetrics(serverMetrics).Delta(before)
		printSweepPoint(frac, int(scans.Load()), durSec, matched.Load(), delta)
	}
	if serverMetrics == "" {
		fmt.Println("block outcomes n/a: pass -servermetrics <erisserve -metricsaddr> to read server colscan.* counters")
	}
}

// fetchServerMetrics reads a metrics snapshot from an erisserve
// -metricsaddr endpoint; with no endpoint configured it returns an empty
// snapshot (the sweep then reports goodput only).
func fetchServerMetrics(addr string) metrics.Snapshot {
	if addr == "" {
		return metrics.Snapshot{}
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatalf("fetch server metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatalf("decode server metrics: %v", err)
	}
	return snap
}

// printSweepPoint renders one selectivity point of the sweep table.
func printSweepPoint(frac float64, scans int, elapsed float64, matched uint64, delta metrics.Snapshot) {
	scanned := delta.SumCounters("aeu.", ".colscan.blocks_scanned")
	pruned := delta.SumCounters("aeu.", ".colscan.blocks_pruned")
	fullHit := delta.SumCounters("aeu.", ".colscan.blocks_full_hit")
	untouched := "n/a"
	if total := scanned + pruned + fullHit; total > 0 {
		untouched = fmt.Sprintf("%.1f%%", 100*float64(pruned+fullHit)/float64(total))
	}
	fmt.Printf("%-8s %10.0f %14d %16.0f %9d %9d %9d %10s\n",
		fmt.Sprintf("%g%%", frac*100), float64(scans)/elapsed, matched,
		float64(scans)*float64(matched)/elapsed, scanned, pruned, fullHit, untouched)
}

// runAcked drives the durability workload for the kill -9 scenario: each
// worker upserts only its own key stripe (key ≡ worker mod workers) with
// per-worker strictly increasing values, so the latest acknowledged value
// of every key is well defined without cross-worker coordination. Acked
// writes are recorded and written to ackFile at the end; a connection
// error — the server being killed is the point of the scenario — stops
// that worker but keeps everything it had acked. A later -verify run
// replays the file against the restarted server.
func runAcked(addr string, conns, workers int, durSec float64, ackFile string) {
	if workers <= 0 {
		workers = 2 * conns
	}
	pool, err := client.NewPool(addr, conns, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	var obj wire.ObjectInfo
	found := false
	for _, o := range pool.Get().Objects() {
		if o.Kind == wire.KindIndex {
			obj, found = o, true
			break
		}
	}
	if !found {
		log.Fatalf("server at %s exports no index object", addr)
	}
	if obj.Domain < uint64(2*workers) {
		log.Fatalf("domain %d too small for %d striped workers", obj.Domain, workers)
	}

	const batch = 16
	acked := make([]map[uint64]uint64, workers)
	var dropped atomic.Uint64
	deadline := time.Now().Add(time.Duration(durSec * float64(time.Second)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acked[w] = make(map[uint64]uint64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			c := pool.Get()
			kvs := make([]prefixtree.KV, batch)
			seq := uint64(0)
			for time.Now().Before(deadline) {
				for i := range kvs {
					k := rng.Uint64() % obj.Domain
					k -= k % uint64(workers)
					k += uint64(w)
					if k >= obj.Domain {
						k -= uint64(workers)
					}
					seq++
					kvs[i] = prefixtree.KV{Key: k, Value: seq}
				}
				if err := c.Upsert(obj.ID, kvs); err != nil {
					// No ack: the write may or may not have landed, either is
					// fine after recovery. Keep what WAS acked and stop.
					dropped.Add(1)
					return
				}
				for _, kv := range kvs {
					if kv.Value > acked[w][kv.Key] {
						acked[w][kv.Key] = kv.Value
					}
				}
			}
		}(w)
	}
	wg.Wait()

	f, err := os.Create(ackFile)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	total := 0
	for _, m := range acked {
		for k, v := range m {
			fmt.Fprintf(bw, "%d %d\n", k, v)
			total++
		}
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acked workload on %q: %d keys recorded to %s (%d workers, %d connections dropped)\n",
		obj.Name, total, ackFile, workers, dropped.Load())
}

// runVerify checks an ackfile against a (typically restarted) server:
// every recorded key must be present with a value at least as new as the
// one acked — a later unacked write by the same worker may legitimately
// have survived, an older or missing value means a lost acknowledged
// write. Exits non-zero on the first summary of losses.
func runVerify(addr string, conns int, ackFile string) {
	want := make(map[uint64]uint64)
	f, err := os.Open(ackFile)
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var k, v uint64
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &k, &v); err != nil {
			log.Fatalf("bad ackfile line %q: %v", sc.Text(), err)
		}
		if v > want[k] {
			want[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	f.Close()

	pool, err := client.NewPool(addr, conns, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	var obj wire.ObjectInfo
	found := false
	for _, o := range pool.Get().Objects() {
		if o.Kind == wire.KindIndex {
			obj, found = o, true
			break
		}
	}
	if !found {
		log.Fatalf("server at %s exports no index object", addr)
	}

	keys := make([]uint64, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	missing, stale := 0, 0
	for off := 0; off < len(keys); off += 64 {
		end := off + 64
		if end > len(keys) {
			end = len(keys)
		}
		kvs, err := pool.Get().Lookup(obj.ID, keys[off:end])
		if err != nil {
			log.Fatalf("verify lookup: %v", err)
		}
		got := make(map[uint64]uint64, len(kvs))
		for _, kv := range kvs {
			got[kv.Key] = kv.Value
		}
		for _, k := range keys[off:end] {
			v, ok := got[k]
			switch {
			case !ok:
				missing++
			case v < want[k]:
				stale++
			}
		}
	}
	if missing > 0 || stale > 0 {
		log.Fatalf("verify %q: LOST ACKED WRITES — %d of %d keys missing, %d older than acked", obj.Name, missing, len(want), stale)
	}
	fmt.Printf("verify %q: all %d acked writes survived\n", obj.Name, len(want))
}

// runRemote drives the workload over eriswire against a running erisserve.
// The key domain comes from the server's handshake object table, so the
// client needs no -keys flag; lookup/upsert target the first index object,
// scan targets the first column (or falls back to index range scans).
//
// With overload set, every request carries a short deadline and retries
// are disabled, so server rejections (wire.ErrOverloaded) and expiries
// surface directly; they are counted as shed work instead of aborting the
// run, and the report shows goodput versus shed rate.
//
// With check set, every operation is recorded into a per-worker history log
// (plain ring-buffer appends — the verification itself runs offline after
// the workload quiesced) and the history is checked for linearizability
// against the sequential map model. The server's pre-existing contents are
// unknown to the client, so keys start in the "unknown" state and the first
// linearized read pins them. Violations dump a minimized reproducer to
// results/ and the run exits non-zero.
func runRemote(addr string, conns, workers int, durSec float64, mix string, hot float64, overload bool, timeout time.Duration, check bool, checkRing int) {
	if workers <= 0 {
		workers = 2 * conns
	}
	reg := metrics.NewRegistry()
	opts := client.Options{Metrics: reg, DefaultTimeout: timeout}
	if overload {
		if opts.DefaultTimeout == 0 {
			opts.DefaultTimeout = 5 * time.Millisecond
		}
		opts.OverloadRetries = -1 // count every rejection instead of hiding it behind retries
	}
	pool, err := client.NewPool(addr, conns, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	wantKind := wire.KindIndex
	if mix == "scan" {
		wantKind = wire.KindColumn
	}
	var obj wire.ObjectInfo
	found := false
	for _, o := range pool.Get().Objects() {
		if o.Kind == wantKind {
			obj, found = o, true
			break
		}
	}
	if !found && mix == "scan" {
		// No column on the server: scan the first index by range instead.
		for _, o := range pool.Get().Objects() {
			if o.Kind == wire.KindIndex {
				obj, found = o, true
				break
			}
		}
	}
	if !found {
		log.Fatalf("server at %s exports no suitable object for mix %q", addr, mix)
	}

	var keygen workload.KeyGen = workload.Uniform{Domain: obj.Domain}
	if hot > 0 && hot < 1 {
		keygen = workload.HotRange{Lo: 0, Hi: uint64(float64(obj.Domain) * hot)}
	}

	var rec *history.Recorder
	if check {
		rec = history.New(workers, checkRing)
	}

	const batch = 64
	var ops, tuples, shed atomic.Uint64
	deadline := time.Now().Add(time.Duration(durSec * float64(time.Second)))
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			keyBuf := make([]uint64, batch)
			kvBuf := make([]prefixtree.KV, batch)
			// With check, the worker binds one connection and records through
			// it; the log is single-goroutine, like the connection.
			var wc *history.WireClient
			if check {
				wc = history.NewWireClient(pool.Get(), obj.ID, rec.Client(w))
			}
			ctx := context.Background()
			for time.Now().Before(deadline) {
				c := pool.Get()
				var err error
				switch mix {
				case "lookup":
					for i := range keyBuf {
						keyBuf[i] = keygen.Key(rng, 0)
					}
					var kvs []prefixtree.KV
					if wc != nil {
						kvs, err = wc.Lookup(ctx, keyBuf)
					} else {
						kvs, err = c.Lookup(obj.ID, keyBuf)
					}
					tuples.Add(uint64(len(kvs)))
				case "upsert":
					for i := range kvBuf {
						kvBuf[i] = prefixtree.KV{Key: keygen.Key(rng, 0), Value: uint64(rng.Int63())}
					}
					if wc != nil {
						err = wc.Upsert(ctx, kvBuf)
					} else {
						err = c.Upsert(obj.ID, kvBuf)
					}
					tuples.Add(batch)
				case "mixed":
					// Read-mostly mix over one object so the checker has
					// writes to order against reads: 2/8 upsert, 1/8 delete.
					switch rng.Intn(8) {
					case 0, 1:
						for i := range kvBuf {
							kvBuf[i] = prefixtree.KV{Key: keygen.Key(rng, 0), Value: uint64(rng.Int63())}
						}
						if wc != nil {
							err = wc.Upsert(ctx, kvBuf)
						} else {
							err = c.Upsert(obj.ID, kvBuf)
						}
						tuples.Add(batch)
					case 2:
						for i := range keyBuf {
							keyBuf[i] = keygen.Key(rng, 0)
						}
						if wc != nil {
							err = wc.Delete(ctx, keyBuf[:8])
						} else {
							err = c.Delete(obj.ID, keyBuf[:8])
						}
						tuples.Add(8)
					default:
						for i := range keyBuf {
							keyBuf[i] = keygen.Key(rng, 0)
						}
						var kvs []prefixtree.KV
						if wc != nil {
							kvs, err = wc.Lookup(ctx, keyBuf)
						} else {
							kvs, err = c.Lookup(obj.ID, keyBuf)
						}
						tuples.Add(uint64(len(kvs)))
					}
				case "scan":
					var agg client.ScanAggregate
					if obj.Kind == wire.KindColumn {
						if wc != nil {
							agg, err = wc.ColScan(ctx, eris.PredAll())
						} else {
							agg, err = c.ColScan(obj.ID, eris.PredAll())
						}
					} else {
						lo := keygen.Key(rng, 0)
						if wc != nil {
							agg, err = wc.ScanRange(ctx, lo, lo+999, eris.PredAll())
						} else {
							agg, err = c.ScanRange(obj.ID, lo, lo+999, eris.PredAll())
						}
					}
					tuples.Add(agg.Matched)
				default:
					log.Fatalf("unknown mix %q", mix)
				}
				if err != nil {
					if overload && (errors.Is(err, wire.ErrOverloaded) || errors.Is(err, wire.ErrDeadlineExceeded)) {
						shed.Add(1)
						continue
					}
					errc <- err
					return
				}
				ops.Add(1)
			}
		}(w, int64(w)+1)
	}
	wg.Wait()
	select {
	case err := <-errc:
		log.Fatalf("remote workload: %v", err)
	default:
	}

	snap := reg.Snapshot()
	n := ops.Load()
	fmt.Printf("remote %s: %s workload on object %q (domain %d), %d conns, %d workers\n",
		addr, mix, obj.Name, obj.Domain, pool.Size(), workers)
	fmt.Printf("%d batches (%d tuples) in %.2fs: %.0f batch/s, %.0f tuple/s\n",
		n, tuples.Load(), durSec, float64(n)/durSec, float64(tuples.Load())/durSec)
	fmt.Printf("client: %d requests, %d errors, %d connection errors\n",
		snap.Counter("client.requests"), snap.Counter("client.errors"),
		snap.Counter("client.conn_errors"))
	if overload {
		good, rejected := n, shed.Load()
		total := good + rejected
		pct := func(x uint64) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(x) / float64(total)
		}
		fmt.Printf("overload: %d/%d batches served (%.1f%% goodput), %d shed or expired (%.1f%%), timeout %s\n",
			good, total, pct(good), rejected, pct(rejected), opts.DefaultTimeout)
		fmt.Printf("overload client counters: %d overloaded replies, %d timeouts, %d retries\n",
			snap.Counter("client.overloaded"), snap.Counter("client.timeouts"),
			snap.Counter("client.retries"))
	}

	if check {
		verifyHistory(rec, mix, obj)
	}
}

// verifyHistory runs the offline linearizability check over a recorded
// remote workload and reports (or dumps and dies on) the outcome.
func verifyHistory(rec *history.Recorder, mix string, obj wire.ObjectInfo) {
	opts := histcheck.Options{
		// The server's pre-existing contents are unknown: the first
		// linearized read of each key pins its start state.
		DefaultUnknown: true,
		// A scan-only run performs no column writes, so every column scan
		// with the same predicate must observe the identical aggregate no
		// matter how blocks migrate meanwhile.
		ColumnStatic: mix == "scan" && obj.Kind == wire.KindColumn,
	}
	start := time.Now()
	res := histcheck.Check(rec, opts)
	fmt.Printf("history check: %d events (%d dropped), %d point ops, %d scans, %d column scans verified in %.2fs\n",
		rec.Len(), res.Dropped, res.Ops, res.Scans, res.ColScans, time.Since(start).Seconds())
	if res.Dropped > 0 {
		fmt.Printf("history check: %d events overflowed the ring (coverage lost, soundness kept); raise -checkring\n", res.Dropped)
	}
	if len(res.Violations) > 0 {
		path, werr := histcheck.WriteViolations("results", "erisload", res, opts)
		if werr != nil {
			log.Printf("write violation dump: %v", werr)
		}
		log.Fatalf("history check: %d linearizability violations (dump: %s); first: %s",
			len(res.Violations), path, res.Violations[0].Reason)
	}
	fmt.Println("history check: linearizable — every response is explainable by a sequential execution")
}
