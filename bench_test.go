package eris_test

// One Go benchmark per table and figure of the paper's evaluation, plus
// the design-choice ablations. Each benchmark executes the corresponding
// experiment from internal/bench in its quick configuration and reports
// headline metrics via b.ReportMetric; `go test -bench=.` therefore
// regenerates (a reduced form of) every artifact, and `cmd/erisbench`
// produces the full-size tables.

import (
	"strconv"
	"strings"
	"testing"

	"eris/internal/bench"
)

// runExperiment executes one registry entry and returns its tables.
func runExperiment(b *testing.B, id string) []*bench.Table {
	b.Helper()
	exp, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*bench.Table
	for i := 0; i < b.N; i++ {
		tables, err = exp.Run(bench.Params{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		for _, t := range tables {
			b.Log("\n" + t.String())
		}
	}
	return tables
}

// cell parses a numeric table cell ("1.23", "12.34", "1.2e+03").
func cell(b *testing.B, t *bench.Table, row, col int) float64 {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("table %q has no cell (%d,%d)", t.Title, row, col)
	}
	s := strings.TrimSpace(t.Rows[row][col])
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, s, err)
	}
	return v
}

func BenchmarkTable1MachineSpecs(b *testing.B) {
	tables := runExperiment(b, "table1")
	b.ReportMetric(float64(len(tables[0].Rows)), "spec-rows")
}

func BenchmarkTable2BandwidthLatency(b *testing.B) {
	tables := runExperiment(b, "table2")
	// Headline: the worst-case SGI latency must calibrate to 870 ns.
	sgi := tables[2]
	b.ReportMetric(cell(b, sgi, len(sgi.Rows)-1, 3), "worst-latency-ns")
}

func BenchmarkFig1Scalability(b *testing.B) {
	tables := runExperiment(b, "fig1")
	lookup, scan := tables[0], tables[1]
	last := len(lookup.Rows) - 1
	b.ReportMetric(cell(b, lookup, last, 3), "lookup-speedup")
	b.ReportMetric(cell(b, scan, len(scan.Rows)-1, 3), "scan-speedup")
}

func BenchmarkFig5RoutingThroughput(b *testing.B) {
	tables := runExperiment(b, "fig5")
	t := tables[0]
	first := cell(b, t, 0, 2)
	lastRow := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, lastRow, 2)/first, "raw-gain-vs-tiny-buffer")
}

func benchFig8(b *testing.B, id string) {
	tables := runExperiment(b, id)
	t := tables[0]
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 4), "lookup-ratio-eris-vs-shared")
	b.ReportMetric(cell(b, t, last, 7), "upsert-ratio-eris-vs-shared")
}

func BenchmarkFig8aIntel(b *testing.B) { benchFig8(b, "fig8a") }
func BenchmarkFig8bAMD(b *testing.B)   { benchFig8(b, "fig8b") }
func BenchmarkFig8cSGI(b *testing.B)   { benchFig8(b, "fig8c") }

func BenchmarkFig9ScanBandwidth(b *testing.B) {
	tables := runExperiment(b, "fig9")
	t := tables[0]
	single := cell(b, t, 0, 1)
	inter := cell(b, t, 1, 1)
	eris := cell(b, t, 2, 1)
	b.ReportMetric(eris/inter, "eris-vs-interleaved")
	b.ReportMetric(eris/single, "eris-vs-single-ram")
	b.ReportMetric(cell(b, t, 2, 3), "pct-of-local-bw")
}

func BenchmarkFig10MissRatio(b *testing.B) {
	tables := runExperiment(b, "fig10")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, 1), "eris-miss-ratio")
	b.ReportMetric(cell(b, t, 0, 2), "shared-miss-ratio")
}

func BenchmarkFig11CacheLineStates(b *testing.B) {
	tables := runExperiment(b, "fig11")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, 5), "eris-modified+exclusive-pct")
	b.ReportMetric(cell(b, t, 1, 6), "shared-shared+forward-pct")
}

func BenchmarkFig12LinkActivity(b *testing.B) {
	tables := runExperiment(b, "fig12")
	t := tables[0]
	b.ReportMetric(cell(b, t, 1, 2), "eris-scan-mc-gbs")
	b.ReportMetric(cell(b, t, 0, 1), "shared-scan-link-gbs")
}

func BenchmarkFig13LoadBalancer(b *testing.B) {
	tables := runExperiment(b, "fig13")
	summary := tables[1]
	// Rows: off, One-Shot, MA1, MA8. Headline: recovery times.
	b.ReportMetric(cell(b, summary, 1, 4), "oneshot-recovery-ms")
	b.ReportMetric(cell(b, summary, 2, 4), "ma1-recovery-ms")
	b.ReportMetric(cell(b, summary, 3, 4), "ma8-recovery-ms")
}

func BenchmarkAblationDirectWrite(b *testing.B) {
	tables := runExperiment(b, "ablation-buffer")
	t := tables[0]
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "batched-vs-direct")
}

func BenchmarkAblationPartitionTable(b *testing.B) {
	tables := runExperiment(b, "ablation-table")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, 1)/cell(b, t, 1, 1), "csb-vs-flat")
}

func BenchmarkAblationCoalescing(b *testing.B) {
	tables := runExperiment(b, "ablation-coalesce")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, 1)/cell(b, t, 1, 1), "grouping-on-vs-off")
	s := tables[1]
	b.ReportMetric(cell(b, s, 0, 1)/cell(b, s, 1, 1), "scan-coalescing-on-vs-off")
}

func BenchmarkAblationTransfer(b *testing.B) {
	tables := runExperiment(b, "ablation-transfer")
	t := tables[0]
	b.ReportMetric(cell(b, t, 1, 2)/cell(b, t, 0, 2), "copy-vs-link-cost")
}

func BenchmarkAblationMAWindow(b *testing.B) {
	tables := runExperiment(b, "ablation-ma")
	t := tables[0]
	b.ReportMetric(cell(b, t, 0, 3), "ma1-drop-pct")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "widest-window-drop-pct")
}
