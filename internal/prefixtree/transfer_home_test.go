package prefixtree

import (
	"testing"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// An empty store on a non-zero node must still report its own home: the
// balancer rebuilds transferred partitions into freshly created stores, and
// charging the rebuild stream to node 0 would both skew the cost model and
// hide cross-node traffic.
func TestHomeOfSourceEmptyStore(t *testing.T) {
	machine, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem(machine)
	const node = topology.NodeID(3)
	store, err := NewStore(machine, sys.Node(node), Config{KeyBits: 32, PrefixBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	if got := homeOfSource(sess); got != node {
		t.Fatalf("homeOfSource(empty store on node %d) = %d", node, got)
	}

	// The answer must not change once slabs exist.
	tree := NewTree(sess)
	tree.Upsert(0, 7, 7, 1)
	if got := homeOfSource(sess); got != node {
		t.Fatalf("homeOfSource(populated store on node %d) = %d", node, got)
	}

	single, err := NewSingleNodeStore(machine, sys, node, Config{KeyBits: 32, PrefixBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := homeOfSource(single.NewSession()); got != node {
		t.Fatalf("homeOfSource(empty single-node store on node %d) = %d", node, got)
	}

	// Interleaved stores have no declared home; empty falls back to 0 and a
	// populated one reports the first slab's home.
	inter, err := NewInterleavedStore(machine, sys, Config{KeyBits: 32, PrefixBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	isess := inter.NewSession()
	if got := homeOfSource(isess); got != 0 {
		t.Fatalf("homeOfSource(empty interleaved store) = %d", got)
	}
}
