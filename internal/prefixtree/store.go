// Package prefixtree implements the order-preserving generalized prefix
// tree (trie) that ERIS uses as its index structure (Böhm et al., BTW 2011;
// Section 4 of the ERIS paper). The tree is in-memory optimized, supports
// high-throughput upserts, and — unlike a hash table — preserves key order,
// which range scans and the load balancer's range partitioning depend on.
//
// Storage layout: tree nodes live in slab-allocated pools owned by a Store.
// One Store exists per (data object, NUMA node), shared by all AEUs of that
// node, so moving a key range between two AEUs on the same multiprocessor
// is a pure reference graft (the paper's cheap "link" transfer) — no bytes
// move. Cross-node transfers flatten a subtree into an exchange format and
// rebuild it in the target node's Store (the "copy" transfer).
//
// Every operation takes the calling core so that each visited node charges
// the simulated machine with a memory access at the node's home
// multiprocessor; this is what makes the shared (NUMA-agnostic) baseline
// measurably slower than partitioned ERIS trees.
package prefixtree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// Config shapes a tree.
type Config struct {
	// KeyBits is the width of the key domain (keys must fit in KeyBits
	// bits). Default 64.
	KeyBits int
	// PrefixBits is the span of one tree level (the paper's default is 8,
	// i.e. fanout 256). Must divide KeyBits and be one of 2, 4, 8.
	PrefixBits int
	// SlabNodes is the number of nodes per allocation slab. Default 64.
	SlabNodes int
	// MaxSlabs bounds the number of slabs per pool. Default 1<<14.
	MaxSlabs int
}

func (c Config) withDefaults() Config {
	if c.KeyBits == 0 {
		c.KeyBits = 64
	}
	if c.PrefixBits == 0 {
		c.PrefixBits = 8
	}
	if c.SlabNodes == 0 {
		c.SlabNodes = 64
	}
	if c.MaxSlabs == 0 {
		c.MaxSlabs = 1 << 14
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch c.PrefixBits {
	case 2, 4, 8:
	default:
		return fmt.Errorf("prefixtree: PrefixBits must be 2, 4 or 8, got %d", c.PrefixBits)
	}
	if c.KeyBits <= 0 || c.KeyBits > 64 || c.KeyBits%c.PrefixBits != 0 {
		return fmt.Errorf("prefixtree: KeyBits %d must be in (0,64] and divisible by PrefixBits %d", c.KeyBits, c.PrefixBits)
	}
	if c.SlabNodes <= 0 || c.MaxSlabs <= 0 {
		return fmt.Errorf("prefixtree: SlabNodes and MaxSlabs must be positive")
	}
	return nil
}

// nilRef marks an absent child; node references are 1-based.
const nilRef uint32 = 0

// innerSlab holds SlabNodes inner nodes: fanout child slots plus a subtree
// key count per node.
type innerSlab struct {
	slots  []atomic.Uint32 // fanout per node
	counts []atomic.Int64  // one per node
	block  mem.Block
}

// leafSlab holds SlabNodes leaf nodes: fanout values, a presence bitmap and
// an entry count per node.
type leafSlab struct {
	values []atomic.Uint64 // fanout per node
	bitmap []atomic.Uint64 // bitmapWords per node
	counts []atomic.Int64  // one per node
	block  mem.Block
}

// Store owns the node pools of all trees of one data object on one NUMA
// node (or, for the NUMA-agnostic shared baseline, of the whole machine
// with interleaved slabs). Slab allocation is thread-safe; node-level
// recycling goes through per-AEU Sessions.
type Store struct {
	machine *numasim.Machine
	cfg     Config
	alloc   allocFunc

	// home is the node new slabs land on when the allocator is single-node
	// (ERIS stores, SingleNode baseline); homeKnown is false for the
	// interleaved baseline, where the home must be derived per slab.
	home      topology.NodeID
	homeKnown bool

	fanout      int
	levels      int // total levels including the leaf level
	bitmapWords int

	innerNodeBytes int64
	leafNodeBytes  int64

	// Slab directories have a fixed length of MaxSlabs so that readers can
	// index them without racing against growth; only the pointers at
	// [0, innerLen) / [0, leafLen) are populated (under mu).
	mu        sync.Mutex
	inner     []*innerSlab
	leaf      []*leafSlab
	innerLen  int
	leafLen   int
	innerNext int // next unused node in the newest inner slab
	leafNext  int
}

// allocFunc produces the backing Block for a new slab; it decides the home
// node (local for ERIS stores, round-robin for the interleaved baseline).
type allocFunc func(size int64) mem.Block

// NewStore creates a store whose slabs are allocated on a single node
// through mgr.
func NewStore(machine *numasim.Machine, mgr *mem.Manager, cfg Config) (*Store, error) {
	s, err := newStore(machine, cfg, mgr.Alloc)
	if err == nil {
		s.home, s.homeKnown = mgr.Node(), true
	}
	return s, err
}

// NewInterleavedStore creates a store whose slabs round-robin across all
// node managers, modeling the `numactl --interleave=all` baseline.
func NewInterleavedStore(machine *numasim.Machine, sys *mem.System, cfg Config) (*Store, error) {
	var next atomic.Int64
	nodes := machine.Topology().NumNodes()
	return newStore(machine, cfg, func(size int64) mem.Block {
		n := topology.NodeID(int(next.Add(1)-1) % nodes)
		return sys.Node(n).Alloc(size)
	})
}

// NewSingleNodeStore creates a store allocating everything on one node,
// regardless of who asks — the paper's "Single RAM" worst case.
func NewSingleNodeStore(machine *numasim.Machine, sys *mem.System, node topology.NodeID, cfg Config) (*Store, error) {
	s, err := newStore(machine, cfg, sys.Node(node).Alloc)
	if err == nil {
		s.home, s.homeKnown = node, true
	}
	return s, err
}

func newStore(machine *numasim.Machine, cfg Config, alloc allocFunc) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Store{
		machine: machine,
		cfg:     cfg,
		alloc:   alloc,
		fanout:  1 << cfg.PrefixBits,
		levels:  cfg.KeyBits / cfg.PrefixBits,
	}
	s.bitmapWords = (s.fanout + 63) / 64
	s.innerNodeBytes = int64(s.fanout)*4 + 8
	s.leafNodeBytes = int64(s.fanout)*8 + int64(s.bitmapWords)*8 + 8
	s.inner = make([]*innerSlab, cfg.MaxSlabs)
	s.leaf = make([]*leafSlab, cfg.MaxSlabs)
	return s, nil
}

// Config returns the store's effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Levels returns the tree depth (number of node visits per lookup).
func (s *Store) Levels() int { return s.levels }

// Fanout returns the children per node (1 << PrefixBits).
func (s *Store) Fanout() int { return s.fanout }

// MaxKey returns the largest representable key.
func (s *Store) MaxKey() uint64 {
	if s.cfg.KeyBits == 64 {
		return ^uint64(0)
	}
	return 1<<uint(s.cfg.KeyBits) - 1
}

// growInner appends a fresh inner slab; callers hold s.mu.
func (s *Store) growInner() error {
	if s.innerLen == len(s.inner) {
		return fmt.Errorf("prefixtree: inner slab limit %d exhausted", len(s.inner))
	}
	n := s.cfg.SlabNodes
	s.inner[s.innerLen] = &innerSlab{
		slots:  make([]atomic.Uint32, n*s.fanout),
		counts: make([]atomic.Int64, n),
		block:  s.alloc(int64(n) * s.innerNodeBytes),
	}
	s.innerLen++
	s.innerNext = 0
	return nil
}

func (s *Store) growLeaf() error {
	if s.leafLen == len(s.leaf) {
		return fmt.Errorf("prefixtree: leaf slab limit %d exhausted", len(s.leaf))
	}
	n := s.cfg.SlabNodes
	s.leaf[s.leafLen] = &leafSlab{
		values: make([]atomic.Uint64, n*s.fanout),
		bitmap: make([]atomic.Uint64, n*s.bitmapWords),
		counts: make([]atomic.Int64, n),
		block:  s.alloc(int64(n) * s.leafNodeBytes),
	}
	s.leafLen++
	s.leafNext = 0
	return nil
}

// allocInnerNodes hands out up to want fresh inner node refs; used by
// Sessions to refill their free lists in batches.
func (s *Store) allocInnerNodes(want int, out []uint32) ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(out) < want {
		if s.innerLen == 0 || s.innerNext == s.cfg.SlabNodes {
			if err := s.growInner(); err != nil {
				return out, err
			}
		}
		slab := s.innerLen - 1
		// Refs are 1-based: ref = global node index + 1.
		out = append(out, uint32(slab*s.cfg.SlabNodes+s.innerNext)+1)
		s.innerNext++
	}
	return out, nil
}

func (s *Store) allocLeafNodes(want int, out []uint32) ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(out) < want {
		if s.leafLen == 0 || s.leafNext == s.cfg.SlabNodes {
			if err := s.growLeaf(); err != nil {
				return out, err
			}
		}
		slab := s.leafLen - 1
		out = append(out, uint32(slab*s.cfg.SlabNodes+s.leafNext)+1)
		s.leafNext++
	}
	return out, nil
}

// innerAt resolves an inner node ref to its slab and intra-slab offset.
func (s *Store) innerAt(ref uint32) (*innerSlab, int) {
	idx := int(ref - 1)
	return s.inner[idx/s.cfg.SlabNodes], idx % s.cfg.SlabNodes
}

func (s *Store) leafAt(ref uint32) (*leafSlab, int) {
	idx := int(ref - 1)
	return s.leaf[idx/s.cfg.SlabNodes], idx % s.cfg.SlabNodes
}

// innerSlot returns the child slot j of inner node ref.
func (s *Store) innerSlot(ref uint32, j int) *atomic.Uint32 {
	sl, off := s.innerAt(ref)
	return &sl.slots[off*s.fanout+j]
}

// innerCount returns the subtree key counter of inner node ref.
func (s *Store) innerCount(ref uint32) *atomic.Int64 {
	sl, off := s.innerAt(ref)
	return &sl.counts[off]
}

func (s *Store) leafCount(ref uint32) *atomic.Int64 {
	sl, off := s.leafAt(ref)
	return &sl.counts[off]
}

// innerAddr returns (home, synthetic address) of slot j in inner node ref.
func (s *Store) innerAddr(ref uint32, j int) (topology.NodeID, uint64) {
	sl, off := s.innerAt(ref)
	return sl.block.Home, sl.block.Addr + uint64(int64(off)*s.innerNodeBytes) + uint64(j*4)
}

// leafAddr returns (home, synthetic address) of value j in leaf node ref.
func (s *Store) leafAddr(ref uint32, j int) (topology.NodeID, uint64) {
	sl, off := s.leafAt(ref)
	return sl.block.Home, sl.block.Addr + uint64(int64(off)*s.leafNodeBytes) + uint64(j*8)
}

// zeroInner clears a recycled inner node.
func (s *Store) zeroInner(ref uint32) {
	sl, off := s.innerAt(ref)
	base := off * s.fanout
	for j := 0; j < s.fanout; j++ {
		sl.slots[base+j].Store(nilRef)
	}
	sl.counts[off].Store(0)
}

func (s *Store) zeroLeaf(ref uint32) {
	sl, off := s.leafAt(ref)
	for w := 0; w < s.bitmapWords; w++ {
		sl.bitmap[off*s.bitmapWords+w].Store(0)
	}
	sl.counts[off].Store(0)
}

// MemoryBytes reports the simulated bytes held by the store's slabs.
func (s *Store) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.innerLen)*int64(s.cfg.SlabNodes)*s.innerNodeBytes +
		int64(s.leafLen)*int64(s.cfg.SlabNodes)*s.leafNodeBytes
}

// refill batch size for session free lists.
const sessionRefill = 16

// Session is an AEU-local node allocator over a Store. It is not safe for
// concurrent use; the NUMA-agnostic baseline wraps one in a LockedSession.
type Session struct {
	store     *Store
	freeInner []uint32
	freeLeaf  []uint32
}

// NewSession creates a session on the store.
func (s *Store) NewSession() *Session {
	return &Session{store: s}
}

type nodeSource interface {
	allocInner() uint32
	allocLeaf() uint32
	freeInnerNode(ref uint32)
	freeLeafNode(ref uint32)
	Store() *Store
}

// Store returns the backing store.
func (se *Session) Store() *Store { return se.store }

func (se *Session) allocInner() uint32 {
	if n := len(se.freeInner); n > 0 {
		ref := se.freeInner[n-1]
		se.freeInner = se.freeInner[:n-1]
		se.store.zeroInner(ref)
		return ref
	}
	out, err := se.store.allocInnerNodes(sessionRefill, se.freeInner)
	if err != nil || len(out) == 0 {
		panic(fmt.Sprintf("prefixtree: inner allocation failed: %v", err))
	}
	se.freeInner = out
	ref := se.freeInner[len(se.freeInner)-1]
	se.freeInner = se.freeInner[:len(se.freeInner)-1]
	return ref
}

func (se *Session) allocLeaf() uint32 {
	if n := len(se.freeLeaf); n > 0 {
		ref := se.freeLeaf[n-1]
		se.freeLeaf = se.freeLeaf[:n-1]
		se.store.zeroLeaf(ref)
		return ref
	}
	out, err := se.store.allocLeafNodes(sessionRefill, se.freeLeaf)
	if err != nil || len(out) == 0 {
		panic(fmt.Sprintf("prefixtree: leaf allocation failed: %v", err))
	}
	se.freeLeaf = out
	ref := se.freeLeaf[len(se.freeLeaf)-1]
	se.freeLeaf = se.freeLeaf[:len(se.freeLeaf)-1]
	return ref
}

func (se *Session) freeInnerNode(ref uint32) { se.freeInner = append(se.freeInner, ref) }
func (se *Session) freeLeafNode(ref uint32)  { se.freeLeaf = append(se.freeLeaf, ref) }

// LockedSession is a mutex-guarded Session for the shared baseline, where
// many worker threads insert into one tree concurrently.
type LockedSession struct {
	mu sync.Mutex
	se *Session
}

// NewLockedSession wraps a fresh session of the store.
func (s *Store) NewLockedSession() *LockedSession {
	return &LockedSession{se: s.NewSession()}
}

// Store returns the backing store.
func (ls *LockedSession) Store() *Store { return ls.se.store }

func (ls *LockedSession) allocInner() uint32 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.se.allocInner()
}

func (ls *LockedSession) allocLeaf() uint32 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.se.allocLeaf()
}

func (ls *LockedSession) freeInnerNode(ref uint32) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.se.freeInnerNode(ref)
}

func (ls *LockedSession) freeLeafNode(ref uint32) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.se.freeLeafNode(ref)
}
