package prefixtree

import (
	"fmt"
	"math/bits"

	"sync/atomic"

	"eris/internal/topology"
)

// KV is one key/value pair of the flattened exchange format used by
// cross-node partition transfers.
type KV struct {
	Key   uint64
	Value uint64
}

// computeNSPerLevel is the modeled CPU cost of one tree-level descent
// (nibble extraction, bounds check, branch) on top of the memory access.
const computeNSPerLevel = 1.0

// Tree is one partition of a prefix-tree index. A Tree is owned by a single
// AEU in ERIS and accessed without locks; the NUMA-agnostic shared baseline
// uses the same type concurrently, which is safe because child installation
// is CAS-based and leaf mutations are atomic.
type Tree struct {
	src   nodeSource
	root  atomic.Uint32
	count atomic.Int64
}

// NewTree creates an empty tree whose nodes come from src (a Session for
// AEU-owned partitions, a LockedSession for the shared baseline).
func NewTree(src nodeSource) *Tree {
	return &Tree{src: src}
}

// SetSource rebinds the tree to another session (same store); used when a
// partition is handed to a different AEU on the same node.
func (t *Tree) SetSource(src nodeSource) {
	if src.Store() != t.src.Store() {
		panic("prefixtree: SetSource across stores")
	}
	t.src = src
}

// Store returns the node store backing this tree.
func (t *Tree) Store() *Store { return t.src.Store() }

// Count returns the number of keys in the tree.
func (t *Tree) Count() int64 { return t.count.Load() }

// nibble extracts the child index for key at level.
func (s *Store) nibble(key uint64, level int) int {
	shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*(level+1))
	return int(key>>shift) & (s.fanout - 1)
}

// checkKey panics on keys outside the configured domain; catching this in
// tests is cheaper than debugging silent truncation.
func (s *Store) checkKey(key uint64) {
	if key > s.MaxKey() {
		panic(fmt.Sprintf("prefixtree: key %#x exceeds %d-bit domain", key, s.cfg.KeyBits))
	}
}

// Lookup finds key and returns its value. overlap is the number of
// independent lookups the caller has batched (the AEU command-grouping
// optimization); it lets the cost model overlap memory latencies.
func (t *Tree) Lookup(core topology.CoreID, key uint64, overlap int) (uint64, bool) {
	s := t.src.Store()
	s.checkKey(key)
	m := s.machine
	ref := t.root.Load()
	for level := 0; level < s.levels-1; level++ {
		if ref == nilRef {
			return 0, false
		}
		j := s.nibble(key, level)
		home, addr := s.innerAddr(ref, j)
		m.Read(core, home, addr, 4, overlap)
		m.AdvanceNS(core, computeNSPerLevel)
		ref = s.innerSlot(ref, j).Load()
	}
	if ref == nilRef {
		return 0, false
	}
	j := s.nibble(key, s.levels-1)
	home, addr := s.leafAddr(ref, j)
	m.Read(core, home, addr, 8, overlap)
	m.AdvanceNS(core, computeNSPerLevel)
	sl, off := s.leafAt(ref)
	w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
	if sl.bitmap[w].Load()&bit == 0 {
		return 0, false
	}
	return sl.values[off*s.fanout+j].Load(), true
}

// LookupBatch looks up a batch of keys, writing values and presence flags;
// the batch size drives the modeled memory-level parallelism.
func (t *Tree) LookupBatch(core topology.CoreID, keys []uint64, values []uint64, found []bool) {
	overlap := len(keys)
	for i, k := range keys {
		values[i], found[i] = t.Lookup(core, k, overlap)
	}
}

// Upsert inserts or overwrites key and reports whether the key was new.
func (t *Tree) Upsert(core topology.CoreID, key, value uint64, overlap int) bool {
	s := t.src.Store()
	s.checkKey(key)
	m := s.machine

	var path [32]uint32 // inner refs along the descent, for count updates
	depth := 0

	ref := t.rootOrCreate(core)
	for level := 0; level < s.levels-1; level++ {
		path[depth] = ref
		depth++
		j := s.nibble(key, level)
		home, addr := s.innerAddr(ref, j)
		m.Read(core, home, addr, 4, overlap)
		m.AdvanceNS(core, computeNSPerLevel)
		slot := s.innerSlot(ref, j)
		child := slot.Load()
		if child == nilRef {
			child = t.allocNode(level + 1)
			if !slot.CompareAndSwap(nilRef, child) {
				t.freeNode(child, level+1)
				child = slot.Load()
			} else {
				m.Write(core, home, addr, 4, overlap)
			}
		}
		ref = child
	}

	j := s.nibble(key, s.levels-1)
	home, addr := s.leafAddr(ref, j)
	sl, off := s.leafAt(ref)
	sl.values[off*s.fanout+j].Store(value)
	m.Write(core, home, addr, 8, overlap)
	m.AdvanceNS(core, computeNSPerLevel)
	w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
	old := sl.bitmap[w].Or(bit)
	if old&bit != 0 {
		return false // overwrite
	}
	sl.counts[off].Add(1)
	for i := 0; i < depth; i++ {
		s.innerCount(path[i]).Add(1)
	}
	t.count.Add(1)
	return true
}

// UpsertBatch upserts a batch of pairs with overlapped latencies and
// reports how many keys were new.
func (t *Tree) UpsertBatch(core topology.CoreID, kvs []KV) int64 {
	overlap := len(kvs)
	var fresh int64
	for _, kv := range kvs {
		if t.Upsert(core, kv.Key, kv.Value, overlap) {
			fresh++
		}
	}
	return fresh
}

// Delete removes key and reports whether it was present. Nodes emptied by
// deletion stay linked (like the losers of Upsert's install races); only
// their presence bits and counters change, so concurrent readers never see
// a dangling reference.
func (t *Tree) Delete(core topology.CoreID, key uint64, overlap int) bool {
	s := t.src.Store()
	s.checkKey(key)
	m := s.machine

	var path [32]uint32 // inner refs along the descent, for count updates
	depth := 0

	ref := t.root.Load()
	for level := 0; level < s.levels-1; level++ {
		if ref == nilRef {
			return false
		}
		path[depth] = ref
		depth++
		j := s.nibble(key, level)
		home, addr := s.innerAddr(ref, j)
		m.Read(core, home, addr, 4, overlap)
		m.AdvanceNS(core, computeNSPerLevel)
		ref = s.innerSlot(ref, j).Load()
	}
	if ref == nilRef {
		return false
	}
	j := s.nibble(key, s.levels-1)
	home, addr := s.leafAddr(ref, j)
	m.Read(core, home, addr, 8, overlap)
	m.AdvanceNS(core, computeNSPerLevel)
	sl, off := s.leafAt(ref)
	w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
	old := sl.bitmap[w].And(^bit)
	if old&bit == 0 {
		return false // was not present
	}
	m.Write(core, home, addr, 8, overlap)
	sl.counts[off].Add(-1)
	for i := 0; i < depth; i++ {
		s.innerCount(path[i]).Add(-1)
	}
	t.count.Add(-1)
	return true
}

// DeleteBatch deletes a batch of keys with overlapped latencies and reports
// how many were present.
func (t *Tree) DeleteBatch(core topology.CoreID, keys []uint64) int64 {
	overlap := len(keys)
	var removed int64
	for _, k := range keys {
		if t.Delete(core, k, overlap) {
			removed++
		}
	}
	return removed
}

// rootOrCreate returns the root node, installing one on first use.
func (t *Tree) rootOrCreate(core topology.CoreID) uint32 {
	ref := t.root.Load()
	if ref != nilRef {
		return ref
	}
	n := t.allocNode(0)
	if !t.root.CompareAndSwap(nilRef, n) {
		t.freeNode(n, 0)
		return t.root.Load()
	}
	return n
}

// allocNode allocates an inner or leaf node appropriate for level.
func (t *Tree) allocNode(level int) uint32 {
	if level == t.src.Store().levels-1 {
		return t.src.allocLeaf()
	}
	return t.src.allocInner()
}

func (t *Tree) freeNode(ref uint32, level int) {
	if level == t.src.Store().levels-1 {
		t.src.freeLeafNode(ref)
	} else {
		t.src.freeInnerNode(ref)
	}
}

// nodeCount returns the key count of a node at level.
func (s *Store) nodeCount(ref uint32, level int) int64 {
	if ref == nilRef {
		return 0
	}
	if level == s.levels-1 {
		return s.leafCount(ref).Load()
	}
	return s.innerCount(ref).Load()
}

// Scan visits keys in [lo, hi] (inclusive bounds; an inclusive upper bound
// avoids overflow at the top of the key domain) in ascending order, calling
// fn for each until fn returns false. It returns the number of visited
// keys.
func (t *Tree) Scan(core topology.CoreID, lo, hi uint64, fn func(key, value uint64) bool) int64 {
	s := t.src.Store()
	s.checkKey(lo)
	if hi > s.MaxKey() {
		hi = s.MaxKey()
	}
	if lo > hi {
		return 0
	}
	var visited int64
	t.scanNode(core, t.root.Load(), 0, 0, lo, hi, fn, &visited)
	return visited
}

// scanOverlap models the moderate memory-level parallelism of an index
// range scan (prefetchable sibling leaves).
const scanOverlap = 4

func (t *Tree) scanNode(core topology.CoreID, ref uint32, level int, prefix, lo, hi uint64, fn func(uint64, uint64) bool, visited *int64) bool {
	if ref == nilRef {
		return true
	}
	s := t.src.Store()
	m := s.machine
	shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*(level+1))
	mask := subtreeMask(shift)
	jLo, jHi := 0, s.fanout-1
	if pl := prefixAt(lo, s, level, prefix); pl >= 0 {
		jLo = pl
	}
	if ph := prefixAt(hi, s, level, prefix); ph >= 0 {
		jHi = ph
	}
	if level == s.levels-1 {
		sl, off := s.leafAt(ref)
		home, addr := s.leafAddr(ref, 0)
		m.Read(core, home, addr, int64(s.fanout)*8, scanOverlap)
		for j := jLo; j <= jHi; j++ {
			w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
			if sl.bitmap[w].Load()&bit == 0 {
				continue
			}
			key := prefix | uint64(j)
			if key < lo || key > hi {
				continue
			}
			*visited++
			if !fn(key, sl.values[off*s.fanout+j].Load()) {
				return false
			}
		}
		return true
	}
	home, addr := s.innerAddr(ref, jLo)
	m.Read(core, home, addr, int64(jHi-jLo+1)*4, scanOverlap)
	m.AdvanceNS(core, computeNSPerLevel)
	for j := jLo; j <= jHi; j++ {
		childPrefix := prefix | uint64(j)<<shift
		// Skip subtrees entirely outside the range.
		if childPrefix > hi || childPrefix|mask < lo {
			continue
		}
		if !t.scanNode(core, s.innerSlot(ref, j).Load(), level+1, childPrefix, lo, hi, fn, visited) {
			return false
		}
	}
	return true
}

// subtreeMask returns the mask of key bits below the given shift.
func subtreeMask(shift uint) uint64 {
	if shift >= 64 {
		return ^uint64(0)
	}
	return 1<<shift - 1
}

// prefixAt returns key's nibble at level when key lies inside this node's
// prefix, else -1 (meaning the bound does not constrain this subtree).
func prefixAt(key uint64, s *Store, level int, prefix uint64) int {
	shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*level)
	var upper uint64
	if shift >= 64 {
		upper = 0
	} else {
		upper = key &^ (1<<shift - 1)
	}
	if upper != prefix {
		return -1
	}
	return s.nibble(key, level)
}

// RankSelect returns the rank-th smallest key (0-based) using the subtree
// counters, without touching the leaves below the selected path. The load
// balancer uses it to compute split keys that move an exact number of
// tuples.
func (t *Tree) RankSelect(core topology.CoreID, rank int64) (uint64, bool) {
	s := t.src.Store()
	if rank < 0 || rank >= t.count.Load() {
		return 0, false
	}
	m := s.machine
	ref := t.root.Load()
	var key uint64
	for level := 0; ; level++ {
		if ref == nilRef {
			return 0, false // counter drift would be a bug; fail closed
		}
		shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*(level+1))
		if level == s.levels-1 {
			sl, off := s.leafAt(ref)
			home, addr := s.leafAddr(ref, 0)
			m.Read(core, home, addr, int64(s.fanout)*8, 1)
			for j := 0; j < s.fanout; j++ {
				w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
				if sl.bitmap[w].Load()&bit == 0 {
					continue
				}
				if rank == 0 {
					return key | uint64(j), true
				}
				rank--
			}
			return 0, false
		}
		home, addr := s.innerAddr(ref, 0)
		m.Read(core, home, addr, int64(s.fanout)*4, 1)
		advanced := false
		for j := 0; j < s.fanout; j++ {
			child := s.innerSlot(ref, j).Load()
			c := s.nodeCount(child, level+1)
			if rank < c {
				key |= uint64(j) << shift
				ref = child
				advanced = true
				break
			}
			rank -= c
		}
		if !advanced {
			return 0, false
		}
	}
}

// MinKey returns the smallest key in the tree.
func (t *Tree) MinKey(core topology.CoreID) (uint64, bool) {
	return t.RankSelect(core, 0)
}

// MaxKeyStored returns the largest key in the tree.
func (t *Tree) MaxKeyStored(core topology.CoreID) (uint64, bool) {
	return t.RankSelect(core, t.count.Load()-1)
}

// CountRange returns the number of keys in [lo, hi] using the subtree
// counters; only boundary paths are visited.
func (t *Tree) CountRange(core topology.CoreID, lo, hi uint64) int64 {
	s := t.src.Store()
	if lo > hi {
		return 0
	}
	if hi > s.MaxKey() {
		hi = s.MaxKey()
	}
	return t.countNode(core, t.root.Load(), 0, 0, lo, hi)
}

func (t *Tree) countNode(core topology.CoreID, ref uint32, level int, prefix, lo, hi uint64) int64 {
	if ref == nilRef {
		return 0
	}
	s := t.src.Store()
	shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*(level+1))
	mask := subtreeMask(shift)
	if level == s.levels-1 {
		sl, off := s.leafAt(ref)
		var n int64
		for j := 0; j < s.fanout; j++ {
			key := prefix | uint64(j)
			if key < lo || key > hi {
				continue
			}
			w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
			if sl.bitmap[w].Load()&bit != 0 {
				n++
			}
		}
		return n
	}
	var n int64
	for j := 0; j < s.fanout; j++ {
		childPrefix := prefix | uint64(j)<<shift
		if childPrefix > hi || childPrefix|mask < lo {
			continue
		}
		child := s.innerSlot(ref, j).Load()
		if child == nilRef {
			continue
		}
		if childPrefix >= lo && childPrefix|mask <= hi {
			n += s.nodeCount(child, level+1)
			continue
		}
		n += t.countNode(core, child, level+1, childPrefix, lo, hi)
	}
	return n
}

// popcount64 wraps math/bits for readability at call sites.
func popcount64(x uint64) int { return bits.OnesCount64(x) }
