package prefixtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

type fixture struct {
	machine *numasim.Machine
	sys     *mem.System
	store   *Store
	sess    *Session
	tree    *Tree
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	machine, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem(machine)
	store, err := NewStore(machine, sys.Node(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := store.NewSession()
	return &fixture{machine: machine, sys: sys, store: store, sess: sess, tree: NewTree(sess)}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{{}, {KeyBits: 16, PrefixBits: 4}, {KeyBits: 8, PrefixBits: 2}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	bad := []Config{
		{PrefixBits: 3},
		{KeyBits: 10, PrefixBits: 4},
		{KeyBits: 65},
		{SlabNodes: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestUpsertLookupBasic(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 32, PrefixBits: 8})
	if _, ok := f.tree.Lookup(0, 42, 1); ok {
		t.Fatal("empty tree found a key")
	}
	if !f.tree.Upsert(0, 42, 100, 1) {
		t.Fatal("first upsert not new")
	}
	if f.tree.Upsert(0, 42, 200, 1) {
		t.Fatal("second upsert of same key reported new")
	}
	v, ok := f.tree.Lookup(0, 42, 1)
	if !ok || v != 200 {
		t.Fatalf("lookup = (%d, %v), want (200, true)", v, ok)
	}
	if f.tree.Count() != 1 {
		t.Fatalf("count = %d", f.tree.Count())
	}
}

func TestAgainstReferenceMap(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 24, PrefixBits: 8})
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(1 << 20))
		v := rng.Uint64()
		f.tree.Upsert(0, k, v, 1)
		ref[k] = v
	}
	if got, want := f.tree.Count(), int64(len(ref)); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	for k, v := range ref {
		got, ok := f.tree.Lookup(0, k, 1)
		if !ok || got != v {
			t.Fatalf("key %d: (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	// Absent keys must stay absent.
	for i := 0; i < 1000; i++ {
		k := uint64(rng.Intn(1<<20)) | 1<<22
		if _, ok := f.tree.Lookup(0, k, 1); ok {
			t.Fatalf("found never-inserted key %d", k)
		}
	}
	if err := f.tree.CheckCounts(); err != nil {
		t.Fatal(err)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 4})
	keys := []uint64{5, 100, 1000, 65535, 0, 32768, 12345}
	for _, k := range keys {
		f.tree.Upsert(0, k, k*2, 1)
	}
	var got []uint64
	f.tree.Scan(0, 0, 65535, func(k, v uint64) bool {
		if v != k*2 {
			t.Errorf("key %d has value %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Bounded scan.
	got = got[:0]
	n := f.tree.Scan(0, 100, 32768, func(k, v uint64) bool { got = append(got, k); return true })
	if n != 4 || got[0] != 100 || got[len(got)-1] != 32768 {
		t.Fatalf("bounded scan: n=%d keys=%v", n, got)
	}
	// Early termination.
	count := 0
	f.tree.Scan(0, 0, 65535, func(k, v uint64) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early-terminated scan visited %d", count)
	}
}

func TestScanPropertyAgainstSortedSlice(t *testing.T) {
	cfg := Config{KeyBits: 16, PrefixBits: 4}
	check := func(seedKeys []uint16, lo16, hi16 uint16) bool {
		f := newFixture(t, cfg)
		ref := map[uint64]bool{}
		for _, k16 := range seedKeys {
			k := uint64(k16)
			f.tree.Upsert(0, k, k, 1)
			ref[k] = true
		}
		lo, hi := uint64(lo16), uint64(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []uint64
		for k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		f.tree.Scan(0, lo, hi, func(k, v uint64) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractLinkRoundtrip(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 24, PrefixBits: 8})
	rng := rand.New(rand.NewSource(3))
	ref := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(1 << 20))
		f.tree.Upsert(0, k, k+1, 1)
		ref[k] = k + 1
	}
	before := f.tree.Count()

	ex := f.tree.ExtractRange(0, 1<<18, 1<<19)
	var wantMoved int64
	for k := range ref {
		if k >= 1<<18 && k <= 1<<19 {
			wantMoved++
		}
	}
	if ex.Count() != wantMoved {
		t.Fatalf("extracted %d keys, want %d", ex.Count(), wantMoved)
	}
	if f.tree.Count() != before-wantMoved {
		t.Fatalf("tree count %d after extract, want %d", f.tree.Count(), before-wantMoved)
	}
	// Extracted keys are gone.
	for k := range ref {
		_, ok := f.tree.Lookup(0, k, 1)
		inRange := k >= 1<<18 && k <= 1<<19
		if ok == inRange {
			t.Fatalf("key %d: present=%v, inRange=%v", k, ok, inRange)
		}
	}
	if err := f.tree.CheckCounts(); err != nil {
		t.Fatalf("after extract: %v", err)
	}

	// Link into a second tree on the same store, then move back.
	other := NewTree(f.sess)
	other.Upsert(0, (1<<18)+7, 99, 1) // boundary-leaf merge case
	ref[(1<<18)+7] = 99
	otherBefore := other.Count()
	other.Link(0, ex)
	if other.Count() != otherBefore+wantMoved && other.Count() != otherBefore+wantMoved-1 {
		// (1<<18)+7 may or may not have been extracted depending on ref.
		t.Fatalf("other count %d", other.Count())
	}
	back := other.ExtractRange(0, 0, 1<<24-1)
	f.tree.Link(0, back)
	if err := f.tree.CheckCounts(); err != nil {
		t.Fatalf("after link back: %v", err)
	}
	for k, v := range ref {
		got, ok := f.tree.Lookup(0, k, 1)
		if !ok || got != v {
			t.Fatalf("after roundtrip key %d: (%d,%v) want (%d,true)", k, got, ok, v)
		}
	}
}

func TestExtractRangePropertyPartition(t *testing.T) {
	cfg := Config{KeyBits: 16, PrefixBits: 4}
	check := func(seedKeys []uint16, a16, b16 uint16) bool {
		f := newFixture(t, cfg)
		for _, k := range seedKeys {
			f.tree.Upsert(0, uint64(k), uint64(k), 1)
		}
		lo, hi := uint64(a16), uint64(b16)
		if lo > hi {
			lo, hi = hi, lo
		}
		total := f.tree.Count()
		ex := f.tree.ExtractRange(0, lo, hi)
		if f.tree.Count()+ex.Count() != total {
			return false
		}
		// Flatten and verify all extracted keys are in range and sorted.
		kvs := ex.Flatten(0)
		if int64(len(kvs)) != ex.Count() {
			return false
		}
		for i, kv := range kvs {
			if kv.Key < lo || kv.Key > hi {
				return false
			}
			if i > 0 && kvs[i-1].Key >= kv.Key {
				return false
			}
		}
		if err := f.tree.CheckCounts(); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenRebuildIdentity(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 24, PrefixBits: 8})
	rng := rand.New(rand.NewSource(11))
	ref := map[uint64]uint64{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(1 << 20))
		f.tree.Upsert(0, k, ^k, 1)
		ref[k] = ^k
	}
	ex := f.tree.ExtractRange(0, 0, f.store.MaxKey())
	kvs := ex.Flatten(0)
	if len(kvs) != len(ref) {
		t.Fatalf("flattened %d, want %d", len(kvs), len(ref))
	}
	ex.Discard(0, f.sess)

	// Rebuild on a different node's store (the "copy" transfer).
	store2, err := NewStore(f.machine, f.sys.Node(1), f.store.Config())
	if err != nil {
		t.Fatal(err)
	}
	sess2 := store2.NewSession()
	tree2 := NewTree(sess2)
	tree2.RebuildFrom(10, kvs) // core 10 lives on node 1
	if tree2.Count() != int64(len(ref)) {
		t.Fatalf("rebuilt count %d, want %d", tree2.Count(), len(ref))
	}
	for k, v := range ref {
		got, ok := tree2.Lookup(10, k, 1)
		if !ok || got != v {
			t.Fatalf("rebuilt key %d: (%d,%v)", k, got, ok)
		}
	}
	if err := tree2.CheckCounts(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardRecyclesNodes(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 8})
	for k := uint64(0); k < 1000; k++ {
		f.tree.Upsert(0, k, k, 1)
	}
	memBefore := f.store.MemoryBytes()
	ex := f.tree.ExtractRange(0, 0, 999)
	ex.Discard(0, f.sess)
	// Rebuilding the same data must reuse recycled nodes: no slab growth.
	for k := uint64(0); k < 1000; k++ {
		f.tree.Upsert(0, k, k, 1)
	}
	if got := f.store.MemoryBytes(); got != memBefore {
		t.Fatalf("store grew from %d to %d despite recycling", memBefore, got)
	}
}

func TestRankSelect(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 4})
	keys := []uint64{10, 20, 30, 40, 50000}
	for _, k := range keys {
		f.tree.Upsert(0, k, k, 1)
	}
	for i, want := range keys {
		got, ok := f.tree.RankSelect(0, int64(i))
		if !ok || got != want {
			t.Errorf("rank %d = (%d,%v), want %d", i, got, ok, want)
		}
	}
	if _, ok := f.tree.RankSelect(0, 5); ok {
		t.Error("rank beyond count succeeded")
	}
	if _, ok := f.tree.RankSelect(0, -1); ok {
		t.Error("negative rank succeeded")
	}
	if k, ok := f.tree.MinKey(0); !ok || k != 10 {
		t.Errorf("MinKey = (%d,%v)", k, ok)
	}
	if k, ok := f.tree.MaxKeyStored(0); !ok || k != 50000 {
		t.Errorf("MaxKeyStored = (%d,%v)", k, ok)
	}
}

func TestCountRange(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 4})
	for k := uint64(0); k < 1000; k++ {
		f.tree.Upsert(0, k*3, k, 1)
	}
	cases := []struct {
		lo, hi uint64
		want   int64
	}{
		{0, 65535, 1000},
		{0, 0, 1},
		{1, 2, 0},
		{0, 29, 10},
		{30, 59, 10},
		{2997, 65535, 1},
	}
	for _, c := range cases {
		if got := f.tree.CountRange(0, c.lo, c.hi); got != c.want {
			t.Errorf("CountRange(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestLookupBatchMatchesSingles(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 8})
	for k := uint64(0); k < 500; k += 2 {
		f.tree.Upsert(0, k, k+1, 1)
	}
	keys := []uint64{0, 1, 2, 3, 498, 499}
	values := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	f.tree.LookupBatch(0, keys, values, found)
	for i, k := range keys {
		wantFound := k%2 == 0
		if found[i] != wantFound {
			t.Errorf("key %d: found=%v", k, found[i])
		}
		if wantFound && values[i] != k+1 {
			t.Errorf("key %d: value=%d", k, values[i])
		}
	}
}

func TestBatchingIsCheaperPerOp(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 24, PrefixBits: 8})
	for k := uint64(0); k < 4096; k++ {
		f.tree.Upsert(0, k, k, 1)
	}
	// Sequential lookups on core 1, batched on core 2.
	for k := uint64(0); k < 1024; k++ {
		f.tree.Lookup(1, k*3%4096, 1)
	}
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i) * 3 % 4096
	}
	values := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	f.tree.LookupBatch(2, keys, values, found)
	if f.machine.Clock(2) >= f.machine.Clock(1) {
		t.Errorf("batched lookups (%d ps) should be cheaper than singles (%d ps)",
			f.machine.Clock(2), f.machine.Clock(1))
	}
}

func TestConcurrentSharedUpserts(t *testing.T) {
	machine, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem(machine)
	store, err := NewInterleavedStore(machine, sys, Config{KeyBits: 24, PrefixBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	tree := NewTree(store.NewLockedSession())
	var wg sync.WaitGroup
	const perWorker = 4000
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			core := topology.CoreID(worker)
			for i := 0; i < perWorker; i++ {
				k := uint64(worker*perWorker + i)
				tree.Upsert(core, k, k, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := tree.Count(); got != 8*perWorker {
		t.Fatalf("count = %d, want %d", got, 8*perWorker)
	}
	for w := 0; w < 8; w++ {
		for i := 0; i < perWorker; i += 97 {
			k := uint64(w*perWorker + i)
			if v, ok := tree.Lookup(0, k, 1); !ok || v != k {
				t.Fatalf("key %d: (%d,%v)", k, v, ok)
			}
		}
	}
	if err := tree.CheckCounts(); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedStoreSpreadsSlabs(t *testing.T) {
	machine, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem(machine)
	store, err := NewInterleavedStore(machine, sys, Config{KeyBits: 24, PrefixBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	tree := NewTree(store.NewSession())
	for k := uint64(0); k < 100000; k++ {
		tree.Upsert(0, k, k, 1)
	}
	var withMem int
	for n := 0; n < 4; n++ {
		if sys.Node(topology.NodeID(n)).AllocatedBytes() > 0 {
			withMem++
		}
	}
	if withMem != 4 {
		t.Fatalf("interleaved store touched %d nodes, want 4", withMem)
	}
}

func TestKeyOutsideDomainPanics(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 8})
	defer func() {
		if recover() == nil {
			t.Error("oversized key did not panic")
		}
	}()
	f.tree.Upsert(0, 1<<20, 0, 1)
}

func TestSetSourceSameStore(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 16, PrefixBits: 8})
	sess2 := f.store.NewSession()
	f.tree.SetSource(sess2) // must not panic
	store2, err := NewStore(f.machine, f.sys.Node(1), f.store.Config())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetSource across stores did not panic")
		}
	}()
	f.tree.SetSource(store2.NewSession())
}

func TestSingleLevelTree(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 8, PrefixBits: 8})
	for k := uint64(0); k < 256; k++ {
		f.tree.Upsert(0, k, k*7, 1)
	}
	if f.tree.Count() != 256 {
		t.Fatalf("count = %d", f.tree.Count())
	}
	v, ok := f.tree.Lookup(0, 200, 1)
	if !ok || v != 1400 {
		t.Fatalf("lookup = (%d,%v)", v, ok)
	}
	var n int
	f.tree.Scan(0, 10, 20, func(k, v uint64) bool { n++; return true })
	if n != 11 {
		t.Fatalf("scan visited %d", n)
	}
}
