package prefixtree

import (
	"fmt"
	"math/bits"

	"eris/internal/topology"
)

// Extracted is a detached subtree produced by ExtractRange: the unit of the
// load balancer's partition transfers. Within the same Store it can be
// grafted into another tree in O(boundary) time (the paper's "link"
// mechanism); for cross-node transfers it is flattened into the KV exchange
// format, streamed, rebuilt on the target node, and discarded here.
type Extracted struct {
	store *Store
	root  uint32
	count int64
}

// Count returns the number of keys in the detached subtree.
func (ex *Extracted) Count() int64 { return ex.count }

// ExtractRange detaches all keys in [lo, hi] (inclusive) from the tree and
// returns them as a subtree. Only nodes on the two boundary paths are
// visited or copied; interior subtrees move by reference.
func (t *Tree) ExtractRange(core topology.CoreID, lo, hi uint64) *Extracted {
	s := t.src.Store()
	s.checkKey(lo)
	if hi > s.MaxKey() {
		hi = s.MaxKey()
	}
	ex := &Extracted{store: s}
	if lo > hi {
		return ex
	}
	root := t.root.Load()
	if root == nilRef {
		return ex
	}
	moved, count, whole := t.extractNode(core, root, 0, 0, lo, hi)
	if whole {
		t.root.Store(nilRef)
	}
	ex.root, ex.count = moved, count
	t.count.Add(-count)
	return ex
}

// extractNode moves the keys of [lo,hi] out of ref. It returns the ref of a
// node holding the moved keys (nilRef when none), how many keys moved, and
// whether ref itself was moved wholesale (the caller must then clear its
// slot; counts above are handled by the caller).
func (t *Tree) extractNode(core topology.CoreID, ref uint32, level int, prefix, lo, hi uint64) (uint32, int64, bool) {
	s := t.src.Store()
	m := s.machine
	span := subtreeMask(uint(s.cfg.KeyBits - s.cfg.PrefixBits*level))
	nodeLo, nodeHi := prefix, prefix|span
	if nodeLo > hi || nodeHi < lo {
		return nilRef, 0, false
	}
	if lo <= nodeLo && nodeHi <= hi {
		// Entire node range requested: move by reference, O(1).
		return ref, s.nodeCount(ref, level), true
	}

	if level == s.levels-1 {
		// Boundary leaf: move the matching entries into a twin leaf.
		sl, off := s.leafAt(ref)
		home, addr := s.leafAddr(ref, 0)
		m.Read(core, home, addr, int64(s.fanout)*8, scanOverlap)
		twin := nilRef
		var moved int64
		for j := 0; j < s.fanout; j++ {
			key := prefix | uint64(j)
			if key < lo || key > hi {
				continue
			}
			w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
			if sl.bitmap[w].Load()&bit == 0 {
				continue
			}
			if twin == nilRef {
				twin = t.src.allocLeaf()
				thome, twinAddr := s.leafAddr(twin, 0)
				m.Write(core, thome, twinAddr, 64, scanOverlap)
			}
			tsl, toff := s.leafAt(twin)
			tsl.values[toff*s.fanout+j].Store(sl.values[off*s.fanout+j].Load())
			tsl.bitmap[toff*s.bitmapWords+j/64].Or(bit)
			sl.bitmap[w].And(^bit)
			moved++
		}
		if moved > 0 {
			s.leafCount(ref).Add(-moved)
			s.leafCount(twin).Add(moved)
		}
		return twin, moved, false
	}

	// Boundary inner node: move fully covered children by reference and
	// recurse into the (at most two) partially covered ones.
	shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*(level+1))
	home, addr := s.innerAddr(ref, 0)
	m.Read(core, home, addr, int64(s.fanout)*4, scanOverlap)
	twin := nilRef
	var moved int64
	for j := 0; j < s.fanout; j++ {
		childPrefix := prefix | uint64(j)<<shift
		childMask := subtreeMask(shift)
		if childPrefix > hi || childPrefix|childMask < lo {
			continue
		}
		slot := s.innerSlot(ref, j)
		child := slot.Load()
		if child == nilRef {
			continue
		}
		sub, c, whole := t.extractNode(core, child, level+1, childPrefix, lo, hi)
		if whole {
			slot.Store(nilRef)
		}
		if sub == nilRef {
			continue
		}
		if twin == nilRef {
			twin = t.src.allocInner()
			thome, twinAddr := s.innerAddr(twin, 0)
			m.Write(core, thome, twinAddr, 64, scanOverlap)
		}
		s.innerSlot(twin, j).Store(sub)
		moved += c
	}
	if moved > 0 {
		s.innerCount(ref).Add(-moved)
		s.innerCount(twin).Add(moved)
	}
	return twin, moved, false
}

// Link grafts a detached subtree into the tree. Both must share the same
// Store (i.e. live on the same NUMA node). Only boundary nodes are merged;
// all interior structure moves by reference — this is the cheap intra-node
// transfer of Figure 7.
//
// The subtree's key range is normally disjoint from the tree's contents,
// but fault recovery can violate that: a re-fetched range may collide with
// keys the target accepted after adopting ownership. Keys already present
// keep their local (newer) value, and the counters reflect only the keys
// actually added — a blind count add here corrupts the count/bitmap
// coherence every invariant check relies on.
func (t *Tree) Link(core topology.CoreID, ex *Extracted) {
	if ex.store != t.src.Store() {
		panic("prefixtree: Link across stores; use Flatten + BulkUpsert for cross-node transfers")
	}
	if ex.root == nilRef {
		return
	}
	old := t.root.Load()
	merged, added := t.mergeNode(core, old, ex.root, 0)
	t.root.Store(merged)
	t.count.Add(added)
	ex.root, ex.count = nilRef, 0
}

// mergeNode merges b into a (both at the same level), returning the result
// and the number of keys that were not already present in a.
func (t *Tree) mergeNode(core topology.CoreID, a, b uint32, level int) (uint32, int64) {
	s := t.src.Store()
	if a == nilRef {
		return b, s.nodeCount(b, level)
	}
	if b == nilRef {
		return a, 0
	}
	m := s.machine
	if level == s.levels-1 {
		asl, aoff := s.leafAt(a)
		bsl, boff := s.leafAt(b)
		home, addr := s.leafAddr(a, 0)
		m.Read(core, home, addr, int64(s.fanout)*8, scanOverlap)
		m.Write(core, home, addr, 64, scanOverlap)
		var moved int64
		for w := 0; w < s.bitmapWords; w++ {
			bm := bsl.bitmap[boff*s.bitmapWords+w].Load()
			if bm == 0 {
				continue
			}
			// Only bits absent from a move over; for keys present on both
			// sides a's value is newer (it was written under the current
			// ownership of the range) and wins.
			fresh := bm &^ asl.bitmap[aoff*s.bitmapWords+w].Load()
			for bmi := fresh; bmi != 0; bmi &= bmi - 1 {
				j := w*64 + bits.TrailingZeros64(bmi)
				asl.values[aoff*s.fanout+j].Store(bsl.values[boff*s.fanout+j].Load())
			}
			asl.bitmap[aoff*s.bitmapWords+w].Or(fresh)
			moved += int64(popcount64(fresh))
		}
		s.leafCount(a).Add(moved)
		t.src.freeLeafNode(b)
		return a, moved
	}
	home, addr := s.innerAddr(a, 0)
	m.Read(core, home, addr, int64(s.fanout)*4, scanOverlap)
	var added int64
	for j := 0; j < s.fanout; j++ {
		bChild := s.innerSlot(b, j).Load()
		if bChild == nilRef {
			continue
		}
		slot := s.innerSlot(a, j)
		aChild := slot.Load()
		merged, n := t.mergeNode(core, aChild, bChild, level+1)
		slot.Store(merged)
		added += n
	}
	s.innerCount(a).Add(added)
	t.src.freeInnerNode(b)
	return a, added
}

// Flatten serializes the detached subtree into the sorted KV exchange
// format, charging a sequential read of the subtree's memory (the source
// AEU "flattens the partition ... and streams it sequentially").
func (ex *Extracted) Flatten(core topology.CoreID) []KV {
	if ex.root == nilRef {
		return nil
	}
	out := make([]KV, 0, ex.count)
	ex.flattenNode(core, ex.root, 0, 0, &out)
	return out
}

func (ex *Extracted) flattenNode(core topology.CoreID, ref uint32, level int, prefix uint64, out *[]KV) {
	s := ex.store
	m := s.machine
	if level == s.levels-1 {
		sl, off := s.leafAt(ref)
		m.Stream(core, sl.block.Home, s.leafNodeBytes)
		for j := 0; j < s.fanout; j++ {
			w, bit := off*s.bitmapWords+j/64, uint64(1)<<uint(j%64)
			if sl.bitmap[w].Load()&bit != 0 {
				*out = append(*out, KV{Key: prefix | uint64(j), Value: sl.values[off*s.fanout+j].Load()})
			}
		}
		return
	}
	sl, _ := s.innerAt(ref)
	m.Stream(core, sl.block.Home, s.innerNodeBytes)
	shift := uint(s.cfg.KeyBits - s.cfg.PrefixBits*(level+1))
	for j := 0; j < s.fanout; j++ {
		child := s.innerSlot(ref, j).Load()
		if child != nilRef {
			ex.flattenNode(core, child, level+1, prefix|uint64(j)<<shift, out)
		}
	}
}

// Discard releases every node of the detached subtree back to src, which
// must be a session on the same store (the source AEU frees its memory
// after a cross-node copy completes).
func (ex *Extracted) Discard(core topology.CoreID, src nodeSource) {
	if src.Store() != ex.store {
		panic("prefixtree: Discard with a session of another store")
	}
	if ex.root != nilRef {
		discardNode(ex.store, src, ex.root, 0)
		ex.root, ex.count = nilRef, 0
	}
}

func discardNode(s *Store, src nodeSource, ref uint32, level int) {
	if level == s.levels-1 {
		src.freeLeafNode(ref)
		return
	}
	for j := 0; j < s.fanout; j++ {
		if child := s.innerSlot(ref, j).Load(); child != nilRef {
			discardNode(s, src, child, level+1)
		}
	}
	src.freeInnerNode(ref)
}

// RebuildFrom bulk-loads a flattened exchange stream into the tree,
// charging sequential writes to the tree's local memory (the target AEU
// "converts the data stream back to an index").
func (t *Tree) RebuildFrom(core topology.CoreID, kvs []KV) {
	s := t.src.Store()
	m := s.machine
	// The stream arrives sorted; amortize the modeled cost as a sequential
	// write of the rebuilt structure rather than per-key random writes.
	m.Stream(core, homeOfSource(t.src), int64(len(kvs))*16)
	overlap := 16
	for _, kv := range kvs {
		t.Upsert(core, kv.Key, kv.Value, overlap)
	}
}

// homeOfSource reports the home node new allocations of src land on.
// Single-node stores record their home at construction, so the answer is
// exact even before the first slab exists (an empty target store must not
// misreport node 0 — it would charge the rebuild stream to the wrong
// multiprocessor). Interleaved stores have no single home; the first slab's
// home is the approximation used for reporting.
func homeOfSource(src nodeSource) topology.NodeID {
	s := src.Store()
	if s.homeKnown {
		return s.home
	}
	s.mu.Lock() //eris:allowblock bounded first-slab peek; taken once per rebuild, not per tuple
	defer s.mu.Unlock()
	if s.innerLen > 0 {
		return s.inner[0].block.Home
	}
	if s.leafLen > 0 {
		return s.leaf[0].block.Home
	}
	return 0
}

// CheckCounts verifies that every inner node's counter equals the sum of
// its children and that the tree count matches the root; test support.
func (t *Tree) CheckCounts() error {
	s := t.src.Store()
	root := t.root.Load()
	n, err := checkNodeCounts(s, root, 0)
	if err != nil {
		return err
	}
	if n != t.count.Load() {
		return fmt.Errorf("prefixtree: tree count %d != actual %d", t.count.Load(), n)
	}
	return nil
}

func checkNodeCounts(s *Store, ref uint32, level int) (int64, error) {
	if ref == nilRef {
		return 0, nil
	}
	if level == s.levels-1 {
		sl, off := s.leafAt(ref)
		var n int64
		for w := 0; w < s.bitmapWords; w++ {
			n += int64(popcount64(sl.bitmap[off*s.bitmapWords+w].Load()))
		}
		if c := s.leafCount(ref).Load(); c != n {
			return 0, fmt.Errorf("prefixtree: leaf %d count %d != bitmap %d", ref, c, n)
		}
		return n, nil
	}
	var n int64
	for j := 0; j < s.fanout; j++ {
		c, err := checkNodeCounts(s, s.innerSlot(ref, j).Load(), level+1)
		if err != nil {
			return 0, err
		}
		n += c
	}
	if c := s.innerCount(ref).Load(); c != n {
		return 0, fmt.Errorf("prefixtree: inner %d (level %d) count %d != children sum %d", ref, level, c, n)
	}
	return n, nil
}
