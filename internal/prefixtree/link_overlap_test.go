package prefixtree

// Regression: Link's merge used to assume the grafted subtree was disjoint
// from the target tree. Fault recovery breaks that assumption (a re-fetched
// range can collide with keys the target accepted after adopting the
// bounds), and the old merge then (a) double-counted the colliding keys,
// desynchronizing every counter from the bitmaps, and (b) clobbered the
// target's newer values with the transferred, older ones.

import "testing"

func TestLinkOverlappingKeysKeepsCountsAndNewerValues(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 24, PrefixBits: 8})

	// Source tree: keys [100, 300) with value = key.
	for k := uint64(100); k < 300; k++ {
		f.tree.Upsert(0, k, k, 1)
	}
	ex := f.tree.ExtractRange(0, 100, 299)
	if ex.Count() != 200 {
		t.Fatalf("extracted %d keys, want 200", ex.Count())
	}

	// Target tree already holds a slice of the same range, written later
	// under its own ownership (value = key*10), plus disjoint keys.
	other := NewTree(f.store.NewSession())
	for k := uint64(250); k < 320; k++ {
		other.Upsert(0, k, k*10, 1)
	}

	other.Link(0, ex)

	// 100..249 from the transfer, 250..319 local: 220 distinct keys.
	if got := other.Count(); got != 220 {
		t.Fatalf("count after overlapping link = %d, want 220", got)
	}
	if err := other.CheckCounts(); err != nil {
		t.Fatalf("counters diverged from bitmaps: %v", err)
	}
	for k := uint64(100); k < 320; k++ {
		v, ok := other.Lookup(0, k, 1)
		if !ok {
			t.Fatalf("key %d missing after link", k)
		}
		want := k
		if k >= 250 {
			want = k * 10 // local value is newer and must survive the merge
		}
		if v != want {
			t.Fatalf("key %d = %d, want %d", k, v, want)
		}
	}
}

func TestLinkIntoEmptyTreeStillMovesWholeCount(t *testing.T) {
	f := newFixture(t, Config{KeyBits: 24, PrefixBits: 8})
	for k := uint64(0); k < 500; k++ {
		f.tree.Upsert(0, k, k+1, 1)
	}
	ex := f.tree.ExtractRange(0, 0, 499)
	other := NewTree(f.store.NewSession())
	other.Link(0, ex)
	if got := other.Count(); got != 500 {
		t.Fatalf("count = %d, want 500", got)
	}
	if err := other.CheckCounts(); err != nil {
		t.Fatal(err)
	}
}
