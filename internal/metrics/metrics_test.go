package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("get-or-create returned a new counter")
	}
	g := r.Gauge("x.level")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	r.CounterFunc("x.fn", func() int64 { return 42 })
	r.GaugeFunc("x.gfn", func() int64 { return -1 })

	s := r.Snapshot()
	if s.Counter("x.count") != 5 || s.Counter("x.fn") != 42 {
		t.Fatalf("snapshot counters = %+v", s.Counters)
	}
	if s.Gauge("x.level") != 7 || s.Gauge("x.gfn") != -1 {
		t.Fatalf("snapshot gauges = %+v", s.Gauges)
	}
	if s.UnixNano == 0 {
		t.Fatal("no timestamp")
	}
}

func TestNameKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind collision")
		}
	}()
	r.Gauge("dup")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 0, 1} // <=10: {1,10}; <=100: {11,100}; <=1000: none; over: 5000
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 5122 {
		t.Fatalf("count %d sum %d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 5122.0/5 {
		t.Fatalf("mean = %f", m)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 4, 4)
	want := []int64{100, 400, 1600, 6400}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("bytes")
	h := r.Histogram("ns", []int64{10, 100})
	c.Add(5)
	g.Set(100)
	h.Observe(7)
	prev := r.Snapshot()
	c.Add(3)
	g.Set(50)
	h.Observe(70)
	h.Observe(7)
	d := r.Snapshot().Delta(prev)
	if d.Counter("ops") != 3 {
		t.Fatalf("counter delta = %d", d.Counter("ops"))
	}
	if d.Gauge("bytes") != 50 {
		t.Fatalf("gauge delta = %d (gauges report the current level)", d.Gauge("bytes"))
	}
	dh := d.Histograms["ns"]
	if dh.Count != 2 || dh.Sum != 77 || dh.Counts[0] != 1 || dh.Counts[1] != 1 {
		t.Fatalf("hist delta = %+v", dh)
	}
	// Instruments absent from prev are reported in full.
	r.Counter("late").Inc()
	d = r.Snapshot().Delta(prev)
	if d.Counter("late") != 1 {
		t.Fatalf("late counter delta = %d", d.Counter("late"))
	}
}

func TestSumAndNames(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		r.Counter(fmt.Sprintf("aeu.%d.ops", i)).Add(int64(i + 1))
		r.Counter(fmt.Sprintf("aeu.%d.forwards", i)).Inc()
	}
	s := r.Snapshot()
	if got := s.SumCounters("aeu.", ".ops"); got != 10 {
		t.Fatalf("sum = %d", got)
	}
	names := s.CounterNames("aeu.", ".ops")
	if len(names) != 4 || names[0] != "aeu.0.ops" || names[3] != "aeu.3.ops" {
		t.Fatalf("names = %v", names)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(-2)
	r.Histogram("h", []int64{1}).Observe(3)
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a") != 7 || back.Gauge("b") != -2 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip = %+v", back)
	}
}

// TestConcurrentUse hammers registration, updates and snapshots from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter(fmt.Sprintf("w.%d.ops", w))
			h := r.Histogram("shared.lat", []int64{10, 100, 1000})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.SumCounters("w.", ".ops"); got != 8000 {
		t.Fatalf("total ops = %d", got)
	}
	if s.Histograms["shared.lat"].Count != 8000 {
		t.Fatalf("hist count = %d", s.Histograms["shared.lat"].Count)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	srv, err := Serve("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var s Snapshot
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatalf("%s: %v (%s)", path, err, body)
		}
		if s.Counter("hits") != 3 {
			t.Fatalf("%s: hits = %d", path, s.Counter("hits"))
		}
	}
	resp, err := http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path: status %d", resp.StatusCode)
	}
}
