// Package metrics is the engine-wide observability substrate: a lock-free,
// allocation-free-on-hot-path registry of typed counters, gauges and
// fixed-bucket histograms. Every component of the engine (routing inboxes
// and outboxes, AEUs, the load balancer, the per-node memory managers and
// the simulated machine's link/memory-controller byte counters) registers
// its instruments here, so one atomic Snapshot covers the whole system and
// two snapshots subtract into an interval delta — the measurement model the
// paper's evaluation (Figures 5-13) is built on.
//
// Hot-path discipline: registration (cold) takes a mutex and may allocate;
// updating an instrument is a single atomic add with no map lookup, because
// components hold the *Counter / *Gauge / *Histogram pointers directly.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//eris:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the delta model to hold).
//
//eris:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
//
//eris:hotpath
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level (bytes in use, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores the current level.
//
//eris:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the level by n.
//
//eris:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
//
//eris:hotpath
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency/size distribution. Bucket i counts
// observations <= Bounds[i]; the extra last bucket counts overflows.
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
}

// Observe records one value.
//
//eris:hotpath
func (h *Histogram) Observe(v int64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// snapshot reads the histogram's buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// ExpBuckets builds n exponential bucket bounds starting at start and
// multiplying by factor — the standard shape for latency histograms.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	bounds := make([]int64, n)
	v := float64(start)
	for i := range bounds {
		bounds[i] = int64(v)
		v *= factor
	}
	return bounds
}

// Registry holds the engine's instruments. All methods are safe for
// concurrent use; Get-or-create registration is the cold path, instrument
// updates never touch the registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	counterFns map[string]func() int64
	gauges     map[string]*Gauge
	gaugeFns   map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		counterFns: make(map[string]func() int64),
		gauges:     make(map[string]*Gauge),
		gaugeFns:   make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// checkName panics when a name is already registered under another kind;
// metric names are a static engine-wide namespace, so a collision is a
// programming error.
func (r *Registry) checkName(name, kind string) {
	taken := ""
	switch {
	case r.counters[name] != nil || r.counterFns[name] != nil:
		taken = "counter"
	case r.gauges[name] != nil || r.gaugeFns[name] != nil:
		taken = "gauge"
	case r.hists[name] != nil:
		taken = "histogram"
	}
	if taken != "" && taken != kind {
		panic(fmt.Sprintf("metrics: %q already registered as a %s", name, taken))
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterFunc registers a cumulative counter backed by fn (a component that
// already maintains its own atomic counter). fn must be safe to call from
// any goroutine.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	r.counterFns[name] = fn
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a level gauge backed by fn. fn must be safe to call
// from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds (ascending) if needed. An existing histogram is
// returned as-is; its bounds win.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			panic("metrics: histogram needs at least one bucket bound")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic("metrics: histogram bounds must be ascending")
			}
		}
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot reads every instrument. Each value is loaded atomically; the
// snapshot as a whole is a consistent-enough monitoring view (the engine
// never stops the world).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		UnixNano:   time.Now().UnixNano(),
		Counters:   make(map[string]int64, len(r.counters)+len(r.counterFns)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, fn := range r.counterFns {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// HistogramSnapshot is one histogram's state inside a Snapshot.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last bucket is overflow
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Mean returns the average observed value, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time reading of a Registry. It marshals to JSON
// directly (the HTTP endpoint and the benchmark sidecars serialize it).
type Snapshot struct {
	UnixNano   int64                        `json:"unix_nano"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter value by name (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value by name (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// SumCounters sums every counter whose name starts with prefix and ends
// with suffix (either may be empty) — e.g. SumCounters("aeu.", ".ops")
// totals operations across AEUs.
func (s Snapshot) SumCounters(prefix, suffix string) int64 {
	var sum int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			sum += v
		}
	}
	return sum
}

// CounterNames returns the sorted counter names matching prefix+suffix.
func (s Snapshot) CounterNames(prefix, suffix string) []string {
	var names []string
	for name := range s.Counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Delta returns the interval reading s-prev: counters and histogram buckets
// subtract, gauges keep their current (s) level. Instruments absent from
// prev are reported at their full value.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		UnixNano:   s.UnixNano,
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Counts) != len(h.Counts) {
			d.Histograms[name] = h
			continue
		}
		dh := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Count:  h.Count - p.Count,
			Sum:    h.Sum - p.Sum,
		}
		for i := range h.Counts {
			dh.Counts[i] = h.Counts[i] - p.Counts[i]
		}
		d.Histograms[name] = dh
	}
	return d
}
