package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Server is a running metrics HTTP endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an expvar-style HTTP endpoint on addr: GET /metrics returns
// the JSON encoding of snap(). The listener is bound synchronously (so an
// invalid address fails fast) and served in a background goroutine. A
// running engine can be scraped without any coordination because snapshots
// are lock-free reads of atomic instruments.
func Serve(addr string, snap func() Snapshot) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	}
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		handler(w, req)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
