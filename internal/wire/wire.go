// Package wire defines the eriswire protocol: the length-prefixed binary
// framing the TCP serving layer (internal/server) and the Go client
// (internal/client) speak. A connection starts with a handshake — the
// client's Hello (magic, version) answered by the server's Welcome carrying
// the engine's object table — and then carries pipelined, tagged request
// and response messages. Tags correlate a response with its request;
// responses may arrive in any order, so a client can keep many batches in
// flight on one connection.
//
// Every frame is a little-endian u32 payload length followed by the
// payload; a payload is a one-byte message type, a u64 tag and the
// type-specific body. The decoder is strict: unknown types, truncated or
// oversized bodies, and trailing bytes are errors, never panics — the
// fuzz harness in this package holds it to that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// Protocol constants.
const (
	// Magic opens every Hello: "ERIS" read as a little-endian u32.
	Magic uint32 = 0x53495245
	// VersionLegacy is protocol version 1: no deadline field, no error
	// codes. Still spoken to old peers after negotiation.
	VersionLegacy uint16 = 1
	// Version is the newest protocol version this package speaks. Version 2
	// adds a relative-deadline field to every non-handshake header and a
	// reject-code byte to TError bodies. The handshake itself (Hello and
	// Welcome) is always framed as version 1 so peers can negotiate before
	// either side knows the other's version; both sides then speak
	// min(client, server).
	Version uint16 = 2
	// MaxFrame bounds a frame payload; a peer announcing more is corrupt
	// (or hostile) and the connection is dropped before allocating.
	MaxFrame = 1 << 20
)

// Type identifies a wire message.
type Type uint8

// Wire message types.
const (
	// TInvalid guards against zeroed buffers.
	TInvalid Type = iota
	// THello is the client's handshake: magic and version.
	THello
	// TWelcome answers a Hello with the server's object table.
	TWelcome
	// TLookup asks for a batch of keys of an index object.
	TLookup
	// TUpsert writes a batch of key/value pairs into an index object.
	TUpsert
	// TDelete removes a batch of keys from an index object.
	TDelete
	// TScan runs a filtered index range scan: an aggregate when Limit is
	// zero, up to Limit materialized rows otherwise.
	TScan
	// TColScan runs a filtered full scan over a column object.
	TColScan
	// TResult returns key/value pairs (lookup hits, scan rows).
	TResult
	// TAck confirms a write batch was applied.
	TAck
	// TAgg returns a scan aggregate (matched count, wrapping sum).
	TAgg
	// TError reports a failed request.
	TError
	numTypes
)

// String names the message type.
func (t Type) String() string {
	switch t {
	case THello:
		return "hello"
	case TWelcome:
		return "welcome"
	case TLookup:
		return "lookup"
	case TUpsert:
		return "upsert"
	case TDelete:
		return "delete"
	case TScan:
		return "scan"
	case TColScan:
		return "colscan"
	case TResult:
		return "result"
	case TAck:
		return "ack"
	case TAgg:
		return "agg"
	case TError:
		return "error"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ObjectInfo is one entry of the Welcome object table: what the engine
// serves under which wire id.
type ObjectInfo struct {
	ID     uint32
	Kind   uint8 // 0 = range-partitioned index, 1 = size-partitioned column
	Domain uint64
	Name   string
}

// Object kinds in ObjectInfo.Kind.
const (
	KindIndex  uint8 = 0
	KindColumn uint8 = 1
)

// Error codes carried by version ≥ 2 TError bodies, so clients can react
// to a rejection without parsing the message text.
const (
	// CodeGeneric is an unclassified failure; retrying is pointless.
	CodeGeneric uint8 = 0
	// CodeOverloaded means admission control shed the request before it ran;
	// the request had no effect and retrying with backoff is safe.
	CodeOverloaded uint8 = 1
	// CodeDeadlineExceeded means the request's deadline passed before it
	// completed; it may or may not have had an effect.
	CodeDeadlineExceeded uint8 = 2
)

// Msg is one decoded wire message; which fields are meaningful depends on
// Type. A single struct (instead of one type per message) keeps the
// codec's hot path free of interface allocations.
type Msg struct {
	Type Type
	Tag  uint64

	// DeadlineUS is the request's remaining time budget in microseconds
	// when it left the sender; zero means no deadline. Carried by every
	// non-handshake header on version ≥ 2 connections, absent on version 1.
	DeadlineUS uint32

	// Hello / Welcome.
	Magic   uint32
	Version uint16
	Objects []ObjectInfo

	// Requests.
	Object uint32
	Keys   []uint64
	KVs    []prefixtree.KV
	Pred   colstore.Predicate
	Lo, Hi uint64
	Limit  uint32

	// Responses.
	Matched uint64
	Sum     uint64
	Err     string
	// Code classifies a TError (CodeGeneric, CodeOverloaded,
	// CodeDeadlineExceeded); version ≥ 2 only, always CodeGeneric on v1.
	Code uint8
}

// Decode errors.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrBadType   = errors.New("wire: invalid message type")
	ErrBadMagic  = errors.New("wire: bad magic")
	ErrFrameSize = errors.New("wire: frame exceeds MaxFrame")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
	ErrBadPred   = errors.New("wire: invalid predicate operator")
	ErrTooLong   = errors.New("wire: string too long")
)

// Typed request rejections, surfaced to callers via errors.Is so overload
// handling doesn't depend on message text.
var (
	// ErrOverloaded is the decoded form of a CodeOverloaded TError: the
	// server shed the request before executing it.
	ErrOverloaded = errors.New("wire: server overloaded")
	// ErrDeadlineExceeded is the decoded form of a CodeDeadlineExceeded
	// TError: the request's deadline expired before it completed.
	ErrDeadlineExceeded = errors.New("wire: deadline exceeded")
)

const headerBytes = 1 + 8 // type, tag (+ 4-byte deadline on v2 data frames)

// handshakeType reports whether t is framed version-1 regardless of the
// negotiated version: the handshake happens before negotiation completes.
func handshakeType(t Type) bool { return t == THello || t == TWelcome }

// AppendFrame appends the version-1 framed encoding of m (length prefix
// included) to buf and returns the extended slice.
func AppendFrame(buf []byte, m *Msg) ([]byte, error) {
	return AppendFrameV(buf, m, VersionLegacy)
}

// AppendFrameV appends the framed encoding of m for the given negotiated
// protocol version. On version ≥ 2, non-handshake headers carry
// m.DeadlineUS and TError bodies carry m.Code.
func AppendFrameV(buf []byte, m *Msg, version uint16) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length patched below
	buf = append(buf, byte(m.Type))
	buf = binary.LittleEndian.AppendUint64(buf, m.Tag)
	if version >= 2 && !handshakeType(m.Type) {
		buf = binary.LittleEndian.AppendUint32(buf, m.DeadlineUS)
	}
	var err error
	if buf, err = appendBody(buf, m, version); err != nil {
		return buf[:start], err
	}
	n := len(buf) - start - 4
	if n > MaxFrame {
		return buf[:start], ErrFrameSize
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

func appendBody(buf []byte, m *Msg, version uint16) ([]byte, error) {
	switch m.Type {
	case THello:
		buf = binary.LittleEndian.AppendUint32(buf, m.Magic)
		buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	case TWelcome:
		if len(m.Objects) > 0xffff {
			return buf, ErrTooLong
		}
		buf = binary.LittleEndian.AppendUint16(buf, m.Version)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Objects)))
		for _, o := range m.Objects {
			if len(o.Name) > 0xffff {
				return buf, ErrTooLong
			}
			buf = binary.LittleEndian.AppendUint32(buf, o.ID)
			buf = append(buf, o.Kind)
			buf = binary.LittleEndian.AppendUint64(buf, o.Domain)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.Name)))
			buf = append(buf, o.Name...)
		}
	case TLookup, TDelete:
		buf = binary.LittleEndian.AppendUint32(buf, m.Object)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Keys)))
		for _, k := range m.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
	case TUpsert:
		buf = binary.LittleEndian.AppendUint32(buf, m.Object)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.KVs)))
		for _, kv := range m.KVs {
			buf = binary.LittleEndian.AppendUint64(buf, kv.Key)
			buf = binary.LittleEndian.AppendUint64(buf, kv.Value)
		}
	case TScan:
		buf = binary.LittleEndian.AppendUint32(buf, m.Object)
		buf = append(buf, byte(m.Pred.Op))
		buf = binary.LittleEndian.AppendUint64(buf, m.Pred.Operand)
		buf = binary.LittleEndian.AppendUint64(buf, m.Pred.High)
		buf = binary.LittleEndian.AppendUint64(buf, m.Lo)
		buf = binary.LittleEndian.AppendUint64(buf, m.Hi)
		buf = binary.LittleEndian.AppendUint32(buf, m.Limit)
	case TColScan:
		buf = binary.LittleEndian.AppendUint32(buf, m.Object)
		buf = append(buf, byte(m.Pred.Op))
		buf = binary.LittleEndian.AppendUint64(buf, m.Pred.Operand)
		buf = binary.LittleEndian.AppendUint64(buf, m.Pred.High)
	case TResult:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.KVs)))
		for _, kv := range m.KVs {
			buf = binary.LittleEndian.AppendUint64(buf, kv.Key)
			buf = binary.LittleEndian.AppendUint64(buf, kv.Value)
		}
	case TAck:
		// no body
	case TAgg:
		buf = binary.LittleEndian.AppendUint64(buf, m.Matched)
		buf = binary.LittleEndian.AppendUint64(buf, m.Sum)
	case TError:
		if len(m.Err) > 0xffff {
			return buf, ErrTooLong
		}
		if version >= 2 {
			buf = append(buf, m.Code)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Err)))
		buf = append(buf, m.Err...)
	default:
		return buf, fmt.Errorf("%w: %d", ErrBadType, uint8(m.Type))
	}
	return buf, nil
}

// DecodeMsg parses one version-1 frame payload (without the length prefix)
// into m. It is strict: the payload must contain exactly one well-formed
// message. All decoded slices are freshly allocated, never aliases of p.
func DecodeMsg(m *Msg, p []byte) error {
	return DecodeMsgV(m, p, VersionLegacy)
}

// DecodeMsgV parses one frame payload for the given negotiated protocol
// version. Handshake messages are always parsed as version 1.
func DecodeMsgV(m *Msg, p []byte, version uint16) error {
	if len(p) < headerBytes {
		return ErrTruncated
	}
	t := Type(p[0])
	if t == TInvalid || t >= numTypes {
		return fmt.Errorf("%w: %d", ErrBadType, p[0])
	}
	*m = Msg{Type: t, Tag: binary.LittleEndian.Uint64(p[1:])}
	b := p[headerBytes:]
	if version >= 2 && !handshakeType(t) {
		if len(b) < 4 {
			return ErrTruncated
		}
		m.DeadlineUS = binary.LittleEndian.Uint32(b)
		b = b[4:]
	}
	switch t {
	case THello:
		if len(b) != 4+2 {
			return ErrTruncated
		}
		m.Magic = binary.LittleEndian.Uint32(b)
		m.Version = binary.LittleEndian.Uint16(b[4:])
	case TWelcome:
		if len(b) < 2+2 {
			return ErrTruncated
		}
		m.Version = binary.LittleEndian.Uint16(b)
		n := int(binary.LittleEndian.Uint16(b[2:]))
		b = b[4:]
		if n > 0 {
			m.Objects = make([]ObjectInfo, 0, min(n, 1024))
		}
		for i := 0; i < n; i++ {
			if len(b) < 4+1+8+2 {
				return ErrTruncated
			}
			o := ObjectInfo{
				ID:     binary.LittleEndian.Uint32(b),
				Kind:   b[4],
				Domain: binary.LittleEndian.Uint64(b[5:]),
			}
			nameLen := int(binary.LittleEndian.Uint16(b[13:]))
			b = b[15:]
			if len(b) < nameLen {
				return ErrTruncated
			}
			o.Name = string(b[:nameLen])
			b = b[nameLen:]
			m.Objects = append(m.Objects, o)
		}
		if len(b) != 0 {
			return ErrTrailing
		}
	case TLookup, TDelete:
		obj, rest, err := decodeBatchHeader(b, 8)
		if err != nil {
			return err
		}
		m.Object = obj
		n := len(rest) / 8
		if n > 0 {
			m.Keys = make([]uint64, n)
			for i := range m.Keys {
				m.Keys[i] = binary.LittleEndian.Uint64(rest[8*i:])
			}
		}
	case TUpsert:
		obj, rest, err := decodeBatchHeader(b, 16)
		if err != nil {
			return err
		}
		m.Object = obj
		m.KVs = decodeKVs(rest)
	case TScan:
		if len(b) != 4+1+8+8+8+8+4 {
			return ErrTruncated
		}
		m.Object = binary.LittleEndian.Uint32(b)
		m.Pred.Op = colstore.PredicateOp(b[4])
		if m.Pred.Op > colstore.Between {
			return fmt.Errorf("%w: %d", ErrBadPred, b[4])
		}
		m.Pred.Operand = binary.LittleEndian.Uint64(b[5:])
		m.Pred.High = binary.LittleEndian.Uint64(b[13:])
		m.Lo = binary.LittleEndian.Uint64(b[21:])
		m.Hi = binary.LittleEndian.Uint64(b[29:])
		m.Limit = binary.LittleEndian.Uint32(b[37:])
	case TColScan:
		if len(b) != 4+1+8+8 {
			return ErrTruncated
		}
		m.Object = binary.LittleEndian.Uint32(b)
		m.Pred.Op = colstore.PredicateOp(b[4])
		if m.Pred.Op > colstore.Between {
			return fmt.Errorf("%w: %d", ErrBadPred, b[4])
		}
		m.Pred.Operand = binary.LittleEndian.Uint64(b[5:])
		m.Pred.High = binary.LittleEndian.Uint64(b[13:])
	case TResult:
		if len(b) < 4 {
			return ErrTruncated
		}
		n := int(binary.LittleEndian.Uint32(b))
		rest := b[4:]
		if len(rest) != 16*n {
			return ErrTruncated
		}
		m.KVs = decodeKVs(rest)
	case TAck:
		if len(b) != 0 {
			return ErrTrailing
		}
	case TAgg:
		if len(b) != 8+8 {
			return ErrTruncated
		}
		m.Matched = binary.LittleEndian.Uint64(b)
		m.Sum = binary.LittleEndian.Uint64(b[8:])
	case TError:
		if version >= 2 {
			if len(b) < 1 {
				return ErrTruncated
			}
			m.Code = b[0]
			b = b[1:]
		}
		if len(b) < 2 {
			return ErrTruncated
		}
		n := int(binary.LittleEndian.Uint16(b))
		if len(b) != 2+n {
			return ErrTruncated
		}
		m.Err = string(b[2:])
	}
	return nil
}

// decodeBatchHeader parses "object u32, count u32" and checks the count
// against the remaining bytes (elem bytes per entry), returning the entry
// bytes.
func decodeBatchHeader(b []byte, elem int) (uint32, []byte, error) {
	if len(b) < 4+4 {
		return 0, nil, ErrTruncated
	}
	obj := binary.LittleEndian.Uint32(b)
	n := int(binary.LittleEndian.Uint32(b[4:]))
	rest := b[8:]
	if n < 0 || n > MaxFrame/elem || len(rest) != elem*n {
		return 0, nil, ErrTruncated
	}
	return obj, rest, nil
}

func decodeKVs(rest []byte) []prefixtree.KV {
	n := len(rest) / 16
	if n == 0 {
		return nil
	}
	kvs := make([]prefixtree.KV, n)
	for i := range kvs {
		kvs[i].Key = binary.LittleEndian.Uint64(rest[16*i:])
		kvs[i].Value = binary.LittleEndian.Uint64(rest[16*i+8:])
	}
	return kvs
}

// ReadFrame reads one length-prefixed frame payload from r into buf
// (growing it as needed) and returns the payload slice, which aliases buf.
func ReadFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, buf, ErrFrameSize
	}
	if n < headerBytes {
		return nil, buf, ErrTruncated
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}

// ReadMsg reads and decodes one version-1 frame from r; buf is the
// reusable read buffer, returned (possibly grown) for the next call.
func ReadMsg(r io.Reader, m *Msg, buf []byte) ([]byte, error) {
	return ReadMsgV(r, m, buf, VersionLegacy)
}

// ErrFromMsg converts a decoded TError into a Go error, mapping known
// reject codes onto their sentinels so callers can errors.Is on them.
func ErrFromMsg(m *Msg) error {
	var sentinel error
	switch m.Code {
	case CodeOverloaded:
		sentinel = ErrOverloaded
	case CodeDeadlineExceeded:
		sentinel = ErrDeadlineExceeded
	default:
		return errors.New(m.Err)
	}
	if m.Err == "" {
		return sentinel
	}
	return fmt.Errorf("%w: %s", sentinel, m.Err)
}

// CodeForErr classifies err into the wire reject code a TError should
// carry.
func CodeForErr(err error) uint8 {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDeadlineExceeded):
		return CodeDeadlineExceeded
	}
	return CodeGeneric
}

// ReadMsgV reads and decodes one frame from r using the given negotiated
// protocol version.
func ReadMsgV(r io.Reader, m *Msg, buf []byte, version uint16) ([]byte, error) {
	p, buf, err := ReadFrame(r, buf)
	if err != nil {
		return buf, err
	}
	return buf, DecodeMsgV(m, p, version)
}
