package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// sampleMsgs covers every message type with a representative payload; the
// round-trip test and the fuzz seed corpus both draw from it.
func sampleMsgs() []Msg {
	return []Msg{
		{Type: THello, Magic: Magic, Version: Version},
		{Type: TWelcome, Version: Version, Objects: []ObjectInfo{
			{ID: 1, Kind: KindIndex, Domain: 1 << 20, Name: "orders"},
			{ID: 2, Kind: KindColumn, Name: "prices"},
		}},
		{Type: TLookup, Tag: 7, Object: 1, Keys: []uint64{3, 1, 4, 1, 5}},
		{Type: TUpsert, Tag: 8, Object: 1, KVs: []prefixtree.KV{{Key: 2, Value: 20}, {Key: 4, Value: 40}}},
		{Type: TDelete, Tag: 9, Object: 1, Keys: []uint64{2}},
		{Type: TScan, Tag: 10, Object: 1, Pred: colstore.Predicate{Op: colstore.Between, Operand: 5, High: 50}, Lo: 100, Hi: 999, Limit: 0},
		{Type: TScan, Tag: 11, Object: 1, Pred: colstore.Predicate{Op: colstore.All}, Lo: 0, Hi: 1<<20 - 1, Limit: 128},
		{Type: TColScan, Tag: 12, Object: 2, Pred: colstore.Predicate{Op: colstore.Greater, Operand: 17}},
		// Scan frames with degenerate predicate bounds: inverted key
		// ranges and empty-interval predicates must decode (they mean
		// "matches nothing"), never trip the decoder or the server.
		{Type: TScan, Tag: 20, Object: 1, Pred: colstore.Predicate{Op: colstore.All}, Lo: 999, Hi: 100},
		{Type: TScan, Tag: 21, Object: 1, Pred: colstore.Predicate{Op: colstore.Between, Operand: 50, High: 5}, Lo: 0, Hi: 1<<20 - 1},
		{Type: TScan, Tag: 22, Object: 1, Pred: colstore.Predicate{Op: colstore.Less, Operand: 0}, Lo: 0, Hi: 0},
		{Type: TScan, Tag: 23, Object: 1, Pred: colstore.Predicate{Op: colstore.Greater, Operand: ^uint64(0)}, Lo: 0, Hi: ^uint64(0), Limit: 1},
		{Type: TColScan, Tag: 24, Object: 2, Pred: colstore.Predicate{Op: colstore.Between, Operand: ^uint64(0), High: 0}},
		{Type: TColScan, Tag: 25, Object: 2, Pred: colstore.Predicate{Op: colstore.Between, Operand: 0, High: ^uint64(0)}},
		{Type: TResult, Tag: 7, KVs: []prefixtree.KV{{Key: 3, Value: 30}}},
		{Type: TAck, Tag: 8},
		{Type: TAgg, Tag: 10, Matched: 42, Sum: 4242},
		{Type: TError, Tag: 13, Err: "core: object 9 is not an index"},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Type, err)
		}
		plen := int(binary.LittleEndian.Uint32(frame))
		if plen != len(frame)-4 {
			t.Fatalf("%v: frame length %d, payload %d", m.Type, plen, len(frame)-4)
		}
		var got Msg
		if err := DecodeMsg(&got, frame[4:]); err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v: round trip mismatch:\n sent %+v\n got  %+v", m.Type, m, got)
		}
	}
}

// sampleMsgsV2 is the v2 corpus: the v1 samples plus deadline-carrying
// requests and coded errors, which only exist on version ≥ 2 frames.
func sampleMsgsV2() []Msg {
	msgs := sampleMsgs()
	for i := range msgs {
		if !handshakeType(msgs[i].Type) {
			msgs[i].DeadlineUS = uint32(1000 * (i + 1))
		}
	}
	return append(msgs,
		Msg{Type: TError, Tag: 14, Code: CodeOverloaded, Err: "server overloaded", DeadlineUS: 500},
		Msg{Type: TError, Tag: 15, Code: CodeDeadlineExceeded, Err: "deadline exceeded"},
	)
}

func TestRoundTripV2(t *testing.T) {
	for _, m := range sampleMsgsV2() {
		frame, err := AppendFrameV(nil, &m, Version)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Type, err)
		}
		var got Msg
		if err := DecodeMsgV(&got, frame[4:], Version); err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v: v2 round trip mismatch:\n sent %+v\n got  %+v", m.Type, m, got)
		}
	}
}

// TestHandshakeFramingIsVersionless pins the negotiation invariant: Hello
// and Welcome encode identically no matter what version the encoder was
// asked for, so a v2 client's handshake is readable by a v1 server and
// vice versa.
func TestHandshakeFramingIsVersionless(t *testing.T) {
	for _, m := range []Msg{
		{Type: THello, Magic: Magic, Version: Version},
		{Type: TWelcome, Version: Version, Objects: []ObjectInfo{{ID: 1, Kind: KindIndex, Domain: 64, Name: "kv"}}},
	} {
		v1, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := AppendFrameV(nil, &m, Version)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v1, v2) {
			t.Fatalf("%v: handshake framing differs between versions:\n v1 %x\n v2 %x", m.Type, v1, v2)
		}
	}
}

func TestErrCodeMapping(t *testing.T) {
	cases := []struct {
		msg  Msg
		want error
	}{
		{Msg{Type: TError, Code: CodeOverloaded, Err: "busy"}, ErrOverloaded},
		{Msg{Type: TError, Code: CodeOverloaded}, ErrOverloaded},
		{Msg{Type: TError, Code: CodeDeadlineExceeded, Err: "late"}, ErrDeadlineExceeded},
	}
	for _, tc := range cases {
		err := ErrFromMsg(&tc.msg)
		if !errors.Is(err, tc.want) {
			t.Errorf("code %d: err %v does not match %v", tc.msg.Code, err, tc.want)
		}
		if CodeForErr(err) != tc.msg.Code {
			t.Errorf("CodeForErr(%v) = %d, want %d", err, CodeForErr(err), tc.msg.Code)
		}
	}
	generic := ErrFromMsg(&Msg{Type: TError, Err: "boom"})
	if errors.Is(generic, ErrOverloaded) || errors.Is(generic, ErrDeadlineExceeded) {
		t.Fatalf("generic error %v matched a typed sentinel", generic)
	}
	if CodeForErr(generic) != CodeGeneric {
		t.Fatalf("CodeForErr(generic) = %d", CodeForErr(generic))
	}
}

// TestV2DecodeRejectsTruncatedDeadline covers the bytes v2 adds: a data
// header cut inside the deadline field, and a TError cut inside the code.
func TestV2DecodeRejectsTruncatedDeadline(t *testing.T) {
	frame, err := AppendFrameV(nil, &Msg{Type: TAck, Tag: 3, DeadlineUS: 77}, Version)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	var m Msg
	if err := DecodeMsgV(&m, payload[:headerBytes+2], Version); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated deadline: err = %v, want ErrTruncated", err)
	}
	if err := DecodeMsgV(&m, payload[:headerBytes], Version); !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing deadline: err = %v, want ErrTruncated", err)
	}
	errFrame, err := AppendFrameV(nil, &Msg{Type: TError, Tag: 4, Code: CodeOverloaded, Err: ""}, Version)
	if err != nil {
		t.Fatal(err)
	}
	p := errFrame[4:]
	if err := DecodeMsgV(&m, p[:len(p)-2], Version); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated error code: err = %v, want ErrTruncated", err)
	}
}

func TestReadMsgStream(t *testing.T) {
	var stream []byte
	msgs := sampleMsgs()
	for i := range msgs {
		var err error
		stream, err = AppendFrame(stream, &msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i := range msgs {
		var got Msg
		var err error
		buf, err = ReadMsg(r, &got, buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(msgs[i], got) {
			t.Fatalf("msg %d mismatch: %+v != %+v", i, got, msgs[i])
		}
	}
	if _, err := ReadMsg(r, new(Msg), buf); err == nil {
		t.Fatal("expected EOF at stream end")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	lookup, err := AppendFrame(nil, &Msg{Type: TLookup, Tag: 1, Object: 1, Keys: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	payload := lookup[4:]

	cases := []struct {
		name string
		p    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"header only", payload[:headerBytes], ErrTruncated},
		{"bad type zero", append([]byte{0}, payload[1:]...), ErrBadType},
		{"bad type high", append([]byte{200}, payload[1:]...), ErrBadType},
		{"truncated batch", payload[:len(payload)-3], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), payload...), 0xff), ErrTruncated},
		{"ack with body", []byte{byte(TAck), 0, 0, 0, 0, 0, 0, 0, 0, 1}, ErrTrailing},
		{"bad predicate", func() []byte {
			f, _ := AppendFrame(nil, &Msg{Type: TScan, Object: 1})
			p := append([]byte(nil), f[4:]...)
			p[headerBytes+4] = 99
			return p
		}(), ErrBadPred},
	}
	for _, tc := range cases {
		var m Msg
		if err := DecodeMsg(&m, tc.p); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRejectsLyingCounts(t *testing.T) {
	// A count field claiming more entries than the payload carries must be
	// rejected, not trusted into a huge allocation.
	var p []byte
	p = append(p, byte(TLookup))
	p = binary.LittleEndian.AppendUint64(p, 1)          // tag
	p = binary.LittleEndian.AppendUint32(p, 1)          // object
	p = binary.LittleEndian.AppendUint32(p, 0xffffffff) // count
	var m Msg
	if err := DecodeMsg(&m, p); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversized frame: err = %v, want ErrFrameSize", err)
	}
	binary.LittleEndian.PutUint32(hdr[:], 3) // below the message header
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("undersized frame: err = %v, want ErrTruncated", err)
	}
}
