package wire

import (
	"reflect"
	"testing"
)

// FuzzWireDecode holds the codec to its contract on arbitrary bytes: never
// panic, never allocate from a lying length field, and — when a payload
// does decode — survive an encode/decode round trip unchanged (the decoder
// accepts exactly the encoder's language).
func FuzzWireDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	for _, m := range sampleMsgsV2() {
		frame, err := AppendFrameV(nil, &m, Version)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TAck), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The same bytes must hold the contract under both negotiated
		// versions: never panic, and round-trip exactly when they decode.
		for _, v := range []uint16{VersionLegacy, Version} {
			var m Msg
			if err := DecodeMsgV(&m, data, v); err != nil {
				continue
			}
			frame, err := AppendFrameV(nil, &m, v)
			if err != nil {
				t.Fatalf("v%d: decoded message failed to encode: %v\nmsg: %+v", v, err, m)
			}
			var again Msg
			if err := DecodeMsgV(&again, frame[4:], v); err != nil {
				t.Fatalf("v%d: re-encoded message failed to decode: %v\nmsg: %+v", v, err, m)
			}
			if !reflect.DeepEqual(m, again) {
				t.Fatalf("v%d: round trip mismatch:\n first  %+v\n second %+v", v, m, again)
			}
		}
	})
}
