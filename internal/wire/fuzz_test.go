package wire

import (
	"reflect"
	"testing"
)

// FuzzWireDecode holds the codec to its contract on arbitrary bytes: never
// panic, never allocate from a lying length field, and — when a payload
// does decode — survive an encode/decode round trip unchanged (the decoder
// accepts exactly the encoder's language).
func FuzzWireDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TAck), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Msg
		if err := DecodeMsg(&m, data); err != nil {
			return
		}
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v\nmsg: %+v", err, m)
		}
		var again Msg
		if err := DecodeMsg(&again, frame[4:]); err != nil {
			t.Fatalf("re-encoded message failed to decode: %v\nmsg: %+v", err, m)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip mismatch:\n first  %+v\n second %+v", m, again)
		}
	})
}
