// Package csbtree implements a cache-sensitive B+-tree (Rao & Ross, SIGMOD
// 2000) used by ERIS for its range partition tables: the ordered map from a
// partition's lower key bound to the AEU that owns it. CSB+-trees store all
// children of a node contiguously, so each inner node keeps a single child
// pointer and spends its cache line almost entirely on keys — the right
// trade for a structure that is read on every routed data command but
// rewritten only by the load balancer.
//
// Trees are immutable after Build: the routing layer publishes updates by
// atomically swapping the tree pointer, which keeps readers completely
// latch-free. A flat sorted-array variant (Flat) with identical semantics
// exists for the partition-table ablation benchmark.
package csbtree

import (
	"fmt"
	"sort"
)

// Entry maps the inclusive lower bound of a key range to an owner (an AEU
// index). A table's entries partition the key domain: entry i owns keys in
// [Entries[i].Low, Entries[i+1].Low).
type Entry struct {
	Low   uint64
	Owner uint32
}

// nodeKeys is chosen so one inner node (keys + child index + count) fills
// two 64-byte cache lines, the layout the CSB+ paper recommends for 8-byte
// keys.
const nodeKeys = 14

type node struct {
	keys  [nodeKeys]uint64
	n     uint8
	first int32 // index of the leftmost child (children are contiguous)
}

// Tree is an immutable CSB+-tree over partition entries.
type Tree struct {
	inner   []node
	root    int32
	height  int // 0 = leaves only
	leaves  []Entry
	leafSz  int
	numLeaf int
}

// leafSize is how many entries one leaf groups; leaves are segments of one
// contiguous entry array.
const leafSize = nodeKeys

// Build constructs a tree from entries. Entries must be sorted by Low with
// no duplicates, and the first entry must cover the bottom of the domain
// (Low == 0) so that every key has an owner.
func Build(entries []Entry) (*Tree, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("csbtree: no entries")
	}
	if entries[0].Low != 0 {
		return nil, fmt.Errorf("csbtree: first entry must have Low 0, got %d", entries[0].Low)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Low <= entries[i-1].Low {
			return nil, fmt.Errorf("csbtree: entries not strictly sorted at %d (%d <= %d)",
				i, entries[i].Low, entries[i-1].Low)
		}
	}
	t := &Tree{
		leaves: append([]Entry(nil), entries...),
		leafSz: leafSize,
	}
	t.numLeaf = (len(entries) + leafSize - 1) / leafSize

	// Build inner levels bottom-up. Level 0 sits directly above the leaf
	// segments; each inner node indexes up to nodeKeys+1 children by the
	// smallest Low of each child except the first.
	childLows := make([]uint64, t.numLeaf)
	for i := 0; i < t.numLeaf; i++ {
		childLows[i] = entries[i*leafSize].Low
	}
	childFirst := int32(0) // leaf children are addressed by segment index
	level := 0
	for len(childLows) > 1 {
		numNodes := (len(childLows) + nodeKeys) / (nodeKeys + 1)
		starts := make([]uint64, 0, numNodes)
		base := int32(len(t.inner))
		for i := 0; i < numNodes; i++ {
			lo := i * (nodeKeys + 1)
			hi := lo + nodeKeys + 1
			if hi > len(childLows) {
				hi = len(childLows)
			}
			var nd node
			nd.first = childFirst + int32(lo)
			nd.n = uint8(hi - lo - 1)
			for k := 0; k < hi-lo-1; k++ {
				nd.keys[k] = childLows[lo+k+1]
			}
			t.inner = append(t.inner, nd)
			starts = append(starts, childLows[lo])
		}
		childLows = starts
		childFirst = base
		level++
	}
	t.height = level
	if level > 0 {
		t.root = int32(len(t.inner) - 1)
	}
	return t, nil
}

// MustBuild wraps Build for statically valid tables.
func MustBuild(entries []Entry) *Tree {
	t, err := Build(entries)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of entries.
func (t *Tree) Len() int { return len(t.leaves) }

// Height returns the number of inner levels above the leaves.
func (t *Tree) Height() int { return t.height }

// Entries returns the underlying sorted entry slice; callers must not
// modify it.
func (t *Tree) Entries() []Entry { return t.leaves }

// Lookup returns the owner of key: the entry with the greatest Low <= key.
func (t *Tree) Lookup(key uint64) uint32 {
	e := t.lookupEntry(key)
	return e.Owner
}

// LookupEntry returns the full entry owning key plus the exclusive upper
// bound of its range (MaxUint64 means the range is unbounded above).
func (t *Tree) LookupEntry(key uint64) (Entry, uint64) {
	idx := t.lookupIndex(key)
	hi := ^uint64(0)
	if idx+1 < len(t.leaves) {
		hi = t.leaves[idx+1].Low
	}
	return t.leaves[idx], hi
}

func (t *Tree) lookupEntry(key uint64) Entry {
	return t.leaves[t.lookupIndex(key)]
}

func (t *Tree) lookupIndex(key uint64) int {
	child := int32(0)
	if t.height > 0 {
		cur := t.root
		for lvl := t.height; lvl > 0; lvl-- {
			nd := &t.inner[cur]
			j := 0
			for j < int(nd.n) && key >= nd.keys[j] {
				j++
			}
			next := nd.first + int32(j)
			if lvl == 1 {
				child = next
				break
			}
			cur = next
		}
	}
	// child is a leaf segment index; binary-search within the segment.
	lo := int(child) * t.leafSz
	hi := lo + t.leafSz
	if hi > len(t.leaves) {
		hi = len(t.leaves)
	}
	// sort.Search finds the first entry with Low > key; the owner is the
	// one before it.
	seg := t.leaves[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i].Low > key })
	if i == 0 {
		// key is below the segment's first Low; can only happen for the
		// very first segment when callers pass key < leaves[0].Low, which
		// Build prevents by requiring Low 0.
		return lo
	}
	return lo + i - 1
}

// LookupBatchSorted resolves the owner of every key of an ascending-sorted
// batch: one tree descent for the first key, then a linear merge along the
// ordered entry array. A B-key batch therefore costs one walk plus
// O(B + entries crossed) instead of B independent descents — the batch
// owner-resolution primitive of the routing layer's split path. owners
// must have at least len(keys) elements; duplicate keys are fine, and a
// key that breaks the ascending order falls back to a fresh descent, so
// the result is correct (just slower) for unsorted input.
func (t *Tree) LookupBatchSorted(keys []uint64, owners []uint32) {
	if len(keys) == 0 {
		return
	}
	idx := t.lookupIndex(keys[0])
	for i, k := range keys {
		if k < t.leaves[idx].Low {
			idx = t.lookupIndex(k)
		}
		for idx+1 < len(t.leaves) && t.leaves[idx+1].Low <= k {
			idx++
		}
		owners[i] = t.leaves[idx].Owner
	}
}

// Range appends to dst every entry whose key range intersects [lo, hi]
// (inclusive) and returns the result; used for routing multicast range
// scans to all owning AEUs.
func (t *Tree) Range(dst []Entry, lo, hi uint64) []Entry {
	if hi < lo {
		return dst
	}
	i := t.lookupIndex(lo)
	for ; i < len(t.leaves); i++ {
		if t.leaves[i].Low > hi {
			break
		}
		dst = append(dst, t.leaves[i])
	}
	return dst
}

// Validate checks internal consistency against the entry array; used by
// tests and debug builds.
func (t *Tree) Validate() error {
	for key := range validateProbes(t.leaves) {
		want := flatLookup(t.leaves, key)
		if got := t.lookupIndex(key); got != want {
			return fmt.Errorf("csbtree: lookup(%d) = entry %d, want %d", key, got, want)
		}
	}
	return nil
}

// validateProbes yields probe keys around every boundary.
func validateProbes(entries []Entry) map[uint64]struct{} {
	probes := make(map[uint64]struct{})
	for _, e := range entries {
		probes[e.Low] = struct{}{}
		if e.Low > 0 {
			probes[e.Low-1] = struct{}{}
		}
		probes[e.Low+1] = struct{}{}
	}
	probes[^uint64(0)] = struct{}{}
	return probes
}

func flatLookup(entries []Entry, key uint64) int {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Low > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Flat is the sorted-array partition table used by the ablation benchmark:
// identical semantics to Tree, implemented as a binary search over the
// entry slice.
type Flat struct {
	entries []Entry
}

// BuildFlat constructs a flat table with the same validation as Build.
func BuildFlat(entries []Entry) (*Flat, error) {
	if _, err := Build(entries); err != nil {
		return nil, err
	}
	return &Flat{entries: append([]Entry(nil), entries...)}, nil
}

// Len returns the number of entries.
func (f *Flat) Len() int { return len(f.entries) }

// Lookup returns the owner of key.
func (f *Flat) Lookup(key uint64) uint32 {
	return f.entries[flatLookup(f.entries, key)].Owner
}

// LookupBatchSorted resolves owners for an ascending-sorted key batch, as
// Tree.LookupBatchSorted.
func (f *Flat) LookupBatchSorted(keys []uint64, owners []uint32) {
	if len(keys) == 0 {
		return
	}
	idx := flatLookup(f.entries, keys[0])
	for i, k := range keys {
		if k < f.entries[idx].Low {
			idx = flatLookup(f.entries, k)
		}
		for idx+1 < len(f.entries) && f.entries[idx+1].Low <= k {
			idx++
		}
		owners[i] = f.entries[idx].Owner
	}
}

// Range appends intersecting entries, as Tree.Range.
func (f *Flat) Range(dst []Entry, lo, hi uint64) []Entry {
	if hi < lo {
		return dst
	}
	for i := flatLookup(f.entries, lo); i < len(f.entries); i++ {
		if f.entries[i].Low > hi {
			break
		}
		dst = append(dst, f.entries[i])
	}
	return dst
}
