package csbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func uniformEntries(n int) []Entry {
	entries := make([]Entry, n)
	span := ^uint64(0) / uint64(n)
	for i := range entries {
		entries[i] = Entry{Low: uint64(i) * span, Owner: uint32(i)}
	}
	entries[0].Low = 0
	return entries
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Build([]Entry{{Low: 5}}); err == nil {
		t.Error("non-zero first Low accepted")
	}
	if _, err := Build([]Entry{{Low: 0}, {Low: 10}, {Low: 10}}); err == nil {
		t.Error("duplicate Low accepted")
	}
	if _, err := Build([]Entry{{Low: 0}, {Low: 10}, {Low: 5}}); err == nil {
		t.Error("unsorted entries accepted")
	}
}

func TestLookupSingleEntry(t *testing.T) {
	tr := MustBuild([]Entry{{Low: 0, Owner: 7}})
	for _, k := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		if got := tr.Lookup(k); got != 7 {
			t.Errorf("Lookup(%d) = %d", k, got)
		}
	}
}

func TestLookupBoundaries(t *testing.T) {
	entries := []Entry{{0, 0}, {100, 1}, {200, 2}, {300, 3}}
	tr := MustBuild(entries)
	cases := []struct {
		key  uint64
		want uint32
	}{
		{0, 0}, {99, 0}, {100, 1}, {101, 1}, {199, 1}, {200, 2}, {299, 2}, {300, 3}, {1 << 50, 3},
	}
	for _, c := range cases {
		if got := tr.Lookup(c.key); got != c.want {
			t.Errorf("Lookup(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestLookupEntryBounds(t *testing.T) {
	tr := MustBuild([]Entry{{0, 0}, {100, 1}, {200, 2}})
	e, hi := tr.LookupEntry(150)
	if e.Owner != 1 || e.Low != 100 || hi != 200 {
		t.Errorf("LookupEntry(150) = %+v, hi=%d", e, hi)
	}
	_, hi = tr.LookupEntry(500)
	if hi != ^uint64(0) {
		t.Errorf("last range upper bound = %d", hi)
	}
}

func TestLargeTableAgainstFlat(t *testing.T) {
	for _, n := range []int{1, 2, 14, 15, 16, 100, 512, 1000, 5000} {
		entries := uniformEntries(n)
		tr := MustBuild(entries)
		fl, err := BuildFlat(entries)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 2000; i++ {
			k := rng.Uint64()
			if got, want := tr.Lookup(k), fl.Lookup(k); got != want {
				t.Fatalf("n=%d: Lookup(%d) = %d, want %d", n, k, got, want)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 100 && tr.Height() == 0 {
			t.Errorf("n=%d: tree degenerated to height 0", n)
		}
	}
}

func TestRandomBoundariesProperty(t *testing.T) {
	check := func(raw []uint64) bool {
		lows := map[uint64]bool{0: true}
		for _, r := range raw {
			lows[r] = true
		}
		entries := make([]Entry, 0, len(lows))
		for low := range lows {
			entries = append(entries, Entry{Low: low, Owner: uint32(len(entries))})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Low < entries[j].Low })
		for i := range entries {
			entries[i].Owner = uint32(i)
		}
		tr, err := Build(entries)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	entries := []Entry{{0, 0}, {100, 1}, {200, 2}, {300, 3}}
	tr := MustBuild(entries)
	got := tr.Range(nil, 150, 250)
	if len(got) != 2 || got[0].Owner != 1 || got[1].Owner != 2 {
		t.Errorf("Range(150,250) = %+v", got)
	}
	got = tr.Range(nil, 0, ^uint64(0))
	if len(got) != 4 {
		t.Errorf("full range returned %d entries", len(got))
	}
	got = tr.Range(nil, 100, 100)
	if len(got) != 1 || got[0].Owner != 1 {
		t.Errorf("point range = %+v", got)
	}
	if got := tr.Range(nil, 10, 5); got != nil {
		t.Errorf("inverted range = %+v", got)
	}
	// Range starting inside an entry includes that entry.
	got = tr.Range(nil, 250, 260)
	if len(got) != 1 || got[0].Owner != 2 {
		t.Errorf("inner range = %+v", got)
	}
}

func TestRangeMatchesFlat(t *testing.T) {
	entries := uniformEntries(333)
	tr := MustBuild(entries)
	fl, _ := BuildFlat(entries)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if a > b {
			a, b = b, a
		}
		g1 := tr.Range(nil, a, b)
		g2 := fl.Range(nil, a, b)
		if len(g1) != len(g2) {
			t.Fatalf("Range(%d,%d): tree %d entries, flat %d", a, b, len(g1), len(g2))
		}
		for j := range g1 {
			if g1[j] != g2[j] {
				t.Fatalf("Range(%d,%d)[%d]: %+v vs %+v", a, b, j, g1[j], g2[j])
			}
		}
	}
}

func BenchmarkTreeLookup(b *testing.B) {
	tr := MustBuild(uniformEntries(512))
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(keys[i&1023])
	}
}

func BenchmarkFlatLookup(b *testing.B) {
	fl, _ := BuildFlat(uniformEntries(512))
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.Lookup(keys[i&1023])
	}
}
