package bench

import (
	"sync"

	"eris/internal/metrics"
)

// RunMetrics is the metrics sidecar of one measured engine run: the full
// registry snapshot at the start and end of the counter window plus the
// window delta, so a run's routing, AEU, memory, and interconnect activity
// can be analyzed next to its throughput table.
type RunMetrics struct {
	DurSec float64          `json:"dur_sec"`
	Start  metrics.Snapshot `json:"start"`
	End    metrics.Snapshot `json:"end"`
	Delta  metrics.Snapshot `json:"delta"`
}

var (
	runMetricsMu sync.Mutex
	runMetrics   []RunMetrics
)

func recordRunMetrics(rm RunMetrics) {
	runMetricsMu.Lock()
	runMetrics = append(runMetrics, rm)
	runMetricsMu.Unlock()
}

// TakeRunMetrics returns the sidecars of every engine run measured since
// the last call and resets the collector. Shared-baseline runs have no
// engine (and no registry), so they contribute no entries.
func TakeRunMetrics() []RunMetrics {
	runMetricsMu.Lock()
	defer runMetricsMu.Unlock()
	out := runMetrics
	runMetrics = nil
	return out
}
