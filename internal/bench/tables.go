package bench

import (
	"strings"

	"eris/internal/numasim"
	"eris/internal/topology"
)

// Table1 reproduces the machine specification overview.
func Table1(p Params) ([]*Table, error) {
	t := &Table{
		Title:   "Table 1: Machine Specification Overview",
		Headers: []string{"", "Intel machine", "AMD machine", "SGI machine"},
	}
	specs := []topology.MachineSpec{
		topology.Spec(topology.Intel()),
		topology.Spec(topology.AMD()),
		topology.Spec(topology.SGI()),
	}
	row := func(label string, get func(s topology.MachineSpec) string) {
		t.Add(label, get(specs[0]), get(specs[1]), get(specs[2]))
	}
	row("processors", func(s topology.MachineSpec) string { return s.Processors })
	row("cores", func(s topology.MachineSpec) string { return s.Cores })
	row("memory", func(s topology.MachineSpec) string { return s.Memory })
	row("LLC", func(s topology.MachineSpec) string { return s.LLC })
	row("interconnect", func(s topology.MachineSpec) string { return strings.Join(s.Interconnect, "; ") })
	row("OS", func(s topology.MachineSpec) string { return s.OS })
	return []*Table{t}, nil
}

// Table2 reproduces the bandwidth/latency-by-distance matrix by measuring
// the simulated machines end to end: a single pointer-chasing reader for
// latency and a single streaming core for pair bandwidth, per distance
// class. Measured values must reproduce the calibration (the paper's own
// numbers) — this experiment doubles as the simulator's self-check.
func Table2(p Params) ([]*Table, error) {
	var out []*Table
	for _, topo := range []*topology.Topology{topology.Intel(), topology.AMD(), topology.SGI()} {
		m, err := numasim.New(topo, numasim.Config{})
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:   "Table 2: " + topo.Name,
			Headers: []string{"distance", "bandwidth (GB/s)", "paper BW", "latency (ns)", "paper lat"},
		}
		for _, dc := range topo.DistanceClasses() {
			src, dst := dc.Src, dc.Dst
			core, _ := topo.CoresOfNode(src)

			// Latency: dependent 8-byte reads (pointer chasing), fresh
			// addresses so no cache interferes even when enabled.
			const chases = 1000
			before := m.Clock(core)
			for i := 0; i < chases; i++ {
				m.Read(core, dst, m.Alloc(8), 8, 1)
			}
			latNS := float64(m.Clock(core)-before) / 1000 / chases

			// Bandwidth: one long sequential stream.
			const bytes = 64 << 20
			before = m.Clock(core)
			m.Stream(core, dst, bytes)
			sec := float64(m.Clock(core)-before) / 1e12
			bw := bytes / sec / 1e9

			t.Add(dc.Class, bw, dc.Cost.BandwidthGBs, latNS, dc.Cost.LatencyNS)
		}
		t.Note("measured through the full access path; latency includes the 8 B transfer time")
		out = append(out, t)
	}
	return out, nil
}
