package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tb.Add("alpha", 1.5)
	tb.Add("beta", int64(42))
	tb.Add("gamma", uint64(7))
	tb.Add("big", 2.5e9)
	tb.Note("a note with %d placeholder", 3)
	out := tb.String()
	for _, want := range []string{"== Demo ==", "alpha", "1.500", "42", "2.500e+09", "note: a note with 3 placeholder"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Paper == "" {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) < 17 {
		t.Errorf("registry has %d experiments", len(seen))
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestParams(t *testing.T) {
	p := Params{}
	if p.scale() != DefaultScale {
		t.Errorf("scale = %f", p.scale())
	}
	if p.cacheScale() != DefaultScale/8 {
		t.Errorf("cacheScale = %f", p.cacheScale())
	}
	if (Params{Scale: 4}).cacheScale() != 1 {
		t.Errorf("cacheScale floor broken")
	}
	if (Params{Quick: true}).dur(1) != 0.1 {
		t.Errorf("quick dur")
	}
}

func TestTable1Content(t *testing.T) {
	tables, err := Table1(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	for _, want := range []string{"Xeon E7-4860", "Opteron 6274", "512 cores", "NumaLink6"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable2Calibration(t *testing.T) {
	tables, err := Table2(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d tables", len(tables))
	}
	// Every row's measured bandwidth must match the paper column exactly
	// and the latency within 2% (the 8-byte transfer adds a little).
	for _, tb := range tables {
		for _, row := range tb.Rows {
			if row[1] != row[2] {
				t.Errorf("%s %s: measured BW %s != paper %s", tb.Title, row[0], row[1], row[2])
			}
		}
	}
	amd := tables[1]
	if len(amd.Rows) != 6 {
		t.Errorf("AMD has %d distance classes, want 6", len(amd.Rows))
	}
}

func TestAblationTransferShape(t *testing.T) {
	tables, err := AblationTransfer(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	link := mustFloat(t, rows[0][2])
	cp := mustFloat(t, rows[1][2])
	if link >= cp {
		t.Errorf("link transfer (%f us) should be far cheaper than copy (%f us)", link, cp)
	}
	if cp/link < 10 {
		t.Errorf("copy/link ratio %f suspiciously low", cp/link)
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
