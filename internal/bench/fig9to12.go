package bench

import (
	"eris/internal/cache"
	"eris/internal/shared"
	"eris/internal/topology"
)

// Fig9 reproduces the scan-bandwidth comparison on the SGI machine: a
// column scanned by all workers with the memory allocated (1) on a single
// multiprocessor, (2) interleaved over all multiprocessors, or (3) local
// to each scanning AEU (ERIS). The paper measures 6.6x higher bandwidth for
// ERIS than interleaved, with ERIS reaching 93.6% of the machine's
// accumulated local memory bandwidth.
func Fig9(p Params) ([]*Table, error) {
	scale := p.scale()
	entries := int64(8e9 / scale)
	dur := p.dur(0.001)
	// The paper uses 488 cores / 61 sockets (the batch-system limit).
	topo := topology.SGISubset(61)
	workers := 488
	if workers > topo.NumCores() {
		workers = topo.NumCores()
	}
	if p.Quick {
		topo = topology.SGISubset(8)
		workers = topo.NumCores()
	}

	single, err := sharedScanRun(topo, workers, shared.SingleNode, entries, dur)
	if err != nil {
		return nil, err
	}
	inter, err := sharedScanRun(topo, workers, shared.Interleaved, entries, dur)
	if err != nil {
		return nil, err
	}
	eris, err := erisScanRun(setup{Topo: topo, NumAEUs: workers}, entries, dur)
	if err != nil {
		return nil, err
	}

	total := topo.TotalLocalBandwidth()
	t := &Table{
		Title:   "Figure 9: Scan Bandwidth vs. Memory Allocation Strategy (SGI)",
		Headers: []string{"strategy", "scan BW (GB/s)", "vs ERIS", "% of aggregate local BW", "bound by"},
	}
	t.Add("Single RAM", single.MCGBs, speedup(single.MCGBs, eris.MCGBs), 100*single.MCGBs/total, single.BoundBy)
	t.Add("Interleaved", inter.MCGBs, speedup(inter.MCGBs, eris.MCGBs), 100*inter.MCGBs/total, inter.BoundBy)
	t.Add("ERIS", eris.MCGBs, 1.0, 100*eris.MCGBs/total, eris.BoundBy)
	t.Note("paper: ERIS 6.6x over interleaved; ERIS reaches 93.6%% of accumulated local bandwidth")
	return []*Table{t}, nil
}

// Fig10 reproduces the L3 miss-ratio comparison on the AMD machine for
// growing index sizes: the shared index suffers a higher miss ratio at
// small and medium sizes because every node's LLC holds the same upper
// tree levels (replication shrinks the effective cache), while each ERIS
// AEU caches only its own partition's subtree.
func Fig10(p Params) ([]*Table, error) {
	topo := topology.AMD()
	cscale := p.cacheScale()
	dur := p.dur(0.002)
	t := &Table{
		Title:   "Figure 10: L3 Cache Miss Ratio on AMD",
		Headers: []string{"keys (scaled)", "ERIS miss ratio", "shared miss ratio"},
	}
	for _, domain := range fig8Sizes(p, false) {
		el, err := erisLookupRun(setup{Topo: topo, CacheScale: cscale}, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		sl, err := sharedLookupRun(topo, topo.NumCores(), cscale, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		t.Add(domain, el.MissRatio(), sl.MissRatio())
	}
	t.Note("paper: shared misses more for small/medium indexes; both converge as the index outgrows any cache")
	return []*Table{t}, nil
}

// Fig11 reproduces the cache-line-state breakdown of L3 hits on the Intel
// machine with the 1 B key index: the shared index sees ~79%% of hits on
// Shared/Forward lines (the same line replicated in several caches), ERIS
// ~97%% on Modified/Exclusive lines (perfect locality).
func Fig11(p Params) ([]*Table, error) {
	topo := topology.Intel()
	cscale := p.cacheScale()
	domain := uint64(1e9 / p.scale())
	dur := p.dur(0.002)

	el, err := erisLookupRun(setup{Topo: topo, CacheScale: cscale}, domain, 64, dur)
	if err != nil {
		return nil, err
	}
	sl, err := sharedLookupRun(topo, topo.NumCores(), cscale, domain, 64, dur)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 11: L3 Cache Line States on Intel — Percentage of All Hits (1B keys scaled)",
		Headers: []string{"engine", "Modified %", "Exclusive %", "Shared %", "Forward %", "M+E %", "S+F %"},
	}
	add := func(name string, r interface{ HitShare(...cache.State) float64 }) {
		t.Add(name,
			100*r.HitShare(cache.Modified), 100*r.HitShare(cache.Exclusive),
			100*r.HitShare(cache.Shared), 100*r.HitShare(cache.Forward),
			100*r.HitShare(cache.Modified, cache.Exclusive),
			100*r.HitShare(cache.Shared, cache.Forward))
	}
	add("ERIS", el)
	add("shared", sl)
	t.Note("paper: shared 79.3%% of hits on Shared/Forward lines; ERIS 97%% on Modified/Exclusive")
	return []*Table{t}, nil
}

// Fig12 reproduces the link and memory-controller activity measurement on
// the AMD machine (scan of 8 GB, lookups on 1 B keys, both scaled): the
// shared setups push tens of GB/s over the interconnect while starving the
// memory controllers; ERIS's traffic is almost entirely local.
func Fig12(p Params) ([]*Table, error) {
	topo := topology.AMD()
	scale := p.scale()
	cscale := p.cacheScale()
	scanEntries := int64(1e9 / scale) // 8 GB of 8-byte entries, scaled
	domain := uint64(1e9 / scale)
	dur := p.dur(0.002)

	sharedScan, err := sharedScanRun(topo, topo.NumCores(), shared.Interleaved, scanEntries, dur)
	if err != nil {
		return nil, err
	}
	erisScan, err := erisScanRun(setup{Topo: topo}, scanEntries, dur)
	if err != nil {
		return nil, err
	}
	sharedIdx, err := sharedLookupRun(topo, topo.NumCores(), cscale, domain, 64, dur)
	if err != nil {
		return nil, err
	}
	erisIdx, err := erisLookupRun(setup{Topo: topo, CacheScale: cscale}, domain, 64, dur)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Figure 12: Link and Memory Controller Activity on AMD (scan 8GB, lookup 1B keys, scaled)",
		Headers: []string{"setup", "link traffic (GB/s)", "memory ctrl (GB/s)", "ops (M/s)"},
	}
	t.Add("shared scan (interleaved)", sharedScan.LinkGBs, sharedScan.MCGBs, mops(sharedScan.Throughput))
	t.Add("ERIS scan", erisScan.LinkGBs, erisScan.MCGBs, mops(erisScan.Throughput))
	t.Add("shared index lookup", sharedIdx.LinkGBs, sharedIdx.MCGBs, mops(sharedIdx.Throughput))
	t.Add("ERIS index lookup", erisIdx.LinkGBs, erisIdx.MCGBs, mops(erisIdx.Throughput))
	t.Note("paper: shared scan 75.6 GB/s links / 33.8 GB/s MC; ERIS scan 1.2 / 122.9; shared lookup 83.8 / 41.6; ERIS lookup 17.8 / 73.0")
	return []*Table{t}, nil
}
