// Package bench regenerates every table and figure of the ERIS paper's
// evaluation on the simulated NUMA machines. Each experiment is a function
// returning one or more Tables whose rows mirror the paper's series; the
// cmd/erisbench binary and the repository-level Go benchmarks call into
// this package.
//
// Scaling: the paper's data sizes (up to 32 billion keys, 8 TB of RAM) are
// divided by the scale factor (default 2048) and the modeled LLC capacities
// are divided by the same factor, so the cache-resident-to-memory-bound
// transitions happen at the same *relative* index sizes as on the real
// machines. Virtual run times are scaled likewise. EXPERIMENTS.md records
// paper-vs-measured values for every artifact.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// DefaultScale divides the paper's data sizes and cache capacities.
const DefaultScale = 2048

// Params tunes an experiment run.
type Params struct {
	// Quick shrinks durations and sweep points for tests; the full
	// configuration is used by cmd/erisbench and the repo benchmarks.
	Quick bool
	// Scale overrides DefaultScale (0 = default).
	Scale float64
}

func (p Params) scale() float64 {
	if p.Scale == 0 {
		return DefaultScale
	}
	return p.Scale
}

// cacheScale divides the modeled LLC capacities. It is deliberately gentler
// than the data scale: the scaled-down tries are 4 levels deep instead of
// the paper's 8 and their fixed 1 KiB node size amortizes over fewer keys,
// so shrinking the LLC by the full data factor would push the
// cache-resident-to-memory-bound transition far below the paper's relative
// position. Dividing by scale/8 restores it (see EXPERIMENTS.md).
func (p Params) cacheScale() float64 {
	cs := p.scale() / 8
	if cs < 1 {
		cs = 1
	}
	return cs
}

// dur picks a measurement window in virtual seconds.
func (p Params) dur(full float64) float64 {
	if p.Quick {
		return full / 10
	}
	return full
}

// Table is one printable result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Note records a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Experiment is a named, runnable paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure it reproduces
	Run   func(p Params) ([]*Table, error)
}

// Registry lists every reproducible artifact in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Paper: "Table 1: machine specification overview", Run: Table1},
		{ID: "table2", Paper: "Table 2: memory bandwidth and latency by distance", Run: Table2},
		{ID: "fig1", Paper: "Figure 1: lookup and scan scalability on SGI UV 2000", Run: Fig1},
		{ID: "fig5", Paper: "Figure 5: routing throughput vs. outgoing buffer size", Run: Fig5},
		{ID: "fig8a", Paper: "Figure 8a: lookup/upsert throughput vs. index size (Intel)", Run: Fig8Intel},
		{ID: "fig8b", Paper: "Figure 8b: lookup/upsert throughput vs. index size (AMD)", Run: Fig8AMD},
		{ID: "fig8c", Paper: "Figure 8c: lookup/upsert throughput vs. index size (SGI)", Run: Fig8SGI},
		{ID: "fig9", Paper: "Figure 9: scan bandwidth vs. allocation strategy (SGI)", Run: Fig9},
		{ID: "fig10", Paper: "Figure 10: L3 miss ratio (AMD)", Run: Fig10},
		{ID: "fig11", Paper: "Figure 11: L3 hit cache-line states (Intel, 1B keys)", Run: Fig11},
		{ID: "fig12", Paper: "Figure 12: link and memory controller activity (AMD)", Run: Fig12},
		{ID: "fig13", Paper: "Figure 13: load balancer adaptivity (AMD)", Run: Fig13},
		{ID: "ablation-buffer", Paper: "Ablation: outgoing-buffer pre-batching vs direct writes", Run: AblationDirectWrite},
		{ID: "ablation-table", Paper: "Ablation: CSB+-tree vs flat-array partition table", Run: AblationPartitionTable},
		{ID: "ablation-coalesce", Paper: "Ablation: command grouping/coalescing on vs off", Run: AblationCoalescing},
		{ID: "ablation-transfer", Paper: "Ablation: link vs copy partition transfer", Run: AblationTransfer},
		{ID: "ablation-ma", Paper: "Ablation: moving-average window sweep", Run: AblationMAWindow},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
