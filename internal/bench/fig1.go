package bench

import (
	"eris/internal/topology"
)

// Fig1 reproduces the headline scalability figure: index lookup throughput
// (paper: 1 billion keys, scaled down) and full column scans on the SGI
// UV 2000, varying the number of multiprocessors. The paper reports a
// more-than-linear lookup speedup — adding sockets adds last-level cache,
// so a fixed-size index becomes increasingly cache resident — and linear
// scan scaling bounded only by the aggregate local memory bandwidth.
func Fig1(p Params) ([]*Table, error) {
	scale := p.scale()
	cscale := p.cacheScale()
	domain := uint64(1e9 / scale)     // 1 B keys scaled
	scanEntries := int64(8e9 / scale) // 8 B column entries scaled
	sockets := []int{1, 2, 4, 8, 16, 32, 64}
	if p.Quick {
		sockets = []int{1, 4, 16}
	}
	durLookup := p.dur(0.002)
	durScan := p.dur(0.0005)

	lookup := &Table{
		Title:   "Figure 1 (left): Index Lookup Scalability on SGI UV 2000",
		Headers: []string{"sockets", "cores", "lookups (M/s)", "speedup", "efficiency"},
	}
	scan := &Table{
		Title:   "Figure 1 (right): Column Scan Scalability on SGI UV 2000",
		Headers: []string{"sockets", "cores", "scan BW (GB/s)", "speedup", "bound by"},
	}
	var lookupBase, scanBase float64
	for _, n := range sockets {
		topo := topology.SGISubset(n)
		s := setup{Topo: topo, CacheScale: cscale}

		lr, err := erisLookupRun(s, domain, 64, durLookup)
		if err != nil {
			return nil, err
		}
		if lookupBase == 0 {
			lookupBase = lr.Throughput / float64(topo.NumNodes())
		}
		su := speedup(lr.Throughput, lookupBase)
		lookup.Add(topo.NumNodes(), topo.NumCores(), mops(lr.Throughput), su, su/float64(topo.NumNodes()))

		sr, err := erisScanRun(s, scanEntries, durScan)
		if err != nil {
			return nil, err
		}
		if scanBase == 0 {
			scanBase = sr.MCGBs / float64(topo.NumNodes())
		}
		scan.Add(topo.NumNodes(), topo.NumCores(), sr.MCGBs, speedup(sr.MCGBs, scanBase), sr.BoundBy)
	}
	lookup.Note("paper: more-than-linear speedup for 1 B keys; efficiency > 1 indicates the cache effect")
	scan.Note("paper: linear scan scaling limited only by local memory bandwidth (36.2 GB/s per socket)")
	return []*Table{lookup, scan}, nil
}
