package bench

import (
	"fmt"

	"eris/internal/topology"
)

// Fig8 reproduces the point-access experiments: lookup and upsert
// throughput of ERIS vs. the NUMA-agnostic shared index for growing index
// sizes, on all three machines. The paper's shape: on the small Intel
// machine with small indexes, the shared index wins (ERIS pays the routing
// overhead); with more multiprocessors and larger indexes ERIS clearly
// supersedes it (~1.6x on AMD at 1 B keys, ~3.5x on SGI at 16 B keys).

// fig8Sizes returns the scaled index sizes for one machine.
func fig8Sizes(p Params, sgi bool) []uint64 {
	scale := p.scale()
	// Paper: 16 M .. 2 G keys (Intel/AMD), 16 M .. 32 G (SGI).
	paper := []float64{16e6, 64e6, 256e6, 1e9, 2e9}
	if sgi {
		// Fewer points at 512 AEUs: each run is expensive on the host.
		paper = []float64{16e6, 1e9, 16e9, 32e9}
	}
	if p.Quick {
		paper = paper[:2]
	}
	sizes := make([]uint64, 0, len(paper))
	for _, s := range paper {
		n := uint64(s / scale)
		if n < 4096 {
			n = 4096
		}
		sizes = append(sizes, n)
	}
	return sizes
}

func fig8Machine(p Params, topo *topology.Topology, sgi bool, title string) (*Table, error) {
	t := &Table{
		Title: title,
		Headers: []string{"keys (scaled)", "paper keys", "ERIS lookup (M/s)", "shared lookup (M/s)", "lookup ratio",
			"ERIS upsert (M/s)", "shared upsert (M/s)", "upsert ratio"},
	}
	scale := p.scale()
	cscale := p.cacheScale()
	dur := p.dur(0.002)
	for _, domain := range fig8Sizes(p, sgi) {
		s := setup{Topo: topo, CacheScale: cscale}
		el, err := erisLookupRun(s, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		sl, err := sharedLookupRun(topo, topo.NumCores(), cscale, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		eu, err := erisUpsertRun(s, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		su, err := sharedUpsertRun(topo, topo.NumCores(), cscale, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		t.Add(domain, fmt.Sprintf("%.0fM", float64(domain)*scale/1e6),
			mops(el.Throughput), mops(sl.Throughput), speedup(el.Throughput, sl.Throughput),
			mops(eu.Throughput), mops(su.Throughput), speedup(eu.Throughput, su.Throughput))
	}
	t.Note("ratio > 1 means ERIS ahead; paper: shared wins small-on-small-machine, ERIS wins at scale")
	return t, nil
}

// Fig8Intel is Figure 8(a).
func Fig8Intel(p Params) ([]*Table, error) {
	t, err := fig8Machine(p, topology.Intel(), false, "Figure 8a: Lookup/Upsert Throughput vs. Index Size (Intel)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Fig8AMD is Figure 8(b).
func Fig8AMD(p Params) ([]*Table, error) {
	t, err := fig8Machine(p, topology.AMD(), false, "Figure 8b: Lookup/Upsert Throughput vs. Index Size (AMD)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Fig8SGI is Figure 8(c).
func Fig8SGI(p Params) ([]*Table, error) {
	t, err := fig8Machine(p, topology.SGI(), true, "Figure 8c: Lookup/Upsert Throughput vs. Index Size (SGI)")
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}
