package bench

import (
	"fmt"
	"time"

	"eris/internal/aeu"
	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/hwcounter"
	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/shared"
	"eris/internal/topology"
	"eris/internal/workload"
)

// benchObj is the data object id all experiments use.
const benchObj routing.ObjectID = 1

// realTimeout bounds one measured phase in real time.
const realTimeout = 20 * time.Minute

// setup describes one engine instantiation.
type setup struct {
	Topo       *topology.Topology
	NumAEUs    int     // 0 = all cores
	CacheScale float64 // 0 = cache modeling off
	OutBuf     int     // routing outgoing buffer bytes (0 = default)
	InBuf      int
	NoCoalesce bool
	FlatTables bool
	ChunkEnt   int // column chunk entries (0 = default)
	FlushOlap  int // routing flush pipelining override (0 = default)
}

func (s setup) engineConfig() core.Config {
	return core.Config{
		Topology: s.Topo,
		NumAEUs:  s.NumAEUs,
		Machine:  numasim.Config{CacheScale: s.CacheScale},
		Routing: routing.Config{
			OutBufBytes: s.OutBuf, InBufBytes: s.InBuf,
			FlatTables: s.FlatTables, FlushOverlap: s.FlushOlap,
		},
		AEU:    aeu.Config{SkewWindowNS: 1e6, NoCoalesce: s.NoCoalesce},
		Tree:   prefixtree.Config{KeyBits: 64, PrefixBits: 8},
		Column: colstore.Config{ChunkEntries: s.ChunkEnt},
	}
}

// runMeasured starts the engine, opens a counter window, waits durSec of
// virtual time and returns the report. The engine's metrics snapshots at
// window start and end are recorded for TakeRunMetrics.
func runMeasured(e *core.Engine, durSec float64) (hwcounter.Report, error) {
	if err := e.Start(); err != nil {
		return hwcounter.Report{}, err
	}
	session := hwcounter.Start(e.Machine())
	startSnap := e.MetricsSnapshot()
	if err := e.WaitVirtual(durSec, realTimeout); err != nil {
		e.Stop()
		return hwcounter.Report{}, err
	}
	report := session.Report()
	endSnap := e.MetricsSnapshot()
	e.Stop()
	recordRunMetrics(RunMetrics{
		DurSec: durSec,
		Start:  startSnap,
		End:    endSnap,
		Delta:  endSnap.Delta(startSnap),
	})
	return report, nil
}

// erisLookupRun loads a dense domain and measures routed uniform lookups.
func erisLookupRun(s setup, domain uint64, batch int, durSec float64) (hwcounter.Report, error) {
	e, err := core.New(s.engineConfig())
	if err != nil {
		return hwcounter.Report{}, err
	}
	defer e.Stop()
	if err := e.CreateIndex(benchObj, domain); err != nil {
		return hwcounter.Report{}, err
	}
	if err := e.LoadIndexDense(benchObj, domain, nil); err != nil {
		return hwcounter.Report{}, err
	}
	e.SetGenerators(func(i int) aeu.Generator {
		return &core.LookupGenerator{
			Object: benchObj, Keys: workload.Uniform{Domain: domain},
			Batch: batch, PerLoop: perLoopFor(e.NumAEUs()), DurationSec: durSec * 3,
		}
	})
	return runMeasured(e, durSec)
}

// perLoopFor keeps the generated keys per target per loop roughly constant
// as the AEU count grows, so loop-end flushes stay amortized (the paper's
// outgoing buffers exist exactly for this).
func perLoopFor(numAEUs int) int {
	p := numAEUs / 4
	if p < 16 {
		p = 16
	}
	if p > 128 {
		p = 128
	}
	return p
}

// erisUpsertRun measures routed random upserts into an initially empty
// index over the given key domain.
func erisUpsertRun(s setup, domain uint64, batch int, durSec float64) (hwcounter.Report, error) {
	e, err := core.New(s.engineConfig())
	if err != nil {
		return hwcounter.Report{}, err
	}
	defer e.Stop()
	if err := e.CreateIndex(benchObj, domain); err != nil {
		return hwcounter.Report{}, err
	}
	e.SetGenerators(func(i int) aeu.Generator {
		return &core.UpsertGenerator{
			Object: benchObj, Keys: workload.Uniform{Domain: domain},
			Batch: batch, PerLoop: perLoopFor(e.NumAEUs()), DurationSec: durSec * 3,
		}
	})
	return runMeasured(e, durSec)
}

// erisScanRun loads a column (entries split over all AEUs) and measures
// multicast full scans.
func erisScanRun(s setup, totalEntries int64, durSec float64) (hwcounter.Report, error) {
	e, err := core.New(s.engineConfig())
	if err != nil {
		return hwcounter.Report{}, err
	}
	defer e.Stop()
	if err := e.CreateColumn(benchObj); err != nil {
		return hwcounter.Report{}, err
	}
	per := totalEntries / int64(e.NumAEUs())
	if per < 1 {
		per = 1
	}
	if err := e.LoadColumnUniform(benchObj, per, nil); err != nil {
		return hwcounter.Report{}, err
	}
	// Sustained scanning: each AEU scans its partition repeatedly, the
	// steady state of the paper's minute-long scan runs. The ~50%
	// selectivity filter keeps the pass streaming data: the uniform values
	// span the domain in every block, so the zone maps can neither skip nor
	// fully accept one — an unfiltered aggregate would be answered from the
	// per-block aggregates without touching memory, and this experiment
	// measures scan bandwidth.
	e.SetGenerators(func(i int) aeu.Generator {
		return &core.SelfScanGenerator{
			Object: benchObj, Pred: colstore.Predicate{Op: colstore.Less, Operand: 1 << 63},
			DurationSec: durSec * 3,
		}
	})
	return runMeasured(e, durSec)
}

// erisMulticastScanRun loads a column and measures routed multicast scans:
// every AEU keeps a window of scans in flight against all partitions, the
// path where receivers fold concurrent scans into shared passes (and where
// NoCoalesce forces one partition pass per scan command).
func erisMulticastScanRun(s setup, totalEntries int64, durSec float64) (hwcounter.Report, error) {
	e, err := core.New(s.engineConfig())
	if err != nil {
		return hwcounter.Report{}, err
	}
	defer e.Stop()
	if err := e.CreateColumn(benchObj); err != nil {
		return hwcounter.Report{}, err
	}
	per := totalEntries / int64(e.NumAEUs())
	if per < 1 {
		per = 1
	}
	if err := e.LoadColumnUniform(benchObj, per, nil); err != nil {
		return hwcounter.Report{}, err
	}
	// As in erisScanRun, the ~50% filter defeats the zone-map shortcuts so
	// every shared pass streams the partition — the cost the coalescing
	// ablation amortizes across the scans of a group.
	e.SetGenerators(func(i int) aeu.Generator {
		return &core.ScanGenerator{
			Object: benchObj, Pred: colstore.Predicate{Op: colstore.Less, Operand: 1 << 63},
			DurationSec: durSec * 3,
		}
	})
	return runMeasured(e, durSec)
}

// sharedMachine builds the machine + memory for a shared baseline run.
func sharedMachine(topo *topology.Topology, cacheScale float64) (*numasim.Machine, *mem.System, error) {
	m, err := numasim.New(topo, numasim.Config{CacheScale: cacheScale})
	if err != nil {
		return nil, nil, err
	}
	return m, mem.NewSystem(m), nil
}

// sharedLookupRun measures the interleaved shared-index lookup baseline.
func sharedLookupRun(topo *topology.Topology, workers int, cacheScale float64, domain uint64, batch int, durSec float64) (hwcounter.Report, error) {
	m, mems, err := sharedMachine(topo, cacheScale)
	if err != nil {
		return hwcounter.Report{}, err
	}
	ix, err := shared.NewIndex(m, mems, prefixtree.Config{KeyBits: 64, PrefixBits: 8}, shared.Interleaved, 0)
	if err != nil {
		return hwcounter.Report{}, err
	}
	ix.LoadDense(workers, domain, nil)
	session := hwcounter.Start(m)
	ix.RunLookups(workers, workload.Uniform{Domain: domain}, batch, durSec)
	return session.Report(), nil
}

// sharedUpsertRun measures the interleaved shared-index upsert baseline.
func sharedUpsertRun(topo *topology.Topology, workers int, cacheScale float64, domain uint64, batch int, durSec float64) (hwcounter.Report, error) {
	m, mems, err := sharedMachine(topo, cacheScale)
	if err != nil {
		return hwcounter.Report{}, err
	}
	ix, err := shared.NewIndex(m, mems, prefixtree.Config{KeyBits: 64, PrefixBits: 8}, shared.Interleaved, 0)
	if err != nil {
		return hwcounter.Report{}, err
	}
	session := hwcounter.Start(m)
	ix.RunUpserts(workers, workload.Uniform{Domain: domain}, batch, durSec)
	return session.Report(), nil
}

// sharedScanRun measures the shared parallel scan with the given placement.
func sharedScanRun(topo *topology.Topology, workers int, placement shared.Placement, totalEntries int64, durSec float64) (hwcounter.Report, error) {
	m, mems, err := sharedMachine(topo, 0)
	if err != nil {
		return hwcounter.Report{}, err
	}
	st, err := shared.NewScanTable(m, mems, placement, 0, totalEntries, 1<<11)
	if err != nil {
		return hwcounter.Report{}, err
	}
	session := hwcounter.Start(m)
	st.RunScans(workers, durSec)
	return session.Report(), nil
}

// speedup guards against division by zero in scalability tables.
func speedup(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}

// mops formats a throughput in million operations per second.
func mops(t float64) string { return fmt.Sprintf("%.2f", t/1e6) }

func kops(t float64) string { return fmt.Sprintf("%.2f", t/1e3) }
