package bench

import (
	"eris/internal/balance"
	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/topology"
	"eris/internal/workload"
)

// treeConfig64 is the index shape shared by all experiments: the paper's
// 64-bit keys with 8-bit prefix length (eight tree levels).
func treeConfig64() prefixtree.Config {
	return prefixtree.Config{KeyBits: 64, PrefixBits: 8}
}

// AblationDirectWrite isolates the value of the outgoing-buffer
// pre-batching: an outgoing buffer that holds a single command degenerates
// to direct remote writes per command, paying the full remote latency every
// time (the design alternative the routing layer exists to avoid).
func AblationDirectWrite(p Params) ([]*Table, error) {
	dur := p.dur(0.002)
	domain := uint64(1e9 / p.scale())
	t := &Table{
		Title:   "Ablation: Outgoing-Buffer Pre-Batching vs. Direct Remote Writes (AMD, raw routing)",
		Headers: []string{"buffer (bytes)", "~commands", "throughput (M cmd/s)", "vs direct"},
	}
	var direct float64
	for _, buf := range []int{approxCmdBytes + 2, 1024, 16384} {
		r, err := fig5Run(setup{Topo: topology.AMD(), OutBuf: buf, FlushOlap: 1}, domain, dur, false)
		if err != nil {
			return nil, err
		}
		if direct == 0 {
			direct = r.Throughput
		}
		t.Add(buf, buf/approxCmdBytes, mops(r.Throughput), speedup(r.Throughput, direct))
	}
	t.Note("one-command buffers pay one remote round trip per command; batching amortizes it")
	return []*Table{t}, nil
}

// AblationPartitionTable compares the CSB+-tree range partition table with
// a flat sorted array under a routed lookup workload.
func AblationPartitionTable(p Params) ([]*Table, error) {
	dur := p.dur(0.002)
	domain := uint64(1e9 / p.scale())
	t := &Table{
		Title:   "Ablation: CSB+-Tree vs. Flat-Array Partition Table (AMD lookups)",
		Headers: []string{"table", "throughput (M lookups/s)"},
	}
	for _, variant := range []struct {
		name string
		flat bool
	}{{"CSB+-tree", false}, {"flat array", true}} {
		r, err := erisLookupRun(setup{Topo: topology.AMD(), FlatTables: variant.flat}, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		t.Add(variant.name, mops(r.Throughput))
	}
	t.Note("both tables are cache resident; the CSB+ layout wins on real hardware as ranges grow — " +
		"the simulation charges them identically, so this ablation checks routing equivalence")
	return []*Table{t}, nil
}

// AblationCoalescing compares the AEU's command grouping (scan sharing /
// batched lookups) against processing every routed command individually.
// Lookups exercise per-source batch merging; multicast scans exercise
// shared-pass folding — NoCoalesce splits scan groups too, so each scan
// pays its own partition pass.
func AblationCoalescing(p Params) ([]*Table, error) {
	dur := p.dur(0.002)
	domain := uint64(1e9 / p.scale())
	t := &Table{
		Title:   "Ablation: Command Grouping/Coalescing On vs. Off (AMD lookups)",
		Headers: []string{"grouping", "throughput (M lookups/s)"},
	}
	for _, variant := range []struct {
		name string
		off  bool
	}{{"on", false}, {"off", true}} {
		r, err := erisLookupRun(setup{Topo: topology.AMD(), CacheScale: p.cacheScale(), NoCoalesce: variant.off}, domain, 64, dur)
		if err != nil {
			return nil, err
		}
		t.Add(variant.name, mops(r.Throughput))
	}
	t.Note("grouping merges per-source batches so memory-level parallelism hides DRAM latency")

	s := &Table{
		Title:   "Ablation: Scan Coalescing On vs. Off (AMD multicast scans)",
		Headers: []string{"grouping", "throughput (K scans/s)"},
	}
	entries := int64(1e8 / p.scale())
	for _, variant := range []struct {
		name string
		off  bool
	}{{"on", false}, {"off", true}} {
		r, err := erisMulticastScanRun(setup{Topo: topology.AMD(), CacheScale: p.cacheScale(), NoCoalesce: variant.off}, entries, dur)
		if err != nil {
			return nil, err
		}
		s.Add(variant.name, kops(r.Throughput))
	}
	s.Note("a shared pass serves every scan in its group with one sweep over the partition; uncoalesced, each scan pays a full pass")
	return []*Table{t, s}, nil
}

// AblationTransfer measures the two partition transfer mechanisms of
// Figure 7 directly: moving a subtree between AEUs of the same node (link:
// reference grafting) vs. across nodes (copy: flatten, stream, rebuild).
func AblationTransfer(p Params) ([]*Table, error) {
	keys := uint64(200_000)
	if p.Quick {
		keys = 20_000
	}
	topo := topology.Intel()
	machine, err := numasim.New(topo, numasim.Config{})
	if err != nil {
		return nil, err
	}
	mems := mem.NewSystem(machine)
	store0, err := prefixtree.NewStore(machine, mems.Node(0), treeConfig64())
	if err != nil {
		return nil, err
	}
	store1, err := prefixtree.NewStore(machine, mems.Node(1), treeConfig64())
	if err != nil {
		return nil, err
	}
	sess0 := store0.NewSession()
	src := prefixtree.NewTree(sess0)
	for k := uint64(0); k < keys; k++ {
		src.Upsert(0, k, k, 16)
	}

	t := &Table{
		Title:   "Ablation: Link vs. Copy Partition Transfer (half of a partition)",
		Headers: []string{"mechanism", "tuples", "virtual time (us)", "us per 1000 tuples"},
	}

	// Link: same node, same store — pure reference grafting.
	before := machine.Clock(0)
	ex := src.ExtractRange(0, 0, keys/2-1)
	dst := prefixtree.NewTree(store0.NewSession())
	dst.Link(0, ex)
	linkUS := float64(machine.Clock(0)-before) / 1e6
	t.Add("link (same node)", keys/2, linkUS, linkUS/float64(keys/2)*1000)

	// Copy: cross node — flatten, stream, rebuild, discard.
	core1, _ := topo.CoresOfNode(1)
	before = machine.Clock(0)
	before1 := machine.Clock(core1)
	ex2 := src.ExtractRange(0, keys/2, keys-1)
	kvs := ex2.Flatten(0)
	ex2.Discard(0, sess0)
	dst2 := prefixtree.NewTree(store1.NewSession())
	dst2.RebuildFrom(core1, kvs)
	copyUS := float64(machine.Clock(0)-before+machine.Clock(core1)-before1) / 1e6
	t.Add("copy (cross node)", keys/2, copyUS, copyUS/float64(keys/2)*1000)
	t.Note("link cost is O(boundary nodes); copy pays flatten + interconnect stream + rebuild")
	return []*Table{t}, nil
}

// AblationMAWindow sweeps the moving-average window beyond the paper's
// {1, 8}, measuring drop depth and recovery for the drastic workload
// change.
func AblationMAWindow(p Params) ([]*Table, error) {
	// Shorter schedule: uniform, then one drastic change.
	schedule := &workload.Schedule{Phases: []workload.Phase{
		{Start: 0, Lo: 0, Hi: 512e6},
		{Start: 10, Lo: 128e6, Hi: 384e6},
	}}
	cfg := fig13Shape(p, schedule, 1.0/1000)
	t := &Table{
		Title:   "Ablation: Moving-Average Window Sweep (drastic change only)",
		Headers: []string{"window", "baseline (M/s)", "min (M/s)", "drop %", "recovery (ms)", "cycles"},
	}
	lastBin := int(cfg.runSec / cfg.binSec)
	changeBin := int(cfg.schedule.Phases[1].Start/cfg.binSec) + 1
	for _, w := range []int{1, 2, 4, 8, 16, 31} {
		r, err := cfg.run("MA", balance.MovingAverage{Window: w})
		if err != nil {
			return nil, err
		}
		base, minT, rec := fig13Summary(r.series, changeBin, lastBin, cfg.binSec)
		t.Add(w, mops(base), mops(minT), 100*(1-minT/base), rec, len(r.cycles))
	}
	t.Note("window >= partitions-1 behaves like One-Shot; small windows trade recovery speed for gentler drops")
	return []*Table{t}, nil
}
