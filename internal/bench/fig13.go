package bench

import (
	"fmt"

	"eris/internal/aeu"
	"eris/internal/balance"
	"eris/internal/core"
	"eris/internal/routing"
	"eris/internal/topology"
	"eris/internal/workload"
)

// fig13Run executes one dynamic-workload run (Figure 13): lookups whose hot
// range follows the schedule, with the given balancing algorithm (nil =
// balancer off). It returns the per-bin throughput series.
type fig13Run struct {
	name   string
	alg    balance.Algorithm
	series []float64
	cycles []balance.Cycle
}

// fig13Config derives the scaled experiment shape.
type fig13Config struct {
	domain    uint64
	numAEUs   int
	schedule  *workload.Schedule
	runSec    float64
	binSec    float64
	sampleSec float64
}

func fig13Shape(p Params, schedule *workload.Schedule, timeScale float64) fig13Config {
	cfg := fig13Config{
		domain:  uint64(512e6 / p.scale()), // paper: 512 M keys
		numAEUs: 32,
	}
	if p.Quick {
		cfg.numAEUs = 16
		timeScale /= 4
	}
	scaled := &workload.Schedule{}
	for _, ph := range schedule.Phases {
		scaled.Phases = append(scaled.Phases, workload.Phase{
			Start: ph.Start * timeScale,
			Lo:    uint64(float64(ph.Lo) / 512e6 * float64(cfg.domain)),
			Hi:    uint64(float64(ph.Hi) / 512e6 * float64(cfg.domain)),
		})
	}
	cfg.schedule = scaled
	cfg.runSec = scaled.End() + 20*timeScale
	cfg.binSec = cfg.runSec / 50
	cfg.sampleSec = cfg.binSec
	return cfg
}

func (c fig13Config) run(name string, alg balance.Algorithm) (*fig13Run, error) {
	e, err := core.New(core.Config{
		Topology: topology.AMD(),
		NumAEUs:  c.numAEUs,
		AEU:      aeu.Config{SkewWindowNS: c.binSec * 1e9 / 4},
		Tree:     treeConfig64(),
		// Small incoming buffers keep the consumer loop much shorter than a
		// measurement bin, so the throughput series reflects steady state
		// rather than batch bursts.
		Routing: routing.Config{InBufBytes: 1 << 16},
		Balance: balance.Config{
			SampleIntervalSec: c.sampleSec,
			Threshold:         0.2,
		},
	})
	if err != nil {
		return nil, err
	}
	defer e.Stop()
	if err := e.CreateIndex(benchObj, c.domain); err != nil {
		return nil, err
	}
	if err := e.LoadIndexDense(benchObj, c.domain, nil); err != nil {
		return nil, err
	}
	if alg != nil {
		if err := e.Watch(benchObj, alg); err != nil {
			return nil, err
		}
	}
	tl := e.EnableTimeline(c.runSec, c.binSec)
	e.SetGenerators(func(i int) aeu.Generator {
		return &core.DynamicLookupGenerator{
			Object: benchObj, Schedule: c.schedule,
			Batch: 64, DurationSec: c.runSec * 2,
		}
	})
	if err := e.Start(); err != nil {
		return nil, err
	}
	if err := e.WaitVirtual(c.runSec, realTimeout); err != nil {
		return nil, err
	}
	e.Stop()
	r := &fig13Run{name: name, alg: alg, series: tl.Series()}
	r.cycles = e.Balancer().Cycles()
	return r, nil
}

// Fig13 reproduces the load balancer experiment: lookup throughput over
// time under the dynamic workload (10 s uniform, drastic narrowing to half
// the domain, then four slight shifts), for no balancing, One-Shot, MA1 and
// MA8. Paper: One-Shot drops deepest but recovers fastest; MA1 drops
// gently but recovers slowly; MA8 is the best compromise on this machine.
func Fig13(p Params) ([]*Table, error) {
	cfg := fig13Shape(p, workload.Fig13Schedule(512e6), 1.0/1000)
	variants := []struct {
		name string
		alg  balance.Algorithm
	}{
		{"off", nil},
		{"One-Shot", balance.OneShot{}},
		{"MA1", balance.MovingAverage{Window: 1}},
		{"MA8", balance.MovingAverage{Window: 8}},
	}
	runs := make([]*fig13Run, 0, len(variants))
	for _, v := range variants {
		r, err := cfg.run(v.name, v.alg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}

	series := &Table{
		Title:   "Figure 13: Lookup Throughput Over Time (AMD, dynamic workload)",
		Headers: []string{"t (ms)", "off (M/s)", "One-Shot (M/s)", "MA1 (M/s)", "MA8 (M/s)"},
	}
	bins := len(runs[0].series)
	lastBin := int(cfg.runSec/cfg.binSec) - 1
	if lastBin > bins {
		lastBin = bins
	}
	for b := 0; b < lastBin; b++ {
		row := []any{fmt.Sprintf("%.2f", float64(b)*cfg.binSec*1e3)}
		for _, r := range runs {
			row = append(row, mops(r.series[b]))
		}
		series.Add(row...)
	}
	for i, ph := range cfg.schedule.Phases {
		if i > 0 {
			series.Note("workload change %d at t=%.2f ms -> hot range [%d, %d)", i, ph.Start*1e3, ph.Lo, ph.Hi)
		}
	}

	summary := &Table{
		Title:   "Figure 13 (summary): Drop Depth and Recovery per Algorithm",
		Headers: []string{"algorithm", "baseline (M/s)", "min after change (M/s)", "drop %", "recovery (ms)", "balance cycles"},
	}
	changeBin := int(cfg.schedule.Phases[1].Start/cfg.binSec) + 1
	for _, r := range runs {
		base, minTput, recMS := fig13Summary(r.series, changeBin, lastBin, cfg.binSec)
		summary.Add(r.name, mops(base), mops(minTput), 100*(1-minTput/base), recMS, len(r.cycles))
	}
	summary.Note("recovery: first bin after the drastic change back at >=90%% of baseline; -1 = not recovered")
	return []*Table{series, summary}, nil
}

// fig13Summary computes baseline throughput, the post-change minimum and
// the recovery time from a series.
func fig13Summary(series []float64, changeBin, lastBin int, binSec float64) (base, min float64, recoveryMS float64) {
	if changeBin < 1 {
		changeBin = 1
	}
	var sum float64
	n := 0
	for b := 1; b < changeBin-1 && b < len(series); b++ {
		sum += series[b]
		n++
	}
	if n > 0 {
		base = sum / float64(n)
	}
	min = -1
	recoveryMS = -1
	for b := changeBin; b < lastBin && b < len(series); b++ {
		if min < 0 || series[b] < min {
			min = series[b]
		}
		if recoveryMS < 0 && series[b] >= 0.9*base {
			recoveryMS = float64(b-changeBin) * binSec * 1e3
		}
	}
	if min < 0 {
		min = 0
	}
	return base, min, recoveryMS
}
