package bench

import (
	"eris/internal/aeu"
	"eris/internal/core"
	"eris/internal/hwcounter"
	"eris/internal/topology"
)

// approxCmdBytes is the encoded size of a single-key lookup command plus
// its frame byte; the paper's x-axis counts buffer capacity in commands.
const approxCmdBytes = 38

// Fig5 reproduces the routing-throughput experiment on the AMD machine:
// data command routing throughput as a function of the outgoing buffer
// size, once with the processing phase skipped ("raw routing", lookups
// against an empty index) and once with index lookups processed. The
// paper's shape: raw throughput roughly doubles with the buffer size until
// the NUMA interconnect saturates; with processing enabled the curve goes
// flat once buffers hold ~128 commands because index lookups dominate.
func Fig5(p Params) ([]*Table, error) {
	bufs := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
	if p.Quick {
		bufs = []int{64, 512, 4096}
	}
	dur := p.dur(0.002)
	cscale := p.cacheScale()
	domain := uint64(1e9 / p.scale())

	t := &Table{
		Title:   "Figure 5: Data Command Routing Throughput vs. Outgoing Buffer Size (AMD)",
		Headers: []string{"buffer (bytes)", "~commands", "raw routing (M cmd/s)", "with lookups (M cmd/s)"},
	}
	for _, buf := range bufs {
		// FlushOlap 1 serializes the flush round trips, isolating what the
		// outgoing buffers amortize; the engine default pipelines them.
		raw, err := fig5Run(setup{Topo: topology.AMD(), OutBuf: buf, FlushOlap: 1}, domain, dur, false)
		if err != nil {
			return nil, err
		}
		proc, err := fig5Run(setup{Topo: topology.AMD(), OutBuf: buf, CacheScale: cscale, FlushOlap: 1}, domain, dur, true)
		if err != nil {
			return nil, err
		}
		t.Add(buf, buf/approxCmdBytes, mops(raw.Throughput), mops(proc.Throughput))
	}
	t.Note("raw mode routes lookups against an empty index: the processing stage is a nil-root miss")
	t.Note("flush round trips serialized (FlushOverlap 1) to isolate the buffer effect; engine default pipelines 8-deep")
	t.Note("paper: raw throughput doubles with buffer size until the interconnect saturates; processed peaks by ~128 commands")
	return []*Table{t}, nil
}

func fig5Run(s setup, domain uint64, dur float64, load bool) (hwcounter.Report, error) {
	e, err := core.New(s.engineConfig())
	if err != nil {
		return hwcounter.Report{}, err
	}
	defer e.Stop()
	if err := e.CreateIndex(benchObj, domain); err != nil {
		return hwcounter.Report{}, err
	}
	if load {
		if err := e.LoadIndexDense(benchObj, domain, nil); err != nil {
			return hwcounter.Report{}, err
		}
	}
	// Both modes use the per-call command stream; whether the index is
	// loaded decides if the processing stage costs anything.
	e.SetGenerators(func(i int) aeu.Generator {
		return &core.RawRoutingGenerator{
			Object: benchObj, Domain: domain, Batch: 64, PerLoop: 32, DurationSec: dur * 3,
		}
	})
	return runMeasured(e, dur)
}
