package workload

import (
	"math/rand"
	"testing"
)

func TestUniformStaysInDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Uniform{Domain: 1000}
	for i := 0; i < 10000; i++ {
		if k := g.Key(rng, 0); k >= 1000 {
			t.Fatalf("key %d out of domain", k)
		}
	}
}

func TestHotRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := HotRange{Lo: 100, Hi: 200}
	for i := 0; i < 10000; i++ {
		if k := g.Key(rng, 0); k < 100 || k >= 200 {
			t.Fatalf("key %d outside hot range", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewZipf(rng, 1000, 1.2, 1)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[g.Key(nil, 0)]++
	}
	if counts[0] < counts[500]*10 {
		t.Errorf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestFig13Schedule(t *testing.T) {
	const domain = 512 << 20
	s := Fig13Schedule(domain)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 6 {
		t.Fatalf("%d phases, want 6", len(s.Phases))
	}
	// Phase 0: full domain.
	if lo, hi := s.RangeAt(5); lo != 0 || hi != domain {
		t.Errorf("phase 0: [%d,%d)", lo, hi)
	}
	// Phase 1 at t=10: middle half (paper: keys 128M..384M of 512M).
	if lo, hi := s.RangeAt(15); lo != domain/4 || hi != 3*domain/4 {
		t.Errorf("phase 1: [%d,%d)", lo, hi)
	}
	// Each subsequent phase shifts left by domain/64 (8M of 512M).
	for i := 1; i <= 4; i++ {
		tSec := 10 + 20*float64(i) + 1
		lo, hi := s.RangeAt(tSec)
		wantLo := domain/4 - uint64(i)*domain/64
		if lo != wantLo || hi-lo != domain/2 {
			t.Errorf("phase %d: [%d,%d), want lo %d width %d", i+1, lo, hi, wantLo, uint64(domain/2))
		}
	}
	if s.End() != 90 {
		t.Errorf("End = %f", s.End())
	}
	// Keys respect the active phase.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		k := s.Key(rng, 15)
		if k < domain/4 || k >= 3*domain/4 {
			t.Fatalf("phase-1 key %d out of range", k)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []*Schedule{
		{},
		{Phases: []Phase{{Start: 1, Lo: 0, Hi: 10}}},
		{Phases: []Phase{{Start: 0, Lo: 10, Hi: 10}}},
		{Phases: []Phase{{Start: 0, Lo: 0, Hi: 10}, {Start: 0, Lo: 0, Hi: 10}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d accepted", i)
		}
	}
}

func TestPhaseAtBoundaries(t *testing.T) {
	s := &Schedule{Phases: []Phase{
		{Start: 0, Lo: 0, Hi: 10},
		{Start: 10, Lo: 10, Hi: 20},
	}}
	if got := s.PhaseAt(9.999); got != 0 {
		t.Errorf("PhaseAt(9.999) = %d", got)
	}
	if got := s.PhaseAt(10); got != 1 {
		t.Errorf("PhaseAt(10) = %d", got)
	}
}

func TestFillBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 64)
	FillBatch(Uniform{Domain: 10}, rng, 0, keys)
	for _, k := range keys {
		if k >= 10 {
			t.Fatalf("key %d", k)
		}
	}
}

func TestSequentialLoader(t *testing.T) {
	l := &SequentialLoader{Domain: 10}
	buf := make([]uint64, 4)
	var got []uint64
	for !l.Done() {
		n := l.NextBatch(buf)
		got = append(got, buf[:n]...)
	}
	if len(got) != 10 {
		t.Fatalf("loaded %d keys", len(got))
	}
	for i, k := range got {
		if k != uint64(i) {
			t.Fatalf("key[%d] = %d", i, k)
		}
	}
	if n := l.NextBatch(buf); n != 0 {
		t.Fatalf("exhausted loader produced %d", n)
	}
}
