// Package workload generates the key streams and schedules used by the
// paper's experiments: uniform keys over a dense domain (the static
// lookup/upsert benchmarks of Figure 8), Zipf-skewed keys, hot key ranges,
// and the dynamic schedule of Figure 13 (uniform for 10 s, then a drastic
// narrowing to half the domain, then four slight shifts of the hot range).
// All generators are deterministic given a seed and draw time from the
// simulated machine's virtual clocks, never the wall clock.
package workload

import (
	"fmt"
	"math/rand"
)

// KeyGen produces keys of a workload.
type KeyGen interface {
	// Key returns the next key; tSec is the issuing worker's virtual time
	// in seconds, which dynamic workloads use to pick their phase.
	Key(rng *rand.Rand, tSec float64) uint64
}

// Uniform draws keys uniformly from [0, Domain).
type Uniform struct {
	Domain uint64
}

// Key implements KeyGen.
func (u Uniform) Key(rng *rand.Rand, _ float64) uint64 {
	return uint64(rng.Int63n(int64(u.Domain)))
}

// HotRange draws keys uniformly from [Lo, Hi).
type HotRange struct {
	Lo, Hi uint64
}

// Key implements KeyGen.
func (h HotRange) Key(rng *rand.Rand, _ float64) uint64 {
	return h.Lo + uint64(rng.Int63n(int64(h.Hi-h.Lo)))
}

// Zipf draws keys with a Zipf distribution over [0, Domain); S and V are
// the rand.Zipf parameters (S > 1).
type Zipf struct {
	Domain uint64
	S, V   float64
	zipf   *rand.Zipf
}

// NewZipf builds a Zipf generator; the underlying rand.Zipf is bound to rng.
func NewZipf(rng *rand.Rand, domain uint64, s, v float64) *Zipf {
	return &Zipf{Domain: domain, S: s, V: v, zipf: rand.NewZipf(rng, s, v, domain-1)}
}

// Key implements KeyGen. The rng argument is ignored (rand.Zipf captures
// its source at construction).
func (z *Zipf) Key(_ *rand.Rand, _ float64) uint64 {
	return z.zipf.Uint64()
}

// Phase is one segment of a dynamic schedule: from Start (seconds of
// virtual time) on, keys are drawn from [Lo, Hi).
type Phase struct {
	Start  float64
	Lo, Hi uint64
}

// Schedule is a phase-switching hot-range workload.
type Schedule struct {
	Phases []Phase
}

// Validate checks monotonicity and non-empty ranges.
func (s *Schedule) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: empty schedule")
	}
	for i, p := range s.Phases {
		if p.Hi <= p.Lo {
			return fmt.Errorf("workload: phase %d has empty range [%d,%d)", i, p.Lo, p.Hi)
		}
		if i > 0 && p.Start <= s.Phases[i-1].Start {
			return fmt.Errorf("workload: phase %d start %.2f not increasing", i, p.Start)
		}
	}
	if s.Phases[0].Start != 0 {
		return fmt.Errorf("workload: first phase must start at 0")
	}
	return nil
}

// PhaseAt returns the active phase index at tSec.
func (s *Schedule) PhaseAt(tSec float64) int {
	i := 0
	for i+1 < len(s.Phases) && s.Phases[i+1].Start <= tSec {
		i++
	}
	return i
}

// RangeAt returns the active key range at tSec.
func (s *Schedule) RangeAt(tSec float64) (lo, hi uint64) {
	p := s.Phases[s.PhaseAt(tSec)]
	return p.Lo, p.Hi
}

// Key implements KeyGen.
func (s *Schedule) Key(rng *rand.Rand, tSec float64) uint64 {
	lo, hi := s.RangeAt(tSec)
	return lo + uint64(rng.Int63n(int64(hi-lo)))
}

// End returns the start time of the last phase (experiments typically run
// some tail beyond it).
func (s *Schedule) End() float64 { return s.Phases[len(s.Phases)-1].Start }

// Fig13Schedule reproduces the dynamic workload of Figure 13, scaled to an
// arbitrary key domain: 10 s of uniform access to the full domain, then a
// drastic change to the middle half ([domain/4, 3*domain/4)), then four
// slight changes, each shifting the hot range left by domain/64 (the
// paper's 8 M of 512 M keys) every 20 s.
func Fig13Schedule(domain uint64) *Schedule {
	quarter := domain / 4
	shift := domain / 64
	s := &Schedule{Phases: []Phase{
		{Start: 0, Lo: 0, Hi: domain},
		{Start: 10, Lo: quarter, Hi: 3 * quarter},
	}}
	for i := 1; i <= 4; i++ {
		s.Phases = append(s.Phases, Phase{
			Start: 10 + 20*float64(i),
			Lo:    quarter - uint64(i)*shift,
			Hi:    3*quarter - uint64(i)*shift,
		})
	}
	return s
}

// FillBatch fills keys from the generator.
func FillBatch(gen KeyGen, rng *rand.Rand, tSec float64, keys []uint64) {
	for i := range keys {
		keys[i] = gen.Key(rng, tSec)
	}
}

// SequentialLoader yields the dense key domain [0, Domain) in order, for
// bulk-loading indexes before a benchmark run; Done reports completion.
type SequentialLoader struct {
	Domain uint64
	next   uint64
}

// NextBatch fills keys with the next consecutive keys and returns how many
// were produced (0 when the domain is exhausted).
func (l *SequentialLoader) NextBatch(keys []uint64) int {
	n := 0
	for ; n < len(keys) && l.next < l.Domain; n++ {
		keys[n] = l.next
		l.next++
	}
	return n
}

// Done reports whether the whole domain was emitted.
func (l *SequentialLoader) Done() bool { return l.next >= l.Domain }
