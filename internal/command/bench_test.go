package command

// Hot-path codec microbenchmarks (run with -benchmem). Encode reuses the
// caller's buffer by contract; Decode is the per-command copying decoder,
// Decoder.DecodeInto the amortized zero-allocation view decoder used by
// the routing drain path.

import (
	"testing"

	"eris/internal/prefixtree"
)

func benchLookup(n int) Command {
	c := Command{Op: OpLookup, Object: 3, Source: 1, ReplyTo: NoReply, Tag: 7}
	c.Keys = make([]uint64, n)
	for i := range c.Keys {
		c.Keys[i] = uint64(i) * 7919
	}
	return c
}

func benchUpsert(n int) Command {
	c := Command{Op: OpUpsert, Object: 3, Source: 1, ReplyTo: NoReply, Tag: 7}
	c.KVs = make([]prefixtree.KV, n)
	for i := range c.KVs {
		c.KVs[i] = prefixtree.KV{Key: uint64(i) * 7919, Value: uint64(i)}
	}
	return c
}

func BenchmarkEncodeLookup64(b *testing.B) {
	c := benchLookup(64)
	buf := c.AppendEncode(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendEncode(buf[:0])
	}
}

func BenchmarkEncodeUpsert64(b *testing.B) {
	c := benchUpsert(64)
	buf := c.AppendEncode(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.AppendEncode(buf[:0])
	}
}

func BenchmarkDecodeLookup64(b *testing.B) {
	c := benchLookup(64)
	buf := c.AppendEncode(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeUpsert64(b *testing.B) {
	c := benchUpsert(64)
	buf := c.AppendEncode(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// The DecodeInto twins measure the zero-copy drain-path decoder, once with
// the payload 8-byte aligned (pure view, no copy) and once deliberately
// misaligned (scratch-reuse fallback).

func benchDecodeInto(b *testing.B, c Command, misalign int) {
	raw := make([]byte, misalign, misalign+c.EncodedSize())
	raw = c.AppendEncode(raw)
	buf := raw[misalign:]
	// headerBytes+4 bytes of header/count precede the payload; shift the
	// whole frame so the payload lands where the benchmark wants it.
	var d Decoder
	var cmd Command
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(&cmd, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIntoLookup64Aligned(b *testing.B) {
	// Payload starts headerBytes+4 = 29 bytes into the frame; offset the
	// frame by 3 so the key payload is 8-byte aligned.
	benchDecodeInto(b, benchLookup(64), 3)
}

func BenchmarkDecodeIntoLookup64Unaligned(b *testing.B) {
	benchDecodeInto(b, benchLookup(64), 0)
}

func BenchmarkDecodeIntoUpsert64Aligned(b *testing.B) {
	benchDecodeInto(b, benchUpsert(64), 3)
}

func BenchmarkDecodeIntoUpsert64Unaligned(b *testing.B) {
	benchDecodeInto(b, benchUpsert(64), 0)
}
