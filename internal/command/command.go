// Package command defines ERIS data commands and their wire format. A data
// command carries a storage operation (scan, lookup, insert/upsert), the
// target data object, a correlation tag and reply address for query
// processing callbacks, and a data segment with the operation's parameters
// (a batch of keys for a lookup, key/value pairs for an upsert, a predicate
// for a scan). Commands are binary-encoded because the routing layer's
// buffers are raw byte arrays guarded by a 64-bit CAS descriptor; the
// encoded size is also what the simulated machine charges as interconnect
// traffic when a buffer is flushed to a remote AEU.
//
// Balancing commands (new partition bounds plus fetch instructions) travel
// through the same buffers, as in the paper; bulk partition payloads do
// not — they move through the dedicated transfer path (see internal/aeu),
// matching the paper's separate link/copy transfer mechanisms.
package command

import (
	"encoding/binary"
	"errors"
	"fmt"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// Op identifies the storage operation of a data command.
type Op uint8

// Data command operations.
const (
	// OpInvalid guards against decoding zeroed buffer space.
	OpInvalid Op = iota
	// OpLookup carries a batch of keys to look up in an index partition.
	OpLookup
	// OpUpsert carries a batch of key/value pairs to insert or overwrite.
	OpUpsert
	// OpScan asks for a filtered scan of the AEU's partition (index range
	// scan when Keys holds [lo, hi], full column scan otherwise).
	OpScan
	// OpResult returns matching key/value pairs (or aggregates) to the
	// requesting AEU's callback.
	OpResult
	// OpBalance tells an AEU its new partition bounds and what to fetch.
	OpBalance
	// OpFetch asks the receiving AEU to hand a range (or tuple count) of
	// its partition to the requester via the transfer path.
	OpFetch
	// OpError reports a failed control command back to its issuer (Tag
	// carries the correlation id — for fetches, the balancing epoch), so
	// the issuer can abandon the pending slot instead of waiting forever.
	OpError
	// OpDelete carries a batch of keys to remove from an index partition.
	OpDelete
	numOps
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpUpsert:
		return "upsert"
	case OpScan:
		return "scan"
	case OpResult:
		return "result"
	case OpBalance:
		return "balance"
	case OpFetch:
		return "fetch"
	case OpError:
		return "error"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// NoReply marks a command whose results are consumed at the executing AEU
// (counted, aggregated into monitors) instead of being routed back.
const NoReply int32 = -1

// Fetch is one transfer instruction inside a balancing command: take the
// described part of From's partition.
type Fetch struct {
	From uint32
	Lo   uint64
	Hi   uint64
	// Tuples > 0 selects count-based transfer (physical size partitioning,
	// no order criterion); the range is ignored then.
	Tuples int64
}

// Balance is the payload of an OpBalance command.
type Balance struct {
	// Epoch identifies the balancing cycle; AEUs ack it so the balancer can
	// synchronize routing-table updates.
	Epoch uint64
	// NewLo/NewHi are the AEU's new inclusive partition bounds.
	NewLo, NewHi uint64
	// Fetches says where missing data comes from.
	Fetches []Fetch
}

// Command is one data command.
type Command struct {
	Op      Op
	Object  uint32
	Source  uint32 // issuing AEU
	ReplyTo int32  // AEU to route results to; NoReply for none
	Tag     uint64 // correlation id for callbacks
	// Deadline is the absolute expiry of the request that issued this
	// command, in unix nanoseconds; zero means no deadline. It rides the
	// header so forwarding and deferral across rebalance cycles preserve
	// it, letting AEUs expire stale work instead of retrying forever.
	Deadline uint64

	// Keys is the lookup batch, or [lo, hi] bounds for an index range scan.
	Keys []uint64
	// KVs is the upsert batch or the result payload.
	KVs []prefixtree.KV
	// Pred is the scan predicate.
	Pred colstore.Predicate
	// Limit asks an index scan to return up to Limit matching rows as
	// key/value pairs instead of an aggregate (0 = aggregate only). This
	// is the query-processing primitive that materializes intermediate
	// results through the routing layer.
	Limit uint32
	// Balance is the balancing payload (OpBalance only).
	Balance *Balance
	// Fetch is the fetch payload (OpFetch only).
	Fetch *Fetch
}

const headerBytes = 1 + 4 + 4 + 4 + 8 + 8 + 4 // op, object, source, replyTo, tag, deadline, payload len

// EncodedSize returns the exact number of bytes AppendEncode will add.
//
//eris:hotpath
func (c *Command) EncodedSize() int {
	return headerBytes + c.payloadSize()
}

// MaxLookupKeys returns the largest lookup key batch whose framed encoding
// (one routing frame byte plus the command) fits in limit bytes, at least
// 1; the routing layer uses it to chunk batches to the outgoing buffer
// capacity at route time.
func MaxLookupKeys(limit int) int {
	n := (limit - 1 - headerBytes - 4) / 8
	if n < 1 {
		return 1
	}
	return n
}

// MaxUpsertKVs is MaxLookupKeys for upsert (and result) KV batches.
func MaxUpsertKVs(limit int) int {
	n := (limit - 1 - headerBytes - 4) / 16
	if n < 1 {
		return 1
	}
	return n
}

//eris:hotpath
func (c *Command) payloadSize() int {
	switch c.Op {
	case OpLookup, OpDelete:
		return 4 + 8*len(c.Keys)
	case OpUpsert, OpResult:
		return 4 + 16*len(c.KVs)
	case OpScan:
		return 1 + 8 + 8 + 4 + 4 + 8*len(c.Keys)
	case OpBalance:
		n := 8 + 8 + 8 + 4
		if c.Balance != nil {
			n += len(c.Balance.Fetches) * (4 + 8 + 8 + 8)
		}
		return n
	case OpFetch:
		return 4 + 8 + 8 + 8
	default:
		return 0
	}
}

// AppendEncode appends the wire form of the command to buf.
//
//eris:hotpath
func (c *Command) AppendEncode(buf []byte) []byte {
	buf = append(buf, byte(c.Op))
	buf = binary.LittleEndian.AppendUint32(buf, c.Object)
	buf = binary.LittleEndian.AppendUint32(buf, c.Source)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.ReplyTo))
	buf = binary.LittleEndian.AppendUint64(buf, c.Tag)
	buf = binary.LittleEndian.AppendUint64(buf, c.Deadline)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.payloadSize()))
	switch c.Op {
	case OpLookup, OpDelete:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Keys)))
		for _, k := range c.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
	case OpUpsert, OpResult:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.KVs)))
		for _, kv := range c.KVs {
			buf = binary.LittleEndian.AppendUint64(buf, kv.Key)
			buf = binary.LittleEndian.AppendUint64(buf, kv.Value)
		}
	case OpScan:
		buf = append(buf, byte(c.Pred.Op))
		buf = binary.LittleEndian.AppendUint64(buf, c.Pred.Operand)
		buf = binary.LittleEndian.AppendUint64(buf, c.Pred.High)
		buf = binary.LittleEndian.AppendUint32(buf, c.Limit)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Keys)))
		for _, k := range c.Keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
		}
	case OpBalance:
		b := c.Balance
		if b == nil {
			b = &Balance{} //eris:allowalloc balance is a control-plane op; placeholder for a nil payload only
		}
		buf = binary.LittleEndian.AppendUint64(buf, b.Epoch)
		buf = binary.LittleEndian.AppendUint64(buf, b.NewLo)
		buf = binary.LittleEndian.AppendUint64(buf, b.NewHi)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Fetches)))
		for _, f := range b.Fetches {
			buf = binary.LittleEndian.AppendUint32(buf, f.From)
			buf = binary.LittleEndian.AppendUint64(buf, f.Lo)
			buf = binary.LittleEndian.AppendUint64(buf, f.Hi)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Tuples))
		}
	case OpFetch:
		f := c.Fetch
		if f == nil {
			f = &Fetch{} //eris:allowalloc fetch is a control-plane op; placeholder for a nil payload only
		}
		buf = binary.LittleEndian.AppendUint32(buf, f.From)
		buf = binary.LittleEndian.AppendUint64(buf, f.Lo)
		buf = binary.LittleEndian.AppendUint64(buf, f.Hi)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Tuples))
	}
	return buf
}

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("command: truncated buffer")
	ErrBadOp     = errors.New("command: invalid operation")
)

//eris:hotpath
func decodeCount(p []byte, elem int) (int, []byte, error) {
	if len(p) < 4 {
		return 0, nil, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint32(p))
	rest := p[4:]
	if len(rest) < n*elem {
		return 0, nil, ErrTruncated
	}
	return n, rest, nil
}

// DecodeAll parses every command in buf, calling fn for each; it stops with
// an error on corruption.
func DecodeAll(buf []byte, fn func(Command) error) error {
	for len(buf) > 0 {
		c, n, err := Decode(buf)
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}
