package command

import (
	"encoding/binary"
	"unsafe"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// The zero-copy paths below reinterpret encoded payload bytes as []uint64
// and []prefixtree.KV; they are only correct if KV is exactly two packed
// little-endian-compatible uint64 words. These declarations fail to
// compile if the layout ever changes.
var (
	_ [16]byte = [unsafe.Sizeof(prefixtree.KV{})]byte{}
	_ [0]byte  = [unsafe.Offsetof(prefixtree.KV{}.Key)]byte{}
	_ [8]byte  = [unsafe.Offsetof(prefixtree.KV{}.Value)]byte{}
)

// hostLittleEndian reports whether in-memory uint64 words match the wire
// byte order; only then may decoded slices alias the encoded buffer.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Decoder decodes data commands with amortized zero allocations. The
// decoded command's Keys and KVs are views: on little-endian hosts with
// naturally aligned payloads they alias the encoded buffer directly, and
// otherwise they alias the decoder's reusable scratch. Either way a view
// is valid only until the next DecodeInto call on the same decoder or
// until the memory behind buf is recycled (for inbox payloads: the owning
// AEU's next Swap), whichever comes first. Callers that retain a command
// beyond that window must Clone it. Balance and Fetch payloads travel the
// control plane and are freshly allocated on every decode, so they are
// always safe to retain.
//
// A Decoder must not be shared between goroutines.
type Decoder struct {
	keys []uint64
	kvs  []prefixtree.KV
}

// DecodeInto parses one command from the front of buf into c, returning
// the number of bytes consumed. See the Decoder documentation for the
// lifetime of the decoded Keys/KVs views.
//
//eris:hotpath
func (d *Decoder) DecodeInto(c *Command, buf []byte) (int, error) {
	return decodeInto(c, buf, d)
}

// Decode parses one command from the front of buf, returning it and the
// number of bytes consumed. All payload slices are freshly allocated, so
// the command may be retained indefinitely; the routing drain path uses a
// Decoder instead to keep the steady-state loop allocation-free.
func Decode(buf []byte) (Command, int, error) {
	var c Command
	n, err := decodeInto(&c, buf, nil)
	return c, n, err
}

// decodeInto is the shared decode body; a nil decoder selects the
// always-copy mode of Decode.
//
//eris:hotpath
func decodeInto(c *Command, buf []byte, d *Decoder) (int, error) {
	if len(buf) < headerBytes {
		return 0, ErrTruncated
	}
	op := Op(buf[0])
	if op == OpInvalid || op >= numOps {
		// Sentinel only: a wrapped fmt.Errorf here would allocate per bad
		// frame on the decode hot path; the offending byte is recoverable
		// from the buffer the caller still holds.
		return 0, ErrBadOp
	}
	*c = Command{
		Op:       op,
		Object:   binary.LittleEndian.Uint32(buf[1:]),
		Source:   binary.LittleEndian.Uint32(buf[5:]),
		ReplyTo:  int32(binary.LittleEndian.Uint32(buf[9:])),
		Tag:      binary.LittleEndian.Uint64(buf[13:]),
		Deadline: binary.LittleEndian.Uint64(buf[21:]),
	}
	plen := int(binary.LittleEndian.Uint32(buf[29:]))
	if len(buf) < headerBytes+plen {
		return 0, ErrTruncated
	}
	p := buf[headerBytes : headerBytes+plen]
	switch op {
	case OpLookup, OpDelete:
		n, rest, err := decodeCount(p, 8)
		if err != nil {
			return 0, err
		}
		c.Keys = viewKeys(d, rest, n)
	case OpUpsert, OpResult:
		n, rest, err := decodeCount(p, 16)
		if err != nil {
			return 0, err
		}
		c.KVs = viewKVs(d, rest, n)
	case OpScan:
		if len(p) < 1+8+8+4+4 {
			return 0, ErrTruncated
		}
		c.Pred.Op = colstore.PredicateOp(p[0])
		c.Pred.Operand = binary.LittleEndian.Uint64(p[1:])
		c.Pred.High = binary.LittleEndian.Uint64(p[9:])
		c.Limit = binary.LittleEndian.Uint32(p[17:])
		n := int(binary.LittleEndian.Uint32(p[21:]))
		rest := p[25:]
		if len(rest) < 8*n {
			return 0, ErrTruncated
		}
		c.Keys = viewKeys(d, rest, n)
	case OpBalance:
		if len(p) < 8+8+8+4 {
			return 0, ErrTruncated
		}
		b := &Balance{ //eris:allowalloc balance decode is control-plane traffic, not the data path
			Epoch: binary.LittleEndian.Uint64(p[0:]),
			NewLo: binary.LittleEndian.Uint64(p[8:]),
			NewHi: binary.LittleEndian.Uint64(p[16:]),
		}
		n := int(binary.LittleEndian.Uint32(p[24:]))
		rest := p[28:]
		if len(rest) < n*(4+8+8+8) {
			return 0, ErrTruncated
		}
		if n > 0 {
			b.Fetches = make([]Fetch, n) //eris:allowalloc balance decode is control-plane traffic, not the data path
			for i := range b.Fetches {
				o := i * 28
				b.Fetches[i] = Fetch{
					From:   binary.LittleEndian.Uint32(rest[o:]),
					Lo:     binary.LittleEndian.Uint64(rest[o+4:]),
					Hi:     binary.LittleEndian.Uint64(rest[o+12:]),
					Tuples: int64(binary.LittleEndian.Uint64(rest[o+20:])),
				}
			}
		}
		c.Balance = b
	case OpFetch:
		if len(p) < 28 {
			return 0, ErrTruncated
		}
		c.Fetch = &Fetch{ //eris:allowalloc fetch decode is control-plane traffic, not the data path
			From:   binary.LittleEndian.Uint32(p[0:]),
			Lo:     binary.LittleEndian.Uint64(p[4:]),
			Hi:     binary.LittleEndian.Uint64(p[12:]),
			Tuples: int64(binary.LittleEndian.Uint64(p[20:])),
		}
	}
	return headerBytes + plen, nil
}

// viewKeys returns the n keys encoded in p. Empty payloads decode to nil.
// With a decoder, the result aliases p when the host byte order and the
// payload alignment allow it and the decoder's key scratch otherwise; with
// a nil decoder it is freshly allocated.
//
//eris:hotpath
func viewKeys(d *Decoder, p []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if d != nil && hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))&7 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n)
	}
	var dst []uint64
	if d != nil {
		if cap(d.keys) < n {
			d.keys = make([]uint64, n) //eris:allowalloc decoder scratch growth amortized across frames
		}
		dst = d.keys[:n]
	} else {
		dst = make([]uint64, n) //eris:allowalloc copy fallback only when the caller has no Decoder; the aligned fast path is zero-copy
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return dst
}

// viewKVs is viewKeys for key/value payloads.
//
//eris:hotpath
func viewKVs(d *Decoder, p []byte, n int) []prefixtree.KV {
	if n == 0 {
		return nil
	}
	if d != nil && hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))&7 == 0 {
		return unsafe.Slice((*prefixtree.KV)(unsafe.Pointer(&p[0])), n)
	}
	var dst []prefixtree.KV
	if d != nil {
		if cap(d.kvs) < n {
			d.kvs = make([]prefixtree.KV, n) //eris:allowalloc decoder scratch growth amortized across frames
		}
		dst = d.kvs[:n]
	} else {
		dst = make([]prefixtree.KV, n) //eris:allowalloc copy fallback only when the caller has no Decoder; the aligned fast path is zero-copy
	}
	for i := range dst {
		dst[i].Key = binary.LittleEndian.Uint64(p[16*i:])
		dst[i].Value = binary.LittleEndian.Uint64(p[16*i+8:])
	}
	return dst
}

// Clone deep-copies a command so it can be retained past the view window
// of Decoder.DecodeInto; the deferred and requeue paths of the AEU loop
// must call it before parking a command across loop iterations.
func (c Command) Clone() Command {
	out := c
	if c.Keys != nil {
		out.Keys = append([]uint64(nil), c.Keys...)
	}
	if c.KVs != nil {
		out.KVs = append([]prefixtree.KV(nil), c.KVs...)
	}
	if c.Balance != nil {
		b := *c.Balance
		if b.Fetches != nil {
			b.Fetches = append([]Fetch(nil), c.Balance.Fetches...)
		}
		out.Balance = &b
	}
	if c.Fetch != nil {
		f := *c.Fetch
		out.Fetch = &f
	}
	return out
}
