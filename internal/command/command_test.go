package command

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

func roundtrip(t *testing.T, c Command) Command {
	t.Helper()
	buf := c.AppendEncode(nil)
	if len(buf) != c.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), c.EncodedSize())
	}
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	return got
}

func TestLookupRoundtrip(t *testing.T) {
	c := Command{Op: OpLookup, Object: 3, Source: 17, ReplyTo: 4, Tag: 99, Keys: []uint64{1, 2, 1 << 60}}
	got := roundtrip(t, c)
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("got %+v, want %+v", got, c)
	}
}

func TestEmptyLookupRoundtrip(t *testing.T) {
	c := Command{Op: OpLookup, Object: 1, Source: 2, ReplyTo: NoReply}
	got := roundtrip(t, c)
	if got.ReplyTo != NoReply || len(got.Keys) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestUpsertAndResultRoundtrip(t *testing.T) {
	kvs := []prefixtree.KV{{Key: 1, Value: 2}, {Key: ^uint64(0), Value: 0}}
	for _, op := range []Op{OpUpsert, OpResult} {
		c := Command{Op: op, Object: 9, Source: 1, ReplyTo: NoReply, Tag: 5, KVs: kvs}
		got := roundtrip(t, c)
		if !reflect.DeepEqual(got.KVs, kvs) {
			t.Fatalf("%v: got %+v", op, got.KVs)
		}
	}
}

func TestScanRoundtrip(t *testing.T) {
	c := Command{
		Op: OpScan, Object: 2, Source: 8, ReplyTo: 8, Tag: 77,
		Pred: colstore.Predicate{Op: colstore.Between, Operand: 10, High: 20},
		Keys: []uint64{100, 200},
	}
	got := roundtrip(t, c)
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("got %+v, want %+v", got, c)
	}
}

func TestBalanceRoundtrip(t *testing.T) {
	c := Command{
		Op: OpBalance, Object: 1, Source: 0, ReplyTo: NoReply,
		Balance: &Balance{
			Epoch: 42, NewLo: 1000, NewHi: 1999,
			Fetches: []Fetch{
				{From: 3, Lo: 1000, Hi: 1499},
				{From: 5, Tuples: 12345},
			},
		},
	}
	got := roundtrip(t, c)
	if !reflect.DeepEqual(got.Balance, c.Balance) {
		t.Fatalf("got %+v, want %+v", got.Balance, c.Balance)
	}
}

func TestBalanceNoFetches(t *testing.T) {
	c := Command{Op: OpBalance, Balance: &Balance{Epoch: 1, NewLo: 5, NewHi: 6}}
	got := roundtrip(t, c)
	if got.Balance.Epoch != 1 || len(got.Balance.Fetches) != 0 {
		t.Fatalf("got %+v", got.Balance)
	}
}

func TestFetchRoundtrip(t *testing.T) {
	c := Command{Op: OpFetch, Object: 7, Source: 2, Fetch: &Fetch{From: 2, Lo: 10, Hi: 20, Tuples: -1}}
	got := roundtrip(t, c)
	if !reflect.DeepEqual(got.Fetch, c.Fetch) {
		t.Fatalf("got %+v", got.Fetch)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, _, err := Decode(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	// Zeroed space decodes as OpInvalid.
	if _, _, err := Decode(make([]byte, 64)); err == nil {
		t.Error("zeroed buffer decoded")
	}
	// Truncated payload.
	c := Command{Op: OpLookup, Keys: []uint64{1, 2, 3}}
	buf := c.AppendEncode(nil)
	if _, _, err := Decode(buf[:len(buf)-4]); err != ErrTruncated {
		t.Errorf("truncated payload: %v", err)
	}
}

func TestDecodeAll(t *testing.T) {
	var buf []byte
	want := []Command{
		{Op: OpLookup, Object: 1, ReplyTo: NoReply, Keys: []uint64{5}},
		{Op: OpUpsert, Object: 2, ReplyTo: NoReply, KVs: []prefixtree.KV{{Key: 1, Value: 2}}},
		{Op: OpScan, Object: 3, ReplyTo: 7, Pred: colstore.Predicate{Op: colstore.All}},
	}
	for i := range want {
		buf = want[i].AppendEncode(buf)
	}
	var got []Command
	if err := DecodeAll(buf, func(c Command) error { got = append(got, c); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d commands", len(got))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Object != want[i].Object {
			t.Fatalf("command %d: %+v", i, got[i])
		}
	}
}

func TestEncodedSizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(op8 uint8, nKeys8 uint8, tag uint64) bool {
		op := Op(op8%uint8(numOps-1)) + 1
		c := Command{Op: op, Object: rng.Uint32(), Source: rng.Uint32(), ReplyTo: int32(rng.Int31()), Tag: tag}
		n := int(nKeys8 % 32)
		switch op {
		case OpLookup, OpScan:
			for i := 0; i < n; i++ {
				c.Keys = append(c.Keys, rng.Uint64())
			}
		case OpUpsert, OpResult:
			for i := 0; i < n; i++ {
				c.KVs = append(c.KVs, prefixtree.KV{Key: rng.Uint64(), Value: rng.Uint64()})
			}
		case OpBalance:
			b := &Balance{Epoch: rng.Uint64(), NewLo: rng.Uint64(), NewHi: rng.Uint64()}
			for i := 0; i < n%5; i++ {
				b.Fetches = append(b.Fetches, Fetch{From: rng.Uint32(), Lo: rng.Uint64(), Hi: rng.Uint64()})
			}
			c.Balance = b
		case OpFetch:
			c.Fetch = &Fetch{From: rng.Uint32(), Tuples: rng.Int63()}
		}
		buf := c.AppendEncode(nil)
		if len(buf) != c.EncodedSize() {
			return false
		}
		got, consumed, err := Decode(buf)
		if err != nil || consumed != len(buf) {
			return false
		}
		return got.Op == c.Op && got.Tag == c.Tag && got.Source == c.Source
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPayloadsDecodeNil(t *testing.T) {
	// Wire-empty batches must decode to nil (not empty non-nil) slices so
	// the hot path allocates nothing for them, and re-encoding the decoded
	// command must reproduce the original bytes.
	cases := []Command{
		{Op: OpLookup, Object: 1, ReplyTo: NoReply, Keys: []uint64{}},
		{Op: OpUpsert, Object: 2, ReplyTo: NoReply, KVs: []prefixtree.KV{}},
		{Op: OpResult, Object: 3, ReplyTo: NoReply},
		{Op: OpScan, Object: 4, ReplyTo: 1, Pred: colstore.Predicate{Op: colstore.All}},
	}
	for _, c := range cases {
		buf := c.AppendEncode(nil)
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("%v: decode: %v (%d of %d bytes)", c.Op, err, n, len(buf))
		}
		if got.Keys != nil || got.KVs != nil {
			t.Errorf("%v: empty payload decoded non-nil: Keys=%v KVs=%v", c.Op, got.Keys, got.KVs)
		}
		if back := got.AppendEncode(nil); !reflect.DeepEqual(back, buf) {
			t.Errorf("%v: re-encode mismatch: %v vs %v", c.Op, back, buf)
		}
		var d Decoder
		var view Command
		if _, err := d.DecodeInto(&view, buf); err != nil {
			t.Fatalf("%v: DecodeInto: %v", c.Op, err)
		}
		if view.Keys != nil || view.KVs != nil {
			t.Errorf("%v: empty payload view non-nil", c.Op)
		}
	}
}

// TestDecodeIntoMatchesDecode drives both decoders over the same frames at
// every possible payload alignment; the view decoder must produce the same
// commands whether it aliases the buffer or falls back to scratch.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	cmds := []Command{
		{Op: OpLookup, Object: 3, Source: 17, ReplyTo: 4, Tag: 99, Keys: []uint64{1, 2, 1 << 60}},
		{Op: OpUpsert, Object: 9, ReplyTo: NoReply, Tag: 5, KVs: []prefixtree.KV{{Key: 1, Value: 2}, {Key: ^uint64(0)}}},
		{Op: OpResult, Object: 9, Source: 3, ReplyTo: NoReply, Tag: 5, KVs: []prefixtree.KV{{Key: 7, Value: 8}}},
		{Op: OpScan, Object: 2, ReplyTo: 8, Pred: colstore.Predicate{Op: colstore.Between, Operand: 10, High: 20}, Keys: []uint64{100, 200}},
		{Op: OpBalance, Object: 1, Balance: &Balance{Epoch: 42, NewLo: 7, NewHi: 9, Fetches: []Fetch{{From: 3, Lo: 1, Hi: 2}}}},
		{Op: OpFetch, Object: 7, Fetch: &Fetch{From: 2, Lo: 10, Hi: 20, Tuples: -1}},
	}
	var d Decoder
	for _, c := range cmds {
		for pad := 0; pad < 8; pad++ {
			raw := c.AppendEncode(make([]byte, pad, pad+c.EncodedSize()))
			buf := raw[pad:]
			want, n, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			var got Command
			m, err := d.DecodeInto(&got, buf)
			if err != nil || m != n {
				t.Fatalf("%v pad %d: DecodeInto consumed %d err %v", c.Op, pad, m, err)
			}
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Fatalf("%v pad %d: got %+v, want %+v", c.Op, pad, got, want)
			}
		}
	}
}

// normalize copies view-backed slices so DeepEqual compares content.
func normalize(c Command) Command { return c.Clone() }

func TestCloneDetachesViews(t *testing.T) {
	c := Command{Op: OpLookup, Object: 1, ReplyTo: NoReply, Keys: []uint64{1, 2, 3}}
	buf := c.AppendEncode(nil)
	var d Decoder
	var view Command
	if _, err := d.DecodeInto(&view, buf); err != nil {
		t.Fatal(err)
	}
	clone := view.Clone()
	// Overwrite the encoded payload; the view may change, the clone must not.
	for i := headerBytes + 4; i < len(buf); i++ {
		buf[i] = 0xff
	}
	var second Command
	if _, err := d.DecodeInto(&second, buf); err != nil { // also recycles scratch
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone.Keys, []uint64{1, 2, 3}) {
		t.Fatalf("clone mutated: %v", clone.Keys)
	}
	b := Command{Op: OpBalance, Balance: &Balance{Epoch: 1, Fetches: []Fetch{{From: 9}}}}
	bc := b.Clone()
	b.Balance.Fetches[0].From = 1
	if bc.Balance.Fetches[0].From != 9 {
		t.Fatal("balance clone shares fetches")
	}
}

func TestOpString(t *testing.T) {
	for op := OpLookup; op < numOps; op++ {
		if s := op.String(); s == "" || s[0] == 'O' {
			t.Errorf("Op(%d).String() = %q", op, s)
		}
	}
	if s := Op(200).String(); s != "Op(200)" {
		t.Errorf("unknown op string = %q", s)
	}
}
