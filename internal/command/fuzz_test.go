package command

import (
	"reflect"
	"testing"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// FuzzCommandDecode feeds arbitrary bytes to the data-command decoder. The
// decoder fronts the routing layer's raw CAS-guarded buffers, so it must
// never panic and never trust a length field beyond the buffer. When a
// buffer does decode, re-encoding the command and decoding it again must
// reproduce it — the canonical encoding is a fixed point.
func FuzzCommandDecode(f *testing.F) {
	seeds := []Command{
		{Op: OpLookup, Object: 1, Source: 2, ReplyTo: 3, Tag: 4, Keys: []uint64{1, 2, 3}},
		{Op: OpDelete, Object: 1, Source: 2, ReplyTo: -2, Tag: 5, Keys: []uint64{9}},
		{Op: OpUpsert, Object: 1, Source: 0, ReplyTo: NoReply, Tag: 0, KVs: []prefixtree.KV{{Key: 1, Value: 10}}},
		{Op: OpResult, Object: 1, Source: 7, ReplyTo: NoReply, Tag: 6, KVs: []prefixtree.KV{{Key: 2, Value: 20}, {Key: 3, Value: 30}}},
		{Op: OpScan, Object: 2, Source: 1, ReplyTo: -2, Tag: 7, Pred: colstore.Predicate{Op: colstore.Between, Operand: 10, High: 20}, Keys: []uint64{5, 500}, Limit: 16},
		{Op: OpBalance, Object: 1, Source: 0, ReplyTo: NoReply, Tag: 8, Balance: &Balance{Epoch: 3, NewLo: 0, NewHi: 999, Fetches: []Fetch{{From: 2, Lo: 500, Hi: 999, Tuples: 0}}}},
		{Op: OpFetch, Object: 1, Source: 2, ReplyTo: 0, Tag: 3, Fetch: &Fetch{From: 1, Lo: 0, Hi: 499, Tuples: 128}},
		{Op: OpError, Object: 1, Source: 2, ReplyTo: 0, Tag: 9},
	}
	for i := range seeds {
		f.Add(seeds[i].AppendEncode(nil))
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		enc := c.AppendEncode(nil)
		again, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded command failed to decode: %v\ncmd: %+v", err, c)
		}
		if n2 != len(enc) {
			t.Fatalf("canonical encoding has %d bytes, decode consumed %d", len(enc), n2)
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("round trip mismatch:\n first  %+v\n second %+v", c, again)
		}
	})
}
