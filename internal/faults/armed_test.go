package faults

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryKindArmedByName asserts that each injectable fault kind is named
// by at least one test in the module. The chaos sweeps iterate Kinds(), so a
// newly added kind gets runtime coverage for free — but dynamic coverage
// leaves no test to read when the kind's semantics change, and nothing fails
// if the sweep starts skipping it. This meta-test (and the faulthook
// analyzer in internal/analysis, which enforces the same rule in erisvet)
// forces every kind to have an owner: a test that arms it by name.
func TestEveryKindArmedByName(t *testing.T) {
	kinds := kindConstNames(t)
	if len(kinds) == 0 {
		t.Fatal("no exported Kind constants found in package faults")
	}

	mentioned := map[string]bool{}
	root := moduleRoot(t)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") || filepath.Base(path) == "armed_test.go" {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				mentioned[id.Name] = true
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range kinds {
		if !mentioned[k] {
			t.Errorf("fault kind %s is never armed by name in any test; add a focused test that arms faults.%s and asserts its fail-soft contract", k, k)
		}
	}
}

// kindConstNames parses this package's sources for the exported constants
// of type Kind, so the test tracks the declaration instead of a hand-kept
// list.
func kindConstNames(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "faults.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		inKindBlock := false
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			if id, ok := vs.Type.(*ast.Ident); ok {
				inKindBlock = id.Name == "Kind"
			}
			if !inKindBlock {
				continue
			}
			for _, n := range vs.Names {
				if n.IsExported() {
					names = append(names, n.Name)
				}
			}
		}
	}
	return names
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}
