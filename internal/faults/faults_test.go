package faults

import (
	"testing"

	"eris/internal/metrics"
)

func TestNilInjectorNeverInjects(t *testing.T) {
	var inj *Injector
	for _, k := range Kinds() {
		if inj.Should(k) {
			t.Fatalf("nil injector injected %v", k)
		}
	}
	if inj.Injected(DropAck) != 0 || inj.Checked(DropAck) != 0 || inj.Seed() != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestUnarmedKindNeverInjects(t *testing.T) {
	inj := New(1)
	for i := 0; i < 100; i++ {
		if inj.Should(CorruptFrame) {
			t.Fatal("unarmed kind injected")
		}
	}
	if got := inj.Checked(CorruptFrame); got != 100 {
		t.Fatalf("checked = %d, want 100", got)
	}
}

func TestCounterRuleDeterminism(t *testing.T) {
	// After 3 events, every 2nd, at most 2 injections: events 4, 6 fail.
	decide := func() []int {
		inj := New(42)
		inj.Arm(DropAck, Rule{After: 3, Every: 2, Limit: 2})
		var hits []int
		for i := 1; i <= 12; i++ {
			if inj.Should(DropAck) {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := decide(), decide()
	want := []int{4, 6}
	if len(a) != len(want) || a[0] != want[0] || a[1] != want[1] {
		t.Fatalf("hits = %v, want %v", a, want)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic decisions: %v vs %v", a, b)
		}
	}
}

func TestProbRuleSeededStream(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(seed)
		inj.Arm(StallTransfer, Rule{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Should(StallTransfer)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestDisarmStopsInjection(t *testing.T) {
	inj := New(1)
	inj.Arm(FailAlloc, Rule{Every: 1})
	if !inj.Should(FailAlloc) {
		t.Fatal("armed every-event rule did not inject")
	}
	inj.Disarm(FailAlloc)
	if inj.Should(FailAlloc) {
		t.Fatal("disarmed kind injected")
	}
	if got := inj.Injected(FailAlloc); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
}

func TestRegisterMetrics(t *testing.T) {
	inj := New(3)
	inj.Arm(DropAck, Rule{Every: 1, Limit: 3})
	reg := metrics.NewRegistry()
	inj.RegisterMetrics(reg)
	for i := 0; i < 5; i++ {
		inj.Should(DropAck)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["faults.injected.drop_ack"]; got != 3 {
		t.Fatalf("faults.injected.drop_ack = %d, want 3", got)
	}
	if got := snap.Counters["faults.checked.drop_ack"]; got != 5 {
		t.Fatalf("faults.checked.drop_ack = %d, want 5", got)
	}
}
