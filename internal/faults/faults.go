// Package faults is the engine's deterministic fault-injection registry.
// The balance/transfer control plane is a distributed protocol (sample,
// re-plan, update routing tables, transfer partitions, collect acks) whose
// failure handling cannot be exercised by happy-path tests: the interesting
// states only appear when an ack is lost, a frame is corrupted mid-flight,
// an allocation fails transiently, or a transfer stalls while the next
// cycle is already being planned. This package provides seeded, repeatable
// injection of exactly those events.
//
// Hook points are threaded through the components (routing drain, the
// balancer's ack delivery, the AEU control path, the node memory managers)
// as a nil-able *Injector: a nil injector reduces every hook to one pointer
// comparison, so production paths pay nothing. Tests arm rules per fault
// kind; decisions are made by a deterministic per-kind event counter (or an
// optional seeded probability stream), so a failing chaos run reproduces
// byte-for-byte from its seed and rule set.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"eris/internal/metrics"
)

// Kind identifies one injectable fault.
type Kind uint8

// The injectable fault kinds, each named for the event it sabotages.
const (
	// DropAck discards a balancer epoch-done acknowledgement on delivery;
	// the balancing cycle must time out and the next window must recover.
	DropAck Kind = iota
	// CorruptFrame clobbers the first frame of a drained inbox payload so
	// it no longer decodes; the drain path must count and drop it.
	CorruptFrame
	// FailAlloc makes a node memory-manager allocation fail transiently;
	// the manager must absorb it (retry) instead of failing the engine.
	FailAlloc
	// DelayEpochDone holds an AEU's epoch-done ack for one loop round,
	// producing late (possibly post-timeout, stale-epoch) acks.
	DelayEpochDone
	// StallTransfer parks a partition-transfer payload for one mailbox
	// round, keeping its balancing epoch open across loop iterations.
	StallTransfer
	// DropConn closes a wire-server connection in place of writing a
	// response; clients must see a connection error, never a corrupt or
	// half-written frame, and the engine must be unaffected.
	DropConn
	// SlowWrite delays one wire-server response write, backing the
	// connection's response stream up against its in-flight limit.
	SlowWrite
	// TornWrite tears the unsynced tail of each write-ahead log at crash:
	// bytes written to the OS but not covered by an fsync are truncated at
	// a random offset, possibly mid-record. Recovery must stop cleanly at
	// the last valid frame.
	TornWrite
	// FailFsync makes a WAL group-commit fsync fail transiently; the log
	// writer must retry (acks stay parked) instead of losing durability.
	FailFsync
	// FailWrite makes a WAL group-commit file write fail transiently; the
	// writer must retry the segment in place — dropping it would let a
	// later fsync advance the durable watermark past the lost records.
	FailWrite
	// Crash requests a hard engine stop (no drain, no settle) from inside
	// the durability layer: the eligible event is one WAL record append,
	// so a seeded rule picks a reproducible crash point mid-workload.
	Crash
	numKinds
)

// String names the fault kind (used in metrics keys and rule parsing).
func (k Kind) String() string {
	switch k {
	case DropAck:
		return "drop_ack"
	case CorruptFrame:
		return "corrupt_frame"
	case FailAlloc:
		return "fail_alloc"
	case DelayEpochDone:
		return "delay_epoch_done"
	case StallTransfer:
		return "stall_transfer"
	case DropConn:
		return "drop_conn"
	case SlowWrite:
		return "slow_write"
	case TornWrite:
		return "torn_write"
	case FailFsync:
		return "fail_fsync"
	case FailWrite:
		return "fail_write"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Kinds returns every injectable fault kind (chaos tests iterate it).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKind resolves a fault kind by its String name.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q", s)
}

// Rule arms one fault kind. Eligible events are counted per kind; the
// first After events pass untouched, then every Every-th event injects
// (Every <= 1 means every event), at most Limit injections (0 = unbounded).
// A non-zero Prob switches to probabilistic injection from the kind's
// seeded stream instead of the Every spacing; After and Limit still apply.
type Rule struct {
	After int
	Every int
	Limit int
	Prob  float64
}

// armed is one active rule plus its decision state.
type armed struct {
	rule Rule
	rng  *rand.Rand // per-kind stream, seeded from the injector seed
	seen int64      // eligible events observed
	done int64      // injections performed
}

// Injector decides, deterministically, which eligible events fail. The
// zero value is not useful; use New. A nil *Injector is valid at every
// hook point and never injects.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rules [numKinds]*armed

	injected [numKinds]atomic.Int64
	checked  [numKinds]atomic.Int64
}

// New creates an injector whose probabilistic streams derive from seed.
// No fault fires until a rule is armed.
func New(seed int64) *Injector {
	return &Injector{seed: seed}
}

// Seed returns the seed the injector was created with.
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Arm installs (or replaces) the rule for one fault kind, resetting its
// decision state. Arming a nil injector is a no-op, matching the nil-safe
// check-side methods: callers never need to guard.
func (i *Injector) Arm(k Kind, r Rule) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules[k] = &armed{
		rule: r,
		rng:  rand.New(rand.NewSource(i.seed*31 + int64(k))),
	}
}

// Disarm removes the rule for one fault kind; its injected count remains.
func (i *Injector) Disarm(k Kind) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules[k] = nil
}

// DisarmAll removes every rule.
func (i *Injector) DisarmAll() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for k := range i.rules {
		i.rules[k] = nil
	}
}

// Should reports whether the current eligible event of kind k fails. It is
// nil-safe and consumes one event of the kind's counter when a rule is
// armed; callers place it exactly at the point where the fault manifests.
//
//eris:hotpath
func (i *Injector) Should(k Kind) bool {
	if i == nil {
		return false
	}
	i.checked[k].Add(1)
	i.mu.Lock() //eris:allowblock injector is nil in production; lock contention exists only under test fault schedules
	a := i.rules[k]
	if a == nil {
		i.mu.Unlock()
		return false
	}
	a.seen++
	if a.seen <= int64(a.rule.After) {
		i.mu.Unlock()
		return false
	}
	if a.rule.Limit > 0 && a.done >= int64(a.rule.Limit) {
		i.mu.Unlock()
		return false
	}
	inject := false
	if a.rule.Prob > 0 {
		inject = a.rng.Float64() < a.rule.Prob
	} else {
		every := int64(a.rule.Every)
		if every < 1 {
			every = 1
		}
		inject = (a.seen-int64(a.rule.After)-1)%every == 0
	}
	if inject {
		a.done++
	}
	i.mu.Unlock()
	if inject {
		i.injected[k].Add(1)
	}
	return inject
}

// Injected returns how many events of kind k were injected so far.
func (i *Injector) Injected(k Kind) int64 {
	if i == nil {
		return 0
	}
	return i.injected[k].Load()
}

// Checked returns how many eligible events of kind k passed a hook point
// (whether or not a rule was armed).
func (i *Injector) Checked(k Kind) int64 {
	if i == nil {
		return 0
	}
	return i.checked[k].Load()
}

// RegisterMetrics publishes per-kind injection counters on reg as
// faults.injected.<kind> and hook traffic as faults.checked.<kind>, so
// every injected failure is visible in the engine's metrics snapshot.
func (i *Injector) RegisterMetrics(reg *metrics.Registry) {
	if i == nil {
		return
	}
	for k := Kind(0); k < numKinds; k++ {
		k := k
		reg.CounterFunc("faults.injected."+k.String(), i.injected[k].Load)
		reg.CounterFunc("faults.checked."+k.String(), i.checked[k].Load)
	}
}
