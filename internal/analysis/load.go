package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Module is the loaded view of the repository: every source package of the
// requested patterns, parsed and type-checked against dependency export
// data.
type Module struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	paths map[string]*Package
}

// Package returns the source-loaded package with the given import path, or
// nil when it is not part of the module view.
func (m *Module) Package(path string) *Package { return m.paths[path] }

// NewModule assembles a module view from pre-built packages; the
// analysistest harness uses it to run analyzers over fixture packages that
// are not part of any real module.
func NewModule(fset *token.FileSet, pkgs []*Package) *Module {
	m := &Module{Fset: fset, Pkgs: pkgs, paths: make(map[string]*Package, len(pkgs))}
	for _, p := range pkgs {
		m.paths[p.Path] = p
	}
	return m
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	// XTestGoFiles are the external (package foo_test) test files.
	XTestGoFiles []string
	DepOnly      bool
	Standard     bool
}

// goList runs `go list -deps -export -json` for patterns inside dir. The
// -export flag makes the go tool compile (or reuse from the build cache)
// export data for every listed package, which is what lets the loader
// type-check source packages without resolving their dependencies from
// source.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// GoListExports returns import path -> export data file for patterns and
// all of their dependencies, resolved by the go tool inside dir.
func GoListExports(dir string, patterns ...string) (map[string]string, error) {
	if len(patterns) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// exportImporter resolves imports from export data files, preferring
// already source-checked local packages (analysistest fixtures chain their
// own packages in front of it).
type exportImporter struct {
	local map[string]*types.Package
	gc    types.ImporterFrom
}

// NewImporter builds a types importer that resolves local (pre-checked)
// packages first and everything else from the export data files in
// exports.
func NewImporter(fset *token.FileSet, exports map[string]string, local map[string]*types.Package) types.ImporterFrom {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	return &exportImporter{local: local, gc: gc}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := ei.local[path]; ok {
		return p, nil
	}
	return ei.gc.ImportFrom(path, dir, mode)
}

// TypeCheck parses nothing and checks the given files as one package.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := cfg.Check(path, fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, err := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, err.Error())
		}
		return tpkg, info, fmt.Errorf("type errors in %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return tpkg, info, nil
}

// ParseFiles parses the named files (relative to dir) with comments.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadModule loads and type-checks the packages matching patterns (plus
// their test files, parse-only) from the module rooted at or above dir.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports, nil)
	m := &Module{Fset: fset, paths: map[string]*Package{}}
	var errs []string
	for _, t := range targets {
		files, err := ParseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", t.ImportPath, err)
		}
		testNames := append(append([]string(nil), t.TestGoFiles...), t.XTestGoFiles...)
		testFiles, err := ParseFiles(fset, t.Dir, testNames)
		if err != nil {
			return nil, fmt.Errorf("parsing %s tests: %v", t.ImportPath, err)
		}
		tpkg, info, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkg := &Package{
			Path:      t.ImportPath,
			Name:      t.Name,
			Dir:       t.Dir,
			Files:     files,
			Types:     tpkg,
			Info:      info,
			TestFiles: testFiles,
		}
		m.Pkgs = append(m.Pkgs, pkg)
		m.paths[t.ImportPath] = pkg
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}
