// Package analysis is a self-contained static-analysis framework for the
// engine's own invariants: a miniature, dependency-free analogue of
// golang.org/x/tools/go/analysis. The build environment is hermetic (no
// module proxy), so instead of pinning x/tools this package loads and
// type-checks the module with nothing but the standard library: package
// metadata and dependency export data come from `go list -export -json`,
// syntax from go/parser, types from go/types with a lookup-based gc
// importer. The analyzer API mirrors the x/tools shape (Analyzer, Pass,
// Report) closely enough that the suite could be rebased onto the real
// framework by swapping this package out.
//
// What the suite enforces is the part of DESIGN.md that used to be social
// convention: single-writer AEU loops that never block or allocate on the
// data path, atomics-only access to cross-thread fields, metric-name
// hygiene, and nil-safe fault-injection hooks. See cmd/erisvet for the
// multichecker binary and DESIGN.md "Static invariant enforcement" for the
// directive grammar (//eris:hotpath, //eris:loop, //eris:allowalloc ...).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker. Run is invoked once per source package
// of the module when Module is false, and exactly once (with Pass.Pkg nil)
// when Module is true — module-level analyzers walk Pass.All themselves,
// which is how cross-package checks (call-graph reachability, metric-name
// collisions, fault-kind coverage) see the whole engine at once.
type Analyzer struct {
	Name   string
	Doc    string
	Module bool
	Run    func(*Pass) error
}

// Pass carries one analyzer invocation's view of the code.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis (nil for module-level analyzers).
	Pkg *Package
	// All is every source-loaded package of the module, sorted by import
	// path; export-data-only dependencies are not listed.
	All  []*Package
	Fset *token.FileSet

	report func(Diagnostic)
}

// Package is one type-checked source package plus its parsed (but not
// type-checked) test files.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TestFiles are the package's _test.go files (internal and external
	// test package alike), parsed with comments for syntactic checks; they
	// are not type-checked.
	TestFiles []*ast.File

	// directives is the per-file index of //eris: comment directives.
	directives map[*ast.File]*fileDirectives
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Findings suppressed by a matching
// //eris:allow* directive (with a reason) are dropped here, in one place,
// so every analyzer gets the same suppression semantics for free.
func (p *Pass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if pkg != nil {
		if verb, ok := suppressionVerbs[p.Analyzer.Name]; ok {
			if pkg.suppressed(p.Fset, pos, verb) {
				return
			}
		}
	}
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: position, Message: fmt.Sprintf(format, args...)})
}

// PackageAt returns the source package containing pos (module-level
// analyzers use it to route suppression checks), or nil.
func (p *Pass) PackageAt(pos token.Pos) *Package {
	file := p.Fset.File(pos)
	if file == nil {
		return nil
	}
	name := file.Name()
	for _, pkg := range p.All {
		for i, f := range pkg.Files {
			_ = i
			if tf := p.Fset.File(f.Package); tf != nil && tf.Name() == name {
				return pkg
			}
		}
	}
	return nil
}

// Run executes analyzers over the module and returns the findings sorted by
// position. Malformed //eris: directives are reported as findings of the
// pseudo-analyzer "directive" regardless of which analyzers run.
func Run(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	for _, pkg := range m.Pkgs {
		diags = append(diags, pkg.directiveDiagnostics(m.Fset)...)
	}

	for _, a := range analyzers {
		if a.Module {
			pass := &Pass{Analyzer: a, All: m.Pkgs, Fset: m.Fset, report: collect}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range m.Pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, All: m.Pkgs, Fset: m.Fset, report: collect}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
