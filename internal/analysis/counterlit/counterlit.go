// Package counterlit checks metric-name hygiene at registration sites. For
// every call to a registration method (Counter, CounterFunc, Gauge,
// GaugeFunc, Histogram) on a *Registry from a metrics package, when the
// name argument is a compile-time constant it must:
//
//   - match the naming convention: two or more lowercase dotted segments
//     ("server.accepted", "routing.drain.corrupt_frames")
//   - not be registered from two different packages (full-name collision)
//   - not share its first segment with constant names registered from a
//     different package (prefix ownership: "balance.*" belongs to exactly
//     one package)
//
// Dynamically built names (fmt.Sprintf("aeu.%d.", id) + "ops") are out of
// static reach and skipped; constant concatenation ("routing." + "drains")
// folds and is checked. Suppress with //eris:allowname <reason>.
package counterlit

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"eris/internal/analysis"
)

// Analyzer is the counterlit analyzer.
var Analyzer = &analysis.Analyzer{
	Name:   "counterlit",
	Doc:    "checks metric-name literals for convention and cross-package collisions",
	Module: true,
	Run:    run,
}

var namePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// registration is one constant-named metric registration site.
type registration struct {
	name string
	pkg  *analysis.Package
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	var regs []registration
	for _, pkg := range pass.All {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isRegistration(pkg.Info, call) {
					return true
				}
				tv, ok := pkg.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // dynamic name: out of static reach
				}
				name := constant.StringVal(tv.Value)
				if !namePattern.MatchString(name) {
					pass.Reportf(pkg, call.Args[0].Pos(),
						"metric name %q does not match the pkg.name convention (lowercase dotted segments)", name)
					return true
				}
				regs = append(regs, registration{name: name, pkg: pkg, pos: call.Args[0].Pos()})
				return true
			})
		}
	}

	sort.Slice(regs, func(i, j int) bool { return regs[i].pos < regs[j].pos })

	// Full-name collisions across packages.
	byName := map[string][]registration{}
	for _, r := range regs {
		byName[r.name] = append(byName[r.name], r)
	}
	for name, sites := range byName {
		if pkgsOf(sites) < 2 {
			continue
		}
		for _, r := range sites {
			pass.Reportf(r.pkg, r.pos, "metric name %q is registered from multiple packages", name)
		}
	}

	// Prefix ownership: the first segment is claimed by one package.
	owner := map[string]registration{}
	for _, r := range regs {
		prefix, _, _ := strings.Cut(r.name, ".")
		first, claimed := owner[prefix]
		if !claimed {
			owner[prefix] = r
			continue
		}
		if first.pkg != r.pkg {
			pass.Reportf(r.pkg, r.pos,
				"metric prefix %q is owned by package %s (e.g. %q) but registered here from %s",
				prefix, first.pkg.Path, first.name, r.pkg.Path)
		}
	}
	return nil
}

func pkgsOf(sites []registration) int {
	seen := map[*analysis.Package]bool{}
	for _, r := range sites {
		seen[r.pkg] = true
	}
	return len(seen)
}

// isRegistration reports whether call is Counter/CounterFunc/Gauge/
// GaugeFunc/Histogram on a *Registry declared in a metrics package (last
// import path segment "metrics", so fixtures qualify too).
func isRegistration(info *types.Info, call *ast.CallExpr) bool {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch fun.Sel.Name {
	case "Counter", "CounterFunc", "Gauge", "GaugeFunc", "Histogram":
	default:
		return false
	}
	sel, ok := info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "metrics" || strings.HasSuffix(path, "/metrics")
}
