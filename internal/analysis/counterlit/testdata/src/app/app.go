// Fixture for the counterlit analyzer: convention violations and
// cross-package collisions on constant metric names. This package loads
// first, so it owns the "app" and "shared" prefixes.
package app

import "metrics"

const prefix = "app."

func register(r *metrics.Registry) {
	r.Counter("app.requests")
	r.Counter(prefix + "folded")
	r.Counter("BadName")  // want `metric name "BadName" does not match the pkg\.name convention`
	r.Counter("app.")     // want `metric name "app\." does not match the pkg\.name convention`
	r.Gauge("shared.val") // want `metric name "shared\.val" is registered from multiple packages`
	r.NotARegistration("Whatever.Goes")
	r.Counter(dynamic() + ".ops")
}

func dynamic() string { return "aeu" }
