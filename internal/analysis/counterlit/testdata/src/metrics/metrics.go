// Fixture metrics package: the analyzer recognizes registration methods by
// name on a *Registry declared in a package whose import path ends in
// "metrics".
package metrics

type Registry struct{}

type Counter struct{}

func (r *Registry) Counter(name string) *Counter       { return &Counter{} }
func (r *Registry) Gauge(name string) *Counter         { return &Counter{} }
func (r *Registry) Histogram(name string) *Counter     { return &Counter{} }
func (r *Registry) NotARegistration(name string) error { return nil }
