// Second fixture consumer: collides with app's names and prefixes.
package app2

import "metrics"

func register(r *metrics.Registry) {
	r.Counter("shared.val") // want `metric name "shared\.val" is registered from multiple packages` `metric prefix "shared" is owned by package app`
	r.Counter("app.other")  // want `metric prefix "app" is owned by package app \(e\.g\. "app\.requests"\) but registered here from app2`
	r.Counter("app2.own")
	r.Counter("Legacy.Dashboard.Name") //eris:allowname historical name the Grafana boards already key on
}
