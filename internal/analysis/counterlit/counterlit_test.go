package counterlit_test

import (
	"testing"

	"eris/internal/analysis/analysistest"
	"eris/internal/analysis/counterlit"
)

func TestCounterLit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), counterlit.Analyzer, "metrics", "app", "app2")
}
