// Fixture for the atomicfield analyzer: fields mixed between atomic and
// plain access are flagged at the plain site; atomic-only, plain-only,
// container-of-atomic, address-taking, and suppressed accesses are not.
package a

import "sync/atomic"

type counters struct {
	ops    int64
	mixed  int64
	clean  int64
	val    atomic.Int64
	shards [4]atomic.Int64
}

func atomicSide(c *counters) {
	atomic.AddInt64(&c.ops, 1)
	atomic.AddInt64(&c.mixed, 1)
	c.val.Add(1)
}

func plainSide(c *counters) int64 {
	n := c.mixed // want `plain access to field counters\.mixed, which is accessed atomically`
	n += c.clean
	n += c.shards[0].Load()
	v := c.val // want `plain access to field counters\.val, which is accessed atomically`
	_ = v
	return n
}

// methodValue passes a bound method of an atomic field as a func: that is
// an atomic use, not a plain copy.
func methodValue(c *counters) func() int64 {
	return c.val.Load
}

// addrIsFine takes the address of an atomic-typed field (pointer passing,
// e.g. registering a CounterFunc); no copy of the value happens.
func addrIsFine(c *counters) *atomic.Int64 { return &c.val }

func suppressedRead(c *counters) int64 {
	return c.ops //eris:allowplain shutdown-only snapshot; all writers have exited
}
