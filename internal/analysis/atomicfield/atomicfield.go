// Package atomicfield flags struct fields that are accessed atomically in
// one place and via plain reads or writes elsewhere — the bug class where a
// counter is written with atomic.AddInt64 by one goroutine and read with a
// bare load by another, which the race detector only catches if a test
// happens to interleave the two.
//
// Two access styles count as atomic:
//
//   - &x.f passed to a sync/atomic package function (atomic.AddInt64(&x.f, 1))
//   - a method call on a field whose type is one of the sync/atomic value
//     types (x.f.Load(), x.f.Add(1))
//
// Everything else touching the same field is a plain access. For fields of
// the atomic value types a "plain access" means copying or overwriting the
// value itself (v := x.f); taking its address (&x.f) is allowed. For
// ordinary fields it means any non-atomic read or write. Fields that are
// arrays or slices of atomics are exempt: indexing the container is an
// ordinary operation and the per-element methods are already atomic.
// Suppress with //eris:allowplain <reason>.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"eris/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flags fields accessed both atomically and with plain reads/writes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	info := pkg.Info

	// consumed records selector nodes that participate in an atomic access
	// pattern so the plain-access walk skips them; addrOf records selectors
	// whose address is taken anywhere.
	consumed := map[*ast.SelectorExpr]bool{}
	addrOf := map[*ast.SelectorExpr]bool{}
	atomicUse := map[*types.Var][]token.Pos{}
	plainUse := map[*types.Var][]token.Pos{}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						addrOf[sel] = true
					}
				}
			case *ast.SelectorExpr:
				// x.f.Load() or a method value like x.f.Load passed as a
				// func: any method selection on an atomic-typed field.
				if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal && isAtomicType(s.Recv()) {
					if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
						if field := fieldOf(info, sel); field != nil {
							atomicUse[field] = append(atomicUse[field], sel.Pos())
							consumed[sel] = true
						}
					}
				}
			case *ast.CallExpr:
				fun, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// atomic.AddInt64(&x.f, 1) style: sync/atomic function
				// taking the field's address.
				if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
					for _, arg := range n.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
							if field := fieldOf(info, sel); field != nil {
								atomicUse[field] = append(atomicUse[field], sel.Pos())
								consumed[sel] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			field := fieldOf(info, sel)
			if field == nil {
				return true
			}
			if isAtomicType(field.Type()) && addrOf[sel] {
				return true // &x.f of an atomic value: pointer use, not a copy
			}
			plainUse[field] = append(plainUse[field], sel.Pos())
			return true
		})
	}

	for field, plains := range plainUse {
		atomics := atomicUse[field]
		if len(atomics) == 0 {
			continue
		}
		example := pass.Fset.Position(atomics[0])
		for _, pos := range plains {
			pass.Reportf(pkg, pos,
				"plain access to field %s.%s, which is accessed atomically (e.g. at %s:%d)",
				fieldOwner(field), field.Name(), example.Filename, example.Line)
		}
	}
	return nil
}

// fieldOf returns the struct field var sel denotes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicType reports whether t (or its pointee) is one of the sync/atomic
// value types. Containers of atomics deliberately do not count.
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldOwner names the struct type declaring field, best-effort.
func fieldOwner(field *types.Var) string {
	if field.Pkg() == nil {
		return "?"
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name()
			}
		}
	}
	return field.Pkg().Name()
}
