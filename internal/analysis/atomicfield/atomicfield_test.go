package atomicfield_test

import (
	"testing"

	"eris/internal/analysis/analysistest"
	"eris/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicfield.Analyzer, "a")
}
