// Package hotpath turns the DESIGN.md "Hot-path allocation contract" into a
// build-time check. A function whose doc comment carries //eris:hotpath must
// not contain allocating constructs and must not call unannotated in-module
// functions — so the annotation spreads along the data path and a new
// allocation anywhere under classify/apply/scan/Append fails the build
// instead of an AllocsPerRun spot check.
//
// Flagged constructs:
//
//   - make, new
//   - map/slice composite literals, and &T{...} (escaping struct literal)
//   - func literals (closure allocation)
//   - calls into fmt (Sprintf/Errorf format machinery allocates)
//   - string concatenation with +, and string<->[]byte/[]rune conversions
//   - append growing from nothing (first arg is nil or a composite literal);
//     amortized appends into reused scratch (append(x[:0], ...)) are fine
//   - go statements (goroutine spawn)
//   - calls to in-module functions not annotated //eris:hotpath
//
// Suppress a finding with //eris:allowalloc <reason> on the same line (or
// standing alone on the line above) — the reason is mandatory.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"eris/internal/analysis"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbids allocating constructs in //eris:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	marked := analysis.MarkedFuncs(pass.Fset, pass.All, "hotpath")

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pkg.FuncMarked(pass.Fset, fd, "hotpath") {
				continue
			}
			check(pass, pkg, fd.Body, marked)
		}
	}
	return nil
}

// check walks one hot-path function body. Nested func literals are flagged
// as closure allocations but not descended into: their bodies run under
// whatever context calls them.
func check(pass *analysis.Pass, pkg *analysis.Package, body *ast.BlockStmt, marked map[string]bool) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(pkg, n.Pos(), "hot path allocates: func literal (closure)")
			return false
		case *ast.GoStmt:
			pass.Reportf(pkg, n.Pos(), "hot path spawns a goroutine")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(pkg, n.Pos(), "hot path allocates: &composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			reportComposite(pass, pkg, info, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info, n) {
				pass.Reportf(pkg, n.Pos(), "hot path allocates: string concatenation")
			}
		case *ast.CallExpr:
			checkCall(pass, pkg, n, marked)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, pkg *analysis.Package, call *ast.CallExpr, marked map[string]bool) {
	info := pkg.Info

	// Conversions: string([]byte), []byte(string), []rune(...) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if convAllocates(info, call) {
			pass.Reportf(pkg, call.Pos(), "hot path allocates: %s conversion copies", types.TypeString(tv.Type, types.RelativeTo(pkg.Types)))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(pkg, call.Pos(), "hot path allocates: make")
			case "new":
				pass.Reportf(pkg, call.Pos(), "hot path allocates: new")
			case "append":
				if len(call.Args) > 0 && appendFromNothing(call.Args[0]) {
					pass.Reportf(pkg, call.Pos(), "hot path allocates: append growing a fresh slice (reuse scratch: append(buf[:0], ...))")
				}
			}
			return
		}
	}

	fn := analysis.StaticCallee(info, call)
	if fn == nil {
		return // dynamic dispatch or function value: out of static reach
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			pass.Reportf(pkg, call.Pos(), "hot path allocates: fmt.%s", fn.Name())
			return
		case "errors":
			pass.Reportf(pkg, call.Pos(), "hot path allocates: errors.%s", fn.Name())
			return
		}
	}
	if !analysis.InModule(pass.All, fn) {
		return // stdlib / export-data dependency: trusted
	}
	if !marked[analysis.Key(fn)] {
		pass.Reportf(pkg, call.Pos(), "hot path calls %s, which is not annotated //eris:hotpath", fn.FullName())
	}
}

// reportComposite flags map/slice literals always, and struct literals only
// when their address is taken (escaping heap allocation). A plain struct
// literal value stays on the stack.
func reportComposite(pass *analysis.Pass, pkg *analysis.Package, info *types.Info, lit *ast.CompositeLit) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(pkg, lit.Pos(), "hot path allocates: map literal")
	case *types.Slice:
		pass.Reportf(pkg, lit.Pos(), "hot path allocates: slice literal")
	}
}

// appendFromNothing reports whether the append base is nil or a fresh
// literal, i.e. the append cannot be amortized into reused capacity.
func appendFromNothing(base ast.Expr) bool {
	switch e := ast.Unparen(base).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	}
	return false
}

func isString(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// convAllocates reports whether a type conversion copies memory: anything
// between string and []byte/[]rune of non-constant operands.
func convAllocates(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok || argTV.Value != nil {
		return false // constant-folded: no runtime conversion
	}
	dstTV := info.Types[call.Fun]
	dst, src := dstTV.Type.Underlying(), argTV.Type.Underlying()
	return (isStringT(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStringT(src))
}

func isStringT(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (basic.Kind() == types.Byte || basic.Kind() == types.Rune ||
		basic.Kind() == types.Uint8 || basic.Kind() == types.Int32)
}
