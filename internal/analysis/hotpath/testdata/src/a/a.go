// Fixture for the hotpath analyzer: allocating constructs and unannotated
// in-module callees inside //eris:hotpath functions are flagged; annotated
// callees, amortized appends, stack struct literals, and reasoned
// //eris:allowalloc suppressions are not — and a reasonless suppression
// does not suppress.
package a

import (
	"errors"
	"fmt"
)

type point struct{ x, y int }

//eris:hotpath
func hot(buf []byte, s string, n int) []byte {
	m := make([]int, n) // want `hot path allocates: make`
	_ = m
	p := new(point) // want `hot path allocates: new`
	_ = p
	q := &point{1, 2} // want `hot path allocates: &composite literal escapes to the heap`
	_ = q
	onStack := point{3, 4}
	_ = onStack
	xs := []int{1, 2, 3} // want `hot path allocates: slice literal`
	_ = xs
	kv := map[string]int{} // want `hot path allocates: map literal`
	_ = kv
	f := func() {} // want `hot path allocates: func literal \(closure\)`
	_ = f
	go helper() // want `hot path spawns a goroutine`

	msg := fmt.Sprintf("%d", n) // want `hot path allocates: fmt\.Sprintf`
	err := errors.New("boom")   // want `hot path allocates: errors\.New`
	_, _ = msg, err

	s2 := s + "!"  // want `hot path allocates: string concatenation`
	b := []byte(s) // want `hot path allocates: \[\]byte conversion copies`
	_, _ = s2, b

	helper() // want `hot path calls a\.helper, which is not annotated //eris:hotpath`
	annotated()

	buf = append(buf[:0], 1, 2)
	buf = append([]byte{}, buf...) // want `hot path allocates: append growing a fresh slice` `hot path allocates: slice literal`
	return buf
}

func helper() {}

//eris:hotpath
func annotated() {}

//eris:hotpath
func suppressed(n int) []int {
	return make([]int, n) //eris:allowalloc growth is amortized; the caller reuses the slice
}

//eris:hotpath
func reasonless(n int) []int {
	return make([]int, n) /* want `hot path allocates: make` `//eris:allowalloc requires a reason` */ //eris:allowalloc
}
