package hotpath_test

import (
	"testing"

	"eris/internal/analysis/analysistest"
	"eris/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "a")
}
