// Package loopblock enforces the single-writer design rule: no blocking
// operation may be reachable from an AEU loop body. Functions whose doc
// comment carries //eris:loop are roots; the analyzer builds a static call
// graph over the module (direct calls and concrete method calls — interface
// dispatch and function values are out of reach, and go-statement targets
// run on their own goroutine so they are excluded) and flags, in every
// reachable function:
//
//   - bare channel sends and receives outside a select with a default case
//   - select statements without a default case
//   - time.Sleep
//   - file I/O: os package calls that open/read/write files, and methods on
//     *os.File
//   - Lock/RLock on sync.Mutex/RWMutex, sync.WaitGroup.Wait, sync.Cond.Wait
//
// Suppress a finding with //eris:allowblock <reason> — e.g. a deliberately
// modeled backpressure stall, or a mutex with a provably bounded critical
// section.
package loopblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"eris/internal/analysis"
)

// Analyzer is the loopblock analyzer.
var Analyzer = &analysis.Analyzer{
	Name:   "loopblock",
	Doc:    "forbids blocking operations reachable from //eris:loop roots",
	Module: true,
	Run:    run,
}

func run(pass *analysis.Pass) error {
	funcs := analysis.ModuleFuncs(pass.All)
	roots := analysis.MarkedFuncs(pass.Fset, pass.All, "loop")

	// Static call graph: caller key -> callee keys (module functions only).
	edges := map[string][]string{}
	for key, fi := range funcs {
		if fi.Decl.Body == nil {
			continue
		}
		goCalls := goStmtCalls(fi.Decl.Body)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || goCalls[call] {
				return true
			}
			callee := analysis.StaticCallee(fi.Pkg.Info, call)
			if callee == nil || !analysis.InModule(pass.All, callee) {
				return true
			}
			edges[key] = append(edges[key], analysis.Key(callee))
			return true
		})
	}

	// BFS from the roots, remembering one shortest call chain per function
	// for the diagnostic.
	parent := map[string]string{}
	reachable := map[string]bool{}
	var queue []string
	for key := range roots {
		reachable[key] = true
		queue = append(queue, key)
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range edges[cur] {
			if reachable[next] {
				continue
			}
			reachable[next] = true
			parent[next] = cur
			queue = append(queue, next)
		}
	}

	for key, fi := range funcs {
		if !reachable[key] || fi.Decl.Body == nil {
			continue
		}
		checkBody(pass, fi, chain(parent, roots, key))
	}
	return nil
}

// chain renders the call path root -> ... -> key for diagnostics.
func chain(parent map[string]string, roots map[string]bool, key string) string {
	var path []string
	for cur := key; ; cur = parent[cur] {
		path = append(path, shortName(cur))
		if roots[cur] {
			break
		}
		if _, ok := parent[cur]; !ok {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	if len(path) > 6 {
		path = append(path[:3], append([]string{"..."}, path[len(path)-2:]...)...)
	}
	return strings.Join(path, " -> ")
}

// shortName trims the package path from a function key, keeping pkg.Func
// (and the receiver parenthesis for methods: "(*aeu.AEU).Run").
func shortName(key string) string {
	lead := ""
	rest := key
	for _, p := range []string{"(*", "("} {
		if strings.HasPrefix(rest, p) {
			lead, rest = p, rest[len(p):]
			break
		}
	}
	if i := strings.LastIndex(rest, "/"); i >= 0 {
		rest = rest[i+1:]
	}
	return lead + rest
}

// goStmtCalls collects the call expressions launched by go statements in
// body: they run on their own goroutine and are excluded from loop
// reachability.
func goStmtCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out[g.Call] = true
		}
		return true
	})
	return out
}

// checkBody flags blocking operations in one reachable function.
func checkBody(pass *analysis.Pass, fi *analysis.FuncInfo, via string) {
	pkg := fi.Pkg
	info := pkg.Info

	// Channel operations inside a select that has a default case are
	// non-blocking; collect the allowed comm statements first.
	allowed := map[ast.Node]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			allowed[sel] = true
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					allowed[cc.Comm] = true
					// The comm statement wraps the channel op expression.
					ast.Inspect(cc.Comm, func(m ast.Node) bool {
						switch m.(type) {
						case *ast.UnaryExpr, *ast.SendStmt:
							allowed[m] = true
						}
						return true
					})
				}
			}
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Synchronously invoked closures (scan callbacks) still run on
			// the loop goroutine: keep descending.
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // spawned goroutine may block on its own time
		case *ast.SelectStmt:
			if !allowed[n] {
				pass.Reportf(pkg, n.Pos(), "blocking select (no default case) reachable from loop: %s", via)
			}
		case *ast.SendStmt:
			if !allowed[n] {
				pass.Reportf(pkg, n.Pos(), "blocking channel send reachable from loop: %s", via)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !allowed[n] {
				pass.Reportf(pkg, n.Pos(), "blocking channel receive reachable from loop: %s", via)
			}
		case *ast.CallExpr:
			if msg := blockingCall(info, n); msg != "" {
				pass.Reportf(pkg, n.Pos(), "%s reachable from loop: %s", msg, via)
			}
		}
		return true
	})
}

// blockingCall classifies a call as a blocking operation, returning a
// description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.StaticCallee(info, call)
	if fn == nil {
		return ""
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			recv = named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
	}
	switch {
	case pkgPath == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case recv == "sync.Mutex" && fn.Name() == "Lock",
		recv == "sync.RWMutex" && (fn.Name() == "Lock" || fn.Name() == "RLock"):
		return "mutex " + fn.Name() + " on a shared type"
	case recv == "sync.WaitGroup" && fn.Name() == "Wait":
		return "sync.WaitGroup.Wait"
	case recv == "sync.Cond" && fn.Name() == "Wait":
		return "sync.Cond.Wait"
	case recv == "os.File":
		switch fn.Name() {
		case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Close", "Seek", "Truncate":
			return "file I/O (os.File." + fn.Name() + ")"
		}
	case pkgPath == "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "ReadDir", "Stat":
			return "file I/O (os." + fn.Name() + ")"
		}
	}
	return ""
}
