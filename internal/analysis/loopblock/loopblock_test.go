package loopblock_test

import (
	"testing"

	"eris/internal/analysis/analysistest"
	"eris/internal/analysis/loopblock"
)

func TestLoopBlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), loopblock.Analyzer, "a")
}
