// Fixture for the loopblock analyzer: blocking operations reachable from an
// //eris:loop root are flagged with their call chain; select-with-default,
// go-statement targets, unreachable functions, and reasoned
// //eris:allowblock suppressions are not.
package a

import (
	"sync"
	"time"
)

type W struct {
	mu sync.Mutex
	ch chan int
}

//eris:loop
func (w *W) Run() {
	w.step()
	w.allowed()
	select { // want `blocking select \(no default case\) reachable from loop: \(\*a\.W\)\.Run`
	case v := <-w.ch: // want `blocking channel receive reachable from loop: \(\*a\.W\)\.Run`
		_ = v
	}
	select {
	case v := <-w.ch:
		_ = v
	default:
	}
	go w.background()
}

func (w *W) step() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reachable from loop: \(\*a\.W\)\.Run -> \(\*a\.W\)\.step`
	w.mu.Lock()                  // want `mutex Lock on a shared type reachable from loop: \(\*a\.W\)\.Run -> \(\*a\.W\)\.step`
	w.mu.Unlock()
}

// background runs on its own goroutine (go-statement target): its sleep is
// not loop-reachable.
func (w *W) background() {
	time.Sleep(time.Second)
}

// notReachable is never called from the loop root.
func (w *W) notReachable() {
	time.Sleep(time.Second)
}

func (w *W) allowed() {
	w.mu.Lock() //eris:allowblock bounded critical section; no I/O under the lock
	w.mu.Unlock()
}
