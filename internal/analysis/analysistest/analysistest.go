// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the in-tree framework.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. Packages are loaded in
// the order given, so a fixture that imports another (counterlit's app ->
// metrics) lists its dependency first. Imports outside the fixture set are
// resolved from real export data via the go tool, so fixtures may use the
// standard library freely. _test.go fixture files are parsed (not
// type-checked) and attached as the package's TestFiles, which is what the
// faulthook armed-kind check reads.
//
// A want comment is a trailing `// want "re"` (or backquoted) on the line
// the diagnostic is expected; multiple expectations chain: // want "a" "b".
// Every diagnostic must match a want on its line and every want must be
// matched, including findings of the "directive" pseudo-analyzer — that is
// how the suppression fixtures assert that a reasonless //eris:allow* is
// itself reported.
package analysistest

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"eris/internal/analysis"
)

// TestData returns the calling package's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "testdata")
}

// Run loads the fixture packages and checks a's diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()

	fset := token.NewFileSet()
	type fixture struct {
		path      string
		dir       string
		files     []*ast.File
		testFiles []*ast.File
	}

	fixtures := make([]*fixture, 0, len(pkgpaths))
	imports := map[string]bool{}
	for _, path := range pkgpaths {
		fx := &fixture{path: path, dir: filepath.Join(testdata, "src", filepath.FromSlash(path))}
		entries, err := os.ReadDir(fx.dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := analysis.ParseFiles(fset, fx.dir, []string{e.Name()})
			if err != nil {
				t.Fatal(err)
			}
			if strings.HasSuffix(e.Name(), "_test.go") {
				fx.testFiles = append(fx.testFiles, f...)
			} else {
				fx.files = append(fx.files, f...)
			}
			for _, file := range f {
				for _, imp := range file.Imports {
					p, _ := strconv.Unquote(imp.Path.Value)
					imports[p] = true
				}
			}
		}
		fixtures = append(fixtures, fx)
	}

	// Resolve non-fixture imports (stdlib) from real export data.
	for _, fx := range fixtures {
		delete(imports, fx.path)
	}
	var external []string
	for p := range imports {
		external = append(external, p)
	}
	sort.Strings(external)
	root := moduleRoot(t)
	exports, err := analysis.GoListExports(root, external...)
	if err != nil {
		t.Fatal(err)
	}

	local := map[string]*types.Package{}
	imp := analysis.NewImporter(fset, exports, local)
	var pkgs []*analysis.Package
	for _, fx := range fixtures {
		tpkg, info, err := analysis.TypeCheck(fset, fx.path, fx.files, imp)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", fx.path, err)
		}
		local[fx.path] = tpkg
		pkgs = append(pkgs, &analysis.Package{
			Path:      fx.path,
			Name:      tpkg.Name(),
			Dir:       fx.dir,
			Files:     fx.files,
			Types:     tpkg,
			Info:      info,
			TestFiles: fx.testFiles,
		})
	}

	diags, err := analysis.Run(analysis.NewModule(fset, pkgs), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, pkgs)
	for _, d := range diags {
		key := posKey{file: d.Pos.Filename, line: d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantPattern extracts the quoted expectations of one want comment. Both
// comment forms are supported; the block form (/* want "re" */) is how a
// fixture attaches an expectation to a line that ends in an //eris:
// directive, which a trailing line comment could not follow.
var wantPattern = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)$`)

// collectWants scans every fixture file (source and test alike) for want
// comments, keyed by the line they annotate.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) map[posKey][]*want {
	t.Helper()
	out := map[posKey][]*want{}
	for _, pkg := range pkgs {
		files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantPattern.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := posKey{file: pos.Filename, line: pos.Line}
					expect := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(m[1]), "*/"))
					for _, raw := range splitQuoted(t, pos, expect) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						out[key] = append(out[key], &want{re: re})
					}
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '"':
			end = 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
		case '`':
			end = 1 + strings.IndexByte(s[1:], '`')
		default:
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
		if end <= 0 || end >= len(s) {
			t.Fatalf("%s: unterminated want string in %q", pos, s)
		}
		raw, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want string %q: %v", pos, s[:end+1], err)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// moduleRoot walks up from the working directory to the go.mod, which is
// where the go tool resolves stdlib export data from.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}
