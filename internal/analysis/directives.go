package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //eris: directive grammar (see DESIGN.md "Static invariant
// enforcement"):
//
//	//eris:hotpath
//	    marks a function as data-hot-path in its doc comment: the hotpath
//	    analyzer forbids allocating constructs inside it and requires every
//	    in-module callee to be marked too.
//	//eris:loop
//	    marks a function as a single-writer loop root: the loopblock
//	    analyzer forbids blocking operations in everything reachable from
//	    it.
//	//eris:allowalloc <reason>
//	//eris:allowblock <reason>
//	//eris:allowplain <reason>
//	//eris:allowname <reason>
//	//eris:allowfault <reason>
//	    suppress one analyzer's findings (hotpath, loopblock, atomicfield,
//	    counterlit, faulthook respectively) on the directive's own line, or
//	    on the line directly below when the directive stands alone. The
//	    reason is mandatory: a suppression without one does not suppress
//	    and is itself reported.
const directivePrefix = "//eris:"

// markerVerbs are function-level markers (no arguments, doc comment only).
var markerVerbs = map[string]bool{
	"hotpath": true,
	"loop":    true,
}

// allowVerbs are line-level suppressions; the value is the analyzer whose
// findings they mute.
var allowVerbs = map[string]string{
	"allowalloc": "hotpath",
	"allowblock": "loopblock",
	"allowplain": "atomicfield",
	"allowname":  "counterlit",
	"allowfault": "faulthook",
}

// suppressionVerbs is the inverse of allowVerbs: analyzer name -> verb.
var suppressionVerbs = func() map[string]string {
	m := make(map[string]string, len(allowVerbs))
	for verb, analyzer := range allowVerbs {
		m[analyzer] = verb
	}
	return m
}()

// directive is one parsed //eris: comment.
type directive struct {
	verb   string
	reason string
	pos    token.Pos
	// ownLine is true when the comment is the only thing on its line, so
	// the suppression applies to the following line.
	ownLine bool
}

// fileDirectives indexes one file's directives by line.
type fileDirectives struct {
	byLine map[int][]directive
	bad    []Diagnostic
}

// parseDirectives scans every comment of file for //eris: directives.
func parseDirectives(fset *token.FileSet, file *ast.File) *fileDirectives {
	fd := &fileDirectives{byLine: map[int][]directive{}}
	// lineHasCode marks lines carrying non-comment tokens, to tell a
	// trailing directive (applies to its own line) from a standalone one
	// (applies to the next line).
	lineHasCode := map[int]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup, nil:
			return false
		}
		lineHasCode[fset.Position(n.Pos()).Line] = true
		return true
	})
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			verb, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Pos())
			d := directive{verb: verb, reason: reason, pos: c.Pos(), ownLine: !lineHasCode[pos.Line]}
			switch {
			case markerVerbs[verb]:
				if reason != "" {
					fd.bad = append(fd.bad, Diagnostic{
						Analyzer: "directive", Pos: pos,
						Message: "//eris:" + verb + " takes no arguments",
					})
				}
			case allowVerbs[verb] != "":
				if reason == "" {
					fd.bad = append(fd.bad, Diagnostic{
						Analyzer: "directive", Pos: pos,
						Message: "//eris:" + verb + " requires a reason (//eris:" + verb + " <why this is safe>)",
					})
					continue // an unexplained suppression does not suppress
				}
			default:
				fd.bad = append(fd.bad, Diagnostic{
					Analyzer: "directive", Pos: pos,
					Message: "unknown directive //eris:" + verb,
				})
				continue
			}
			fd.byLine[pos.Line] = append(fd.byLine[pos.Line], d)
		}
	}
	return fd
}

// ensureDirectives lazily builds the directive index for every file.
func (p *Package) ensureDirectives(fset *token.FileSet) {
	if p.directives != nil {
		return
	}
	p.directives = make(map[*ast.File]*fileDirectives, len(p.Files))
	for _, f := range p.Files {
		p.directives[f] = parseDirectives(fset, f)
	}
}

// directiveDiagnostics returns the package's malformed-directive findings.
func (p *Package) directiveDiagnostics(fset *token.FileSet) []Diagnostic {
	p.ensureDirectives(fset)
	var out []Diagnostic
	for _, f := range p.Files {
		out = append(out, p.directives[f].bad...)
	}
	return out
}

// suppressed reports whether a finding at pos is muted by an //eris:<verb>
// directive on the same line, or standing alone on the line above.
func (p *Package) suppressed(fset *token.FileSet, pos token.Pos, verb string) bool {
	p.ensureDirectives(fset)
	file := fset.File(pos)
	if file == nil {
		return false
	}
	line := fset.Position(pos).Line
	for _, f := range p.Files {
		tf := fset.File(f.Package)
		if tf == nil || tf.Name() != file.Name() {
			continue
		}
		fd := p.directives[f]
		for _, d := range fd.byLine[line] {
			if d.verb == verb {
				return true
			}
		}
		for _, d := range fd.byLine[line-1] {
			if d.verb == verb && d.ownLine {
				return true
			}
		}
	}
	return false
}

// FuncMarked reports whether decl carries the //eris:<verb> marker in its
// doc comment.
func (p *Package) FuncMarked(fset *token.FileSet, decl *ast.FuncDecl, verb string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, directivePrefix+verb) {
			rest := strings.TrimPrefix(c.Text, directivePrefix+verb)
			if rest == "" || strings.HasPrefix(rest, " ") {
				return true
			}
		}
	}
	return false
}
