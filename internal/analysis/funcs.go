package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncInfo pairs one module function's declaration with its object.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Fn   *types.Func
}

// Key returns the cross-package identity of fn. types.Func objects for the
// same function differ between a package's own check and an importer's view
// of it, but FullName (qualified by import path) matches both.
func Key(fn *types.Func) string { return fn.FullName() }

// ModuleFuncs indexes every function declared in the source-loaded packages
// by Key.
func ModuleFuncs(all []*Package) map[string]*FuncInfo {
	funcs := map[string]*FuncInfo{}
	for _, pkg := range all {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				funcs[Key(fn)] = &FuncInfo{Pkg: pkg, Decl: fd, Fn: fn}
			}
		}
	}
	return funcs
}

// MarkedFuncs returns the Keys of every module function whose doc comment
// carries //eris:<verb>.
func MarkedFuncs(fset *token.FileSet, all []*Package, verb string) map[string]bool {
	marked := map[string]bool{}
	for _, pkg := range all {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if !pkg.FuncMarked(fset, fd, verb) {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					marked[Key(fn)] = true
				}
			}
		}
	}
	return marked
}

// StaticCallee resolves the function a call statically invokes: a package
// function, a concrete method, or nil for dynamic dispatch (interface
// methods, function values), conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
			if sel.Kind() == types.MethodVal {
				if _, ifc := sel.Recv().Underlying().(*types.Interface); ifc {
					return nil // dynamic dispatch
				}
			}
		} else {
			obj = info.Uses[fun.Sel] // package-qualified: pkg.Fn
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// InModule reports whether fn is declared in one of the source-loaded
// packages (as opposed to the standard library or export-data-only deps).
func InModule(all []*Package, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	for _, pkg := range all {
		if pkg.Path == path {
			return true
		}
	}
	return false
}
