// Fixture consumer: the external call sites that make Should and Unguarded
// subject to the nil-guard rule.
package app

import "faults"

func hook(i *faults.Injector) bool {
	return i.Should(faults.DropThing) || i.Unguarded(faults.DropThing)
}
