package faults

import "testing"

// TestArm names DropThing, which is what counts as arming it; LostThing is
// deliberately never mentioned by any test file.
func TestArm(t *testing.T) {
	var i Injector
	i.Arm(DropThing)
	if !i.armed[DropThing] {
		t.Fatal("not armed")
	}
}
