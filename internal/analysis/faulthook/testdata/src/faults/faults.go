// Fixture for the faulthook analyzer: every exported Kind must be named by
// a test somewhere in the module, and every (*Injector) method called from
// outside the package must begin with a nil-receiver guard.
package faults

type Kind uint8

const (
	DropThing Kind = iota
	LostThing      // want `fault kind LostThing is never armed by any test in the module`
	internalKind
)

type Injector struct{ armed [3]bool }

// Arm starts with the guard: fine.
func (i *Injector) Arm(k Kind) {
	if i == nil {
		return
	}
	i.armed[k] = true
}

// Should is called from package app but has no guard.
func (i *Injector) Should(k Kind) bool { // want `\(\*Injector\)\.Should is called outside package faults \(e\.g\. at .*\) but does not begin with a nil-receiver guard`
	return i.armed[k]
}

// onlyInternal is unexported and uncalled externally: out of scope.
func (i *Injector) onlyInternal(k Kind) bool { return i.armed[k] }

// Unguarded is exempted by a reasoned suppression.
func (i *Injector) Unguarded(k Kind) bool { return i.armed[k] } //eris:allowfault every caller constructs the injector eagerly; nil never flows here
