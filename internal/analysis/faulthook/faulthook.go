// Package faulthook keeps the fault-injection surface honest:
//
//  1. Every exported faults.Kind constant must be armed by at least one
//     test somewhere in the module — a kind nobody injects is dead chaos
//     coverage. The check is syntactic over _test.go files (which are
//     parsed but not type-checked): a kind counts as armed when its name
//     appears as an identifier in any test file, which covers both
//     faults.DropAck literals and in-package DropAck references. Kinds
//     armed only dynamically (for _, k := range faults.Kinds()) are still
//     counted, because such loops live in test files that also name kinds.
//  2. Every exported pointer-receiver method on faults.Injector that is
//     called from outside the faults package must begin with a
//     nil-receiver guard (if i == nil { ... }): production code runs with
//     a nil injector, so an unguarded hook is a latent panic at every
//     injection site.
//
// Suppress with //eris:allowfault <reason>.
package faulthook

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eris/internal/analysis"
)

// Analyzer is the faulthook analyzer.
var Analyzer = &analysis.Analyzer{
	Name:   "faulthook",
	Doc:    "checks fault kinds are test-armed and injection hooks are nil-safe",
	Module: true,
	Run:    run,
}

func run(pass *analysis.Pass) error {
	faults := findFaultsPackage(pass.All)
	if faults == nil {
		return nil // nothing to check in this module view
	}

	checkKindsArmed(pass, faults)
	checkNilSafety(pass, faults)
	return nil
}

// findFaultsPackage locates the package whose import path ends in "faults"
// and which declares a named type Kind.
func findFaultsPackage(all []*analysis.Package) *analysis.Package {
	for _, pkg := range all {
		if pkg.Path != "faults" && !strings.HasSuffix(pkg.Path, "/faults") {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup("Kind").(*types.TypeName); ok && tn != nil {
			return pkg
		}
	}
	return nil
}

// checkKindsArmed reports exported Kind constants never named in any test
// file of the module.
func checkKindsArmed(pass *analysis.Pass, faults *analysis.Package) {
	kindType := faults.Types.Scope().Lookup("Kind").Type()

	// Names mentioned in any _test.go file, module-wide.
	mentioned := map[string]bool{}
	for _, pkg := range pass.All {
		for _, file := range pkg.TestFiles {
			ast.Inspect(file, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					mentioned[id.Name] = true
				}
				return true
			})
		}
	}

	scope := faults.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), kindType) {
			continue
		}
		if !mentioned[name] {
			pass.Reportf(faults, c.Pos(),
				"fault kind %s is never armed by any test in the module", name)
		}
	}
}

// checkNilSafety reports exported (*Injector) methods that are called from
// outside the faults package but do not start with a nil-receiver guard.
func checkNilSafety(pass *analysis.Pass, faults *analysis.Package) {
	// Externally called method names.
	calledFrom := map[string]token.Pos{}
	for _, pkg := range pass.All {
		if pkg == faults {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.StaticCallee(pkg.Info, call)
				if fn == nil || !isInjectorMethod(fn, faults.Path) {
					return true
				}
				if _, seen := calledFrom[fn.Name()]; !seen {
					calledFrom[fn.Name()] = call.Pos()
				}
				return true
			})
		}
	}

	for _, file := range faults.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := faults.Info.Defs[fd.Name].(*types.Func)
			if !ok || !isInjectorMethod(fn, faults.Path) {
				continue
			}
			callPos, external := calledFrom[fd.Name.Name]
			if !external {
				continue
			}
			if hasNilGuard(fd) {
				continue
			}
			pass.Reportf(faults, fd.Name.Pos(),
				"(*Injector).%s is called outside package faults (e.g. at %s) but does not begin with a nil-receiver guard",
				fd.Name.Name, pass.Fset.Position(callPos))
		}
	}
}

// isInjectorMethod reports whether fn is a method on *Injector (or
// Injector) of the faults package.
func isInjectorMethod(fn *types.Func, faultsPath string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Injector" && named.Obj().Pkg().Path() == faultsPath
}

// hasNilGuard reports whether fd's body begins with `if <recv> == nil`.
func hasNilGuard(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recv := fd.Recv.List[0].Names[0].Name
	ifStmt, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	return isIdent(cond.X, recv) && isIdent(cond.Y, "nil") ||
		isIdent(cond.X, "nil") && isIdent(cond.Y, recv)
}

func isIdent(expr ast.Expr, name string) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && id.Name == name
}
