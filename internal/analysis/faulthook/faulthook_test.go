package faulthook_test

import (
	"testing"

	"eris/internal/analysis/analysistest"
	"eris/internal/analysis/faulthook"
)

func TestFaultHook(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), faulthook.Analyzer, "faults", "app")
}
