// Package history records per-client operation histories — invocation and
// response events with monotonic timestamps — for offline linearizability
// checking by internal/histcheck. It wraps both the in-process core client
// API (CoreClient) and the eriswire client (WireClient), so the same
// checker validates local chaos runs and remote workloads.
//
// The recorder follows the hot-path allocation contract: each client's log
// is a preallocated fixed-capacity ring that refuses to wrap — overwriting
// the oldest events would destroy the invoke/response pairing the checker
// depends on, so overflow drops *new* events and counts them instead.
// Appends are plain slice writes into the preallocated backing array: zero
// steady-state allocations, single-goroutine per ClientLog (one log per
// worker, like one connection per worker).
package history

import (
	"sort"
	"time"

	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// Invoke opens an operation; its response (if any) shares the Seq.
	Invoke Kind = iota
	// ReturnOK closes an operation that definitely took effect.
	ReturnOK
	// ReturnErr closes an operation that definitely did NOT take effect
	// (validation failure, shed before execution). The checker drops the
	// pair entirely.
	ReturnErr
	// ReturnLost closes an operation with an unknown outcome (timeout,
	// connection loss): a lost write may take effect at any later point,
	// or never. The checker treats it as open-ended.
	ReturnLost
)

// Op identifies the recorded operation.
type Op uint8

// Recorded operations.
const (
	// OpLookup is a point read of one key.
	OpLookup Op = iota
	// OpUpsert writes Key = Val.
	OpUpsert
	// OpDelete removes Key.
	OpDelete
	// OpScanRange is an index range-scan aggregate over [Key, Key2].
	OpScanRange
	// OpColScan is a column-scan aggregate (no key range).
	OpColScan
)

// Event is one history record. It is a single flat fixed-size struct so a
// ClientLog is one contiguous allocation and violation dumps serialize
// without reflection surprises.
type Event struct {
	// T is monotonic nanoseconds since the Recorder's base.
	T int64
	// Client is the owning ClientLog's id.
	Client uint16
	// Seq pairs an invocation with its response within one client.
	Seq  uint32
	Kind Kind
	Op   Op

	// Key is the point-op key, or the scan range low bound.
	Key uint64
	// Key2 is the scan range high bound.
	Key2 uint64
	// Val is the written value on a write invoke, the observed value on a
	// lookup response, and the matched count on a scan response.
	Val uint64
	// Val2 is the observed sum on a scan response.
	Val2 uint64
	// Pred is the scan predicate (scan invokes only).
	Pred colstore.Predicate
	// Found reports presence on a lookup response.
	Found bool
}

// ClientLog is one client's event log. It is single-goroutine: each
// worker records into its own log, and the checker reads only after the
// workload quiesced.
type ClientLog struct {
	id      uint16
	rec     *Recorder
	events  []Event
	dropped int64
	nextSeq uint32
}

// Recorder owns a fixed set of client logs sharing one monotonic base.
type Recorder struct {
	base    time.Time
	clients []*ClientLog
}

// New creates a recorder with one log per client, each preallocated to
// hold perClientEvents events.
func New(clients, perClientEvents int) *Recorder {
	r := &Recorder{base: time.Now()}
	for i := 0; i < clients; i++ {
		r.clients = append(r.clients, &ClientLog{
			id:     uint16(i),
			rec:    r,
			events: make([]Event, 0, perClientEvents),
		})
	}
	return r
}

// Client returns log i.
func (r *Recorder) Client(i int) *ClientLog { return r.clients[i] }

// Clients returns all logs.
func (r *Recorder) Clients() []*ClientLog { return r.clients }

// Now returns monotonic nanoseconds since the recorder's base.
func (r *Recorder) Now() int64 { return int64(time.Since(r.base)) }

// Events flattens every client's log into one slice (checking is offline;
// this allocates).
func (r *Recorder) Events() []Event {
	var out []Event
	for _, l := range r.clients {
		out = append(out, l.events...)
	}
	return out
}

// Len is the total number of recorded events.
func (r *Recorder) Len() int {
	n := 0
	for _, l := range r.clients {
		n += len(l.events)
	}
	return n
}

// Dropped is the total number of events lost to log overflow. A non-zero
// count does not make checking unsound — whole operations go unobserved,
// which only removes constraints — but it does shrink coverage, so
// callers should size the logs to keep it zero.
func (r *Recorder) Dropped() int64 {
	n := int64(0)
	for _, l := range r.clients {
		n += l.dropped
	}
	return n
}

// append records e, dropping it (counted) when the log is full. Capacity
// is fixed at construction: steady-state appends never allocate.
func (l *ClientLog) append(e Event) {
	if len(l.events) == cap(l.events) {
		l.dropped++
		return
	}
	l.events = append(l.events, e)
}

// Events returns the recorded events.
func (l *ClientLog) Events() []Event { return l.events }

// Dropped is the number of events lost to overflow on this log.
func (l *ClientLog) Dropped() int64 { return l.dropped }

// InvokeKey records the invocation of a point op at the current time and
// returns its seq. val is the written value (writes) and ignored for
// lookups and deletes.
func (l *ClientLog) InvokeKey(op Op, key, val uint64) uint32 {
	return l.invokeKeyAt(l.rec.Now(), op, key, val)
}

func (l *ClientLog) invokeKeyAt(t int64, op Op, key, val uint64) uint32 {
	l.nextSeq++
	l.append(Event{T: t, Client: l.id, Seq: l.nextSeq, Kind: Invoke, Op: op, Key: key, Val: val})
	return l.nextSeq
}

// InvokeScan records a scan invocation ([lo,hi] is ignored for OpColScan).
func (l *ClientLog) InvokeScan(op Op, lo, hi uint64, pred colstore.Predicate) uint32 {
	return l.invokeScanAt(l.rec.Now(), op, lo, hi, pred)
}

func (l *ClientLog) invokeScanAt(t int64, op Op, lo, hi uint64, pred colstore.Predicate) uint32 {
	l.nextSeq++
	l.append(Event{T: t, Client: l.id, Seq: l.nextSeq, Kind: Invoke, Op: op, Key: lo, Key2: hi, Pred: pred})
	return l.nextSeq
}

// ReturnRead closes a lookup with its observed result.
func (l *ClientLog) ReturnRead(seq uint32, found bool, val uint64) {
	l.returnReadAt(l.rec.Now(), seq, found, val)
}

func (l *ClientLog) returnReadAt(t int64, seq uint32, found bool, val uint64) {
	l.append(Event{T: t, Client: l.id, Seq: seq, Kind: ReturnOK, Op: OpLookup, Val: val, Found: found})
}

// ReturnWrite closes an acked upsert/delete.
func (l *ClientLog) ReturnWrite(seq uint32, op Op) {
	l.returnAt(l.rec.Now(), seq, op, ReturnOK)
}

// ReturnAgg closes a scan with its observed aggregate.
func (l *ClientLog) ReturnAgg(seq uint32, op Op, matched, sum uint64) {
	l.returnAggAt(l.rec.Now(), seq, op, matched, sum)
}

func (l *ClientLog) returnAggAt(t int64, seq uint32, op Op, matched, sum uint64) {
	l.append(Event{T: t, Client: l.id, Seq: seq, Kind: ReturnOK, Op: op, Val: matched, Val2: sum})
}

// ReturnErr closes an operation that definitely did not take effect.
func (l *ClientLog) ReturnErr(seq uint32, op Op) {
	l.returnAt(l.rec.Now(), seq, op, ReturnErr)
}

// ReturnLost closes an operation whose outcome is unknown.
func (l *ClientLog) ReturnLost(seq uint32, op Op) {
	l.returnAt(l.rec.Now(), seq, op, ReturnLost)
}

func (l *ClientLog) returnAt(t int64, seq uint32, op Op, kind Kind) {
	l.append(Event{T: t, Client: l.id, Seq: seq, Kind: kind, Op: op})
}

// findKV locates key in a key-sorted lookup result; falls back to a
// linear scan if the result turns out unsorted (it never should).
func findKV(kvs []prefixtree.KV, key uint64) (uint64, bool) {
	i := sort.Search(len(kvs), func(i int) bool { return kvs[i].Key >= key })
	if i < len(kvs) && kvs[i].Key == key {
		return kvs[i].Value, true
	}
	for _, kv := range kvs {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	return 0, false
}
