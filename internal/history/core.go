package history

import (
	"context"

	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/prefixtree"
	"eris/internal/routing"
)

// CoreClient wraps the in-process engine client API for one object,
// recording every call into a ClientLog. Like the log, it is
// single-goroutine: one wrapper per worker.
//
// Outcome classification: a nil error is ReturnOK. Any error on a write is
// ReturnLost — a batch can split across AEUs and partially apply before
// the error surfaces, so "failed" never proves "had no effect". Errors on
// reads and scans are ReturnErr (an unanswered read constrains nothing).
type CoreClient struct {
	eng *core.Engine
	obj routing.ObjectID
	log *ClientLog

	// corruptReads > 0 perturbs the next recorded lookup results
	// (test-only): the recorded history then claims a value the engine
	// never returned, which a working checker must flag. This is how the
	// checker proves it has teeth.
	corruptReads int
}

// NewCoreClient wraps eng's client API for object obj, recording into log.
func NewCoreClient(eng *core.Engine, obj routing.ObjectID, log *ClientLog) *CoreClient {
	return &CoreClient{eng: eng, obj: obj, log: log}
}

// CorruptReads arms the test-only stale-read fault for the next n lookup
// keys: their recorded results are perturbed after the engine answered.
func (c *CoreClient) CorruptReads(n int) { c.corruptReads = n }

// Lookup records and performs a batched point lookup.
func (c *CoreClient) Lookup(ctx context.Context, keys []uint64) ([]prefixtree.KV, error) {
	t := c.log.rec.Now()
	seq0 := c.log.nextSeq + 1
	for _, k := range keys {
		c.log.invokeKeyAt(t, OpLookup, k, 0)
	}
	kvs, err := c.eng.LookupCtx(ctx, c.obj, keys)
	t2 := c.log.rec.Now()
	if err != nil {
		for i := range keys {
			c.log.returnAt(t2, seq0+uint32(i), OpLookup, ReturnErr)
		}
		return kvs, err
	}
	for i, k := range keys {
		v, found := findKV(kvs, k)
		if c.corruptReads > 0 {
			c.corruptReads--
			v, found = v+1, true
		}
		c.log.returnReadAt(t2, seq0+uint32(i), found, v)
	}
	return kvs, nil
}

// Upsert records and performs a batched upsert.
func (c *CoreClient) Upsert(ctx context.Context, kvs []prefixtree.KV) error {
	t := c.log.rec.Now()
	seq0 := c.log.nextSeq + 1
	for _, kv := range kvs {
		c.log.invokeKeyAt(t, OpUpsert, kv.Key, kv.Value)
	}
	err := c.eng.UpsertCtx(ctx, c.obj, kvs)
	c.closeWrites(seq0, len(kvs), OpUpsert, err)
	return err
}

// Delete records and performs a batched delete.
func (c *CoreClient) Delete(ctx context.Context, keys []uint64) error {
	t := c.log.rec.Now()
	seq0 := c.log.nextSeq + 1
	for _, k := range keys {
		c.log.invokeKeyAt(t, OpDelete, k, 0)
	}
	err := c.eng.DeleteCtx(ctx, c.obj, keys)
	c.closeWrites(seq0, len(keys), OpDelete, err)
	return err
}

func (c *CoreClient) closeWrites(seq0 uint32, n int, op Op, err error) {
	t := c.log.rec.Now()
	kind := ReturnOK
	if err != nil {
		// A batch may have partially applied before the error: lost, not
		// refuted.
		kind = ReturnLost
	}
	for i := 0; i < n; i++ {
		c.log.returnAt(t, seq0+uint32(i), op, kind)
	}
}

// ScanRange records and performs an exact range-scan aggregate.
func (c *CoreClient) ScanRange(ctx context.Context, lo, hi uint64, pred colstore.Predicate) (core.ScanAggregate, error) {
	seq := c.log.InvokeScan(OpScanRange, lo, hi, pred)
	agg, err := c.eng.ScanRangeCtx(ctx, c.obj, lo, hi, pred)
	if err != nil {
		c.log.ReturnErr(seq, OpScanRange)
		return agg, err
	}
	c.log.ReturnAgg(seq, OpScanRange, agg.Matched, agg.Sum)
	return agg, nil
}

// ColScan records and performs a column-scan aggregate. The wrapped
// object must be the column object, not the index.
func (c *CoreClient) ColScan(ctx context.Context, pred colstore.Predicate) (core.ScanAggregate, error) {
	seq := c.log.InvokeScan(OpColScan, 0, 0, pred)
	agg, err := c.eng.ScanCtx(ctx, c.obj, pred)
	if err != nil {
		c.log.ReturnErr(seq, OpColScan)
		return agg, err
	}
	c.log.ReturnAgg(seq, OpColScan, agg.Matched, agg.Sum)
	return agg, nil
}
