package history

import (
	"context"

	"eris/internal/client"
	"eris/internal/colstore"
	"eris/internal/prefixtree"
)

// WireClient wraps one eriswire client connection for one object,
// recording every call into a ClientLog. Single-goroutine, like the log;
// outcome classification matches CoreClient (write errors are Lost — the
// server may have executed a request whose response was lost).
type WireClient struct {
	c   *client.Client
	obj uint32
	log *ClientLog

	corruptReads int
}

// NewWireClient wraps c's calls against object obj, recording into log.
func NewWireClient(c *client.Client, obj uint32, log *ClientLog) *WireClient {
	return &WireClient{c: c, obj: obj, log: log}
}

// CorruptReads arms the test-only stale-read fault for the next n lookup
// keys, exactly like CoreClient.CorruptReads.
func (w *WireClient) CorruptReads(n int) { w.corruptReads = n }

// Lookup records and performs a batched point lookup.
func (w *WireClient) Lookup(ctx context.Context, keys []uint64) ([]prefixtree.KV, error) {
	t := w.log.rec.Now()
	seq0 := w.log.nextSeq + 1
	for _, k := range keys {
		w.log.invokeKeyAt(t, OpLookup, k, 0)
	}
	kvs, err := w.c.LookupCtx(ctx, w.obj, keys)
	t2 := w.log.rec.Now()
	if err != nil {
		for i := range keys {
			w.log.returnAt(t2, seq0+uint32(i), OpLookup, ReturnErr)
		}
		return kvs, err
	}
	for i, k := range keys {
		v, found := findKV(kvs, k)
		if w.corruptReads > 0 {
			w.corruptReads--
			v, found = v+1, true
		}
		w.log.returnReadAt(t2, seq0+uint32(i), found, v)
	}
	return kvs, nil
}

// Upsert records and performs a batched upsert.
func (w *WireClient) Upsert(ctx context.Context, kvs []prefixtree.KV) error {
	t := w.log.rec.Now()
	seq0 := w.log.nextSeq + 1
	for _, kv := range kvs {
		w.log.invokeKeyAt(t, OpUpsert, kv.Key, kv.Value)
	}
	err := w.c.UpsertCtx(ctx, w.obj, kvs)
	w.closeWrites(seq0, len(kvs), OpUpsert, err)
	return err
}

// Delete records and performs a batched delete.
func (w *WireClient) Delete(ctx context.Context, keys []uint64) error {
	t := w.log.rec.Now()
	seq0 := w.log.nextSeq + 1
	for _, k := range keys {
		w.log.invokeKeyAt(t, OpDelete, k, 0)
	}
	err := w.c.DeleteCtx(ctx, w.obj, keys)
	w.closeWrites(seq0, len(keys), OpDelete, err)
	return err
}

func (w *WireClient) closeWrites(seq0 uint32, n int, op Op, err error) {
	t := w.log.rec.Now()
	kind := ReturnOK
	if err != nil {
		kind = ReturnLost
	}
	for i := 0; i < n; i++ {
		w.log.returnAt(t, seq0+uint32(i), op, kind)
	}
}

// ScanRange records and performs an exact range-scan aggregate.
func (w *WireClient) ScanRange(ctx context.Context, lo, hi uint64, pred colstore.Predicate) (client.ScanAggregate, error) {
	seq := w.log.InvokeScan(OpScanRange, lo, hi, pred)
	agg, err := w.c.ScanRangeCtx(ctx, w.obj, lo, hi, pred)
	if err != nil {
		w.log.ReturnErr(seq, OpScanRange)
		return agg, err
	}
	w.log.ReturnAgg(seq, OpScanRange, agg.Matched, agg.Sum)
	return agg, nil
}

// ColScan records and performs a column-scan aggregate against a column
// object.
func (w *WireClient) ColScan(ctx context.Context, pred colstore.Predicate) (client.ScanAggregate, error) {
	seq := w.log.InvokeScan(OpColScan, 0, 0, pred)
	agg, err := w.c.ColScanCtx(ctx, w.obj, pred)
	if err != nil {
		w.log.ReturnErr(seq, OpColScan)
		return agg, err
	}
	w.log.ReturnAgg(seq, OpColScan, agg.Matched, agg.Sum)
	return agg, nil
}
