// Package numasim provides the software NUMA machine that the ERIS engine
// runs on. It substitutes for the real multiprocessor hardware of the paper
// (which is unreachable from Go: no core pinning, no NUMA allocation
// control, no PMU access) while preserving the behaviour the paper's
// evaluation depends on: where bytes move (local vs. remote memory, cache
// vs. DRAM) and what that costs.
//
// Every memory access performed by a worker is charged to its core's
// *virtual clock*: an LLC hit costs the modeled cache latency, a miss costs
// the distance-dependent DRAM latency plus the transfer time at the
// calibrated pair bandwidth (topology.PairCost, taken from the paper's
// Table 2). Streaming accesses bypass the cache and pay pure bandwidth
// cost. Bytes are additionally accounted against every interconnect link on
// the route and against the home node's memory controller; an Epoch's
// Duration is the maximum of the slowest core's clock advance and the
// roofline bounds (bytes / capacity) of every link and memory controller.
// This reproduces who is bound by what: a single-node scan is bound by one
// memory controller, an interleaved scan by the interconnect links, and a
// NUMA-aware scan only by the aggregate local bandwidth.
package numasim

import (
	"fmt"
	"math"
	"sync/atomic"

	"eris/internal/cache"
	"eris/internal/metrics"
	"eris/internal/topology"
)

// Config tunes the simulation.
type Config struct {
	// CacheScale divides the modeled LLC capacities; use the same factor
	// the data set was scaled down by. Zero disables the cache simulator
	// entirely (every random access pays the DRAM cost).
	CacheScale float64
	// LineBytes is the modeled cache line size; default 64.
	LineBytes int64
	// MLP is the number of outstanding memory requests a core can overlap
	// (memory-level parallelism); batched random accesses divide their
	// latency by min(batch, MLP). Default 10.
	MLP int
	// ForwardFactor scales the pair latency for misses serviced by a
	// remote cache instead of memory (cache-to-cache forwarding is
	// slightly faster than DRAM). Default 0.9.
	ForwardFactor float64
}

func (c Config) withDefaults() Config {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.MLP == 0 {
		c.MLP = 10
	}
	if c.ForwardFactor == 0 {
		c.ForwardFactor = 0.9
	}
	return c
}

// psPerByteFactor converts GB/s into picoseconds per byte:
// 1 GB/s = 1e9 bytes / 1e12 ps, so ps/byte = 1000 / GBs.
//
//eris:hotpath
func psPerByte(gbs float64) float64 { return 1000.0 / gbs }

const psPerNS = 1000

type coreState struct {
	clock atomic.Int64 // picoseconds
	ops   atomic.Int64 // completed operations (for throughput accounting)
	_     [48]byte     // pad to a cache line to avoid false sharing
}

// Machine is a simulated NUMA multiprocessor system.
type Machine struct {
	topo  *topology.Topology
	cfg   Config
	cache *cache.System // nil when cache modeling is disabled

	cores     []coreState
	linkBytes []atomic.Int64 // per link, both directions combined
	mcBytes   []atomic.Int64 // per node memory controller
	routeHit  []atomic.Int64 // bytes that stayed local (for reporting)

	nextAddr atomic.Uint64
}

// New builds a machine over the given topology.
func New(topo *topology.Topology, cfg Config) (*Machine, error) {
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("numasim: %w", err)
	}
	cfg = cfg.withDefaults()
	m := &Machine{
		topo:      topo,
		cfg:       cfg,
		cores:     make([]coreState, topo.NumCores()),
		linkBytes: make([]atomic.Int64, len(topo.Links)),
		mcBytes:   make([]atomic.Int64, topo.NumNodes()),
		routeHit:  make([]atomic.Int64, topo.NumNodes()),
	}
	m.nextAddr.Store(uint64(cfg.LineBytes)) // keep address 0 invalid
	if cfg.CacheScale > 0 {
		cs, err := cache.New(topo, cfg.CacheScale, cfg.LineBytes)
		if err != nil {
			return nil, fmt.Errorf("numasim: %w", err)
		}
		m.cache = cs
	}
	return m, nil
}

// Topology returns the machine's topology.
//
//eris:hotpath
func (m *Machine) Topology() *topology.Topology { return m.topo }

// RegisterMetrics publishes the machine's byte counters on reg: cumulative
// interconnect traffic per link (machine.link.<i>.bytes), memory-controller
// traffic per node (machine.mc.<n>.bytes), link-local traffic that never
// crossed the interconnect (machine.local.<n>.bytes), and their totals.
// These are the counters behind the paper's Figure 12 bandwidth bars; an
// interval delta divided by the epoch duration gives GB/s.
func (m *Machine) RegisterMetrics(reg *metrics.Registry) {
	for i := range m.linkBytes {
		i := i
		reg.CounterFunc(fmt.Sprintf("machine.link.%d.bytes", i), m.linkBytes[i].Load)
	}
	for n := range m.mcBytes {
		n := n
		reg.CounterFunc(fmt.Sprintf("machine.mc.%d.bytes", n), m.mcBytes[n].Load)
		reg.CounterFunc(fmt.Sprintf("machine.local.%d.bytes", n), m.routeHit[n].Load)
	}
	reg.CounterFunc("machine.link_bytes_total", func() int64 {
		var sum int64
		for i := range m.linkBytes {
			sum += m.linkBytes[i].Load()
		}
		return sum
	})
	reg.CounterFunc("machine.mc_bytes_total", func() int64 {
		var sum int64
		for i := range m.mcBytes {
			sum += m.mcBytes[i].Load()
		}
		return sum
	})
	reg.GaugeFunc("machine.max_clock_ps", m.MaxClock)
}

// Cache returns the LLC simulator, or nil when disabled.
func (m *Machine) Cache() *cache.System { return m.cache }

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Alloc reserves size bytes of the synthetic physical address space and
// returns the line-aligned base address. The home node of the range is
// whatever the caller's allocator decides; the machine only needs addresses
// to be unique so that the cache simulator never aliases two allocations.
func (m *Machine) Alloc(size int64) uint64 {
	if size <= 0 {
		size = 1
	}
	aligned := (uint64(size) + uint64(m.cfg.LineBytes) - 1) &^ (uint64(m.cfg.LineBytes) - 1)
	return m.nextAddr.Add(aligned) - aligned
}

// AdvanceNS charges ns nanoseconds of pure compute time to core.
//
//eris:hotpath
func (m *Machine) AdvanceNS(core topology.CoreID, ns float64) {
	if ns > 0 {
		m.cores[core].clock.Add(int64(ns * psPerNS))
	}
}

// CountOps adds n completed operations to core's throughput counter.
//
//eris:hotpath
func (m *Machine) CountOps(core topology.CoreID, n int64) {
	m.cores[core].ops.Add(n)
}

// Clock returns core's virtual time in picoseconds.
//
//eris:hotpath
func (m *Machine) Clock(core topology.CoreID) int64 { return m.cores[core].clock.Load() }

// ClockNS returns core's virtual time in nanoseconds.
//
//eris:hotpath
func (m *Machine) ClockNS(core topology.CoreID) float64 {
	return float64(m.Clock(core)) / psPerNS
}

// MinClock returns the minimum virtual time over all cores in [first,last).
// The engine uses it as a soft barrier to bound virtual-time skew between
// workers.
//
//eris:hotpath
func (m *Machine) MinClock(first, last topology.CoreID) int64 {
	min := int64(math.MaxInt64)
	for c := first; c < last; c++ {
		if v := m.cores[c].clock.Load(); v < min {
			min = v
		}
	}
	return min
}

// MaxClock returns the maximum virtual time over all cores.
func (m *Machine) MaxClock() int64 {
	var max int64
	for i := range m.cores {
		if v := m.cores[i].clock.Load(); v > max {
			max = v
		}
	}
	return max
}

// SyncClockTo lifts core's clock to at least ps (used when a worker waits
// for an event that happens at a later virtual time).
func (m *Machine) SyncClockTo(core topology.CoreID, ps int64) {
	c := &m.cores[core].clock
	for {
		cur := c.Load()
		if cur >= ps || c.CompareAndSwap(cur, ps) {
			return
		}
	}
}

// chargeRoute accounts bytes on every link between src and home and on the
// home node's memory controller (when mc is true).
//
//eris:hotpath
func (m *Machine) chargeRoute(src, home topology.NodeID, bytes int64, mc bool) {
	if src == home {
		m.routeHit[src].Add(bytes)
	} else {
		for _, l := range m.topo.Route(src, home) {
			m.linkBytes[l].Add(bytes)
		}
	}
	if mc {
		m.mcBytes[home].Add(bytes)
	}
}

// Read charges core with one latency-sensitive read of `bytes` bytes at
// synthetic address addr whose data lives on home. overlap is the number of
// independent accesses the caller has batched together (1 for a dependent
// pointer chase); latency is divided by min(overlap, MLP).
//
//eris:hotpath
func (m *Machine) Read(core topology.CoreID, home topology.NodeID, addr uint64, bytes int64, overlap int) {
	m.access(core, home, addr, bytes, overlap, false)
}

// Write charges core with one latency-sensitive write (read-for-ownership
// plus store) of `bytes` at addr homed on home.
//
//eris:hotpath
func (m *Machine) Write(core topology.CoreID, home topology.NodeID, addr uint64, bytes int64, overlap int) {
	m.access(core, home, addr, bytes, overlap, true)
}

//eris:hotpath
func (m *Machine) access(core topology.CoreID, home topology.NodeID, addr uint64, bytes int64, overlap int, write bool) {
	src := m.topo.NodeOfCore(core)
	if overlap < 1 {
		overlap = 1
	}
	if overlap > m.cfg.MLP {
		overlap = m.cfg.MLP
	}
	var ps float64
	if m.cache != nil {
		ps = m.cachedAccessPS(src, home, addr, bytes, write)
	} else {
		cost := m.topo.Cost(src, home)
		ps = cost.LatencyNS*psPerNS + float64(bytes)*psPerByte(cost.BandwidthGBs)
		m.chargeRoute(src, home, bytes, true)
	}
	// Only the latency component overlaps; we approximate by dividing the
	// whole per-access cost, which is dominated by latency for the small
	// transfers random accesses make.
	m.cores[core].clock.Add(int64(ps / float64(overlap)))
}

// cachedAccessPS runs the access through the LLC simulator line by line and
// returns the virtual cost in picoseconds.
//
//eris:hotpath
func (m *Machine) cachedAccessPS(src, home topology.NodeID, addr uint64, bytes int64, write bool) float64 {
	var ps float64
	lb := m.cfg.LineBytes
	end := addr + uint64(bytes)
	for lineAddr := addr &^ uint64(lb-1); lineAddr < end; lineAddr += uint64(lb) {
		r := m.cache.Access(src, home, lineAddr, write)
		switch {
		case r.Hit:
			ps += m.topo.CacheHitNS * psPerNS
		case r.FromCache:
			// Forwarded from another node's cache.
			var lat float64
			if r.Source == src {
				lat = m.topo.CacheHitNS
			} else {
				lat = m.topo.Cost(src, r.Source).LatencyNS * m.cfg.ForwardFactor
				m.chargeRoute(src, r.Source, lb, false)
			}
			ps += lat * psPerNS
		default:
			cost := m.topo.Cost(src, home)
			ps += cost.LatencyNS*psPerNS + float64(lb)*psPerByte(cost.BandwidthGBs)
			m.chargeRoute(src, home, lb, true)
		}
		if r.WritebackBytes > 0 {
			// Dirty evictions drain asynchronously; charge the traffic but
			// no latency.
			m.chargeRoute(src, r.WritebackHome, r.WritebackBytes, true)
		}
	}
	return ps
}

// Stream charges core with a sequential, cache-bypassing transfer of
// `bytes` from home (a scan or a bulk partition copy). The cost is pure
// bandwidth at the calibrated pair rate; link and memory-controller bytes
// are accounted for the roofline.
//
//eris:hotpath
func (m *Machine) Stream(core topology.CoreID, home topology.NodeID, bytes int64) {
	src := m.topo.NodeOfCore(core)
	cost := m.topo.Cost(src, home)
	m.cores[core].clock.Add(int64(float64(bytes) * psPerByte(cost.BandwidthGBs)))
	m.chargeRoute(src, home, bytes, true)
}

// StreamBetween charges a bulk copy read from srcHome and written to
// dstHome, driven by core (a cross-node partition transfer). Bytes traverse
// the route twice conceptually (read + write) but we account each leg once.
//
//eris:hotpath
func (m *Machine) StreamBetween(core topology.CoreID, srcHome, dstHome topology.NodeID, bytes int64) {
	src := m.topo.NodeOfCore(core)
	read := m.topo.Cost(src, srcHome)
	write := m.topo.Cost(src, dstHome)
	// Reads and writes of a copy loop overlap; the slower leg dominates.
	slower := math.Max(psPerByte(read.BandwidthGBs), psPerByte(write.BandwidthGBs))
	m.cores[core].clock.Add(int64(float64(bytes) * slower))
	m.chargeRoute(src, srcHome, bytes, true)
	m.chargeRoute(src, dstHome, bytes, true)
}

// RemoteLatencyNS exposes the calibrated pair latency for callers that need
// to model protocol round trips (e.g. the routing layer's flush handshake).
//
//eris:hotpath
func (m *Machine) RemoteLatencyNS(core topology.CoreID, home topology.NodeID) float64 {
	return m.topo.Cost(m.topo.NodeOfCore(core), home).LatencyNS
}
