package numasim

import (
	"math"
	"sync"
	"testing"

	"eris/internal/topology"
)

func newMachine(t *testing.T, topo *topology.Topology, cfg Config) *Machine {
	t.Helper()
	m, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadCostWithoutCache(t *testing.T) {
	topo := topology.Intel() // local 26.7 GB/s / 129 ns; remote 10.7 / 193
	m := newMachine(t, topo, Config{})
	// Local read of 64 bytes, no overlap: 129 ns + 64 B / 26.7 GB/s.
	m.Read(0, 0, m.Alloc(64), 64, 1)
	wantNS := 129 + 64*1000.0/26.7/1000
	if got := m.ClockNS(0); math.Abs(got-wantNS) > 0.01 {
		t.Errorf("local read cost = %.3f ns, want %.3f", got, wantNS)
	}
	// Remote read from core 0 (node 0) to node 2.
	m.Read(1, 2, m.Alloc(64), 64, 1)
	wantNS = 193 + 64*1000.0/10.7/1000
	if got := m.ClockNS(1); math.Abs(got-wantNS) > 0.01 {
		t.Errorf("remote read cost = %.3f ns, want %.3f", got, wantNS)
	}
}

func TestOverlapDividesLatency(t *testing.T) {
	m := newMachine(t, topology.Intel(), Config{MLP: 8})
	a := m.Alloc(64)
	m.Read(0, 2, a, 64, 1)
	single := m.Clock(0)
	m.Read(1, 2, a, 64, 8)
	batched := m.Clock(1)
	if batched*7 > single {
		t.Errorf("batched cost %d should be ~1/8 of single %d", batched, single)
	}
	// Overlap is clamped to MLP.
	m.Read(2, 2, a, 64, 1000)
	if got := m.Clock(2); got != batched {
		t.Errorf("overlap beyond MLP: cost %d, want clamp to %d", got, batched)
	}
}

func TestStreamAccounting(t *testing.T) {
	topo := topology.Intel()
	m := newMachine(t, topo, Config{})
	e := m.StartEpoch()
	const bytes = 1 << 20
	m.Stream(0, 3, bytes) // core 0 on node 0 streams from node 3
	if got := e.MCBytes(3); got != bytes {
		t.Errorf("MC bytes at home = %d, want %d", got, bytes)
	}
	if got := e.TotalLinkBytes(); got != bytes {
		t.Errorf("link bytes = %d, want %d (single hop)", got, bytes)
	}
	// Local stream produces no link traffic.
	m.Stream(0, 0, bytes)
	if got := e.TotalLinkBytes(); got != bytes {
		t.Errorf("after local stream link bytes = %d, want unchanged %d", got, bytes)
	}
	if got := e.LocalBytes(0); got != bytes {
		t.Errorf("local bytes = %d, want %d", got, bytes)
	}
}

func TestDurationRoofline(t *testing.T) {
	topo := topology.Intel()
	m := newMachine(t, topo, Config{})
	e := m.StartEpoch()
	// All 10 cores of node 0 stream 100 MB each from local memory. Each
	// core's clock advances only 100MB/26.7GB/s, but the memory controller
	// must serve 1 GB, so the roofline must dominate.
	const per = 100 << 20
	first, last := topo.CoresOfNode(0)
	for c := first; c < last; c++ {
		m.Stream(c, 0, per)
	}
	total := float64(per) * float64(last-first)
	wantDur := total / (26.7 * 1e9)
	if got := e.Duration(); math.Abs(got-wantDur)/wantDur > 0.01 {
		t.Errorf("duration = %v, want MC roofline %v", got, wantDur)
	}
	if b := e.BoundBy(); b != "memory controller of node 0" {
		t.Errorf("BoundBy = %q", b)
	}
}

func TestLinkRoofline(t *testing.T) {
	topo := topology.Intel()
	m := newMachine(t, topo, Config{})
	e := m.StartEpoch()
	// One core hammers a remote node: pair bandwidth 10.7 GB/s is below the
	// 12.8 GB/s link capacity, so the core clock should dominate.
	m.Stream(0, 1, 1<<30)
	coreBound := float64(1<<30) * (1000.0 / 10.7) / 1e12
	if got := e.Duration(); math.Abs(got-coreBound)/coreBound > 0.01 {
		t.Errorf("duration = %v, want core bound %v", got, coreBound)
	}
	// Many cores from different nodes hammer node 1 through their (distinct)
	// links: now node 1's MC saturates.
	for c := topology.CoreID(10); c < 40; c++ {
		m.Stream(c, 1, 1<<30)
	}
	if b := e.BoundBy(); b != "memory controller of node 1" {
		t.Errorf("BoundBy = %q, want MC of node 1", b)
	}
}

func TestEpochDeltas(t *testing.T) {
	m := newMachine(t, topology.SingleNode(2), Config{})
	m.Stream(0, 0, 1000)
	m.CountOps(0, 5)
	e := m.StartEpoch()
	if e.Ops() != 0 || e.TotalMCBytes() != 0 {
		t.Fatalf("fresh epoch sees prior traffic: ops=%d mc=%d", e.Ops(), e.TotalMCBytes())
	}
	m.Stream(1, 0, 500)
	m.CountOps(1, 3)
	if e.Ops() != 3 || e.TotalMCBytes() != 500 {
		t.Fatalf("epoch deltas wrong: ops=%d mc=%d", e.Ops(), e.TotalMCBytes())
	}
	if e.Throughput() <= 0 {
		t.Fatal("throughput should be positive")
	}
}

func TestAllocAlignedAndUnique(t *testing.T) {
	m := newMachine(t, topology.SingleNode(1), Config{})
	seen := map[uint64]bool{}
	prevEnd := uint64(0)
	for i := 0; i < 100; i++ {
		a := m.Alloc(100)
		if a%64 != 0 {
			t.Fatalf("alloc %#x not line aligned", a)
		}
		if seen[a] || a < prevEnd {
			t.Fatalf("alloc %#x overlaps previous ranges", a)
		}
		seen[a] = true
		prevEnd = a + 128
	}
	if a := m.Alloc(0); a == 0 {
		t.Fatal("zero-size alloc returned address 0")
	}
}

func TestCachedAccessCheaperOnHit(t *testing.T) {
	m := newMachine(t, topology.Intel(), Config{CacheScale: 1})
	a := m.Alloc(64)
	m.Read(0, 2, a, 64, 1)
	miss := m.Clock(0)
	m.Read(0, 2, a, 64, 1)
	hit := m.Clock(0) - miss
	if hit >= miss {
		t.Errorf("hit cost %d should be far below miss cost %d", hit, miss)
	}
	wantHitNS := m.Topology().CacheHitNS
	if got := float64(hit) / 1000; math.Abs(got-wantHitNS) > 0.01 {
		t.Errorf("hit cost = %.2f ns, want %.2f", got, wantHitNS)
	}
}

func TestCachedMultiLineAccessSplits(t *testing.T) {
	m := newMachine(t, topology.Intel(), Config{CacheScale: 1})
	e := m.StartEpoch()
	a := m.Alloc(256)
	m.Read(0, 1, a, 256, 1) // four lines
	if got := e.MCBytes(1); got != 256 {
		t.Errorf("MC bytes = %d, want 256 (4 whole lines)", got)
	}
}

func TestForwardedMissChargesHolderRoute(t *testing.T) {
	m := newMachine(t, topology.Intel(), Config{CacheScale: 1})
	a := m.Alloc(64)
	m.Read(0, 1, a, 64, 1) // node 0 caches a line homed on node 1
	e := m.StartEpoch()
	m.Read(10, 1, a, 64, 1) // core 10 = node 1; forwarded from node 0's cache
	if got := e.TotalLinkBytes(); got != 64 {
		t.Errorf("forward link bytes = %d, want 64", got)
	}
	if got := e.TotalMCBytes(); got != 0 {
		t.Errorf("forwarded miss touched memory: %d bytes", got)
	}
}

func TestSyncAndMinClock(t *testing.T) {
	m := newMachine(t, topology.SingleNode(4), Config{})
	m.AdvanceNS(0, 100)
	m.AdvanceNS(1, 50)
	if got := m.MinClock(0, 4); got != 0 {
		t.Errorf("MinClock = %d, want 0 (cores 2,3 idle)", got)
	}
	m.SyncClockTo(2, 500_000)
	m.SyncClockTo(3, 400_000)
	if got := m.MinClock(0, 4); got != 50_000 {
		t.Errorf("MinClock = %d, want 50000", got)
	}
	m.SyncClockTo(2, 1) // must not move the clock backwards
	if got := m.Clock(2); got != 500_000 {
		t.Errorf("SyncClockTo moved clock backwards: %d", got)
	}
}

func TestStreamBetween(t *testing.T) {
	topo := topology.Intel()
	m := newMachine(t, topo, Config{})
	e := m.StartEpoch()
	m.StreamBetween(0, 1, 0, 1<<20) // core on node 0 copies node1 -> node0
	if got := e.MCBytes(1); got != 1<<20 {
		t.Errorf("source MC bytes = %d", got)
	}
	if got := e.MCBytes(0); got != 1<<20 {
		t.Errorf("destination MC bytes = %d", got)
	}
	if got := e.TotalLinkBytes(); got != 1<<20 {
		t.Errorf("link bytes = %d, want one remote leg only", got)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	m := newMachine(t, topology.AMD(), Config{})
	e := m.StartEpoch()
	var wg sync.WaitGroup
	const per = 1000
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(core topology.CoreID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Stream(core, topology.NodeID(i%8), 64)
				m.CountOps(core, 1)
			}
		}(topology.CoreID(c))
	}
	wg.Wait()
	if got := e.Ops(); got != 16*per {
		t.Errorf("ops = %d, want %d", got, 16*per)
	}
	// Conservation: every streamed byte hits exactly one memory controller.
	if got := e.TotalMCBytes(); got != 16*per*64 {
		t.Errorf("MC bytes = %d, want %d", got, 16*per*64)
	}
}

func TestBusiestLinks(t *testing.T) {
	topo := topology.Intel()
	m := newMachine(t, topo, Config{})
	e := m.StartEpoch()
	m.Stream(0, 1, 1000)
	m.Stream(0, 2, 500)
	top := e.BusiestLinks(2)
	if len(top) != 2 || top[0].Bytes != 1000 || top[1].Bytes != 500 {
		t.Errorf("BusiestLinks = %+v", top)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(topology.SingleNode(1), Config{CacheScale: 1, LineBytes: 100}); err == nil {
		t.Error("bad line size accepted when cache enabled")
	}
}
