package numasim

import (
	"fmt"
	"sort"

	"eris/internal/topology"
)

// Epoch is a measurement window. It snapshots every virtual clock and byte
// counter at StartEpoch; its methods report the deltas accumulated since,
// with the roofline correction applied to the duration.
type Epoch struct {
	m          *Machine
	clocks0    []int64
	ops0       []int64
	link0      []int64
	mc0        []int64
	local0     []int64
	cacheStats bool
}

// StartEpoch opens a measurement window.
func (m *Machine) StartEpoch() *Epoch {
	e := &Epoch{
		m:       m,
		clocks0: make([]int64, len(m.cores)),
		ops0:    make([]int64, len(m.cores)),
		link0:   make([]int64, len(m.linkBytes)),
		mc0:     make([]int64, len(m.mcBytes)),
		local0:  make([]int64, len(m.routeHit)),
	}
	for i := range m.cores {
		e.clocks0[i] = m.cores[i].clock.Load()
		e.ops0[i] = m.cores[i].ops.Load()
	}
	for i := range m.linkBytes {
		e.link0[i] = m.linkBytes[i].Load()
	}
	for i := range m.mcBytes {
		e.mc0[i] = m.mcBytes[i].Load()
		e.local0[i] = m.routeHit[i].Load()
	}
	return e
}

// CoreSeconds returns the largest virtual clock advance of any core, in
// seconds (the latency-side duration bound).
func (e *Epoch) CoreSeconds() float64 {
	var max int64
	for i := range e.m.cores {
		if d := e.m.cores[i].clock.Load() - e.clocks0[i]; d > max {
			max = d
		}
	}
	return float64(max) / 1e12
}

// LinkBytes returns the byte delta of link l.
func (e *Epoch) LinkBytes(l topology.LinkID) int64 {
	return e.m.linkBytes[l].Load() - e.link0[l]
}

// TotalLinkBytes sums traffic over all interconnect links.
func (e *Epoch) TotalLinkBytes() int64 {
	var sum int64
	for i := range e.m.linkBytes {
		sum += e.m.linkBytes[i].Load() - e.link0[i]
	}
	return sum
}

// MCBytes returns the memory-controller byte delta of node n.
func (e *Epoch) MCBytes(n topology.NodeID) int64 {
	return e.m.mcBytes[n].Load() - e.mc0[n]
}

// TotalMCBytes sums traffic over all memory controllers.
func (e *Epoch) TotalMCBytes() int64 {
	var sum int64
	for i := range e.m.mcBytes {
		sum += e.m.mcBytes[i].Load() - e.mc0[i]
	}
	return sum
}

// LocalBytes returns bytes that were served without crossing a link.
func (e *Epoch) LocalBytes(n topology.NodeID) int64 {
	return e.m.routeHit[n].Load() - e.local0[n]
}

// Duration returns the modeled wall-clock length of the epoch in seconds:
// the maximum of the slowest core's clock advance and every resource's
// roofline bound (bytes moved / capacity).
func (e *Epoch) Duration() float64 {
	dur := e.CoreSeconds()
	topo := e.m.topo
	for i := range e.m.linkBytes {
		if t := float64(e.LinkBytes(topo.Links[i].ID)) / (topo.Links[i].Capacity * 1e9); t > dur {
			dur = t
		}
	}
	for i := range e.m.mcBytes {
		if t := float64(e.MCBytes(topology.NodeID(i))) / (topo.Nodes[i].LocalBandwidth * 1e9); t > dur {
			dur = t
		}
	}
	return dur
}

// Ops returns the number of completed operations counted via CountOps.
func (e *Epoch) Ops() int64 {
	var sum int64
	for i := range e.m.cores {
		sum += e.m.cores[i].ops.Load() - e.ops0[i]
	}
	return sum
}

// Throughput returns operations per modeled second.
func (e *Epoch) Throughput() float64 {
	d := e.Duration()
	if d == 0 {
		return 0
	}
	return float64(e.Ops()) / d
}

// MCBandwidthGBs returns the aggregate memory-controller transfer rate over
// the epoch in GB/s (the paper's Figure 12 "memory controller" bars).
func (e *Epoch) MCBandwidthGBs() float64 {
	d := e.Duration()
	if d == 0 {
		return 0
	}
	return float64(e.TotalMCBytes()) / d / 1e9
}

// LinkBandwidthGBs returns the aggregate interconnect transfer rate over the
// epoch in GB/s (the paper's Figure 12 "link" bars).
func (e *Epoch) LinkBandwidthGBs() float64 {
	d := e.Duration()
	if d == 0 {
		return 0
	}
	return float64(e.TotalLinkBytes()) / d / 1e9
}

// BoundBy reports which resource bounds the epoch's duration: "core" when
// the latency-side clock dominates, otherwise the name of the saturated
// link or memory controller.
func (e *Epoch) BoundBy() string {
	best, what := e.CoreSeconds(), "core"
	topo := e.m.topo
	for i := range e.m.linkBytes {
		if t := float64(e.LinkBytes(topo.Links[i].ID)) / (topo.Links[i].Capacity * 1e9); t > best {
			best = t
			what = fmt.Sprintf("link %d (%s %d-%d)", i, topo.Links[i].Class, topo.Links[i].A, topo.Links[i].B)
		}
	}
	for i := range e.m.mcBytes {
		if t := float64(e.MCBytes(topology.NodeID(i))) / (topo.Nodes[i].LocalBandwidth * 1e9); t > best {
			best = t
			what = fmt.Sprintf("memory controller of node %d", i)
		}
	}
	return what
}

// BusiestLinks returns the n links with the most epoch traffic, for
// diagnostics and the eristop display.
func (e *Epoch) BusiestLinks(n int) []LinkUsage {
	topo := e.m.topo
	out := make([]LinkUsage, 0, len(topo.Links))
	for i := range topo.Links {
		out = append(out, LinkUsage{Link: topo.Links[i], Bytes: e.LinkBytes(topology.LinkID(i))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// LinkUsage pairs a link with its traffic during an epoch.
type LinkUsage struct {
	Link  topology.Link
	Bytes int64
}
