package shared

import (
	"fmt"
	"sync"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// scanChunk is one placed chunk of the shared scan table.
type scanChunk struct {
	data  []uint64
	block mem.Block
}

// ScanTable is the shared full-scan baseline of Figure 9: one big column
// whose chunks are placed by policy, scanned in parallel by worker threads
// that stripe over the chunks (a conventional parallel table scan with no
// notion of memory locality).
type ScanTable struct {
	machine *numasim.Machine
	chunks  []scanChunk
	entries int64
}

// scanComputeNSPerByte mirrors colstore's per-byte CPU cost so the shared
// and ERIS scans differ only in memory placement.
const scanComputeNSPerByte = 0.0125

// NewScanTable builds a table of totalEntries 64-bit values in chunks of
// chunkEntries, placed per policy (node used for SingleNode).
func NewScanTable(machine *numasim.Machine, mems *mem.System, placement Placement, node topology.NodeID, totalEntries, chunkEntries int64) (*ScanTable, error) {
	if chunkEntries <= 0 || totalEntries <= 0 {
		return nil, fmt.Errorf("shared: non-positive scan table size")
	}
	st := &ScanTable{machine: machine, entries: totalEntries}
	nodes := machine.Topology().NumNodes()
	numChunks := int((totalEntries + chunkEntries - 1) / chunkEntries)
	left := totalEntries
	for i := 0; i < numChunks; i++ {
		n := chunkEntries
		if left < n {
			n = left
		}
		left -= n
		var mgr *mem.Manager
		switch placement {
		case Interleaved:
			mgr = mems.Node(topology.NodeID(i % nodes))
		case SingleNode:
			mgr = mems.Node(node)
		default:
			return nil, fmt.Errorf("shared: unknown placement %d", placement)
		}
		ck := scanChunk{data: make([]uint64, n), block: mgr.Alloc(n * 8)}
		for j := range ck.data {
			x := uint64(i)<<32 ^ uint64(j)
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			ck.data[j] = x
		}
		st.chunks = append(st.chunks, ck)
	}
	return st, nil
}

// Bytes returns the table's total size.
func (st *ScanTable) Bytes() int64 { return st.entries * 8 }

// RunScans scans the table repeatedly with `workers` threads for
// durationSec of virtual time per worker. Worker w handles chunks w, w+W,
// ... of every pass. It returns the total bytes scanned; aggregate
// bandwidth comes from an epoch spanning the call.
func (st *ScanTable) RunScans(workers int, durationSec float64) int64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalBytes int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			core := topology.CoreID(w)
			start := st.machine.ClockNS(core)
			var bytes int64
			var sink uint64
			for (st.machine.ClockNS(core)-start)/1e9 < durationSec {
				passBytes := int64(0)
				for i := w; i < len(st.chunks); i += workers {
					ck := &st.chunks[i]
					n := int64(len(ck.data)) * 8
					st.machine.Stream(core, ck.block.Home, n)
					st.machine.AdvanceNS(core, float64(n)*scanComputeNSPerByte)
					for _, v := range ck.data {
						sink += v
					}
					passBytes += n
				}
				if passBytes == 0 {
					// More workers than chunks: this thread has no stripe;
					// spin its clock forward so the loop terminates.
					st.machine.AdvanceNS(core, 1000)
					continue
				}
				bytes += passBytes
				st.machine.CountOps(core, 1)
			}
			_ = sink
			mu.Lock()
			totalBytes += bytes
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return totalBytes
}
