package shared

import (
	"testing"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/topology"
	"eris/internal/workload"
)

func newMachine(t testing.TB, cacheScale float64) (*numasim.Machine, *mem.System) {
	t.Helper()
	m, err := numasim.New(topology.Intel(), numasim.Config{CacheScale: cacheScale})
	if err != nil {
		t.Fatal(err)
	}
	return m, mem.NewSystem(m)
}

func TestSharedIndexLoadAndLookup(t *testing.T) {
	m, mems := newMachine(t, 0)
	ix, err := NewIndex(m, mems, prefixtree.Config{KeyBits: 24, PrefixBits: 8, SlabNodes: 8}, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	ix.LoadDense(8, n, func(k uint64) uint64 { return k + 1 })
	if got := ix.Tree().Count(); got != n {
		t.Fatalf("count = %d", got)
	}
	if err := ix.Tree().CheckCounts(); err != nil {
		t.Fatal(err)
	}
	v, ok := ix.Tree().Lookup(0, 1234, 1)
	if !ok || v != 1235 {
		t.Fatalf("lookup = (%d,%v)", v, ok)
	}
	// Interleaving must actually touch all four nodes.
	for nd := 0; nd < 4; nd++ {
		if mems.Node(topology.NodeID(nd)).AllocatedBytes() == 0 {
			t.Errorf("node %d got no memory", nd)
		}
	}
}

func TestSharedLookupsProduceRemoteTraffic(t *testing.T) {
	m, mems := newMachine(t, 0)
	ix, err := NewIndex(m, mems, prefixtree.Config{KeyBits: 24, PrefixBits: 8}, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix.LoadDense(4, 1<<14, nil)
	e := m.StartEpoch()
	ops := ix.RunLookups(8, workload.Uniform{Domain: 1 << 14}, 16, 50e-6)
	if ops == 0 {
		t.Fatal("no lookups ran")
	}
	if e.TotalLinkBytes() == 0 {
		t.Error("interleaved shared index produced no interconnect traffic")
	}
	if e.Throughput() <= 0 {
		t.Error("no throughput")
	}
}

func TestSharedUpserts(t *testing.T) {
	m, mems := newMachine(t, 0)
	ix, err := NewIndex(m, mems, prefixtree.Config{KeyBits: 24, PrefixBits: 8}, Interleaved, 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := ix.RunUpserts(8, workload.Uniform{Domain: 1 << 16}, 16, 50e-6)
	if ops == 0 {
		t.Fatal("no upserts ran")
	}
	if ix.Tree().Count() == 0 {
		t.Fatal("tree empty after upserts")
	}
	if err := ix.Tree().CheckCounts(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodePlacement(t *testing.T) {
	m, mems := newMachine(t, 0)
	ix, err := NewIndex(m, mems, prefixtree.Config{KeyBits: 24, PrefixBits: 8}, SingleNode, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix.LoadDense(4, 4096, nil)
	for nd := 0; nd < 4; nd++ {
		alloc := mems.Node(topology.NodeID(nd)).AllocatedBytes()
		if nd == 2 && alloc == 0 {
			t.Error("target node got no memory")
		}
		if nd != 2 && alloc != 0 {
			t.Errorf("node %d got %d bytes despite SingleNode placement", nd, alloc)
		}
	}
}

func TestScanTableSingleVsInterleavedBound(t *testing.T) {
	m, mems := newMachine(t, 0)
	single, err := NewScanTable(m, mems, SingleNode, 0, 1<<16, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	e := m.StartEpoch()
	bytes := single.RunScans(40, 100e-6)
	if bytes == 0 {
		t.Fatal("no bytes scanned")
	}
	// All data on node 0: the run must be bound by node 0's controller.
	if b := e.BoundBy(); b != "memory controller of node 0" {
		t.Errorf("single-RAM scan bound by %q", b)
	}

	m2, mems2 := newMachine(t, 0)
	inter, err := NewScanTable(m2, mems2, Interleaved, 0, 1<<16, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	e2 := m2.StartEpoch()
	inter.RunScans(40, 100e-6)
	single1 := float64(e.TotalMCBytes()) / e.Duration()
	inter1 := float64(e2.TotalMCBytes()) / e2.Duration()
	if inter1 <= single1 {
		t.Errorf("interleaved bandwidth %.1f not above single-RAM %.1f", inter1/1e9, single1/1e9)
	}
}

func TestScanTableRejectsBadSizes(t *testing.T) {
	m, mems := newMachine(t, 0)
	if _, err := NewScanTable(m, mems, Interleaved, 0, 0, 16); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewScanTable(m, mems, Placement(9), 0, 16, 16); err == nil {
		t.Error("bad placement accepted")
	}
	if _, err := NewIndex(m, mems, prefixtree.Config{}, Placement(9), 0); err == nil {
		t.Error("bad index placement accepted")
	}
}
