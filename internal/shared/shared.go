// Package shared implements the NUMA-agnostic baselines the paper compares
// ERIS against (Section 4): a *shared index* — the same prefix tree as the
// AEU partitions, but unpartitioned, updated with atomic instructions by
// any number of worker threads, and with its memory interleaved across all
// multiprocessors (the `numactl --interleave=all` setup that the paper
// found fastest for the shared case) — and a *shared scan* over a column
// whose chunks are placed on a single node or interleaved (Figure 9's
// "Single RAM" and "Interleaved" allocation strategies).
//
// Workers are plain transaction threads: one per core, each accessing the
// entire data object, which is exactly the access pattern that scatters
// cache lines into Shared/Forward states and pushes most memory requests
// across the interconnect.
package shared

import (
	"fmt"
	"math/rand"
	"sync"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/topology"
	"eris/internal/workload"
)

// Placement selects where a shared object's memory lives.
type Placement int

// Placement policies.
const (
	// Interleaved spreads allocations round-robin over all nodes.
	Interleaved Placement = iota
	// SingleNode puts everything on one node (Figure 9's "Single RAM").
	SingleNode
)

// Index is the shared (unpartitioned) prefix-tree index baseline.
type Index struct {
	machine *numasim.Machine
	mems    *mem.System
	store   *prefixtree.Store
	tree    *prefixtree.Tree
}

// NewIndex builds a shared index with the given placement (node is the
// target for SingleNode and ignored otherwise).
func NewIndex(machine *numasim.Machine, mems *mem.System, cfg prefixtree.Config, placement Placement, node topology.NodeID) (*Index, error) {
	var (
		store *prefixtree.Store
		err   error
	)
	switch placement {
	case Interleaved:
		store, err = prefixtree.NewInterleavedStore(machine, mems, cfg)
	case SingleNode:
		store, err = prefixtree.NewSingleNodeStore(machine, mems, node, cfg)
	default:
		return nil, fmt.Errorf("shared: unknown placement %d", placement)
	}
	if err != nil {
		return nil, err
	}
	return &Index{
		machine: machine,
		mems:    mems,
		store:   store,
		tree:    prefixtree.NewTree(store.NewLockedSession()),
	}, nil
}

// Tree exposes the underlying tree (tests).
func (ix *Index) Tree() *prefixtree.Tree { return ix.tree }

// LoadDense inserts the dense key domain [0, n) using all worker cores in
// parallel (each worker loads a contiguous stripe; inserts synchronize via
// CAS as any concurrent insert would).
func (ix *Index) LoadDense(workers int, n uint64, valueOf func(uint64) uint64) {
	if valueOf == nil {
		valueOf = func(k uint64) uint64 { return k }
	}
	var wg sync.WaitGroup
	stripe := n / uint64(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			core := topology.CoreID(w)
			lo := uint64(w) * stripe
			hi := lo + stripe
			if w == workers-1 {
				hi = n
			}
			const batch = 256
			kvs := make([]prefixtree.KV, 0, batch)
			for k := lo; k < hi; {
				kvs = kvs[:0]
				for ; k < hi && len(kvs) < batch; k++ {
					kvs = append(kvs, prefixtree.KV{Key: k, Value: valueOf(k)})
				}
				ix.tree.UpsertBatch(core, kvs)
			}
		}(w)
	}
	wg.Wait()
}

// RunLookups spawns `workers` transaction threads (cores 0..workers-1) that
// look up random keys in batches until each worker's virtual clock advances
// durationSec. It returns total completed lookups; throughput comes from a
// machine epoch spanning the call.
func (ix *Index) RunLookups(workers int, gen workload.KeyGen, batch int, durationSec float64) int64 {
	return ix.runWorkers(workers, durationSec, func(core topology.CoreID, rng *rand.Rand, elapsed float64) int64 {
		keys := make([]uint64, batch)
		values := make([]uint64, batch)
		found := make([]bool, batch)
		workload.FillBatch(gen, rng, elapsed, keys)
		ix.tree.LookupBatch(core, keys, values, found)
		return int64(batch)
	})
}

// RunUpserts is the shared-index write benchmark: random-key upserts in
// batches for a virtual duration.
func (ix *Index) RunUpserts(workers int, gen workload.KeyGen, batch int, durationSec float64) int64 {
	return ix.runWorkers(workers, durationSec, func(core topology.CoreID, rng *rand.Rand, elapsed float64) int64 {
		kvs := make([]prefixtree.KV, batch)
		for i := range kvs {
			k := gen.Key(rng, elapsed)
			kvs[i] = prefixtree.KV{Key: k, Value: k}
		}
		ix.tree.UpsertBatch(core, kvs)
		return int64(batch)
	})
}

// runWorkers drives one body function per worker core until each worker's
// virtual clock advances by durationSec; it returns the total ops counted.
func (ix *Index) runWorkers(workers int, durationSec float64, body func(topology.CoreID, *rand.Rand, float64) int64) int64 {
	var wg sync.WaitGroup
	var total int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			core := topology.CoreID(w)
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 7))
			start := ix.machine.ClockNS(core)
			var ops int64
			for {
				elapsed := (ix.machine.ClockNS(core) - start) / 1e9
				if elapsed >= durationSec {
					break
				}
				n := body(core, rng, elapsed)
				ix.machine.CountOps(core, n)
				ops += n
			}
			mu.Lock()
			total += ops
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total
}
