// Package histcheck checks recorded operation histories (internal/history)
// for linearizability against the sequential map model, per-key
// compositionally (Wing–Gong style DFS with memoization), plus a windowed
// consistency check for range-scan aggregates and an equality check for
// column-scan aggregates over a static column.
//
// Soundness over completeness: every reported violation is real (no
// sequential witness exists / no possible state set explains the
// aggregate), but concurrency windows are over-approximated, so some
// subtle anomalies may pass. That is the right polarity for a test
// oracle: zero false alarms, teeth proven by the self-tests and the
// deliberate stale-read fault.
package histcheck

import (
	"fmt"
	"math"
	"sort"

	"eris/internal/colstore"
	"eris/internal/history"
	"eris/internal/prefixtree"
)

// Agg is an aggregate expectation for a column predicate.
type Agg struct {
	Matched uint64
	Sum     uint64
}

// Options configures a check.
type Options struct {
	// Initial is the state of the checked index before the recorded
	// history started, sorted by key. Keys absent from it start absent —
	// unless DefaultUnknown is set.
	Initial []prefixtree.KV
	// DefaultUnknown makes keys without an Initial entry start in an
	// unknown state: the first linearized read pins it. Use when the
	// pre-existing contents cannot be enumerated (remote erisload runs).
	// Range-scan aggregate checking is skipped in this mode — the bounds
	// would be vacuous without a known base state.
	DefaultUnknown bool
	// ColumnStatic asserts the recorded history contains no column
	// mutations: every column scan with the same predicate must observe
	// the identical aggregate, no matter how blocks migrate meanwhile.
	ColumnStatic bool
	// ColumnBaseline, with ColumnStatic, additionally pins the expected
	// aggregate per predicate.
	ColumnBaseline map[colstore.Predicate]Agg
}

// Violation is one confirmed linearizability failure with a minimized
// still-failing event fragment for replay.
type Violation struct {
	Kind   string // "key", "scan" or "colscan"
	Key    uint64 // offending key for Kind "key"
	Reason string
	Events []history.Event
}

// Result is the outcome of a check.
type Result struct {
	Violations []Violation
	// Ops counts checked point operations; Scans / ColScans checked
	// aggregates. Dropped repeats the recorder's overflow count: lost
	// coverage, not lost soundness.
	Ops      int
	Scans    int
	ColScans int
	Dropped  int64
}

// op is one paired operation.
type op struct {
	client uint16
	seq    uint32
	kind   history.Op
	inv    int64
	ret    int64 // math.MaxInt64 when the outcome is unknown (lost)
	lost   bool  // write that may or may not have applied

	key   uint64
	val   uint64 // written value / observed read value
	found bool   // lookup observation

	lo, hi       uint64 // scans
	pred         colstore.Predicate
	matched, sum uint64

	evI, evR history.Event
	hasR     bool
}

// Check pairs and checks every event in rec.
func Check(rec *history.Recorder, opts Options) Result {
	res := CheckEvents(rec.Events(), opts)
	res.Dropped = rec.Dropped()
	return res
}

// CheckEvents pairs and checks a flat event slice (replay entry point; the
// slice may mix clients in any order).
func CheckEvents(events []history.Event, opts Options) Result {
	var res Result
	ops := pair(events)

	byKey := map[uint64][]*op{}
	written := map[uint64]bool{}
	var scans, colScans []*op
	for _, o := range ops {
		switch o.kind {
		case history.OpLookup, history.OpUpsert, history.OpDelete:
			byKey[o.key] = append(byKey[o.key], o)
			if o.kind != history.OpLookup {
				written[o.key] = true
			}
			res.Ops++
		case history.OpScanRange:
			scans = append(scans, o)
			res.Scans++
		case history.OpColScan:
			colScans = append(colScans, o)
			res.ColScans++
		}
	}

	initVal := func(key uint64) (uint64, bool) {
		i := sort.Search(len(opts.Initial), func(i int) bool { return opts.Initial[i].Key >= key })
		if i < len(opts.Initial) && opts.Initial[i].Key == key {
			return opts.Initial[i].Value, true
		}
		return 0, false
	}

	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		kops := byKey[key]
		val, present := initVal(key)
		unknown := opts.DefaultUnknown && !present
		if checkKey(kops, present, val, unknown) {
			continue
		}
		min := minimizeKey(kops, present, val, unknown)
		res.Violations = append(res.Violations, Violation{
			Kind:   "key",
			Key:    key,
			Reason: fmt.Sprintf("key %d: no sequential witness for %d operations", key, len(min)),
			Events: opsToEvents(min),
		})
	}

	if !opts.DefaultUnknown {
		for _, s := range scans {
			if v := checkScan(s, byKey, written, opts.Initial); v != nil {
				res.Violations = append(res.Violations, *v)
			}
		}
	}
	if opts.ColumnStatic {
		res.Violations = append(res.Violations, checkColScans(colScans, opts.ColumnBaseline)...)
	}
	return res
}

// pair matches invokes to responses by (client, seq). Unanswered or
// errored reads and scans are dropped (they constrain nothing);
// unanswered writes and ReturnLost writes become open-ended (ret = +inf).
func pair(events []history.Event) []*op {
	type ckey struct {
		client uint16
		seq    uint32
	}
	pending := map[ckey]*op{}
	var ops []*op
	for _, e := range events {
		k := ckey{e.Client, e.Seq}
		if e.Kind == history.Invoke {
			o := &op{
				client: e.Client, seq: e.Seq, kind: e.Op,
				inv: e.T, ret: math.MaxInt64,
				key: e.Key, val: e.Val,
				lo: e.Key, hi: e.Key2, pred: e.Pred,
				evI: e,
			}
			pending[k] = o
			ops = append(ops, o)
			continue
		}
		o := pending[k]
		if o == nil {
			continue // response without a recorded invoke (overflow): drop
		}
		delete(pending, k)
		o.hasR, o.evR = true, e
		switch e.Kind {
		case history.ReturnOK:
			o.ret = e.T
			switch o.kind {
			case history.OpLookup:
				o.found, o.val = e.Found, e.Val
			case history.OpScanRange, history.OpColScan:
				o.matched, o.sum = e.Val, e.Val2
			}
		case history.ReturnErr:
			o.kind = 255 // drop: definitely had no effect and observed nothing
		case history.ReturnLost:
			if o.kind == history.OpUpsert || o.kind == history.OpDelete {
				o.lost = true // may apply at any later point, or never
			} else {
				o.kind = 255 // lost read/scan observed nothing
			}
		}
	}
	// Unanswered ops: writes stay open-ended, reads/scans drop.
	for _, o := range pending {
		if o.kind == history.OpUpsert || o.kind == history.OpDelete {
			o.lost = true
		} else {
			o.kind = 255
		}
	}
	kept := ops[:0]
	for _, o := range ops {
		if o.kind != 255 {
			kept = append(kept, o)
		}
	}
	return kept
}

// checkKey searches for a sequential witness of one key's operations:
// true means linearizable. state: present/value, or unknown (pinned by
// the first linearized observation) when unknown is set.
func checkKey(ops []*op, present bool, val uint64, unknown bool) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	sorted := make([]*op, n)
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].inv < sorted[j].inv })

	words := (n + 63) / 64
	type state struct {
		present bool
		unknown bool
		val     uint64
	}
	memoKey := func(done []uint64, s state) string {
		b := make([]byte, 0, words*8+10)
		for _, w := range done {
			for i := 0; i < 8; i++ {
				b = append(b, byte(w>>(8*i)))
			}
		}
		flags := byte(0)
		if s.present {
			flags |= 1
		}
		if s.unknown {
			flags |= 2
		}
		b = append(b, flags)
		for i := 0; i < 8; i++ {
			b = append(b, byte(s.val>>(8*i)))
		}
		return string(b)
	}
	memo := map[string]bool{} // visited-and-failed

	mustLinearize := 0
	for _, o := range sorted {
		if !o.lost {
			mustLinearize++
		}
	}

	done := make([]uint64, words)
	var dfs func(s state, remaining int) bool
	dfs = func(s state, remaining int) bool {
		if remaining == 0 {
			return true
		}
		mk := memoKey(done, s)
		if memo[mk] {
			return false
		}
		// Frontier: an op may be linearized next iff its invocation does
		// not follow the response of another un-linearized op.
		minRet := int64(math.MaxInt64)
		for i, o := range sorted {
			if done[i/64]&(1<<uint(i%64)) != 0 {
				continue
			}
			if o.ret < minRet {
				minRet = o.ret
			}
		}
		for i, o := range sorted {
			if done[i/64]&(1<<uint(i%64)) != 0 {
				continue
			}
			if o.inv > minRet {
				continue
			}
			next := s
			switch o.kind {
			case history.OpLookup:
				if s.unknown {
					// The first observation pins the unknown start state.
					next.unknown, next.present, next.val = false, o.found, o.val
				} else if o.found != s.present || (s.present && o.val != s.val) {
					continue // illegal observation in this state
				}
			case history.OpUpsert:
				next.unknown, next.present, next.val = false, true, o.val
			case history.OpDelete:
				next.unknown, next.present, next.val = false, false, 0
			}
			done[i/64] |= 1 << uint(i%64)
			rem := remaining
			if !o.lost {
				rem--
			}
			ok := dfs(next, rem)
			done[i/64] &^= 1 << uint(i%64)
			if ok {
				return true
			}
		}
		memo[mk] = true
		return false
	}
	return dfs(state{present: present, unknown: unknown, val: val}, mustLinearize)
}

// minimizeKey greedily removes operations while the remainder still fails,
// yielding a small reproducer for the violation dump. Lost writes are
// never load-bearing for a failure (they only add freedom), so greedy
// single-op removal converges to a compact core.
func minimizeKey(ops []*op, present bool, val uint64, unknown bool) []*op {
	cur := make([]*op, len(ops))
	copy(cur, ops)
	for i := 0; i < len(cur); {
		trial := make([]*op, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		if !checkKey(trial, present, val, unknown) {
			cur = trial
			continue
		}
		i++
	}
	return cur
}

func opsToEvents(ops []*op) []history.Event {
	var out []history.Event
	for _, o := range ops {
		out = append(out, o.evI)
		if o.hasR {
			out = append(out, o.evR)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// checkScan bounds what a range-scan aggregate could possibly have
// observed during its window [inv, ret] and checks the observation
// against those bounds. Per key, the possible contribution set is
// over-approximated: a write w is possibly-observed iff it was invoked
// before the window closed and no other completed write is forced both
// after w and before the window opened; the initial state is possible
// iff no completed write returned before the window opened.
func checkScan(s *op, byKey map[uint64][]*op, written map[uint64]bool, initial []prefixtree.KV) *Violation {
	t1, t2 := s.inv, s.ret
	var minM, maxM, minS, maxS uint64

	// Untouched keys contribute their initial state verbatim.
	lo := sort.Search(len(initial), func(i int) bool { return initial[i].Key >= s.lo })
	for i := lo; i < len(initial) && initial[i].Key <= s.hi; i++ {
		kv := initial[i]
		if written[kv.Key] || !s.pred.Matches(kv.Value) {
			continue
		}
		minM++
		maxM++
		minS += kv.Value
		maxS += kv.Value
	}

	// Touched keys contribute a possible-contribution interval. Sums
	// assume no uint64 wrap across the aggregate (domain values are far
	// below overflow in every recorded workload).
	var evidence []history.Event
	for key, kops := range byKey {
		if key < s.lo || key > s.hi || !written[key] {
			continue
		}
		var states []struct {
			present bool
			val     uint64
		}
		add := func(present bool, val uint64) {
			states = append(states, struct {
				present bool
				val     uint64
			}{present, val})
		}
		anyRetBefore := false
		for _, w := range kops {
			if w.kind == history.OpLookup {
				continue
			}
			if !w.lost && w.ret <= t1 {
				anyRetBefore = true
			}
		}
		if !anyRetBefore {
			iv, ipresent := uint64(0), false
			ii := sort.Search(len(initial), func(i int) bool { return initial[i].Key >= key })
			if ii < len(initial) && initial[ii].Key == key {
				iv, ipresent = initial[ii].Value, true
			}
			add(ipresent, iv)
		}
		for _, w := range kops {
			if w.kind == history.OpLookup || w.inv >= t2 {
				continue
			}
			blocked := false
			for _, w2 := range kops {
				if w2 == w || w2.kind == history.OpLookup || w2.lost {
					continue
				}
				if w2.inv > w.ret && w2.ret <= t1 {
					blocked = true
					break
				}
			}
			if !blocked {
				add(w.kind == history.OpUpsert, w.val)
			}
		}
		kMinM, kMaxM := uint64(1), uint64(0)
		kMinS, kMaxS := uint64(math.MaxUint64), uint64(0)
		for _, st := range states {
			m, sum := uint64(0), uint64(0)
			if st.present && s.pred.Matches(st.val) {
				m, sum = 1, st.val
			}
			if m < kMinM {
				kMinM = m
			}
			if m > kMaxM {
				kMaxM = m
			}
			if sum < kMinS {
				kMinS = sum
			}
			if sum > kMaxS {
				kMaxS = sum
			}
		}
		if len(states) == 0 {
			// Every write completed before the window yet none is
			// unblocked — cannot happen (the latest such write is never
			// blocked); guard anyway.
			kMinM, kMinS = 0, 0
		}
		minM += kMinM
		maxM += kMaxM
		minS += kMinS
		maxS += kMaxS
		if kMinM != kMaxM || kMinS != kMaxS {
			// Ambiguous key: keep its write events as violation evidence.
			for _, w := range kops {
				if w.kind == history.OpLookup {
					continue
				}
				evidence = append(evidence, w.evI)
				if w.hasR {
					evidence = append(evidence, w.evR)
				}
			}
		}
	}

	if s.matched >= minM && s.matched <= maxM && s.sum >= minS && s.sum <= maxS {
		return nil
	}
	const maxEvidence = 64
	if len(evidence) > maxEvidence {
		evidence = evidence[:maxEvidence]
	}
	ev := append([]history.Event{s.evI, s.evR}, evidence...)
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].T < ev[j].T })
	return &Violation{
		Kind: "scan",
		Reason: fmt.Sprintf("scan [%d,%d] pred %+v observed (matched=%d, sum=%d), possible matched [%d,%d], sum [%d,%d]",
			s.lo, s.hi, s.pred, s.matched, s.sum, minM, maxM, minS, maxS),
		Events: ev,
	}
}

// checkColScans asserts static-column consistency: scans sharing a
// predicate agree with each other (and the baseline when pinned).
func checkColScans(scans []*op, baseline map[colstore.Predicate]Agg) []Violation {
	var out []Violation
	seen := map[colstore.Predicate]*op{}
	for _, s := range scans {
		want, pinned := baseline[s.pred]
		if !pinned {
			if first := seen[s.pred]; first == nil {
				seen[s.pred] = s
				continue
			} else {
				want = Agg{Matched: first.matched, Sum: first.sum}
			}
		}
		if s.matched != want.Matched || s.sum != want.Sum {
			out = append(out, Violation{
				Kind: "colscan",
				Reason: fmt.Sprintf("column scan %+v observed (matched=%d, sum=%d), want (%d, %d) on a static column",
					s.pred, s.matched, s.sum, want.Matched, want.Sum),
				Events: []history.Event{s.evI, s.evR},
			})
		}
	}
	return out
}
