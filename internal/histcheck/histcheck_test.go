package histcheck

// Self-tests with hand-built histories: known-linearizable ones must pass,
// known-violating ones must be flagged — the checker itself is falsifiable.

import (
	"os"
	"path/filepath"
	"testing"

	"eris/internal/colstore"
	"eris/internal/history"
	"eris/internal/prefixtree"
)

// h is a tiny DSL for hand-building histories against a generously sized
// recorder.
type h struct {
	rec *history.Recorder
}

func newH(clients int) *h { return &h{rec: history.New(clients, 1024)} }

func (b *h) log(c int) *history.ClientLog { return b.rec.Client(c) }

func (b *h) check(opts Options) Result { return Check(b.rec, opts) }

func TestSequentialHistoryLinearizable(t *testing.T) {
	b := newH(1)
	l := b.log(0)
	s := l.InvokeKey(history.OpUpsert, 1, 10)
	l.ReturnWrite(s, history.OpUpsert)
	s = l.InvokeKey(history.OpLookup, 1, 0)
	l.ReturnRead(s, true, 10)
	s = l.InvokeKey(history.OpDelete, 1, 0)
	l.ReturnWrite(s, history.OpDelete)
	s = l.InvokeKey(history.OpLookup, 1, 0)
	l.ReturnRead(s, false, 0)
	res := b.check(Options{})
	if len(res.Violations) != 0 {
		t.Fatalf("sequential history flagged: %+v", res.Violations)
	}
	if res.Ops != 4 {
		t.Fatalf("ops checked = %d, want 4", res.Ops)
	}
}

// TestConcurrentReadSeesEitherValue overlaps a read with a write: both the
// old and the new value are legal observations, in separate runs.
func TestConcurrentReadSeesEitherValue(t *testing.T) {
	for _, seen := range []uint64{10, 20} {
		b := newH(2)
		w, r := b.log(0), b.log(1)
		s0 := w.InvokeKey(history.OpUpsert, 5, 10)
		w.ReturnWrite(s0, history.OpUpsert)
		// Concurrent: the second write and the read overlap.
		s1 := w.InvokeKey(history.OpUpsert, 5, 20)
		s2 := r.InvokeKey(history.OpLookup, 5, 0)
		w.ReturnWrite(s1, history.OpUpsert)
		r.ReturnRead(s2, true, seen)
		res := b.check(Options{})
		if len(res.Violations) != 0 {
			t.Fatalf("concurrent read of %d flagged: %+v", seen, res.Violations)
		}
	}
}

// TestLostWriteMayOrMayNotApply: a timed-out write is open-ended — a later
// read may see it applied or not, but never a third value.
func TestLostWriteMayOrMayNotApply(t *testing.T) {
	for _, tc := range []struct {
		seen  uint64
		found bool
		ok    bool
	}{
		{10, true, true},  // lost write never applied
		{20, true, true},  // lost write applied late
		{30, true, false}, // a value nobody wrote
		{0, false, false}, // a deletion nobody performed
	} {
		b := newH(2)
		w, r := b.log(0), b.log(1)
		s0 := w.InvokeKey(history.OpUpsert, 5, 10)
		w.ReturnWrite(s0, history.OpUpsert)
		s1 := w.InvokeKey(history.OpUpsert, 5, 20)
		w.ReturnLost(s1, history.OpUpsert)
		s2 := r.InvokeKey(history.OpLookup, 5, 0)
		r.ReturnRead(s2, tc.found, tc.seen)
		res := b.check(Options{})
		if ok := len(res.Violations) == 0; ok != tc.ok {
			t.Fatalf("lost-write read (%v,%d): linearizable=%v, want %v (%+v)",
				tc.found, tc.seen, ok, tc.ok, res.Violations)
		}
	}
}

// TestStaleReadCaught: two acked writes in sequence, then a read of the
// first value strictly after both — the classic stale read.
func TestStaleReadCaught(t *testing.T) {
	b := newH(1)
	l := b.log(0)
	s := l.InvokeKey(history.OpUpsert, 7, 1)
	l.ReturnWrite(s, history.OpUpsert)
	s = l.InvokeKey(history.OpUpsert, 7, 2)
	l.ReturnWrite(s, history.OpUpsert)
	s = l.InvokeKey(history.OpLookup, 7, 0)
	l.ReturnRead(s, true, 1) // stale: must observe 2
	res := b.check(Options{})
	if len(res.Violations) != 1 || res.Violations[0].Kind != "key" || res.Violations[0].Key != 7 {
		t.Fatalf("stale read not flagged: %+v", res.Violations)
	}
	// The minimized fragment must itself still fail on replay.
	if len(res.Violations[0].Events) == 0 {
		t.Fatal("violation carries no events")
	}
	rep := CheckEvents(res.Violations[0].Events, Options{})
	if len(rep.Violations) != 1 {
		t.Fatalf("minimized fragment no longer fails: %+v", rep)
	}
}

// TestReadAfterAckedDeleteCaught: an acked delete followed by a read that
// still observes the value.
func TestReadAfterAckedDeleteCaught(t *testing.T) {
	b := newH(1)
	l := b.log(0)
	s := l.InvokeKey(history.OpUpsert, 9, 42)
	l.ReturnWrite(s, history.OpUpsert)
	s = l.InvokeKey(history.OpDelete, 9, 0)
	l.ReturnWrite(s, history.OpDelete)
	s = l.InvokeKey(history.OpLookup, 9, 0)
	l.ReturnRead(s, true, 42)
	res := b.check(Options{})
	if len(res.Violations) != 1 {
		t.Fatalf("read-after-delete not flagged: %+v", res.Violations)
	}
}

// TestInitialStateRespected: reads before any write must observe the
// configured initial state, and flag anything else.
func TestInitialStateRespected(t *testing.T) {
	init := []prefixtree.KV{{Key: 3, Value: 30}}
	for _, tc := range []struct {
		key, seen uint64
		found, ok bool
	}{
		{3, 30, true, true},
		{3, 31, true, false},
		{4, 0, false, true},
		{4, 40, true, false},
	} {
		b := newH(1)
		l := b.log(0)
		s := l.InvokeKey(history.OpLookup, tc.key, 0)
		l.ReturnRead(s, tc.found, tc.seen)
		res := b.check(Options{Initial: init})
		if ok := len(res.Violations) == 0; ok != tc.ok {
			t.Fatalf("initial read key %d (%v,%d): ok=%v, want %v", tc.key, tc.found, tc.seen, ok, tc.ok)
		}
	}
}

// TestDefaultUnknownPinsFirstRead: without an enumerated initial state the
// first read pins a key's start value; a later contradicting read without
// an intervening write is still a violation.
func TestDefaultUnknownPinsFirstRead(t *testing.T) {
	b := newH(1)
	l := b.log(0)
	s := l.InvokeKey(history.OpLookup, 11, 0)
	l.ReturnRead(s, true, 5)
	s = l.InvokeKey(history.OpLookup, 11, 0)
	l.ReturnRead(s, true, 6) // contradicts the pinned state
	res := b.check(Options{DefaultUnknown: true})
	if len(res.Violations) != 1 {
		t.Fatalf("contradicting unknown-state reads not flagged: %+v", res.Violations)
	}

	b = newH(1)
	l = b.log(0)
	s = l.InvokeKey(history.OpLookup, 11, 0)
	l.ReturnRead(s, true, 5)
	s = l.InvokeKey(history.OpLookup, 11, 0)
	l.ReturnRead(s, true, 5)
	if res := b.check(Options{DefaultUnknown: true}); len(res.Violations) != 0 {
		t.Fatalf("consistent unknown-state reads flagged: %+v", res.Violations)
	}
}

// TestScanMissesAckedUpsert: an upsert acked strictly before a scan window
// opens must be visible to the scan — observing matched=0 is the
// violation this check exists for.
func TestScanMissesAckedUpsert(t *testing.T) {
	b := newH(2)
	w, r := b.log(0), b.log(1)
	s0 := w.InvokeKey(history.OpUpsert, 50, 500)
	w.ReturnWrite(s0, history.OpUpsert)
	s1 := r.InvokeScan(history.OpScanRange, 0, 100, colstore.Predicate{Op: colstore.All})
	r.ReturnAgg(s1, history.OpScanRange, 0, 0) // misses the acked write
	res := b.check(Options{})
	if len(res.Violations) != 1 || res.Violations[0].Kind != "scan" {
		t.Fatalf("scan missing acked upsert not flagged: %+v", res.Violations)
	}
}

// TestScanOverlappingUpsertMaySeeEither: a scan concurrent with the upsert
// may count it or not; both observations must pass.
func TestScanOverlappingUpsertMaySeeEither(t *testing.T) {
	for _, matched := range []uint64{0, 1} {
		sum := matched * 500
		b := newH(2)
		w, r := b.log(0), b.log(1)
		s1 := r.InvokeScan(history.OpScanRange, 0, 100, colstore.Predicate{Op: colstore.All})
		s0 := w.InvokeKey(history.OpUpsert, 50, 500)
		w.ReturnWrite(s0, history.OpUpsert)
		r.ReturnAgg(s1, history.OpScanRange, matched, sum)
		res := b.check(Options{})
		if len(res.Violations) != 0 {
			t.Fatalf("concurrent scan observing matched=%d flagged: %+v", matched, res.Violations)
		}
	}
}

// TestScanCountsInitialState: untouched initial keys in range contribute
// exactly; a scan inventing extra matches is flagged.
func TestScanCountsInitialState(t *testing.T) {
	init := []prefixtree.KV{{Key: 10, Value: 1}, {Key: 20, Value: 2}, {Key: 200, Value: 9}}
	b := newH(1)
	l := b.log(0)
	s := l.InvokeScan(history.OpScanRange, 0, 100, colstore.Predicate{Op: colstore.All})
	l.ReturnAgg(s, history.OpScanRange, 2, 3)
	if res := b.check(Options{Initial: init}); len(res.Violations) != 0 {
		t.Fatalf("exact initial-state scan flagged: %+v", res.Violations)
	}

	b = newH(1)
	l = b.log(0)
	s = l.InvokeScan(history.OpScanRange, 0, 100, colstore.Predicate{Op: colstore.All})
	l.ReturnAgg(s, history.OpScanRange, 3, 12) // invented a row
	if res := b.check(Options{Initial: init}); len(res.Violations) != 1 {
		t.Fatalf("invented scan row not flagged")
	}
}

// TestColumnStaticScans: identical predicates must agree on a static
// column; a baseline pins the absolute answer.
func TestColumnStaticScans(t *testing.T) {
	pred := colstore.Predicate{Op: colstore.Less, Operand: 100}
	b := newH(1)
	l := b.log(0)
	s := l.InvokeScan(history.OpColScan, 0, 0, pred)
	l.ReturnAgg(s, history.OpColScan, 10, 45)
	s = l.InvokeScan(history.OpColScan, 0, 0, pred)
	l.ReturnAgg(s, history.OpColScan, 10, 45)
	if res := b.check(Options{ColumnStatic: true}); len(res.Violations) != 0 {
		t.Fatalf("agreeing static column scans flagged: %+v", res.Violations)
	}

	b = newH(1)
	l = b.log(0)
	s = l.InvokeScan(history.OpColScan, 0, 0, pred)
	l.ReturnAgg(s, history.OpColScan, 10, 45)
	s = l.InvokeScan(history.OpColScan, 0, 0, pred)
	l.ReturnAgg(s, history.OpColScan, 9, 36) // a block went missing mid-migration
	if res := b.check(Options{ColumnStatic: true}); len(res.Violations) != 1 {
		t.Fatalf("disagreeing static column scans not flagged")
	}

	b = newH(1)
	l = b.log(0)
	s = l.InvokeScan(history.OpColScan, 0, 0, pred)
	l.ReturnAgg(s, history.OpColScan, 10, 45)
	base := map[colstore.Predicate]Agg{pred: {Matched: 11, Sum: 55}}
	if res := b.check(Options{ColumnStatic: true, ColumnBaseline: base}); len(res.Violations) != 1 {
		t.Fatalf("baseline mismatch not flagged")
	}
}

// TestDumpAndReplay round-trips a violation through the results file and
// the replay entry point.
func TestDumpAndReplay(t *testing.T) {
	b := newH(1)
	l := b.log(0)
	s := l.InvokeKey(history.OpUpsert, 7, 1)
	l.ReturnWrite(s, history.OpUpsert)
	s = l.InvokeKey(history.OpLookup, 7, 0)
	l.ReturnRead(s, true, 2)
	opts := Options{}
	res := b.check(opts)
	if len(res.Violations) != 1 {
		t.Fatalf("setup: %+v", res)
	}
	dir := t.TempDir()
	path, err := WriteViolations(dir, "selftest", res, opts)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump path %s not under %s", path, dir)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("replayed dump no longer fails: %+v", rep)
	}
}

// TestRecorderSteadyStateAllocs guards the recording hot path: appends
// into a preallocated log must not allocate.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	rec := history.New(1, 1<<16)
	l := rec.Client(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s := l.InvokeKey(history.OpUpsert, 1, 2)
		l.ReturnWrite(s, history.OpUpsert)
		s = l.InvokeKey(history.OpLookup, 1, 0)
		l.ReturnRead(s, true, 2)
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestRecorderOverflowDropsNew: a full log drops new events and counts
// them instead of wrapping over the pairing.
func TestRecorderOverflowDropsNew(t *testing.T) {
	rec := history.New(1, 4)
	l := rec.Client(0)
	for i := 0; i < 4; i++ {
		l.InvokeKey(history.OpUpsert, uint64(i), 1)
	}
	l.InvokeKey(history.OpUpsert, 99, 1)
	if got := rec.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if got := rec.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if rec.Events()[0].Key != 0 {
		t.Fatal("overflow overwrote the oldest event")
	}
}
