package histcheck

// Violation persistence and replay: a failed check dumps its minimized
// failing fragments as JSON under results/, and ReplayFile re-runs the
// checker on such a dump — so a violation caught in CI can be replayed
// and bisected locally without re-provoking the race.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"eris/internal/prefixtree"
)

// Dump is the serialized form of a failed check.
type Dump struct {
	// Name labels the run that produced the dump (test or tool name).
	Name string
	// Initial is the base state the histories were checked against, so a
	// replay needs nothing but the file.
	Initial []prefixtree.KV
	// DefaultUnknown mirrors Options.DefaultUnknown at check time.
	DefaultUnknown bool
	Violations     []Violation
}

// WriteViolations serializes res's violations under dir (created if
// missing) and returns the file path.
func WriteViolations(dir, name string, res Result, opts Options) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	d := Dump{
		Name:           name,
		Initial:        opts.Initial,
		DefaultUnknown: opts.DefaultUnknown,
		Violations:     res.Violations,
	}
	blob, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+"-violations.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReplayFile re-checks every violation fragment in a dump: the returned
// result lists the fragments that still fail. A fragment that no longer
// fails means the dump and the checker disagree — worth investigating
// either way.
func ReplayFile(path string) (Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	var d Dump
	if err := json.Unmarshal(blob, &d); err != nil {
		return Result{}, fmt.Errorf("histcheck: parse %s: %w", path, err)
	}
	opts := Options{Initial: d.Initial, DefaultUnknown: d.DefaultUnknown}
	var merged Result
	for _, v := range d.Violations {
		res := CheckEvents(v.Events, opts)
		merged.Ops += res.Ops
		merged.Scans += res.Scans
		merged.ColScans += res.ColScans
		merged.Violations = append(merged.Violations, res.Violations...)
	}
	return merged, nil
}
