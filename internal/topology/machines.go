package topology

import "fmt"

// The builders in this file reproduce the three evaluation machines of the
// ERIS paper (Table 1, Figure 2) with pair costs calibrated to the paper's
// measured bandwidth/latency matrix (Table 2).

const (
	// GiB is used for modeled memory capacities.
	GiB = int64(1) << 30
	// MiB is used for modeled cache capacities.
	MiB = int64(1) << 20
)

// Intel builds the 4-socket Intel Xeon E7-4860 machine: 4 fully connected
// nodes, 10 cores each, 32 GB and 24 MB LLC per node, QPI links at
// 12.8 GB/s. Measured: local 26.7 GB/s / 129 ns, 1 hop QPI 10.7 GB/s / 193 ns.
func Intel() *Topology {
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = Node{
			ID:             NodeID(i),
			Cores:          10,
			MemoryBytes:    32 * GiB,
			LLCBytes:       24 * MiB,
			LLCWays:        24,
			LocalBandwidth: 26.7,
			LocalLatency:   129,
		}
	}
	var links []Link
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			links = append(links, Link{A: NodeID(a), B: NodeID(b), Capacity: 12.8, Class: "QPI"})
		}
	}
	classify := func(src, dst NodeID, hops int, bottleneck Link) PairCost {
		return PairCost{LatencyNS: 193, BandwidthGBs: 10.7, Class: "1 hop QPI"}
	}
	t, err := New("Intel (4x Xeon E7-4860)", nodes, links, 18, 70, classify)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return t
}

// amdLinkKind tags the HyperTransport link variants of the AMD machine.
const (
	amdHTFull        = "HT-full"         // dedicated 16-bit link inside a socket package
	amdHTSplitSingle = "HT-split-single" // 8-bit sublink, the sibling sublink unpopulated
	amdHTSplitDual   = "HT-split-dual"   // 8-bit sublink with both sublinks in use
)

// AMD builds the 4-socket / 8-node AMD Opteron 6274 machine. Each socket is
// a dual-node package: nodes (0,1), (2,3), (4,5), (6,7) are connected with a
// dedicated full-width HyperTransport link. Cross-socket connectivity uses
// split 8-bit sublinks arranged so that every pair is reachable in at most
// two hops, yielding the six measured bandwidth classes of Table 2:
//
//	local                      16.4 GB/s   85 ns
//	1 hop HT (full link)        5.8 GB/s  136 ns
//	1 hop HT (split,single)     4.2 GB/s  152 ns
//	1 hop HT (split,dual)       2.9 GB/s  152 ns
//	2 hop HT (split,single)     3.7 GB/s  196 ns
//	2 hop HT (split,dual)       1.8 GB/s  196 ns
func AMD() *Topology {
	nodes := make([]Node, 8)
	for i := range nodes {
		nodes[i] = Node{
			ID:             NodeID(i),
			Cores:          8,
			MemoryBytes:    8 * GiB,
			LLCBytes:       6 * MiB, // 12 MB per socket = 2 x 6 MB per node
			LLCWays:        16,
			LocalBandwidth: 16.4,
			LocalLatency:   85,
		}
	}
	link := func(a, b NodeID, kind string) Link {
		var cap float64
		switch kind {
		case amdHTFull:
			cap = 5.8
		case amdHTSplitSingle:
			cap = 4.2
		case amdHTSplitDual:
			cap = 2.9
		}
		return Link{A: a, B: b, Capacity: cap, Class: kind}
	}
	// A Moebius-ladder layout: the ring 0-1-2-3-4-5-6-7-0 contains the four
	// dedicated intra-package links; the other four ring edges are
	// single-populated split links, and the four diagonals are
	// dual-populated split links. Every node has one full and two split
	// links (three HT ports for coherent traffic, one for I/O) and the
	// graph diameter is two, as on the real machine.
	links := []Link{
		// Intra-package full links.
		link(0, 1, amdHTFull), link(2, 3, amdHTFull), link(4, 5, amdHTFull), link(6, 7, amdHTFull),
		// Remaining ring edges: split links with one sublink populated.
		link(1, 2, amdHTSplitSingle), link(3, 4, amdHTSplitSingle),
		link(5, 6, amdHTSplitSingle), link(7, 0, amdHTSplitSingle),
		// Diagonals: split links with both sublinks populated.
		link(0, 4, amdHTSplitDual), link(1, 5, amdHTSplitDual),
		link(2, 6, amdHTSplitDual), link(3, 7, amdHTSplitDual),
	}
	classify := func(src, dst NodeID, hops int, bottleneck Link) PairCost {
		switch {
		case hops == 1 && bottleneck.Class == amdHTFull:
			return PairCost{LatencyNS: 136, BandwidthGBs: 5.8, Class: "1 hop HT (full link)"}
		case hops == 1 && bottleneck.Class == amdHTSplitSingle:
			return PairCost{LatencyNS: 152, BandwidthGBs: 4.2, Class: "1 hop HT (split,single)"}
		case hops == 1 && bottleneck.Class == amdHTSplitDual:
			return PairCost{LatencyNS: 152, BandwidthGBs: 2.9, Class: "1 hop HT (split,dual)"}
		case hops == 2 && bottleneck.Class != amdHTSplitDual:
			return PairCost{LatencyNS: 196, BandwidthGBs: 3.7, Class: "2 hop HT (split,single)"}
		case hops == 2:
			return PairCost{LatencyNS: 196, BandwidthGBs: 1.8, Class: "2 hop HT (split,dual)"}
		default:
			// The constructed graph has diameter 2; anything longer is a bug.
			panic(fmt.Sprintf("AMD topology: unexpected route %d->%d with %d hops", src, dst, hops))
		}
	}
	t, err := New("AMD (4x Opteron 6274, 8 nodes)", nodes, links, 20, 90, classify)
	if err != nil {
		panic(err)
	}
	return t
}

// SGI builds the SGI UV 2000: 64 Intel Xeon E5-4650L nodes arranged as 32
// Compute Blades (two nodes per blade, joined through a HARP hub) in 4 IRUs
// of 8 blades. Within an IRU, blades form a 3D enhanced hypercube; each
// blade additionally connects to its peer blade in the two nearest IRUs.
// Measured distance classes (Table 2):
//
//	local           36.2 GB/s   81 ns
//	2nd processor    9.5 GB/s  400 ns
//	1 hop NUMALink   7.5 GB/s  510 ns
//	2 hop NUMALink   7.5 GB/s  630 ns
//	3 hop NUMALink   7.1 GB/s  750 ns
//	4 hop NUMALink   6.5 GB/s  870 ns
func SGI() *Topology {
	return sgiSized(64)
}

// SGISubset builds an SGI UV 2000 restricted to the first nodes
// multiprocessors (rounded up to an even count, minimum 2). It models
// running inside a batch-system cpuset, as the paper does for its
// scalability experiments (Figure 1 uses 1..64 sockets, Figure 9 uses 61).
func SGISubset(nodes int) *Topology {
	if nodes < 1 {
		nodes = 1
	}
	if nodes == 1 {
		// A single socket of the machine: no interconnect involved.
		return sgiSingle()
	}
	n := nodes
	if n%2 == 1 {
		n++
	}
	if n > 64 {
		n = 64
	}
	t := sgiSized(n)
	if nodes%2 == 1 && nodes < 64 {
		// Drop the last core set by rebuilding with one node fewer is not
		// possible (blades are pairs); instead callers use NumCores
		// limiting. Figure 9's 61-socket run is modeled as 62 nodes.
		_ = t
	}
	return t
}

func sgiNode(id int) Node {
	return Node{
		ID:             NodeID(id),
		Cores:          8,
		MemoryBytes:    128 * GiB,
		LLCBytes:       20 * MiB,
		LLCWays:        20,
		LocalBandwidth: 36.2,
		LocalLatency:   81,
	}
}

func sgiSingle() *Topology {
	t, err := New("SGI UV 2000 (1 node)", []Node{sgiNode(0)}, nil, 15, 60, nil)
	if err != nil {
		panic(err)
	}
	return t
}

func sgiSized(numNodes int) *Topology {
	nodes := make([]Node, numNodes)
	for i := range nodes {
		nodes[i] = sgiNode(i)
	}
	numBlades := numNodes / 2
	blade := func(n NodeID) int { return int(n) / 2 }

	var links []Link
	// Intra-blade: each node connects to its HARP hub via QPI; the pair of
	// QPI legs is modeled as one blade-internal link between the two nodes.
	for b := 0; b < numBlades; b++ {
		links = append(links, Link{A: NodeID(2 * b), B: NodeID(2*b + 1), Capacity: 16.0, Class: "QPI-HARP"})
	}
	// NumaLink6 blade-to-blade links: each connection consists of two
	// 6.7 GB/s links (one per node in the blade), modeled as a single
	// 13.4 GB/s blade-level link.
	addBlade := func(seen map[[2]int]bool, a, b int) {
		if a == b || a >= numBlades || b >= numBlades {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			return
		}
		seen[k] = true
		links = append(links, Link{A: NodeID(2 * a), B: NodeID(2 * b), Capacity: 13.4, Class: "NumaLink6"})
	}
	seen := make(map[[2]int]bool)
	irus := (numBlades + 7) / 8
	for b := 0; b < numBlades; b++ {
		iru, pos := b/8, b%8
		// 3D hypercube edges within the IRU plus two enhancement diagonals.
		for _, x := range []int{1, 2, 4, 3, 5} {
			addBlade(seen, b, iru*8+(pos^x))
		}
		// Inter-IRU: peer blade in the next and next-next IRU (ring).
		if irus > 1 {
			addBlade(seen, b, ((iru+1)%irus)*8+pos)
		}
		if irus > 2 {
			addBlade(seen, b, ((iru+2)%irus)*8+pos)
		}
	}
	classify := func(src, dst NodeID, hops int, bottleneck Link) PairCost {
		if blade(src) == blade(dst) {
			return PairCost{LatencyNS: 400, BandwidthGBs: 9.5, Class: "2nd processor"}
		}
		// Count only NumaLink hops (exclude the intra-blade QPI legs).
		nl := hops
		if nl > 4 {
			nl = 4
		}
		switch nl {
		case 1:
			return PairCost{LatencyNS: 510, BandwidthGBs: 7.5, Class: "1 hop NUMALink"}
		case 2:
			return PairCost{LatencyNS: 630, BandwidthGBs: 7.5, Class: "2 hop NUMALink"}
		case 3:
			return PairCost{LatencyNS: 750, BandwidthGBs: 7.1, Class: "3 hop NUMALink"}
		default:
			return PairCost{LatencyNS: 870, BandwidthGBs: 6.5, Class: "4 hop NUMALink"}
		}
	}
	name := "SGI UV 2000 (64 nodes)"
	if numNodes != 64 {
		name = fmt.Sprintf("SGI UV 2000 (%d nodes)", numNodes)
	}
	t, err := New(name, nodes, links, 15, 60, classify)
	if err != nil {
		panic(err)
	}
	return t
}

// SingleNode builds a trivial one-node machine; handy for tests that need
// no NUMA effects.
func SingleNode(cores int) *Topology {
	n := Node{
		ID: 0, Cores: cores,
		MemoryBytes: 16 * GiB, LLCBytes: 16 * MiB, LLCWays: 16,
		LocalBandwidth: 25.0, LocalLatency: 100,
	}
	t, err := New("single-node", []Node{n}, nil, 15, 60, nil)
	if err != nil {
		panic(err)
	}
	return t
}

// FullyConnected builds a synthetic machine of n identical nodes with a full
// mesh of identical links. Remote accesses cost remoteLatNS and
// remoteBWGBs; links have linkCap capacity.
func FullyConnected(n, coresPerNode int, localBW, localLatNS, remoteBW, remoteLatNS, linkCap float64) *Topology {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID: NodeID(i), Cores: coresPerNode,
			MemoryBytes: 8 * GiB, LLCBytes: 8 * MiB, LLCWays: 16,
			LocalBandwidth: localBW, LocalLatency: localLatNS,
		}
	}
	var links []Link
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			links = append(links, Link{A: NodeID(a), B: NodeID(b), Capacity: linkCap, Class: "mesh"})
		}
	}
	classify := func(src, dst NodeID, hops int, bottleneck Link) PairCost {
		return PairCost{LatencyNS: remoteLatNS, BandwidthGBs: remoteBW, Class: "1 hop mesh"}
	}
	name := fmt.Sprintf("mesh-%dx%d", n, coresPerNode)
	t, err := New(name, nodes, links, 15, 60, classify)
	if err != nil {
		panic(err)
	}
	return t
}

// ByName resolves a machine name used by the CLI and the benchmark harness.
// Recognized names: "intel", "amd", "sgi", "sgiN" is not supported here (use
// SGISubset), "single".
func ByName(name string) (*Topology, error) {
	switch name {
	case "intel":
		return Intel(), nil
	case "amd":
		return AMD(), nil
	case "sgi":
		return SGI(), nil
	case "single":
		return SingleNode(4), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (want intel, amd, sgi, or single)", name)
	}
}
