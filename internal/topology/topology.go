// Package topology models the NUMA interconnect topology of a multiprocessor
// system: nodes (multiprocessors with local memory and LLC), point-to-point
// links (QPI, HyperTransport, NumaLink), shortest routes between nodes, and a
// calibrated per-node-pair cost matrix (latency and streaming bandwidth).
//
// The three machines evaluated in the ERIS paper (Table 1 / Figure 2) are
// provided as builders in machines.go; their pair costs are calibrated to the
// paper's measured values (Table 2). Synthetic topologies for tests and
// experiments are available through New and the helpers in this file.
package topology

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a multiprocessor (a NUMA node) within a Topology.
type NodeID int32

// CoreID identifies a hardware context. Cores are numbered consecutively
// across nodes: node 0 owns cores [0, n0), node 1 owns [n0, n0+n1), and so on.
type CoreID int32

// LinkID indexes into Topology.Links.
type LinkID int32

// Node describes one multiprocessor: its processing cores, the capacity of
// its local memory, and its last-level cache.
type Node struct {
	ID          NodeID
	Cores       int   // hardware contexts on this multiprocessor
	MemoryBytes int64 // capacity of the local main memory
	LLCBytes    int64 // last-level cache size
	LLCWays     int   // LLC associativity (used by the cache simulator)

	// LocalBandwidth is the aggregate read bandwidth of the integrated
	// memory controller in GB/s, and LocalLatency the unloaded DRAM read
	// latency in nanoseconds, both for accesses from this node itself.
	LocalBandwidth float64
	LocalLatency   float64
}

// Link is one physical point-to-point interconnect between two nodes.
// Capacity is per direction; a bidirectional stream may use the full
// capacity each way.
type Link struct {
	ID       LinkID
	A, B     NodeID
	Capacity float64 // GB/s per direction
	Class    string  // e.g. "QPI", "HT-full", "HT-split-single", "NumaLink6"
}

// PairCost is the modeled cost of memory traffic between a source node (the
// requester) and a home node (where the data lives).
type PairCost struct {
	// LatencyNS is the unloaded read latency in nanoseconds (pointer
	// chasing, no outstanding requests).
	LatencyNS float64
	// BandwidthGBs is the achievable streaming read bandwidth in GB/s when
	// all cores of the source node read sequentially from the home node.
	BandwidthGBs float64
	// Hops is the number of interconnect links on the route (0 for local).
	Hops int
	// Class names the distance class, matching the rows of Table 2
	// (e.g. "local", "1 hop QPI", "2 hop HT (split,dual)").
	Class string
}

// Topology is an immutable description of a NUMA machine.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link

	// CacheHitNS is the modeled latency of an LLC hit, in nanoseconds.
	CacheHitNS float64
	// RemoteCacheHitNS is the modeled latency of a hit that must be
	// forwarded from another node's cache (MESIF Forward state).
	RemoteCacheHitNS float64

	costs      [][]PairCost
	routes     [][][]LinkID
	coreNode   []NodeID
	nodeCore0  []CoreID // first core of each node
	totalCores int
}

// Classifier assigns a PairCost to a node pair given the hop count and the
// bottleneck link class of the best route. It is consulted only for remote
// pairs; local costs come from the Node itself.
type Classifier func(src, dst NodeID, hops int, bottleneck Link) PairCost

// New assembles a topology from nodes and links, computing shortest routes
// (fewest hops, ties broken by the highest bottleneck capacity) and the pair
// cost matrix via classify. It returns an error if the link graph does not
// connect all nodes or references an unknown node.
func New(name string, nodes []Node, links []Link, cacheHitNS, remoteCacheHitNS float64, classify Classifier) (*Topology, error) {
	t := &Topology{
		Name:             name,
		Nodes:            append([]Node(nil), nodes...),
		Links:            append([]Link(nil), links...),
		CacheHitNS:       cacheHitNS,
		RemoteCacheHitNS: remoteCacheHitNS,
	}
	n := len(t.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("topology %s: no nodes", name)
	}
	for i := range t.Nodes {
		if t.Nodes[i].ID != NodeID(i) {
			return nil, fmt.Errorf("topology %s: node %d has ID %d; IDs must be dense and ordered", name, i, t.Nodes[i].ID)
		}
		if t.Nodes[i].Cores <= 0 {
			return nil, fmt.Errorf("topology %s: node %d has no cores", name, i)
		}
	}
	for i := range t.Links {
		l := &t.Links[i]
		l.ID = LinkID(i)
		if int(l.A) >= n || int(l.B) >= n || l.A < 0 || l.B < 0 || l.A == l.B {
			return nil, fmt.Errorf("topology %s: link %d connects invalid nodes %d-%d", name, i, l.A, l.B)
		}
		if l.Capacity <= 0 {
			return nil, fmt.Errorf("topology %s: link %d has non-positive capacity", name, i)
		}
	}

	t.coreNode = t.coreNode[:0]
	for i := range t.Nodes {
		t.nodeCore0 = append(t.nodeCore0, CoreID(t.totalCores))
		for c := 0; c < t.Nodes[i].Cores; c++ {
			t.coreNode = append(t.coreNode, NodeID(i))
		}
		t.totalCores += t.Nodes[i].Cores
	}

	if err := t.computeRoutes(classify); err != nil {
		return nil, err
	}
	return t, nil
}

// computeRoutes runs a widest-shortest-path search from every node and fills
// in the route and cost matrices.
func (t *Topology) computeRoutes(classify Classifier) error {
	n := len(t.Nodes)
	adj := make([][]LinkID, n)
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.ID)
		adj[l.B] = append(adj[l.B], l.ID)
	}
	t.costs = make([][]PairCost, n)
	t.routes = make([][][]LinkID, n)

	for src := 0; src < n; src++ {
		hops := make([]int, n)
		width := make([]float64, n) // bottleneck capacity of best route
		prev := make([]LinkID, n)
		for i := range hops {
			hops[i] = math.MaxInt32
			prev[i] = -1
		}
		hops[src] = 0
		width[src] = math.Inf(1)
		// Bellman-Ford style relaxation ordered by (hops asc, width desc);
		// topologies are tiny (<=64 nodes), so simplicity beats a heap.
		for changed := true; changed; {
			changed = false
			for _, l := range t.Links {
				for _, dir := range [2][2]NodeID{{l.A, l.B}, {l.B, l.A}} {
					u, v := dir[0], dir[1]
					if hops[u] == math.MaxInt32 {
						continue
					}
					nh := hops[u] + 1
					nw := math.Min(width[u], l.Capacity)
					if nh < hops[v] || (nh == hops[v] && nw > width[v]) {
						hops[v], width[v], prev[v] = nh, nw, l.ID
						changed = true
					}
				}
			}
		}
		t.costs[src] = make([]PairCost, n)
		t.routes[src] = make([][]LinkID, n)
		for dst := 0; dst < n; dst++ {
			if dst == src {
				t.costs[src][dst] = PairCost{
					LatencyNS:    t.Nodes[src].LocalLatency,
					BandwidthGBs: t.Nodes[src].LocalBandwidth,
					Hops:         0,
					Class:        "local",
				}
				continue
			}
			if hops[dst] == math.MaxInt32 {
				return fmt.Errorf("topology %s: node %d unreachable from node %d", t.Name, dst, src)
			}
			// Reconstruct the route and find the bottleneck link.
			var route []LinkID
			bottleneck := Link{Capacity: math.Inf(1)}
			for v := NodeID(dst); v != NodeID(src); {
				l := t.Links[prev[v]]
				route = append(route, l.ID)
				if l.Capacity < bottleneck.Capacity {
					bottleneck = l
				}
				if l.A == v {
					v = l.B
				} else {
					v = l.A
				}
			}
			// route was built dst->src; reverse for src->dst order.
			for i, j := 0, len(route)-1; i < j; i, j = i+1, j-1 {
				route[i], route[j] = route[j], route[i]
			}
			t.routes[src][dst] = route
			t.costs[src][dst] = classify(NodeID(src), NodeID(dst), hops[dst], bottleneck)
			t.costs[src][dst].Hops = hops[dst]
		}
	}
	return nil
}

// NumNodes returns the number of multiprocessors.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumCores returns the total number of hardware contexts across all nodes.
func (t *Topology) NumCores() int { return t.totalCores }

// NodeOfCore maps a core to the multiprocessor it belongs to.
//
//eris:hotpath
func (t *Topology) NodeOfCore(c CoreID) NodeID { return t.coreNode[c] }

// CoresOfNode returns the half-open core range [first, last) owned by node.
func (t *Topology) CoresOfNode(n NodeID) (first, last CoreID) {
	first = t.nodeCore0[n]
	return first, first + CoreID(t.Nodes[n].Cores)
}

// Cost returns the calibrated access cost between a source and a home node.
//
//eris:hotpath
func (t *Topology) Cost(src, home NodeID) PairCost { return t.costs[src][home] }

// Route returns the link IDs traversed from src to home; empty when local.
//
//eris:hotpath
func (t *Topology) Route(src, home NodeID) []LinkID { return t.routes[src][home] }

// TotalLocalBandwidth sums the memory-controller bandwidth of all nodes; it
// is the theoretical aggregate scan bandwidth of a perfectly local workload.
func (t *Topology) TotalLocalBandwidth() float64 {
	var sum float64
	for i := range t.Nodes {
		sum += t.Nodes[i].LocalBandwidth
	}
	return sum
}

// TotalMemory sums the modeled local memory capacity of all nodes.
func (t *Topology) TotalMemory() int64 {
	var sum int64
	for i := range t.Nodes {
		sum += t.Nodes[i].MemoryBytes
	}
	return sum
}

// DistanceClasses returns the distinct remote distance classes of the
// machine ordered by latency, each with a representative pair. It powers the
// Table 2 reproduction.
func (t *Topology) DistanceClasses() []DistanceClass {
	type key struct{ class string }
	seen := make(map[string]*DistanceClass)
	var order []string
	for src := range t.Nodes {
		for dst := range t.Nodes {
			c := t.costs[src][dst]
			dc, ok := seen[c.Class]
			if !ok {
				dc = &DistanceClass{Class: c.Class, Cost: c, Src: NodeID(src), Dst: NodeID(dst)}
				seen[c.Class] = dc
				order = append(order, c.Class)
			}
			dc.Pairs++
		}
	}
	out := make([]DistanceClass, 0, len(order))
	for _, cl := range order {
		out = append(out, *seen[cl])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost.LatencyNS != out[j].Cost.LatencyNS {
			return out[i].Cost.LatencyNS < out[j].Cost.LatencyNS
		}
		return out[i].Cost.BandwidthGBs > out[j].Cost.BandwidthGBs
	})
	return out
}

// DistanceClass summarizes one row of the Table 2 reproduction: a distance
// class, its calibrated cost, one representative (src, dst) pair, and how
// many ordered node pairs fall into the class.
type DistanceClass struct {
	Class string
	Cost  PairCost
	Src   NodeID
	Dst   NodeID
	Pairs int
}

// Validate performs internal consistency checks; it is used by tests and by
// Machine construction in numasim.
func (t *Topology) Validate() error {
	n := len(t.Nodes)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			c := t.costs[src][dst]
			if c.LatencyNS <= 0 || c.BandwidthGBs <= 0 {
				return fmt.Errorf("topology %s: non-positive cost for pair %d->%d", t.Name, src, dst)
			}
			if (src == dst) != (c.Hops == 0) {
				return fmt.Errorf("topology %s: hop count %d inconsistent for pair %d->%d", t.Name, c.Hops, src, dst)
			}
			if len(t.routes[src][dst]) != c.Hops {
				return fmt.Errorf("topology %s: route length %d != hops %d for pair %d->%d",
					t.Name, len(t.routes[src][dst]), c.Hops, src, dst)
			}
		}
	}
	return nil
}
