package topology

import (
	"math"
	"testing"
)

func machines() map[string]*Topology {
	return map[string]*Topology{
		"intel":  Intel(),
		"amd":    AMD(),
		"sgi":    SGI(),
		"single": SingleNode(4),
		"mesh":   FullyConnected(3, 2, 20, 100, 8, 200, 10),
	}
}

func TestValidateAll(t *testing.T) {
	for name, topo := range machines() {
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCoreNodeMapping(t *testing.T) {
	for name, topo := range machines() {
		total := 0
		for n := range topo.Nodes {
			first, last := topo.CoresOfNode(NodeID(n))
			if int(last-first) != topo.Nodes[n].Cores {
				t.Errorf("%s node %d: core range [%d,%d) != %d cores", name, n, first, last, topo.Nodes[n].Cores)
			}
			for c := first; c < last; c++ {
				if topo.NodeOfCore(c) != NodeID(n) {
					t.Errorf("%s: core %d maps to node %d, want %d", name, c, topo.NodeOfCore(c), n)
				}
			}
			total += topo.Nodes[n].Cores
		}
		if total != topo.NumCores() {
			t.Errorf("%s: NumCores %d != sum %d", name, topo.NumCores(), total)
		}
	}
}

func TestIntelCalibration(t *testing.T) {
	topo := Intel()
	if got := topo.NumCores(); got != 40 {
		t.Fatalf("cores = %d, want 40", got)
	}
	local := topo.Cost(0, 0)
	if local.BandwidthGBs != 26.7 || local.LatencyNS != 129 {
		t.Errorf("local cost = %+v, want 26.7 GB/s / 129 ns", local)
	}
	remote := topo.Cost(0, 3)
	if remote.BandwidthGBs != 10.7 || remote.LatencyNS != 193 || remote.Hops != 1 {
		t.Errorf("remote cost = %+v, want 10.7 GB/s / 193 ns / 1 hop", remote)
	}
}

func TestAMDCalibration(t *testing.T) {
	topo := AMD()
	if topo.NumNodes() != 8 || topo.NumCores() != 64 {
		t.Fatalf("nodes=%d cores=%d, want 8/64", topo.NumNodes(), topo.NumCores())
	}
	// All six distance classes of Table 2 must be present.
	classes := map[string]bool{}
	for _, dc := range topo.DistanceClasses() {
		classes[dc.Class] = true
	}
	for _, want := range []string{
		"local",
		"1 hop HT (full link)",
		"1 hop HT (split,single)",
		"1 hop HT (split,dual)",
		"2 hop HT (split,single)",
		"2 hop HT (split,dual)",
	} {
		if !classes[want] {
			t.Errorf("missing distance class %q (have %v)", want, classes)
		}
	}
	// Socket-partner pairs use the full link.
	for _, pair := range [][2]NodeID{{0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		c := topo.Cost(pair[0], pair[1])
		if c.Class != "1 hop HT (full link)" || c.BandwidthGBs != 5.8 {
			t.Errorf("pair %v: %+v, want full link 5.8 GB/s", pair, c)
		}
	}
	// Diameter is two hops.
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if h := topo.Cost(NodeID(src), NodeID(dst)).Hops; h > 2 {
				t.Errorf("pair %d->%d: %d hops, want <= 2", src, dst, h)
			}
		}
	}
}

func TestSGICalibration(t *testing.T) {
	topo := SGI()
	if topo.NumNodes() != 64 || topo.NumCores() != 512 {
		t.Fatalf("nodes=%d cores=%d, want 64/512", topo.NumNodes(), topo.NumCores())
	}
	// Blade partners are the "2nd processor" class.
	c := topo.Cost(0, 1)
	if c.Class != "2nd processor" || c.BandwidthGBs != 9.5 || c.LatencyNS != 400 {
		t.Errorf("blade partner cost = %+v", c)
	}
	// Worst case must reach the 4-hop class: latency ratio to local ~ 10.7x,
	// bandwidth ratio ~ 5.5x (Section 2.2.3).
	worst := PairCost{}
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			pc := topo.Cost(NodeID(src), NodeID(dst))
			if pc.LatencyNS > worst.LatencyNS {
				worst = pc
			}
		}
	}
	if worst.LatencyNS != 870 || worst.BandwidthGBs != 6.5 {
		t.Errorf("worst-case cost = %+v, want 870 ns / 6.5 GB/s", worst)
	}
	local := topo.Cost(0, 0)
	if r := worst.LatencyNS / local.LatencyNS; math.Abs(r-10.7) > 0.1 {
		t.Errorf("latency ratio = %.2f, want ~10.7", r)
	}
	if r := local.BandwidthGBs / worst.BandwidthGBs; math.Abs(r-5.57) > 0.1 {
		t.Errorf("bandwidth ratio = %.2f, want ~5.5", r)
	}
}

func TestSGISubsetSizes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 61, 64} {
		topo := SGISubset(n)
		if err := topo.Validate(); err != nil {
			t.Errorf("subset %d: %v", n, err)
		}
		want := n
		if n%2 == 1 && n > 1 {
			want = n + 1
		}
		if topo.NumNodes() != want {
			t.Errorf("subset %d: got %d nodes, want %d", n, topo.NumNodes(), want)
		}
	}
}

func TestRoutesTraverseDeclaredLinks(t *testing.T) {
	for name, topo := range machines() {
		for src := 0; src < topo.NumNodes(); src++ {
			for dst := 0; dst < topo.NumNodes(); dst++ {
				route := topo.Route(NodeID(src), NodeID(dst))
				// The route must form a connected path from src to dst.
				at := NodeID(src)
				for _, lid := range route {
					l := topo.Links[lid]
					switch at {
					case l.A:
						at = l.B
					case l.B:
						at = l.A
					default:
						t.Fatalf("%s: route %d->%d: link %d does not touch node %d", name, src, dst, lid, at)
					}
				}
				if at != NodeID(dst) {
					t.Errorf("%s: route %d->%d ends at %d", name, src, dst, at)
				}
			}
		}
	}
}

func TestDistanceClassesCoverAllPairs(t *testing.T) {
	for name, topo := range machines() {
		total := 0
		for _, dc := range topo.DistanceClasses() {
			total += dc.Pairs
		}
		if want := topo.NumNodes() * topo.NumNodes(); total != want {
			t.Errorf("%s: distance classes cover %d pairs, want %d", name, total, want)
		}
	}
}

func TestSpecKnownMachines(t *testing.T) {
	if s := Spec(Intel()); s.Cores != "40 cores (80 HW threads)" {
		t.Errorf("intel spec cores = %q", s.Cores)
	}
	if s := Spec(AMD()); s.LLC != "12 MB LLC per socket (2 x 6 MB)" {
		t.Errorf("amd spec llc = %q", s.LLC)
	}
	if s := Spec(SGI()); s.Processors != "64x Intel Xeon E5-4650L" {
		t.Errorf("sgi spec processors = %q", s.Processors)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"intel", "amd", "sgi", "single"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("cray"); err == nil {
		t.Error("ByName(cray) should fail")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	good := Node{ID: 0, Cores: 1, LocalBandwidth: 1, LocalLatency: 1}
	if _, err := New("empty", nil, nil, 1, 1, nil); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := New("badid", []Node{{ID: 5, Cores: 1, LocalBandwidth: 1, LocalLatency: 1}}, nil, 1, 1, nil); err == nil {
		t.Error("non-dense node IDs accepted")
	}
	if _, err := New("selfloop", []Node{good}, []Link{{A: 0, B: 0, Capacity: 1}}, 1, 1, nil); err == nil {
		t.Error("self-loop link accepted")
	}
	two := []Node{good, {ID: 1, Cores: 1, LocalBandwidth: 1, LocalLatency: 1}}
	if _, err := New("disconnected", two, nil, 1, 1, nil); err == nil {
		t.Error("disconnected topology accepted")
	}
}
