package topology

import (
	"fmt"
	"strings"
)

// MachineSpec is one column of the paper's Table 1 (machine specification
// overview), derivable from a Topology plus the static interconnect notes.
type MachineSpec struct {
	Name         string
	Processors   string
	Cores        string
	Memory       string
	LLC          string
	Interconnect []string
	OS           string
}

// Spec reproduces the Table 1 column for the known machines; synthetic
// topologies get a generated description.
func Spec(t *Topology) MachineSpec {
	totalMem := float64(t.TotalMemory()) / float64(GiB)
	perNode := float64(t.Nodes[0].MemoryBytes) / float64(GiB)
	spec := MachineSpec{
		Name:   t.Name,
		Cores:  fmt.Sprintf("%d cores", t.NumCores()),
		Memory: fmt.Sprintf("%.0f GB memory (%.0f GB per node)", totalMem, perNode),
		LLC:    fmt.Sprintf("%.0f MB LLC per node", float64(t.Nodes[0].LLCBytes)/float64(MiB)),
	}
	switch {
	case strings.HasPrefix(t.Name, "Intel"):
		spec.Processors = "4x Intel Xeon E7-4860"
		spec.Cores = "40 cores (80 HW threads)"
		spec.Interconnect = []string{"QPI: 12.8 GB/s per link"}
		spec.OS = "Ubuntu 13.4 server (3.8.0-29)"
	case strings.HasPrefix(t.Name, "AMD"):
		spec.Processors = "4x AMD Opteron 6274 (dual node)"
		spec.LLC = "12 MB LLC per socket (2 x 6 MB)"
		spec.Interconnect = []string{"HyperTransport: 12.8 GB/s per link"}
		spec.OS = "Ubuntu 13.4 server (3.8.0-31)"
	case strings.HasPrefix(t.Name, "SGI"):
		spec.Processors = fmt.Sprintf("%dx Intel Xeon E5-4650L", t.NumNodes())
		spec.Interconnect = []string{
			"QPI: 16 GB/s to HARP",
			"NumaLink6: 2x 6.7 GB/s between HARPs",
		}
		spec.OS = "SLES 11 SP2 (3.0.93-0.5)"
	default:
		spec.Processors = fmt.Sprintf("%dx synthetic node", t.NumNodes())
		spec.Interconnect = []string{fmt.Sprintf("%d links", len(t.Links))}
		spec.OS = "simulated"
	}
	return spec
}
