// Package hwcounter is the software analogue of the hardware
// instrumentation the paper uses (likwid on Intel/AMD, linkstat-uv and
// VampirTrace on SGI): it snapshots the simulated machine's interconnect
// and memory-controller byte counters and the LLC simulator's hit/miss and
// MESIF-state counters over a measurement window, and renders the
// Figure 10/11/12 style reports.
package hwcounter

import (
	"fmt"
	"strings"

	"eris/internal/cache"
	"eris/internal/numasim"
)

// Session is an open measurement window.
type Session struct {
	machine *numasim.Machine
	epoch   *numasim.Epoch
	cache0  cache.Stats
}

// Start opens a window over machine's counters.
func Start(machine *numasim.Machine) *Session {
	s := &Session{machine: machine, epoch: machine.StartEpoch()}
	if cs := machine.Cache(); cs != nil {
		s.cache0 = cs.TotalStats()
	}
	return s
}

// Epoch exposes the underlying epoch for custom queries.
func (s *Session) Epoch() *numasim.Epoch { return s.epoch }

// Report closes the window (logically; the session can keep being read)
// and returns the counter deltas.
func (s *Session) Report() Report {
	r := Report{
		DurationSec: s.epoch.Duration(),
		Ops:         s.epoch.Ops(),
		LinkBytes:   s.epoch.TotalLinkBytes(),
		MCBytes:     s.epoch.TotalMCBytes(),
		BoundBy:     s.epoch.BoundBy(),
	}
	if r.DurationSec > 0 {
		r.Throughput = float64(r.Ops) / r.DurationSec
		r.LinkGBs = float64(r.LinkBytes) / r.DurationSec / 1e9
		r.MCGBs = float64(r.MCBytes) / r.DurationSec / 1e9
	}
	if cs := s.machine.Cache(); cs != nil {
		now := cs.TotalStats()
		r.HasCache = true
		r.Cache = diffCache(s.cache0, now)
	}
	return r
}

func diffCache(a, b cache.Stats) cache.Stats {
	var d cache.Stats
	d.Accesses = b.Accesses - a.Accesses
	d.Misses = b.Misses - a.Misses
	d.FromCache = b.FromCache - a.FromCache
	d.FromMemory = b.FromMemory - a.FromMemory
	d.Writebacks = b.Writebacks - a.Writebacks
	for i := range d.HitsByState {
		d.HitsByState[i] = b.HitsByState[i] - a.HitsByState[i]
	}
	return d
}

// Report is the counter summary of one window.
type Report struct {
	DurationSec float64
	Ops         int64
	Throughput  float64
	LinkBytes   int64
	LinkGBs     float64 // aggregate interconnect transfer rate (Figure 12)
	MCBytes     int64
	MCGBs       float64 // aggregate memory controller rate (Figure 12)
	BoundBy     string
	HasCache    bool
	Cache       cache.Stats
}

// MissRatio returns the LLC miss ratio of the window (Figure 10).
func (r Report) MissRatio() float64 { return r.Cache.MissRatio() }

// HitShare returns the fraction of LLC hits in the given MESIF states
// (Figure 11).
func (r Report) HitShare(states ...cache.State) float64 {
	return r.Cache.HitStateShare(states...)
}

// String renders a compact likwid-style report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "duration      %12.6f s (bound by %s)\n", r.DurationSec, r.BoundBy)
	fmt.Fprintf(&b, "operations    %12d (%.3e ops/s)\n", r.Ops, r.Throughput)
	fmt.Fprintf(&b, "link traffic  %12d B (%7.2f GB/s)\n", r.LinkBytes, r.LinkGBs)
	fmt.Fprintf(&b, "mem ctrl      %12d B (%7.2f GB/s)\n", r.MCBytes, r.MCGBs)
	if r.HasCache {
		fmt.Fprintf(&b, "LLC           %12d accesses, miss ratio %.3f\n", r.Cache.Accesses, r.MissRatio())
		fmt.Fprintf(&b, "  hits by state: M %.1f%%  E %.1f%%  S %.1f%%  F %.1f%%\n",
			100*r.HitShare(cache.Modified), 100*r.HitShare(cache.Exclusive),
			100*r.HitShare(cache.Shared), 100*r.HitShare(cache.Forward))
	}
	return b.String()
}
