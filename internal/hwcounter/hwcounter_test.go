package hwcounter

import (
	"strings"
	"testing"

	"eris/internal/cache"
	"eris/internal/numasim"
	"eris/internal/topology"
)

func TestSessionReport(t *testing.T) {
	m, err := numasim.New(topology.Intel(), numasim.Config{CacheScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm traffic before the window must not appear in the report.
	m.Stream(0, 1, 1000)
	m.Read(0, 1, m.Alloc(64), 64, 1)

	s := Start(m)
	addr := m.Alloc(64)
	m.Read(0, 2, addr, 64, 1) // miss from memory
	m.Read(0, 2, addr, 64, 1) // hit Exclusive
	m.Stream(0, 3, 4096)
	m.CountOps(0, 2)
	r := s.Report()

	if r.Ops != 2 {
		t.Errorf("ops = %d", r.Ops)
	}
	if r.LinkBytes != 64+4096 {
		t.Errorf("link bytes = %d", r.LinkBytes)
	}
	if r.MCBytes != 64+4096 {
		t.Errorf("mc bytes = %d", r.MCBytes)
	}
	if !r.HasCache {
		t.Fatal("cache stats missing")
	}
	if r.Cache.Accesses != 2 || r.Cache.Misses != 1 {
		t.Errorf("cache = %+v", r.Cache)
	}
	if r.MissRatio() != 0.5 {
		t.Errorf("miss ratio = %f", r.MissRatio())
	}
	if got := r.HitShare(cache.Exclusive); got != 1 {
		t.Errorf("E share = %f", got)
	}
	if r.Throughput <= 0 || r.LinkGBs <= 0 || r.MCGBs <= 0 {
		t.Errorf("rates: %+v", r)
	}
	out := r.String()
	for _, want := range []string{"duration", "link traffic", "LLC", "hits by state"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSessionWithoutCache(t *testing.T) {
	m, err := numasim.New(topology.SingleNode(2), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := Start(m)
	m.Stream(0, 0, 100)
	r := s.Report()
	if r.HasCache {
		t.Error("cache report on cache-less machine")
	}
	if strings.Contains(r.String(), "LLC") {
		t.Error("cache lines in report")
	}
}
