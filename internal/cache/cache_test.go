package cache

import (
	"math/rand"
	"testing"

	"eris/internal/topology"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(topology.FullyConnected(4, 2, 20, 100, 8, 200, 10), 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestColdMissThenHit(t *testing.T) {
	s := newTestSystem(t)
	const addr = 1 << 20
	r := s.Access(0, 1, addr, false)
	if r.Hit || r.FromCache {
		t.Fatalf("cold access: %+v, want memory miss", r)
	}
	r = s.Access(0, 1, addr, false)
	if !r.Hit || r.HitState != Exclusive {
		t.Fatalf("second access: %+v, want Exclusive hit", r)
	}
}

func TestWriteMakesModified(t *testing.T) {
	s := newTestSystem(t)
	const addr = 1 << 20
	s.Access(0, 0, addr, true)
	r := s.Access(0, 0, addr, false)
	if !r.Hit || r.HitState != Modified {
		t.Fatalf("after write: %+v, want Modified hit", r)
	}
}

func TestSharingProducesForwardAndShared(t *testing.T) {
	s := newTestSystem(t)
	const addr = 1 << 20
	s.Access(0, 2, addr, false) // node 0: Exclusive
	r := s.Access(1, 2, addr, false)
	if r.Hit || !r.FromCache || r.Source != 0 {
		t.Fatalf("node 1 first access: %+v, want forwarded from node 0", r)
	}
	// Node 1 now holds Forward, node 0 was downgraded to Shared.
	if r := s.Access(1, 2, addr, false); !r.Hit || r.HitState != Forward {
		t.Fatalf("node 1 re-access: %+v, want Forward hit", r)
	}
	if r := s.Access(0, 2, addr, false); !r.Hit || r.HitState != Shared {
		t.Fatalf("node 0 re-access: %+v, want Shared hit", r)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesOthers(t *testing.T) {
	s := newTestSystem(t)
	const addr = 1 << 20
	s.Access(0, 2, addr, false)
	s.Access(1, 2, addr, false)
	s.Access(2, 2, addr, true) // write invalidates nodes 0 and 1
	if r := s.Access(0, 2, addr, false); r.Hit {
		t.Fatalf("node 0 after remote write: %+v, want miss", r)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHitOnSharedUpgrades(t *testing.T) {
	s := newTestSystem(t)
	const addr = 1 << 20
	s.Access(0, 2, addr, false)
	s.Access(1, 2, addr, false) // 0: Shared, 1: Forward
	r := s.Access(0, 2, addr, true)
	if !r.Hit || r.HitState != Shared {
		t.Fatalf("write hit: %+v, want hit on Shared", r)
	}
	if r := s.Access(0, 2, addr, false); r.HitState != Modified {
		t.Fatalf("after upgrade: %+v, want Modified", r)
	}
	if r := s.Access(1, 2, addr, false); r.Hit {
		t.Fatalf("node 1 after upgrade: %+v, want invalidated", r)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionWritesBackDirtyLines(t *testing.T) {
	s := newTestSystem(t)
	c := &s.llcs[0]
	// Fill one set beyond capacity with writes; all map to the same set by
	// construction (stride = number of sets in line units is unknown after
	// hashing, so just blast enough distinct lines and look for writebacks).
	total := len(c.lines) * 4
	var sawWriteback bool
	for i := 0; i < total; i++ {
		r := s.Access(0, 0, uint64(i)<<6|1<<30, true)
		if r.WritebackBytes > 0 {
			sawWriteback = true
			if r.WritebackHome != 0 {
				t.Fatalf("writeback home = %d, want 0", r.WritebackHome)
			}
		}
	}
	if !sawWriteback {
		t.Fatal("no writeback observed despite overfilling the cache")
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newTestSystem(t)
	const addr = 1 << 22
	s.Access(0, 1, addr, false)
	s.Access(0, 1, addr, false)
	s.Access(0, 1, addr+64, false)
	st := s.NodeStats(0)
	if st.Accesses != 3 || st.Misses != 2 || st.Hits() != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MissRatio() < 0.66 || st.MissRatio() > 0.67 {
		t.Fatalf("miss ratio = %f", st.MissRatio())
	}
	if got := st.HitStateShare(Exclusive); got != 1.0 {
		t.Fatalf("exclusive hit share = %f, want 1", got)
	}
	s.ResetStats()
	if st := s.NodeStats(0); st.Accesses != 0 {
		t.Fatalf("after reset: %+v", st)
	}
}

func TestFlushEmptiesCaches(t *testing.T) {
	s := newTestSystem(t)
	s.Access(0, 1, 1<<20, false)
	s.Flush()
	if r := s.Access(0, 1, 1<<20, false); r.Hit {
		t.Fatalf("after flush: %+v, want miss", r)
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	s := newTestSystem(t)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		node := topology.NodeID(rng.Intn(4))
		home := topology.NodeID(rng.Intn(4))
		addr := uint64(rng.Intn(4096))<<6 | 1<<28
		s.Access(node, home, addr, rng.Intn(4) == 0)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	total := s.TotalStats()
	if total.Accesses != 20000 {
		t.Fatalf("total accesses = %d", total.Accesses)
	}
	if total.Misses != total.FromCache+total.FromMemory {
		t.Fatalf("misses %d != fromCache %d + fromMemory %d", total.Misses, total.FromCache, total.FromMemory)
	}
}

func TestScaleShrinksCapacity(t *testing.T) {
	topo := topology.Intel()
	full, err := New(topo, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := New(topo, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if full.CapacityLines(0) <= scaled.CapacityLines(0) {
		t.Fatalf("scaling did not shrink capacity: %d vs %d", full.CapacityLines(0), scaled.CapacityLines(0))
	}
}

func TestNewRejectsBadLineSize(t *testing.T) {
	topo := topology.SingleNode(1)
	for _, bad := range []int64{0, -64, 65, 100} {
		if _, err := New(topo, 1, bad); err == nil {
			t.Errorf("line size %d accepted", bad)
		}
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	s := newTestSystem(t)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(node topology.NodeID) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(node)))
			for i := 0; i < 5000; i++ {
				addr := uint64(rng.Intn(2048))<<6 | 1<<29
				s.Access(node, topology.NodeID(rng.Intn(4)), addr, rng.Intn(8) == 0)
			}
		}(topology.NodeID(g))
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
