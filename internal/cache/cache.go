// Package cache simulates the per-node last-level caches of a NUMA machine,
// including MESIF coherence states, so that the engine's memory accesses can
// be classified as LLC hits (by state) or misses (serviced from a remote
// cache or from memory). It powers the paper's Figure 10 (L3 miss ratio),
// Figure 11 (cache-line states of L3 hits) and the superlinear lookup
// scaling of Figure 1.
//
// The simulator is a set-associative cache per node over a synthetic
// address space (addresses are handed out by the numasim machine's
// allocator, so distinct allocations never alias). To keep scaled-down
// experiments faithful, the modeled LLC capacity is divided by the same
// factor as the data set (see numasim.Config.CacheScale): the
// cache-resident to memory-bound transition then happens at the same
// relative index size as on the real machine.
package cache

import (
	"fmt"
	"math/bits"
	"sync"

	"eris/internal/topology"
)

// State is a MESIF cache-line state.
type State uint8

// MESIF states. Invalid lines are absent from the cache.
const (
	Invalid State = iota
	Modified
	Exclusive
	Shared
	Forward
	numStates
)

// String returns the one-letter MESIF name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Modified:
		return "M"
	case Exclusive:
		return "E"
	case Shared:
		return "S"
	case Forward:
		return "F"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Result describes how one access was serviced.
type Result struct {
	// Hit is true when the line was present in the requesting node's LLC.
	Hit bool
	// HitState is the state the line was found in (valid only when Hit).
	HitState State
	// FromCache is set on a miss serviced by another node's cache
	// (forwarded line); Source is the forwarding node.
	FromCache bool
	Source    topology.NodeID
	// WritebackHome/WritebackBytes describe a dirty eviction triggered by
	// this access; WritebackBytes is zero when no writeback happened.
	WritebackHome  topology.NodeID
	WritebackBytes int64
}

// Stats are per-node access counters.
type Stats struct {
	Accesses    uint64
	Misses      uint64
	HitsByState [numStates]uint64
	FromCache   uint64 // misses serviced by a remote cache
	FromMemory  uint64 // misses serviced by DRAM
	Writebacks  uint64
}

// Hits returns the total hit count.
func (s *Stats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRatio returns misses/accesses, or 0 for an idle cache.
func (s *Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitStateShare returns the fraction of all hits that found the line in one
// of the given states (e.g. Modified+Exclusive for Figure 11).
func (s *Stats) HitStateShare(states ...State) float64 {
	hits := s.Hits()
	if hits == 0 {
		return 0
	}
	var n uint64
	for _, st := range states {
		n += s.HitsByState[st]
	}
	return float64(n) / float64(hits)
}

type line struct {
	tag   uint64 // full line address; 0 is never a valid tag (addr space starts above 0)
	home  uint8  // home node of the data
	state State
}

type llc struct {
	ways    int
	setMask uint64
	lines   []line // numSets * ways
	victim  []uint8
	stats   Stats
}

// System simulates the LLCs of all nodes of one machine.
//
// A single mutex guards the whole system: cross-node coherence transitions
// touch several LLCs at once, and the engine's host has no real parallelism
// to lose; the simple locking keeps the state machine obviously correct.
type System struct {
	mu        sync.Mutex
	topo      *topology.Topology
	llcs      []llc
	dir       map[uint64]uint64 // line address -> holder node bitmask
	lineBytes int64
	lineShift uint
}

// New builds a cache system for the topology. scale divides each node's
// modeled LLC capacity (use the data scale-down factor); lineBytes must be a
// power of two (64 matches the hardware).
func New(topo *topology.Topology, scale float64, lineBytes int64) (*System, error) {
	if scale < 1 {
		scale = 1
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d is not a positive power of two", lineBytes)
	}
	if topo.NumNodes() > 64 {
		return nil, fmt.Errorf("cache: directory bitmask supports at most 64 nodes, topology has %d", topo.NumNodes())
	}
	s := &System{
		topo:      topo,
		llcs:      make([]llc, topo.NumNodes()),
		dir:       make(map[uint64]uint64),
		lineBytes: lineBytes,
		lineShift: uint(bits.TrailingZeros64(uint64(lineBytes))),
	}
	for i := range s.llcs {
		n := &topo.Nodes[i]
		ways := n.LLCWays
		if ways <= 0 {
			ways = 16
		}
		capacity := int64(float64(n.LLCBytes) / scale)
		sets := capacity / (lineBytes * int64(ways))
		if sets < 4 {
			sets = 4
		}
		// Round down to a power of two for mask indexing.
		sets = int64(1) << (63 - bits.LeadingZeros64(uint64(sets)))
		s.llcs[i] = llc{
			ways:    ways,
			setMask: uint64(sets - 1),
			lines:   make([]line, sets*int64(ways)),
			victim:  make([]uint8, sets),
		}
	}
	return s, nil
}

// LineBytes returns the modeled cache line size.
func (s *System) LineBytes() int64 { return s.lineBytes }

// CapacityLines returns the number of lines node's modeled LLC can hold.
func (s *System) CapacityLines(node topology.NodeID) int { return len(s.llcs[node].lines) }

//eris:hotpath
func (s *System) setIndex(c *llc, lineAddr uint64) uint64 {
	// Fibonacci hashing spreads the synthetic (dense) address space.
	return (lineAddr * 0x9E3779B97F4A7C15) >> 32 & c.setMask
}

//eris:hotpath
func (c *llc) probe(set uint64, tag uint64) int {
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].tag == tag && c.lines[base+w].state != Invalid {
			return base + w
		}
	}
	return -1
}

// Access simulates one memory access of `node` to the cache line containing
// addr, whose data lives on home. It returns how the access was serviced.
// Accesses spanning multiple lines must be split by the caller.
//
//eris:hotpath
func (s *System) Access(node topology.NodeID, home topology.NodeID, addr uint64, write bool) Result {
	lineAddr := addr >> s.lineShift
	s.mu.Lock() //eris:allowblock coherence-simulator state is globally shared by design; bounded in-memory critical section
	defer s.mu.Unlock()

	c := &s.llcs[node]
	c.stats.Accesses++
	set := s.setIndex(c, lineAddr)
	if i := c.probe(set, lineAddr); i >= 0 {
		st := c.lines[i].state
		c.stats.HitsByState[st]++
		if write && st != Modified {
			if st == Shared || st == Forward {
				s.invalidateOthers(lineAddr, node)
			}
			c.lines[i].state = Modified
		}
		return Result{Hit: true, HitState: st}
	}

	// Miss: find where the data comes from, then install the line.
	c.stats.Misses++
	res := Result{Source: -1}
	holders := s.dir[lineAddr]
	otherHolders := holders &^ (1 << uint(node))
	if otherHolders != 0 {
		res.FromCache = true
		res.Source = topology.NodeID(bits.TrailingZeros64(otherHolders))
		c.stats.FromCache++
		if write {
			s.invalidateOthers(lineAddr, node)
		} else {
			// MESIF: the previous holders drop to Shared; the requester
			// receives the line in Forward state (it is the newest sharer
			// and will service the next request).
			s.downgradeOthers(lineAddr, node)
		}
	} else {
		c.stats.FromMemory++
	}

	newState := Exclusive
	switch {
	case write:
		newState = Modified
	case res.FromCache:
		newState = Forward
	}
	wbHome, wbBytes := s.install(node, c, set, lineAddr, uint8(home), newState)
	res.WritebackHome, res.WritebackBytes = wbHome, wbBytes
	if wbBytes > 0 {
		c.stats.Writebacks++
	}
	return res
}

// install places the line into the set, evicting the victim way, and
// returns writeback info for a dirty victim.
//
//eris:hotpath
func (s *System) install(node topology.NodeID, c *llc, set uint64, lineAddr uint64, home uint8, st State) (topology.NodeID, int64) {
	base := int(set) * c.ways
	way := -1
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].state == Invalid {
			way = base + w
			break
		}
	}
	var wbHome topology.NodeID = -1
	var wbBytes int64
	if way < 0 {
		// Round-robin victim selection within the set.
		v := c.victim[set]
		c.victim[set] = uint8((int(v) + 1) % c.ways)
		way = base + int(v)
		old := c.lines[way]
		s.removeHolder(old.tag, node)
		if old.state == Modified {
			wbHome, wbBytes = topology.NodeID(old.home), s.lineBytes
		}
	}
	c.lines[way] = line{tag: lineAddr, home: home, state: st}
	s.dir[lineAddr] |= 1 << uint(node)
	return wbHome, wbBytes
}

// invalidateOthers removes the line from every LLC except keep's.
//
//eris:hotpath
func (s *System) invalidateOthers(lineAddr uint64, keep topology.NodeID) {
	holders := s.dir[lineAddr] &^ (1 << uint(keep))
	for holders != 0 {
		n := bits.TrailingZeros64(holders)
		holders &^= 1 << uint(n)
		c := &s.llcs[n]
		set := s.setIndex(c, lineAddr)
		if i := c.probe(set, lineAddr); i >= 0 {
			c.lines[i].state = Invalid
		}
	}
	s.dir[lineAddr] &= 1 << uint(keep)
	if s.dir[lineAddr] == 0 {
		delete(s.dir, lineAddr)
	}
}

// downgradeOthers moves every other holder of the line to Shared.
//
//eris:hotpath
func (s *System) downgradeOthers(lineAddr uint64, requester topology.NodeID) {
	holders := s.dir[lineAddr] &^ (1 << uint(requester))
	for holders != 0 {
		n := bits.TrailingZeros64(holders)
		holders &^= 1 << uint(n)
		c := &s.llcs[n]
		set := s.setIndex(c, lineAddr)
		if i := c.probe(set, lineAddr); i >= 0 {
			// A Modified line is written back to memory when it drops to
			// Shared; we fold that writeback into the forwarding cost and
			// only track the state change here.
			c.lines[i].state = Shared
		}
	}
}

// removeHolder drops node from the directory entry of lineAddr.
//
//eris:hotpath
func (s *System) removeHolder(lineAddr uint64, node topology.NodeID) {
	if m, ok := s.dir[lineAddr]; ok {
		m &^= 1 << uint(node)
		if m == 0 {
			delete(s.dir, lineAddr)
		} else {
			s.dir[lineAddr] = m
		}
	}
}

// NodeStats returns a snapshot of node's counters.
func (s *System) NodeStats(node topology.NodeID) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.llcs[node].stats
}

// TotalStats sums the counters of all nodes.
func (s *System) TotalStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Stats
	for i := range s.llcs {
		st := &s.llcs[i].stats
		total.Accesses += st.Accesses
		total.Misses += st.Misses
		total.FromCache += st.FromCache
		total.FromMemory += st.FromMemory
		total.Writebacks += st.Writebacks
		for j := range st.HitsByState {
			total.HitsByState[j] += st.HitsByState[j]
		}
	}
	return total
}

// ResetStats zeroes all counters without touching cache contents, so a
// benchmark can exclude its warm-up phase.
func (s *System) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.llcs {
		s.llcs[i].stats = Stats{}
	}
}

// Flush empties every cache and the directory.
func (s *System) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.llcs {
		for j := range s.llcs[i].lines {
			s.llcs[i].lines[j] = line{}
		}
	}
	s.dir = make(map[uint64]uint64)
}

// checkInvariants verifies directory/LLC agreement; used by tests.
func (s *System) checkInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for lineAddr, mask := range s.dir {
		if mask == 0 {
			return fmt.Errorf("line %#x: empty directory entry", lineAddr)
		}
		m := mask
		var modified, fwd int
		for m != 0 {
			n := bits.TrailingZeros64(m)
			m &^= 1 << uint(n)
			c := &s.llcs[n]
			i := c.probe(s.setIndex(c, lineAddr), lineAddr)
			if i < 0 {
				return fmt.Errorf("line %#x: directory says node %d holds it, LLC disagrees", lineAddr, n)
			}
			switch c.lines[i].state {
			case Modified:
				modified++
			case Forward:
				fwd++
			}
		}
		if modified > 0 && bits.OnesCount64(mask) > 1 {
			return fmt.Errorf("line %#x: modified with %d holders", lineAddr, bits.OnesCount64(mask))
		}
		if fwd > 1 {
			return fmt.Errorf("line %#x: %d Forward holders", lineAddr, fwd)
		}
	}
	return nil
}
