package mem

import (
	"sync"
	"testing"

	"eris/internal/numasim"
	"eris/internal/topology"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	m, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(m)
}

func TestAllocHomesOnNode(t *testing.T) {
	s := newSystem(t)
	for n := 0; n < 4; n++ {
		b := s.Node(topology.NodeID(n)).Alloc(128)
		if !b.Valid() {
			t.Fatalf("node %d: invalid block %+v", n, b)
		}
		if b.Home != topology.NodeID(n) || b.Size != 128 {
			t.Fatalf("node %d: block %+v", n, b)
		}
	}
}

func TestFreeListReuse(t *testing.T) {
	s := newSystem(t)
	mgr := s.Node(0)
	b := mgr.Alloc(256)
	mgr.Free(b)
	b2 := mgr.Alloc(256)
	if b2.Addr != b.Addr {
		t.Errorf("freed block not reused: %#x vs %#x", b2.Addr, b.Addr)
	}
	if got := mgr.AllocatedBytes(); got != 256 {
		t.Errorf("allocated bytes = %d, want 256", got)
	}
}

func TestAccountingAndPeak(t *testing.T) {
	s := newSystem(t)
	mgr := s.Node(1)
	a := mgr.Alloc(100)
	b := mgr.Alloc(200)
	if got := mgr.AllocatedBytes(); got != 300 {
		t.Fatalf("allocated = %d", got)
	}
	mgr.Free(a)
	mgr.Free(b)
	if got := mgr.AllocatedBytes(); got != 0 {
		t.Fatalf("after free allocated = %d", got)
	}
	if got := mgr.PeakBytes(); got != 300 {
		t.Fatalf("peak = %d, want 300", got)
	}
}

func TestFreeWrongNodePanics(t *testing.T) {
	s := newSystem(t)
	b := s.Node(0).Alloc(64)
	defer func() {
		if recover() == nil {
			t.Error("freeing to wrong node manager did not panic")
		}
	}()
	s.Node(1).Free(b)
}

func TestCacheServesLocally(t *testing.T) {
	s := newSystem(t)
	mgr := s.Node(0)
	c := mgr.NewCache()
	b := c.Alloc(512)
	c.Free(b)
	before := mgr.Stats().LockAllocs
	b2 := c.Alloc(512)
	if b2.Addr != b.Addr {
		t.Errorf("cache did not recycle the block")
	}
	st := mgr.Stats()
	if st.LockAllocs != before {
		t.Errorf("cache hit took the shared lock")
	}
	if st.CacheHits == 0 {
		t.Errorf("cache hit not counted")
	}
}

func TestCacheSpillsWhenFull(t *testing.T) {
	s := newSystem(t)
	mgr := s.Node(0)
	c := mgr.NewCache()
	blocks := make([]Block, cacheSlots+4)
	for i := range blocks {
		blocks[i] = mgr.Alloc(64)
	}
	for _, b := range blocks {
		c.Free(b)
	}
	// All blocks freed: accounting must be back to zero whether a block sits
	// in the local cache or in the manager.
	if got := mgr.AllocatedBytes(); got != 0 {
		t.Errorf("allocated after frees = %d, want 0", got)
	}
}

func TestCacheFlush(t *testing.T) {
	s := newSystem(t)
	mgr := s.Node(0)
	c := mgr.NewCache()
	c.Free(mgr.Alloc(64))
	c.Flush()
	if got := mgr.AllocatedBytes(); got != 0 {
		t.Errorf("allocated after flush = %d", got)
	}
	// The flushed block must be reusable through the manager.
	b := mgr.Alloc(64)
	if !b.Valid() {
		t.Error("alloc after flush failed")
	}
}

func TestForCore(t *testing.T) {
	s := newSystem(t)
	topo := topology.Intel()
	for c := topology.CoreID(0); int(c) < topo.NumCores(); c += 10 {
		if got := s.ForCore(c).Node(); got != topo.NodeOfCore(c) {
			t.Errorf("core %d: manager node %d, want %d", c, got, topo.NodeOfCore(c))
		}
	}
}

func TestInterleavedAlloc(t *testing.T) {
	s := newSystem(t)
	blocks := s.InterleavedAlloc(8, 64)
	for i, b := range blocks {
		if b.Home != topology.NodeID(i%4) {
			t.Errorf("block %d homed on %d, want %d", i, b.Home, i%4)
		}
	}
}

func TestTotalAllocated(t *testing.T) {
	s := newSystem(t)
	s.Node(0).Alloc(100)
	s.Node(3).Alloc(50)
	if got := s.TotalAllocated(); got != 150 {
		t.Errorf("total = %d", got)
	}
}

func TestManagerConcurrency(t *testing.T) {
	s := newSystem(t)
	mgr := s.Node(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := mgr.Alloc(128)
				mgr.Free(b)
			}
		}()
	}
	wg.Wait()
	if got := mgr.AllocatedBytes(); got != 0 {
		t.Errorf("allocated = %d after balanced alloc/free", got)
	}
}

func TestAllocZeroPanics(t *testing.T) {
	s := newSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("Alloc(0) did not panic")
		}
	}()
	s.Node(0).Alloc(0)
}
