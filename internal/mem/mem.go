// Package mem implements the per-multiprocessor memory managers of ERIS
// (Section 3.1). A global memory manager is infeasible on a NUMA platform:
// it scatters a data object's memory across all nodes and becomes a
// contention point for write-heavy workloads. ERIS instead runs one manager
// per node, so every allocation an AEU makes is local to its multiprocessor
// and the load balancer can hand memory between AEUs of the same node with
// a pointer *link* instead of a copy. To scale with many cores per node,
// AEUs allocate through a thread-local Cache that batches refills from the
// node manager and recycles freed blocks without touching the shared lock.
//
// The managers deal in Blocks: extents of the machine's synthetic physical
// address space, each tagged with its home node. Consumers (the prefix-tree
// node slabs, column-store chunks, routing buffers) pair a Block with the
// real Go memory that backs it; the Block is what the cost model sees.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eris/internal/faults"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// Block is an extent of simulated node-local memory.
type Block struct {
	Addr uint64
	Size int64
	Home topology.NodeID
}

// Valid reports whether the block was produced by an allocator (the zero
// Block is not valid; address 0 is never allocated).
func (b Block) Valid() bool { return b.Addr != 0 && b.Size > 0 }

// Manager is the memory manager of one NUMA node. It is safe for
// concurrent use; AEUs should allocate through a Cache instead of calling
// the manager directly on hot paths.
type Manager struct {
	machine *numasim.Machine
	node    topology.NodeID
	faults  *faults.Injector

	mu   sync.Mutex
	free map[int64][]Block // recycled blocks by exact size

	// Statistics (atomic; read by monitors without the lock).
	allocBytes  atomic.Int64 // bytes handed out and not yet freed
	peakBytes   atomic.Int64
	lockAllocs  atomic.Int64 // allocations that took the shared lock
	cacheHits   atomic.Int64 // allocations served by AEU-local caches
	allocFaults atomic.Int64 // transient allocation failures absorbed
}

// NewManager builds the manager for one node of the machine.
func NewManager(machine *numasim.Machine, node topology.NodeID) *Manager {
	return &Manager{
		machine: machine,
		node:    node,
		free:    make(map[int64][]Block),
	}
}

// Node returns the NUMA node this manager allocates on.
func (m *Manager) Node() topology.NodeID { return m.node }

// Alloc returns a block of exactly size bytes homed on the manager's node.
// Transient allocation failure — a first-class concern for in-memory
// engines (Durner et al.) and an injectable fault here — is absorbed by the
// manager: it is counted (mem.node.<n>.alloc_failures) and retried as if a
// reclaim pass freed the memory, so callers never observe it.
func (m *Manager) Alloc(size int64) Block {
	if size <= 0 {
		panic(fmt.Sprintf("mem: Alloc(%d)", size))
	}
	for try := 0; try < 8 && m.faults.Should(faults.FailAlloc); try++ {
		m.allocFaults.Add(1)
	}
	m.lockAllocs.Add(1)
	m.mu.Lock()
	if list := m.free[size]; len(list) > 0 {
		b := list[len(list)-1]
		m.free[size] = list[:len(list)-1]
		m.mu.Unlock()
		m.account(size)
		return b
	}
	m.mu.Unlock()
	b := Block{Addr: m.machine.Alloc(size), Size: size, Home: m.node}
	m.account(size)
	return b
}

func (m *Manager) account(size int64) {
	now := m.allocBytes.Add(size)
	for {
		peak := m.peakBytes.Load()
		if now <= peak || m.peakBytes.CompareAndSwap(peak, now) {
			break
		}
	}
}

// Free returns a block to the manager's free list for reuse.
func (m *Manager) Free(b Block) {
	if !b.Valid() {
		return
	}
	if b.Home != m.node {
		panic(fmt.Sprintf("mem: freeing block homed on node %d to manager of node %d", b.Home, m.node))
	}
	m.allocBytes.Add(-b.Size)
	m.mu.Lock()
	m.free[b.Size] = append(m.free[b.Size], b)
	m.mu.Unlock()
}

// AllocatedBytes reports bytes currently handed out.
func (m *Manager) AllocatedBytes() int64 { return m.allocBytes.Load() }

// PeakBytes reports the high-water mark of allocated bytes.
func (m *Manager) PeakBytes() int64 { return m.peakBytes.Load() }

// Stats summarizes allocator activity.
type Stats struct {
	AllocatedBytes int64
	PeakBytes      int64
	LockAllocs     int64 // allocations that hit the shared manager
	CacheHits      int64 // allocations served entirely AEU-locally
	AllocFaults    int64 // transient allocation failures absorbed by retry
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		AllocatedBytes: m.allocBytes.Load(),
		PeakBytes:      m.peakBytes.Load(),
		LockAllocs:     m.lockAllocs.Load(),
		CacheHits:      m.cacheHits.Load(),
		AllocFaults:    m.allocFaults.Load(),
	}
}

// cacheSlots bounds how many blocks of one size a Cache keeps before
// spilling back to the manager, and how many it fetches per refill.
const cacheSlots = 8

// Cache is an AEU-local allocation cache over a node Manager. It is NOT
// safe for concurrent use: each AEU owns exactly one.
type Cache struct {
	mgr   *Manager
	local map[int64][]Block
}

// NewCache creates an AEU-local cache.
func (m *Manager) NewCache() *Cache {
	return &Cache{mgr: m, local: make(map[int64][]Block)}
}

// Manager returns the node manager backing this cache.
func (c *Cache) Manager() *Manager { return c.mgr }

// Alloc returns a block of exactly size bytes, preferring locally recycled
// blocks over the shared manager.
func (c *Cache) Alloc(size int64) Block {
	if list := c.local[size]; len(list) > 0 {
		b := list[len(list)-1]
		c.local[size] = list[:len(list)-1]
		c.mgr.cacheHits.Add(1)
		c.mgr.account(size)
		return b
	}
	return c.mgr.Alloc(size)
}

// Free recycles a block into the local cache, spilling to the manager when
// the local slot is full. Blocks homed on other nodes go straight to panic:
// an AEU must never free remote memory (cross-node transfers release memory
// on the source AEU's side).
func (c *Cache) Free(b Block) {
	if !b.Valid() {
		return
	}
	if b.Home != c.mgr.node {
		panic(fmt.Sprintf("mem: AEU cache on node %d freeing block homed on node %d", c.mgr.node, b.Home))
	}
	if len(c.local[b.Size]) < cacheSlots {
		c.mgr.allocBytes.Add(-b.Size)
		c.local[b.Size] = append(c.local[b.Size], b)
		return
	}
	c.mgr.Free(b)
}

// Flush spills all locally cached blocks back to the manager (used when an
// AEU shuts down).
func (c *Cache) Flush() {
	for size, list := range c.local {
		for _, b := range list {
			// Blocks in the local cache are already deducted from
			// allocBytes; re-account before handing them back.
			c.mgr.allocBytes.Add(b.Size)
			c.mgr.Free(b)
		}
		delete(c.local, size)
	}
}

// System bundles one Manager per node of a machine.
type System struct {
	machine  *numasim.Machine
	managers []*Manager
}

// NewSystem creates managers for every node of the machine.
func NewSystem(machine *numasim.Machine) *System {
	topo := machine.Topology()
	s := &System{machine: machine, managers: make([]*Manager, topo.NumNodes())}
	for i := range s.managers {
		s.managers[i] = NewManager(machine, topology.NodeID(i))
	}
	return s
}

// SetFaults arms every node manager with the engine's fault-injection
// registry; call before any allocation traffic. A nil injector disables
// the allocation hook.
func (s *System) SetFaults(inj *faults.Injector) {
	for _, m := range s.managers {
		m.faults = inj
	}
}

// Node returns the manager of one node.
func (s *System) Node(n topology.NodeID) *Manager { return s.managers[n] }

// ForCore returns the manager local to the node that core belongs to.
func (s *System) ForCore(c topology.CoreID) *Manager {
	return s.managers[s.machine.Topology().NodeOfCore(c)]
}

// Free returns a block to the manager of its home node.
func (s *System) Free(b Block) {
	if b.Valid() {
		s.managers[b.Home].Free(b)
	}
}

// TotalAllocated sums allocated bytes across all nodes.
func (s *System) TotalAllocated() int64 {
	var sum int64
	for _, m := range s.managers {
		sum += m.AllocatedBytes()
	}
	return sum
}

// RegisterMetrics publishes every node manager's counters on reg:
// allocation levels as gauges (mem.node.<n>.allocated_bytes, peak_bytes)
// and allocator activity as cumulative counters (mem.node.<n>.lock_allocs,
// cache_hits). The managers keep their own atomics; the registry reads them
// on snapshot, so the allocation hot path is untouched.
func (s *System) RegisterMetrics(reg *metrics.Registry) {
	for i, mgr := range s.managers {
		mgr := mgr
		prefix := fmt.Sprintf("mem.node.%d.", i)
		reg.GaugeFunc(prefix+"allocated_bytes", mgr.AllocatedBytes)
		reg.GaugeFunc(prefix+"peak_bytes", mgr.PeakBytes)
		reg.CounterFunc(prefix+"lock_allocs", mgr.lockAllocs.Load)
		reg.CounterFunc(prefix+"cache_hits", mgr.cacheHits.Load)
		reg.CounterFunc(prefix+"alloc_failures", mgr.allocFaults.Load)
	}
	reg.GaugeFunc("mem.allocated_bytes_total", s.TotalAllocated)
}

// InterleavedAlloc allocates n blocks of the given size round-robin across
// all nodes, modeling `numactl --interleave=all` for the NUMA-agnostic
// baseline.
func (s *System) InterleavedAlloc(n int, size int64) []Block {
	out := make([]Block, n)
	for i := range out {
		out[i] = s.managers[i%len(s.managers)].Alloc(size)
	}
	return out
}
