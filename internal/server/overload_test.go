package server_test

// Overload-control tests: the global admission budget sheds excess load
// with typed errors instead of queueing without bound, deadlines propagate
// end to end, old-protocol clients keep working, and a hostile handshake
// can neither hang a connection slot nor leak its goroutines.

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eris/internal/client"
	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/metrics"
	"eris/internal/prefixtree"
	"eris/internal/server"
	"eris/internal/topology"
	"eris/internal/wire"
)

// startServerOpts is startServer with caller-controlled server options.
func startServerOpts(t *testing.T, workers int, opts server.Options) (*core.Engine, *server.Server, string) {
	t.Helper()
	e, err := core.New(core.Config{
		Topology: topology.SingleNode(workers),
		Tree:     prefixtree.Config{KeyBits: 32, PrefixBits: 8},
		Column:   colstore.Config{ChunkEntries: 1 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex(idxObj, domain); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(idxObj, 4096, func(k uint64) uint64 { return k * 3 }); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	objects := []wire.ObjectInfo{{ID: uint32(idxObj), Kind: wire.KindIndex, Domain: domain, Name: "kv"}}
	srv := server.New(e, objects, opts)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		e.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		e.Stop()
	})
	return e, srv, srv.Addr()
}

// TestOverloadShedsAndPreservesAckedWrites is the overload e2e: a tiny
// global budget saturated by scan hogs must reject excess requests with
// wire.ErrOverloaded (within their deadline, not after unbounded
// queueing), requests that do get through must still answer correctly,
// and every write acknowledged under overload must be durable.
func TestOverloadShedsAndPreservesAckedWrites(t *testing.T) {
	eng, _, addr := startServerOpts(t, 4, server.Options{GlobalInFlight: 2, MaxQueue: 1})

	stop := make(chan struct{})
	var hogWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		hogWG.Add(1)
		go func() {
			defer hogWG.Done()
			c, err := client.Dial(addr, client.Options{OverloadRetries: -1})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			obj, _ := c.Object("kv")
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Full-domain scans hold the execution slots; overload
				// rejections here are expected and ignored.
				c.ScanRange(obj.ID, 0, domain-1, colstore.Predicate{Op: colstore.All})
			}
		}()
	}
	var stopOnce sync.Once
	stopHogs := func() {
		stopOnce.Do(func() { close(stop) })
		hogWG.Wait()
	}
	defer stopHogs()

	// An acked-write stream runs throughout: retried on overload, and
	// every key it saw acknowledged must be readable afterwards.
	var acked []uint64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		c, err := client.Dial(addr, client.Options{DefaultTimeout: 5 * time.Second})
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		obj, _ := c.Object("kv")
		for k := uint64(30000); k < 30200; k++ {
			if err := c.Upsert(obj.ID, []prefixtree.KV{{Key: k, Value: k + 7}}); err == nil {
				acked = append(acked, k)
			}
		}
	}()

	// Probes: bursts of concurrent lookups with a deadline and no retry.
	// Under a saturated 2-slot budget with a 1-deep queue, bursts of 8 must
	// eventually observe a typed overload rejection.
	probe, err := client.Dial(addr, client.Options{OverloadRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	obj, _ := probe.Object("kv")
	var sawOverload, sawSuccess atomic.Int64
	burstDeadline := time.Now().Add(10 * time.Second)
	for sawOverload.Load() == 0 || sawSuccess.Load() == 0 {
		if time.Now().After(burstDeadline) {
			t.Fatalf("no overload rejection observed: overloaded=%d success=%d",
				sawOverload.Load(), sawSuccess.Load())
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				defer cancel()
				start := time.Now()
				kvs, err := probe.LookupCtx(ctx, obj.ID, []uint64{uint64(i)})
				switch {
				case err == nil:
					if len(kvs) != 1 || kvs[0].Value != uint64(i)*3 {
						t.Errorf("lookup under overload answered wrong: %+v", kvs)
					}
					sawSuccess.Add(1)
				case errors.Is(err, wire.ErrOverloaded):
					// The reject must come fast — shedding, not queueing to
					// the deadline.
					if d := time.Since(start); d > 450*time.Millisecond {
						t.Errorf("overload rejection took %v, want immediate", d)
					}
					sawOverload.Add(1)
				case errors.Is(err, wire.ErrDeadlineExceeded):
					// Acceptable under saturation; keep probing for a shed.
				default:
					t.Errorf("unexpected probe error: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}

	stopHogs()
	<-writerDone

	if len(acked) == 0 {
		t.Fatal("no writes were acked under overload; test proves nothing")
	}
	kvs, err := eng.Lookup(idxObj, append([]uint64(nil), acked...))
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(acked) {
		t.Fatalf("%d acked writes, only %d readable", len(acked), len(kvs))
	}
	for _, kv := range kvs {
		if kv.Value != kv.Key+7 {
			t.Fatalf("acked write corrupted: %+v", kv)
		}
	}

	snap := eng.MetricsSnapshot()
	if snap.Counter("server.shed") == 0 {
		t.Error("server.shed never moved under saturation")
	}
	if snap.Counter("server.admitted") == 0 {
		t.Error("server.admitted never moved")
	}
}

// TestClientRetriesOverloadToSuccess saturates a one-slot budget briefly
// and checks the default retry policy rides out the rejection: the caller
// sees success, the retry counter moves.
func TestClientRetriesOverloadToSuccess(t *testing.T) {
	eng, _, addr := startServerOpts(t, 4, server.Options{GlobalInFlight: 1, MaxQueue: 1})

	_ = eng
	stop := make(chan struct{})
	var hogWG sync.WaitGroup
	// Two hog connections, each pipelining 4 concurrent scans: the 1-slot
	// budget stays saturated even while frames are in flight.
	hogConn, err := client.Dial(addr, client.Options{OverloadRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hogConn.Close()
	hobj, _ := hogConn.Object("kv")
	for i := 0; i < 8; i++ {
		hogWG.Add(1)
		go func() {
			defer hogWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hogConn.ScanRange(hobj.ID, 0, domain-1, colstore.Predicate{Op: colstore.All})
			}
		}()
	}

	reg := metrics.NewRegistry()
	c, err := client.Dial(addr, client.Options{
		OverloadRetries: 1000, RetryBackoff: 200 * time.Microsecond, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, _ := c.Object("kv")
	var retried bool
	deadline := time.Now().Add(10 * time.Second)
	for !retried && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := c.Lookup(obj.ID, []uint64{uint64(i)}); err != nil {
					t.Errorf("lookup with retries failed: %v", err)
				}
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			break
		}
		retried = reg.Counter("client.retries").Load() > 0
	}
	close(stop)
	hogWG.Wait()
	if !retried && !t.Failed() {
		t.Skip("budget never saturated on this machine; retry path not exercised")
	}
	if retried && reg.Counter("client.overloaded").Load() == 0 {
		t.Error("client.overloaded never moved despite retries")
	}
}

// TestServerDeadlineExceededCode hand-rolls a v2 connection and sends a
// request whose deadline has effectively already passed; the server must
// answer with a TError carrying the deadline-exceeded code — the request
// may never hang or be dropped without an answer.
func TestServerDeadlineExceededCode(t *testing.T) {
	_, _, addr := startServer(t, 2, 0, false)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := wire.Msg{Type: wire.THello, Magic: wire.Magic, Version: wire.Version}
	frame, _ := wire.AppendFrame(nil, &hello)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	var welcome wire.Msg
	if _, err := wire.ReadMsg(nc, &welcome, nil); err != nil || welcome.Version != wire.Version {
		t.Fatalf("handshake: %+v, %v", welcome, err)
	}

	// 1µs relative deadline: expired by any execution path.
	req := wire.Msg{Type: wire.TScan, Object: uint32(idxObj), Tag: 7, Lo: 0, Hi: domain - 1,
		Pred: colstore.Predicate{Op: colstore.All}, DeadlineUS: 1}
	frame, err = wire.AppendFrameV(nil, &req, wire.Version)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp wire.Msg
	if _, err := wire.ReadMsgV(nc, &resp, nil, wire.Version); err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TError || resp.Tag != 7 {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("reject code = %d, want %d (err %q)", resp.Code, wire.CodeDeadlineExceeded, resp.Err)
	}
	if !errors.Is(wire.ErrFromMsg(&resp), wire.ErrDeadlineExceeded) {
		t.Fatalf("ErrFromMsg = %v", wire.ErrFromMsg(&resp))
	}
}

// TestLegacyClientCompat pins protocol compatibility: a client capped at
// version 1 must handshake, read, write and scan against the new server
// exactly as before — even when the server applies a default deadline to
// its (deadline-less) requests.
func TestLegacyClientCompat(t *testing.T) {
	_, _, addr := startServerOpts(t, 4, server.Options{DefaultDeadline: 5 * time.Second})

	c, err := client.Dial(addr, client.Options{ProtocolVersion: wire.VersionLegacy})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != wire.VersionLegacy {
		t.Fatalf("negotiated version = %d, want %d", c.Version(), wire.VersionLegacy)
	}
	obj, ok := c.Object("kv")
	if !ok {
		t.Fatalf("object table: %+v", c.Objects())
	}
	if err := c.Upsert(obj.ID, []prefixtree.KV{{Key: 50000, Value: 9}}); err != nil {
		t.Fatal(err)
	}
	kvs, err := c.Lookup(obj.ID, []uint64{50000, 3})
	if err != nil || len(kvs) != 2 || kvs[0].Value != 9 || kvs[1].Value != 9 {
		t.Fatalf("legacy lookup = %+v, %v", kvs, err)
	}
	agg, err := c.ScanRange(obj.ID, 0, 10, colstore.Predicate{Op: colstore.All})
	if err != nil || agg.Matched != 11 {
		t.Fatalf("legacy scan = %+v, %v", agg, err)
	}
	// A v2 client on the same server negotiates up.
	c2, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Version() != wire.Version {
		t.Fatalf("v2 client negotiated %d", c2.Version())
	}
}

// TestHandshakeHardening drives the three hostile-handshake shapes —
// silent, truncated, oversized — and checks each connection is cut at (or
// before) the handshake timeout without leaking its goroutines.
func TestHandshakeHardening(t *testing.T) {
	_, _, addr := startServerOpts(t, 2, server.Options{HandshakeTimeout: 150 * time.Millisecond})

	before := runtime.NumGoroutine()
	cases := []struct {
		name string
		send func(nc net.Conn)
	}{
		{"absent", func(net.Conn) {}},
		{"truncated", func(nc net.Conn) {
			// A frame length promising more bytes than ever arrive.
			nc.Write([]byte{40, 0, 0, 0, byte(wire.THello), 1, 2, 3})
		}},
		{"oversized", func(nc net.Conn) {
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], wire.MaxFrame+9+1)
			nc.Write(hdr[:])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			tc.send(nc)
			// The server must close the connection by the handshake timeout
			// (plus slack), never serve past a bad hello.
			nc.SetReadDeadline(time.Now().Add(3 * time.Second))
			if _, err := io.ReadAll(nc); err != nil {
				t.Fatalf("connection not cleanly closed: %v", err)
			}
		})
	}

	// Both per-connection goroutines (reader, writer) must be gone.
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after handshake abuse",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
