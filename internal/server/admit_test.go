package server

// Regression tests for deadline handling in the admission controller: a
// request's deadline must be honored not just on arrival but also after it
// acquires a slot — the wait (or even just the scheduler) can carry it past
// the deadline, and executing it then only wastes engine work.

import (
	"errors"
	"testing"
	"time"

	"eris/internal/metrics"
	"eris/internal/wire"
)

// TestAdmitRechecksDeadlineAfterGrant hands the admitter a request whose
// deadline was valid at arrival time but has since passed (a stalled
// reader between arrival stamping and admission). The fast path used to
// admit it without re-checking; it must be rejected as expired, and the
// slot must be returned.
func TestAdmitRechecksDeadlineAfterGrant(t *testing.T) {
	a := newAdmitter(metrics.NewRegistry(), 1, 4)
	arrival := time.Now().Add(-20 * time.Millisecond)
	deadline := arrival.Add(10 * time.Millisecond) // unexpired at arrival, passed now

	err := a.admit(arrival, deadline, nil)
	if !errors.Is(err, wire.ErrDeadlineExceeded) {
		t.Fatalf("admit past deadline = %v, want ErrDeadlineExceeded", err)
	}
	if n := a.expired.Load(); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
	if n := a.admitted.Load(); n != 0 {
		t.Fatalf("admitted counter = %d, want 0", n)
	}

	// The rejected request must have returned its slot.
	if err := a.admit(time.Now(), time.Time{}, nil); err != nil {
		t.Fatalf("slot leaked by expired request: %v", err)
	}
	a.release(time.Millisecond)
}

// TestAdmitWaiterExpiredBeforeGrant races a queued waiter's expiry timer
// against a freed slot: both channel cases are ready, and the select picks
// arbitrarily. Whichever way it goes, an expired waiter must never be
// admitted, and the slot must survive.
func TestAdmitWaiterExpiredBeforeGrant(t *testing.T) {
	a := newAdmitter(metrics.NewRegistry(), 1, 4)
	for i := 0; i < 25; i++ {
		if err := a.admit(time.Now(), time.Time{}, nil); err != nil {
			t.Fatalf("iter %d: take slot: %v", i, err)
		}
		deadline := time.Now().Add(5 * time.Millisecond)
		done := make(chan error, 1)
		go func() { done <- a.admit(time.Now(), deadline, nil) }()
		time.Sleep(15 * time.Millisecond) // the waiter's deadline passes while queued
		a.release(time.Millisecond)       // now the slot and the expiry are both ready
		if err := <-done; !errors.Is(err, wire.ErrDeadlineExceeded) {
			t.Fatalf("iter %d: expired waiter admitted: %v", i, err)
		}
		// Whichever select case won, the slot must be back.
		if err := a.admit(time.Now(), time.Time{}, nil); err != nil {
			t.Fatalf("iter %d: slot lost: %v", i, err)
		}
		a.release(time.Millisecond)
	}
}
