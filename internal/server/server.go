// Package server is the eriswire TCP serving layer: it exposes a running
// engine (internal/core) over the length-prefixed binary protocol of
// internal/wire. Each connection gets a reader and a writer goroutine;
// requests decoded by the reader are dispatched to handler goroutines that
// call the engine's synchronous batch API directly — the decoded key and
// KV batches are handed to the engine as-is, never re-sliced — and each
// completed handler queues its tagged response to the writer, so responses
// leave in completion order, not arrival order. A per-connection in-flight
// semaphore bounds concurrent handlers: when a client pipelines more than
// MaxInFlight requests, the reader simply stops reading and TCP backpressure
// does the rest.
//
// Shutdown is a graceful drain: stop accepting, stop reading, finish every
// in-flight request, flush every queued response, then close. A write the
// server has acknowledged is therefore durable in the engine — clients may
// lose unanswered requests on shutdown, never acked ones.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"eris/internal/core"
	"eris/internal/faults"
	"eris/internal/metrics"
	"eris/internal/routing"
	"eris/internal/wire"
)

// Options tunes the serving layer.
type Options struct {
	// MaxInFlight bounds concurrently executing requests per connection
	// (default 64). Beyond it the connection's reader stalls, pushing back
	// on the client through TCP flow control.
	MaxInFlight int
	// GlobalInFlight bounds concurrently executing requests across ALL
	// connections (default 1024) — the admission-control budget. Requests
	// beyond it wait in a bounded queue or are shed with an overloaded
	// error instead of piling up in the engine.
	GlobalInFlight int
	// MaxQueue bounds how many admitted-but-waiting requests may queue for
	// a global slot (default GlobalInFlight). Beyond it requests are shed
	// immediately.
	MaxQueue int
	// DefaultDeadline, when non-zero, is applied to every request that
	// carries no deadline of its own (version 1 clients, version 2 clients
	// sending DeadlineUS = 0).
	DefaultDeadline time.Duration
	// HandshakeTimeout bounds how long a fresh connection may take to send
	// its Hello (default 5s).
	HandshakeTimeout time.Duration
	// Faults, when non-nil, threads the engine's deterministic fault
	// injector through the serving path (DropConn, SlowWrite).
	Faults *faults.Injector
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 64
	}
	if o.GlobalInFlight == 0 {
		o.GlobalInFlight = 1024
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = o.GlobalInFlight
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	return o
}

// Server serves one engine over TCP.
type Server struct {
	eng     *core.Engine
	objects []wire.ObjectInfo
	opts    Options
	faults  *faults.Injector
	admit   *admitter

	ln       net.Listener
	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup

	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining bool

	accepted   *metrics.Counter
	active     *metrics.Gauge
	requests   *metrics.Counter
	responses  *metrics.Counter
	errors     *metrics.Counter // requests answered with TError
	badFrames  *metrics.Counter // connections dropped on protocol errors
	dropsInj   *metrics.Counter // connections killed by the DropConn fault
	slowWrites *metrics.Counter // writes delayed by the SlowWrite fault
}

// slowWriteDelay is the stall injected per SlowWrite fault hit: long
// enough to back a pipelined connection up against its in-flight limit,
// short enough to keep chaos tests fast.
const slowWriteDelay = 2 * time.Millisecond

// New wraps a started engine. objects is the table announced to clients in
// the Welcome; the server answers requests for exactly these ids. Counters
// register on the engine's metrics registry under server.*.
func New(eng *core.Engine, objects []wire.ObjectInfo, opts Options) *Server {
	reg := eng.Metrics()
	opts = opts.withDefaults()
	return &Server{
		eng:        eng,
		objects:    objects,
		opts:       opts,
		faults:     opts.Faults,
		admit:      newAdmitter(reg, opts.GlobalInFlight, opts.MaxQueue),
		conns:      make(map[*conn]struct{}),
		accepted:   reg.Counter("server.accepted"),
		active:     reg.Gauge("server.active_conns"),
		requests:   reg.Counter("server.requests"),
		responses:  reg.Counter("server.responses"),
		errors:     reg.Counter("server.errors"),
		badFrames:  reg.Counter("server.bad_frames"),
		dropsInj:   reg.Counter("server.dropped_conns"),
		slowWrites: reg.Counter("server.slow_writes"),
	}
}

// Listen binds addr and starts accepting connections.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWG.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed (drain) or fatal
		}
		c := &conn{
			s: s, nc: nc,
			out:     make(chan []byte, s.opts.MaxInFlight),
			aborted: make(chan struct{}),
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.accepted.Inc()
		s.active.Add(1)
		s.connWG.Add(1)
		go c.serve()
	}
}

// Close drains the server: it stops accepting, stops reading on every
// connection, waits for in-flight requests to complete and their responses
// to flush, then closes the connections. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.acceptWG.Wait()
		s.connWG.Wait()
		return nil
	}
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.stopReading()
	}
	s.acceptWG.Wait()
	s.connWG.Wait()
	return nil
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.active.Add(-1)
}

// conn is one client connection.
type conn struct {
	s  *Server
	nc net.Conn
	// out carries encoded response frames from handlers to the writer.
	// The reader closes it only after every handler finished, so a send
	// from a handler can never hit a closed channel.
	out      chan []byte
	handlers sync.WaitGroup
	aborted  chan struct{} // closed by abort(); unblocks queued handlers
	abortOne sync.Once
	// version is the negotiated protocol version: min(client, server),
	// fixed by the handshake before the reader dispatches anything.
	version uint16
}

// stopReading makes the connection's reader return on its next read
// without touching in-flight work; the drain path calls it.
func (c *conn) stopReading() {
	c.nc.SetReadDeadline(time.Now())
}

// abort kills the connection immediately (protocol violation or DropConn
// fault): pending writes are abandoned, the peer sees a reset or EOF
// mid-stream but never a half frame followed by more data.
func (c *conn) abort() {
	c.abortOne.Do(func() {
		close(c.aborted)
		c.nc.Close()
	})
}

func (c *conn) serve() {
	defer c.s.connWG.Done()
	defer c.s.removeConn(c)

	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)

	if err := c.handshake(); err != nil {
		c.s.badFrames.Inc()
		c.abort()
	} else {
		c.readLoop()
	}
	// Reader is done (EOF, error, or drain): let in-flight handlers finish
	// and the writer flush their responses, then close the socket.
	c.handlers.Wait()
	close(c.out)
	<-writerDone
	c.nc.Close()
}

// handshake reads the client's Hello and answers with the object table.
// The Welcome carries the negotiated protocol version — min(client,
// server) — which both sides then frame with; a version 1 client keeps
// speaking exactly the protocol it always did.
func (c *conn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(c.s.opts.HandshakeTimeout))
	var m wire.Msg
	if _, err := wire.ReadMsg(c.nc, &m, nil); err != nil {
		return err
	}
	c.nc.SetReadDeadline(time.Time{})
	if m.Type != wire.THello || m.Magic != wire.Magic {
		return wire.ErrBadMagic
	}
	if m.Version < wire.VersionLegacy {
		return fmt.Errorf("server: protocol version %d, want %d-%d", m.Version, wire.VersionLegacy, wire.Version)
	}
	c.version = min(m.Version, wire.Version)
	welcome := wire.Msg{Type: wire.TWelcome, Version: c.version, Objects: c.s.objects}
	frame, err := wire.AppendFrame(nil, &welcome)
	if err != nil {
		return err
	}
	c.out <- frame
	return nil
}

func (c *conn) readLoop() {
	// The semaphore is the per-connection in-flight bound: acquired by the
	// reader before dispatch, released when the handler finished encoding
	// its response. A full semaphore stops the reader — backpressure.
	sem := make(chan struct{}, c.s.opts.MaxInFlight)
	var buf []byte
	for {
		var m wire.Msg
		var err error
		if buf, err = wire.ReadMsgV(c.nc, &m, buf, c.version); err != nil {
			// EOF and the drain deadline are normal ends; a frame the
			// codec rejected means the peer is corrupt — kill the
			// connection rather than resynchronize on a byte stream.
			if isProtocolErr(err) {
				c.s.badFrames.Inc()
				c.abort()
			}
			return
		}
		// The request's absolute deadline: the wire field is relative to
		// leaving the client, so its clock never needs to agree with ours.
		arrival := time.Now()
		var deadline time.Time
		if m.DeadlineUS > 0 {
			deadline = arrival.Add(time.Duration(m.DeadlineUS) * time.Microsecond)
		} else if c.s.opts.DefaultDeadline > 0 {
			deadline = arrival.Add(c.s.opts.DefaultDeadline)
		}
		select {
		case sem <- struct{}{}:
		case <-c.aborted:
			return
		}
		c.s.requests.Inc()
		c.handlers.Add(1)
		go func(m wire.Msg) {
			defer c.handlers.Done()
			defer func() { <-sem }()
			c.handle(&m, arrival, deadline)
		}(m)
	}
}

// isProtocolErr reports whether a read failed because the peer sent bytes
// the codec rejects (as opposed to the connection simply ending).
func isProtocolErr(err error) bool {
	return errors.Is(err, wire.ErrTruncated) || errors.Is(err, wire.ErrBadType) ||
		errors.Is(err, wire.ErrFrameSize) || errors.Is(err, wire.ErrTrailing) ||
		errors.Is(err, wire.ErrBadPred)
}

// handle admits one request against the global budget, executes it, and
// queues the tagged response. Shed or expired requests are answered with
// their typed reject code without ever touching the engine.
func (c *conn) handle(m *wire.Msg, arrival time.Time, deadline time.Time) {
	var resp wire.Msg
	if err := c.s.admit.admit(arrival, deadline, c.aborted); err != nil {
		resp = c.errMsg(err)
	} else {
		execStart := time.Now()
		resp = c.execute(m, deadline)
		c.s.admit.release(time.Since(execStart))
	}
	resp.Tag = m.Tag
	if c.s.faults.Should(faults.DropConn) {
		// Kill the connection in place of the response: the client must
		// observe a connection error, never a half-written frame.
		c.s.dropsInj.Inc()
		c.abort()
		return
	}
	frame, err := wire.AppendFrameV(nil, &resp, c.version)
	if err != nil {
		errMsg := wire.Msg{Type: wire.TError, Tag: m.Tag, Err: err.Error()}
		frame, _ = wire.AppendFrameV(nil, &errMsg, c.version)
	}
	select {
	case c.out <- frame:
		c.s.responses.Inc()
	case <-c.aborted:
	}
}

// execute maps one request onto the engine's synchronous client API. The
// decoded batches are passed through untouched; the deadline rides a
// context so the engine can expire work that outlives it.
func (c *conn) execute(m *wire.Msg, deadline time.Time) wire.Msg {
	ctx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	switch m.Type {
	case wire.TLookup:
		kvs, err := c.s.eng.LookupCtx(ctx, routing.ObjectID(m.Object), m.Keys)
		if err != nil {
			return c.errMsg(err)
		}
		return wire.Msg{Type: wire.TResult, KVs: kvs}
	case wire.TUpsert:
		if err := c.s.eng.UpsertCtx(ctx, routing.ObjectID(m.Object), m.KVs); err != nil {
			return c.errMsg(err)
		}
		return wire.Msg{Type: wire.TAck}
	case wire.TDelete:
		if err := c.s.eng.DeleteCtx(ctx, routing.ObjectID(m.Object), m.Keys); err != nil {
			return c.errMsg(err)
		}
		return wire.Msg{Type: wire.TAck}
	case wire.TScan:
		if m.Limit > 0 {
			rows, err := c.s.eng.ScanRangeRowsCtx(ctx, routing.ObjectID(m.Object), m.Lo, m.Hi, m.Pred, int(m.Limit))
			if err != nil {
				return c.errMsg(err)
			}
			return wire.Msg{Type: wire.TResult, KVs: rows}
		}
		agg, err := c.s.eng.ScanRangeCtx(ctx, routing.ObjectID(m.Object), m.Lo, m.Hi, m.Pred)
		if err != nil {
			return c.errMsg(err)
		}
		return wire.Msg{Type: wire.TAgg, Matched: agg.Matched, Sum: agg.Sum}
	case wire.TColScan:
		agg, err := c.s.eng.ScanCtx(ctx, routing.ObjectID(m.Object), m.Pred)
		if err != nil {
			return c.errMsg(err)
		}
		return wire.Msg{Type: wire.TAgg, Matched: agg.Matched, Sum: agg.Sum}
	default:
		return c.errMsg(fmt.Errorf("server: unexpected %v request", m.Type))
	}
}

func (c *conn) errMsg(err error) wire.Msg {
	c.s.errors.Inc()
	return wire.Msg{Type: wire.TError, Err: err.Error(), Code: rejectCode(err)}
}

// rejectCode classifies an error into the wire reject code its TError
// carries (meaningful on version ≥ 2; harmless on version 1, whose frames
// drop the byte).
func rejectCode(err error) uint8 {
	switch {
	case errors.Is(err, wire.ErrOverloaded):
		return wire.CodeOverloaded
	case errors.Is(err, wire.ErrDeadlineExceeded), errors.Is(err, core.ErrDeadlineExceeded):
		return wire.CodeDeadlineExceeded
	}
	return wire.CodeGeneric
}

// writeLoop owns the socket's write side: it serializes queued response
// frames, flushing whenever the queue runs empty, and exits when out is
// closed and drained.
func (c *conn) writeLoop(done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriter(c.nc)
	for frame := range c.out {
		if c.s.faults.Should(faults.SlowWrite) {
			c.s.slowWrites.Inc()
			time.Sleep(slowWriteDelay)
		}
		_, err := bw.Write(frame)
		if err == nil && len(c.out) == 0 {
			err = bw.Flush()
		}
		if err != nil {
			// Peer is gone; keep draining out so handlers never block on a
			// dead connection.
			for range c.out {
			}
			return
		}
	}
	bw.Flush()
}
