package server

import (
	"sync/atomic"
	"time"

	"eris/internal/metrics"
	"eris/internal/wire"
)

// admitter is the server-global admission controller: a fixed budget of
// execution slots shared by every connection, with a bounded wait queue in
// front of it. A request that cannot get a slot immediately either waits
// (bounded by the queue capacity and its deadline) or is shed with
// wire.ErrOverloaded — the server degrades by rejecting fast, never by
// queueing without bound.
//
// Shedding is deadline-aware: a request that would have to wait, whose
// remaining deadline is below the EWMA of recent service times, is
// rejected immediately — it would expire mid-queue anyway, so executing
// it only steals capacity from requests that can still make it.
type admitter struct {
	slots    chan struct{}
	queueCap int32
	waiting  atomic.Int32
	// ewmaNS tracks recent request service time (execution only, not queue
	// wait), nanoseconds, updated as new = old + (sample-old)/8.
	ewmaNS atomic.Int64

	admitted *metrics.Counter // requests that got a slot
	shed     *metrics.Counter // rejected with ErrOverloaded
	expired  *metrics.Counter // rejected/abandoned on their deadline
}

func newAdmitter(reg *metrics.Registry, slots, queue int) *admitter {
	a := &admitter{
		slots:    make(chan struct{}, slots),
		queueCap: int32(queue),
		admitted: reg.Counter("server.admitted"),
		shed:     reg.Counter("server.shed"),
		expired:  reg.Counter("server.expired"),
	}
	for i := 0; i < slots; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// admit blocks until the request may execute, it is shed, or it expires.
// deadline is zero for requests without one; aborted unblocks waiters of a
// dying connection. A nil error means a slot is held and release must be
// called when execution finishes.
func (a *admitter) admit(now time.Time, deadline time.Time, aborted <-chan struct{}) error {
	if !deadline.IsZero() && !now.Before(deadline) {
		// Expired on arrival (slow network, stalled reader): never execute.
		a.expired.Inc()
		return wire.ErrDeadlineExceeded
	}
	select {
	case <-a.slots:
		// Fast path: capacity is free, no shedding decision to make.
		if a.expireHolding(deadline) {
			return wire.ErrDeadlineExceeded
		}
		a.admitted.Inc()
		return nil
	default:
	}
	// The request must wait. Shed it right away when it is unlikely to get
	// its answer in time, or when the wait queue is at capacity.
	if !deadline.IsZero() {
		if ewma := a.ewmaNS.Load(); ewma > 0 && deadline.Sub(now) < time.Duration(ewma) {
			a.shed.Inc()
			return wire.ErrOverloaded
		}
	}
	if a.waiting.Add(1) > a.queueCap {
		a.waiting.Add(-1)
		a.shed.Inc()
		return wire.ErrOverloaded
	}
	defer a.waiting.Add(-1)

	var expire <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-a.slots:
		// The slot and the expiry can race: a waiter whose deadline passed
		// while queued may still win the slot (the select picks arbitrarily
		// among ready cases). Re-check before executing — a request that
		// waited past its deadline only wastes engine work on an answer
		// nobody reads.
		if a.expireHolding(deadline) {
			return wire.ErrDeadlineExceeded
		}
		a.admitted.Inc()
		return nil
	case <-expire:
		a.expired.Inc()
		return wire.ErrDeadlineExceeded
	case <-aborted:
		// The connection died while queued; the caller discards the reply
		// anyway, so classify as shed, not expired.
		a.shed.Inc()
		return wire.ErrOverloaded
	}
}

// expireHolding re-checks the deadline while a slot is held: true means the
// deadline passed, the slot was returned and the caller must reject the
// request with wire.ErrDeadlineExceeded instead of executing it.
func (a *admitter) expireHolding(deadline time.Time) bool {
	if deadline.IsZero() || time.Now().Before(deadline) {
		return false
	}
	a.slots <- struct{}{}
	a.expired.Inc()
	return true
}

// release returns the slot and feeds the request's execution time into the
// service-time EWMA the shedding decision uses.
func (a *admitter) release(serviceTime time.Duration) {
	sample := serviceTime.Nanoseconds()
	for {
		old := a.ewmaNS.Load()
		next := old + (sample-old)/8
		if old == 0 {
			next = sample
		}
		if a.ewmaNS.CompareAndSwap(old, next) {
			break
		}
	}
	a.slots <- struct{}{}
}
