package server_test

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"eris/internal/balance"
	"eris/internal/client"
	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/faults"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/server"
	"eris/internal/topology"
	"eris/internal/wire"
)

const (
	idxObj routing.ObjectID = 1
	domain uint64           = 1 << 16
)

// startServer brings up an engine with one dense-loaded index and a wire
// server on an ephemeral port, and tears both down at test end.
func startServer(t *testing.T, workers int, faultSeed int64, balancing bool) (*core.Engine, *server.Server, string) {
	t.Helper()
	e, err := core.New(core.Config{
		Topology:  topology.SingleNode(workers),
		Tree:      prefixtree.Config{KeyBits: 32, PrefixBits: 8},
		Column:    colstore.Config{ChunkEntries: 1 << 10},
		FaultSeed: faultSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex(idxObj, domain); err != nil {
		t.Fatal(err)
	}
	if balancing {
		if err := e.Watch(idxObj, balance.OneShot{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.LoadIndexDense(idxObj, 4096, func(k uint64) uint64 { return k * 3 }); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	objects := []wire.ObjectInfo{{ID: uint32(idxObj), Kind: wire.KindIndex, Domain: domain, Name: "kv"}}
	srv := server.New(e, objects, server.Options{Faults: e.Faults()})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		e.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		e.Stop()
	})
	return e, srv, srv.Addr()
}

// TestServeConcurrentClients is the acceptance e2e: 8 concurrent clients,
// each pipelining batched upserts and lookups on its own connection while
// the balancer reshapes partitions, and every remote result must match what
// the in-process client API returns afterwards.
func TestServeConcurrentClients(t *testing.T) {
	eng, _, addr := startServer(t, 8, 0, true)

	const (
		clients       = 8
		batches       = 20
		batch         = 32
		perClientSpan = 2048
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			obj, ok := c.Object("kv")
			if !ok || obj.Domain != domain {
				errs <- fmt.Errorf("client %d: bad object table %+v", cl, c.Objects())
				return
			}
			base := uint64(8192 + cl*perClientSpan)
			// Pipeline: half the batches are written by a second goroutine
			// concurrently on the same connection.
			var inner sync.WaitGroup
			writeRange := func(from, to int) {
				defer inner.Done()
				for b := from; b < to; b++ {
					kvs := make([]prefixtree.KV, batch)
					for i := range kvs {
						k := base + uint64(b*batch+i)
						kvs[i] = prefixtree.KV{Key: k, Value: k ^ uint64(cl)}
					}
					if err := c.Upsert(obj.ID, kvs); err != nil {
						errs <- fmt.Errorf("client %d upsert: %w", cl, err)
						return
					}
				}
			}
			inner.Add(2)
			go writeRange(0, batches/2)
			go writeRange(batches/2, batches)
			inner.Wait()

			// Read a slice of our keys back over the wire.
			keys := make([]uint64, 0, 64)
			for i := 0; i < 64; i++ {
				keys = append(keys, base+uint64(i*7))
			}
			got, err := c.Lookup(obj.ID, keys)
			if err != nil {
				errs <- fmt.Errorf("client %d lookup: %w", cl, err)
				return
			}
			want, err := eng.Lookup(idxObj, append([]uint64(nil), keys...))
			if err != nil {
				errs <- fmt.Errorf("client %d engine lookup: %w", cl, err)
				return
			}
			sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
			sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
			if len(got) != len(want) {
				errs <- fmt.Errorf("client %d: wire lookup %d rows, in-process %d", cl, len(got), len(want))
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Errorf("client %d row %d: wire %+v, in-process %+v", cl, i, got[i], want[i])
					return
				}
			}
			// Deletes round-trip too.
			if err := c.Delete(obj.ID, []uint64{base}); err != nil {
				errs <- fmt.Errorf("client %d delete: %w", cl, err)
				return
			}
			if kvs, err := c.Lookup(obj.ID, []uint64{base}); err != nil || len(kvs) != 0 {
				errs <- fmt.Errorf("client %d: key survives delete: %+v, %v", cl, kvs, err)
				return
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := eng.MetricsSnapshot()
	if snap.Counter("server.accepted") < clients {
		t.Errorf("server.accepted = %d, want >= %d", snap.Counter("server.accepted"), clients)
	}
	if snap.Counter("server.requests") == 0 || snap.Counter("server.responses") == 0 {
		t.Errorf("server counters silent: requests=%d responses=%d",
			snap.Counter("server.requests"), snap.Counter("server.responses"))
	}
	if snap.Counter("server.requests") != snap.Counter("server.responses") {
		t.Errorf("requests %d != responses %d with no drops configured",
			snap.Counter("server.requests"), snap.Counter("server.responses"))
	}
}

// TestGracefulDrainLosesNoAckedWrites closes the server mid-stream while a
// client hammers upserts. Every write the client saw acknowledged must be
// readable from the engine afterwards; unacknowledged ones may vanish.
func TestGracefulDrainLosesNoAckedWrites(t *testing.T) {
	eng, srv, addr := startServer(t, 4, 0, false)

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, _ := c.Object("kv")

	acked := make(chan uint64, 1<<16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := uint64(20000); ; k++ {
			err := c.Upsert(obj.ID, []prefixtree.KV{{Key: k, Value: k + 1}})
			if err != nil {
				return // drain reached us; this write was NOT acked
			}
			acked <- k
		}
	}()

	// Let some writes through, then drain concurrently with the stream.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	close(acked)

	var keys []uint64
	for k := range acked {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		t.Fatal("no writes were acked before the drain; test proves nothing")
	}
	kvs, err := eng.Lookup(idxObj, append([]uint64(nil), keys...))
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != len(keys) {
		t.Fatalf("%d acked writes, only %d readable after drain", len(keys), len(kvs))
	}
	for _, kv := range kvs {
		if kv.Value != kv.Key+1 {
			t.Fatalf("acked write corrupted: %+v", kv)
		}
	}
}

// TestDropConnFault arms the DropConn fault and checks that the client
// observes a connection error (never a corrupt frame) and the counter moves.
func TestDropConnFault(t *testing.T) {
	eng, _, addr := startServer(t, 4, 7, false)
	eng.Faults().Arm(faults.DropConn, faults.Rule{After: 3, Every: 1, Limit: 1})

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, _ := c.Object("kv")

	var failed bool
	for i := 0; i < 10; i++ {
		if _, err := c.Lookup(obj.ID, []uint64{uint64(i)}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("DropConn armed but no request failed")
	}
	if got := eng.Faults().Injected(faults.DropConn); got != 1 {
		t.Fatalf("injected DropConn = %d, want 1", got)
	}
	if n := eng.MetricsSnapshot().Counter("server.dropped_conns"); n != 1 {
		t.Fatalf("server.dropped_conns = %d, want 1", n)
	}
	// The connection is dead for good; a fresh one works.
	if _, err := c.Lookup(obj.ID, []uint64{1}); err == nil {
		t.Fatal("dropped connection still answers")
	}
	c2, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Lookup(obj.ID, []uint64{1}); err != nil {
		t.Fatalf("fresh connection after drop: %v", err)
	}
}

// TestSlowWriteFault arms SlowWrite on every response and checks responses
// still arrive, correctly, just late.
func TestSlowWriteFault(t *testing.T) {
	eng, _, addr := startServer(t, 4, 7, false)
	eng.Faults().Arm(faults.SlowWrite, faults.Rule{Every: 1, Limit: 8})

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, _ := c.Object("kv")
	for i := uint64(0); i < 8; i++ {
		kvs, err := c.Lookup(obj.ID, []uint64{i})
		if err != nil || len(kvs) != 1 || kvs[0].Value != i*3 {
			t.Fatalf("lookup %d under SlowWrite: %+v, %v", i, kvs, err)
		}
	}
	if n := eng.MetricsSnapshot().Counter("server.slow_writes"); n == 0 {
		t.Fatal("server.slow_writes never moved")
	}
}

// TestBadFrameKillsConnection sends garbage after a valid handshake; the
// server must cut the connection instead of resynchronizing, and count it.
func TestBadFrameKillsConnection(t *testing.T) {
	eng, _, addr := startServer(t, 2, 0, false)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := wire.Msg{Type: wire.THello, Magic: wire.Magic, Version: wire.Version}
	frame, err := wire.AppendFrame(nil, &hello)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	var welcome wire.Msg
	if _, err := wire.ReadMsg(nc, &welcome, nil); err != nil || welcome.Type != wire.TWelcome {
		t.Fatalf("handshake: %+v, %v", welcome, err)
	}

	// A frame with a bogus type byte.
	if _, err := nc.Write([]byte{9, 0, 0, 0, 0xff, 1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadAll(nc); err != nil {
		t.Fatalf("connection not cleanly closed: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.MetricsSnapshot().Counter("server.bad_frames") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server.bad_frames never moved")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolPipelines sanity-checks the pool: many goroutines sharing few
// connections, all batches answered.
func TestPoolPipelines(t *testing.T) {
	_, _, addr := startServer(t, 4, 0, false)
	pool, err := client.NewPool(addr, 2, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != 2 {
		t.Fatalf("pool size = %d", pool.Size())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := pool.Get()
			obj, _ := c.Object("kv")
			for i := 0; i < 10; i++ {
				k := uint64(g*100 + i)
				kvs, err := c.Lookup(obj.ID, []uint64{k})
				if err != nil || len(kvs) != 1 || kvs[0].Value != k*3 {
					errs <- fmt.Errorf("goroutine %d: lookup %d = %+v, %v", g, k, kvs, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
