package server_test

// History-checked e2e for the serving stack: recorded wire clients run a
// concurrent mixed workload — with connections being dropped under them —
// and every response that made it back over the wire must be explainable by
// a sequential execution of the map model. A second test arms the recorder's
// test-only stale-read fault to prove the checker actually has teeth at this
// layer (a checker that never fires proves nothing).

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"eris/internal/client"
	"eris/internal/colstore"
	"eris/internal/faults"
	"eris/internal/histcheck"
	"eris/internal/history"
	"eris/internal/prefixtree"
)

// TestServeHistoryLinearizable runs recorded wire clients against a
// balancing server while the DropConn fault severs connections mid-stream.
// Dropped calls record as Lost (writes) or errors (reads) — both sound for
// the checker — and clients redial and keep going, so the history spans
// connection lifetimes.
func TestServeHistoryLinearizable(t *testing.T) {
	const (
		clients  = 4
		opsPerCl = 150
		seedN    = 4096
	)
	eng, _, addr := startServer(t, 4, 11, true)
	eng.Faults().Arm(faults.DropConn, faults.Rule{After: 20, Every: 40, Limit: 4})

	initial := make([]prefixtree.KV, seedN)
	for k := range initial {
		initial[k] = prefixtree.KV{Key: uint64(k), Value: uint64(k) * 3}
	}

	rec := history.New(clients, 1<<13)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			log := rec.Client(cl)
			rng := rand.New(rand.NewSource(int64(500 + cl)))
			var w *history.WireClient
			dial := func() bool {
				c, err := client.Dial(addr, client.Options{})
				if err != nil {
					return false
				}
				obj, ok := c.Object("kv")
				if !ok {
					c.Close()
					return false
				}
				w = history.NewWireClient(c, obj.ID, log)
				return true
			}
			if !dial() {
				t.Errorf("client %d: initial dial failed", cl)
				return
			}
			key := func() uint64 { return uint64(rng.Intn(seedN)) }
			for i := 0; i < opsPerCl; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				var err error
				switch rng.Intn(8) {
				case 0, 1, 2:
					kvs := make([]prefixtree.KV, 3)
					for j := range kvs {
						kvs[j] = prefixtree.KV{Key: key(), Value: rng.Uint64() % 100000}
					}
					err = w.Upsert(ctx, kvs)
				case 3:
					err = w.Delete(ctx, []uint64{key()})
				case 4:
					lo := key() / 2
					_, err = w.ScanRange(ctx, lo, lo+99, colstore.Predicate{Op: colstore.All})
				default:
					_, err = w.Lookup(ctx, []uint64{key(), key(), key()})
				}
				cancel()
				if err != nil && !dial() {
					// Server unreachable; whatever was recorded still checks.
					return
				}
			}
		}(cl)
	}
	wg.Wait()

	res := histcheck.Check(rec, histcheck.Options{Initial: initial})
	if res.Dropped != 0 {
		t.Fatalf("recorder overflow: %d events dropped", res.Dropped)
	}
	if res.Ops == 0 || res.Scans == 0 {
		t.Fatalf("workload did not cover point ops and scans: %+v", res)
	}
	if len(res.Violations) > 0 {
		path, werr := histcheck.WriteViolations("../../results", "server-e2e", res, histcheck.Options{Initial: initial})
		t.Fatalf("%d linearizability violations over the wire (dump: %s, %v); first: %s",
			len(res.Violations), path, werr, res.Violations[0].Reason)
	}
	if eng.Faults().Injected(faults.DropConn) == 0 {
		t.Fatal("DropConn never fired; the run did not exercise connection loss")
	}
}

// TestServeHistoryCheckerHasTeeth arms the recorder's test-only stale-read
// fault on one wire client: the recorded values diverge from what the engine
// served, and the checker must flag it. This is the falsifiability proof for
// the whole wire-layer harness.
func TestServeHistoryCheckerHasTeeth(t *testing.T) {
	const seedN = 4096
	_, _, addr := startServer(t, 2, 0, false)

	initial := make([]prefixtree.KV, seedN)
	for k := range initial {
		initial[k] = prefixtree.KV{Key: uint64(k), Value: uint64(k) * 3}
	}

	rec := history.New(1, 1<<10)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, _ := c.Object("kv")
	w := history.NewWireClient(c, obj.ID, rec.Client(0))

	ctx := context.Background()
	if _, err := w.Lookup(ctx, []uint64{10, 11}); err != nil {
		t.Fatal(err)
	}
	w.CorruptReads(2)
	if _, err := w.Lookup(ctx, []uint64{20, 21}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Lookup(ctx, []uint64{30}); err != nil {
		t.Fatal(err)
	}

	res := histcheck.Check(rec, histcheck.Options{Initial: initial})
	if len(res.Violations) == 0 {
		t.Fatal("stale reads recorded but checker reported no violations: the harness has no teeth")
	}
	for _, v := range res.Violations {
		if v.Key != 20 && v.Key != 21 {
			t.Fatalf("violation on unexpected key %d: %s", v.Key, v.Reason)
		}
	}
}
