package client

// Regression tests for the overload retry backoff: the pre-fix code
// computed `RetryBackoff << attempt` before clamping, so a raised
// OverloadRetries overflowed the shift into a negative wait that slipped
// under the clamp — a zero-backoff retry storm that also bypassed the
// deadline-crossing check.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"eris/internal/metrics"
	"eris/internal/wire"
)

func TestBackoffLadder(t *testing.T) {
	const base = 500 * time.Microsecond
	want := []time.Duration{base, 2 * base, 4 * base, 8 * base, 16 * base, 16 * base}
	for attempt, w := range want {
		if got := backoffFor(base, attempt); got != w {
			t.Fatalf("backoffFor(%v, %d) = %v, want %v", base, attempt, got, w)
		}
	}
}

// TestBackoffNeverOverflows sweeps attempt counts far past the shift width
// and adversarial bases: every wait must stay positive, bounded by the
// cap, and monotone non-decreasing in the attempt.
func TestBackoffNeverOverflows(t *testing.T) {
	bases := []time.Duration{
		1, 500 * time.Microsecond, time.Second,
		1 << 40, 1 << 61, 1 << 62,
	}
	for _, base := range bases {
		cap := base * retryCapIntervals
		if cap < base {
			cap = base
		}
		prev := time.Duration(0)
		for attempt := 0; attempt <= 200; attempt++ {
			w := backoffFor(base, attempt)
			if w <= 0 {
				t.Fatalf("backoffFor(%v, %d) = %v, not positive", base, attempt, w)
			}
			if w > cap {
				t.Fatalf("backoffFor(%v, %d) = %v exceeds cap %v", base, attempt, w, cap)
			}
			if w < prev {
				t.Fatalf("backoffFor(%v, %d) = %v < previous %v, not monotone", base, attempt, w, prev)
			}
			prev = w
		}
	}
}

// overloadedServer is a minimal wire speaker that answers the handshake
// and then rejects every request with CodeOverloaded, so the client's
// retry loop can be driven for real without an engine.
func overloadedServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				var hello wire.Msg
				if _, err := wire.ReadMsg(nc, &hello, nil); err != nil || hello.Type != wire.THello {
					return
				}
				welcome := wire.Msg{
					Type: wire.TWelcome, Magic: wire.Magic, Version: wire.Version,
					Objects: []wire.ObjectInfo{{ID: 1, Kind: wire.KindIndex, Domain: 1 << 16, Name: "kv"}},
				}
				frame, err := wire.AppendFrame(nil, &welcome)
				if err != nil {
					return
				}
				if _, err := nc.Write(frame); err != nil {
					return
				}
				var buf []byte
				for {
					var m wire.Msg
					if buf, err = wire.ReadMsgV(nc, &m, buf, wire.Version); err != nil {
						return
					}
					rej := wire.Msg{Type: wire.TError, Tag: m.Tag, Code: wire.CodeOverloaded, Err: "overloaded"}
					out, err := wire.AppendFrameV(nil, &rej, wire.Version)
					if err != nil {
						return
					}
					if _, err := nc.Write(out); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestOverloadRetryStopsAtDeadline raises OverloadRetries far past the
// shift width against an always-overloaded server: the retry loop must
// keep backing off sanely and surface ErrDeadlineExceeded once the next
// wait would cross the shared deadline — never sleep negative, never spin,
// never outlive the caller's budget.
func TestOverloadRetryStopsAtDeadline(t *testing.T) {
	addr := overloadedServer(t)
	reg := metrics.NewRegistry()
	c, err := Dial(addr, Options{
		OverloadRetries: 1000,
		RetryBackoff:    2 * time.Millisecond,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.LookupCtx(ctx, 1, []uint64{42})
	elapsed := time.Since(start)
	if !errors.Is(err, wire.ErrDeadlineExceeded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("lookup under permanent overload = %v, want deadline error", err)
	}
	// The wait must never cross the shared deadline by more than the
	// scheduling slop of a single capped backoff interval.
	if elapsed > time.Second {
		t.Fatalf("retry loop outlived its deadline: %v elapsed for an 80ms budget", elapsed)
	}
	snap := reg.Snapshot()
	if snap.Counters["client.retries"] == 0 {
		t.Fatal("no overload retries recorded; the retry path was not exercised")
	}
}
