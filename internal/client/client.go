// Package client is the Go client for the eriswire protocol
// (internal/wire): a connection-pooled, pipelining front end to an
// internal/server instance. Every synchronous call tags its request,
// writes the frame and parks on a per-tag channel; a single reader
// goroutine per connection dispatches responses by tag, so any number of
// goroutines can keep batches in flight on one connection and responses
// may return in any order.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"eris/internal/colstore"
	"eris/internal/metrics"
	"eris/internal/prefixtree"
	"eris/internal/wire"
)

// ErrClosed is returned for calls on a closed client (or one whose
// connection died; the pending calls fail with the transport error).
var ErrClosed = errors.New("client: connection closed")

// Options tunes a client connection.
type Options struct {
	// DialTimeout bounds the TCP connect and the handshake (default 5s).
	DialTimeout time.Duration
	// Metrics, when non-nil, receives client.* counters; a pool's
	// connections share the registry passed to NewPool.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Client is one protocol connection. All methods are safe for concurrent
// use; concurrent calls pipeline onto the single connection.
type Client struct {
	nc      net.Conn
	objects []wire.ObjectInfo
	byName  map[string]wire.ObjectInfo

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	enc []byte // write-side encode scratch, guarded by wmu

	mu      sync.Mutex
	pending map[uint64]chan wire.Msg
	nextTag uint64
	err     error // terminal transport error; set once, then all calls fail
	closed  bool

	requests  *metrics.Counter
	errsCtr   *metrics.Counter
	connErrs  *metrics.Counter
	readerEnd sync.WaitGroup
}

// Dial connects, performs the handshake and starts the reader.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	hello := wire.Msg{Type: wire.THello, Magic: wire.Magic, Version: wire.Version}
	frame, err := wire.AppendFrame(nil, &hello)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if _, err := nc.Write(frame); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake write: %w", err)
	}
	var welcome wire.Msg
	if _, err := wire.ReadMsg(nc, &welcome, nil); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake read: %w", err)
	}
	if welcome.Type != wire.TWelcome {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %v", welcome.Type)
	}
	if welcome.Version != wire.Version {
		nc.Close()
		return nil, fmt.Errorf("client: protocol version %d, want %d", welcome.Version, wire.Version)
	}
	nc.SetDeadline(time.Time{})

	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Client{
		nc:       nc,
		objects:  welcome.Objects,
		byName:   make(map[string]wire.ObjectInfo, len(welcome.Objects)),
		bw:       bufio.NewWriter(nc),
		pending:  make(map[uint64]chan wire.Msg),
		requests: reg.Counter("client.requests"),
		errsCtr:  reg.Counter("client.errors"),
		connErrs: reg.Counter("client.conn_errors"),
	}
	for _, o := range welcome.Objects {
		c.byName[o.Name] = o
	}
	c.readerEnd.Add(1)
	go c.readLoop()
	return c, nil
}

// Objects returns the server's object table from the handshake.
func (c *Client) Objects() []wire.ObjectInfo { return c.objects }

// Object resolves an object by name.
func (c *Client) Object(name string) (wire.ObjectInfo, bool) {
	o, ok := c.byName[name]
	return o, ok
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.nc.Close()
	c.readerEnd.Wait()
	return nil
}

// readLoop dispatches responses to the per-tag channels until the
// connection ends; it then fails every pending call.
func (c *Client) readLoop() {
	defer c.readerEnd.Done()
	var buf []byte
	for {
		var m wire.Msg
		var err error
		if buf, err = wire.ReadMsg(c.nc, &m, buf); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[m.Tag]
		delete(c.pending, m.Tag)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// fail marks the connection dead and unblocks every pending call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			c.err = ErrClosed
		} else {
			c.err = fmt.Errorf("client: connection lost: %w", err)
			c.connErrs.Inc()
		}
	}
	pend := c.pending
	c.pending = make(map[uint64]chan wire.Msg)
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range pend {
		close(ch) // a closed channel yields the zero Msg: call sees c.err
	}
}

// roundTrip sends one tagged request and waits for its response.
func (c *Client) roundTrip(req *wire.Msg) (wire.Msg, error) {
	ch := make(chan wire.Msg, 1)
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return wire.Msg{}, err
	}
	c.nextTag++
	req.Tag = c.nextTag
	c.pending[req.Tag] = ch
	c.mu.Unlock()
	c.requests.Inc()

	c.wmu.Lock()
	enc, err := wire.AppendFrame(c.enc[:0], req)
	if err == nil {
		c.enc = enc
		_, err = c.bw.Write(enc)
		if err == nil {
			err = c.bw.Flush()
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}

	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return wire.Msg{}, err
	}
	if m.Type == wire.TError {
		c.errsCtr.Inc()
		return wire.Msg{}, fmt.Errorf("client: server error: %s", m.Err)
	}
	return m, nil
}

func (c *Client) expect(req *wire.Msg, want wire.Type) (wire.Msg, error) {
	m, err := c.roundTrip(req)
	if err != nil {
		return m, err
	}
	if m.Type != want {
		err := fmt.Errorf("client: unexpected %v response to %v", m.Type, req.Type)
		c.fail(err)
		return wire.Msg{}, err
	}
	return m, nil
}

// Lookup returns the found pairs for a batch of keys, sorted by key.
func (c *Client) Lookup(object uint32, keys []uint64) ([]prefixtree.KV, error) {
	m, err := c.expect(&wire.Msg{Type: wire.TLookup, Object: object, Keys: keys}, wire.TResult)
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Upsert writes a batch of pairs; a nil error means the engine applied it.
func (c *Client) Upsert(object uint32, kvs []prefixtree.KV) error {
	_, err := c.expect(&wire.Msg{Type: wire.TUpsert, Object: object, KVs: kvs}, wire.TAck)
	return err
}

// Delete removes a batch of keys.
func (c *Client) Delete(object uint32, keys []uint64) error {
	_, err := c.expect(&wire.Msg{Type: wire.TDelete, Object: object, Keys: keys}, wire.TAck)
	return err
}

// ScanAggregate mirrors core.ScanAggregate on the wire.
type ScanAggregate struct {
	Matched uint64
	Sum     uint64
}

// ScanRange aggregates index values in [lo, hi] matching pred.
func (c *Client) ScanRange(object uint32, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, error) {
	m, err := c.expect(&wire.Msg{Type: wire.TScan, Object: object, Lo: lo, Hi: hi, Pred: pred}, wire.TAgg)
	if err != nil {
		return ScanAggregate{}, err
	}
	return ScanAggregate{Matched: m.Matched, Sum: m.Sum}, nil
}

// ScanRows materializes up to limit matching rows of [lo, hi], sorted.
func (c *Client) ScanRows(object uint32, lo, hi uint64, pred colstore.Predicate, limit int) ([]prefixtree.KV, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("client: ScanRows needs a positive limit")
	}
	m, err := c.expect(&wire.Msg{Type: wire.TScan, Object: object, Lo: lo, Hi: hi, Pred: pred, Limit: uint32(limit)}, wire.TResult)
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// ColScan aggregates a column object's values matching pred.
func (c *Client) ColScan(object uint32, pred colstore.Predicate) (ScanAggregate, error) {
	m, err := c.expect(&wire.Msg{Type: wire.TColScan, Object: object, Pred: pred}, wire.TAgg)
	if err != nil {
		return ScanAggregate{}, err
	}
	return ScanAggregate{Matched: m.Matched, Sum: m.Sum}, nil
}

// Pool is a fixed-size pool of client connections to one server; Get hands
// them out round-robin. Use one pool per process and let concurrent
// goroutines share connections — each connection pipelines.
type Pool struct {
	clients []*Client
	next    uint64
	mu      sync.Mutex
}

// NewPool dials size connections to addr. On error, already-dialed
// connections are closed.
func NewPool(addr string, size int, opts Options) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	p := &Pool{clients: make([]*Client, 0, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Get returns a pooled connection (round-robin).
func (p *Pool) Get() *Client {
	p.mu.Lock()
	c := p.clients[p.next%uint64(len(p.clients))]
	p.next++
	p.mu.Unlock()
	return c
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.clients) }

// Close closes every pooled connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
