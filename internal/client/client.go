// Package client is the Go client for the eriswire protocol
// (internal/wire): a connection-pooled, pipelining front end to an
// internal/server instance. Every synchronous call tags its request,
// writes the frame and parks on a per-tag channel; a single reader
// goroutine per connection dispatches responses by tag, so any number of
// goroutines can keep batches in flight on one connection and responses
// may return in any order.
//
// Calls take per-request deadlines from their context (or from
// Options.DefaultTimeout); on protocol v2 connections the deadline rides
// the request frame so the server can shed work that cannot finish in
// time. A server rejection with wire.ErrOverloaded is retried with capped
// exponential backoff (the server sheds before executing, so retrying is
// always safe, including for writes); wire.ErrDeadlineExceeded and
// context expiry are surfaced as-is for the caller to decide.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"eris/internal/colstore"
	"eris/internal/metrics"
	"eris/internal/prefixtree"
	"eris/internal/wire"
)

// ErrClosed is returned for calls on a closed client (or one whose
// connection died; the pending calls fail with the transport error).
var ErrClosed = errors.New("client: connection closed")

// retryCapIntervals caps the exponential overload backoff at this many
// base intervals (the same shape as the balancer's fail-soft retry).
const retryCapIntervals = 16

// Options tunes a client connection.
type Options struct {
	// DialTimeout bounds the TCP connect and the handshake (default 5s).
	DialTimeout time.Duration
	// DefaultTimeout applies a per-request deadline to calls whose
	// context carries none (0 = requests without a context deadline
	// never time out locally).
	DefaultTimeout time.Duration
	// OverloadRetries is how many times a call rejected with
	// wire.ErrOverloaded is retried before the error is returned
	// (default 3; negative disables retry). Shed requests were never
	// executed, so retrying writes is safe.
	OverloadRetries int
	// RetryBackoff is the base of the capped exponential backoff between
	// overload retries (default 500µs; the cap is 16× the base).
	RetryBackoff time.Duration
	// ProtocolVersion caps the protocol version offered in the
	// handshake (default wire.Version). Set wire.VersionLegacy to mimic
	// an old client; the connection speaks min(server, this).
	ProtocolVersion uint16
	// Metrics, when non-nil, receives client.* counters; a pool's
	// connections share the registry passed to NewPool.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OverloadRetries == 0 {
		o.OverloadRetries = 3
	} else if o.OverloadRetries < 0 {
		o.OverloadRetries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 500 * time.Microsecond
	}
	if o.ProtocolVersion == 0 {
		o.ProtocolVersion = wire.Version
	}
	return o
}

// Client is one protocol connection. All methods are safe for concurrent
// use; concurrent calls pipeline onto the single connection.
type Client struct {
	nc      net.Conn
	objects []wire.ObjectInfo
	byName  map[string]wire.ObjectInfo
	version uint16 // negotiated protocol version
	opts    Options

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer
	enc []byte // write-side encode scratch, guarded by wmu

	mu      sync.Mutex
	pending map[uint64]chan wire.Msg
	nextTag uint64
	err     error // terminal transport error; set once, then all calls fail
	closed  bool

	requests   *metrics.Counter
	errsCtr    *metrics.Counter
	connErrs   *metrics.Counter
	timeouts   *metrics.Counter // calls abandoned on a local deadline
	retries    *metrics.Counter // overload retries performed
	overloaded *metrics.Counter // ErrOverloaded results (before retry)
	readerEnd  sync.WaitGroup
}

// Dial connects, performs the handshake and starts the reader.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if opts.ProtocolVersion < wire.VersionLegacy || opts.ProtocolVersion > wire.Version {
		return nil, fmt.Errorf("client: unsupported protocol version %d", opts.ProtocolVersion)
	}
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	hello := wire.Msg{Type: wire.THello, Magic: wire.Magic, Version: opts.ProtocolVersion}
	frame, err := wire.AppendFrame(nil, &hello)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if _, err := nc.Write(frame); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake write: %w", err)
	}
	var welcome wire.Msg
	if _, err := wire.ReadMsg(nc, &welcome, nil); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake read: %w", err)
	}
	if welcome.Type != wire.TWelcome {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %v", welcome.Type)
	}
	if welcome.Version < wire.VersionLegacy {
		nc.Close()
		return nil, fmt.Errorf("client: protocol version %d, want >= %d", welcome.Version, wire.VersionLegacy)
	}
	version := welcome.Version
	if opts.ProtocolVersion < version {
		version = opts.ProtocolVersion
	}
	nc.SetDeadline(time.Time{})

	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Client{
		nc:         nc,
		objects:    welcome.Objects,
		byName:     make(map[string]wire.ObjectInfo, len(welcome.Objects)),
		version:    version,
		opts:       opts,
		bw:         bufio.NewWriter(nc),
		pending:    make(map[uint64]chan wire.Msg),
		requests:   reg.Counter("client.requests"),
		errsCtr:    reg.Counter("client.errors"),
		connErrs:   reg.Counter("client.conn_errors"),
		timeouts:   reg.Counter("client.timeouts"),
		retries:    reg.Counter("client.retries"),
		overloaded: reg.Counter("client.overloaded"),
	}
	for _, o := range welcome.Objects {
		c.byName[o.Name] = o
	}
	c.readerEnd.Add(1)
	go c.readLoop()
	return c, nil
}

// Objects returns the server's object table from the handshake.
func (c *Client) Objects() []wire.ObjectInfo { return c.objects }

// Object resolves an object by name.
func (c *Client) Object(name string) (wire.ObjectInfo, bool) {
	o, ok := c.byName[name]
	return o, ok
}

// Version returns the negotiated protocol version.
func (c *Client) Version() uint16 { return c.version }

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.nc.Close()
	c.readerEnd.Wait()
	return nil
}

// readLoop dispatches responses to the per-tag channels until the
// connection ends; it then fails every pending call.
func (c *Client) readLoop() {
	defer c.readerEnd.Done()
	var buf []byte
	for {
		var m wire.Msg
		var err error
		if buf, err = wire.ReadMsgV(c.nc, &m, buf, c.version); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[m.Tag]
		delete(c.pending, m.Tag)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// fail marks the connection dead and unblocks every pending call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			c.err = ErrClosed
		} else {
			c.err = fmt.Errorf("client: connection lost: %w", err)
			c.connErrs.Inc()
		}
	}
	pend := c.pending
	c.pending = make(map[uint64]chan wire.Msg)
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range pend {
		close(ch) // a closed channel yields the zero Msg: call sees c.err
	}
}

// do runs one call with the context's deadline (or DefaultTimeout) and
// the overload retry policy. Every retry re-sends under a fresh tag but
// shares the original deadline — the backoff never extends a call past
// what the caller asked for.
func (c *Client) do(ctx context.Context, req *wire.Msg) (wire.Msg, error) {
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline && c.opts.DefaultTimeout > 0 {
		deadline, hasDeadline = time.Now().Add(c.opts.DefaultTimeout), true
	}
	for attempt := 0; ; attempt++ {
		m, err := c.roundTrip(ctx, req, deadline, hasDeadline)
		if err == nil || !errors.Is(err, wire.ErrOverloaded) {
			return m, err
		}
		c.overloaded.Inc()
		if attempt >= c.opts.OverloadRetries {
			return wire.Msg{}, err
		}
		wait := backoffFor(c.opts.RetryBackoff, attempt)
		if hasDeadline && time.Now().Add(wait).After(deadline) {
			// The backoff would outlive the deadline: the retry cannot
			// possibly succeed in time, report the timeout now.
			c.timeouts.Inc()
			return wire.Msg{}, fmt.Errorf("client: %w", wire.ErrDeadlineExceeded)
		}
		c.retries.Inc()
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return wire.Msg{}, ctx.Err()
		}
	}
}

// backoffFor returns the capped exponential backoff preceding overload
// retry attempt (0-based: the wait before the first retry is the base).
// Doubling stops the moment the cap is reached instead of shifting
// blindly, so a raised OverloadRetries can never overflow the backoff
// into a negative or absurd sleep — `base << attempt` goes negative past
// attempt ~34 for the default base, which used to slip under the clamp
// and turn the backoff into a zero-wait retry storm that also bypassed
// the deadline-crossing check.
func backoffFor(base time.Duration, attempt int) time.Duration {
	maxWait := base * retryCapIntervals
	if maxWait < base {
		// The cap itself overflowed (absurd configured base): the base is
		// already beyond any useful wait, use it as its own cap.
		maxWait = base
	}
	wait := base
	for i := 0; i < attempt; i++ {
		wait <<= 1
		if wait >= maxWait || wait <= 0 {
			return maxWait
		}
	}
	return wait
}

// roundTrip sends one tagged request and waits for its response, the
// context's cancellation or the call deadline, whichever is first. On v2
// connections the remaining deadline is stamped onto the frame so the
// server can shed the request when it cannot be served in time.
func (c *Client) roundTrip(ctx context.Context, req *wire.Msg, deadline time.Time, hasDeadline bool) (wire.Msg, error) {
	req.DeadlineUS = 0
	var expire <-chan time.Time
	if hasDeadline {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			c.timeouts.Inc()
			return wire.Msg{}, fmt.Errorf("client: %w", wire.ErrDeadlineExceeded)
		}
		if c.version >= 2 {
			us := remaining.Microseconds()
			if us < 1 {
				us = 1
			}
			if us > math.MaxUint32 {
				us = math.MaxUint32
			}
			req.DeadlineUS = uint32(us)
		}
		t := time.NewTimer(remaining)
		defer t.Stop()
		expire = t.C
	}

	ch := make(chan wire.Msg, 1)
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return wire.Msg{}, err
	}
	c.nextTag++
	req.Tag = c.nextTag
	c.pending[req.Tag] = ch
	c.mu.Unlock()
	c.requests.Inc()

	c.wmu.Lock()
	enc, err := wire.AppendFrameV(c.enc[:0], req, c.version)
	if err == nil {
		c.enc = enc
		_, err = c.bw.Write(enc)
		if err == nil {
			err = c.bw.Flush()
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}

	select {
	case m, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return wire.Msg{}, err
		}
		if m.Type == wire.TError {
			c.errsCtr.Inc()
			return wire.Msg{}, fmt.Errorf("client: server error: %w", wire.ErrFromMsg(&m))
		}
		return m, nil
	case <-expire:
		c.abandon(req.Tag)
		c.timeouts.Inc()
		return wire.Msg{}, fmt.Errorf("client: %w", wire.ErrDeadlineExceeded)
	case <-ctx.Done():
		c.abandon(req.Tag)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			c.timeouts.Inc()
			return wire.Msg{}, fmt.Errorf("client: %w", wire.ErrDeadlineExceeded)
		}
		return wire.Msg{}, ctx.Err()
	}
}

// abandon drops a pending tag whose caller gave up; a late response for
// it is discarded by the read loop.
func (c *Client) abandon(tag uint64) {
	c.mu.Lock()
	delete(c.pending, tag)
	c.mu.Unlock()
}

func (c *Client) expect(ctx context.Context, req *wire.Msg, want wire.Type) (wire.Msg, error) {
	m, err := c.do(ctx, req)
	if err != nil {
		return m, err
	}
	if m.Type != want {
		err := fmt.Errorf("client: unexpected %v response to %v", m.Type, req.Type)
		c.fail(err)
		return wire.Msg{}, err
	}
	return m, nil
}

// Lookup returns the found pairs for a batch of keys, sorted by key.
func (c *Client) Lookup(object uint32, keys []uint64) ([]prefixtree.KV, error) {
	return c.LookupCtx(context.Background(), object, keys)
}

// LookupCtx is Lookup bounded by the context's deadline.
func (c *Client) LookupCtx(ctx context.Context, object uint32, keys []uint64) ([]prefixtree.KV, error) {
	m, err := c.expect(ctx, &wire.Msg{Type: wire.TLookup, Object: object, Keys: keys}, wire.TResult)
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// Upsert writes a batch of pairs; a nil error means the engine applied it.
func (c *Client) Upsert(object uint32, kvs []prefixtree.KV) error {
	return c.UpsertCtx(context.Background(), object, kvs)
}

// UpsertCtx is Upsert bounded by the context's deadline.
func (c *Client) UpsertCtx(ctx context.Context, object uint32, kvs []prefixtree.KV) error {
	_, err := c.expect(ctx, &wire.Msg{Type: wire.TUpsert, Object: object, KVs: kvs}, wire.TAck)
	return err
}

// Delete removes a batch of keys.
func (c *Client) Delete(object uint32, keys []uint64) error {
	return c.DeleteCtx(context.Background(), object, keys)
}

// DeleteCtx is Delete bounded by the context's deadline.
func (c *Client) DeleteCtx(ctx context.Context, object uint32, keys []uint64) error {
	_, err := c.expect(ctx, &wire.Msg{Type: wire.TDelete, Object: object, Keys: keys}, wire.TAck)
	return err
}

// ScanAggregate mirrors core.ScanAggregate on the wire.
type ScanAggregate struct {
	Matched uint64
	Sum     uint64
}

// ScanRange aggregates index values in [lo, hi] matching pred.
func (c *Client) ScanRange(object uint32, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, error) {
	return c.ScanRangeCtx(context.Background(), object, lo, hi, pred)
}

// ScanRangeCtx is ScanRange bounded by the context's deadline.
func (c *Client) ScanRangeCtx(ctx context.Context, object uint32, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, error) {
	m, err := c.expect(ctx, &wire.Msg{Type: wire.TScan, Object: object, Lo: lo, Hi: hi, Pred: pred}, wire.TAgg)
	if err != nil {
		return ScanAggregate{}, err
	}
	return ScanAggregate{Matched: m.Matched, Sum: m.Sum}, nil
}

// ScanRows materializes up to limit matching rows of [lo, hi], sorted.
func (c *Client) ScanRows(object uint32, lo, hi uint64, pred colstore.Predicate, limit int) ([]prefixtree.KV, error) {
	return c.ScanRowsCtx(context.Background(), object, lo, hi, pred, limit)
}

// ScanRowsCtx is ScanRows bounded by the context's deadline.
func (c *Client) ScanRowsCtx(ctx context.Context, object uint32, lo, hi uint64, pred colstore.Predicate, limit int) ([]prefixtree.KV, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("client: ScanRows needs a positive limit")
	}
	m, err := c.expect(ctx, &wire.Msg{Type: wire.TScan, Object: object, Lo: lo, Hi: hi, Pred: pred, Limit: uint32(limit)}, wire.TResult)
	if err != nil {
		return nil, err
	}
	return m.KVs, nil
}

// ColScan aggregates a column object's values matching pred.
func (c *Client) ColScan(object uint32, pred colstore.Predicate) (ScanAggregate, error) {
	return c.ColScanCtx(context.Background(), object, pred)
}

// ColScanCtx is ColScan bounded by the context's deadline.
func (c *Client) ColScanCtx(ctx context.Context, object uint32, pred colstore.Predicate) (ScanAggregate, error) {
	m, err := c.expect(ctx, &wire.Msg{Type: wire.TColScan, Object: object, Pred: pred}, wire.TAgg)
	if err != nil {
		return ScanAggregate{}, err
	}
	return ScanAggregate{Matched: m.Matched, Sum: m.Sum}, nil
}

// Pool is a fixed-size pool of client connections to one server; Get hands
// them out round-robin. Use one pool per process and let concurrent
// goroutines share connections — each connection pipelines.
type Pool struct {
	clients []*Client
	next    uint64
	mu      sync.Mutex
}

// NewPool dials size connections to addr. On error, already-dialed
// connections are closed.
func NewPool(addr string, size int, opts Options) (*Pool, error) {
	if size <= 0 {
		size = 1
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	p := &Pool{clients: make([]*Client, 0, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Get returns a pooled connection (round-robin).
func (p *Pool) Get() *Client {
	p.mu.Lock()
	c := p.clients[p.next%uint64(len(p.clients))]
	p.next++
	p.mu.Unlock()
	return c
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.clients) }

// Close closes every pooled connection.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
