package core

import (
	"testing"
	"time"

	"eris/internal/balance"
	"eris/internal/faults"
)

// TestChaosDelayedEpochDone arms faults.DelayEpochDone by name — the generic
// chaos sweeps arm kinds through faults.Kinds(), which covers the behaviour
// but leaves no test naming the kind (the faulthook analyzer flags exactly
// that). A delayed epoch-done ack must not wedge a balance cycle: the parked
// ack is released one loop round later, so the cycle completes, no tuple is
// lost, and the delay is visible in the injector's accounting.
func TestChaosDelayedEpochDone(t *testing.T) {
	e := newChaosEngine(t)
	const domain = 4000
	if err := e.CreateIndex(chaosIdx, domain); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(chaosIdx, domain, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(chaosIdx, balance.OneShot{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	e.Faults().Arm(faults.DelayEpochDone, faults.Rule{Every: 2, Limit: 6})

	// Skew all accesses onto AEU 0 so sampling windows keep reporting an
	// imbalance until a cycle completes despite the delayed acks.
	p0 := e.AEUs()[0].Partition(chaosIdx)
	deadline := time.Now().Add(90 * time.Second)
	for {
		rep := e.Balancer().Report()
		if e.Faults().Injected(faults.DelayEpochDone) > 0 && rep.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery from delayed epoch-done acks: injected=%d report=%+v",
				e.Faults().Injected(faults.DelayEpochDone), rep)
		}
		for i := 0; i < 200; i++ {
			p0.RecordAccess()
		}
		time.Sleep(time.Millisecond)
	}
	e.Faults().DisarmAll()
	e.Stop()

	if got, err := e.TupleCount(chaosIdx); err != nil || got != domain {
		t.Fatalf("tuple conservation violated: %d of %d (%v)", got, domain, err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := e.MetricsSnapshot().Counters["faults.injected."+faults.DelayEpochDone.String()]; n == 0 {
		t.Fatal("faults.injected counter is empty")
	}
}
