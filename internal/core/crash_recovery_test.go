package core_test

// Crash/recovery property tests: a recorded concurrent workload runs on a
// durable engine (SyncWrites on) while the balancer cycles and periodic
// fuzzy checkpoints land; the engine is then hard-stopped at a
// fault-chosen log append with torn-write tails armed — no drain, no
// final checkpoint — and reopened from disk. Every write acknowledged
// before the crash must be visible to post-recovery reads; writes in
// flight at the crash may resolve either way. Both halves of the run feed
// one linearizability history, so the checker enforces exactly that.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"eris/internal/balance"
	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/durable"
	"eris/internal/faults"
	"eris/internal/histcheck"
	"eris/internal/history"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

const (
	crIdx routing.ObjectID = 7
	crCol routing.ObjectID = 8

	crDomain   = 4000
	crInitialN = 1500
	crColRows  = 1000
)

func crConfig(mgr *durable.Manager, inj *faults.Injector) core.Config {
	cfg := core.Config{
		Topology: topology.SingleNode(4),
		Tree:     prefixtree.Config{KeyBits: 32, PrefixBits: 8},
		Column:   colstore.Config{ChunkEntries: 64},
		Balance: balance.Config{
			SampleIntervalSec: 20e-6,
			Threshold:         0.2,
			PollReal:          100 * time.Microsecond,
			AckTimeout:        250 * time.Millisecond,
		},
		Durable:         mgr,
		CheckpointEvery: 50 * time.Millisecond,
	}
	cfg.Routing.Faults = inj
	return cfg
}

// buildDurableEngine creates, loads and watches the standard two objects.
func buildDurableEngine(t *testing.T, mgr *durable.Manager, inj *faults.Injector) *core.Engine {
	t.Helper()
	e, err := core.New(crConfig(mgr, inj))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex(crIdx, crDomain); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(crIdx, crInitialN, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(crIdx, balance.OneShot{}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateColumn(crCol); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, crColRows)
	for i := range vals {
		vals[i] = uint64(i)
	}
	e.AEUs()[0].Partition(crCol).Col.Append(0, vals)
	if err := e.Watch(crCol, balance.OneShot{}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCrashRecoveryHistory(t *testing.T) {
	var colSum uint64
	for v := uint64(0); v < crColRows; v++ {
		colSum += v
	}
	initial := make([]prefixtree.KV, crInitialN)
	for k := range initial {
		initial[k] = prefixtree.KV{Key: uint64(k), Value: uint64(k)}
	}

	// Each subtest crashes at a different append count: early (during the
	// first balancing storm), mid-run, and late (possibly after the
	// workload — then the crash is a plain hard stop).
	for _, after := range []int{100, 1200, 6000} {
		after := after
		t.Run(fmt.Sprintf("after%d", after), func(t *testing.T) {
			const (
				clients   = 3
				opsPerCl  = 300
				logEvents = 1 << 14
			)
			dir := t.TempDir()
			inj := faults.New(int64(42 + after))
			mgr, err := durable.Open(durable.Options{
				Dir: dir, SyncWrites: true, Faults: inj, TearSeed: int64(after),
			})
			if err != nil {
				t.Fatal(err)
			}
			e := buildDurableEngine(t, mgr, inj)
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			inj.Arm(faults.Crash, faults.Rule{After: after, Every: 1, Limit: 1})
			inj.Arm(faults.TornWrite, faults.Rule{Every: 1})
			// Transient write failures along the way: the group-commit
			// writer must retry the segment in place, never drop it and
			// advance the durable watermark past the lost records.
			inj.Arm(faults.FailWrite, faults.Rule{Every: 40, Limit: 25})

			rec := history.New(clients+1, logEvents)
			var wg sync.WaitGroup
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					log := rec.Client(cl)
					idxc := history.NewCoreClient(e, crIdx, log)
					colc := history.NewCoreClient(e, crCol, log)
					rng := rand.New(rand.NewSource(int64(1000 + cl)))
					key := func() uint64 {
						if rng.Intn(10) < 7 {
							return uint64(rng.Intn(600)) // hot range on AEU 0
						}
						return uint64(rng.Intn(2400))
					}
					for i := 0; i < opsPerCl; i++ {
						ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
						switch rng.Intn(10) {
						case 0, 1, 2, 3:
							kvs := make([]prefixtree.KV, 4)
							for j := range kvs {
								kvs[j] = prefixtree.KV{Key: key(), Value: rng.Uint64() % 100000}
							}
							idxc.Upsert(ctx, kvs)
						case 4:
							idxc.Delete(ctx, []uint64{key(), key()})
						case 5:
							colc.ColScan(ctx, colstore.Predicate{Op: colstore.All})
						default:
							keys := make([]uint64, 4)
							for j := range keys {
								keys[j] = key()
							}
							idxc.Lookup(ctx, keys)
						}
						cancel()
					}
				}(cl)
			}

			// Drive skew so balance cycles run, until the crash fault fires
			// (or the workload completes first — then crash anyway).
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			p0 := e.AEUs()[0].Partition(crIdx)
			deadline := time.Now().Add(90 * time.Second)
		driving:
			for !mgr.CrashRequested() {
				select {
				case <-done:
					break driving
				default:
				}
				if time.Now().After(deadline) {
					t.Fatal("workload never finished and crash fault never fired")
				}
				for i := 0; i < 200; i++ {
					p0.RecordAccess()
				}
				time.Sleep(time.Millisecond)
			}
			e.CrashStop()
			<-done

			// Reopen the directory and recover.
			mgr2, err := durable.Open(durable.Options{Dir: dir, SyncWrites: true})
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := mgr2.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if recovered == nil {
				t.Fatal("Recover found no checkpoint (Start writes one)")
			}
			e2, err := core.New(crConfig(mgr2, nil))
			if err != nil {
				t.Fatal(err)
			}
			if err := e2.Restore(recovered); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if err := e2.CheckInvariants(); err != nil {
				t.Fatalf("invariants after restore: %v", err)
			}
			if err := e2.Start(); err != nil {
				t.Fatal(err)
			}

			// Post-recovery reads land in the same history: every acked
			// pre-crash write must be explainable to the checker.
			log := rec.Client(clients)
			idxc := history.NewCoreClient(e2, crIdx, log)
			colc := history.NewCoreClient(e2, crCol, log)
			for lo := uint64(0); lo < crDomain; lo += 64 {
				keys := make([]uint64, 64)
				for j := range keys {
					keys[j] = lo + uint64(j)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				idxc.Lookup(ctx, keys)
				cancel()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			colc.ColScan(ctx, colstore.Predicate{Op: colstore.All})
			cancel()

			if err := e2.Close(); err != nil {
				t.Fatal(err)
			}
			if err := e2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			res := histcheck.Check(rec, histcheck.Options{
				Initial:      initial,
				ColumnStatic: true,
				ColumnBaseline: map[colstore.Predicate]histcheck.Agg{
					{Op: colstore.All}: {Matched: crColRows, Sum: colSum},
				},
			})
			if res.Dropped != 0 {
				t.Fatalf("recorder overflow: %d events dropped", res.Dropped)
			}
			if len(res.Violations) > 0 {
				path, werr := histcheck.WriteViolations("../../results", "crash-recovery", res, histcheck.Options{Initial: initial})
				t.Fatalf("%d durability violations (dump: %s, %v); first: %s",
					len(res.Violations), path, werr, res.Violations[0].Reason)
			}
			st := mgr2.Stats()
			t.Logf("crash after=%d: replayed %d records (%d bytes), torn tails %d, recovery %.1fms",
				after, st.ReplayRecords, st.ReplayBytes, st.TornTails,
				float64(st.RecoveryNS)/1e6)
		})
	}
}

// TestCheckpointDuringBalance hammers explicit checkpoints while both
// balancers actively move data, then recovers from the last one and
// verifies invariants and exact tuple-count conservation.
func TestCheckpointDuringBalance(t *testing.T) {
	dir := t.TempDir()
	mgr, err := durable.Open(durable.Options{Dir: dir, SyncWrites: false})
	if err != nil {
		t.Fatal(err)
	}
	e := buildDurableEngine(t, mgr, nil)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	// Writer keeps the WAL busy while checkpoints cut.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			kvs := []prefixtree.KV{
				{Key: uint64(rng.Intn(crInitialN)), Value: uint64(i)},
			}
			_ = e.Upsert(crIdx, kvs)
		}
	}()

	p0 := e.AEUs()[0].Partition(crIdx)
	deadline := time.Now().Add(60 * time.Second)
	ckpts := 0
	for ckpts < 15 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d checkpoints before deadline", ckpts)
		}
		for i := 0; i < 500; i++ {
			p0.RecordAccess()
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", ckpts, err)
		}
		ckpts++
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	wantIdx, err := e.TupleCount(crIdx)
	if err != nil {
		t.Fatal(err)
	}
	wantCol, err := e.TupleCount(crCol)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := durable.Open(durable.Options{Dir: dir, SyncWrites: false})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := mgr2.Recover()
	if err != nil || recovered == nil {
		t.Fatalf("Recover: %v (%v)", err, recovered)
	}
	e2, err := core.New(crConfig(mgr2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(recovered); err != nil {
		t.Fatal(err)
	}
	if err := e2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after restore: %v", err)
	}
	gotIdx, err := e2.TupleCount(crIdx)
	if err != nil {
		t.Fatal(err)
	}
	gotCol, err := e2.TupleCount(crCol)
	if err != nil {
		t.Fatal(err)
	}
	if gotIdx != wantIdx || gotCol != wantCol {
		t.Fatalf("tuple counts not conserved: index %d->%d, column %d->%d",
			wantIdx, gotIdx, wantCol, gotCol)
	}
	mgr2.Close()
}
