package core

import (
	"testing"
	"time"

	"eris/internal/aeu"
	"eris/internal/balance"
	"eris/internal/colstore"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
	"eris/internal/workload"
)

const (
	idxObj routing.ObjectID = 1
	colObj routing.ObjectID = 2
)

func newEngine(t testing.TB, topo *topology.Topology) *Engine {
	t.Helper()
	e, err := New(Config{
		Topology: topo,
		Tree:     prefixtree.Config{KeyBits: 32, PrefixBits: 8},
		Column:   colstore.Config{ChunkEntries: 1 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineLifecycleAndClientOps(t *testing.T) {
	e := newEngine(t, topology.SingleNode(4))
	defer e.Stop()
	if err := e.CreateIndex(idxObj, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateColumn(colObj); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(idxObj, 1000, func(k uint64) uint64 { return k * 2 }); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadColumnUniform(colObj, 500, func(a int, i int64) uint64 { return uint64(i) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double start accepted")
	}

	// Lookup found and missing keys.
	kvs, err := e.Lookup(idxObj, []uint64{5, 999, 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != 5 || kvs[0].Value != 10 || kvs[1].Key != 999 {
		t.Fatalf("lookup = %+v", kvs)
	}

	// Upsert then re-read.
	if err := e.Upsert(idxObj, []prefixtree.KV{{Key: 1500, Value: 77}, {Key: 5, Value: 11}}); err != nil {
		t.Fatal(err)
	}
	kvs, err = e.Lookup(idxObj, []uint64{5, 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Value != 11 || kvs[1].Value != 77 {
		t.Fatalf("after upsert = %+v", kvs)
	}

	// Column scan: values 0..499 per AEU, 4 AEUs.
	agg, err := e.Scan(colObj, colstore.Predicate{Op: colstore.Less, Operand: 100})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Matched != 400 {
		t.Fatalf("scan matched %d", agg.Matched)
	}

	// Index range scan.
	ragg, err := e.ScanRange(idxObj, 10, 19, colstore.Predicate{Op: colstore.All})
	if err != nil {
		t.Fatal(err)
	}
	if ragg.Matched != 10 {
		t.Fatalf("range scan matched %d", ragg.Matched)
	}

	// Row-returning index scan (query-processing primitive).
	rows, err := e.ScanRangeRows(idxObj, 10, 19, colstore.Predicate{Op: colstore.All}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || rows[0].Key != 10 || rows[0].Value != 20 || rows[9].Key != 19 {
		t.Fatalf("rows = %+v", rows)
	}
	// The limit caps the materialized result.
	rows, err = e.ScanRangeRows(idxObj, 0, 999, colstore.Predicate{Op: colstore.All}, 5)
	if err != nil || len(rows) != 5 {
		t.Fatalf("limited rows = %d, %v", len(rows), err)
	}
	if _, err := e.ScanRangeRows(idxObj, 0, 9, colstore.Predicate{}, 0); err == nil {
		t.Fatal("zero limit accepted")
	}
	if _, err := e.ScanRangeRows(colObj, 0, 9, colstore.Predicate{}, 5); err == nil {
		t.Fatal("rows scan on column accepted")
	}
	e.Stop()
	e.Stop() // idempotent
}

func TestEngineErrors(t *testing.T) {
	e := newEngine(t, topology.SingleNode(2))
	defer e.Stop()
	if err := e.CreateIndex(idxObj, 1); err == nil {
		t.Error("tiny domain accepted")
	}
	if err := e.CreateIndex(idxObj, 1<<40); err == nil {
		t.Error("domain beyond key bits accepted")
	}
	if err := e.CreateIndex(idxObj, 1000); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex(idxObj, 1000); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := e.Lookup(idxObj, []uint64{1}); err == nil {
		t.Error("lookup before start accepted")
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateColumn(colObj); err == nil {
		t.Error("DDL after start accepted")
	}
	if _, err := e.Lookup(colObj, []uint64{1}); err == nil {
		t.Error("lookup on unknown object accepted")
	}
	if _, err := e.Lookup(idxObj, []uint64{5000}); err == nil {
		t.Error("out-of-domain key accepted")
	}
}

func TestGeneratorWorkload(t *testing.T) {
	e := newEngine(t, topology.SingleNode(4))
	defer e.Stop()
	const domain = 1 << 14
	if err := e.CreateIndex(idxObj, domain); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(idxObj, domain, nil); err != nil {
		t.Fatal(err)
	}
	e.SetGenerators(func(i int) aeu.Generator {
		return &LookupGenerator{
			Object: idxObj, Keys: workload.Uniform{Domain: domain},
			Batch: 32, DurationSec: 0.001,
		}
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitVirtual(0.0015, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	if ops := e.TotalOps(); ops == 0 {
		t.Fatal("no ops executed")
	}
}

func TestThroughputEpoch(t *testing.T) {
	e := newEngine(t, topology.Intel())
	defer e.Stop()
	const domain = 1 << 14
	if err := e.CreateIndex(idxObj, domain); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(idxObj, domain, nil); err != nil {
		t.Fatal(err)
	}
	e.SetGenerators(func(i int) aeu.Generator {
		return &LookupGenerator{
			Object: idxObj, Keys: workload.Uniform{Domain: domain},
			Batch: 32, DurationSec: 0.001,
		}
	})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	ep := e.Machine().StartEpoch()
	if err := e.WaitVirtual(0.001, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	tput := ep.Throughput()
	e.Stop()
	if tput <= 0 {
		t.Fatalf("throughput = %f", tput)
	}
	// 40 cores on the Intel machine doing batched local-ish lookups should
	// reach at least a million ops per simulated second.
	if tput < 1e6 {
		t.Errorf("throughput suspiciously low: %.0f ops/s", tput)
	}
}

func TestBalancerIntegration(t *testing.T) {
	e := newEngine(t, topology.SingleNode(8))
	defer e.Stop()
	const domain = 1 << 14
	if err := e.CreateIndex(idxObj, domain); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(idxObj, domain, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(idxObj, balance.OneShot{}); err != nil {
		t.Fatal(err)
	}
	// Hot range on the first quarter of the domain: AEUs 0,1 overloaded.
	e.SetGenerators(func(i int) aeu.Generator {
		return &LookupGenerator{
			Object: idxObj, Keys: workload.HotRange{Lo: 0, Hi: domain / 4},
			Batch: 32, DurationSec: 0.1,
		}
	})
	// Short balancer sampling so cycles happen within the tiny run.
	e.balancer = balance.New(e.router, e.aeus, balance.Config{
		SampleIntervalSec: 0.002, Threshold: 0.2,
	})
	for _, a := range e.aeus {
		a.SetEpochDone(e.balancer.Ack)
	}
	e.balancer.Watch(idxObj, domain, balance.AccessFrequency, balance.OneShot{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// The real-time bound only guards against a stalled virtual clock; under
	// -race on a loaded machine the 0.02 virtual seconds take minutes.
	if err := e.WaitVirtual(0.02, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	cycles := e.balancer.Cycles()
	if len(cycles) == 0 {
		t.Fatal("balancer never triggered despite skewed workload")
	}
	// After rebalancing, the partitioning must still be consistent: every
	// key is found exactly where the routing table says.
	entries := e.router.OwnerEntries(idxObj)
	if len(entries) != 8 {
		t.Fatalf("entries = %+v", entries)
	}
	var total int64
	for _, a := range e.aeus {
		total += a.Partition(idxObj).Tree.Count()
	}
	if total != domain {
		t.Fatalf("keys after rebalance = %d, want %d", total, domain)
	}
	// Partition bounds and routing table agree.
	for i, a := range e.aeus {
		p := a.Partition(idxObj)
		if p.Lo != entries[i].Low {
			t.Errorf("aeu %d: Lo %d != table %d", i, p.Lo, entries[i].Low)
		}
	}
}

func TestWatchErrors(t *testing.T) {
	e := newEngine(t, topology.SingleNode(2))
	defer e.Stop()
	if err := e.Watch(99, nil); err == nil {
		t.Error("watch of unknown object accepted")
	}
}

func TestDomainAndKind(t *testing.T) {
	e := newEngine(t, topology.SingleNode(2))
	defer e.Stop()
	if err := e.CreateIndex(idxObj, 4096); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateColumn(colObj); err != nil {
		t.Fatal(err)
	}
	if d, err := e.Domain(idxObj); err != nil || d != 4096 {
		t.Errorf("domain = %d, %v", d, err)
	}
	if _, err := e.Domain(colObj); err == nil {
		t.Error("Domain on column accepted")
	}
	if k, err := e.ObjectKind(colObj); err != nil || k != routing.SizePartitioned {
		t.Errorf("kind = %v, %v", k, err)
	}
}
