package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"eris/internal/prefixtree"
	"eris/internal/topology"
)

// TestStopWithInFlightOps is the shutdown-race regression test: Stop must
// race cleanly with synchronous client calls. Every in-flight or subsequent
// call either completes normally or returns ErrClosed — never hangs, never
// panics, never leaks a pending operation.
func TestStopWithInFlightOps(t *testing.T) {
	e := newEngine(t, topology.SingleNode(4))
	if err := e.CreateIndex(idxObj, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadIndexDense(idxObj, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []uint64{uint64(w), uint64(w) + 100, uint64(w) + 1000}
			for i := 0; ; i++ {
				var err error
				switch i % 3 {
				case 0:
					_, err = e.Lookup(idxObj, keys)
				case 1:
					err = e.Upsert(idxObj, []prefixtree.KV{{Key: uint64(w*1000 + i), Value: 1}})
				default:
					err = e.Delete(idxObj, []uint64{uint64(w*1000 + i - 1)})
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errs <- err
					}
					return
				}
			}
		}(w)
	}

	// Let the ops flow, then pull the rug.
	time.Sleep(10 * time.Millisecond)
	e.Stop()

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("client calls still blocked 30s after Stop")
	}
	close(errs)
	for err := range errs {
		t.Errorf("in-flight op failed with %v, want ErrClosed", err)
	}

	// New calls are refused immediately.
	if _, err := e.Lookup(idxObj, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Lookup after Stop = %v, want ErrClosed", err)
	}
	if err := e.Upsert(idxObj, []prefixtree.KV{{Key: 1, Value: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Upsert after Stop = %v, want ErrClosed", err)
	}

	// Nothing leaked.
	e.clientMu.Lock()
	leaked := len(e.pending)
	e.clientMu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d pending operations leaked past Stop", leaked)
	}
}

// TestStopConcurrent checks Stop is idempotent and safe to call from many
// goroutines at once.
func TestStopConcurrent(t *testing.T) {
	e := newEngine(t, topology.SingleNode(4))
	if err := e.CreateIndex(idxObj, 1<<12); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Stop()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Stops deadlocked")
	}
	e.Stop() // and once more after the fact
}
