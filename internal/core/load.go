package core

import (
	"fmt"

	"eris/internal/prefixtree"
	"eris/internal/routing"
)

// LoadIndexDense bulk-loads the dense key domain [0, n) into an index
// object before Start, writing each key directly into its owning AEU's
// partition (charged to that AEU's core, modeling a parallel load).
// valueOf(nil) uses the identity value.
func (e *Engine) LoadIndexDense(id routing.ObjectID, n uint64, valueOf func(key uint64) uint64) error {
	if e.started {
		return fmt.Errorf("core: load after Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return fmt.Errorf("core: object %d is not an index", id)
	}
	if n > meta.domain {
		return fmt.Errorf("core: loading %d keys into domain %d", n, meta.domain)
	}
	if valueOf == nil {
		valueOf = func(k uint64) uint64 { return k }
	}
	const batch = 256
	kvs := make([]prefixtree.KV, 0, batch)
	for _, a := range e.aeus {
		p := a.Partition(id)
		lo, hi := p.Lo, p.Hi
		if lo >= n {
			continue
		}
		if hi >= n {
			hi = n - 1
		}
		for k := lo; ; k += batch {
			kvs = kvs[:0]
			end := k + batch
			if end > hi+1 {
				end = hi + 1
			}
			for kk := k; kk < end; kk++ {
				kvs = append(kvs, prefixtree.KV{Key: kk, Value: valueOf(kk)})
			}
			p.Tree.UpsertBatch(a.Core, kvs)
			if end > hi {
				break
			}
		}
	}
	return nil
}

// LoadColumnUniform bulk-loads tuplesPerAEU values into every AEU's column
// partition before Start. valueOf(nil) produces a deterministic pseudo-
// random value per position.
func (e *Engine) LoadColumnUniform(id routing.ObjectID, tuplesPerAEU int64, valueOf func(aeu int, i int64) uint64) error {
	if e.started {
		return fmt.Errorf("core: load after Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.SizePartitioned {
		return fmt.Errorf("core: object %d is not a column", id)
	}
	if valueOf == nil {
		valueOf = func(aeu int, i int64) uint64 {
			x := uint64(aeu)<<32 ^ uint64(i)
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			return x
		}
	}
	const batch = 4096
	buf := make([]uint64, batch)
	for idx, a := range e.aeus {
		p := a.Partition(id)
		var done int64
		for done < tuplesPerAEU {
			m := int64(batch)
			if tuplesPerAEU-done < m {
				m = tuplesPerAEU - done
			}
			for i := int64(0); i < m; i++ {
				buf[i] = valueOf(idx, done+i)
			}
			p.Col.Append(a.Core, buf[:m])
			done += m
		}
	}
	return nil
}
