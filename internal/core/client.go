package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"eris/internal/aeu"
	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/routing"
)

// ErrClosed is returned by synchronous client calls once Stop has begun:
// in-flight calls fail immediately instead of waiting for replies that die
// with the AEU loops, and new calls are refused.
var ErrClosed = errors.New("core: engine closed")

// ErrDeadlineExceeded is returned by synchronous client calls whose
// context deadline passed before every partition answered, and by calls
// whose commands expired inside the engine (for example while deferred
// across a rebalance cycle).
var ErrDeadlineExceeded = errors.New("core: deadline exceeded")

// pendingOp tracks one synchronous client request across the AEUs serving
// its pieces. Accounting is per request key (per scan command for scans),
// not per reply: a command that splits into an applied part and a forwarded
// or deferred part produces several replies whose answered counts must sum
// to want before the operation is complete.
type pendingOp struct {
	want    int
	got     int
	replies [][]prefixtree.KV
	err     error
	done    chan struct{}
}

// deliverClientResult is installed as every AEU's client callback. kvs may
// alias AEU scratch, so each reply is copied before it is retained. A
// non-nil err marks the answered portion as failed (today: expired at the
// AEU); the operation still waits for its remaining replies but completes
// with the first error it saw.
func (e *Engine) deliverClientResult(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	p := e.pending[tag]
	if p == nil {
		return // late result after timeout or shutdown
	}
	if err != nil && p.err == nil {
		if errors.Is(err, aeu.ErrExpired) {
			err = fmt.Errorf("%w: %v", ErrDeadlineExceeded, err)
		}
		p.err = err
	}
	if len(kvs) > 0 {
		p.replies = append(p.replies, append([]prefixtree.KV(nil), kvs...))
	}
	p.got += answered
	if p.got >= p.want {
		delete(e.pending, tag)
		close(p.done)
	}
}

func (e *Engine) newPending(want int) (uint64, *pendingOp, error) {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	if e.clientClosed {
		return 0, nil, ErrClosed
	}
	e.nextTag++
	p := &pendingOp{want: want, done: make(chan struct{})}
	e.pending[e.nextTag] = p
	return e.nextTag, p, nil
}

func (e *Engine) cancelPending(tag uint64) {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	delete(e.pending, tag)
}

// failPending fails every in-flight synchronous call with ErrClosed and
// refuses new ones; Stop calls it before taking the AEU loops down.
func (e *Engine) failPending() {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	e.clientClosed = true
	for tag, p := range e.pending {
		p.err = ErrClosed
		close(p.done)
		delete(e.pending, tag)
	}
}

// clientTimeout bounds synchronous client calls; the engine is in-process,
// so a stall means a bug, not a slow network.
const clientTimeout = 30 * time.Second

// deadlineOf returns ctx's deadline as absolute unix nanoseconds for
// command headers; zero when ctx has none.
func deadlineOf(ctx context.Context) uint64 {
	if d, ok := ctx.Deadline(); ok {
		return uint64(d.UnixNano())
	}
	return 0
}

// Lookup synchronously looks up keys in an index object and returns the
// found pairs. The engine must be started.
func (e *Engine) Lookup(id routing.ObjectID, keys []uint64) ([]prefixtree.KV, error) {
	return e.LookupCtx(context.Background(), id, keys)
}

// LookupCtx is Lookup bounded by ctx: its deadline rides the issued
// commands (so the AEUs can expire deferred work) and cancels the wait.
func (e *Engine) LookupCtx(ctx context.Context, id routing.ObjectID, keys []uint64) ([]prefixtree.KV, error) {
	if !e.started {
		return nil, fmt.Errorf("core: Lookup before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return nil, fmt.Errorf("core: object %d is not an index", id)
	}
	// Split by owner (the client does its own routing-table lookup).
	byOwner := make(map[uint32][]uint64)
	for _, k := range keys {
		if k >= meta.domain {
			return nil, fmt.Errorf("core: key %d outside domain %d", k, meta.domain)
		}
		o := e.router.Owner(id, k)
		byOwner[o] = append(byOwner[o], k)
	}
	if len(byOwner) == 0 {
		return nil, nil
	}
	tag, p, err := e.newPending(len(keys))
	if err != nil {
		return nil, err
	}
	for owner, ks := range byOwner {
		e.router.Inject(owner, &command.Command{
			Op: command.OpLookup, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Keys: ks, Deadline: deadlineOf(ctx),
		})
	}
	if err := e.await(ctx, p, tag); err != nil {
		return nil, err
	}
	out := flatten(p.replies)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Upsert synchronously inserts or overwrites pairs in an index object.
func (e *Engine) Upsert(id routing.ObjectID, kvs []prefixtree.KV) error {
	return e.UpsertCtx(context.Background(), id, kvs)
}

// UpsertCtx is Upsert bounded by ctx; see LookupCtx.
func (e *Engine) UpsertCtx(ctx context.Context, id routing.ObjectID, kvs []prefixtree.KV) error {
	if !e.started {
		return fmt.Errorf("core: Upsert before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return fmt.Errorf("core: object %d is not an index", id)
	}
	byOwner := make(map[uint32][]prefixtree.KV)
	for _, kv := range kvs {
		if kv.Key >= meta.domain {
			return fmt.Errorf("core: key %d outside domain %d", kv.Key, meta.domain)
		}
		o := e.router.Owner(id, kv.Key)
		byOwner[o] = append(byOwner[o], kv)
	}
	if len(byOwner) == 0 {
		return nil
	}
	tag, p, err := e.newPending(len(kvs))
	if err != nil {
		return err
	}
	for owner, part := range byOwner {
		e.router.Inject(owner, &command.Command{
			Op: command.OpUpsert, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, KVs: part, Deadline: deadlineOf(ctx),
		})
	}
	return e.await(ctx, p, tag)
}

// Delete synchronously removes keys from an index object; keys that are
// not present are ignored.
func (e *Engine) Delete(id routing.ObjectID, keys []uint64) error {
	return e.DeleteCtx(context.Background(), id, keys)
}

// DeleteCtx is Delete bounded by ctx; see LookupCtx.
func (e *Engine) DeleteCtx(ctx context.Context, id routing.ObjectID, keys []uint64) error {
	if !e.started {
		return fmt.Errorf("core: Delete before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return fmt.Errorf("core: object %d is not an index", id)
	}
	byOwner := make(map[uint32][]uint64)
	for _, k := range keys {
		if k >= meta.domain {
			return fmt.Errorf("core: key %d outside domain %d", k, meta.domain)
		}
		o := e.router.Owner(id, k)
		byOwner[o] = append(byOwner[o], k)
	}
	if len(byOwner) == 0 {
		return nil
	}
	tag, p, err := e.newPending(len(keys))
	if err != nil {
		return err
	}
	for owner, ks := range byOwner {
		e.router.Inject(owner, &command.Command{
			Op: command.OpDelete, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Keys: ks, Deadline: deadlineOf(ctx),
		})
	}
	return e.await(ctx, p, tag)
}

// ScanAggregate is the result of a synchronous scan: how many values
// matched the predicate and their (wrapping) sum.
type ScanAggregate struct {
	Matched uint64
	Sum     uint64
}

// Scan synchronously runs a filtered scan over an object, aggregating
// across all partitions. Index objects delegate to ScanRange over the full
// domain, so they share its exactness guarantee under active balancing.
func (e *Engine) Scan(id routing.ObjectID, pred colstore.Predicate) (ScanAggregate, error) {
	return e.ScanCtx(context.Background(), id, pred)
}

// colScanRetries bounds how often a column scan re-runs its fan-out when
// rebalancing overlapped it; bursts of balance cycles are short, so a
// handful of retries normally finds a quiet window well before the
// context deadline does.
const colScanRetries = 32

// ScanCtx is Scan bounded by ctx; see LookupCtx.
func (e *Engine) ScanCtx(ctx context.Context, id routing.ObjectID, pred colstore.Predicate) (ScanAggregate, error) {
	var agg ScanAggregate
	if !e.started {
		return agg, fmt.Errorf("core: Scan before Start")
	}
	meta := e.objects[id]
	if meta == nil {
		return agg, fmt.Errorf("core: unknown object %d", id)
	}
	if meta.kind == routing.RangePartitioned {
		return e.ScanRangeCtx(ctx, id, 0, meta.domain-1, pred)
	}
	// The fan-out samples each AEU's partition at a different moment, so a
	// tail detached from one AEU after its reply and linked at another
	// before that one's reply is counted twice — or, parked in a mailbox,
	// not at all. Bracket the fan-out with transfer-state stamps and retry
	// until a scan saw a quiet window.
	for attempt := 0; ; attempt++ {
		gen1, inf1 := e.colXferStamp(id)
		once, err := e.scanColumnOnce(ctx, id, pred)
		if err != nil {
			return agg, err
		}
		gen2, inf2 := e.colXferStamp(id)
		if (gen1 == gen2 && inf1 == 0 && inf2 == 0) || attempt >= colScanRetries || ctx.Err() != nil {
			return once, nil
		}
	}
}

// colXferStamp sums the column-transfer generation and in-flight payload
// count of id across all AEUs.
func (e *Engine) colXferStamp(id routing.ObjectID) (gen, inflight int64) {
	for _, a := range e.aeus {
		g, f := a.ColXferState(id)
		gen += g
		inflight += f
	}
	return gen, inflight
}

// scanColumnOnce runs one column-scan fan-out over the current holders and
// aggregates the replies.
func (e *Engine) scanColumnOnce(ctx context.Context, id routing.ObjectID, pred colstore.Predicate) (ScanAggregate, error) {
	var agg ScanAggregate
	targets := e.router.Holders(id, nil)
	if len(targets) == 0 {
		return agg, nil
	}
	tag, p, err := e.newPending(len(targets))
	if err != nil {
		return agg, err
	}
	vlo, vhi, vok := pred.Bounds()
	if !vok {
		vlo, vhi = 1, 0
	}
	for _, owner := range targets {
		e.router.Inject(owner, &command.Command{
			Op: command.OpScan, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Pred: pred,
			Keys: []uint64{vlo, vhi}, Deadline: deadlineOf(ctx),
		})
	}
	if err := e.await(ctx, p, tag); err != nil {
		return agg, err
	}
	for _, kvs := range p.replies {
		if len(kvs) > 0 {
			agg.Matched += kvs[0].Key
			agg.Sum += kvs[0].Value
		}
	}
	return agg, nil
}

// Scan cover retries: how often a range scan whose replies left a gap in
// (or overlapped) the requested range is re-issued before giving up, and
// the pause between attempts. Gaps are transient — they close as soon as
// the in-flight balancing step lands — so the backoff is short.
const (
	scanCoverRetries = 64
	scanCoverBackoff = 200 * time.Microsecond
)

// ScanRange synchronously scans an index object over [lo, hi] (inclusive),
// aggregating values matching pred. The result is exact even while the
// load balancer is moving partition bounds: every reply reports the key
// interval it actually inspected, and the scan is re-issued until the
// intervals tile the requested range exactly (no gap, no double count).
func (e *Engine) ScanRange(id routing.ObjectID, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, error) {
	return e.ScanRangeCtx(context.Background(), id, lo, hi, pred)
}

// ScanRangeCtx is ScanRange bounded by ctx; see LookupCtx. The cover-retry
// loop also stops at the deadline instead of burning its full retry budget.
func (e *Engine) ScanRangeCtx(ctx context.Context, id routing.ObjectID, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, error) {
	var agg ScanAggregate
	if !e.started {
		return agg, fmt.Errorf("core: ScanRange before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return agg, fmt.Errorf("core: object %d is not an index", id)
	}
	if hi > meta.domain-1 {
		hi = meta.domain - 1
	}
	if lo > hi {
		return agg, nil
	}
	for attempt := 0; ; attempt++ {
		agg, covered, err := e.scanRangeOnce(ctx, id, lo, hi, pred)
		if err != nil || covered {
			return agg, err
		}
		if attempt >= scanCoverRetries {
			return agg, fmt.Errorf("core: range scan over [%d, %d] found no consistent cover in %d attempts", lo, hi, attempt+1)
		}
		select {
		case <-ctx.Done():
			return agg, fmt.Errorf("core: range scan over [%d, %d]: %w", lo, hi, ErrDeadlineExceeded)
		case <-time.After(scanCoverBackoff):
		}
	}
}

// scanRangeOnce issues one multicast range scan and reports whether the
// reply coverage tiled [lo, hi] exactly; only then is agg trustworthy.
func (e *Engine) scanRangeOnce(ctx context.Context, id routing.ObjectID, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, bool, error) {
	var agg ScanAggregate
	targets := e.rangeTargets(id)
	if len(targets) == 0 {
		return agg, false, nil
	}
	tag, p, err := e.newPending(len(targets))
	if err != nil {
		return agg, false, err
	}
	for _, owner := range targets {
		e.router.Inject(owner, &command.Command{
			Op: command.OpScan, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Pred: pred, Keys: []uint64{lo, hi},
			Deadline: deadlineOf(ctx),
		})
	}
	if err := e.await(ctx, p, tag); err != nil {
		return agg, false, err
	}
	var cover []prefixtree.KV // Key=lo, Value=hi of one inspected interval
	for _, kvs := range p.replies {
		if len(kvs) == 0 {
			continue
		}
		agg.Matched += kvs[0].Key
		agg.Sum += kvs[0].Value
		cover = append(cover, kvs[1:]...)
	}
	return agg, coversExactly(cover, lo, hi), nil
}

// coversExactly reports whether the intervals tile [lo, hi] with no gap
// and no overlap.
func coversExactly(ivs []prefixtree.KV, lo, hi uint64) bool {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Key < ivs[j].Key })
	cur := lo
	for i, iv := range ivs {
		if iv.Key != cur || iv.Value > hi || iv.Value < iv.Key {
			return false
		}
		if iv.Value == hi {
			return i == len(ivs)-1
		}
		cur = iv.Value + 1
	}
	return false
}

// rangeTargets returns the deduplicated owner set of a range object.
func (e *Engine) rangeTargets(id routing.ObjectID) []uint32 {
	entries := e.router.OwnerEntries(id)
	targets := make([]uint32, 0, len(entries))
	seen := map[uint32]bool{}
	for _, en := range entries {
		if !seen[en.Owner] {
			targets = append(targets, en.Owner)
			seen[en.Owner] = true
		}
	}
	return targets
}

// ScanRangeRows materializes up to limit matching rows of an index range
// scan over [lo, hi] (inclusive), sorted by key — the query-processing
// primitive for intermediate results. Unlike the aggregate ScanRange, rows
// mode is best effort while a balancing step is in flight: rows of a range
// whose transfer has not landed yet may be missing from the result.
func (e *Engine) ScanRangeRows(id routing.ObjectID, lo, hi uint64, pred colstore.Predicate, limit int) ([]prefixtree.KV, error) {
	return e.ScanRangeRowsCtx(context.Background(), id, lo, hi, pred, limit)
}

// ScanRangeRowsCtx is ScanRangeRows bounded by ctx; see LookupCtx.
func (e *Engine) ScanRangeRowsCtx(ctx context.Context, id routing.ObjectID, lo, hi uint64, pred colstore.Predicate, limit int) ([]prefixtree.KV, error) {
	if !e.started {
		return nil, fmt.Errorf("core: ScanRangeRows before Start")
	}
	if limit <= 0 {
		return nil, fmt.Errorf("core: ScanRangeRows needs a positive limit")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return nil, fmt.Errorf("core: object %d is not an index", id)
	}
	targets := e.rangeTargets(id)
	if len(targets) == 0 {
		return nil, nil
	}
	tag, p, err := e.newPending(len(targets))
	if err != nil {
		return nil, err
	}
	for _, owner := range targets {
		e.router.Inject(owner, &command.Command{
			Op: command.OpScan, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Pred: pred,
			Keys: []uint64{lo, hi}, Limit: uint32(limit), Deadline: deadlineOf(ctx),
		})
	}
	if err := e.await(ctx, p, tag); err != nil {
		return nil, err
	}
	rows := flatten(p.replies)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	if len(rows) > limit {
		rows = rows[:limit]
	}
	return rows, nil
}

func flatten(replies [][]prefixtree.KV) []prefixtree.KV {
	var n int
	for _, r := range replies {
		n += len(r)
	}
	out := make([]prefixtree.KV, 0, n)
	for _, r := range replies {
		out = append(out, r...)
	}
	return out
}

func (e *Engine) await(ctx context.Context, p *pendingOp, tag uint64) error {
	select {
	case <-p.done:
		return p.err
	case <-ctx.Done():
		e.cancelPending(tag)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return fmt.Errorf("core: client request %d: %w", tag, ErrDeadlineExceeded)
		}
		return ctx.Err()
	case <-time.After(clientTimeout):
		e.cancelPending(tag)
		return fmt.Errorf("core: client request %d timed out", tag)
	}
}
