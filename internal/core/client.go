package core

import (
	"fmt"
	"sort"
	"time"

	"eris/internal/aeu"
	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/routing"
)

// pendingOp tracks one synchronous client request across the AEUs serving
// its pieces.
type pendingOp struct {
	want int
	got  int
	kvs  []prefixtree.KV
	done chan struct{}
}

// deliverClientResult is installed as every AEU's client callback.
func (e *Engine) deliverClientResult(tag uint64, from uint32, kvs []prefixtree.KV) {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	p := e.pending[tag]
	if p == nil {
		return // late result after timeout
	}
	p.kvs = append(p.kvs, kvs...)
	p.got++
	if p.got >= p.want {
		delete(e.pending, tag)
		close(p.done)
	}
}

func (e *Engine) newPending(want int) (uint64, *pendingOp) {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	e.nextTag++
	p := &pendingOp{want: want, done: make(chan struct{})}
	e.pending[e.nextTag] = p
	return e.nextTag, p
}

func (e *Engine) cancelPending(tag uint64) {
	e.clientMu.Lock()
	defer e.clientMu.Unlock()
	delete(e.pending, tag)
}

// clientTimeout bounds synchronous client calls; the engine is in-process,
// so a stall means a bug, not a slow network.
const clientTimeout = 30 * time.Second

// Lookup synchronously looks up keys in an index object and returns the
// found pairs. The engine must be started.
func (e *Engine) Lookup(id routing.ObjectID, keys []uint64) ([]prefixtree.KV, error) {
	if !e.started {
		return nil, fmt.Errorf("core: Lookup before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return nil, fmt.Errorf("core: object %d is not an index", id)
	}
	// Split by owner (the client does its own routing-table lookup).
	byOwner := make(map[uint32][]uint64)
	for _, k := range keys {
		if k >= meta.domain {
			return nil, fmt.Errorf("core: key %d outside domain %d", k, meta.domain)
		}
		o := e.router.Owner(id, k)
		byOwner[o] = append(byOwner[o], k)
	}
	if len(byOwner) == 0 {
		return nil, nil
	}
	tag, p := e.newPending(len(byOwner))
	for owner, ks := range byOwner {
		e.router.Inject(owner, &command.Command{
			Op: command.OpLookup, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Keys: ks,
		})
	}
	if err := e.await(p, tag); err != nil {
		return nil, err
	}
	sort.Slice(p.kvs, func(i, j int) bool { return p.kvs[i].Key < p.kvs[j].Key })
	return p.kvs, nil
}

// Upsert synchronously inserts or overwrites pairs in an index object.
func (e *Engine) Upsert(id routing.ObjectID, kvs []prefixtree.KV) error {
	if !e.started {
		return fmt.Errorf("core: Upsert before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return fmt.Errorf("core: object %d is not an index", id)
	}
	byOwner := make(map[uint32][]prefixtree.KV)
	for _, kv := range kvs {
		if kv.Key >= meta.domain {
			return fmt.Errorf("core: key %d outside domain %d", kv.Key, meta.domain)
		}
		o := e.router.Owner(id, kv.Key)
		byOwner[o] = append(byOwner[o], kv)
	}
	if len(byOwner) == 0 {
		return nil
	}
	tag, p := e.newPending(len(byOwner))
	for owner, part := range byOwner {
		e.router.Inject(owner, &command.Command{
			Op: command.OpUpsert, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, KVs: part,
		})
	}
	return e.await(p, tag)
}

// ScanAggregate is the result of a synchronous scan: how many values
// matched the predicate and their (wrapping) sum.
type ScanAggregate struct {
	Matched uint64
	Sum     uint64
}

// Scan synchronously runs a filtered scan over a column object, aggregating
// across all partitions.
func (e *Engine) Scan(id routing.ObjectID, pred colstore.Predicate) (ScanAggregate, error) {
	var agg ScanAggregate
	if !e.started {
		return agg, fmt.Errorf("core: Scan before Start")
	}
	meta := e.objects[id]
	if meta == nil {
		return agg, fmt.Errorf("core: unknown object %d", id)
	}
	var targets []uint32
	var bounds []uint64
	if meta.kind == routing.SizePartitioned {
		targets = e.router.Holders(id, nil)
	} else {
		// Index range scan over the full domain.
		for _, en := range e.router.OwnerEntries(id) {
			targets = append(targets, en.Owner)
		}
		bounds = []uint64{0, meta.domain - 1}
	}
	if len(targets) == 0 {
		return agg, nil
	}
	tag, p := e.newPending(len(targets))
	for _, owner := range targets {
		e.router.Inject(owner, &command.Command{
			Op: command.OpScan, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Pred: pred, Keys: bounds,
		})
	}
	if err := e.await(p, tag); err != nil {
		return agg, err
	}
	for _, kv := range p.kvs {
		agg.Matched += kv.Key
		agg.Sum += kv.Value
	}
	return agg, nil
}

// ScanRange synchronously scans an index object over [lo, hi] (inclusive),
// aggregating values matching pred.
func (e *Engine) ScanRange(id routing.ObjectID, lo, hi uint64, pred colstore.Predicate) (ScanAggregate, error) {
	var agg ScanAggregate
	if !e.started {
		return agg, fmt.Errorf("core: ScanRange before Start")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return agg, fmt.Errorf("core: object %d is not an index", id)
	}
	entries := e.router.OwnerEntries(id)
	var targets []uint32
	seen := map[uint32]bool{}
	for _, en := range entries {
		if !seen[en.Owner] {
			targets = append(targets, en.Owner)
			seen[en.Owner] = true
		}
	}
	tag, p := e.newPending(len(targets))
	for _, owner := range targets {
		e.router.Inject(owner, &command.Command{
			Op: command.OpScan, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Pred: pred, Keys: []uint64{lo, hi},
		})
	}
	if err := e.await(p, tag); err != nil {
		return agg, err
	}
	for _, kv := range p.kvs {
		agg.Matched += kv.Key
		agg.Sum += kv.Value
	}
	return agg, nil
}

// ScanRangeRows materializes up to limit matching rows of an index range
// scan over [lo, hi] (inclusive), sorted by key — the query-processing
// primitive for intermediate results.
func (e *Engine) ScanRangeRows(id routing.ObjectID, lo, hi uint64, pred colstore.Predicate, limit int) ([]prefixtree.KV, error) {
	if !e.started {
		return nil, fmt.Errorf("core: ScanRangeRows before Start")
	}
	if limit <= 0 {
		return nil, fmt.Errorf("core: ScanRangeRows needs a positive limit")
	}
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return nil, fmt.Errorf("core: object %d is not an index", id)
	}
	entries := e.router.OwnerEntries(id)
	targets := make([]uint32, 0, len(entries))
	seen := map[uint32]bool{}
	for _, en := range entries {
		if !seen[en.Owner] {
			targets = append(targets, en.Owner)
			seen[en.Owner] = true
		}
	}
	tag, p := e.newPending(len(targets))
	for _, owner := range targets {
		e.router.Inject(owner, &command.Command{
			Op: command.OpScan, Object: uint32(id), Source: owner,
			ReplyTo: aeu.ClientReply, Tag: tag, Pred: pred,
			Keys: []uint64{lo, hi}, Limit: uint32(limit),
		})
	}
	if err := e.await(p, tag); err != nil {
		return nil, err
	}
	sort.Slice(p.kvs, func(i, j int) bool { return p.kvs[i].Key < p.kvs[j].Key })
	if len(p.kvs) > limit {
		p.kvs = p.kvs[:limit]
	}
	return p.kvs, nil
}

func (e *Engine) await(p *pendingOp, tag uint64) error {
	select {
	case <-p.done:
		return nil
	case <-time.After(clientTimeout):
		e.cancelPending(tag)
		return fmt.Errorf("core: client request %d timed out", tag)
	}
}
