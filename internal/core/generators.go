package core

import (
	"eris/internal/aeu"
	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/workload"
)

// The generators in this file implement the paper's benchmark workloads as
// AEU generation-stage hooks: every AEU produces data commands against the
// whole key domain and routes them through the outgoing buffers, exactly as
// the evaluation section describes ("keys to upsert or lookup are evenly
// distributed across the key domain").

// LookupGenerator routes batches of lookups drawn from a key generator
// until the AEU's virtual clock has advanced DurationSec past its first
// call.
type LookupGenerator struct {
	Object      routing.ObjectID
	Keys        workload.KeyGen
	Batch       int     // keys per generated command batch, default 64
	PerLoop     int     // batches per loop iteration, default 16
	DurationSec float64 // generation window in virtual seconds

	startNS float64
	started bool
	buf     []uint64
}

// Generate implements aeu.Generator.
func (g *LookupGenerator) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
		if g.Batch == 0 {
			g.Batch = 64
		}
		if g.PerLoop == 0 {
			g.PerLoop = 16
		}
		// One large batch per loop: the router splits it into one
		// multi-key command per owner, amortizing command headers and
		// flushes the way the paper's grouped data segments do.
		g.buf = make([]uint64, g.Batch*g.PerLoop)
	}
	elapsed := (a.ClockNS() - g.startNS) / 1e9
	if elapsed >= g.DurationSec {
		return false
	}
	workload.FillBatch(g.Keys, a.Rng, elapsed, g.buf)
	a.Outbox().RouteLookup(g.Object, g.buf, command.NoReply, 0)
	return true
}

// UpsertGenerator routes batches of upserts (random keys, identity values)
// for a virtual duration.
type UpsertGenerator struct {
	Object      routing.ObjectID
	Keys        workload.KeyGen
	Batch       int
	PerLoop     int
	DurationSec float64

	startNS float64
	started bool
	buf     []prefixtree.KV
	keys    []uint64
}

// Generate implements aeu.Generator.
func (g *UpsertGenerator) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
		if g.Batch == 0 {
			g.Batch = 64
		}
		if g.PerLoop == 0 {
			g.PerLoop = 16
		}
		g.buf = make([]prefixtree.KV, g.Batch*g.PerLoop)
		g.keys = make([]uint64, g.Batch*g.PerLoop)
	}
	elapsed := (a.ClockNS() - g.startNS) / 1e9
	if elapsed >= g.DurationSec {
		return false
	}
	workload.FillBatch(g.Keys, a.Rng, elapsed, g.keys)
	for i, k := range g.keys {
		g.buf[i] = prefixtree.KV{Key: k, Value: k}
	}
	a.Outbox().RouteUpsert(g.Object, g.buf, command.NoReply, 0)
	return true
}

// ScanGenerator multicasts repeated full scans of a column, keeping a
// bounded window of scans in flight: the window paces issuance to the scan
// rate (the paper scans the column "repeatedly", not in an unbounded
// flood), while its depth lets the multicast reference buffers batch
// several scans per flush and lets receivers fold them into shared passes.
type ScanGenerator struct {
	Object      routing.ObjectID
	Pred        colstore.Predicate
	Inflight    int // outstanding scans, default 8
	DurationSec float64

	startNS float64
	started bool
	issued  int64
	opsBase int64
}

// Generate implements aeu.Generator.
func (g *ScanGenerator) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
		g.opsBase = a.Stats().Ops
		if g.Inflight == 0 {
			g.Inflight = 32
		}
	}
	if (a.ClockNS()-g.startNS)/1e9 >= g.DurationSec {
		return false
	}
	// The issuer serves its own partition too, so its completed scan ops
	// track overall progress. Refill the window in full bursts: issuing
	// Inflight scans in one loop lets every target's multicast reference
	// buffer carry the whole burst in a single flush, and receivers fold
	// the burst into one shared pass.
	completed := a.Stats().Ops - g.opsBase
	if g.issued <= completed {
		for i := 0; i < g.Inflight; i++ {
			a.Outbox().RouteScan(g.Object, g.Pred, command.NoReply, 0)
			g.issued++
		}
	}
	return true
}

// SelfScanGenerator sustains a full-bandwidth scan benchmark: every AEU
// repeatedly scans its own column partition, as the steady state of a
// long-running analytical scan looks once the (one-off) scan command has
// been multicast. At the paper's data sizes one pass over a partition takes
// milliseconds and the per-pass command routing is negligible; at the
// scaled-down sizes it would dominate, so the sustained phase is modeled
// directly (the multicast path itself is exercised by ScanGenerator, the
// engine's Scan client API and the examples).
type SelfScanGenerator struct {
	Object      routing.ObjectID
	Pred        colstore.Predicate
	DurationSec float64

	startNS float64
	started bool
}

// Generate implements aeu.Generator.
func (g *SelfScanGenerator) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
	}
	if (a.ClockNS()-g.startNS)/1e9 >= g.DurationSec {
		return false
	}
	p := a.Partition(g.Object)
	if p == nil || p.Col == nil {
		return false
	}
	res := p.Col.ScanFiltered(a.Core, p.Col.Snapshot(), g.Pred)
	a.CountColScanBlocks(res.BlocksScanned, res.BlocksPruned, res.BlocksFullHit)
	a.CountOps(1)
	return true
}

// RawRoutingGenerator drives the Figure 5 routing-throughput experiment:
// AEUs route many small per-call lookup batches, so each target receives a
// stream of *individual* data commands per loop and the outgoing buffer
// capacity decides how many of them one flush carries. Against an empty
// index the receivers' processing stage degenerates to a nil-root miss
// ("raw routing"); against a loaded index the lookups dominate.
type RawRoutingGenerator struct {
	Object      routing.ObjectID
	Domain      uint64
	Batch       int
	PerLoop     int
	DurationSec float64

	startNS float64
	started bool
	buf     []uint64
}

// Generate implements aeu.Generator.
func (g *RawRoutingGenerator) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
		if g.Batch == 0 {
			g.Batch = 64
		}
		if g.PerLoop == 0 {
			g.PerLoop = 16
		}
		g.buf = make([]uint64, g.Batch)
	}
	if (a.ClockNS()-g.startNS)/1e9 >= g.DurationSec {
		return false
	}
	// Deliberately many separate calls: each produces one command per
	// owner, the command stream that the outgoing buffers exist to batch.
	for b := 0; b < g.PerLoop; b++ {
		for i := range g.buf {
			g.buf[i] = uint64(a.Rng.Int63n(int64(g.Domain)))
		}
		a.Outbox().RouteLookup(g.Object, g.buf, command.NoReply, 0)
	}
	return true
}

// DynamicLookupGenerator drives the Figure 13 experiment: lookups whose hot
// range follows a workload schedule in virtual time.
type DynamicLookupGenerator struct {
	Object      routing.ObjectID
	Schedule    *workload.Schedule
	Batch       int
	PerLoop     int
	DurationSec float64

	startNS float64
	started bool
	buf     []uint64
}

// Generate implements aeu.Generator.
func (g *DynamicLookupGenerator) Generate(a *aeu.AEU) bool {
	if !g.started {
		g.started = true
		g.startNS = a.ClockNS()
		if g.Batch == 0 {
			g.Batch = 64
		}
		if g.PerLoop == 0 {
			g.PerLoop = 8
		}
		g.buf = make([]uint64, g.Batch*g.PerLoop)
	}
	elapsed := (a.ClockNS() - g.startNS) / 1e9
	if elapsed >= g.DurationSec {
		return false
	}
	workload.FillBatch(g.Schedule, a.Rng, elapsed, g.buf)
	a.Outbox().RouteLookup(g.Object, g.buf, command.NoReply, 0)
	return true
}
