package core_test

// Linearizability chaos: a recorded concurrent workload runs while every
// engine fault kind is injected into active range AND size balancing, and
// every client-visible response must afterwards be explainable by a
// sequential execution of the map model (internal/histcheck). This is the
// teeth behind the fail-soft claims: not just "survives and conserves
// tuples" but "never served a wrong answer while doing so".
//
// The test lives outside package core because internal/history wraps the
// core client API (importing it from package core would cycle).

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"eris/internal/balance"
	"eris/internal/colstore"
	"eris/internal/core"
	"eris/internal/faults"
	"eris/internal/histcheck"
	"eris/internal/history"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// TestChaosLinearizability matches the chaos suite's setup (same seed,
// same fault rules, skewed index + fully skewed column so both balancers
// keep cycling) and layers a recorded workload on top. Any violation is
// dumped, minimized, to results/ for replay.
func TestChaosLinearizability(t *testing.T) {
	const (
		idx routing.ObjectID = 7
		col routing.ObjectID = 8

		domain   = 4000
		initialN = 2000 // keys [0, initialN) preloaded with value = key
		colRows  = 2000 // column rows, all starting on AEU 0

		clients   = 5
		opsPerCl  = 800
		logEvents = 1 << 15
	)
	var colSum uint64
	for v := uint64(0); v < colRows; v++ {
		colSum += v
	}
	initial := make([]prefixtree.KV, initialN)
	for k := range initial {
		initial[k] = prefixtree.KV{Key: uint64(k), Value: uint64(k)}
	}

	for _, kind := range faults.Kinds() {
		kind := kind
		if kind == faults.DropConn || kind == faults.SlowWrite {
			// Wire-server faults; internal/server's history e2e covers the
			// serving stack.
			continue
		}
		if kind == faults.TornWrite || kind == faults.FailFsync || kind == faults.FailWrite || kind == faults.Crash {
			// Durability faults; only consulted with a data directory. The
			// crash-recovery history test covers them.
			continue
		}
		t.Run(kind.String(), func(t *testing.T) {
			e, err := core.New(core.Config{
				Topology: topology.SingleNode(4),
				Tree:     prefixtree.Config{KeyBits: 32, PrefixBits: 8},
				Column:   colstore.Config{ChunkEntries: 64},
				Balance: balance.Config{
					SampleIntervalSec: 20e-6,
					Threshold:         0.2,
					PollReal:          100 * time.Microsecond,
					AckTimeout:        250 * time.Millisecond,
				},
				FaultSeed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.CreateIndex(idx, domain); err != nil {
				t.Fatal(err)
			}
			if err := e.LoadIndexDense(idx, initialN, nil); err != nil {
				t.Fatal(err)
			}
			if err := e.Watch(idx, balance.OneShot{}); err != nil {
				t.Fatal(err)
			}
			if err := e.CreateColumn(col); err != nil {
				t.Fatal(err)
			}
			vals := make([]uint64, colRows)
			for i := range vals {
				vals[i] = uint64(i)
			}
			e.AEUs()[0].Partition(col).Col.Append(0, vals)
			if err := e.Watch(col, balance.OneShot{}); err != nil {
				t.Fatal(err)
			}
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			defer e.Stop()

			rule := faults.Rule{Every: 2, Limit: 6}
			if kind == faults.FailAlloc {
				rule = faults.Rule{Every: 1, Limit: 16}
			}
			e.Faults().Arm(kind, rule)

			// Recorded workload: every client mixes writes, deletes, point
			// reads, range-scan aggregates and column scans on a key space
			// skewed onto AEU 0, so range cycles keep coming while the
			// column drains off AEU 0. Each op carries its own deadline —
			// expiries record as Lost (writes) or drop (reads), both of
			// which the checker treats soundly.
			rec := history.New(clients, logEvents)
			var wg sync.WaitGroup
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					log := rec.Client(cl)
					idxc := history.NewCoreClient(e, idx, log)
					colc := history.NewCoreClient(e, col, log)
					rng := rand.New(rand.NewSource(int64(1000 + cl)))
					key := func() uint64 {
						if rng.Intn(10) < 7 {
							return uint64(rng.Intn(600)) // hot range on AEU 0
						}
						return uint64(rng.Intn(2400))
					}
					for i := 0; i < opsPerCl; i++ {
						ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
						switch rng.Intn(12) {
						case 0, 1, 2, 3:
							kvs := make([]prefixtree.KV, 4)
							for j := range kvs {
								kvs[j] = prefixtree.KV{Key: key(), Value: rng.Uint64() % 100000}
							}
							idxc.Upsert(ctx, kvs)
						case 4:
							idxc.Delete(ctx, []uint64{key(), key()})
						case 5:
							lo := uint64(rng.Intn(2000))
							idxc.ScanRange(ctx, lo, lo+199, colstore.Predicate{Op: colstore.All})
						case 6:
							colc.ColScan(ctx, colstore.Predicate{Op: colstore.All})
						default:
							keys := make([]uint64, 4)
							for j := range keys {
								keys[j] = key()
							}
							idxc.Lookup(ctx, keys)
						}
						cancel()
					}
				}(cl)
			}

			// Drive sampling-window skew until the fault fired and at least
			// one balance cycle completed despite it, like the chaos suite.
			p0 := e.AEUs()[0].Partition(idx)
			mgr := e.Memory().Node(0)
			deadline := time.Now().Add(90 * time.Second)
			for {
				rep := e.Balancer().Report()
				if e.Faults().Injected(kind) > 0 && rep.Completed >= 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Errorf("no recovery: injected=%d report=%+v", e.Faults().Injected(kind), rep)
					break
				}
				for i := 0; i < 200; i++ {
					p0.RecordAccess()
				}
				if kind == faults.FailAlloc {
					mgr.Free(mgr.Alloc(1 << 12))
				}
				time.Sleep(time.Millisecond)
			}
			wg.Wait()
			e.Faults().DisarmAll()
			e.Stop()
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			res := histcheck.Check(rec, histcheck.Options{
				Initial:      initial,
				ColumnStatic: true,
				ColumnBaseline: map[colstore.Predicate]histcheck.Agg{
					{Op: colstore.All}: {Matched: colRows, Sum: colSum},
				},
			})
			// Overflowed logs would hide committed writes from the checker
			// and turn later reads into false alarms; the logs are sized so
			// this never happens.
			if res.Dropped != 0 {
				t.Fatalf("recorder overflow: %d events dropped, checking would be unsound", res.Dropped)
			}
			if res.Ops == 0 || res.Scans == 0 || res.ColScans == 0 {
				t.Fatalf("workload did not cover all op classes: %+v", res)
			}
			if len(res.Violations) > 0 {
				path, werr := histcheck.WriteViolations("../../results", "chaos-"+kind.String(), res, histcheck.Options{Initial: initial})
				t.Fatalf("%d linearizability violations (dump: %s, %v); first: %s",
					len(res.Violations), path, werr, res.Violations[0].Reason)
			}
		})
	}
}
