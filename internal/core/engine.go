// Package core assembles the ERIS storage engine: a simulated NUMA machine,
// per-node memory managers, the NUMA-optimized data command routing layer,
// one Autonomous Execution Unit per core, and the configurable NUMA-aware
// load balancer. It exposes DDL (CreateIndex/CreateColumn), bulk loading,
// a synchronous client API for the storage operations (lookup, upsert,
// scan), benchmark workload generators, and lifecycle control driven by
// virtual time.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eris/internal/aeu"
	"eris/internal/balance"
	"eris/internal/colstore"
	"eris/internal/csbtree"
	"eris/internal/durable"
	"eris/internal/faults"
	"eris/internal/mem"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// Config assembles an engine.
type Config struct {
	// Topology is the NUMA machine to run on (required).
	Topology *topology.Topology
	// NumAEUs limits the worker count; 0 runs one AEU per core.
	NumAEUs int
	// Machine tunes the cost simulation.
	Machine numasim.Config
	// Routing tunes the data command routing layer.
	Routing routing.Config
	// AEU tunes the worker loop.
	AEU aeu.Config
	// Tree shapes index objects. KeyBits should cover the largest domain.
	Tree prefixtree.Config
	// Column shapes column objects.
	Column colstore.Config
	// Balance configures the load balancer; the balancer goroutine only
	// runs when at least one object is watched.
	Balance balance.Config
	// MetricsAddr, when non-empty, serves the engine's metrics snapshot as
	// JSON over HTTP (GET /metrics) for the engine's lifetime. Use
	// "127.0.0.1:0" for an ephemeral port; MetricsListenAddr reports the
	// bound address after Start.
	MetricsAddr string
	// FaultSeed, when non-zero, enables the deterministic fault-injection
	// registry (see internal/faults) seeded with this value and threads it
	// through the routing drain, the AEU control path, the balancer's ack
	// delivery and the node memory managers. Zero leaves every hook nil —
	// the production configuration pays one pointer comparison per hook.
	// Alternatively, an injector passed via Routing.Faults is adopted as is.
	FaultSeed int64
	// Durable, when non-nil, attaches per-AEU write-ahead logging and
	// checkpointing (see internal/durable). The caller opens the manager
	// (and runs recovery) before building the engine.
	Durable *durable.Manager
	// CheckpointEvery, with Durable set, runs periodic engine checkpoints
	// on a background goroutine. Zero disables the ticker; checkpoints
	// then happen only at Start, Close, and explicit Checkpoint calls.
	CheckpointEvery time.Duration
}

// objectMeta is engine-side bookkeeping per data object.
type objectMeta struct {
	id     routing.ObjectID
	kind   routing.TableKind
	domain uint64 // exclusive key domain bound (range objects)
	store  map[topology.NodeID]*prefixtree.Store
}

// Engine is a running ERIS instance.
type Engine struct {
	cfg      Config
	machine  *numasim.Machine
	mems     *mem.System
	router   *routing.Router
	aeus     []*aeu.AEU
	balancer *balance.Balancer
	faults   *faults.Injector

	objects map[routing.ObjectID]*objectMeta
	watched bool

	reg       *metrics.Registry
	metricsRv *metrics.Server

	started bool
	stopMu  sync.Mutex
	stopped bool
	crashed bool
	wg      sync.WaitGroup

	// Durability state: loopsUp tells Checkpoint whether images must be
	// cut in-loop (via CkptRequest) or directly (quiescent engine);
	// ckptMu serializes checkpoints; ckptStop ends the periodic ticker.
	loopsUp  atomic.Bool
	ckptMu   sync.Mutex
	ckptStop chan struct{}

	clientMu     sync.Mutex
	nextTag      uint64
	pending      map[uint64]*pendingOp
	clientClosed bool

	timeline *aeu.Timeline
}

// New builds an engine; call CreateIndex/CreateColumn and loaders, then
// Start.
func New(cfg Config) (*Engine, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: Config.Topology is required")
	}
	machine, err := numasim.New(cfg.Topology, cfg.Machine)
	if err != nil {
		return nil, err
	}
	mems := mem.NewSystem(machine)
	n := cfg.NumAEUs
	if n == 0 {
		n = cfg.Topology.NumCores()
	}
	reg := cfg.Routing.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		cfg.Routing.Metrics = reg
	}
	inj := cfg.Routing.Faults
	if inj == nil && cfg.FaultSeed != 0 {
		inj = faults.New(cfg.FaultSeed)
		cfg.Routing.Faults = inj
	}
	if inj != nil {
		inj.RegisterMetrics(reg)
		mems.SetFaults(inj)
	}
	router, err := routing.New(machine, mems, n, cfg.Routing)
	if err != nil {
		return nil, err
	}
	machine.RegisterMetrics(reg)
	mems.RegisterMetrics(reg)
	e := &Engine{
		cfg:     cfg,
		machine: machine,
		mems:    mems,
		router:  router,
		faults:  inj,
		reg:     reg,
		objects: make(map[routing.ObjectID]*objectMeta),
		pending: make(map[uint64]*pendingOp),
	}
	if cfg.Durable != nil {
		cfg.Durable.AttachMetrics(reg)
	}
	for i := 0; i < n; i++ {
		a := aeu.New(router, mems, uint32(i), cfg.AEU)
		a.SetClientResult(e.deliverClientResult)
		if cfg.Durable != nil {
			a.SetWAL(cfg.Durable.Log(i))
		}
		e.aeus = append(e.aeus, a)
	}
	aeu.RegisterPeers(e.aeus)
	e.balancer = balance.New(router, e.aeus, cfg.Balance)
	for _, a := range e.aeus {
		a.SetEpochDone(e.balancer.Ack)
	}
	return e, nil
}

// Machine exposes the simulated machine (epochs, counters, clocks).
func (e *Engine) Machine() *numasim.Machine { return e.machine }

// Metrics returns the engine-wide metrics registry. Every component —
// routing inboxes/outboxes, AEUs, the balancer, the per-node memory
// managers, and the machine's interconnect counters — registers here.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// MetricsSnapshot captures every registered instrument at one instant.
// Pair two snapshots with Delta for interval rates.
func (e *Engine) MetricsSnapshot() metrics.Snapshot { return e.reg.Snapshot() }

// MetricsListenAddr returns the bound address of the metrics HTTP
// endpoint, or "" when Config.MetricsAddr was empty or Start has not run.
func (e *Engine) MetricsListenAddr() string {
	if e.metricsRv == nil {
		return ""
	}
	return e.metricsRv.Addr()
}

// Router exposes the routing layer.
func (e *Engine) Router() *routing.Router { return e.router }

// Memory exposes the per-node memory managers.
func (e *Engine) Memory() *mem.System { return e.mems }

// AEUs returns the engine's workers.
func (e *Engine) AEUs() []*aeu.AEU { return e.aeus }

// Balancer exposes the load balancer (cycle reports).
func (e *Engine) Balancer() *balance.Balancer { return e.balancer }

// Faults exposes the fault-injection registry (nil unless Config.FaultSeed
// or Config.Routing.Faults enabled it).
func (e *Engine) Faults() *faults.Injector { return e.faults }

// NumAEUs returns the worker count.
func (e *Engine) NumAEUs() int { return len(e.aeus) }

// CreateIndex declares a range-partitioned prefix-tree index over the key
// domain [0, domain), split uniformly over all AEUs.
func (e *Engine) CreateIndex(id routing.ObjectID, domain uint64) error {
	if e.started {
		return fmt.Errorf("core: DDL after Start")
	}
	if _, dup := e.objects[id]; dup {
		return fmt.Errorf("core: object %d already exists", id)
	}
	if domain < uint64(len(e.aeus)) {
		return fmt.Errorf("core: domain %d smaller than AEU count %d", domain, len(e.aeus))
	}
	maxKey := e.treeConfigMaxKey()
	if domain-1 > maxKey {
		return fmt.Errorf("core: domain %d exceeds the configured %d-bit key space", domain, e.cfg.Tree.KeyBits)
	}
	meta := &objectMeta{
		id: id, kind: routing.RangePartitioned, domain: domain,
		store: make(map[topology.NodeID]*prefixtree.Store),
	}
	n := len(e.aeus)
	span := domain / uint64(n)
	entries := make([]csbtree.Entry, n)
	for i, a := range e.aeus {
		store := meta.store[a.Node]
		if store == nil {
			var err error
			store, err = prefixtree.NewStore(e.machine, e.mems.Node(a.Node), e.cfg.Tree)
			if err != nil {
				return err
			}
			meta.store[a.Node] = store
		}
		lo := uint64(i) * span
		hi := lo + span - 1
		if i == n-1 {
			hi = domain - 1
		}
		if _, err := a.AddIndexPartition(id, store, lo, hi); err != nil {
			return err
		}
		entries[i] = csbtree.Entry{Low: lo, Owner: uint32(i)}
	}
	entries[0].Low = 0
	if err := e.router.RegisterRange(id, entries); err != nil {
		return err
	}
	e.objects[id] = meta
	return nil
}

func (e *Engine) treeConfigMaxKey() uint64 {
	bits := e.cfg.Tree.KeyBits
	if bits == 0 {
		bits = 64
	}
	if bits == 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

// CreateColumn declares a size-partitioned column object with one partition
// per AEU.
func (e *Engine) CreateColumn(id routing.ObjectID) error {
	if e.started {
		return fmt.Errorf("core: DDL after Start")
	}
	if _, dup := e.objects[id]; dup {
		return fmt.Errorf("core: object %d already exists", id)
	}
	holders := make([]uint32, len(e.aeus))
	for i, a := range e.aeus {
		if _, err := a.AddColumnPartition(id, e.cfg.Column); err != nil {
			return err
		}
		holders[i] = uint32(i)
	}
	if err := e.router.RegisterSize(id, holders); err != nil {
		return err
	}
	e.objects[id] = &objectMeta{id: id, kind: routing.SizePartitioned}
	return nil
}

// Watch puts an object under load balancer control. For range objects the
// default metric is access frequency, for columns physical size.
func (e *Engine) Watch(id routing.ObjectID, alg balance.Algorithm) error {
	meta := e.objects[id]
	if meta == nil {
		return fmt.Errorf("core: unknown object %d", id)
	}
	metric := balance.AccessFrequency
	if meta.kind == routing.SizePartitioned {
		metric = balance.PhysicalSize
	}
	e.balancer.Watch(id, meta.domain, metric, alg)
	e.watched = true
	return nil
}

// EnableTimeline records per-bin throughput for the run (Figure 13); call
// after loading, before Start. The origin is the current slowest clock.
func (e *Engine) EnableTimeline(spanSec, binSec float64) *aeu.Timeline {
	tl := aeu.NewTimeline(spanSec, binSec)
	tl.SetOrigin(float64(e.machine.MinClock(0, topology.CoreID(len(e.aeus)))) / 1e3)
	for _, a := range e.aeus {
		a.SetTimeline(tl)
	}
	e.timeline = tl
	return tl
}

// SetGenerators installs a workload generator per AEU; fn is called with
// each AEU index.
func (e *Engine) SetGenerators(fn func(i int) aeu.Generator) {
	for i, a := range e.aeus {
		a.Generator = fn(i)
	}
}

// Start launches the AEU goroutines (and the balancer when objects are
// watched).
func (e *Engine) Start() error {
	if e.started {
		return fmt.Errorf("core: already started")
	}
	if e.cfg.MetricsAddr != "" {
		srv, err := metrics.Serve(e.cfg.MetricsAddr, e.reg.Snapshot)
		if err != nil {
			return fmt.Errorf("core: metrics endpoint: %w", err)
		}
		e.metricsRv = srv
	}
	e.started = true
	if e.cfg.Durable != nil {
		// Initial synchronous checkpoint, cut while the engine is still
		// quiescent: it covers everything loaded before Start (bulk loads
		// and recovered state are applied directly, not through the WAL),
		// so log replay alone never has to reconstruct them.
		if err := e.Checkpoint(); err != nil {
			e.started = false
			return fmt.Errorf("core: initial checkpoint: %w", err)
		}
	}
	for _, a := range e.aeus {
		e.wg.Add(1)
		go func(a *aeu.AEU) {
			defer e.wg.Done()
			a.Run()
		}(a)
	}
	e.loopsUp.Store(true)
	if e.watched {
		go e.balancer.Run()
	}
	if e.cfg.Durable != nil && e.cfg.CheckpointEvery > 0 {
		e.ckptStop = make(chan struct{})
		e.wg.Add(1)
		go e.checkpointLoop(e.ckptStop)
	}
	return nil
}

// MinClockSec returns the slowest AEU clock in virtual seconds.
func (e *Engine) MinClockSec() float64 {
	return float64(e.machine.MinClock(0, topology.CoreID(len(e.aeus)))) / 1e12
}

// WaitVirtual blocks until every AEU's virtual clock advanced by sec beyond
// the call time, or realTimeout elapses (an error then).
func (e *Engine) WaitVirtual(sec float64, realTimeout time.Duration) error {
	if !e.started {
		return fmt.Errorf("core: WaitVirtual before Start")
	}
	target := e.MinClockSec() + sec
	deadline := time.Now().Add(realTimeout)
	for e.MinClockSec() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("core: virtual time stalled at %.3fs waiting for %.3fs", e.MinClockSec(), target)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Stop terminates all workers and the balancer. It is idempotent and safe
// to call from several goroutines at once; every caller returns only after
// the engine is down.
func (e *Engine) Stop() {
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	if !e.started || e.stopped {
		return
	}
	e.stopped = true
	// End periodic checkpoints and wait out an in-flight one while the
	// loops can still serve its image requests.
	e.stopCheckpoints()
	// Fail in-flight synchronous client calls first: their replies die with
	// the AEU loops below, so waiting longer only turns a clean ErrClosed
	// into a 30-second timeout (and a leaked pending entry).
	e.failPending()
	// Stop the balancer before the workers so no new balancing cycle
	// starts mid-shutdown.
	if e.watched {
		e.balancer.Stop()
	}
	for _, a := range e.aeus {
		a.Stop()
	}
	e.wg.Wait()
	// Settle: balancing commands and partition payloads still in flight
	// when the loops exited must be applied, or their keys (and the
	// agreement between partition bounds and the routing table) would be
	// lost with the buffers.
	for round := 0; round < 16; round++ {
		busy := false
		for _, a := range e.aeus {
			if a.Settle() {
				busy = true
			}
		}
		if !busy {
			break
		}
	}
	e.loopsUp.Store(false)
	if e.cfg.Durable != nil {
		// Drain the logs so the final checkpoint (Close) supersedes fully
		// fsynced generations.
		e.cfg.Durable.Flush(5 * time.Second)
	}
	if e.metricsRv != nil {
		e.metricsRv.Close()
		e.metricsRv = nil
	}
}

// Close stops the engine and, with durability enabled, cuts a final
// checkpoint and closes the data directory cleanly. A crash-stopped
// engine skips both — its directory must stay exactly as the crash left
// it. Close implements io.Closer for API symmetry.
func (e *Engine) Close() error {
	e.Stop()
	mgr := e.cfg.Durable
	if mgr == nil {
		return nil
	}
	e.stopMu.Lock()
	crashed := e.crashed
	e.stopMu.Unlock()
	if crashed || mgr.Closed() || mgr.Crashed() {
		return nil
	}
	err := e.Checkpoint()
	mgr.Close()
	return err
}

// TotalOps sums completed storage operations over all AEUs.
func (e *Engine) TotalOps() int64 {
	var sum int64
	for _, a := range e.aeus {
		sum += a.Stats().Ops
	}
	return sum
}

// ObjectKind returns the partitioning kind of an object.
func (e *Engine) ObjectKind(id routing.ObjectID) (routing.TableKind, error) {
	meta := e.objects[id]
	if meta == nil {
		return 0, fmt.Errorf("core: unknown object %d", id)
	}
	return meta.kind, nil
}

// Domain returns the key domain of a range object.
func (e *Engine) Domain(id routing.ObjectID) (uint64, error) {
	meta := e.objects[id]
	if meta == nil || meta.kind != routing.RangePartitioned {
		return 0, fmt.Errorf("core: object %d is not a range object", id)
	}
	return meta.domain, nil
}
