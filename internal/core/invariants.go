package core

import (
	"fmt"

	"eris/internal/routing"
)

// TupleCount sums the tuples of one object over every AEU's partition.
// Chaos tests pair it with the count loaded before injection: conservation
// must hold no matter which control-plane faults fired, because every
// fail-soft path either leaves tuples where they were or completes the
// transfer — none drops data.
func (e *Engine) TupleCount(id routing.ObjectID) (int64, error) {
	if e.objects[id] == nil {
		return 0, fmt.Errorf("core: unknown object %d", id)
	}
	var sum int64
	for _, a := range e.aeus {
		if p := a.Partition(id); p != nil {
			sum += p.SizeTuples()
		}
	}
	return sum, nil
}

// CheckInvariants verifies the engine-level consistency guarantees of the
// balance/transfer control plane for every data object:
//
//   - the routing table of each range object is well formed — full domain
//     coverage from 0, strictly increasing bounds, ordered ownership (range
//     i owned by AEU i, the layout every balancing plan preserves);
//   - each AEU's partition bounds agree with the published routing table
//     (the last owner's high bound with the domain end), so no key is owned
//     by two AEUs or by none;
//   - every prefix tree's per-node counters are internally consistent;
//   - each size object's holder set is non-empty and every holder actually
//     has a partition.
//
// The checks read partition state without synchronization, so they must run
// on a quiescent engine — before Start or after Stop.
func (e *Engine) CheckInvariants() error {
	for id, meta := range e.objects {
		var err error
		if meta.kind == routing.RangePartitioned {
			err = e.checkRangeObject(id, meta)
		} else {
			err = e.checkSizeObject(id)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) checkRangeObject(id routing.ObjectID, meta *objectMeta) error {
	entries := e.router.OwnerEntries(id)
	if len(entries) != len(e.aeus) {
		return fmt.Errorf("core: object %d: %d routing ranges for %d AEUs", id, len(entries), len(e.aeus))
	}
	if entries[0].Low != 0 {
		return fmt.Errorf("core: object %d: routing table starts at %d, not 0", id, entries[0].Low)
	}
	for i, a := range e.aeus {
		en := entries[i]
		if en.Owner != uint32(i) {
			return fmt.Errorf("core: object %d: range %d owned by AEU %d, ordered ownership required", id, i, en.Owner)
		}
		if i > 0 && en.Low <= entries[i-1].Low {
			return fmt.Errorf("core: object %d: range bounds not increasing at %d (%d after %d)", id, i, en.Low, entries[i-1].Low)
		}
		p := a.Partition(id)
		if p == nil {
			return fmt.Errorf("core: object %d: AEU %d has no partition", id, i)
		}
		wantHi := meta.domain - 1
		if i+1 < len(entries) {
			wantHi = entries[i+1].Low - 1
		}
		if p.Lo != en.Low || p.Hi != wantHi {
			return fmt.Errorf("core: object %d: AEU %d bounds [%d,%d] disagree with routing table [%d,%d]",
				id, i, p.Lo, p.Hi, en.Low, wantHi)
		}
		if err := p.Tree.CheckCounts(); err != nil {
			return fmt.Errorf("core: object %d: AEU %d: %w", id, i, err)
		}
	}
	return nil
}

func (e *Engine) checkSizeObject(id routing.ObjectID) error {
	holders := e.router.Holders(id, nil)
	if len(holders) == 0 {
		return fmt.Errorf("core: object %d: empty holder set", id)
	}
	for _, h := range holders {
		if int(h) >= len(e.aeus) {
			return fmt.Errorf("core: object %d: holder %d out of range", id, h)
		}
		if e.aeus[h].Partition(id) == nil {
			return fmt.Errorf("core: object %d: holder %d has no partition", id, h)
		}
	}
	return nil
}
