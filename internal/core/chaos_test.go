package core

import (
	"testing"
	"time"

	"eris/internal/balance"
	"eris/internal/colstore"
	"eris/internal/faults"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// chaosSeed fixes every injection decision stream; a failing run reproduces
// byte-for-byte from it. The CI chaos job uses the same seed.
const chaosSeed = 42

const (
	chaosIdx routing.ObjectID = 7
	chaosCol routing.ObjectID = 8
)

// newChaosEngine builds a 4-AEU single-node engine with a tiny virtual
// sampling window, a short ack timeout (timed-out cycles must retry within
// the test deadline, not the production 30 s), and the deterministic fault
// registry enabled.
func newChaosEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{
		Topology: topology.SingleNode(4),
		Tree:     prefixtree.Config{KeyBits: 32, PrefixBits: 8},
		Column:   colstore.Config{ChunkEntries: 64},
		Balance: balance.Config{
			SampleIntervalSec: 20e-6,
			Threshold:         0.2,
			PollReal:          100 * time.Microsecond,
			AckTimeout:        250 * time.Millisecond,
		},
		FaultSeed: chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestChaosRangeBalancing injects every fault kind into an engine that is
// actively rebalancing a skewed range index and asserts the fail-soft
// contract: the engine survives, at least one cycle completes after the
// injections (eventual convergence), no tuple is lost, the routing table
// and partition bounds agree, and the failure is visible in a metrics
// counter.
func TestChaosRangeBalancing(t *testing.T) {
	for _, kind := range faults.Kinds() {
		kind := kind
		if kind == faults.DropConn || kind == faults.SlowWrite {
			// Wire-server faults; nothing in an engine-only run ever asks
			// the injector about them, so the recovery wait cannot end.
			// internal/server exercises both.
			continue
		}
		if kind == faults.TornWrite || kind == faults.FailFsync || kind == faults.FailWrite || kind == faults.Crash {
			// Durability faults; only consulted with a data directory.
			// The crash-recovery suite exercises them.
			continue
		}
		t.Run(kind.String(), func(t *testing.T) {
			e := newChaosEngine(t)
			const domain = 4000
			if err := e.CreateIndex(chaosIdx, domain); err != nil {
				t.Fatal(err)
			}
			if err := e.LoadIndexDense(chaosIdx, domain, nil); err != nil {
				t.Fatal(err)
			}
			if err := e.Watch(chaosIdx, balance.OneShot{}); err != nil {
				t.Fatal(err)
			}
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			defer e.Stop()

			rule := faults.Rule{Every: 2, Limit: 6}
			if kind == faults.FailAlloc {
				// Allocation attempts, not control events, are the eligible
				// stream here; fail a burst of them.
				rule = faults.Rule{Every: 1, Limit: 16}
			}
			e.Faults().Arm(kind, rule)

			// Skew all accesses onto AEU 0 so every sampling window sees an
			// imbalance and cycles keep coming until one completes cleanly.
			p0 := e.AEUs()[0].Partition(chaosIdx)
			mgr := e.Memory().Node(0)
			deadline := time.Now().Add(90 * time.Second)
			for {
				rep := e.Balancer().Report()
				if e.Faults().Injected(kind) > 0 && rep.Completed >= 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("no recovery: injected=%d report=%+v",
						e.Faults().Injected(kind), rep)
				}
				for i := 0; i < 200; i++ {
					p0.RecordAccess()
				}
				if kind == faults.FailAlloc {
					// Keep the node allocator busy while the balancer works;
					// transfer-path allocations share the same hook.
					mgr.Free(mgr.Alloc(1 << 12))
				}
				time.Sleep(time.Millisecond)
			}
			e.Faults().DisarmAll()
			e.Stop()

			if got, err := e.TupleCount(chaosIdx); err != nil || got != domain {
				t.Fatalf("tuple conservation violated: %d of %d (%v)", got, domain, err)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			snap := e.MetricsSnapshot()
			if n := snap.Counters["faults.injected."+kind.String()]; n == 0 {
				t.Fatal("faults.injected counter is empty")
			}
			// The induced failure must be visible in the component's own
			// accounting, not just the injector's.
			switch kind {
			case faults.DropAck:
				if snap.Counters["balance.acks_dropped"] == 0 {
					t.Fatal("balance.acks_dropped is empty")
				}
			case faults.CorruptFrame:
				if snap.Counters["routing.drain.corrupt_frames"] == 0 {
					t.Fatal("routing.drain.corrupt_frames is empty")
				}
			case faults.FailAlloc:
				if snap.SumCounters("mem.node.", ".alloc_failures") == 0 {
					t.Fatal("mem alloc_failures is empty")
				}
			}
		})
	}
}

// TestChaosSizeBalancing injects the transfer-relevant fault kinds while a
// fully skewed size-partitioned column is being rebalanced. Size cycles
// move the data even when their acks are lost, so convergence is asserted
// on the tuple distribution, then on conservation and the holder invariants.
func TestChaosSizeBalancing(t *testing.T) {
	for _, kind := range []faults.Kind{faults.DropAck, faults.CorruptFrame, faults.StallTransfer} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			e := newChaosEngine(t)
			if err := e.CreateColumn(chaosCol); err != nil {
				t.Fatal(err)
			}
			// All tuples start on AEU 0.
			const tuples = 2000
			vals := make([]uint64, tuples)
			for i := range vals {
				vals[i] = uint64(i)
			}
			e.AEUs()[0].Partition(chaosCol).Col.Append(0, vals)
			if err := e.Watch(chaosCol, balance.OneShot{}); err != nil {
				t.Fatal(err)
			}
			if err := e.Start(); err != nil {
				t.Fatal(err)
			}
			defer e.Stop()

			e.Faults().Arm(kind, faults.Rule{Every: 2, Limit: 6})

			maxHeld := func() int64 {
				var max int64
				for _, a := range e.AEUs() {
					if c := a.Partition(chaosCol).Col.Count(); c > max {
						max = c
					}
				}
				return max
			}
			deadline := time.Now().Add(90 * time.Second)
			for e.Faults().Injected(kind) == 0 || maxHeld() >= tuples/2 {
				if time.Now().After(deadline) {
					t.Fatalf("no convergence: injected=%d max=%d report=%+v",
						e.Faults().Injected(kind), maxHeld(), e.Balancer().Report())
				}
				time.Sleep(time.Millisecond)
			}
			e.Faults().DisarmAll()
			e.Stop()

			var total int64
			for _, a := range e.AEUs() {
				total += a.Partition(chaosCol).Col.Count()
			}
			if total != tuples {
				t.Fatalf("tuple conservation violated: %d of %d", total, tuples)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if e.MetricsSnapshot().Counters["faults.injected."+kind.String()] == 0 {
				t.Fatal("faults.injected counter is empty")
			}
		})
	}
}
