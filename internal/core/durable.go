package core

import (
	"fmt"
	"sort"
	"time"

	"eris/internal/aeu"
	"eris/internal/durable"
	"eris/internal/prefixtree"
	"eris/internal/routing"
)

// imageWait bounds how long Checkpoint waits for one AEU loop to serve an
// image request before retrying the whole collection.
const imageWait = 2 * time.Second

// Durable exposes the durability manager (nil without a data directory).
func (e *Engine) Durable() *durable.Manager { return e.cfg.Durable }

// Checkpoint cuts an engine-wide fuzzy checkpoint and publishes it. Per-AEU
// images are requested through the running loops (each AEU snapshots its
// partitions at an iteration boundary, rotating its WAL so the image's
// stamp is its replay cut); on a quiescent engine they are cut directly.
// Images are fuzzy across AEUs, so the collection is bracketed by the
// per-partition transfer generation counters and retried until no payload
// moved while it ran. Column transfers carry no log records, making the
// bracket their only consistency mechanism. Range transfers do log
// handoff/link pairs, but the bracket is still required: a checkpoint cut
// with a range payload in flight could capture the source after its
// handoff (pruning the handoff's generation — the extraction is inside
// the image) while the target's image predates the link, and a crash
// before the link record reaches disk would then lose the whole moved
// range with nothing left to replay it from. Transfers in flight at
// *crash* time (rather than checkpoint time) are the case the handoff/
// link replay covers.
func (e *Engine) Checkpoint() error {
	mgr := e.cfg.Durable
	if mgr == nil {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if mgr.Crashed() || mgr.Closed() {
			return fmt.Errorf("core: checkpoint on a crashed or closed durability manager")
		}
		data, err := e.collectImages()
		if err != nil {
			lastErr = err
			continue
		}
		return mgr.WriteCheckpoint(*data)
	}
	return fmt.Errorf("core: checkpoint: no stable image after 8 attempts: %w", lastErr)
}

// collectImages gathers one checkpoint's object metadata and per-AEU
// images, failing when a column or range transfer overlapped the
// collection.
func (e *Engine) collectImages() (*durable.CheckpointData, error) {
	gen1, inflight := e.xferSum()
	if inflight != 0 {
		time.Sleep(200 * time.Microsecond)
		return nil, fmt.Errorf("partition transfer in flight")
	}
	data := &durable.CheckpointData{AEUs: make([]durable.AEUImage, len(e.aeus))}
	if e.loopsUp.Load() {
		reqs := make([]*aeu.CkptRequest, len(e.aeus))
		for i, a := range e.aeus {
			reqs[i] = a.RequestCheckpoint()
		}
		deadline := time.After(imageWait)
		for i, r := range reqs {
			select {
			case <-r.Done:
				data.AEUs[i] = r.Image
			case <-deadline:
				return nil, fmt.Errorf("aeu %d image request timed out", i)
			}
		}
	} else {
		for i, a := range e.aeus {
			data.AEUs[i] = a.SnapshotDurable()
		}
	}
	gen2, inflight := e.xferSum()
	if gen1 != gen2 || inflight != 0 {
		return nil, fmt.Errorf("partition transfer overlapped the image collection")
	}
	for id, meta := range e.objects {
		kind := durable.KindRange
		if meta.kind == routing.SizePartitioned {
			kind = durable.KindSize
		}
		data.Objects = append(data.Objects, durable.ObjectMeta{
			ID: uint32(id), Kind: kind, Domain: meta.domain,
		})
	}
	sort.Slice(data.Objects, func(i, j int) bool { return data.Objects[i].ID < data.Objects[j].ID })
	return data, nil
}

// xferSum sums the partition-transfer state over every (AEU, object)
// pair — column-transfer counters for size objects, range-transfer
// counters for range objects; the whole-engine version of the bracket
// client scans use. Generations only ever grow, so two equal sums with
// zero in flight at both readings prove no transfer started, landed, or
// was afloat in between.
func (e *Engine) xferSum() (gen, inflight int64) {
	for id, meta := range e.objects {
		for _, a := range e.aeus {
			var g, f int64
			if meta.kind == routing.SizePartitioned {
				g, f = a.ColXferState(id)
			} else {
				g, f = a.RngXferState(id)
			}
			gen += g
			inflight += f
		}
	}
	return gen, inflight
}

// checkpointLoop runs periodic checkpoints until Stop. It selects on its
// own reference to the stop channel: stopCheckpoints nils the field, and
// reading it from here would both race and lose the close signal.
func (e *Engine) checkpointLoop(stop <-chan struct{}) {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Best effort: a failed periodic checkpoint (e.g. continuous
			// column balancing) leaves the previous one in place; the log
			// tails just stay longer.
			_ = e.Checkpoint()
		}
	}
}

// stopCheckpoints ends the periodic ticker and waits out an in-flight
// checkpoint, so no image request dangles once the loops exit. Callers
// hold stopMu.
func (e *Engine) stopCheckpoints() {
	if e.ckptStop != nil {
		close(e.ckptStop)
		e.ckptStop = nil
	}
	e.ckptMu.Lock()
	//lint:ignore SA2001 barrier: wait for an in-flight checkpoint to finish
	e.ckptMu.Unlock()
}

// CrashStop hard-stops the engine the way kill -9 would: the durability
// layer freezes first (unwritten log buffers vanish; with the torn_write
// fault armed, each log's unsynced tail is torn mid-record), in-flight
// client calls fail, and the loops exit with no settle rounds — transfer
// payloads still in flight die with the buffers. The data directory is
// left exactly as a crash would leave it, ready to be reopened.
func (e *Engine) CrashStop() {
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	if !e.started || e.stopped {
		return
	}
	e.stopped = true
	e.crashed = true
	e.stopCheckpoints()
	if e.cfg.Durable != nil {
		e.cfg.Durable.Crash()
	}
	e.failPending()
	if e.watched {
		e.balancer.Stop()
	}
	for _, a := range e.aeus {
		a.Stop()
	}
	e.wg.Wait()
	e.loopsUp.Store(false)
	if e.metricsRv != nil {
		e.metricsRv.Close()
		e.metricsRv = nil
	}
}

// Crashed reports whether the engine was stopped via CrashStop.
func (e *Engine) Crashed() bool {
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	return e.crashed
}

// Restore loads recovered durable state into a fresh, not-yet-started
// engine: each object is re-created with its recovered metadata and its
// merged tuple set is distributed over the new uniform partitioning. The
// bounds and routing tables are therefore rebuilt from scratch — recovery
// does not try to reproduce the pre-crash balancer placement, which also
// makes restore independent of the AEU count the data was written under.
func (e *Engine) Restore(rec *durable.Recovered) error {
	if e.started {
		return fmt.Errorf("core: Restore after Start")
	}
	if rec == nil {
		return nil
	}
	for _, o := range rec.Objects {
		id := routing.ObjectID(o.ID)
		switch o.Kind {
		case durable.KindRange:
			if err := e.CreateIndex(id, o.Domain); err != nil {
				return err
			}
			e.restoreKVs(id, o.KVs)
		case durable.KindSize:
			if err := e.CreateColumn(id); err != nil {
				return err
			}
			e.restoreColumn(id, o.ColValues)
		default:
			return fmt.Errorf("core: recovered object %d has unknown kind %d", o.ID, o.Kind)
		}
	}
	return nil
}

// restoreKVs applies a recovered (key-sorted) tuple set directly to the
// owning partitions, like the bulk loaders: the engine is not started, so
// partition trees are written without routing.
func (e *Engine) restoreKVs(id routing.ObjectID, kvs []prefixtree.KV) {
	const batch = 256
	buf := make([]prefixtree.KV, 0, batch)
	var cur *aeu.AEU
	flush := func() {
		if cur != nil && len(buf) > 0 {
			cur.Partition(id).Tree.UpsertBatch(cur.Core, buf)
			buf = buf[:0]
		}
	}
	for _, kv := range kvs {
		a := e.aeus[e.router.Owner(id, kv.Key)]
		if a != cur || len(buf) == batch {
			flush()
			cur = a
		}
		buf = append(buf, kv)
	}
	flush()
}

// restoreColumn splits a recovered value set evenly over the column
// partitions, mirroring LoadColumnUniform.
func (e *Engine) restoreColumn(id routing.ObjectID, values []uint64) {
	n := len(e.aeus)
	if n == 0 || len(values) == 0 {
		return
	}
	per := len(values) / n
	off := 0
	for i, a := range e.aeus {
		end := off + per
		if i == n-1 {
			end = len(values)
		}
		p := a.Partition(id)
		for off < end {
			chunk := end - off
			if chunk > 4096 {
				chunk = 4096
			}
			p.Col.Append(a.Core, values[off:off+chunk])
			off += chunk
		}
	}
}
