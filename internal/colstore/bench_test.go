package colstore

// Scan microbenchmarks: filtered column scans at several selectivities over
// clustered data (values correlated with position, so per-block value
// ranges are tight) and uniform data (hashed values, so every block spans
// the whole domain). Clustered data is where zone-map pruning pays off;
// uniform data measures the raw filter kernel with pruning defeated.
//
// Run with -benchmem: the scan path must not allocate.

import (
	"testing"
)

const benchEntries = 1 << 18 // 256 K values, 64 blocks of 4096

// benchColumn loads a column with benchEntries values. Clustered columns
// hold value = position; uniform columns hold a hash of the position.
func benchColumn(b *testing.B, clustered bool) *Column {
	b.Helper()
	f := newFixture(b)
	col := f.local(0, 4096)
	buf := make([]uint64, 4096)
	for base := 0; base < benchEntries; base += len(buf) {
		for i := range buf {
			v := uint64(base + i)
			if !clustered {
				v ^= v >> 33
				v *= 0xff51afd7ed558ccd
				v ^= v >> 33
			}
			buf[i] = v
		}
		col.Append(0, buf)
	}
	return col
}

// selPred returns a predicate matching roughly frac of a clustered column.
func selPred(frac float64) Predicate {
	n := uint64(float64(benchEntries) * frac)
	if n == 0 {
		n = 1
	}
	return Predicate{Op: Less, Operand: n}
}

func BenchmarkColScanClustered(b *testing.B) {
	col := benchColumn(b, true)
	snap := col.Snapshot()
	for _, sel := range []struct {
		name string
		frac float64
	}{
		{"sel=0.1%", 0.001},
		{"sel=1%", 0.01},
		{"sel=10%", 0.1},
		{"sel=100%", 1.0},
	} {
		b.Run(sel.name, func(b *testing.B) {
			p := selPred(sel.frac)
			want := int64(float64(benchEntries) * sel.frac)
			b.SetBytes(benchEntries * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := col.ScanFiltered(0, snap, p)
				if res.Matched != want {
					b.Fatalf("matched %d, want %d", res.Matched, want)
				}
			}
		})
	}
}

func BenchmarkColScanUniform(b *testing.B) {
	col := benchColumn(b, false)
	snap := col.Snapshot()
	for _, sel := range []struct {
		name string
		frac float64
	}{
		{"sel=1%", 0.01},
		{"sel=50%", 0.5},
		{"sel=100%", 1.0},
	} {
		b.Run(sel.name, func(b *testing.B) {
			// Uniform hashed values: a threshold at frac of the u64 domain
			// matches ~frac of the values, and every block's zone map spans
			// (nearly) the whole domain, so pruning cannot help.
			var p Predicate
			if sel.frac >= 1.0 {
				p = Predicate{Op: All}
			} else {
				p = Predicate{Op: Less, Operand: uint64(float64(1<<63) * sel.frac * 2)}
			}
			b.SetBytes(benchEntries * 8)
			b.ResetTimer()
			var matched int64
			for i := 0; i < b.N; i++ {
				res := col.ScanFiltered(0, snap, p)
				matched = res.Matched
			}
			_ = matched
		})
	}
}

// BenchmarkColScanAllocs asserts the filtered-scan path does not allocate
// (the -benchmem companion to the aeu serve-path AllocsPerRun guard).
func BenchmarkColScanAllocs(b *testing.B) {
	col := benchColumn(b, true)
	snap := col.Snapshot()
	p := selPred(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.ScanFiltered(0, snap, p)
	}
}
