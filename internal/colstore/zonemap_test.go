package colstore

import (
	"sync"
	"testing"

	"eris/internal/topology"
)

// refScan is the oracle for filtered scans: a plain loop over the live
// visible values applying Predicate.Matches.
func refScan(col *Column, snapshot int64, p Predicate) (matched int64, sum uint64) {
	for _, v := range col.Values(0, snapshot) {
		if p.Matches(v) {
			matched++
			sum += v
		}
	}
	return matched, sum
}

// checkScan compares ScanFiltered and a one-spec SharedScan against the
// oracle for one predicate.
func checkScan(t *testing.T, col *Column, p Predicate) {
	t.Helper()
	snap := col.Snapshot()
	wantM, wantS := refScan(col, snap, p)
	res := col.ScanFiltered(0, snap, p)
	if res.Matched != wantM || res.Sum != wantS {
		t.Errorf("ScanFiltered(%+v) = (%d, %d), want (%d, %d)", p, res.Matched, res.Sum, wantM, wantS)
	}
	specs := []ScanSpec{SpecOf(p)}
	aggs := make([]ScanAgg, 1)
	var scratch ScanScratch
	col.SharedScan(0, snap, specs, aggs, &scratch)
	if int64(aggs[0].Matched) != wantM || aggs[0].Sum != wantS {
		t.Errorf("SharedScan(%+v) = (%d, %d), want (%d, %d)", p, aggs[0].Matched, aggs[0].Sum, wantM, wantS)
	}
}

func TestScanEmptyColumn(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 16)
	res := col.ScanFiltered(0, col.Snapshot(), Predicate{Op: All})
	if res.Scanned != 0 || res.Matched != 0 || res.BlocksScanned+res.BlocksPruned+res.BlocksFullHit != 0 {
		t.Fatalf("empty column scan = %+v", res)
	}
	var scratch ScanScratch
	aggs := make([]ScanAgg, 1)
	stats := col.SharedScan(0, col.Snapshot(), []ScanSpec{SpecOf(Predicate{Op: All})}, aggs, &scratch)
	if stats != (ScanStats{}) || aggs[0] != (ScanAgg{}) {
		t.Fatalf("empty column shared scan: stats %+v aggs %+v", stats, aggs[0])
	}
}

func TestScanPartialBlock(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 16)
	col.Append(0, seq(7)) // one block, less than half filled
	for _, p := range []Predicate{
		{Op: All},
		{Op: Less, Operand: 3},
		{Op: Between, Operand: 2, High: 5},
		{Op: Equal, Operand: 6},
		{Op: Greater, Operand: 6}, // nothing
	} {
		checkScan(t, col, p)
	}
}

func TestScanAllDeletedBlock(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 8)
	col.Append(0, seq(16)) // two full blocks
	for pos := int64(0); pos < 8; pos++ {
		if !col.Delete(0, pos) {
			t.Fatalf("delete %d failed", pos)
		}
	}
	if got := col.Count(); got != 8 {
		t.Fatalf("live count = %d, want 8", got)
	}
	// The all-deleted block must be pruned without evaluation, even though
	// its (stale, superset) zone map still overlaps the predicate.
	res := col.ScanFiltered(0, col.Snapshot(), Predicate{Op: Less, Operand: 8})
	if res.Matched != 0 || res.Sum != 0 {
		t.Fatalf("all-deleted block matched %d (sum %d)", res.Matched, res.Sum)
	}
	if res.BlocksPruned == 0 {
		t.Fatalf("all-deleted block was not pruned: %+v", res)
	}
	checkScan(t, col, Predicate{Op: All})
	checkScan(t, col, Predicate{Op: Between, Operand: 0, High: 15})
}

// TestScanBlockBoundaryPredicates pins the zone-map comparisons on
// predicates that sit exactly on a block's min or max: off-by-one in a
// skip/full-accept comparison flips the result at these points.
func TestScanBlockBoundaryPredicates(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 8)
	col.Append(0, seq(24)) // blocks [0,7] [8,15] [16,23]
	for _, p := range []Predicate{
		{Op: Less, Operand: 8},                      // bounds [0,7]: exactly block 0
		{Op: Less, Operand: 9},                      // [0,8]: block 0 full, block 1 partial
		{Op: Greater, Operand: 15},                  // [16,max]: exactly block 2
		{Op: Greater, Operand: 16},                  // block 2 partial
		{Op: Between, Operand: 8, High: 15},         // exactly block 1
		{Op: Between, Operand: 7, High: 16},         // straddles all three
		{Op: Between, Operand: 8, High: 8},          // block 1's min alone
		{Op: Between, Operand: 15, High: 15},        // block 1's max alone
		{Op: Equal, Operand: 7},                     // block 0's max
		{Op: Equal, Operand: 8},                     // block 1's min
		{Op: Equal, Operand: 24},                    // just past the column max
		{Op: Less, Operand: 0},                      // matches nothing
		{Op: Greater, Operand: ^uint64(0)},          // matches nothing
		{Op: Between, Operand: 10, High: 2},         // inverted: matches nothing
		{Op: Between, Operand: 0, High: ^uint64(0)}, // matches everything
	} {
		checkScan(t, col, p)
	}

	// Exactly-on-boundary predicates must full-accept whole blocks, not
	// evaluate them.
	res := col.ScanFiltered(0, col.Snapshot(), Predicate{Op: Between, Operand: 8, High: 15})
	if res.BlocksFullHit != 1 || res.BlocksPruned != 2 || res.BlocksScanned != 0 {
		t.Fatalf("boundary between: %+v, want 1 full-hit + 2 pruned", res)
	}
}

func TestUpsertAfterDeleteReusesSlot(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 8)
	col.Append(0, seq(8))
	if !col.Delete(0, 3) {
		t.Fatal("delete failed")
	}
	if col.Delete(0, 3) {
		t.Fatal("double delete succeeded")
	}
	if got := col.Count(); got != 7 {
		t.Fatalf("count after delete = %d", got)
	}
	checkScan(t, col, Predicate{Op: All})
	checkScan(t, col, Predicate{Op: Equal, Operand: 3})

	// Revive the slot with a new value; count, sum and zone map follow.
	if !col.Upsert(0, 3, 100) {
		t.Fatal("upsert failed")
	}
	if got := col.Count(); got != 8 {
		t.Fatalf("count after revive = %d", got)
	}
	checkScan(t, col, Predicate{Op: All})
	checkScan(t, col, Predicate{Op: Equal, Operand: 100})
	checkScan(t, col, Predicate{Op: Equal, Operand: 3}) // the old value is gone

	// Overwrite a live slot: the sum shifts, no count change.
	if !col.Upsert(0, 0, 42) {
		t.Fatal("overwrite failed")
	}
	checkScan(t, col, Predicate{Op: All})
	if col.Upsert(0, 99, 1) || col.Delete(0, 99) {
		t.Fatal("out-of-range position accepted")
	}
}

// TestSharedScanManyPredicates checks a multi-scan shared pass (including
// duplicate predicates, which share one kernel run) against the oracle.
func TestSharedScanManyPredicates(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 16)
	col.Append(0, seq(200))
	col.Delete(0, 17)
	col.Delete(0, 150)
	preds := []Predicate{
		{Op: All},
		{Op: Less, Operand: 40},
		{Op: Less, Operand: 40}, // duplicate: kernel-run reuse path
		{Op: Between, Operand: 100, High: 160},
		{Op: Equal, Operand: 17}, // deleted value
		{Op: Greater, Operand: 198},
	}
	specs := make([]ScanSpec, len(preds))
	for i, p := range preds {
		specs[i] = SpecOf(p)
	}
	aggs := make([]ScanAgg, len(preds))
	var scratch ScanScratch
	snap := col.Snapshot()
	col.SharedScan(0, snap, specs, aggs, &scratch)
	for i, p := range preds {
		wantM, wantS := refScan(col, snap, p)
		if int64(aggs[i].Matched) != wantM || aggs[i].Sum != wantS {
			t.Errorf("shared scan %d (%+v) = (%d, %d), want (%d, %d)",
				i, p, aggs[i].Matched, aggs[i].Sum, wantM, wantS)
		}
	}
}

// TestSharedScanSteadyStateAllocs guards the selection-bitmap kernel path:
// after warm-up, shared passes must not allocate.
func TestSharedScanSteadyStateAllocs(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 64)
	col.Append(0, seq(1000))
	col.Delete(0, 70) // force the tombstone-masking kernel path too
	specs := []ScanSpec{
		SpecOf(Predicate{Op: Less, Operand: 500}),
		SpecOf(Predicate{Op: Between, Operand: 100, High: 900}),
		SpecOf(Predicate{Op: All}),
	}
	aggs := make([]ScanAgg, len(specs))
	var scratch ScanScratch
	snap := col.Snapshot()
	run := func() {
		clear(aggs)
		col.SharedScan(0, snap, specs, aggs, &scratch)
	}
	run() // warm-up sizes the scratch
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("SharedScan allocates %.1f times per pass in steady state", avg)
	}
}

// TestDetachDuringSharedScans moves the partition tail (the balancer's
// detach/link transfer path) while shared scans at pre-detach snapshots
// are running concurrently; under -race this doubles as the lock-discipline
// check for scans vs. structural mutation.
func TestDetachDuringSharedScans(t *testing.T) {
	f := newFixture(t)
	src := f.local(0, 16)
	dst := f.local(0, 16)
	src.Append(0, seq(500))
	src.Delete(0, 123)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			var scratch ScanScratch
			specs := []ScanSpec{SpecOf(Predicate{Op: Less, Operand: 250})}
			aggs := make([]ScanAgg, 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The column shrinks concurrently; a snapshot taken just
				// before each pass keeps the pass internally consistent.
				snap := src.Snapshot()
				clear(aggs)
				src.SharedScan(topology.CoreID(core), snap, specs, aggs, &scratch)
			}
		}(g)
	}
	moved := int64(0)
	for moved < 400 {
		det := src.DetachTail(0, 40)
		moved += det.Count()
		if err := dst.LinkDetached(0, 0, det); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()

	// Conservation: every live tuple is in exactly one of the two columns.
	if got := src.Count() + dst.Count(); got != 499 {
		t.Fatalf("live tuples after transfers = %d, want 499", got)
	}
	wantM, wantS := int64(0), uint64(0)
	for v := uint64(0); v < 250; v++ {
		if v != 123 {
			wantM++
			wantS += v
		}
	}
	sres := src.ScanFiltered(0, src.Snapshot(), Predicate{Op: Less, Operand: 250})
	dres := dst.ScanFiltered(0, dst.Snapshot(), Predicate{Op: Less, Operand: 250})
	if sres.Matched+dres.Matched != wantM || sres.Sum+dres.Sum != wantS {
		t.Fatalf("post-transfer scan = (%d, %d), want (%d, %d)",
			sres.Matched+dres.Matched, sres.Sum+dres.Sum, wantM, wantS)
	}
}

func TestPredicateBounds(t *testing.T) {
	max := ^uint64(0)
	cases := []struct {
		p      Predicate
		lo, hi uint64
		ok     bool
	}{
		{Predicate{Op: All}, 0, max, true},
		{Predicate{Op: Less, Operand: 10}, 0, 9, true},
		{Predicate{Op: Less, Operand: 0}, 0, 0, false},
		{Predicate{Op: Greater, Operand: 10}, 11, max, true},
		{Predicate{Op: Greater, Operand: max}, 0, 0, false},
		{Predicate{Op: Equal, Operand: 7}, 7, 7, true},
		{Predicate{Op: Between, Operand: 3, High: 9}, 3, 9, true},
		{Predicate{Op: Between, Operand: 9, High: 3}, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, ok := c.p.Bounds()
		if ok != c.ok || (ok && (lo != c.lo || hi != c.hi)) {
			t.Errorf("Bounds(%+v) = (%d, %d, %v), want (%d, %d, %v)", c.p, lo, hi, ok, c.lo, c.hi, c.ok)
		}
		if !c.ok {
			spec := SpecOf(c.p)
			if spec.Lo <= spec.Hi {
				t.Errorf("SpecOf(%+v) = %+v, want empty interval", c.p, spec)
			}
		}
	}
}
