package colstore

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

type fixture struct {
	machine *numasim.Machine
	sys     *mem.System
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	machine, err := numasim.New(topology.Intel(), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{machine: machine, sys: mem.NewSystem(machine)}
}

func (f *fixture) local(node topology.NodeID, chunkEntries int) *Column {
	return NewLocal(f.machine, Config{ChunkEntries: chunkEntries}, f.sys.Node(node))
}

func seq(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

func TestAppendScanRoundtrip(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 16)
	col.Append(0, seq(100)) // spans several chunks
	if got := col.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	got := col.Values(0, col.Snapshot())
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("value[%d] = %d", i, v)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 16)
	col.Append(0, seq(50))
	snap := col.Snapshot()
	col.Append(0, seq(50))
	if n := col.Scan(0, snap, nil); n != 50 {
		t.Fatalf("scan at old snapshot saw %d entries, want 50", n)
	}
	if n := col.Scan(0, col.Snapshot(), nil); n != 100 {
		t.Fatalf("scan at new snapshot saw %d entries, want 100", n)
	}
}

func TestScanFiltered(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 32)
	col.Append(0, seq(100))
	cases := []struct {
		p           Predicate
		matched     int64
		sumExpected bool
		sum         uint64
	}{
		{Predicate{Op: All}, 100, true, 4950},
		{Predicate{Op: Less, Operand: 10}, 10, true, 45},
		{Predicate{Op: Greater, Operand: 97}, 2, true, 98 + 99},
		{Predicate{Op: Equal, Operand: 42}, 1, true, 42},
		{Predicate{Op: Between, Operand: 10, High: 19}, 10, true, 145},
	}
	for _, c := range cases {
		res := col.ScanFiltered(0, col.Snapshot(), c.p)
		if res.Scanned != 100 || res.Matched != c.matched || res.Sum != c.sum {
			t.Errorf("pred %+v: %+v", c.p, res)
		}
	}
}

func TestScanChargesBandwidth(t *testing.T) {
	f := newFixture(t)
	col := f.local(2, 1024)
	col.Append(20, seq(4096)) // core 20 is on node 2: local append
	e := f.machine.StartEpoch()
	col.Scan(20, col.Snapshot(), nil)
	if got := e.MCBytes(2); got != 4096*8 {
		t.Errorf("MC bytes = %d, want %d", got, 4096*8)
	}
	if got := e.TotalLinkBytes(); got != 0 {
		t.Errorf("local scan produced %d link bytes", got)
	}
	// Remote scan crosses links.
	e2 := f.machine.StartEpoch()
	col.Scan(0, col.Snapshot(), nil) // core 0 on node 0
	if got := e2.TotalLinkBytes(); got != 4096*8 {
		t.Errorf("remote scan link bytes = %d", got)
	}
}

func TestDetachTailWholeChunks(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 10)
	col.Append(0, seq(40))
	d := col.DetachTail(0, 20)
	if d.Count() != 20 || col.Count() != 20 {
		t.Fatalf("detach: moved %d, left %d", d.Count(), col.Count())
	}
	// Remaining values unchanged.
	for i, v := range col.Values(0, col.Snapshot()) {
		if v != uint64(i) {
			t.Fatalf("kept value[%d] = %d", i, v)
		}
	}
	// Relink to another column on the same node preserves order.
	col2 := f.local(0, 10)
	if err := col2.LinkDetached(0, 0, d); err != nil {
		t.Fatal(err)
	}
	vals := col2.Values(0, col2.Snapshot())
	for i, v := range vals {
		if v != uint64(20+i) {
			t.Fatalf("linked value[%d] = %d, want %d", i, v, 20+i)
		}
	}
}

func TestDetachTailSplitsChunk(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 10)
	col.Append(0, seq(25))
	d := col.DetachTail(0, 7) // chunk boundary at 20: moves 5 whole + splits 2
	if d.Count() != 7 || col.Count() != 18 {
		t.Fatalf("moved %d, left %d", d.Count(), col.Count())
	}
	col2 := f.local(0, 10)
	if err := col2.LinkDetached(0, 0, d); err != nil {
		t.Fatal(err)
	}
	vals := col2.Values(0, col2.Snapshot())
	if len(vals) != 7 {
		t.Fatalf("linked %d values", len(vals))
	}
	for i, v := range vals {
		if v != uint64(18+i) {
			t.Fatalf("split value[%d] = %d, want %d", i, v, 18+i)
		}
	}
}

func TestDetachMoreThanCount(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 10)
	col.Append(0, seq(5))
	d := col.DetachTail(0, 100)
	if d.Count() != 5 || col.Count() != 0 {
		t.Fatalf("moved %d, left %d", d.Count(), col.Count())
	}
}

func TestLinkDetachedRejectsRemoteChunks(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 10)
	col.Append(0, seq(10))
	d := col.DetachTail(0, 10)
	col2 := f.local(1, 10)
	if err := col2.LinkDetached(10, 1, d); err == nil {
		t.Fatal("linking remote chunks did not fail")
	}
}

func TestCopyDetachedCrossNode(t *testing.T) {
	f := newFixture(t)
	src := f.local(0, 10)
	src.Append(0, seq(35))
	d := src.DetachTail(0, 25)
	dst := f.local(1, 10)
	e := f.machine.StartEpoch()
	dst.CopyDetached(10, d, f.sys.Free) // core 10 on node 1
	if dst.Count() != 25 {
		t.Fatalf("copied %d", dst.Count())
	}
	vals := dst.Values(10, dst.Snapshot())
	for i, v := range vals {
		if v != uint64(10+i) {
			t.Fatalf("copied value[%d] = %d, want %d", i, v, 10+i)
		}
	}
	// The copy must have crossed the interconnect.
	if e.TotalLinkBytes() == 0 {
		t.Error("cross-node copy produced no link traffic")
	}
	// Source blocks were released.
	if got := f.sys.Node(0).AllocatedBytes(); got != src.Bytes() {
		t.Errorf("node 0 allocated %d, want %d (only the retained chunks)", got, src.Bytes())
	}
}

func TestReleaseFreesAll(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 10)
	col.Append(0, seq(100))
	col.Release()
	if got := f.sys.Node(0).AllocatedBytes(); got != 0 {
		t.Errorf("allocated after release = %d", got)
	}
	if col.Count() != 0 {
		t.Errorf("count after release = %d", col.Count())
	}
}

func TestDetachLinkProperty(t *testing.T) {
	f := newFixture(t)
	check := func(total16, move16 uint16) bool {
		total := int(total16%500) + 1
		move := int64(move16) % (int64(total) + 1)
		col := f.local(0, 13)
		col.Append(0, seq(total))
		d := col.DetachTail(0, move)
		col2 := f.local(0, 13)
		if err := col2.LinkDetached(0, 0, d); err != nil {
			return false
		}
		if col.Count()+col2.Count() != int64(total) {
			return false
		}
		// Concatenation equals the original sequence.
		vals := append(col.Values(0, col.Snapshot()), col2.Values(0, col2.Snapshot())...)
		for i, v := range vals {
			if v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSharedScans(t *testing.T) {
	f := newFixture(t)
	col := f.local(0, 256)
	col.Append(0, seq(10000))
	snapshot := col.Snapshot() // taken before the concurrent appends begin
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(core topology.CoreID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(core)))
			for i := 0; i < 20; i++ {
				res := col.ScanFiltered(core, snapshot, Predicate{Op: Less, Operand: uint64(rng.Intn(10000))})
				if res.Scanned != 10000 {
					t.Errorf("scanned %d", res.Scanned)
					return
				}
			}
		}(topology.CoreID(w))
	}
	// Concurrent appends must not disturb snapshot scans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			col.Append(0, seq(100))
		}
	}()
	wg.Wait()
}
