// Package colstore implements the simple column store that backs ERIS's
// scan-oriented data objects (Section 4). A Column is an append-only
// sequence of 64-bit values stored in node-local chunks. Scans stream the
// chunks sequentially (charging the simulated machine with pure-bandwidth
// accesses) and support predicate push-down; isolation for scan sharing
// comes from an MVCC-lite snapshot: the column's entry count at command
// time bounds what a scan may see, so appends never block or tear a running
// scan.
//
// For load balancing, whole chunks move between AEUs by reference when both
// live on the same node (the "link" mechanism) and are flattened/copied
// across nodes otherwise.
package colstore

import (
	"fmt"
	"sync"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// Config shapes a column.
type Config struct {
	// ChunkEntries is the number of 64-bit entries per chunk. Default 65536
	// (512 KiB chunks).
	ChunkEntries int
}

func (c Config) withDefaults() Config {
	if c.ChunkEntries == 0 {
		c.ChunkEntries = 1 << 16
	}
	return c
}

// Alloc produces the backing block for a chunk; it decides the home node.
type Alloc func(size int64) mem.Block

// Free releases a chunk's block.
type Free func(b mem.Block)

type chunk struct {
	data  []uint64
	block mem.Block
	used  int
}

// Column is one partition of a columnar data object.
//
// A Column is owned by a single AEU in ERIS; the mutex only matters for the
// NUMA-agnostic shared baselines, where many workers append to and scan one
// column concurrently.
type Column struct {
	machine *numasim.Machine
	cfg     Config
	alloc   Alloc
	release Free

	mu     sync.RWMutex
	chunks []chunk
	count  int64
}

// New creates an empty column whose chunks are placed by alloc.
func New(machine *numasim.Machine, cfg Config, alloc Alloc, release Free) *Column {
	cfg = cfg.withDefaults()
	return &Column{machine: machine, cfg: cfg, alloc: alloc, release: release}
}

// NewLocal creates a column allocating on one node's manager — the normal
// AEU-owned partition.
func NewLocal(machine *numasim.Machine, cfg Config, mgr *mem.Manager) *Column {
	return New(machine, cfg, mgr.Alloc, mgr.Free)
}

// Count returns the number of entries (also the current MVCC snapshot).
func (c *Column) Count() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count
}

// Bytes returns the simulated bytes held by the column's chunks.
func (c *Column) Bytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum int64
	for i := range c.chunks {
		sum += c.chunks[i].block.Size
	}
	return sum
}

// Snapshot returns the entry count to use as an MVCC read bound.
func (c *Column) Snapshot() int64 { return c.Count() }

// Append adds values to the column, charging core with sequential writes to
// the chunks' home nodes.
func (c *Column) Append(core topology.CoreID, values []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(values) > 0 {
		if len(c.chunks) == 0 || c.chunks[len(c.chunks)-1].used == c.cfg.ChunkEntries {
			block := c.alloc(int64(c.cfg.ChunkEntries) * 8)
			c.chunks = append(c.chunks, chunk{
				data:  make([]uint64, c.cfg.ChunkEntries),
				block: block,
			})
		}
		ck := &c.chunks[len(c.chunks)-1]
		n := copy(ck.data[ck.used:], values)
		c.machine.Stream(core, ck.block.Home, int64(n)*8)
		ck.used += n
		c.count += int64(n)
		values = values[n:]
	}
}

// scanComputeNSPerByte models the per-byte CPU cost of predicate evaluation
// (~80 GB/s per core), low enough that scans stay memory-bound as in the
// paper.
const scanComputeNSPerByte = 0.0125

// Scan streams all entries up to the snapshot bound through fn in insertion
// order, charging sequential reads. fn receives each chunk's visible slice.
func (c *Column) Scan(core topology.CoreID, snapshot int64, fn func(values []uint64)) int64 {
	c.mu.RLock()
	chunks := c.chunks
	c.mu.RUnlock()

	var seen int64
	for i := range chunks {
		if seen >= snapshot {
			break
		}
		ck := &chunks[i]
		n := int64(ck.used)
		if seen+n > snapshot {
			n = snapshot - seen
		}
		if n <= 0 {
			break
		}
		c.machine.Stream(core, ck.block.Home, n*8)
		c.machine.AdvanceNS(core, float64(n*8)*scanComputeNSPerByte)
		if fn != nil {
			fn(ck.data[:n])
		}
		seen += n
	}
	return seen
}

// Predicate is a push-down filter for scans.
type Predicate struct {
	Op      PredicateOp
	Operand uint64
	// High is the inclusive upper bound for Between.
	High uint64
}

// PredicateOp enumerates the supported comparison operators.
type PredicateOp uint8

// Supported predicate operators.
const (
	All PredicateOp = iota
	Less
	Greater
	Equal
	Between
)

// Matches evaluates the predicate for one value.
func (p Predicate) Matches(v uint64) bool {
	switch p.Op {
	case All:
		return true
	case Less:
		return v < p.Operand
	case Greater:
		return v > p.Operand
	case Equal:
		return v == p.Operand
	case Between:
		return v >= p.Operand && v <= p.High
	}
	return false
}

// ScanResult aggregates a filtered scan.
type ScanResult struct {
	Scanned int64
	Matched int64
	Sum     uint64 // sum of matching values, wrapping
}

// ScanFiltered streams the column once, evaluating the predicate and
// aggregating; this is the storage operation behind the paper's scan data
// command.
func (c *Column) ScanFiltered(core topology.CoreID, snapshot int64, p Predicate) ScanResult {
	var res ScanResult
	res.Scanned = c.Scan(core, snapshot, func(values []uint64) {
		for _, v := range values {
			if p.Matches(v) {
				res.Matched++
				res.Sum += v
			}
		}
	})
	return res
}

// Detached is a run of chunks detached from a column for a partition
// transfer.
type Detached struct {
	chunks []chunk
	count  int64
}

// Count returns the number of entries in the detached run.
func (d *Detached) Count() int64 { return d.count }

// DetachTail removes the last n entries from the column. Whole chunks move
// by reference; a partially covered chunk is split by copying its tail into
// a fresh chunk (charged as a local stream).
func (c *Column) DetachTail(core topology.CoreID, n int64) *Detached {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &Detached{}
	if n > c.count {
		n = c.count
	}
	for n > 0 && len(c.chunks) > 0 {
		last := &c.chunks[len(c.chunks)-1]
		if int64(last.used) <= n {
			// Unlink the whole chunk.
			d.chunks = append(d.chunks, *last)
			d.count += int64(last.used)
			n -= int64(last.used)
			c.count -= int64(last.used)
			c.chunks = c.chunks[:len(c.chunks)-1]
			continue
		}
		// Split: copy the tail of the chunk into a new chunk.
		keep := int64(last.used) - n
		block := c.alloc(int64(c.cfg.ChunkEntries) * 8)
		split := chunk{data: make([]uint64, c.cfg.ChunkEntries), block: block}
		copy(split.data, last.data[keep:last.used])
		split.used = int(n)
		c.machine.Stream(core, last.block.Home, n*8)
		c.machine.Stream(core, block.Home, n*8)
		last.used = int(keep)
		d.chunks = append(d.chunks, split)
		d.count += n
		c.count -= n
		n = 0
	}
	// Detached chunks come off the tail newest-first; restore order.
	for i, j := 0, len(d.chunks)-1; i < j; i, j = i+1, j-1 {
		d.chunks[i], d.chunks[j] = d.chunks[j], d.chunks[i]
	}
	return d
}

// LinkDetached appends a detached run by reference. Every chunk must be
// homed on node (the caller's local node): linking is only legal within one
// memory-management domain.
func (c *Column) LinkDetached(core topology.CoreID, node topology.NodeID, d *Detached) error {
	for i := range d.chunks {
		if d.chunks[i].block.Home != node {
			return fmt.Errorf("colstore: link of chunk homed on node %d into node %d; use CopyDetached",
				d.chunks[i].block.Home, node)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.chunks = append(c.chunks, d.chunks...)
	c.count += d.count
	d.chunks, d.count = nil, 0
	return nil
}

// CopyDetached appends a detached run by value: the target AEU streams the
// source chunks into freshly allocated local chunks (the cross-node "copy"
// transfer), then releases the source blocks.
func (c *Column) CopyDetached(core topology.CoreID, d *Detached, releaseSrc Free) {
	for i := range d.chunks {
		src := &d.chunks[i]
		if src.used == 0 {
			releaseSrc(src.block)
			continue
		}
		c.appendCopied(core, src)
		releaseSrc(src.block)
	}
	d.chunks, d.count = nil, 0
}

// appendCopied streams one source chunk into the column.
func (c *Column) appendCopied(core topology.CoreID, src *chunk) {
	c.mu.Lock()
	defer c.mu.Unlock()
	values := src.data[:src.used]
	for len(values) > 0 {
		if len(c.chunks) == 0 || c.chunks[len(c.chunks)-1].used == c.cfg.ChunkEntries {
			block := c.alloc(int64(c.cfg.ChunkEntries) * 8)
			c.chunks = append(c.chunks, chunk{data: make([]uint64, c.cfg.ChunkEntries), block: block})
		}
		ck := &c.chunks[len(c.chunks)-1]
		n := copy(ck.data[ck.used:], values)
		// The copy loop reads the remote source and writes locally; the
		// slower leg dominates, which StreamBetween models.
		c.machine.StreamBetween(core, src.block.Home, ck.block.Home, int64(n)*8)
		ck.used += n
		c.count += int64(n)
		values = values[n:]
	}
}

// Release frees all chunks of the column.
func (c *Column) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.chunks {
		c.release(c.chunks[i].block)
	}
	c.chunks, c.count = nil, 0
}

// Values copies the visible entries into a slice; test and small-result
// support, not a streaming path.
func (c *Column) Values(core topology.CoreID, snapshot int64) []uint64 {
	out := make([]uint64, 0, snapshot)
	c.Scan(core, snapshot, func(values []uint64) {
		out = append(out, values...)
	})
	return out
}
