// Package colstore implements the block-wise column store that backs ERIS's
// scan-oriented data objects (Section 4). A Column is a position-addressed
// sequence of 64-bit values stored in fixed-size blocks, each carried by one
// node-local mem.Block allocation. Every block maintains a zone map — the
// min/max of its live values, a widen-only superset — plus a tombstone
// bitmap with a deleted count and a wrapping sum, all updated incrementally
// on append, upsert and delete.
//
// Scans are block-at-a-time: a predicate implies an inclusive value
// interval (Predicate.Bounds), and each block's zone map decides, without
// touching the values, whether the block is skipped (no overlap), accepted
// whole (contained, matched/sum served from the block summary) or
// evaluated. Evaluated blocks run a branch-light vectorized filter kernel
// that materializes a selection bitmap (SharedScan) or aggregates directly
// (ScanFiltered). Virtual time is charged per block touched: pruned and
// full-hit blocks cost one zone check, only evaluated blocks stream their
// bytes — so zone-map pruning shows up in the simulated fig-8-style cost
// numbers exactly as it would on the real machine.
//
// Isolation for scan sharing comes from an MVCC-lite snapshot: the column's
// appended-position count at command time bounds what a scan may see, so
// appends never block or tear a running scan. Tombstoning and in-place
// upserts are owner-side operations (the AEU that owns the partition);
// they are serialized with scans by the column mutex.
//
// For load balancing, whole blocks move between AEUs by reference when both
// live on the same node (the "link" mechanism) and are flattened/copied —
// compacting tombstones away — across nodes otherwise.
package colstore

import (
	"fmt"
	"math/bits"
	"sync"

	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/topology"
)

// Config shapes a column.
type Config struct {
	// ChunkEntries is the number of 64-bit entries per block. Default 4096
	// (32 KiB blocks): small enough that zone maps prune at fine grain,
	// large enough that the per-block overhead stays invisible next to the
	// value stream.
	ChunkEntries int
}

func (c Config) withDefaults() Config {
	if c.ChunkEntries == 0 {
		c.ChunkEntries = 4096
	}
	return c
}

// Alloc produces the backing allocation for a block; it decides the home
// node.
type Alloc func(size int64) mem.Block

// Free releases a block's allocation.
type Free func(b mem.Block)

// block is one fixed-size run of the column plus its incremental summary.
//
// Invariants (all maintained under the column mutex):
//   - start is the column position of data[0]; blocks tile [0, count).
//   - zmin/zmax bound every live value in the block (a widen-only
//     superset: deletes do not narrow them).
//   - sum is the exact wrapping sum of the live values.
//   - dead counts set bits in del; del == nil means no tombstones.
type block struct {
	data  []uint64
	del   []uint64 // tombstone bitmap, 1 bit per slot; nil until first delete
	mem   mem.Block
	start int64
	used  int
	dead  int
	zmin  uint64
	zmax  uint64
	sum   uint64
}

// delGet reports whether slot i is tombstoned.
//
//eris:hotpath
func (b *block) delGet(i int) bool {
	return b.del != nil && b.del[i/64]&(1<<uint(i%64)) != 0
}

// noteInsert widens the zone map and sum for a newly live value.
//
//eris:hotpath
func (b *block) noteInsert(v uint64) {
	if v < b.zmin {
		b.zmin = v
	}
	if v > b.zmax {
		b.zmax = v
	}
	b.sum += v
}

// recompute rebuilds the zone map and sum from the live slots. The
// incremental maps are widen-only (deletes never narrow them), so a block
// that tombstoned its extremes carries a stale superset; transfers
// recompute before handing a block over so the receiving AEU's scans
// regain pruning and full-hit eligibility.
//
//eris:hotpath
func (b *block) recompute() {
	b.zmin, b.zmax, b.sum = ^uint64(0), 0, 0
	for i := 0; i < b.used; i++ {
		if b.delGet(i) {
			continue
		}
		b.noteInsert(b.data[i])
	}
}

// Column is one partition of a columnar data object.
//
// A Column is owned by a single AEU in ERIS; the mutex only matters for the
// NUMA-agnostic shared baselines and for tests, where many workers append
// to and scan one column concurrently. Scans hold the read lock for the
// whole pass, so mutators are serialized against them.
type Column struct {
	machine *numasim.Machine
	cfg     Config
	alloc   Alloc
	release Free

	mu     sync.RWMutex
	blocks []block
	count  int64 // appended positions present (the MVCC snapshot bound)
	dead   int64 // tombstoned positions among them
}

// New creates an empty column whose blocks are placed by alloc.
func New(machine *numasim.Machine, cfg Config, alloc Alloc, release Free) *Column {
	cfg = cfg.withDefaults()
	return &Column{machine: machine, cfg: cfg, alloc: alloc, release: release}
}

// NewLocal creates a column allocating on one node's manager — the normal
// AEU-owned partition.
func NewLocal(machine *numasim.Machine, cfg Config, mgr *mem.Manager) *Column {
	return New(machine, cfg, mgr.Alloc, mgr.Free)
}

// Count returns the number of live entries (appended minus tombstoned).
//
//eris:hotpath
func (c *Column) Count() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.count - c.dead
}

// Bytes returns the simulated bytes held by the column's blocks.
func (c *Column) Bytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum int64
	for i := range c.blocks {
		sum += c.blocks[i].mem.Size
	}
	return sum
}

// Snapshot returns the position count to use as an MVCC read bound. It
// counts appended positions, not live entries: tombstones stay visible to
// position-bounded readers, which is what keeps the bound monotonic.
//
//eris:hotpath
func (c *Column) Snapshot() int64 {
	c.mu.RLock() //eris:allowblock column RWMutex write-locked only for bounded transfer splices; read side never waits on I/O
	defer c.mu.RUnlock()
	return c.count
}

// newBlock allocates an empty block starting at column position start.
//
//eris:hotpath
func (c *Column) newBlock(start int64) block {
	return block{
		data:  make([]uint64, c.cfg.ChunkEntries), //eris:allowalloc block allocation amortized over ChunkEntries appends
		mem:   c.alloc(int64(c.cfg.ChunkEntries) * 8),
		start: start,
		zmin:  ^uint64(0),
	}
}

// tailBlock returns the block with append space, allocating one if needed.
// Caller holds the write lock.
//
//eris:hotpath
func (c *Column) tailBlock() *block {
	if len(c.blocks) == 0 || c.blocks[len(c.blocks)-1].used == c.cfg.ChunkEntries {
		c.blocks = append(c.blocks, c.newBlock(c.count))
	}
	return &c.blocks[len(c.blocks)-1]
}

// Append adds values to the column, charging core with sequential writes to
// the blocks' home nodes and folding each value into its block's zone map.
//
//eris:hotpath
func (c *Column) Append(core topology.CoreID, values []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(values) > 0 {
		b := c.tailBlock()
		n := copy(b.data[b.used:], values)
		c.machine.Stream(core, b.mem.Home, int64(n)*8)
		for _, v := range values[:n] {
			b.noteInsert(v)
		}
		b.used += n
		c.count += int64(n)
		values = values[n:]
	}
}

// blockOf returns the block containing position pos, or nil. Caller holds
// a lock.
//
//eris:hotpath
func (c *Column) blockOf(pos int64) *block {
	lo, hi := 0, len(c.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.blocks[mid].start+int64(c.blocks[mid].used) <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.blocks) || pos < c.blocks[lo].start {
		return nil
	}
	return &c.blocks[lo]
}

// Delete tombstones the value at position pos, updating the block's deleted
// count and sum in place (the zone map is a widen-only superset and is not
// narrowed). It reports whether a live entry was deleted.
//
//eris:hotpath
func (c *Column) Delete(core topology.CoreID, pos int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.blockOf(pos)
	if b == nil {
		return false
	}
	i := int(pos - b.start)
	if b.del == nil {
		b.del = make([]uint64, (len(b.data)+63)/64) //eris:allowalloc first delete in a block allocates its bitmap once
	}
	w, bit := i/64, uint(i%64)
	if b.del[w]&(1<<bit) != 0 {
		return false
	}
	b.del[w] |= 1 << bit
	b.dead++
	c.dead++
	b.sum -= b.data[i]
	// One value read plus one bitmap word write.
	c.machine.Stream(core, b.mem.Home, 16)
	return true
}

// Upsert overwrites the value at position pos, reviving the slot if it was
// tombstoned, and maintains the block's zone map, sum and deleted count
// incrementally. It reports whether pos addressed an appended slot.
//
//eris:hotpath
func (c *Column) Upsert(core topology.CoreID, pos int64, v uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.blockOf(pos)
	if b == nil {
		return false
	}
	i := int(pos - b.start)
	if b.delGet(i) {
		b.del[i/64] &^= 1 << uint(i%64)
		b.dead--
		c.dead--
		b.sum += v
	} else {
		b.sum += v - b.data[i]
	}
	b.data[i] = v
	if v < b.zmin {
		b.zmin = v
	}
	if v > b.zmax {
		b.zmax = v
	}
	c.machine.Stream(core, b.mem.Home, 16)
	return true
}

// Scan cost model: evaluated blocks pay bandwidth for their bytes plus
// per-byte predicate compute (~80 GB/s per core, low enough that scans stay
// memory-bound as in the paper); pruned and full-hit blocks pay only a
// zone-map check — a block-header read and two compares — per attached
// scan, never per tuple skipped.
const (
	scanComputeNSPerByte = 0.0125
	zoneCheckNSPerBlock  = 2.0
)

// Scan streams all positions up to the snapshot bound through fn in
// insertion order, charging sequential reads. fn receives each block's
// visible slice, tombstoned slots included — this is the raw position-
// oriented walk; filtered scans go through ScanFiltered or SharedScan.
// fn must not call back into the column (the read lock is held).
//
//eris:hotpath
func (c *Column) Scan(core topology.CoreID, snapshot int64, fn func(values []uint64)) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var seen int64
	for i := range c.blocks {
		if seen >= snapshot {
			break
		}
		b := &c.blocks[i]
		n := int64(b.used)
		if seen+n > snapshot {
			n = snapshot - seen
		}
		if n <= 0 {
			break
		}
		c.machine.Stream(core, b.mem.Home, n*8)
		c.machine.AdvanceNS(core, float64(n*8)*scanComputeNSPerByte)
		if fn != nil {
			fn(b.data[:n])
		}
		seen += n
	}
	return seen
}

// Predicate is a push-down filter for scans.
type Predicate struct {
	Op      PredicateOp
	Operand uint64
	// High is the inclusive upper bound for Between.
	High uint64
}

// PredicateOp enumerates the supported comparison operators.
type PredicateOp uint8

// Supported predicate operators.
const (
	All PredicateOp = iota
	Less
	Greater
	Equal
	Between
)

// Matches evaluates the predicate for one value.
//
//eris:hotpath
func (p Predicate) Matches(v uint64) bool {
	switch p.Op {
	case All:
		return true
	case Less:
		return v < p.Operand
	case Greater:
		return v > p.Operand
	case Equal:
		return v == p.Operand
	case Between:
		return v >= p.Operand && v <= p.High
	}
	return false
}

// Bounds returns the inclusive value interval the predicate can match.
// ok is false when the predicate matches nothing (Less 0, Greater MaxUint64,
// inverted Between) — the empty interval that prunes every block.
//
//eris:hotpath
func (p Predicate) Bounds() (lo, hi uint64, ok bool) {
	switch p.Op {
	case All:
		return 0, ^uint64(0), true
	case Less:
		if p.Operand == 0 {
			return 0, 0, false
		}
		return 0, p.Operand - 1, true
	case Greater:
		if p.Operand == ^uint64(0) {
			return 0, 0, false
		}
		return p.Operand + 1, ^uint64(0), true
	case Equal:
		return p.Operand, p.Operand, true
	case Between:
		if p.Operand > p.High {
			return 0, 0, false
		}
		return p.Operand, p.High, true
	}
	return 0, 0, false
}

// ScanSpec is one scan's share of a shared pass: the predicate to evaluate
// plus the inclusive value bounds used for zone-map pruning. The bounds are
// normally Pred.Bounds(), but the multicast fan-out carries them on the
// scan command so every receiver prunes independently without re-deriving
// them. Lo > Hi is the empty interval: the scan matches nothing.
type ScanSpec struct {
	Pred   Predicate
	Lo, Hi uint64
}

// SpecOf derives a scan spec with the predicate's own bounds.
//
//eris:hotpath
func SpecOf(p Predicate) ScanSpec {
	lo, hi, ok := p.Bounds()
	if !ok {
		return ScanSpec{Pred: p, Lo: 1, Hi: 0}
	}
	return ScanSpec{Pred: p, Lo: lo, Hi: hi}
}

// ScanAgg accumulates one scan's aggregate over a shared pass.
type ScanAgg struct {
	Matched uint64
	Sum     uint64 // wrapping
}

// ScanStats counts block outcomes of a scan pass. Each counts (block,
// scan) decisions: a shared pass over b blocks serving s scans records
// b*s outcomes in total.
type ScanStats struct {
	BlocksScanned int64 // blocks whose values were evaluated for a scan
	BlocksPruned  int64 // blocks skipped by the zone map (no overlap)
	BlocksFullHit int64 // blocks accepted whole from the block summary
}

// ScanScratch is the reusable per-caller state of SharedScan: the selection
// bitmap and the per-scan verdict buffer. It grows to the largest block and
// scan count seen and then stays allocation-free; one scratch must not be
// shared by concurrent scans.
type ScanScratch struct {
	bits     []uint64
	verdicts []uint8
}

// Block verdicts of the zone-map check.
const (
	verdictEval uint8 = iota
	verdictSkip
	verdictFull
)

// verdict classifies a block against one scan's bounds. visible is how many
// of the block's slots the snapshot exposes; full acceptance requires the
// whole block to be visible, because the summary covers all live slots.
//
//eris:hotpath
func (b *block) verdict(s ScanSpec, visible int64) uint8 {
	if b.used == b.dead || s.Lo > s.Hi || b.zmax < s.Lo || b.zmin > s.Hi {
		return verdictSkip
	}
	if visible == int64(b.used) && b.zmin >= s.Lo && b.zmax <= s.Hi {
		return verdictFull
	}
	return verdictEval
}

// predWord evaluates p over up to 64 values, returning one selection bit
// per value plus the matched count and wrapping sum of the matching values.
// The comparison loops are branch-free (borrow and xor-normalization
// tricks) with the count and sum fused in as masked adds, so the kernel's
// speed does not depend on the selectivity or the data order and no
// per-match extraction pass is needed.
//
//eris:hotpath
func predWord(p Predicate, vals []uint64) (w, matched, sum uint64) {
	switch p.Op {
	case All:
		for _, v := range vals {
			sum += v
		}
		if len(vals) == 64 {
			return ^uint64(0), 64, sum
		}
		return uint64(1)<<uint(len(vals)) - 1, uint64(len(vals)), sum
	case Less:
		for j, v := range vals {
			_, borrow := bits.Sub64(v, p.Operand, 0) // 1 iff v < operand
			w |= borrow << uint(j)
			matched += borrow
			sum += v & (0 - borrow)
		}
	case Greater:
		for j, v := range vals {
			_, borrow := bits.Sub64(p.Operand, v, 0) // 1 iff v > operand
			w |= borrow << uint(j)
			matched += borrow
			sum += v & (0 - borrow)
		}
	case Equal:
		for j, v := range vals {
			x := v ^ p.Operand
			hit := 1 - (x|(0-x))>>63 // 1 iff v == operand
			w |= hit << uint(j)
			matched += hit
			sum += v & (0 - hit)
		}
	case Between:
		for j, v := range vals {
			_, below := bits.Sub64(v, p.Operand, 0) // 1 iff v < lo
			_, above := bits.Sub64(p.High, v, 0)    // 1 iff v > hi
			hit := 1 - (below | above)
			w |= hit << uint(j)
			matched += hit
			sum += v & (0 - hit)
		}
	}
	return w, matched, sum
}

// aggValues is the aggregate-only kernel: the same branch-free comparisons
// as predWord but without materializing selection bits, for passes over
// blocks with no tombstones where nothing downstream needs the bitmap.
// Dropping the bit-building removes a serial shift/or chain per value.
//
//eris:hotpath
func aggValues(p Predicate, vals []uint64) (matched, sum uint64) {
	switch p.Op {
	case All:
		for _, v := range vals {
			sum += v
		}
		return uint64(len(vals)), sum
	case Less:
		for _, v := range vals {
			_, borrow := bits.Sub64(v, p.Operand, 0)
			matched += borrow
			sum += v & (0 - borrow)
		}
	case Greater:
		for _, v := range vals {
			_, borrow := bits.Sub64(p.Operand, v, 0)
			matched += borrow
			sum += v & (0 - borrow)
		}
	case Equal:
		for _, v := range vals {
			x := v ^ p.Operand
			hit := 1 - (x|(0-x))>>63
			matched += hit
			sum += v & (0 - hit)
		}
	case Between:
		for _, v := range vals {
			_, below := bits.Sub64(v, p.Operand, 0)
			_, above := bits.Sub64(p.High, v, 0)
			hit := 1 - (below | above)
			matched += hit
			sum += v & (0 - hit)
		}
	}
	return matched, sum
}

// filterBlock runs the vectorized filter kernel over one block's visible
// values: it evaluates p 64 values at a time, masks tombstoned slots, and
// returns the matched count and wrapping sum. When bm is non-nil the
// selection bitmap is materialized into it word by word (bm must hold
// (len(vals)+63)/64 words) so later consumers can reuse the surviving set.
//
//eris:hotpath
func filterBlock(bm []uint64, vals []uint64, del []uint64, p Predicate) (matched, sum uint64) {
	words := (len(vals) + 63) / 64
	for w := 0; w < words; w++ {
		base := w * 64
		end := base + 64
		if end > len(vals) {
			end = len(vals)
		}
		word, m, s := predWord(p, vals[base:end])
		if del != nil && del[w] != 0 {
			// Tombstoned slots drop out of the selection; the fused count
			// and sum included them, so recompute both from the surviving
			// bits (the slow path — blocks without deletes never take it).
			word &^= del[w]
			m = uint64(bits.OnesCount64(word))
			s = 0
			for t := word; t != 0; t &= t - 1 {
				s += vals[base+bits.TrailingZeros64(t)]
			}
		}
		if bm != nil {
			bm[w] = word
		}
		matched += m
		sum += s
	}
	return matched, sum
}

// SharedScan is the morsel-driven shared pass: it walks the blocks once and
// feeds every attached scan's aggregate. Per block, each scan's zone-map
// verdict is computed first; the block's values are streamed only if at
// least one scan must evaluate them, and consecutive scans with an
// identical predicate share one kernel run. aggs[i] accumulates specs[i]'s
// result (the caller zeroes it); scratch holds the selection bitmap and is
// reused across calls.
//
// Virtual cost: one zone check per (block, scan); one byte stream plus one
// per-byte compute charge per evaluated (block, kernel run). Pruned and
// full-hit blocks never touch their values.
//
//eris:hotpath
func (c *Column) SharedScan(core topology.CoreID, snapshot int64, specs []ScanSpec, aggs []ScanAgg, scratch *ScanScratch) ScanStats {
	var stats ScanStats
	if len(specs) == 0 {
		return stats
	}
	if cap(scratch.verdicts) < len(specs) {
		scratch.verdicts = make([]uint8, len(specs)) //eris:allowalloc amortized scan-scratch growth, reused across shared scans
	}
	verdicts := scratch.verdicts[:len(specs)]

	c.mu.RLock() //eris:allowblock column RWMutex write-locked only for bounded transfer splices; read side never waits on I/O
	defer c.mu.RUnlock()
	var seen int64
	for bi := range c.blocks {
		if seen >= snapshot {
			break
		}
		b := &c.blocks[bi]
		n := int64(b.used)
		if seen+n > snapshot {
			n = snapshot - seen
		}
		if n <= 0 {
			break
		}
		c.machine.AdvanceNS(core, zoneCheckNSPerBlock*float64(len(specs)))
		evals := 0
		for i := range specs {
			v := b.verdict(specs[i], n)
			verdicts[i] = v
			if v == verdictEval {
				evals++
			}
		}
		if evals > 0 {
			// The block's values cross the memory system once per pass, no
			// matter how many scans evaluate them.
			c.machine.Stream(core, b.mem.Home, n*8)
			words := (int(n) + 63) / 64
			if cap(scratch.bits) < words {
				scratch.bits = make([]uint64, words) //eris:allowalloc amortized scan-scratch growth, reused across shared scans
			}
		}
		var prevPred Predicate
		var prevM, prevS uint64
		havePrev := false
		for i := range specs {
			switch verdicts[i] {
			case verdictSkip:
				stats.BlocksPruned++
			case verdictFull:
				stats.BlocksFullHit++
				aggs[i].Matched += uint64(b.used - b.dead)
				aggs[i].Sum += b.sum
			default:
				stats.BlocksScanned++
				if havePrev && specs[i].Pred == prevPred {
					// Identical predicate in the same shared pass: the
					// surviving bitmap (and its aggregate) is reused.
					aggs[i].Matched += prevM
					aggs[i].Sum += prevS
					continue
				}
				m, s := filterBlock(scratch.bits[:(int(n)+63)/64], b.data[:n], b.del, specs[i].Pred)
				c.machine.AdvanceNS(core, float64(n*8)*scanComputeNSPerByte)
				aggs[i].Matched += m
				aggs[i].Sum += s
				prevPred, prevM, prevS, havePrev = specs[i].Pred, m, s, true
			}
		}
		seen += n
	}
	return stats
}

// ScanResult aggregates a filtered scan.
type ScanResult struct {
	Scanned int64 // positions visible at the snapshot (pruned or not)
	Matched int64
	Sum     uint64 // sum of matching values, wrapping

	// Block outcomes of the pass (see ScanStats).
	BlocksScanned int64
	BlocksPruned  int64
	BlocksFullHit int64
}

// ScanFiltered runs one predicate over the column with zone-map pruning,
// aggregating matched count and sum; this is the storage operation behind
// the paper's scan data command. It needs no scratch (the single-predicate
// kernel aggregates without materializing the selection bitmap), so it is
// safe to call concurrently from many readers.
func (c *Column) ScanFiltered(core topology.CoreID, snapshot int64, p Predicate) ScanResult {
	spec := SpecOf(p)
	var res ScanResult
	c.mu.RLock()
	defer c.mu.RUnlock()
	var seen int64
	for bi := range c.blocks {
		if seen >= snapshot {
			break
		}
		b := &c.blocks[bi]
		n := int64(b.used)
		if seen+n > snapshot {
			n = snapshot - seen
		}
		if n <= 0 {
			break
		}
		c.machine.AdvanceNS(core, zoneCheckNSPerBlock)
		switch b.verdict(spec, n) {
		case verdictSkip:
			res.BlocksPruned++
		case verdictFull:
			res.BlocksFullHit++
			res.Matched += int64(b.used - b.dead)
			res.Sum += b.sum
		default:
			res.BlocksScanned++
			c.machine.Stream(core, b.mem.Home, n*8)
			c.machine.AdvanceNS(core, float64(n*8)*scanComputeNSPerByte)
			var m, s uint64
			if b.del == nil {
				m, s = aggValues(p, b.data[:n])
			} else {
				m, s = filterBlock(nil, b.data[:n], b.del, p)
			}
			res.Matched += int64(m)
			res.Sum += s
		}
		seen += n
	}
	res.Scanned = seen
	return res
}

// Detached is a run of blocks detached from a column for a partition
// transfer.
type Detached struct {
	blocks []block
	count  int64 // positions
	dead   int64 // tombstones among them
}

// Count returns the number of positions in the detached run (tombstones
// included; they are compacted away by a cross-node copy).
//
//eris:hotpath
func (d *Detached) Count() int64 { return d.count }

// DetachTail removes the last n positions from the column. Whole blocks
// move by reference with their zone maps and tombstones; a partially
// covered block is split by copying its tail into a fresh block (charged as
// a local stream) whose summary is rebuilt from the copied slots.
func (c *Column) DetachTail(core topology.CoreID, n int64) *Detached {
	c.mu.Lock() //eris:allowblock bounded pointer-splice critical section on the transfer path; no I/O under the lock
	defer c.mu.Unlock()
	d := &Detached{}
	if n > c.count {
		n = c.count
	}
	for n > 0 && len(c.blocks) > 0 {
		last := &c.blocks[len(c.blocks)-1]
		if int64(last.used) <= n {
			// Unlink the whole block. A block carrying tombstones first
			// re-derives its summary from the surviving slots: the
			// widen-only zone map may be stale around deleted extremes,
			// and handing over a tight one restores the new holder's
			// pruning and full-hit eligibility (a linked block keeps the
			// map forever; a copied one is compacted anyway).
			if last.dead > 0 {
				c.machine.Stream(core, last.mem.Home, int64(last.used)*8)
				last.recompute()
			}
			d.blocks = append(d.blocks, *last)
			d.count += int64(last.used)
			d.dead += int64(last.dead)
			n -= int64(last.used)
			c.count -= int64(last.used)
			c.dead -= int64(last.dead)
			c.blocks = c.blocks[:len(c.blocks)-1]
			continue
		}
		// Split: copy the tail of the block into a new block, moving the
		// covered tombstones and rebuilding both summaries (the kept
		// block's zone map stays as a superset; its sum and deleted count
		// are exact by subtraction).
		keep := int64(last.used) - n
		split := c.newBlock(0) // start is assigned when the run is relinked
		copy(split.data, last.data[keep:last.used])
		split.used = int(n)
		for i := 0; i < split.used; i++ {
			if last.delGet(int(keep) + i) {
				if split.del == nil {
					split.del = make([]uint64, (len(split.data)+63)/64)
				}
				split.del[i/64] |= 1 << uint(i%64)
				split.dead++
			} else {
				split.noteInsert(split.data[i])
			}
		}
		c.machine.Stream(core, last.mem.Home, n*8)
		c.machine.Stream(core, split.mem.Home, n*8)
		last.used = int(keep)
		last.sum -= split.sum
		last.dead -= split.dead
		c.count -= n
		c.dead -= int64(split.dead)
		d.blocks = append(d.blocks, split)
		d.count += n
		d.dead += int64(split.dead)
		n = 0
	}
	// Detached blocks come off the tail newest-first; restore order.
	for i, j := 0, len(d.blocks)-1; i < j; i, j = i+1, j-1 {
		d.blocks[i], d.blocks[j] = d.blocks[j], d.blocks[i]
	}
	return d
}

// LinkDetached appends a detached run by reference, renumbering the linked
// blocks' start positions. Every block must be homed on node (the caller's
// local node): linking is only legal within one memory-management domain.
func (c *Column) LinkDetached(core topology.CoreID, node topology.NodeID, d *Detached) error {
	for i := range d.blocks {
		if d.blocks[i].mem.Home != node {
			return fmt.Errorf("colstore: link of block homed on node %d into node %d; use CopyDetached",
				d.blocks[i].mem.Home, node)
		}
	}
	c.mu.Lock() //eris:allowblock bounded pointer-splice critical section on the transfer path; no I/O under the lock
	defer c.mu.Unlock()
	for i := range d.blocks {
		d.blocks[i].start = c.count
		c.blocks = append(c.blocks, d.blocks[i])
		c.count += int64(d.blocks[i].used)
		c.dead += int64(d.blocks[i].dead)
	}
	d.blocks, d.count, d.dead = nil, 0, 0
	return nil
}

// CopyDetached appends a detached run by value: the target AEU streams the
// source blocks' live values into freshly allocated local blocks (the
// cross-node "copy" transfer), compacting tombstones away, then releases
// the source allocations.
func (c *Column) CopyDetached(core topology.CoreID, d *Detached, releaseSrc Free) {
	for i := range d.blocks {
		src := &d.blocks[i]
		if src.used > src.dead {
			c.appendCopied(core, src)
		}
		releaseSrc(src.mem)
	}
	d.blocks, d.count, d.dead = nil, 0, 0
}

// appendCopied streams one source block's live values into the column.
func (c *Column) appendCopied(core topology.CoreID, src *block) {
	c.mu.Lock() //eris:allowblock bounded per-block copy on the transfer path; no I/O under the lock
	defer c.mu.Unlock()
	copied := 0
	var home topology.NodeID
	for i := 0; i < src.used; i++ {
		if src.delGet(i) {
			continue
		}
		b := c.tailBlock()
		v := src.data[i]
		b.data[b.used] = v
		b.noteInsert(v)
		b.used++
		c.count++
		copied++
		home = b.mem.Home
	}
	if copied > 0 {
		// The copy loop reads the remote source and writes locally; the
		// slower leg dominates, which StreamBetween models.
		c.machine.StreamBetween(core, src.mem.Home, home, int64(copied)*8)
	}
}

// Release frees all blocks of the column.
func (c *Column) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.blocks {
		c.release(c.blocks[i].mem)
	}
	c.blocks, c.count, c.dead = nil, 0, 0
}

// Values copies the live visible entries into a slice; test and
// small-result support, not a streaming path.
func (c *Column) Values(core topology.CoreID, snapshot int64) []uint64 {
	out := make([]uint64, 0, snapshot)
	c.mu.RLock() //eris:allowblock column RWMutex write-locked only for bounded transfer splices; read side never waits on I/O
	defer c.mu.RUnlock()
	var seen int64
	for bi := range c.blocks {
		if seen >= snapshot {
			break
		}
		b := &c.blocks[bi]
		n := int64(b.used)
		if seen+n > snapshot {
			n = snapshot - seen
		}
		if n <= 0 {
			break
		}
		c.machine.Stream(core, b.mem.Home, n*8)
		for i := 0; i < int(n); i++ {
			if !b.delGet(i) {
				out = append(out, b.data[i])
			}
		}
		seen += n
	}
	return out
}
