package colstore

// Regression tests for zone-map staleness across partition transfers: the
// incremental maps are widen-only, so a block whose extremes were
// tombstoned keeps advertising them. A transfer used to hand such blocks
// over verbatim — the receiving holder then evaluated scans a tight map
// would have pruned (or answered from aggregates) forever, since linked
// blocks never rebuild their summaries.

import "testing"

// TestDetachTailRecomputesZoneMapOverTombstones tombstones one block's low
// extreme, detaches it whole and links it into a second column: the
// migrated block must prune a scan over the deleted value span and answer
// a scan of the surviving span straight from its aggregates.
func TestDetachTailRecomputesZoneMapOverTombstones(t *testing.T) {
	f := newFixture(t)
	src := f.local(0, 64)
	src.Append(0, seq(128)) // two full blocks: values [0,63] and [64,127]
	for pos := int64(64); pos < 100; pos++ {
		if !src.Delete(0, pos) {
			t.Fatalf("delete %d failed", pos)
		}
	}

	d := src.DetachTail(0, 64) // the whole second block, 36 tombstones included
	if d.Count() != 64 {
		t.Fatalf("detached %d positions, want 64", d.Count())
	}
	dst := f.local(0, 64)
	if err := dst.LinkDetached(0, 0, d); err != nil {
		t.Fatal(err)
	}
	if got := dst.Count(); got != 28 {
		t.Fatalf("live count after link = %d, want 28", got)
	}

	// The deleted span [64,99] no longer intersects the block's live
	// values: a tight zone map prunes it without evaluation.
	res := dst.ScanFiltered(0, dst.Snapshot(), Predicate{Op: Between, Operand: 64, High: 99})
	if res.Matched != 0 || res.Sum != 0 {
		t.Fatalf("deleted span matched %d (sum %d)", res.Matched, res.Sum)
	}
	if res.BlocksScanned != 0 || res.BlocksPruned != 1 {
		t.Fatalf("stale zone map evaluated the migrated block: %+v", res)
	}

	// The surviving span [100,127] exactly covers the tight map: the block
	// is answered from its aggregates, no evaluation either.
	var wantSum uint64
	for v := uint64(100); v <= 127; v++ {
		wantSum += v
	}
	res = dst.ScanFiltered(0, dst.Snapshot(), Predicate{Op: Between, Operand: 100, High: 127})
	if res.Matched != 28 || res.Sum != wantSum {
		t.Fatalf("surviving span = (%d, %d), want (28, %d)", res.Matched, res.Sum, wantSum)
	}
	if res.BlocksFullHit != 1 || res.BlocksScanned != 0 {
		t.Fatalf("migrated block not full-hit eligible: %+v", res)
	}
}

// TestDetachTailSplitKeepsExactness is the split-path control: detaching
// across a block boundary with tombstones in both halves must keep counts
// and scan answers exact (the split path always rebuilt tight summaries).
func TestDetachTailSplitKeepsExactness(t *testing.T) {
	f := newFixture(t)
	src := f.local(0, 64)
	src.Append(0, seq(160)) // blocks [0,63], [64,127], [128,159]
	for pos := int64(60); pos < 70; pos++ {
		if !src.Delete(0, pos) {
			t.Fatalf("delete %d failed", pos)
		}
	}
	d := src.DetachTail(0, 100) // positions [60,159]: split block 0 at 60
	dst := f.local(0, 64)
	if err := dst.LinkDetached(0, 0, d); err != nil {
		t.Fatal(err)
	}
	if g, w := src.Count()+dst.Count(), int64(150); g != w {
		t.Fatalf("live count after split detach = %d, want %d", g, w)
	}
	for _, p := range []Predicate{
		{Op: All},
		{Op: Between, Operand: 60, High: 69}, // the tombstoned span
		{Op: Greater, Operand: 150},
	} {
		sres := src.ScanFiltered(0, src.Snapshot(), p)
		dres := dst.ScanFiltered(0, dst.Snapshot(), p)
		wantM, wantS := refScan(src, src.Snapshot(), p)
		dm, ds := refScan(dst, dst.Snapshot(), p)
		wantM += dm
		wantS += ds
		if sres.Matched+dres.Matched != wantM || sres.Sum+dres.Sum != wantS {
			t.Fatalf("split detach inexact for %+v: (%d,%d), want (%d,%d)",
				p, sres.Matched+dres.Matched, sres.Sum+dres.Sum, wantM, wantS)
		}
	}
}
