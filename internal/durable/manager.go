package durable

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eris/internal/faults"
	"eris/internal/metrics"
	"eris/internal/prefixtree"
)

// Object kinds as persisted in checkpoints (decoupled from the routing
// package so durable stays a leaf dependency of the AEU layer).
const (
	KindRange byte = 0 // range-partitioned prefix-tree index
	KindSize  byte = 1 // size-partitioned column
)

// ObjectMeta describes one data object in a checkpoint.
type ObjectMeta struct {
	ID     uint32
	Kind   byte
	Domain uint64 // exclusive key-domain bound (range objects)
	Name   string // public object name ("" for engine-level tests)
}

// LinkRange records one applied transfer into a partition: the transfer id
// (the source's handoff sequence number) and the moved key range. The set
// is persisted in checkpoints so recovery can tell "this link is already
// inside the image" from "this link never happened".
type LinkRange struct {
	Xid, Lo, Hi uint64
}

// TreeImage is one AEU's checkpoint image of one range partition.
type TreeImage struct {
	Obj   uint32
	KVs   []prefixtree.KV
	Links []LinkRange
}

// ColImage is one AEU's checkpoint image of one column partition.
type ColImage struct {
	Obj    uint32
	Values []uint64
}

// AEUImage is one AEU's complete checkpoint contribution. Stamp is the
// last sequence number this AEU had logged when the image was cut, and Gen
// the log generation sealed at that moment: records at or below the stamp
// live in generations <= Gen, everything after in later ones, so replay is
// exactly "image + all later generations".
type AEUImage struct {
	Stamp uint64
	Gen   int
	Trees []TreeImage
	Cols  []ColImage
}

// CheckpointData is a complete engine checkpoint as assembled by the core
// layer.
type CheckpointData struct {
	Objects []ObjectMeta
	AEUs    []AEUImage
}

// manifest is the durable root pointer: recovery starts at the checkpoint
// it names. It is published atomically (tmp + fsync + rename + dir sync),
// so a crash mid-checkpoint leaves the previous manifest intact.
type manifest struct {
	N          uint64 `json:"n"`
	Checkpoint string `json:"checkpoint"`
	NextSeq    uint64 `json:"next_seq"`
}

// Options configures a durability manager.
type Options struct {
	// Dir is the data directory; created if missing.
	Dir string
	// SyncWrites gates client acks on the covering fsync. Off, writes are
	// still logged and group-committed, but an ack may precede its fsync —
	// a crash can then lose the last group.
	SyncWrites bool
	// Faults optionally injects torn_write / fail_fsync / crash events.
	Faults *faults.Injector
	// TearSeed seeds the torn-tail offset choice at crash (0 = 1).
	TearSeed int64
}

// Manager owns a data directory: the per-AEU logs, the checkpoint files
// and the manifest. One Manager per engine.
type Manager struct {
	dir        string
	syncWrites bool
	faults     *faults.Injector
	tearRng    *rand.Rand

	seq      atomic.Uint64 // global record sequence (doubles as transfer id)
	crashReq atomic.Bool

	mu       sync.Mutex
	logs     map[int]*Log
	startGen int
	ckptN    uint64
	man      *manifest // loaded at Open; nil on a fresh directory
	objNames map[uint32]string
	closed   bool
	crashed  bool
	// pubStamps holds each AEU's image stamp in the last checkpoint this
	// session durably published. Link provenance below it may be dropped;
	// everything newer must survive discarded checkpoint attempts.
	pubStamps map[int]uint64

	// Counters (plain atomics so recovery, which runs before the engine's
	// registry exists, is still counted; AttachMetrics exports them).
	records       atomic.Int64
	bytesLogged   atomic.Int64
	fsyncs        atomic.Int64
	fsyncFailures atomic.Int64
	logErrors     atomic.Int64
	tornTails     atomic.Int64
	replayRecords atomic.Int64
	replayBytes   atomic.Int64
	recoveryNS    atomic.Int64
	checkpoints   atomic.Int64
	ckptBytes     atomic.Int64
	groupHist     atomic.Pointer[metrics.Histogram]
}

// Open loads (or initializes) a data directory. Call Recover next; a fresh
// directory returns a nil recovery state.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	seed := opts.TearSeed
	if seed == 0 {
		seed = 1
	}
	m := &Manager{
		dir:        opts.Dir,
		syncWrites: opts.SyncWrites,
		faults:     opts.Faults,
		tearRng:    rand.New(rand.NewSource(seed)),
		logs:       make(map[int]*Log),
		objNames:   make(map[uint32]string),
		pubStamps:  make(map[int]uint64),
	}
	// New sessions always log into fresh generations: never append to a
	// file that may have a torn tail.
	maxGen, maxCkpt, err := m.scanDir()
	if err != nil {
		return nil, err
	}
	m.startGen = maxGen + 1
	m.ckptN = maxCkpt
	if man, err := m.readManifest(); err != nil {
		return nil, err
	} else if man != nil {
		m.man = man
		m.seq.Store(man.NextSeq)
	}
	return m, nil
}

// scanDir finds the highest existing log generation and checkpoint number.
func (m *Manager) scanDir() (maxGen int, maxCkpt uint64, err error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-")
			if len(parts) == 2 {
				if g, err := strconv.Atoi(parts[1]); err == nil && g > maxGen {
					maxGen = g
				}
			}
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			ns := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt")
			if n, err := strconv.ParseUint(ns, 10, 64); err == nil && n > maxCkpt {
				maxCkpt = n
			}
		}
	}
	return maxGen, maxCkpt, nil
}

func (m *Manager) walPath(aeu, gen int) string {
	return filepath.Join(m.dir, fmt.Sprintf("wal-%d-%d.log", aeu, gen))
}

func (m *Manager) ckptPath(n uint64) string {
	return filepath.Join(m.dir, fmt.Sprintf("checkpoint-%d.ckpt", n))
}

func (m *Manager) manifestPath() string { return filepath.Join(m.dir, "MANIFEST") }

func (m *Manager) readManifest() (*manifest, error) {
	raw, err := os.ReadFile(m.manifestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("durable: corrupt MANIFEST: %w", err)
	}
	return &man, nil
}

// syncDir fsyncs the data directory (file creations and renames are only
// durable once the directory entry is).
func (m *Manager) syncDir() {
	if d, err := os.Open(m.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// SyncWrites reports whether acks are gated on fsync.
func (m *Manager) SyncWrites() bool { return m.syncWrites }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Log returns (creating on first use) the WAL of one AEU.
func (m *Manager) Log(aeu int) *Log {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.logs[aeu]
	if l == nil {
		l = newLog(m, aeu, m.startGen)
		m.logs[aeu] = l
	}
	return l
}

// RegisterObject records the public name of an object for checkpoints.
func (m *Manager) RegisterObject(id uint32, name string) {
	m.mu.Lock()
	m.objNames[id] = name
	m.mu.Unlock()
}

// ObjectName returns the registered name of an object ("" if none).
func (m *Manager) ObjectName(id uint32) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.objNames[id]
}

// CrashRequested reports whether an armed `crash` fault fired on a log
// append; the test harness polls it to stop the engine at that point.
func (m *Manager) CrashRequested() bool { return m.crashReq.Load() }

// Crashed reports whether Crash was called.
func (m *Manager) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Closed reports whether Close was called.
func (m *Manager) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Flush fsyncs every log's outstanding records.
func (m *Manager) Flush(timeout time.Duration) error {
	m.mu.Lock()
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	var firstErr error
	for _, l := range logs {
		if err := l.Flush(timeout); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close drains and closes every log (clean shutdown).
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed || m.crashed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	for _, l := range logs {
		l.close()
	}
	return nil
}

// Crash hard-stops the durability layer the way kill -9 would: writer
// goroutines stop, buffered-but-unwritten records vanish, and — when the
// torn_write fault is armed — each log file's unsynced tail is truncated
// at a random byte offset, possibly mid-record. Everything covered by an
// fsync (and therefore every released ack under SyncWrites) survives.
func (m *Manager) Crash() {
	m.mu.Lock()
	if m.closed || m.crashed {
		m.mu.Unlock()
		return
	}
	m.crashed = true
	logs := make([]*Log, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	for _, l := range logs {
		l.crash()
		if l.file == nil {
			continue
		}
		off := l.writtenOff
		if window := l.writtenOff - l.durableOff; window > 0 && m.faults.Should(faults.TornWrite) {
			m.mu.Lock()
			off = l.durableOff + m.tearRng.Int63n(window+1)
			m.mu.Unlock()
		}
		l.file.Truncate(off)
		l.file.Close()
		l.file = nil
	}
}

// WriteCheckpoint persists a checkpoint and publishes it in the manifest,
// then prunes log generations and checkpoints it supersedes. The write
// order is the durability protocol: checkpoint file (tmp, fsync, rename),
// directory sync, manifest (tmp, fsync, rename), directory sync — only
// then is anything deleted.
func (m *Manager) WriteCheckpoint(data CheckpointData) error {
	m.mu.Lock()
	if m.closed || m.crashed {
		m.mu.Unlock()
		return fmt.Errorf("durable: checkpoint on closed manager")
	}
	m.ckptN++
	n := m.ckptN
	for i := range data.Objects {
		if data.Objects[i].Name == "" {
			data.Objects[i].Name = m.objNames[data.Objects[i].ID]
		}
	}
	m.mu.Unlock()

	path := m.ckptPath(n)
	bytes, err := writeCheckpointFile(path, &data)
	if err != nil {
		return err
	}
	m.syncDir()
	man := manifest{N: n, Checkpoint: filepath.Base(path), NextSeq: m.seq.Load()}
	raw, _ := json.Marshal(&man)
	tmp := m.manifestPath() + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.manifestPath()); err != nil {
		return err
	}
	m.syncDir()
	m.mu.Lock()
	m.man = &man
	for i := range data.AEUs {
		m.pubStamps[i] = data.AEUs[i].Stamp
	}
	m.mu.Unlock()
	m.checkpoints.Add(1)
	m.ckptBytes.Add(bytes)
	m.prune(n, &data)
	return nil
}

// prune deletes checkpoints older than n and log generations the new
// checkpoint's stamps supersede (per AEU, generations <= the image's
// sealed generation are fully contained in the image). Logs of AEU ids
// the checkpoint does not cover are deleted outright: they belong to a
// previous session that ran with more workers, recovery already merged
// their contents into the current AEUs (and therefore into this
// checkpoint), and leaving them on disk would make a later recovery
// replay them from stamp 0 — resurrecting deleted keys and letting stale
// link xids win conflicts.
func (m *Manager) prune(n uint64, data *CheckpointData) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt") {
			ns := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt")
			if v, err := strconv.ParseUint(ns, 10, 64); err == nil && v < n {
				os.Remove(filepath.Join(m.dir, name))
			}
		}
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-")
			if len(parts) != 2 {
				continue
			}
			aeu, err1 := strconv.Atoi(parts[0])
			gen, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				continue
			}
			if aeu >= len(data.AEUs) || gen <= data.AEUs[aeu].Gen {
				os.Remove(filepath.Join(m.dir, name))
			}
		}
	}
}

// publishedStamp returns one AEU's image stamp in the last checkpoint
// published this session (0 before one publishes).
func (m *Manager) publishedStamp(aeu int) uint64 {
	m.mu.Lock() //eris:allowblock bounded map read of checkpoint bookkeeping; no I/O under the manager lock
	defer m.mu.Unlock()
	return m.pubStamps[aeu]
}

// observeGroup records one group commit's record count.
func (m *Manager) observeGroup(n int64) {
	if h := m.groupHist.Load(); h != nil {
		h.Observe(n)
	}
}

// AttachMetrics exports the durable.* instruments on the engine registry.
// Counters accumulated before attachment (recovery) stay visible: the
// registry reads the manager's own atomics.
func (m *Manager) AttachMetrics(reg *metrics.Registry) {
	reg.CounterFunc("durable.records", m.records.Load)
	reg.CounterFunc("durable.bytes_logged", m.bytesLogged.Load)
	reg.CounterFunc("durable.fsyncs", m.fsyncs.Load)
	reg.CounterFunc("durable.fsync_failures", m.fsyncFailures.Load)
	reg.CounterFunc("durable.log_errors", m.logErrors.Load)
	reg.CounterFunc("durable.torn_tails", m.tornTails.Load)
	reg.CounterFunc("durable.replay_records", m.replayRecords.Load)
	reg.CounterFunc("durable.replay_bytes", m.replayBytes.Load)
	reg.CounterFunc("durable.recovery_ns", m.recoveryNS.Load)
	reg.CounterFunc("durable.checkpoints", m.checkpoints.Load)
	reg.CounterFunc("durable.checkpoint_bytes", m.ckptBytes.Load)
	// 1 to ~16k records per fsync in 8 exponential buckets.
	m.groupHist.Store(reg.Histogram("durable.group_records", metrics.ExpBuckets(1, 4, 8)))
}

// Stats is a snapshot of the durability counters (tests and tools).
type Stats struct {
	Records       int64
	BytesLogged   int64
	Fsyncs        int64
	FsyncFailures int64
	TornTails     int64
	ReplayRecords int64
	ReplayBytes   int64
	RecoveryNS    int64
	Checkpoints   int64
}

// Stats returns the current durability counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Records:       m.records.Load(),
		BytesLogged:   m.bytesLogged.Load(),
		Fsyncs:        m.fsyncs.Load(),
		FsyncFailures: m.fsyncFailures.Load(),
		TornTails:     m.tornTails.Load(),
		ReplayRecords: m.replayRecords.Load(),
		ReplayBytes:   m.replayBytes.Load(),
		RecoveryNS:    m.recoveryNS.Load(),
		Checkpoints:   m.checkpoints.Load(),
	}
}

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// logGensFor lists the on-disk generations of one AEU's log newer than
// afterGen, in ascending order.
func (m *Manager) logGensFor(aeu, afterGen int) ([]int, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	prefix := fmt.Sprintf("wal-%d-", aeu)
	var gens []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".log") {
			continue
		}
		g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log"))
		if err != nil || g <= afterGen {
			continue
		}
		gens = append(gens, g)
	}
	sort.Ints(gens)
	return gens, nil
}

// walAEUs lists every AEU id that has at least one log file on disk.
func (m *Manager) walAEUs() ([]int, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), "-")
		if len(parts) != 2 {
			continue
		}
		if id, err := strconv.Atoi(parts[0]); err == nil {
			seen[id] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}
