package durable

import (
	"testing"
	"time"

	"eris/internal/prefixtree"
)

func recoverDir(t *testing.T, dir string) *Recovered {
	t.Helper()
	m := openManager(t, dir, true)
	defer m.Close()
	rec, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec == nil {
		t.Fatal("Recover returned nil with a manifest present")
	}
	return rec
}

func asMap(kvs []prefixtree.KV) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(kvs))
	for _, kv := range kvs {
		out[kv.Key] = kv.Value
	}
	return out
}

// A complete transfer: the source's handoff and the target's link both on
// disk. The moved keys appear exactly once, at their post-transfer values.
func TestRecoverCompleteTransfer(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 2, ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"})
	src, dst := m.Log(0), m.Log(1)
	src.AppendUpsert(1, kvs(5, 50, 15, 150, 25, 250))
	xid := src.AppendHandoff(1, 10, 20, 1)
	dst.AppendLink(1, 10, 20, xid, kvs(15, 150))
	dst.AppendUpsert(1, kvs(15, 151)) // post-transfer write at the target
	if err := m.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()

	rec := recoverDir(t, dir)
	got := asMap(rec.Objects[0].KVs)
	want := map[uint64]uint64{5: 50, 15: 151, 25: 250}
	if len(got) != len(want) {
		t.Fatalf("recovered %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("recovered %v want %v", got, want)
		}
	}
}

// An orphaned transfer: the handoff reached the source's log but the
// link never reached the target's. The payload must move to the target
// (no tuple loss), except keys the target has newer durable writes for.
func TestRecoverOrphanHandoff(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 2, ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"})
	src, dst := m.Log(0), m.Log(1)
	src.AppendUpsert(1, kvs(12, 120, 14, 140))
	src.AppendHandoff(1, 10, 20, 1)
	// The target logged a fresher write for key 12 (e.g. it applied the
	// link and then a client write, but only the write's group was
	// fsynced). The orphan completion must not clobber it.
	dst.AppendUpsert(1, kvs(12, 999))
	if err := m.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()

	rec := recoverDir(t, dir)
	got := asMap(rec.Objects[0].KVs)
	if got[14] != 140 {
		t.Fatalf("orphaned transfer payload lost: %v", got)
	}
	if got[12] != 999 {
		t.Fatalf("orphan completion clobbered a newer write: %v", got)
	}
}

// Both sides on disk but the key also still present at the source via an
// older image: the AEU holding the highest-xid covering link wins.
func TestRecoverConflictResolvesByLink(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	obj := ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"}
	// Checkpoint images put key 7 at BOTH AEUs (as a fuzzy checkpoint
	// interleaving with a transfer can), with AEU 1 holding the covering
	// link — its copy must win.
	data := CheckpointData{
		Objects: []ObjectMeta{obj},
		AEUs: []AEUImage{
			{Trees: []TreeImage{{Obj: 1, KVs: kvs(7, 70)}}},
			{Trees: []TreeImage{{
				Obj: 1, KVs: kvs(7, 77),
				Links: []LinkRange{{Xid: 3, Lo: 0, Hi: 100}},
			}}},
		},
	}
	if err := m.WriteCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	m.Close()

	rec := recoverDir(t, dir)
	got := asMap(rec.Objects[0].KVs)
	if got[7] != 77 {
		t.Fatalf("conflict resolved to %d, want the link holder's 77", got[7])
	}
}

// Idempotent replay: records at or below the image stamp are skipped, so
// a log tail that overlaps the checkpoint image cannot double-apply.
func TestRecoverSkipsStampedRecords(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	obj := ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"}
	baseCheckpoint(t, m, 1, obj)
	l := m.Log(0)
	l.AppendUpsert(1, kvs(1, 10))
	seq2 := l.AppendUpsert(1, kvs(2, 20))
	l.AppendDelete(1, []uint64{1})
	if err := m.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	// Checkpoint whose image claims everything through seq2 — but with
	// Gen 0, so the log generation stays and replay must skip seqs <= 2.
	// The image deliberately contradicts the skipped records (key 2
	// absent): if replay re-applied them the state would differ.
	data := CheckpointData{
		Objects: []ObjectMeta{obj},
		AEUs: []AEUImage{{
			Stamp: seq2, Gen: 0,
			Trees: []TreeImage{{Obj: 1, KVs: kvs(1, 11)}},
		}},
	}
	if err := m.WriteCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	m.Close()

	rec := recoverDir(t, dir)
	got := asMap(rec.Objects[0].KVs)
	if _, ok := got[2]; ok {
		t.Fatalf("stamped record re-applied: %v", got)
	}
	if _, ok := got[1]; ok {
		t.Fatalf("post-stamp delete not applied: %v", got)
	}
}

// Column images round-trip through checkpoints (columns have no log
// records; their durability is checkpoint-image-only).
func TestRecoverColumnImages(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	obj := ObjectMeta{ID: 2, Kind: KindSize, Name: "c"}
	data := CheckpointData{
		Objects: []ObjectMeta{obj},
		AEUs: []AEUImage{
			{Cols: []ColImage{{Obj: 2, Values: []uint64{1, 2, 3}}}},
			{Cols: []ColImage{{Obj: 2, Values: []uint64{4, 5}}}},
		},
	}
	if err := m.WriteCheckpoint(data); err != nil {
		t.Fatal(err)
	}
	m.Close()

	rec := recoverDir(t, dir)
	if len(rec.Objects) != 1 || rec.Objects[0].Kind != KindSize {
		t.Fatalf("recovered %+v", rec.Objects)
	}
	want := []uint64{1, 2, 3, 4, 5}
	got := rec.Objects[0].ColValues
	if len(got) != len(want) {
		t.Fatalf("recovered column %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered column %v want %v", got, want)
		}
	}
}

// Recovery must bump the sequence counter above every replayed record so
// a new session cannot mint colliding transfer ids.
func TestRecoverBumpsSeqFloor(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	l := m.Log(0)
	var last uint64
	for i := 0; i < 5; i++ {
		last = l.AppendUpsert(1, kvs(uint64(i), 1))
	}
	if err := m.Flush(time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2 := openManager(t, dir, true)
	defer m2.Close()
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := m2.Log(0).AppendUpsert(1, kvs(9, 9)); got <= last {
		t.Fatalf("post-recovery seq %d collides with replayed tail (last %d)", got, last)
	}
}
