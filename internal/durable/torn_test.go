package durable

import (
	"encoding/binary"
	"math/rand"
	"os"
	"testing"
	"time"

	"eris/internal/faults"
)

// buildLogBytes writes a small log through the real append/flush path and
// returns the on-disk bytes plus the record count.
func buildLogBytes(t testing.TB, records int) []byte {
	t.Helper()
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, SyncWrites: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l := m.Log(0)
	for i := 0; i < records; i++ {
		switch i % 4 {
		case 0, 1:
			l.AppendUpsert(1, kvs(uint64(i), uint64(i)*10, uint64(i)+1000, 7))
		case 2:
			l.AppendDelete(1, []uint64{uint64(i) + 1000})
		case 3:
			l.AppendHandoff(1, uint64(i), uint64(i)+10, 1)
		}
	}
	if err := m.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	path := m.walPath(0, 1)
	m.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return raw
}

// Truncating the log at every possible byte boundary must never panic,
// must keep every fully-framed record before the cut, and must drop the
// torn one.
func TestTornTailEveryByte(t *testing.T) {
	const records = 8
	raw := buildLogBytes(t, records)
	// Frame boundaries, so we know the expected count for each cut.
	bounds := []int{0}
	rest := raw
	for len(rest) > 0 {
		payload, r, ok := nextFrame(rest)
		if !ok {
			t.Fatal("reference log does not parse")
		}
		bounds = append(bounds, bounds[len(bounds)-1]+frameHeader+len(payload))
		rest = r
	}
	if len(bounds) != records+1 {
		t.Fatalf("parsed %d records, want %d", len(bounds)-1, records)
	}
	for cut := 0; cut <= len(raw); cut++ {
		want := 0
		for _, b := range bounds[1:] {
			if cut >= b {
				want++
			}
		}
		if got := ReplayCheck(raw[:cut]); got != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, got, want)
		}
	}
}

// Flipping any single bit of the log must never panic, and must never
// *gain* records; replay stops at the first frame the flip corrupts.
func TestTornTailBitFlips(t *testing.T) {
	raw := buildLogBytes(t, 8)
	full := ReplayCheck(raw)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		i := rng.Intn(len(raw))
		bit := byte(1) << uint(rng.Intn(8))
		mut := append([]byte(nil), raw...)
		mut[i] ^= bit
		if got := ReplayCheck(mut); got > full {
			t.Fatalf("flip at byte %d bit %v: replayed %d > original %d", i, bit, got, full)
		}
	}
}

// End-to-end torn tail: truncate the last record mid-frame on disk, then
// recover. The manager must stop at the last valid record, count the torn
// tail, and keep everything before it.
func TestRecoverTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"})
	l := m.Log(0)
	l.AppendUpsert(1, kvs(1, 10))
	l.AppendUpsert(1, kvs(2, 20))
	l.AppendUpsert(1, kvs(3, 30))
	if err := m.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	path := m.walPath(0, 1)
	m.Close()

	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	m2 := openManager(t, dir, true)
	defer m2.Close()
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.TornTails != 1 {
		t.Fatalf("TornTails=%d want 1", rec.TornTails)
	}
	if st := m2.Stats(); st.TornTails != 1 {
		t.Fatalf("Stats.TornTails=%d want 1", st.TornTails)
	}
	got := map[uint64]uint64{}
	for _, kv := range rec.Objects[0].KVs {
		got[kv.Key] = kv.Value
	}
	if got[1] != 10 || got[2] != 20 {
		t.Fatalf("pre-tear records lost: %v", got)
	}
	if _, ok := got[3]; ok {
		t.Fatalf("torn record replayed: %v", got)
	}
}

// A CRC-valid frame whose payload is structurally damaged (bad inner
// count) must also stop replay rather than panic: recompute the CRC after
// corrupting the body so only applyRecord can catch it.
func TestStructurallyInvalidPayload(t *testing.T) {
	raw := buildLogBytes(t, 2)
	payload, _, ok := nextFrame(raw)
	if !ok {
		t.Fatal("reference log does not parse")
	}
	mut := append([]byte(nil), raw...)
	// Overwrite the upsert's kv count with a huge value, then re-seal.
	binary.LittleEndian.PutUint32(mut[frameHeader+13:], 1<<30)
	sealFrame(mut[:frameHeader+len(payload)])
	if got := ReplayCheck(mut); got != 0 {
		t.Fatalf("replayed %d records past a structurally invalid payload", got)
	}
}

// With fsync jammed (fail_fsync on every attempt) the written-but-unsynced
// window stays open, so a crash with torn_write armed truncates the tail at
// a random offset — usually mid-record. Recovery must come up cleanly on
// whatever prefix survived.
func TestCrashTearsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(3)
	inj.Arm(faults.FailFsync, faults.Rule{Every: 1})
	inj.Arm(faults.TornWrite, faults.Rule{Every: 1})
	m, err := Open(Options{Dir: dir, SyncWrites: true, Faults: inj, TearSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"})
	l := m.Log(0)
	for i := 0; i < 20; i++ {
		l.AppendUpsert(1, kvs(uint64(i), uint64(i)*10))
	}
	// Wait for the writer to put bytes on disk (it cannot sync them: every
	// fsync fails), so the crash has a window to tear.
	path := m.walPath(0, 1)
	for i := 0; ; i++ {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			break
		}
		if i > 5000 {
			t.Fatal("writer never wrote")
		}
		time.Sleep(time.Millisecond)
	}
	m.Crash()

	m2 := openManager(t, dir, true)
	defer m2.Close()
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover over torn tail: %v", err)
	}
	// Nothing was fsynced, so anything from zero to all 20 records may
	// survive — but every surviving kv must be one we wrote, in prefix
	// order, and a mid-record cut must be counted.
	got := rec.Objects[0].KVs
	for i, kv := range got {
		if kv.Key != uint64(i) || kv.Value != uint64(i)*10 {
			t.Fatalf("kv %d corrupted after tear: %+v", i, kv)
		}
	}
	t.Logf("survived %d/20 records, torn tails %d", len(got), rec.TornTails)
}

func FuzzWALReplay(f *testing.F) {
	raw := buildLogBytes(f, 6)
	f.Add(raw)
	f.Add(raw[:len(raw)-3])
	f.Add(raw[:frameHeader])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	short := append([]byte(nil), raw...)
	short[0] ^= 0x40
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := ReplayCheck(data) // must never panic
		if n < 0 {
			t.Fatalf("negative record count %d", n)
		}
	})
}

func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	m, err := Open(Options{Dir: dir, SyncWrites: false})
	if err != nil {
		b.Fatal(err)
	}
	l := m.Log(0)
	batch := make([]uint64, 0, 128)
	for i := 0; i < 64; i++ {
		batch = append(batch, uint64(i), uint64(i)*3)
	}
	for i := 0; i < 4096; i++ {
		l.AppendUpsert(1, kvs(batch...))
	}
	if err := m.Flush(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	path := m.walPath(0, 1)
	m.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ReplayCheck(raw); got != 4096 {
			b.Fatalf("replayed %d records, want 4096", got)
		}
	}
}
