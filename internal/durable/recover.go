package durable

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"time"

	"eris/internal/prefixtree"
)

// RecoveredObject is one data object's reconstructed durable state.
type RecoveredObject struct {
	ID     uint32
	Kind   byte
	Domain uint64
	Name   string
	// KVs is the merged tuple set of a range object, sorted by key.
	KVs []prefixtree.KV
	// ColValues is the concatenated value set of a size object.
	ColValues []uint64
}

// Recovered is the outcome of Recover: the durable state of every object
// known to the latest checkpoint, with per-AEU log tails replayed on top.
type Recovered struct {
	Objects []RecoveredObject
	// Checkpoint is the manifest number recovery started from.
	Checkpoint uint64
	// ReplayRecords / ReplayBytes / TornTails summarize the log replay.
	ReplayRecords int64
	ReplayBytes   int64
	TornTails     int64
}

// stashEntry is an extracted-but-not-yet-linked transfer reconstructed
// from a replayed handoff record: the moved tuples wait here for the
// matching link record (possibly in another AEU's log).
type stashEntry struct {
	obj    uint32
	target int
	lo, hi uint64
	kvs    map[uint64]uint64
}

// aeuState is one AEU's replayed view.
type aeuState struct {
	trees map[uint32]map[uint64]uint64 // obj -> key -> value
	links map[uint32][]LinkRange       // obj -> applied transfer ranges
	cols  map[uint32][]uint64
}

func newAEUState() *aeuState {
	return &aeuState{
		trees: make(map[uint32]map[uint64]uint64),
		links: make(map[uint32][]LinkRange),
		cols:  make(map[uint32][]uint64),
	}
}

func (s *aeuState) tree(obj uint32) map[uint64]uint64 {
	t := s.trees[obj]
	if t == nil {
		t = make(map[uint64]uint64)
		s.trees[obj] = t
	}
	return t
}

// Recover loads the latest checkpoint and replays every AEU's log tail on
// top of it. It returns nil on a fresh directory (no manifest). The caller
// feeds the result to the engine's restore path before serving.
//
// Replay is idempotent by sequence number: only records with seq above the
// AEU image's stamp apply. Cross-AEU transfers reassemble through their
// handoff/link record pairs; a transfer whose link record was lost resolves
// through the handoff stash, and conflicting copies of a key (possible when
// exactly one side of a transfer reached disk) resolve to the AEU holding
// the highest-xid link covering the key.
func (m *Manager) Recover() (*Recovered, error) {
	m.mu.Lock()
	man := m.man
	m.mu.Unlock()
	if man == nil {
		return nil, nil
	}
	start := time.Now()
	ckpt, err := readCheckpointFile(filepath.Join(m.dir, man.Checkpoint))
	if err != nil {
		return nil, err
	}

	states := make(map[int]*aeuState)
	stash := make(map[uint64]*stashEntry)

	for aeu := range ckpt.AEUs {
		st := newAEUState()
		states[aeu] = st
		for _, t := range ckpt.AEUs[aeu].Trees {
			tree := st.tree(t.Obj)
			for _, kv := range t.KVs {
				tree[kv.Key] = kv.Value
			}
			st.links[t.Obj] = append(st.links[t.Obj], t.Links...)
		}
		for _, c := range ckpt.AEUs[aeu].Cols {
			st.cols[c.Obj] = append(st.cols[c.Obj], c.Values...)
		}
	}

	// Replay log tails: for each AEU, the generations after its image's
	// sealed generation, records above its stamp. AEUs with logs on disk
	// but no image (created after the checkpoint's AEU count — does not
	// happen with a fixed topology, but cheap to honor) replay from zero.
	aeus, err := m.walAEUs()
	if err != nil {
		return nil, err
	}
	var rec Recovered
	maxSeq := man.NextSeq
	for _, img := range ckpt.AEUs {
		if img.Stamp > maxSeq {
			maxSeq = img.Stamp
		}
	}
	for _, aeu := range aeus {
		st := states[aeu]
		if st == nil {
			st = newAEUState()
			states[aeu] = st
		}
		var stamp uint64
		var gen int
		if aeu < len(ckpt.AEUs) {
			stamp, gen = ckpt.AEUs[aeu].Stamp, ckpt.AEUs[aeu].Gen
		}
		gens, err := m.logGensFor(aeu, gen)
		if err != nil {
			return nil, err
		}
		for _, g := range gens {
			raw, err := os.ReadFile(m.walPath(aeu, g))
			if err != nil {
				return nil, err
			}
			n, bytes, last, torn := m.replayFile(raw, aeu, stamp, st, stash)
			rec.ReplayRecords += n
			rec.ReplayBytes += bytes
			if last > maxSeq {
				maxSeq = last
			}
			if torn {
				// Nothing after a torn frame can be trusted — not even
				// later generations of this log (they should not exist:
				// generations are fsynced before the next one opens).
				rec.TornTails++
				break
			}
		}
	}
	// Never hand out a sequence number at or below one already on disk:
	// seqs are idempotency keys and transfer ids, and the replayed tails
	// stay on disk until the next checkpoint prunes them.
	for {
		cur := m.seq.Load()
		if maxSeq <= cur || m.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}

	// Complete orphaned transfers: a handoff whose link record never made
	// it to disk. The payload moves to the target, but only keys the
	// target does not already hold — if the target's state includes any
	// newer writes to the range, those must win.
	orphans := make([]uint64, 0, len(stash))
	for xid := range stash {
		orphans = append(orphans, xid)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, xid := range orphans {
		e := stash[xid]
		if linkApplied(states, xid) {
			continue
		}
		st := states[e.target]
		if st == nil {
			st = newAEUState()
			states[e.target] = st
		}
		tree := st.tree(e.obj)
		for k, v := range e.kvs {
			if _, ok := tree[k]; !ok {
				tree[k] = v
			}
		}
		st.links[e.obj] = append(st.links[e.obj], LinkRange{Xid: xid, Lo: e.lo, Hi: e.hi})
	}

	// Global merge per object. A key present in several AEUs' replayed
	// states (one side of a transfer on disk, the other lost) belongs to
	// the AEU holding the highest-xid link covering it — the most recent
	// owner whose ownership is durable.
	aeuIDs := make([]int, 0, len(states))
	for id := range states {
		aeuIDs = append(aeuIDs, id)
	}
	sort.Ints(aeuIDs)

	rec.Checkpoint = man.N
	for _, o := range ckpt.Objects {
		out := RecoveredObject{ID: o.ID, Kind: o.Kind, Domain: o.Domain, Name: o.Name}
		switch o.Kind {
		case KindRange:
			out.KVs = mergeObject(states, aeuIDs, o.ID)
		case KindSize:
			for _, id := range aeuIDs {
				out.ColValues = append(out.ColValues, states[id].cols[o.ID]...)
			}
		}
		rec.Objects = append(rec.Objects, out)
	}

	m.replayRecords.Add(rec.ReplayRecords)
	m.replayBytes.Add(rec.ReplayBytes)
	m.tornTails.Add(rec.TornTails)
	m.recoveryNS.Add(time.Since(start).Nanoseconds())
	return &rec, nil
}

// linkApplied reports whether any AEU's state holds a link with xid
// (transfer ids are globally unique: they are WAL sequence numbers).
func linkApplied(states map[int]*aeuState, xid uint64) bool {
	for _, st := range states {
		for _, lrs := range st.links {
			for _, lr := range lrs {
				if lr.Xid == xid {
					return true
				}
			}
		}
	}
	return false
}

// mergeObject folds every AEU's replayed map of one range object into a
// single sorted tuple set, resolving cross-AEU key conflicts by link xid.
func mergeObject(states map[int]*aeuState, aeuIDs []int, obj uint32) []prefixtree.KV {
	merged := make(map[uint64]uint64)
	var conflicts map[uint64]bool
	for _, id := range aeuIDs {
		for k, v := range states[id].trees[obj] {
			if _, dup := merged[k]; dup {
				if conflicts == nil {
					conflicts = make(map[uint64]bool)
				}
				conflicts[k] = true
				continue
			}
			merged[k] = v
		}
	}
	for k := range conflicts {
		// Winner: the AEU holding the max-xid link covering k; fall back
		// to the lowest AEU id holding the key.
		winner, bestXid := -1, uint64(0)
		for _, id := range aeuIDs {
			for _, lr := range states[id].links[obj] {
				if lr.Lo <= k && k <= lr.Hi && lr.Xid >= bestXid {
					winner, bestXid = id, lr.Xid
				}
			}
		}
		if winner >= 0 {
			if v, ok := states[winner].trees[obj][k]; ok {
				merged[k] = v
				continue
			}
		}
		for _, id := range aeuIDs {
			if v, ok := states[id].trees[obj][k]; ok {
				merged[k] = v
				break
			}
		}
	}
	kvs := make([]prefixtree.KV, 0, len(merged))
	for k, v := range merged {
		kvs = append(kvs, prefixtree.KV{Key: k, Value: v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	return kvs
}

// replayFile applies one log file's records above stamp to st. It returns
// the applied record count, byte count, the last valid record's sequence
// number, and whether the file ends in a torn (unparseable) tail.
// Structural damage inside a CRC-valid payload is also treated as torn:
// stop, never panic, never trust later frames.
func (m *Manager) replayFile(raw []byte, aeu int, stamp uint64, st *aeuState, stash map[uint64]*stashEntry) (records, bytes int64, lastSeq uint64, torn bool) {
	rest := raw
	for len(rest) > 0 {
		payload, r, ok := nextFrame(rest)
		if !ok {
			return records, bytes, lastSeq, true
		}
		if !applyRecord(payload, aeu, stamp, st, stash) {
			return records, bytes, lastSeq, true
		}
		lastSeq = binary.LittleEndian.Uint64(payload[0:8])
		records++
		bytes += int64(frameHeader + len(payload))
		rest = r
	}
	return records, bytes, lastSeq, false
}

// applyRecord decodes and applies one WAL payload; false means the payload
// is structurally invalid (treated as a torn tail by the caller).
func applyRecord(p []byte, aeu int, stamp uint64, st *aeuState, stash map[uint64]*stashEntry) bool {
	if len(p) < 13 {
		return false
	}
	seq := binary.LittleEndian.Uint64(p[0:8])
	kind := p[8]
	obj := binary.LittleEndian.Uint32(p[9:13])
	body := p[13:]
	apply := seq > stamp
	switch kind {
	case recUpsert:
		if len(body) < 4 {
			return false
		}
		n := int(binary.LittleEndian.Uint32(body[0:4]))
		if len(body) != 4+16*n {
			return false
		}
		if apply {
			tree := st.tree(obj)
			for i := 0; i < n; i++ {
				k := binary.LittleEndian.Uint64(body[4+16*i:])
				v := binary.LittleEndian.Uint64(body[12+16*i:])
				tree[k] = v
			}
		}
	case recDelete:
		if len(body) < 4 {
			return false
		}
		n := int(binary.LittleEndian.Uint32(body[0:4]))
		if len(body) != 4+8*n {
			return false
		}
		if apply {
			tree := st.tree(obj)
			for i := 0; i < n; i++ {
				delete(tree, binary.LittleEndian.Uint64(body[4+8*i:]))
			}
		}
	case recHandoff:
		if len(body) != 20 {
			return false
		}
		if apply {
			lo := binary.LittleEndian.Uint64(body[0:8])
			hi := binary.LittleEndian.Uint64(body[8:16])
			target := int(binary.LittleEndian.Uint32(body[16:20]))
			e := &stashEntry{obj: obj, target: target, lo: lo, hi: hi, kvs: make(map[uint64]uint64)}
			tree := st.tree(obj)
			for k, v := range tree {
				if lo <= k && k <= hi {
					e.kvs[k] = v
					delete(tree, k)
				}
			}
			stash[seq] = e
		}
	case recLink:
		if len(body) < 28 {
			return false
		}
		n := int(binary.LittleEndian.Uint32(body[24:28]))
		if len(body) != 28+16*n {
			return false
		}
		if apply {
			lo := binary.LittleEndian.Uint64(body[0:8])
			hi := binary.LittleEndian.Uint64(body[8:16])
			xid := binary.LittleEndian.Uint64(body[16:24])
			tree := st.tree(obj)
			for i := 0; i < n; i++ {
				k := binary.LittleEndian.Uint64(body[28+16*i:])
				v := binary.LittleEndian.Uint64(body[36+16*i:])
				tree[k] = v
			}
			st.links[obj] = append(st.links[obj], LinkRange{Xid: xid, Lo: lo, Hi: hi})
			delete(stash, xid)
		}
	default:
		return false
	}
	return true
}

// ReplayCheck parses raw as a WAL file without applying it — the fuzz
// target: it must never panic and must stop at the first invalid frame.
// It returns the number of valid leading records.
func ReplayCheck(raw []byte) int {
	st := newAEUState()
	stash := make(map[uint64]*stashEntry)
	n, _, _, _ := (&Manager{}).replayFile(raw, 0, 0, st, stash)
	return int(n)
}
