package durable

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"eris/internal/faults"
	"eris/internal/prefixtree"
)

// baseCheckpoint writes the minimal checkpoint a fresh directory needs
// before log-only recovery can run (the manifest is the recovery root).
func baseCheckpoint(t *testing.T, m *Manager, nAEUs int, objs ...ObjectMeta) {
	t.Helper()
	data := CheckpointData{Objects: objs, AEUs: make([]AEUImage, nAEUs)}
	if err := m.WriteCheckpoint(data); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
}

func openManager(t *testing.T, dir string, sync bool) *Manager {
	t.Helper()
	m, err := Open(Options{Dir: dir, SyncWrites: sync})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return m
}

func kvs(pairs ...uint64) []prefixtree.KV {
	out := make([]prefixtree.KV, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, prefixtree.KV{Key: pairs[i], Value: pairs[i+1]})
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 1 << 20, Name: "t"})

	l := m.Log(0)
	l.AppendUpsert(1, kvs(10, 100, 20, 200, 30, 300))
	l.AppendDelete(1, []uint64{20})
	l.AppendUpsert(1, kvs(40, 400))
	if err := m.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got, want := l.DurableSeq(), l.LastSeq(); got != want {
		t.Fatalf("DurableSeq=%d want LastSeq=%d", got, want)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := openManager(t, dir, true)
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec == nil || len(rec.Objects) != 1 {
		t.Fatalf("recovered %+v, want one object", rec)
	}
	got := rec.Objects[0]
	want := kvs(10, 100, 30, 300, 40, 400)
	if got.Name != "t" || got.Domain != 1<<20 || got.Kind != KindRange {
		t.Fatalf("object meta %+v", got)
	}
	if len(got.KVs) != len(want) {
		t.Fatalf("recovered %v want %v", got.KVs, want)
	}
	for i := range want {
		if got.KVs[i] != want[i] {
			t.Fatalf("recovered %v want %v", got.KVs, want)
		}
	}
	if rec.TornTails != 0 {
		t.Fatalf("TornTails=%d want 0", rec.TornTails)
	}
	m2.Close()
}

// Sequence numbers survive sessions: a reopened manager must never reuse
// sequence numbers (they double as transfer ids and idempotency keys).
func TestSeqMonotonicAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, false)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	l := m.Log(0)
	var last uint64
	for i := 0; i < 10; i++ {
		last = l.AppendUpsert(1, kvs(uint64(i), 1))
	}
	// The manifest write preceded the appends, so bound the floor via a
	// fresh checkpoint (which republishes next_seq).
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	m.Close()

	m2 := openManager(t, dir, false)
	defer m2.Close()
	if _, err := m2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := m2.Log(0).AppendUpsert(1, kvs(99, 1)); got <= last {
		t.Fatalf("second-session seq %d not above first-session %d", got, last)
	}
}

func TestRotateSealsGeneration(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	l := m.Log(0)
	seq1 := l.AppendUpsert(1, kvs(1, 10))
	stamp, gen := l.Rotate()
	if stamp != seq1 {
		t.Fatalf("Rotate stamp=%d want %d", stamp, seq1)
	}
	l.AppendUpsert(1, kvs(2, 20))
	if err := m.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Both the sealed generation and its successor exist on disk.
	for _, g := range []int{gen, gen + 1} {
		if _, err := os.Stat(m.walPath(0, g)); err != nil {
			t.Fatalf("wal gen %d: %v", g, err)
		}
	}
	m.Close()
}

// A checkpoint carrying an AEU's image prunes the generations the image
// covers; replay afterwards only needs the tail.
func TestCheckpointPrunesLogs(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	obj := ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"}
	baseCheckpoint(t, m, 1, obj)
	l := m.Log(0)
	l.AppendUpsert(1, kvs(1, 10, 2, 20))
	stamp, gen := l.Rotate()
	l.AppendUpsert(1, kvs(3, 30))
	if err := m.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	data := CheckpointData{
		Objects: []ObjectMeta{obj},
		AEUs: []AEUImage{{
			Stamp: stamp, Gen: gen,
			Trees: []TreeImage{{Obj: 1, KVs: kvs(1, 10, 2, 20)}},
		}},
	}
	if err := m.WriteCheckpoint(data); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if _, err := os.Stat(m.walPath(0, gen)); !os.IsNotExist(err) {
		t.Fatalf("sealed gen %d not pruned (err=%v)", gen, err)
	}
	m.Close()

	m2 := openManager(t, dir, true)
	defer m2.Close()
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	want := kvs(1, 10, 2, 20, 3, 30)
	if len(rec.Objects) != 1 || len(rec.Objects[0].KVs) != len(want) {
		t.Fatalf("recovered %+v want kvs %v", rec.Objects, want)
	}
	for i, kv := range rec.Objects[0].KVs {
		if kv != want[i] {
			t.Fatalf("recovered %v want %v", rec.Objects[0].KVs, want)
		}
	}
}

// fail_fsync faults make the group-commit writer retry; appends still
// become durable and the failure counter records the attempts.
func TestFailFsyncRetries(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(7)
	inj.Arm(faults.FailFsync, faults.Rule{Every: 1, Limit: 3})
	m, err := Open(Options{Dir: dir, SyncWrites: true, Faults: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	l := m.Log(0)
	l.AppendUpsert(1, kvs(1, 10))
	if err := m.Flush(5 * time.Second); err != nil {
		t.Fatalf("Flush despite fsync retries: %v", err)
	}
	if st := m.Stats(); st.FsyncFailures == 0 {
		t.Fatalf("Stats.FsyncFailures=0, want >0 with fail_fsync armed")
	}
	m.Close()
}

// fail_write faults make the group-commit writer retry the segment in
// place. Dropping it instead would let the next batch's fsync advance the
// durable watermark past records that never reached the OS — acks would
// release for data that is not on disk.
func TestFailWriteRetries(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(11)
	inj.Arm(faults.FailWrite, faults.Rule{Every: 1, Limit: 4})
	m, err := Open(Options{Dir: dir, SyncWrites: true, Faults: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	l := m.Log(0)
	l.AppendUpsert(1, kvs(1, 10))
	l.AppendUpsert(1, kvs(2, 20))
	if err := m.Flush(5 * time.Second); err != nil {
		t.Fatalf("Flush despite write retries: %v", err)
	}
	if got, want := l.DurableSeq(), l.LastSeq(); got != want {
		t.Fatalf("DurableSeq=%d want LastSeq=%d", got, want)
	}
	if m.logErrors.Load() == 0 {
		t.Fatal("logErrors=0, want >0 with fail_write armed")
	}
	m.Close()

	m2 := openManager(t, dir, true)
	defer m2.Close()
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	got := map[uint64]uint64{}
	for _, kv := range rec.Objects[0].KVs {
		got[kv.Key] = kv.Value
	}
	if got[1] != 10 || got[2] != 20 {
		t.Fatalf("records lost across write retries: recovered %v", got)
	}
	if rec.TornTails != 0 {
		t.Fatalf("TornTails=%d want 0", rec.TornTails)
	}
}

// A checkpoint covering fewer AEUs than a previous session ran with must
// delete the extra AEUs' logs: recovery already merged them, and a later
// recovery finding them (logs but no image) would replay them from stamp
// 0 — resurrecting deleted keys.
func TestPruneDeletesStaleAEULogs(t *testing.T) {
	dir := t.TempDir()
	obj := ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"}

	// Session 1: two workers.
	m1 := openManager(t, dir, true)
	baseCheckpoint(t, m1, 2, obj)
	m1.Log(0).AppendUpsert(1, kvs(1, 10))
	m1.Log(1).AppendUpsert(1, kvs(5, 50))
	if err := m1.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	m1.Close()

	// Session 2: one worker. Recovery merges both logs; the post-recovery
	// checkpoint covers one AEU and must dispose of AEU 1's old log.
	m2 := openManager(t, dir, true)
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rec.Objects) != 1 || len(rec.Objects[0].KVs) != 2 {
		t.Fatalf("recovered %+v, want keys {1,5}", rec.Objects)
	}
	l0 := m2.Log(0)
	stamp, gen := l0.Rotate()
	data := CheckpointData{
		Objects: []ObjectMeta{obj},
		AEUs: []AEUImage{{
			Stamp: stamp, Gen: gen,
			Trees: []TreeImage{{Obj: 1, KVs: rec.Objects[0].KVs}},
		}},
	}
	if err := m2.WriteCheckpoint(data); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, "wal-1-*.log")); len(stale) != 0 {
		t.Fatalf("stale AEU 1 logs survive the checkpoint: %v", stale)
	}

	// Deleting a key the stale log held must stick across another cycle.
	l0.AppendDelete(1, []uint64{5})
	if err := m2.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	m2.Close()

	m3 := openManager(t, dir, true)
	defer m3.Close()
	rec3, err := m3.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	got := map[uint64]uint64{}
	for _, kv := range rec3.Objects[0].KVs {
		got[kv.Key] = kv.Value
	}
	if _, resurrected := got[5]; resurrected {
		t.Fatalf("deleted key resurrected from a stale AEU's log: %v", got)
	}
	if got[1] != 10 {
		t.Fatalf("surviving key lost: %v", got)
	}
}

// Crash drops buffered-but-unwritten records; what Flush acknowledged
// before the crash survives recovery.
func TestCrashDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	l := m.Log(0)
	l.AppendUpsert(1, kvs(1, 10))
	if err := m.Flush(time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	l.AppendUpsert(1, kvs(2, 20)) // may or may not hit disk
	m.Crash()
	if !m.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	// Appends after the crash are dropped (the returned seq can never
	// become durable, so its ack stays parked — the designed ambiguity).
	if seq := l.AppendUpsert(1, kvs(3, 30)); seq <= l.DurableSeq() {
		t.Fatalf("post-crash append seq %d not above durable %d", seq, l.DurableSeq())
	}

	m2 := openManager(t, dir, true)
	defer m2.Close()
	rec, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover after crash: %v", err)
	}
	got := map[uint64]uint64{}
	for _, kv := range rec.Objects[0].KVs {
		got[kv.Key] = kv.Value
	}
	if got[1] != 10 {
		t.Fatalf("flushed write lost: recovered %v", got)
	}
	if _, resurrected := got[3]; resurrected {
		t.Fatalf("post-crash append resurrected: recovered %v", got)
	}
}

func TestManifestPublishedAtomically(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, true)
	baseCheckpoint(t, m, 1, ObjectMeta{ID: 1, Kind: KindRange, Domain: 100, Name: "t"})
	m.Close()
	// A stale tmp file from a crashed checkpoint must not confuse Open.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-99.ckpt.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := openManager(t, dir, true)
	defer m2.Close()
	rec, err := m2.Recover()
	if err != nil || rec == nil {
		t.Fatalf("Recover with stale tmp files: rec=%v err=%v", rec, err)
	}
}
