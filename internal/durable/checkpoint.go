package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"eris/internal/prefixtree"
)

// Checkpoint section kinds. A checkpoint file is a sequence of frames in
// the WAL frame format ([len u32][crc u32][payload]); each payload starts
// with a section kind byte. The footer frame is written last, so a file
// without one is an incomplete write and is never trusted — though the
// manifest protocol (checkpoint fsynced and renamed before the manifest
// names it) already makes that unreachable short of disk corruption.
const (
	ckHeader    byte = 10 // version u32, objects u32, aeus u32
	ckObject    byte = 11 // id u32, kind u8, domain u64, nameLen u16, name
	ckTreeImage byte = 12 // aeu u32, obj u32, kvs, links
	ckColImage  byte = 13 // aeu u32, obj u32, count u32, values
	ckStamps    byte = 15 // aeu u32, stamp u64, gen u64
	ckFooter    byte = 16 // magic u64
)

const (
	ckVersion     = 1
	ckFooterMagic = 0xe515_0000_d00d // arbitrary tag marking a complete file
)

// appendFrame appends one CRC-framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// nextFrame parses one frame off data, returning the payload and the rest.
// ok is false when the remaining bytes do not hold a complete, checksummed
// frame — a torn tail during WAL replay, corruption in a checkpoint.
func nextFrame(data []byte) (payload, rest []byte, ok bool) {
	if len(data) < frameHeader {
		return nil, data, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxRecordLen || uint64(frameHeader)+uint64(n) > uint64(len(data)) {
		return nil, data, false
	}
	payload = data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, data, false
	}
	return payload, data[frameHeader+int(n):], true
}

// writeCheckpointFile serializes data to path via a temp file, fsyncing
// before the rename so the final name only ever holds a complete file.
// It returns the file size.
func writeCheckpointFile(path string, data *CheckpointData) (int64, error) {
	var buf []byte
	var p []byte

	p = append(p[:0], ckHeader)
	p = binary.LittleEndian.AppendUint32(p, ckVersion)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(data.Objects)))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(data.AEUs)))
	buf = appendFrame(buf, p)

	for _, o := range data.Objects {
		p = append(p[:0], ckObject)
		p = binary.LittleEndian.AppendUint32(p, o.ID)
		p = append(p, o.Kind)
		p = binary.LittleEndian.AppendUint64(p, o.Domain)
		p = binary.LittleEndian.AppendUint16(p, uint16(len(o.Name)))
		p = append(p, o.Name...)
		buf = appendFrame(buf, p)
	}

	for aeu, img := range data.AEUs {
		p = append(p[:0], ckStamps)
		p = binary.LittleEndian.AppendUint32(p, uint32(aeu))
		p = binary.LittleEndian.AppendUint64(p, img.Stamp)
		p = binary.LittleEndian.AppendUint64(p, uint64(img.Gen))
		buf = appendFrame(buf, p)

		for _, t := range img.Trees {
			p = append(p[:0], ckTreeImage)
			p = binary.LittleEndian.AppendUint32(p, uint32(aeu))
			p = binary.LittleEndian.AppendUint32(p, t.Obj)
			p = binary.LittleEndian.AppendUint32(p, uint32(len(t.KVs)))
			for _, kv := range t.KVs {
				p = binary.LittleEndian.AppendUint64(p, kv.Key)
				p = binary.LittleEndian.AppendUint64(p, kv.Value)
			}
			p = binary.LittleEndian.AppendUint32(p, uint32(len(t.Links)))
			for _, lr := range t.Links {
				p = binary.LittleEndian.AppendUint64(p, lr.Xid)
				p = binary.LittleEndian.AppendUint64(p, lr.Lo)
				p = binary.LittleEndian.AppendUint64(p, lr.Hi)
			}
			buf = appendFrame(buf, p)
		}
		for _, c := range img.Cols {
			p = append(p[:0], ckColImage)
			p = binary.LittleEndian.AppendUint32(p, uint32(aeu))
			p = binary.LittleEndian.AppendUint32(p, c.Obj)
			p = binary.LittleEndian.AppendUint32(p, uint32(len(c.Values)))
			for _, v := range c.Values {
				p = binary.LittleEndian.AppendUint64(p, v)
			}
			buf = appendFrame(buf, p)
		}
	}

	p = append(p[:0], ckFooter)
	p = binary.LittleEndian.AppendUint64(p, ckFooterMagic)
	buf = appendFrame(buf, p)

	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// readCheckpointFile parses a checkpoint file. Any framing or structural
// defect is an error: checkpoints are only named by the manifest after a
// complete fsync, so damage here means the directory is corrupt.
func readCheckpointFile(path string) (*CheckpointData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	corrupt := func(what string) error {
		return fmt.Errorf("durable: corrupt checkpoint %s: %s", path, what)
	}
	data := &CheckpointData{}
	sawHeader, sawFooter := false, false
	rest := raw
	for len(rest) > 0 {
		payload, r, ok := nextFrame(rest)
		if !ok {
			return nil, corrupt("bad frame")
		}
		rest = r
		if len(payload) < 1 {
			return nil, corrupt("empty section")
		}
		kind, p := payload[0], payload[1:]
		switch kind {
		case ckHeader:
			if len(p) != 12 {
				return nil, corrupt("header size")
			}
			if v := binary.LittleEndian.Uint32(p[0:4]); v != ckVersion {
				return nil, fmt.Errorf("durable: checkpoint %s has version %d, want %d", path, v, ckVersion)
			}
			data.Objects = make([]ObjectMeta, 0, binary.LittleEndian.Uint32(p[4:8]))
			data.AEUs = make([]AEUImage, binary.LittleEndian.Uint32(p[8:12]))
			sawHeader = true
		case ckObject:
			if !sawHeader || len(p) < 15 {
				return nil, corrupt("object section")
			}
			o := ObjectMeta{
				ID:     binary.LittleEndian.Uint32(p[0:4]),
				Kind:   p[4],
				Domain: binary.LittleEndian.Uint64(p[5:13]),
			}
			nameLen := int(binary.LittleEndian.Uint16(p[13:15]))
			if len(p) != 15+nameLen {
				return nil, corrupt("object name")
			}
			o.Name = string(p[15:])
			data.Objects = append(data.Objects, o)
		case ckStamps:
			if !sawHeader || len(p) != 20 {
				return nil, corrupt("stamps section")
			}
			aeu := int(binary.LittleEndian.Uint32(p[0:4]))
			if aeu >= len(data.AEUs) {
				return nil, corrupt("stamps aeu out of range")
			}
			data.AEUs[aeu].Stamp = binary.LittleEndian.Uint64(p[4:12])
			data.AEUs[aeu].Gen = int(binary.LittleEndian.Uint64(p[12:20]))
		case ckTreeImage:
			if !sawHeader || len(p) < 12 {
				return nil, corrupt("tree image header")
			}
			aeu := int(binary.LittleEndian.Uint32(p[0:4]))
			if aeu >= len(data.AEUs) {
				return nil, corrupt("tree image aeu out of range")
			}
			t := TreeImage{Obj: binary.LittleEndian.Uint32(p[4:8])}
			n := int(binary.LittleEndian.Uint32(p[8:12]))
			off := 12
			if len(p) < off+16*n+4 {
				return nil, corrupt("tree image kvs")
			}
			t.KVs = make([]prefixtree.KV, n)
			for i := range t.KVs {
				t.KVs[i] = prefixtree.KV{
					Key:   binary.LittleEndian.Uint64(p[off:]),
					Value: binary.LittleEndian.Uint64(p[off+8:]),
				}
				off += 16
			}
			ln := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if len(p) != off+24*ln {
				return nil, corrupt("tree image links")
			}
			t.Links = make([]LinkRange, ln)
			for i := range t.Links {
				t.Links[i] = LinkRange{
					Xid: binary.LittleEndian.Uint64(p[off:]),
					Lo:  binary.LittleEndian.Uint64(p[off+8:]),
					Hi:  binary.LittleEndian.Uint64(p[off+16:]),
				}
				off += 24
			}
			data.AEUs[aeu].Trees = append(data.AEUs[aeu].Trees, t)
		case ckColImage:
			if !sawHeader || len(p) < 12 {
				return nil, corrupt("col image header")
			}
			aeu := int(binary.LittleEndian.Uint32(p[0:4]))
			if aeu >= len(data.AEUs) {
				return nil, corrupt("col image aeu out of range")
			}
			c := ColImage{Obj: binary.LittleEndian.Uint32(p[4:8])}
			n := int(binary.LittleEndian.Uint32(p[8:12]))
			if len(p) != 12+8*n {
				return nil, corrupt("col image values")
			}
			c.Values = make([]uint64, n)
			for i := range c.Values {
				c.Values[i] = binary.LittleEndian.Uint64(p[12+8*i:])
			}
			data.AEUs[aeu].Cols = append(data.AEUs[aeu].Cols, c)
		case ckFooter:
			if len(p) != 8 || binary.LittleEndian.Uint64(p) != ckFooterMagic {
				return nil, corrupt("footer")
			}
			sawFooter = true
		default:
			return nil, corrupt(fmt.Sprintf("unknown section %d", kind))
		}
	}
	if !sawHeader || !sawFooter {
		return nil, corrupt("missing header or footer")
	}
	return data, nil
}
