// Package durable is the ERIS durability subsystem: per-AEU write-ahead
// logs with group commit, engine-wide fuzzy checkpoints, and crash
// recovery. The paper punts durability entirely; this package adds it
// without giving up the engine's coordination-free design. Each AEU logs
// only the partitions it exclusively owns — the same locality argument the
// paper uses for memory management — so there is one log per AEU, appended
// from the AEU loop and never contended. Cross-AEU consistency comes from
// the ownership-transfer protocol itself: a partition range moves between
// logs via a logged handoff record at the source and a logged link record
// (with payload) at the target, both stamped with the same transfer id, so
// recovery can reassemble a consistent global state from per-AEU replays.
//
// Log format: length-prefixed CRC32C (Castagnoli) frames. Each frame is
//
//	[len u32][crc u32][payload]
//
// with crc over the payload and the payload starting with a global
// sequence number, a record kind and the object id. Replay stops at the
// first frame that fails to parse or verify — a torn tail from a crash —
// and never trusts anything after it.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"eris/internal/faults"
	"eris/internal/prefixtree"
)

// errInjectedWrite is the error a fail_write fault substitutes for the
// file write's result.
var errInjectedWrite = errors.New("durable: injected write failure")

// Record kinds.
const (
	recUpsert byte = 1 // applied upsert batch: count, count x (key, value)
	recDelete byte = 2 // applied delete batch: count, count x key
	// recHandoff is logged at the source AEU when it extracts [lo, hi] for
	// a transfer: the record's own sequence number is the transfer id (xid)
	// that the target's link record will carry. It has no payload — replay
	// re-derives the moved tuples from the replayed source state.
	recHandoff byte = 3 // lo, hi, target AEU
	// recLink is logged at the target AEU when a transfer payload links:
	// lo, hi, xid (the source's handoff sequence number), then the payload
	// key/value pairs. The payload makes the record self-contained: a
	// transfer whose handoff record was lost to a crash still replays.
	recLink byte = 4 // lo, hi, xid, count, count x (key, value)
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8 // len u32 + crc u32
	// maxRecordLen bounds one frame; larger length prefixes are treated as
	// corruption (torn tail), which also keeps hostile replay input from
	// provoking huge allocations.
	maxRecordLen = 1 << 28
)

// segment is one batch of encoded frames bound for a specific log
// generation. The AEU appends into the open segment; the writer goroutine
// swaps it out, writes and fsyncs it, then recycles the buffer.
type segment struct {
	gen     int
	data    []byte
	last    uint64 // last sequence number encoded into data
	records int
}

// Log is one AEU's write-ahead log. Append* methods are called only from
// the owning AEU's loop goroutine; the writer goroutine batches appended
// frames and fsyncs them (group commit), then publishes the covered
// sequence number through DurableSeq. The AEU never blocks per record.
type Log struct {
	mgr *Manager
	id  int

	mu      sync.Mutex
	cur     *segment
	queue   []*segment
	spareQ  []*segment // recycled queue backing array (ping-pong with queue)
	free    []*segment
	gen     int
	lastSeq uint64
	closed  bool
	crashed bool

	durable atomic.Uint64

	wake chan struct{}
	done chan struct{}

	// Writer-goroutine state (no locking needed beyond the queue swap).
	file       *os.File
	fileGen    int
	writtenOff int64
	durableOff int64
	lastErr    error
}

func newLog(mgr *Manager, id, startGen int) *Log {
	l := &Log{
		mgr:  mgr,
		id:   id,
		gen:  startGen,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go l.writer()
	return l
}

// DurableSeq returns the highest sequence number covered by an fsync.
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// LastSeq returns the last sequence number appended to this log; only the
// owning AEU's loop may call it.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Sync reports whether acks must wait for the covering fsync.
func (l *Log) Sync() bool { return l.mgr.syncWrites }

// PublishedStamp returns this AEU's image stamp in the last durably
// published checkpoint (0 before one publishes this session). Link
// provenance at or below it is persisted and safe to drop.
func (l *Log) PublishedStamp() uint64 { return l.mgr.publishedStamp(l.id) }

// open returns the segment for the current generation, growing a frame of
// payload length n at its end; the returned slice is the payload area.
//
//eris:hotpath
func (l *Log) frame(n int) (*segment, []byte) {
	s := l.cur
	if s == nil || s.gen != l.gen {
		if s != nil {
			l.queue = append(l.queue, s)
		}
		if k := len(l.free); k > 0 {
			s = l.free[k-1]
			l.free = l.free[:k-1]
			s.data = s.data[:0]
			s.last, s.records = 0, 0
		} else {
			s = &segment{} //eris:allowalloc freelist-miss fallback; segments recycle through l.free after the first checkpoints
		}
		s.gen = l.gen
		l.cur = s
	}
	off := len(s.data)
	need := off + frameHeader + n
	if cap(s.data) < need {
		grown := make([]byte, off, need*2) //eris:allowalloc segment growth doubles capacity; amortized
		copy(grown, s.data)
		s.data = grown
	}
	s.data = s.data[:need]
	return s, s.data[off:]
}

// sealFrame fills the header of a frame whose payload was just encoded.
//
//eris:hotpath
func sealFrame(frame []byte) {
	payload := frame[frameHeader:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
}

// append encodes one record and signals the writer; it returns the
// record's sequence number. kvLen is the kind-specific body length.
//
//eris:hotpath
func (l *Log) appendRecord(kind byte, obj uint32, body int, enc func(b []byte)) uint64 {
	seq := l.mgr.seq.Add(1)
	l.mu.Lock() //eris:allowblock bounded queue-swap critical section; the writer goroutine does all I/O outside it
	if l.closed || l.crashed {
		l.mu.Unlock()
		return seq
	}
	s, frame := l.frame(13 + body)
	p := frame[frameHeader:]
	binary.LittleEndian.PutUint64(p[0:8], seq)
	p[8] = kind
	binary.LittleEndian.PutUint32(p[9:13], obj)
	enc(p[13:])
	sealFrame(frame)
	s.last = seq
	s.records++
	l.lastSeq = seq
	l.mu.Unlock()
	l.mgr.records.Add(1)
	if l.mgr.faults.Should(faults.Crash) {
		l.mgr.crashReq.Store(true)
	}
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return seq
}

// AppendUpsert logs an applied upsert batch.
//
//eris:hotpath
func (l *Log) AppendUpsert(obj uint32, kvs []prefixtree.KV) uint64 {
	return l.appendRecord(recUpsert, obj, 4+16*len(kvs), func(b []byte) { //eris:allowalloc non-escaping encoder closure; appendRecord invokes it synchronously before returning
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(kvs)))
		off := 4
		for _, kv := range kvs {
			binary.LittleEndian.PutUint64(b[off:], kv.Key)
			binary.LittleEndian.PutUint64(b[off+8:], kv.Value)
			off += 16
		}
	})
}

// AppendDelete logs an applied delete batch.
//
//eris:hotpath
func (l *Log) AppendDelete(obj uint32, keys []uint64) uint64 {
	return l.appendRecord(recDelete, obj, 4+8*len(keys), func(b []byte) { //eris:allowalloc non-escaping encoder closure; appendRecord invokes it synchronously before returning
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(keys)))
		off := 4
		for _, k := range keys {
			binary.LittleEndian.PutUint64(b[off:], k)
			off += 8
		}
	})
}

// AppendHandoff logs the extraction of [lo, hi] for a transfer to target;
// the returned sequence number is the transfer id the link record carries.
//
//eris:hotpath
func (l *Log) AppendHandoff(obj uint32, lo, hi uint64, target uint32) uint64 {
	return l.appendRecord(recHandoff, obj, 20, func(b []byte) { //eris:allowalloc non-escaping encoder closure; appendRecord invokes it synchronously before returning
		binary.LittleEndian.PutUint64(b[0:8], lo)
		binary.LittleEndian.PutUint64(b[8:16], hi)
		binary.LittleEndian.PutUint32(b[16:20], target)
	})
}

// AppendLink logs a linked transfer payload for [lo, hi] under xid.
//
//eris:hotpath
func (l *Log) AppendLink(obj uint32, lo, hi, xid uint64, kvs []prefixtree.KV) uint64 {
	return l.appendRecord(recLink, obj, 28+16*len(kvs), func(b []byte) { //eris:allowalloc non-escaping encoder closure; appendRecord invokes it synchronously before returning
		binary.LittleEndian.PutUint64(b[0:8], lo)
		binary.LittleEndian.PutUint64(b[8:16], hi)
		binary.LittleEndian.PutUint64(b[16:24], xid)
		binary.LittleEndian.PutUint32(b[24:28], uint32(len(kvs)))
		off := 28
		for _, kv := range kvs {
			binary.LittleEndian.PutUint64(b[off:], kv.Key)
			binary.LittleEndian.PutUint64(b[off+8:], kv.Value)
			off += 16
		}
	})
}

// Rotate seals the current generation and directs subsequent appends to a
// new one. Called by the owning AEU at its checkpoint-snapshot moment, so
// the sealed generation holds exactly the records at or below the returned
// stamp — the checkpoint's replay cut. It returns the stamp (last appended
// sequence number) and the sealed generation.
func (l *Log) Rotate() (stamp uint64, gen int) {
	l.mu.Lock() //eris:allowblock bounded generation-seal critical section at the checkpoint boundary; no I/O under the lock
	stamp, gen = l.lastSeq, l.gen
	if l.cur != nil {
		l.queue = append(l.queue, l.cur)
		l.cur = nil
	}
	l.gen++
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return stamp, gen
}

// Flush blocks until every record appended before the call is covered by
// an fsync (or the timeout expires).
func (l *Log) Flush(timeout time.Duration) error {
	l.mu.Lock() //eris:allowblock Flush runs off the steady-state loop: AEUs call it once at shutdown (flushDurableAcks)
	want := l.lastSeq
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	deadline := time.Now().Add(timeout)
	for l.durable.Load() < want {
		l.mu.Lock() //eris:allowblock Flush runs off the steady-state loop: AEUs call it once at shutdown (flushDurableAcks)
		dead := l.crashed || l.closed
		l.mu.Unlock()
		if dead {
			return fmt.Errorf("durable: log %d closed with unsynced records", l.id)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("durable: log %d flush timed out at seq %d < %d", l.id, l.durable.Load(), want)
		}
		time.Sleep(100 * time.Microsecond) //eris:allowblock Flush runs off the steady-state loop: AEUs call it once at shutdown (flushDurableAcks)
	}
	return nil
}

// close shuts the writer down after draining pending segments (clean
// shutdown); crash shuts it down dropping them (crash simulation).
func (l *Log) close() {
	l.mu.Lock()
	if l.closed || l.crashed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.done
}

// crash freezes the writer: pending (unwritten) segments are dropped —
// they model buffered bytes a real crash never hands to the OS — and the
// file is left at whatever the writer managed to write. The Manager then
// tears or keeps the unsynced tail.
func (l *Log) crash() {
	l.mu.Lock()
	if l.closed || l.crashed {
		l.mu.Unlock()
		return
	}
	l.crashed = true
	l.queue = nil
	l.cur = nil
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.done
}

// take swaps out every pending segment (sealing the open one). The queue's
// backing array ping-pongs with the one recycle returned, so steady-state
// group commit allocates nothing.
func (l *Log) take() ([]*segment, bool, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil && len(l.cur.data) > 0 {
		l.queue = append(l.queue, l.cur)
		l.cur = nil
	}
	segs := l.queue
	if l.spareQ != nil {
		l.queue = l.spareQ[:0]
		l.spareQ = nil
	} else {
		l.queue = nil
	}
	return segs, l.closed, l.crashed
}

// recycle returns written segments to the freelist and the batch slice to
// the queue ping-pong.
func (l *Log) recycle(segs []*segment) {
	l.mu.Lock()
	for i, s := range segs {
		s.data = s.data[:0]
		if len(l.free) < 4 {
			l.free = append(l.free, s)
		}
		segs[i] = nil
	}
	if segs != nil {
		l.spareQ = segs[:0]
	}
	l.mu.Unlock()
}

// writer is the group-commit goroutine: it batches whatever accumulated
// since the last round, writes it, fsyncs once, and publishes the covered
// sequence number. One fsync covers every record of the batch — the group.
func (l *Log) writer() {
	defer close(l.done)
	for {
		<-l.wake
		for {
			segs, closed, crashed := l.take()
			if crashed {
				return // file left as written; Manager tears the tail
			}
			if len(segs) == 0 {
				if closed {
					l.closeFile()
					return
				}
				break
			}
			if !l.writeBatch(segs) {
				return // crash raced the batch; file left as written, Manager tears the tail
			}
			l.recycle(segs)
		}
	}
}

// writeBatch writes and fsyncs a batch of segments, switching files at
// generation boundaries (the previous generation is fsynced before the
// next opens, so at most the newest file can ever have an unsynced tail).
// Like fsync, writes retry until they succeed: a dropped segment would
// otherwise let the next batch's fsync advance the durable watermark past
// records that never reached the OS, releasing acks for lost data. It
// reports false only when a crash raced the batch — then nothing about
// this batch is published and the segments die with the simulated buffers.
func (l *Log) writeBatch(segs []*segment) bool {
	var last uint64
	var bytes int64
	var records int
	for _, s := range segs {
		if !l.ensureFileRetry(s.gen) || !l.writeAll(s.data) {
			return false
		}
		bytes += int64(len(s.data))
		records += s.records
		if s.last > last {
			last = s.last
		}
	}
	if !l.fsync() {
		return false
	}
	if last > 0 {
		l.durable.Store(last)
	}
	l.durableOff = l.writtenOff
	l.mgr.bytesLogged.Add(bytes)
	l.mgr.fsyncs.Add(1)
	l.mgr.observeGroup(int64(records))
	return true
}

// writeAll appends data to the open file, retrying through short writes
// and transient errors (ENOSPC, injected fail_write). It reports false
// when a crash raced the retry loop.
func (l *Log) writeAll(data []byte) bool {
	for len(data) > 0 {
		var n int
		var err error
		if l.mgr.faults.Should(faults.FailWrite) {
			err = errInjectedWrite
		} else {
			n, err = l.file.Write(data)
		}
		l.writtenOff += int64(n)
		data = data[n:]
		if err == nil {
			continue
		}
		l.lastErr = err
		l.mgr.logErrors.Add(1)
		if l.isCrashed() {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// ensureFileRetry opens the generation's log file, retrying transient
// failures; false means a crash raced the retry loop.
func (l *Log) ensureFileRetry(gen int) bool {
	for {
		err := l.ensureFile(gen)
		if err == nil {
			return true
		}
		l.lastErr = err
		l.mgr.logErrors.Add(1)
		if l.isCrashed() {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// fsync syncs the open file, retrying through injected failures: a parked
// ack must never release on a failed sync, and a transient failure must
// not lose the records behind it. It reports false when a crash raced the
// retry loop (the sync never succeeded).
func (l *Log) fsync() bool {
	for {
		if l.mgr.faults.Should(faults.FailFsync) {
			l.mgr.fsyncFailures.Add(1)
		} else if err := l.file.Sync(); err != nil {
			l.mgr.fsyncFailures.Add(1)
			l.lastErr = err
		} else {
			return true
		}
		if l.isCrashed() {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// isCrashed reports whether crash() was called.
func (l *Log) isCrashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// ensureFile opens the log file for generation gen, fsyncing and closing
// the previous one first.
func (l *Log) ensureFile(gen int) error {
	if l.file != nil && l.fileGen == gen {
		return nil
	}
	l.closeFile()
	f, err := os.OpenFile(l.mgr.walPath(l.id, gen), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.file = f
	l.fileGen = gen
	l.writtenOff = 0
	l.durableOff = 0
	l.mgr.syncDir()
	return nil
}

func (l *Log) closeFile() {
	if l.file == nil {
		return
	}
	if l.fsync() {
		l.durableOff = l.writtenOff
	}
	l.file.Close()
	l.file = nil
}
