package aeu

import (
	"fmt"
	"runtime"
	"time"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// loop cost constants (virtual nanoseconds).
const (
	groupNSPerCommand = 2   // hash-grouping one drained command
	scanShareNSPerCmd = 5   // registering one scan in a shared pass
	forwardNSPerKey   = 0.5 // validity check + re-route handoff
)

// Run executes the AEU loop until Stop is called. It is the goroutine body
// the engine spawns per worker.
//
//eris:loop
func (a *AEU) Run() {
	iter := 0
	for !a.stop.Load() {
		iter++
		a.iterations.Add(1)
		busy := false

		// Acks parked by the DelayEpochDone fault are released one loop
		// round after they were produced.
		if a.releaseHeldAcks() {
			busy = true
		}

		// Durability housekeeping: release client acks whose WAL records
		// are covered by an fsync, and serve a pending checkpoint-image
		// request at this iteration boundary.
		if a.wal != nil {
			if a.releaseDurableAcks() {
				busy = true
			}
			if a.serveCheckpoint() {
				busy = true
			}
		}

		// Stage 1+2: drain the incoming buffer, group commands by data
		// object and type, then process the groups. Requeued commands
		// (released deferrals) are checked against their deadline first —
		// work that expired waiting out a transfer answers with an error
		// instead of bouncing through another rebalance cycle.
		drained := a.router.Drain(a.ID, a.classify)
		a.drainRequeue()
		if drained > 0 {
			a.machine.AdvanceNS(a.Core, groupNSPerCommand*float64(drained))
			busy = true
		}
		if len(a.order) > 0 {
			a.processGroups()
			busy = true
		}

		// Stage 3: balancing and transfer commands. Fault-stalled payloads
		// re-enter the mailbox here, one round late.
		if a.releaseStalled() {
			busy = true
		}
		if a.mailCnt.Load() > 0 {
			a.receiveTransfers()
			busy = true
		}
		if iter%reconcileEvery == 0 {
			a.reconcileBounds()
			a.expireDeferred()
		}

		// Workload generation. An AEU whose virtual clock ran far ahead of
		// the slowest core pauses generation (but keeps serving incoming
		// commands): this bounds virtual-time skew without ever blocking
		// the processing stage, which peers may be waiting on.
		if a.Generator != nil && !a.genDone {
			if iter%a.cfg.SkewCheckEvery == 0 {
				a.updateSkew()
			}
			if !a.skewed {
				if !a.Generator.Generate(a) {
					a.genDone = true
				}
				busy = true
			}
		}

		a.Outbox().Flush()

		if !busy {
			// An idle AEU polls its buffers at full speed, but its virtual
			// clock must not race ahead of the workers that still have
			// work: advance only while this core is (close to) the
			// slowest, so idle time tracks busy time instead of the real
			// scheduler's whims.
			min := a.machine.MinClock(0, topology.CoreID(a.router.NumAEUs()))
			if a.machine.Clock(a.Core) <= min+int64(a.cfg.IdleLoopNS*1000) {
				a.machine.AdvanceNS(a.Core, a.cfg.IdleLoopNS)
			}
			runtime.Gosched()
		}
	}
	if a.wal != nil {
		// A checkpoint request that raced the stop must still be answered
		// (the engine is waiting on Done), and parked acks drain after a
		// final flush — see flushDurableAcks.
		a.serveCheckpoint()
		a.flushDurableAcks()
	}
	a.Outbox().Flush()
}

// updateSkew refreshes the generation gate: true while this AEU's virtual
// clock is more than the skew window ahead of the slowest core.
func (a *AEU) updateSkew() {
	last := topology.CoreID(a.router.NumAEUs())
	windowPS := int64(a.cfg.SkewWindowNS * 1000)
	min := a.machine.MinClock(0, last)
	a.skewed = a.machine.Clock(a.Core)-min > windowPS
}

// classify sorts one drained command into the per-(object, type) groups or
// the control queues; this is the paper's command-grouping stage. Drained
// commands are decoded zero-copy, so c.Keys and c.KVs are valid only for
// the duration of this call: batch contents are copied into the group
// immediately, and retained scan bounds are cloned into the group's arena.
//
//eris:hotpath
func (a *AEU) classify(c command.Command) {
	switch c.Op {
	case command.OpLookup, command.OpUpsert, command.OpDelete:
		k := groupKey{obj: routing.ObjectID(c.Object), op: c.Op, replyTo: c.ReplyTo, tag: c.Tag, source: c.Source}
		if c.ReplyTo == command.NoReply {
			// Results are consumed locally: commands from all sources can
			// share one batch.
			k.tag, k.source = 0, 0
		}
		if a.cfg.NoCoalesce {
			a.noCoSeq++
			k.tag = a.noCoSeq
		}
		g := a.group(k)
		before := len(g.keys) + len(g.kvs)
		if !g.mixedDeadlines() && before > 0 && c.Deadline != g.deadline {
			// First disagreement: NoReply coalescing batched commands from
			// different sources with different deadlines. Materialize the
			// per-member deadlines so expiry can answer exactly the members
			// whose deadline passed — merging would let one stale member
			// expire the whole batch, silently dropping deadline-free
			// writes. Mixed batches are rare (cross-source coalescing only),
			// so the extra bookkeeping stays off the common path.
			for i := 0; i < before; i++ {
				g.dls = append(g.dls, g.deadline)
			}
		}
		g.keys = append(g.keys, c.Keys...)
		g.kvs = append(g.kvs, c.KVs...)
		if g.mixedDeadlines() {
			after := len(g.keys) + len(g.kvs)
			for i := before; i < after; i++ {
				g.dls = append(g.dls, c.Deadline)
			}
		}
		g.deadline = mergeDeadline(g.deadline, c.Deadline)
	case command.OpScan:
		k := groupKey{obj: routing.ObjectID(c.Object), op: c.Op}
		if a.cfg.NoCoalesce {
			// Group splitting applies to scans too: each scan runs its own
			// partition pass instead of joining a shared one, so the
			// ablation measures uncoalesced scan cost honestly.
			a.noCoSeq++
			k.tag = a.noCoSeq
		}
		g := a.group(k)
		if len(c.Keys) > 0 {
			start := len(g.scanKeys)
			g.scanKeys = append(g.scanKeys, c.Keys...)
			c.Keys = g.scanKeys[start:len(g.scanKeys):len(g.scanKeys)]
		}
		g.scans = append(g.scans, c)
	case command.OpResult:
		a.handleResult(c)
	case command.OpBalance:
		a.handleBalance(c) //eris:allowalloc control-plane dispatch; balance traffic is off the data hot path
	case command.OpFetch:
		a.handleFetch(c) //eris:allowalloc control-plane dispatch; fetch traffic is off the data hot path
	case command.OpError:
		a.handleError(c) //eris:allowalloc control-plane dispatch; error handling is off the data hot path
	default:
		a.rejectUnserved(c) //eris:allowalloc cold rejection path; a served op never reaches it
	}
}

// rejectUnserved answers a command that decoded but carries an op this loop
// does not serve; it cannot be executed, but a requester waiting on it must
// hear that — a silent drop would leave a remote client hanging until its
// timeout. Deliberately not //eris:hotpath: the error construction below
// allocates, and keeping it out of classify keeps the hot path alloc-free.
func (a *AEU) rejectUnserved(c command.Command) {
	a.ctrlErrors.Inc()
	if c.ReplyTo != command.NoReply {
		a.replyErr(
			groupKey{obj: routing.ObjectID(c.Object), replyTo: c.ReplyTo, tag: c.Tag, source: c.Source},
			answeredOf(c),
			fmt.Errorf("aeu %d: unserved op %v", a.ID, c.Op),
		)
	}
}

// mergeDeadline combines batch deadlines: the earliest non-zero one wins.
//
//eris:hotpath
func mergeDeadline(cur, next uint64) uint64 {
	if next != 0 && (cur == 0 || next < cur) {
		return next
	}
	return cur
}

// answeredOf is how many request units a definitive failure of c settles,
// mirroring the accounting of successful replies (keys for batches, one
// per scan command); never zero so a waiting issuer always makes progress.
//
//eris:hotpath
func answeredOf(c command.Command) int {
	n := len(c.Keys)
	if len(c.KVs) > n {
		n = len(c.KVs)
	}
	if c.Op == command.OpScan {
		n = 1
	}
	if n < 1 {
		n = 1
	}
	return n
}

// drainRequeue reclassifies commands released from the deferred queue,
// expiring those whose deadline passed while they were parked.
//
//eris:hotpath
func (a *AEU) drainRequeue() {
	if len(a.requeue) == 0 {
		return
	}
	now := uint64(time.Now().UnixNano())
	for _, c := range a.requeue {
		if c.Deadline != 0 && now > c.Deadline {
			a.expireCommand(c) //eris:allowalloc deadline-expiry path; expired commands are off the steady-state path
			continue
		}
		a.classify(c)
	}
	a.requeue = a.requeue[:0]
}

// expireDeferred sweeps the deferred queue for commands whose deadline
// passed while their transfer epoch is still open — without this, a
// wedged epoch (faults, lost acks) parks deadline-carrying work until an
// unrelated balance cycle flushes it.
func (a *AEU) expireDeferred() {
	if len(a.deferred) == 0 {
		return
	}
	now := uint64(time.Now().UnixNano())
	kept := a.deferred[:0]
	for _, c := range a.deferred {
		if c.Deadline != 0 && now > c.Deadline {
			a.expireCommand(c) //eris:allowalloc deadline-expiry path; expired commands are off the steady-state path
			continue
		}
		kept = append(kept, c)
	}
	a.deferred = kept
}

// expireCommand answers a deadline-expired command with ErrExpired.
func (a *AEU) expireCommand(c command.Command) {
	a.expired.Inc()
	if c.ReplyTo == command.NoReply {
		return
	}
	a.replyErr(
		groupKey{obj: routing.ObjectID(c.Object), replyTo: c.ReplyTo, tag: c.Tag, source: c.Source},
		answeredOf(c), ErrExpired,
	)
}

// group returns the group for k, recycling a released one when available.
//
//eris:hotpath
func (a *AEU) group(k groupKey) *group {
	g := a.groups[k]
	if g == nil {
		if n := len(a.groupFree); n > 0 {
			g = a.groupFree[n-1]
			a.groupFree = a.groupFree[:n-1]
		} else {
			g = &group{} //eris:allowalloc pool-miss fallback; groups recycle through a.groupFree after warmup
		}
		a.groups[k] = g
		a.order = append(a.order, k)
	}
	return g
}

// releaseGroup returns a processed group to the freelist, keeping the
// batch capacity for the next loop iteration.
//
//eris:hotpath
func (a *AEU) releaseGroup(k groupKey, g *group) {
	delete(a.groups, k)
	g.keys = g.keys[:0]
	g.kvs = g.kvs[:0]
	g.scans = g.scans[:0]
	g.scanKeys = g.scanKeys[:0]
	g.deadline = 0
	g.dls = g.dls[:0]
	a.groupFree = append(a.groupFree, g)
}

// processGroups executes all grouped commands; this is the most time
// consuming part of the loop.
//
//eris:hotpath
func (a *AEU) processGroups() {
	for _, k := range a.order {
		g := a.groups[k]
		p := a.parts[k.obj]
		if g.mixedDeadlines() {
			// Members disagree on their deadline: split into per-deadline
			// sub-batches so deferral and expiry stay per-member.
			a.processMixed(k, g, p)
			a.releaseGroup(k, g)
			continue
		}
		if p == nil {
			// The AEU holds no partition of this object (e.g. freshly
			// rebalanced away); forward everything.
			a.forwardGroup(k, g)
			a.releaseGroup(k, g)
			continue
		}
		start := a.machine.Clock(a.Core)
		switch k.op {
		case command.OpLookup:
			a.processLookups(k, g, p)
		case command.OpUpsert:
			a.processUpserts(k, g, p)
		case command.OpDelete:
			a.processDeletes(k, g, p)
		case command.OpScan:
			a.processScans(g, p)
		}
		elapsed := a.machine.Clock(a.Core) - start
		p.cmdTimePS.Add(elapsed)
		p.cmdCount.Add(1)
		a.groupNS.Observe(elapsed / 1000)
		a.releaseGroup(k, g)
	}
	a.order = a.order[:0]
}

// processMixed executes a group whose members carry different deadlines by
// partitioning it into per-deadline sub-batches and dispatching each through
// the uniform-deadline path. Only NoReply cross-source coalescing produces
// such groups, so the sub-group allocation is off the steady-state path.
//
//eris:hotpath
func (a *AEU) processMixed(k groupKey, g *group, p *Partition) {
	subs := map[uint64]*group{} //eris:allowalloc mixed-deadline sub-batching happens only for NoReply cross-source coalescing, off the steady-state path
	var order []uint64
	sub := func(dl uint64) *group { //eris:allowalloc see above: off the steady-state path
		sg := subs[dl]
		if sg == nil {
			sg = &group{deadline: dl}
			subs[dl] = sg
			order = append(order, dl)
		}
		return sg
	}
	for i, key := range g.keys {
		sg := sub(g.dls[i])
		sg.keys = append(sg.keys, key)
	}
	for i, kv := range g.kvs {
		sg := sub(g.dls[len(g.keys)+i])
		sg.kvs = append(sg.kvs, kv)
	}
	for _, dl := range order {
		sg := subs[dl]
		if p == nil {
			a.forwardGroup(k, sg)
			continue
		}
		start := a.machine.Clock(a.Core)
		switch k.op {
		case command.OpLookup:
			a.processLookups(k, sg, p)
		case command.OpUpsert:
			a.processUpserts(k, sg, p)
		case command.OpDelete:
			a.processDeletes(k, sg, p)
		}
		elapsed := a.machine.Clock(a.Core) - start
		p.cmdTimePS.Add(elapsed)
		p.cmdCount.Add(1)
		a.groupNS.Observe(elapsed / 1000)
	}
}

// splitValid partitions keys into in-range, pending and foreign sets using
// the partition bounds, the pending transfer ranges and the ranges still
// recovering from a lost balance command.
//
//eris:hotpath
func (a *AEU) splitValid(p *Partition, keys []uint64, valid *[]uint64, deferredIdx *[]int, foreign *[]uint64) {
	for i, key := range keys {
		switch {
		case key < p.Lo || key > p.Hi:
			*foreign = append(*foreign, key)
		case a.inPendingRange(key) || a.inRecovering(p.Object, key):
			*deferredIdx = append(*deferredIdx, i)
		default:
			*valid = append(*valid, key)
		}
	}
}

//eris:hotpath
func (a *AEU) inPendingRange(key uint64) bool {
	for _, r := range a.pendingRanges {
		if key >= r.lo && key <= r.hi {
			return true
		}
	}
	return false
}

//eris:hotpath
func (a *AEU) inRecovering(obj routing.ObjectID, key uint64) bool {
	for _, r := range a.recovering {
		if r.obj == obj && key >= r.lo && key <= r.hi {
			return true
		}
	}
	return false
}

// overlapsRecovering reports whether [lo, hi] intersects a range whose data
// is still being repaired after a lost balance command.
//
//eris:hotpath
func (a *AEU) overlapsRecovering(obj routing.ObjectID, lo, hi uint64) bool {
	for _, r := range a.recovering {
		if r.obj == obj && lo <= r.hi && hi >= r.lo {
			return true
		}
	}
	return false
}

//eris:hotpath
func (a *AEU) processLookups(k groupKey, g *group, p *Partition) {
	valid := a.scratch.valid[:0]
	foreign := a.scratch.foreign[:0]
	deferredIdx := a.scratch.deferredIdx[:0]
	a.splitValid(p, g.keys, &valid, &deferredIdx, &foreign)
	a.scratch.valid, a.scratch.foreign, a.scratch.deferredIdx = valid, foreign, deferredIdx

	if len(foreign) > 0 {
		// Invalid commands (stale routing): re-route to the new owner.
		a.machine.AdvanceNS(a.Core, forwardNSPerKey*float64(len(foreign)))
		a.Outbox().RouteLookupDeadline(k.obj, foreign, k.replyTo, k.tag, g.deadline)
		a.forwards.Add(int64(len(foreign)))
	}
	if len(deferredIdx) > 0 {
		// Deferred commands outlive the loop iteration: clone, never alias
		// group batches or scratch.
		keys := make([]uint64, len(deferredIdx)) //eris:allowalloc deferred commands outlive the iteration and must own their keys; deferral is a transfer-window edge case
		for i, idx := range deferredIdx {
			keys[i] = g.keys[idx]
		}
		a.deferred = append(a.deferred, command.Command{
			Op: command.OpLookup, Object: uint32(k.obj), Source: k.source,
			ReplyTo: k.replyTo, Tag: k.tag, Keys: keys, Deadline: g.deadline,
		})
		a.deferredCnt.Add(int64(len(keys)))
	}
	if len(valid) == 0 {
		return
	}

	if cap(a.scratch.values) < len(valid) {
		a.scratch.values = make([]uint64, len(valid)) //eris:allowalloc amortized scratch growth, reused across iterations; pinned by AllocsPerRun benchmarks
		a.scratch.found = make([]bool, len(valid))    //eris:allowalloc grown with values above
	}
	values := a.scratch.values[:len(valid)]
	found := a.scratch.found[:len(valid)]
	p.Tree.LookupBatch(a.Core, valid, values, found) //eris:allowalloc index kernel entry; node growth inside the tree is slab-amortized
	p.accesses.Add(int64(len(valid)))
	a.countOps(int64(len(valid)))

	if k.replyTo == command.NoReply {
		return
	}
	kvs := a.scratch.replyKVs[:0]
	for i := range valid {
		if found[i] {
			kvs = append(kvs, prefixtree.KV{Key: valid[i], Value: values[i]})
		}
	}
	a.scratch.replyKVs = kvs
	a.reply(k, kvs, len(valid))
}

// processDeletes mirrors processLookups: split by validity, forward stale
// keys, defer keys whose range is in transit, delete the rest.
//
//eris:hotpath
func (a *AEU) processDeletes(k groupKey, g *group, p *Partition) {
	valid := a.scratch.valid[:0]
	foreign := a.scratch.foreign[:0]
	deferredIdx := a.scratch.deferredIdx[:0]
	a.splitValid(p, g.keys, &valid, &deferredIdx, &foreign)
	a.scratch.valid, a.scratch.foreign, a.scratch.deferredIdx = valid, foreign, deferredIdx

	if len(foreign) > 0 {
		a.machine.AdvanceNS(a.Core, forwardNSPerKey*float64(len(foreign)))
		a.Outbox().RouteDeleteDeadline(k.obj, foreign, k.replyTo, k.tag, g.deadline)
		a.forwards.Add(int64(len(foreign)))
	}
	if len(deferredIdx) > 0 {
		keys := make([]uint64, len(deferredIdx)) //eris:allowalloc deferred commands outlive the iteration and must own their keys; deferral is a transfer-window edge case
		for i, idx := range deferredIdx {
			keys[i] = g.keys[idx]
		}
		a.deferred = append(a.deferred, command.Command{
			Op: command.OpDelete, Object: uint32(k.obj), Source: k.source,
			ReplyTo: k.replyTo, Tag: k.tag, Keys: keys, Deadline: g.deadline,
		})
		a.deferredCnt.Add(int64(len(keys)))
	}
	if len(valid) == 0 {
		return
	}
	p.Tree.DeleteBatch(a.Core, valid) //eris:allowalloc index kernel entry; node reclamation inside the tree is slab-amortized
	p.accesses.Add(int64(len(valid)))
	a.countOps(int64(len(valid)))
	var seq uint64
	if a.wal != nil {
		seq = a.wal.AppendDelete(uint32(k.obj), valid)
	}
	if k.replyTo != command.NoReply && !a.parkAck(k, len(valid), seq) {
		a.reply(k, nil, len(valid)) // delete ack without payload
	}
}

//eris:hotpath
func (a *AEU) processUpserts(k groupKey, g *group, p *Partition) {
	validKVs := a.scratch.validKVs[:0]
	foreign := a.scratch.foreignKVs[:0]
	// pend feeds a deferred command that outlives the iteration, so it is
	// freshly allocated (rare: only during an inbound transfer).
	var pend []prefixtree.KV
	for _, kv := range g.kvs {
		switch {
		case kv.Key < p.Lo || kv.Key > p.Hi:
			foreign = append(foreign, kv)
		case a.inPendingRange(kv.Key) || a.inRecovering(p.Object, kv.Key):
			pend = append(pend, kv)
		default:
			validKVs = append(validKVs, kv)
		}
	}
	a.scratch.validKVs, a.scratch.foreignKVs = validKVs, foreign
	if len(foreign) > 0 {
		a.machine.AdvanceNS(a.Core, forwardNSPerKey*float64(len(foreign)))
		a.Outbox().RouteUpsertDeadline(k.obj, foreign, k.replyTo, k.tag, g.deadline)
		a.forwards.Add(int64(len(foreign)))
	}
	if len(pend) > 0 {
		a.deferred = append(a.deferred, command.Command{
			Op: command.OpUpsert, Object: uint32(k.obj), Source: k.source,
			ReplyTo: k.replyTo, Tag: k.tag, KVs: pend, Deadline: g.deadline,
		})
		a.deferredCnt.Add(int64(len(pend)))
	}
	if len(validKVs) == 0 {
		return
	}
	p.Tree.UpsertBatch(a.Core, validKVs) //eris:allowalloc index kernel entry; node growth inside the tree is slab-amortized
	p.accesses.Add(int64(len(validKVs)))
	a.countOps(int64(len(validKVs)))
	var seq uint64
	if a.wal != nil {
		seq = a.wal.AppendUpsert(uint32(k.obj), validKVs)
	}
	if k.replyTo != command.NoReply && !a.parkAck(k, len(validKVs), seq) {
		a.reply(k, nil, len(validKVs)) // upsert ack without payload
	}
}

// processScans executes all scan commands of one object with a single data
// pass (scan sharing); isolation comes from the column's MVCC snapshot.
//
//eris:hotpath
func (a *AEU) processScans(g *group, p *Partition) {
	a.machine.AdvanceNS(a.Core, scanShareNSPerCmd*float64(len(g.scans)))
	if p.Kind == routing.SizePartitioned {
		a.processColumnScans(g, p)
	} else {
		a.processIndexScans(g, p)
	}
}

// processColumnScans runs one morsel-driven shared pass over the column:
// SharedScan walks the blocks once and feeds every attached scan's
// aggregate, pruning per scan with the value bounds the fan-out carried on
// the command (Keys = [lo, hi]) intersected with the predicate's own
// bounds — the intersection keeps a bad peer's bounds from widening what a
// zone map may accept wholesale.
//
//eris:hotpath
func (a *AEU) processColumnScans(g *group, p *Partition) {
	snapshot := p.Col.Snapshot()
	if cap(a.scratch.scanAggs) < len(g.scans) {
		a.scratch.scanAggs = make([]colstore.ScanAgg, len(g.scans))   //eris:allowalloc amortized scratch growth, reused across iterations
		a.scratch.scanSpecs = make([]colstore.ScanSpec, len(g.scans)) //eris:allowalloc grown with scanAggs above
	}
	aggs := a.scratch.scanAggs[:len(g.scans)]
	specs := a.scratch.scanSpecs[:len(g.scans)]
	clear(aggs)
	for i := range g.scans {
		c := &g.scans[i]
		specs[i] = colstore.SpecOf(c.Pred)
		if len(c.Keys) == 2 {
			if c.Keys[0] > specs[i].Lo {
				specs[i].Lo = c.Keys[0]
			}
			if c.Keys[1] < specs[i].Hi {
				specs[i].Hi = c.Keys[1]
			}
		}
	}
	stats := p.Col.SharedScan(a.Core, snapshot, specs, aggs, &a.scratch.scanScratch)
	a.colBlocksScanned.Add(stats.BlocksScanned)
	a.colBlocksPruned.Add(stats.BlocksPruned)
	a.colBlocksFullHit.Add(stats.BlocksFullHit)
	p.accesses.Add(int64(len(g.scans)))
	a.countOps(int64(len(g.scans)))
	for i, c := range g.scans {
		if c.ReplyTo == command.NoReply {
			continue
		}
		kvs := append(a.scratch.replyKVs[:0], prefixtree.KV{Key: aggs[i].Matched, Value: aggs[i].Sum})
		a.scratch.replyKVs = kvs
		a.reply(groupKey{obj: routing.ObjectID(c.Object), replyTo: c.ReplyTo, tag: c.Tag, source: c.Source}, kvs, 1)
	}
}

// CountColScanBlocks records block outcomes of a column scan executed
// outside the command loop (e.g. a generator scanning its own partition),
// so the colscan.* counters reflect every pass.
//
//eris:hotpath
func (a *AEU) CountColScanBlocks(scanned, pruned, fullHit int64) {
	a.colBlocksScanned.Add(scanned)
	a.colBlocksPruned.Add(pruned)
	a.colBlocksFullHit.Add(fullHit)
}

//eris:hotpath
func (a *AEU) processIndexScans(g *group, p *Partition) {
	for _, c := range g.scans {
		lo, hi := p.Lo, p.Hi
		if len(c.Keys) == 2 {
			if c.Keys[0] > lo {
				lo = c.Keys[0]
			}
			if c.Keys[1] < hi {
				hi = c.Keys[1]
			}
		}
		if lo <= hi && (a.overlapsPending(lo, hi) || a.overlapsRecovering(p.Object, lo, hi)) {
			// Part of the effective range was granted to this AEU but its
			// tuples are still in transit (or still being repaired after a
			// lost balance command); answering now would silently miss
			// them. Defer the scan until the data lands.
			a.deferred = append(a.deferred, c.Clone()) //eris:allowalloc deferred scan must own its key slice (retention contract); transfer-window edge case
			a.deferredCnt.Add(1)
			continue
		}
		if c.Limit > 0 {
			// Rows mode: materialize up to Limit matching pairs and route
			// them back as an intermediate result.
			rows := a.scratch.replyKVs[:0]
			if lo <= hi {
				p.Tree.Scan(a.Core, lo, hi, func(key, value uint64) bool { //eris:allowalloc synchronous non-escaping visitor; index scan entry point
					if c.Pred.Matches(value) {
						rows = append(rows, prefixtree.KV{Key: key, Value: value})
					}
					return len(rows) < int(c.Limit)
				})
			}
			a.scratch.replyKVs = rows
			p.accesses.Add(1)
			a.countOps(1)
			if c.ReplyTo != command.NoReply {
				a.reply(groupKey{obj: routing.ObjectID(c.Object), replyTo: c.ReplyTo, tag: c.Tag, source: c.Source}, rows, 1)
			}
			continue
		}
		var matched, sum uint64
		if lo <= hi {
			p.Tree.Scan(a.Core, lo, hi, func(key, value uint64) bool { //eris:allowalloc synchronous non-escaping visitor; index scan entry point
				if c.Pred.Matches(value) {
					matched++
					sum += value
				}
				return true
			})
		}
		p.accesses.Add(1)
		a.countOps(1)
		if c.ReplyTo != command.NoReply {
			// Aggregate replies carry a coverage interval after the
			// {matched, sum} pair: the key range this answer actually
			// inspected. The issuer unions the intervals of all replies and
			// retries the scan when they leave a gap in (or overlap) the
			// requested range — the exactness handshake that makes range
			// scans correct while the balancer is moving partition bounds.
			kvs := append(a.scratch.replyKVs[:0], prefixtree.KV{Key: matched, Value: sum})
			if lo <= hi {
				kvs = append(kvs, prefixtree.KV{Key: lo, Value: hi})
			}
			a.scratch.replyKVs = kvs
			a.reply(groupKey{obj: routing.ObjectID(c.Object), replyTo: c.ReplyTo, tag: c.Tag, source: c.Source}, kvs, 1)
		}
	}
}

// forwardGroup re-routes a whole group for an object this AEU no longer
// holds.
//
//eris:hotpath
func (a *AEU) forwardGroup(k groupKey, g *group) {
	switch k.op {
	case command.OpLookup:
		if len(g.keys) > 0 {
			a.Outbox().RouteLookupDeadline(k.obj, g.keys, k.replyTo, k.tag, g.deadline)
			a.forwards.Add(int64(len(g.keys)))
		}
	case command.OpUpsert:
		if len(g.kvs) > 0 {
			a.Outbox().RouteUpsertDeadline(k.obj, g.kvs, k.replyTo, k.tag, g.deadline)
			a.forwards.Add(int64(len(g.kvs)))
		}
	case command.OpDelete:
		if len(g.keys) > 0 {
			a.Outbox().RouteDeleteDeadline(k.obj, g.keys, k.replyTo, k.tag, g.deadline)
			a.forwards.Add(int64(len(g.keys)))
		}
	case command.OpScan:
		// A scan reaching a non-holder saw a stale multicast bitmap; the
		// data lives elsewhere. Answer with an empty result carrying no
		// coverage so the issuer detects the gap and retries, instead of
		// waiting for a reply that will never come.
		for _, c := range g.scans {
			if c.ReplyTo == command.NoReply {
				continue
			}
			rk := groupKey{obj: routing.ObjectID(c.Object), replyTo: c.ReplyTo, tag: c.Tag, source: c.Source}
			if c.Limit > 0 {
				a.reply(rk, nil, 1)
			} else {
				kvs := append(a.scratch.replyKVs[:0], prefixtree.KV{})
				a.scratch.replyKVs = kvs
				a.reply(rk, kvs, 1)
			}
		}
		a.forwards.Add(int64(len(g.scans)))
	}
}

// reply routes a result to the requester or the engine's client callback.
// answered is the number of request keys (or, for scans, scan commands)
// this reply settles — it can exceed len(kvs) for lookups that missed and
// upsert/delete acks, which carry no payload.
//
//eris:hotpath
func (a *AEU) reply(k groupKey, kvs []prefixtree.KV, answered int) {
	if k.replyTo == ClientReply {
		if a.onClientResult != nil {
			a.onClientResult(k.tag, a.ID, kvs, answered, nil)
		}
		return
	}
	cmd := command.Command{
		Op: command.OpResult, Object: uint32(k.obj), Source: a.ID,
		ReplyTo: command.NoReply, Tag: k.tag, KVs: kvs,
	}
	a.Outbox().Send(uint32(k.replyTo), &cmd)
}

// replyErr reports a definitive failure to the requester: the engine's
// client callback hears the error directly; an AEU requester gets an
// OpError whose Tag carries the correlation id (handleError treats an
// unknown epoch as a no-op, so misdirected ones are harmless).
func (a *AEU) replyErr(k groupKey, answered int, err error) {
	if k.replyTo == ClientReply {
		if a.onClientResult != nil {
			a.onClientResult(k.tag, a.ID, nil, answered, err)
		}
		return
	}
	if k.replyTo == command.NoReply {
		return
	}
	cmd := command.Command{
		Op: command.OpError, Object: uint32(k.obj), Source: a.ID,
		ReplyTo: command.NoReply, Tag: k.tag,
	}
	a.Outbox().Send(uint32(k.replyTo), &cmd)
}

// handleResult surfaces routed results to the result callback; AEU-level
// query processing (joins etc.) sits above the storage engine, so results
// arriving here are for the engine client.
//
//eris:hotpath
func (a *AEU) handleResult(c command.Command) {
	if a.onClientResult != nil {
		a.onClientResult(c.Tag, c.Source, c.KVs, len(c.KVs), nil)
	}
}
