package aeu

import (
	"sync"
	"testing"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// TestColumnScanDuringBalance interleaves multicast predicate scans with
// size-balancing transfers that move column blocks between the two holders:
// every scan's cross-AEU total must stay exact no matter how the tuples are
// currently split, and the zone-map block counters must add up to the
// blocks each holder walked.
func TestColumnScanDuringBalance(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	const col routing.ObjectID = 2
	p0, err := h.aeus[0].AddColumnPartition(col, colstore.Config{ChunkEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.aeus[1].AddColumnPartition(col, colstore.Config{ChunkEntries: 64}); err != nil {
		t.Fatal(err)
	}
	if err := h.router.RegisterSize(col, []uint32{0, 1}); err != nil {
		t.Fatal(err)
	}
	const tuples = 4000
	vals := make([]uint64, tuples)
	for i := range vals {
		vals[i] = uint64(i)
	}
	p0.Col.Append(h.aeus[0].Core, vals)
	// Tombstone the value span [3600,3799] before any transfer: the moves
	// below carry these blocks to AEU 1, which must receive tight zone
	// maps (recomputed on detach), not the stale widen-only supersets.
	const deadLo, deadHi = 3600, 3799
	for pos := int64(deadLo); pos <= int64(deadHi); pos++ {
		if !p0.Col.Delete(h.aeus[0].Core, pos) {
			t.Fatalf("delete %d failed", pos)
		}
	}
	const dead = deadHi - deadLo + 1

	type result struct {
		matched uint64
		replies int
	}
	var mu sync.Mutex
	got := map[uint64]*result{}
	for _, a := range h.aeus {
		a.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
			mu.Lock()
			defer mu.Unlock()
			r := got[tag]
			if r == nil {
				r = &result{}
				got[tag] = r
			}
			if len(kvs) > 0 {
				r.matched += kvs[0].Key
			}
			r.replies++
		})
	}

	preds := []struct {
		pred colstore.Predicate
		want uint64
	}{
		{colstore.Predicate{Op: colstore.Less, Operand: 1000}, 1000},
		{colstore.Predicate{Op: colstore.Between, Operand: 1500, High: 2500}, 1001},
		{colstore.Predicate{Op: colstore.Greater, Operand: 3989}, 10},
		{colstore.Predicate{Op: colstore.Between, Operand: deadLo, High: deadHi}, 0},
	}
	scanRound := func(round int) {
		ob := h.aeus[1].Outbox()
		base := uint64(round * len(preds))
		for i, pc := range preds {
			ob.RouteScan(col, pc.pred, ClientReply, base+uint64(i)+1)
		}
		ob.Flush()
		h.step(0)
		h.step(1)
		mu.Lock()
		defer mu.Unlock()
		for i, pc := range preds {
			tag := base + uint64(i) + 1
			r := got[tag]
			if r == nil || r.replies != 2 {
				t.Fatalf("round %d scan %d: replies %+v, want 2 holders", round, i, r)
			}
			if r.matched != pc.want {
				t.Fatalf("round %d scan %d (%+v): matched %d, want %d", round, i, pc.pred, r.matched, pc.want)
			}
		}
	}

	// Move 700 tuples from AEU 0 to AEU 1 between scan rounds, in uneven
	// slices so the transfers split blocks as well as moving whole ones.
	moves := []int64{100, 250, 350}
	scanRound(0)
	for i, n := range moves {
		h.aeus[1].handleBalance(command.Command{
			Op: command.OpBalance, Object: uint32(col), Source: 1,
			ReplyTo: command.NoReply,
			Balance: &command.Balance{
				Epoch:   uint64(i + 1),
				Fetches: []command.Fetch{{From: 0, Tuples: n}},
			},
		})
		h.aeus[1].Outbox().Flush()
		h.step(0) // serve the fetch, ship the detached run
		h.step(1) // link it into the receiving partition
		scanRound(i + 1)
	}
	moved := int64(0)
	for _, n := range moves {
		moved += n
	}
	// Moves count positions; the whole tombstoned span rode along, so the
	// receiver's live count is short by exactly those tombstones.
	if g0, g1 := h.aeus[0].Partition(col).SizeTuples(), h.aeus[1].Partition(col).SizeTuples(); g0 != tuples-moved || g1 != moved-dead {
		t.Fatalf("tuple split = (%d, %d), want (%d, %d)", g0, g1, tuples-moved, moved-dead)
	}

	// The zone-map counters saw every pass: both holders walked blocks for
	// 4 rounds x 4 scans.
	for _, a := range h.aeus {
		s := a.colBlocksScanned.Load() + a.colBlocksPruned.Load() + a.colBlocksFullHit.Load()
		if s == 0 {
			t.Fatalf("aeu %d recorded no colscan block outcomes", a.ID)
		}
	}

	// With the transfers done, a scan over the tombstoned span must be
	// answered entirely from zone maps: every migrated block was handed
	// over with a recomputed (tight) summary, so no holder evaluates a
	// single block (the bug: linked blocks kept their stale widen-only
	// maps and were re-evaluated on every such scan, forever).
	preScanned := make([]int64, len(h.aeus))
	prePruned := make([]int64, len(h.aeus))
	for i, a := range h.aeus {
		preScanned[i] = a.colBlocksScanned.Load()
		prePruned[i] = a.colBlocksPruned.Load()
	}
	ob := h.aeus[1].Outbox()
	const deadTag = 99
	ob.RouteScan(col, colstore.Predicate{Op: colstore.Between, Operand: deadLo, High: deadHi}, ClientReply, deadTag)
	ob.Flush()
	h.step(0)
	h.step(1)
	mu.Lock()
	if r := got[deadTag]; r == nil || r.replies != 2 || r.matched != 0 {
		mu.Unlock()
		t.Fatalf("dead-span scan result = %+v, want 2 empty holder replies", got[deadTag])
	}
	mu.Unlock()
	var scannedDelta, prunedDelta int64
	for i, a := range h.aeus {
		scannedDelta += a.colBlocksScanned.Load() - preScanned[i]
		prunedDelta += a.colBlocksPruned.Load() - prePruned[i]
	}
	if scannedDelta != 0 {
		t.Fatalf("dead-span scan evaluated %d blocks; stale zone maps survived the transfer", scannedDelta)
	}
	if prunedDelta == 0 {
		t.Fatal("dead-span scan pruned no blocks; the assertion lost its subject")
	}
}
