package aeu

import (
	"time"

	"eris/internal/durable"
	"eris/internal/prefixtree"
	"eris/internal/routing"
)

// flushAckTimeout bounds the loop-exit wait for the final covering fsync.
const flushAckTimeout = 2 * time.Second

// parkedAck is a client write ack held back until the WAL fsync covering
// its records (SyncWrites): the write is applied and logged, but the
// client must not hear success before the log reaches disk.
type parkedAck struct {
	k        groupKey
	answered int
	seq      uint64
}

// SetWAL attaches the AEU's write-ahead log; must be called before Run.
func (a *AEU) SetWAL(l *durable.Log) {
	a.wal = l
	a.walSync = l.Sync()
}

// CkptRequest asks the AEU loop to cut a checkpoint image at its next
// iteration boundary — between command groups, so the image is a
// consistent partition snapshot. Done closes once Image is filled.
type CkptRequest struct {
	Image durable.AEUImage
	Done  chan struct{}
}

// RequestCheckpoint hands the running loop a checkpoint request. Only the
// engine's checkpoint path calls it, one request at a time.
func (a *AEU) RequestCheckpoint() *CkptRequest {
	req := &CkptRequest{Done: make(chan struct{})}
	a.ckptReq.Store(req)
	return req
}

// serveCheckpoint answers a pending checkpoint request from inside the
// loop; reports whether one was served.
func (a *AEU) serveCheckpoint() bool {
	req := a.ckptReq.Swap(nil)
	if req == nil {
		return false
	}
	req.Image = a.SnapshotDurable()
	close(req.Done)
	return true
}

// SnapshotDurable cuts this AEU's checkpoint image: it rotates the WAL —
// sealing the generation that holds exactly the records at or below the
// returned stamp — then snapshots every partition. Called from the loop
// (via RequestCheckpoint) while running, or directly when the engine is
// quiescent; never concurrently with the loop.
func (a *AEU) SnapshotDurable() durable.AEUImage {
	var img durable.AEUImage
	var published uint64
	if a.wal != nil {
		img.Stamp, img.Gen = a.wal.Rotate()
		published = a.wal.PublishedStamp()
	}
	for _, p := range a.partList {
		switch p.Kind {
		case routing.RangePartitioned:
			t := durable.TreeImage{Obj: uint32(p.Object)}
			p.Tree.Scan(a.Core, 0, ^uint64(0), func(k, v uint64) bool {
				t.KVs = append(t.KVs, prefixtree.KV{Key: k, Value: v})
				return true
			})
			// Every retained link goes into the image, but an entry is
			// retired only once a *published* checkpoint covers its link
			// record: this image may yet be discarded (transfer overlap,
			// image timeout, checkpoint write error), and provenance
			// cleared on a discarded attempt would be lost to the retry.
			kept := p.links[:0]
			for _, le := range p.links {
				t.Links = append(t.Links, le.lr)
				if le.seq > published {
					kept = append(kept, le)
				}
			}
			p.links = kept
			img.Trees = append(img.Trees, t)
		case routing.SizePartitioned:
			img.Cols = append(img.Cols, durable.ColImage{
				Obj:    uint32(p.Object),
				Values: p.Col.Values(a.Core, p.Col.Snapshot()),
			})
		}
	}
	return img
}

// parkAck defers a client ack until seq is durable. It reports false when
// the ack should be sent immediately instead (no WAL, SyncWrites off, or
// nothing was logged).
//
//eris:hotpath
func (a *AEU) parkAck(k groupKey, answered int, seq uint64) bool {
	if !a.walSync || seq == 0 {
		return false
	}
	a.pendingAcks = append(a.pendingAcks, parkedAck{k: k, answered: answered, seq: seq})
	return true
}

// releaseDurableAcks answers every parked ack covered by the WAL's
// published durable sequence number; reports whether any released.
func (a *AEU) releaseDurableAcks() bool {
	if len(a.pendingAcks) == 0 {
		return false
	}
	covered := a.wal.DurableSeq()
	kept := a.pendingAcks[:0]
	released := false
	for _, pa := range a.pendingAcks {
		if pa.seq <= covered {
			a.reply(pa.k, nil, pa.answered)
			released = true
		} else {
			kept = append(kept, pa)
		}
	}
	a.pendingAcks = kept
	return released
}

// flushDurableAcks releases the remaining parked acks at loop exit after a
// clean stop: the writes are applied and logged, so waiting briefly for
// the covering fsync and acking is strictly more truthful than dropping
// them. A crash-stopped engine never gets here (the manager is already
// crashed and Flush fails), leaving the acks unanswered — exactly the
// ambiguity a real crash produces.
func (a *AEU) flushDurableAcks() {
	if len(a.pendingAcks) == 0 || a.wal == nil {
		return
	}
	if err := a.wal.Flush(flushAckTimeout); err != nil {
		a.pendingAcks = a.pendingAcks[:0]
		return
	}
	a.releaseDurableAcks()
	a.pendingAcks = a.pendingAcks[:0]
}
