package aeu

// Tests for the AEU side of the zero-allocation hot path: deferred
// commands must be clones (never aliases of reused scratch or zero-copy
// views), retained scan bounds must be cloned out of the caller's buffer,
// and the steady-state serve path must not allocate.

import (
	"testing"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// TestDeferredUpsertClonedFromScratch defers an upsert for a pending
// range, then stomps the classification and processing scratch with an
// unrelated large group; the deferred payload must survive untouched and
// apply correctly once the transfer lands.
func TestDeferredUpsertClonedFromScratch(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a1 := h.aeus[1]
	// AEU 1 is granted [400,499]; the data has not arrived yet.
	a1.handleBalance(command.Command{
		Op: command.OpBalance, Object: uint32(testObj),
		Balance: &command.Balance{
			Epoch: 3, NewLo: 400, NewHi: 999,
			Fetches: []command.Fetch{{From: 0, Lo: 400, Hi: 499}},
		},
	})
	pendKVs := []prefixtree.KV{{Key: 450, Value: 7}, {Key: 460, Value: 8}}
	a1.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, KVs: pendKVs,
	})
	a1.processGroups()
	if got := len(a1.deferred); got != 1 {
		t.Fatalf("deferred commands = %d, want 1", got)
	}
	// Stomp the scratch: a big in-range upsert group reuses the same
	// validKVs/group buffers the deferred command must not alias.
	stomp := make([]prefixtree.KV, 64)
	for i := range stomp {
		stomp[i] = prefixtree.KV{Key: 500 + uint64(i), Value: 0xdead}
	}
	a1.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, KVs: stomp,
	})
	a1.processGroups()
	def := a1.deferred[0]
	if len(def.KVs) != 2 || def.KVs[0] != pendKVs[0] || def.KVs[1] != pendKVs[1] {
		t.Fatalf("deferred KVs corrupted by scratch reuse: %+v", def.KVs)
	}
	// Let the transfer land and the deferred upsert apply.
	a1.Outbox().Flush()
	h.step(0)
	h.step(1)
	h.step(1)
	if v, ok := a1.Partition(testObj).Tree.Lookup(a1.Core, 450, 1); !ok || v != 7 {
		t.Fatalf("deferred upsert lost: (%d,%v)", v, ok)
	}
	if v, ok := a1.Partition(testObj).Tree.Lookup(a1.Core, 460, 1); !ok || v != 8 {
		t.Fatalf("deferred upsert lost: (%d,%v)", v, ok)
	}
}

// TestDeferredLookupClonedFromGroup is the lookup twin: the deferred key
// list must not alias the recycled group batch.
func TestDeferredLookupClonedFromGroup(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a1 := h.aeus[1]
	a1.handleBalance(command.Command{
		Op: command.OpBalance, Object: uint32(testObj),
		Balance: &command.Balance{
			Epoch: 3, NewLo: 400, NewHi: 999,
			Fetches: []command.Fetch{{From: 0, Lo: 400, Hi: 499}},
		},
	})
	a1.classify(command.Command{
		Op: command.OpLookup, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, Keys: []uint64{450, 460},
	})
	a1.processGroups()
	// Recycled group batches now serve an unrelated lookup group.
	stomp := make([]uint64, 64)
	for i := range stomp {
		stomp[i] = 500 + uint64(i)
	}
	a1.classify(command.Command{
		Op: command.OpLookup, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, Keys: stomp,
	})
	a1.processGroups()
	if got := len(a1.deferred); got != 1 {
		t.Fatalf("deferred commands = %d, want 1", got)
	}
	def := a1.deferred[0]
	if len(def.Keys) != 2 || def.Keys[0] != 450 || def.Keys[1] != 460 {
		t.Fatalf("deferred keys corrupted by group recycling: %v", def.Keys)
	}
}

// TestScanBoundsClonedFromCallerBuffer retains a range scan whose bounds
// arrive in a caller-owned buffer (as zero-copy decode hands them out),
// mutates the buffer before processing, and asserts the scan still uses
// the original bounds.
func TestScanBoundsClonedFromCallerBuffer(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a0 := h.aeus[0]
	p := a0.Partition(testObj)
	for k := p.Lo; k <= p.Hi; k++ {
		p.Tree.Upsert(a0.Core, k, k, 1)
	}
	var got []prefixtree.KV
	a0.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
		got = append(got, kvs...)
	})
	bounds := []uint64{410, 420}
	a0.classify(command.Command{
		Op: command.OpScan, Object: uint32(testObj), Source: 0,
		ReplyTo: ClientReply, Tag: 1, Pred: colstore.Predicate{Op: colstore.All},
		Keys: bounds,
	})
	// The decoder reuses its buffer for the next command; simulate that by
	// clobbering the caller's slice before the group is processed.
	bounds[0], bounds[1] = 999, 999
	a0.processGroups()
	if len(got) != 2 { // {matched, sum} plus the coverage interval
		t.Fatalf("results = %+v", got)
	}
	if got[0].Key != 11 { // matched count over [410,420]
		t.Fatalf("scan matched %d keys, want 11 (bounds not cloned?)", got[0].Key)
	}
	if got[1].Key != 410 || got[1].Value != 420 {
		t.Fatalf("coverage = [%d, %d], want [410, 420]", got[1].Key, got[1].Value)
	}
}

// TestServePathSteadyStateAllocs is the allocation regression guard for
// the drain → classify → process path: after warm-up, serving a coalesced
// lookup group, an upsert group and a shared column-scan group must not
// allocate (the per-scan aggregate slots live in per-AEU scratch).
func TestServePathSteadyStateAllocs(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1<<14)
	a0 := h.aeus[0]
	const colObj routing.ObjectID = 2
	pc, err := a0.AddColumnPartition(colObj, colstore.Config{ChunkEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.router.RegisterSize(colObj, []uint32{0}); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 512)
	for i := range vals {
		vals[i] = uint64(i)
	}
	pc.Col.Append(a0.Core, vals)
	// One tombstone forces the shared pass through the bitmap kernel's
	// tombstone-masking branch as well (and allocates the del bitmap now,
	// before the steady-state measurement).
	pc.Col.Delete(a0.Core, 130)
	src := h.aeus[1].Outbox()
	keys := make([]uint64, 64)
	kvs := make([]prefixtree.KV, 64)
	for i := range keys {
		keys[i] = uint64(i*61) % (1 << 13) // all owned by AEU 0
		kvs[i] = prefixtree.KV{Key: keys[i], Value: uint64(i)}
	}
	run := func() {
		src.RouteLookup(testObj, keys, command.NoReply, 0)
		src.RouteUpsert(testObj, kvs, command.NoReply, 0)
		// Shared pass covering every filter kernel: the selection-bitmap
		// path, zone-map pruning and full-accept all run per cycle.
		src.RouteScan(colObj, colstore.Predicate{Op: colstore.Less, Operand: 100}, command.NoReply, 0)
		src.RouteScan(colObj, colstore.Predicate{Op: colstore.Greater, Operand: 500}, command.NoReply, 0)
		src.RouteScan(colObj, colstore.Predicate{Op: colstore.Equal, Operand: 300}, command.NoReply, 0)
		src.RouteScan(colObj, colstore.Predicate{Op: colstore.Between, Operand: 128, High: 400}, command.NoReply, 0)
		src.RouteScan(colObj, colstore.Predicate{Op: colstore.All}, command.NoReply, 0)
		src.Flush()
		h.router.Drain(a0.ID, a0.classify)
		a0.processGroups()
	}
	// Warm-up must wrap the full multicast ring: each of its 1024 slots
	// allocates its encode buffer on first use, and scans advance the ring
	// by one slot per routed command.
	for i := 0; i < 300; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Errorf("serve path allocates %.1f times per cycle, want 0", avg)
	}
}
