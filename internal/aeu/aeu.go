// Package aeu implements ERIS's Autonomous Execution Units (Section 3.1,
// Figure 3). Each AEU is pinned to one core of the simulated machine and
// exclusively owns one partition per data object, so partition data needs
// no latches. The AEU loop mirrors the paper: (1) drain the incoming data
// command buffer and group commands by data object and command type —
// grouping coalesces scans into a single shared pass and turns lookup and
// upsert streams into latency-hiding batches; (2) process the groups;
// (3) handle pending balancing and transfer commands, growing or shrinking
// the local partitions; then generate new commands (the benchmark workload
// hook), flush the outgoing buffers and start over.
package aeu

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/durable"
	"eris/internal/faults"
	"eris/internal/mem"
	"eris/internal/metrics"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

// ClientReply in a command's ReplyTo routes results to the engine's client
// callback instead of another AEU.
const ClientReply int32 = -2

// ErrExpired is the error reported for a command whose deadline passed
// while it was parked in the deferred queue (waiting out a partition
// transfer) — the issuer gets a definitive failure instead of a command
// that retries forever.
var ErrExpired = errors.New("aeu: command deadline expired")

// Config tunes AEU behaviour.
type Config struct {
	// IdleLoopNS is the virtual cost of one empty loop iteration (buffer
	// polling); it keeps idle cores' clocks advancing. Default 100.
	IdleLoopNS float64
	// SkewWindowNS bounds how far an AEU's virtual clock may run ahead of
	// the slowest core before it yields. Default 20 ms.
	SkewWindowNS float64
	// SkewCheckEvery controls how often (in loop iterations) the skew
	// check runs. Default 32.
	SkewCheckEvery int
	// NoCoalesce disables command grouping: every drained command is
	// processed on its own (the coalescing ablation benchmark).
	NoCoalesce bool
}

func (c Config) withDefaults() Config {
	if c.IdleLoopNS == 0 {
		c.IdleLoopNS = 100
	}
	if c.SkewWindowNS == 0 {
		c.SkewWindowNS = 20e6
	}
	if c.SkewCheckEvery == 0 {
		c.SkewCheckEvery = 32
	}
	return c
}

// Partition is one AEU's share of a data object.
type Partition struct {
	Object routing.ObjectID
	Kind   routing.TableKind
	Tree   *prefixtree.Tree // range-partitioned index
	Col    *colstore.Column // size-partitioned column

	// Lo/Hi are the inclusive key bounds this AEU is responsible for
	// (range objects). Only the owning AEU writes them.
	Lo, Hi uint64

	// Bounds reconciliation state (owning AEU only): a mismatch between
	// Lo/Hi and the published routing table is adopted only after it has
	// been observed by two consecutive reconcile sweeps, so the normal
	// window between a routing-table update and the matching OpBalance
	// delivery is never mistaken for a lost balance command.
	reconLo, reconHi uint64
	reconArmed       bool

	// Bounds before the last OpBalance, keyed by its epoch. A fetch tagged
	// with the same epoch is judged authoritative against these: in a normal
	// cycle the source's own shrink lands before the targets' fetches, so
	// the current bounds no longer cover the granted ranges even though all
	// of their data is still here. prevHoles are the parts of those bounds
	// whose data this AEU never actually had (ranges still recovering when
	// the balance arrived) — a claim over them would just propagate the gap
	// to the next owner as a trusted empty transfer.
	prevLo, prevHi, prevEpoch uint64
	prevHoles                 []keyRange

	// Column-transfer accounting (size objects), read by client scans to
	// detect rebalancing overlapping a fan-out. colXferGen advances on
	// every tail detach and every linked payload; colInFlight counts
	// payloads detached here that have not linked anywhere yet. A scan
	// bracketed by two equal generation readings with zero in flight saw
	// every tuple exactly once.
	colXferGen  atomic.Int64
	colInFlight atomic.Int64

	// Range-transfer accounting (range objects), the same scheme for the
	// checkpoint bracket: a checkpoint whose image collection two equal
	// generation sums with zero in flight surround saw no range payload
	// mid-move, so every moved range is fully inside exactly one AEU's
	// image — a source image cut after its handoff (pruning the handoff's
	// generation) can never be published while the payload is still in
	// flight to a target whose image predates the link.
	rngXferGen  atomic.Int64
	rngInFlight atomic.Int64

	// Monitoring counters sampled by the load balancer.
	accesses  atomic.Int64 // keys/commands touched in the current window
	cmdTimePS atomic.Int64 // processing time in the current window
	cmdCount  atomic.Int64

	// links records transfers applied into this partition (range objects,
	// WAL attached only). Persisted with every checkpoint image so
	// recovery can tell a checkpointed link from one that never happened.
	// An entry is dropped only once a *published* checkpoint's stamp
	// covers its link record — a snapshot that is later discarded (column
	// or range transfer overlapped the collection, image timeout, write
	// error) must not lose provenance the next attempt still needs.
	links []linkEntry
}

// RecordAccess bumps the partition's access-frequency counter; the AEU's
// processing stages call it, and tests use it to shape monitor input.
func (p *Partition) RecordAccess() { p.accesses.Add(1) }

// TakeSample atomically reads and resets the monitoring window, returning
// (accesses, mean command time in ps).
func (p *Partition) TakeSample() (int64, float64) {
	acc := p.accesses.Swap(0)
	t := p.cmdTimePS.Swap(0)
	n := p.cmdCount.Swap(0)
	if n == 0 {
		return acc, 0
	}
	return acc, float64(t) / float64(n)
}

// SizeTuples returns the partition's tuple count.
func (p *Partition) SizeTuples() int64 {
	if p.Kind == routing.RangePartitioned {
		return p.Tree.Count()
	}
	return p.Col.Count()
}

// transfer is a partition payload in flight between two AEUs: either a
// linkable extracted subtree / chunk run, or a flattened copy stream.
type transfer struct {
	obj    routing.ObjectID
	epoch  uint64
	from   uint32
	ex     *prefixtree.Extracted
	kvs    []prefixtree.KV
	det    *colstore.Detached
	srcCol *Partition // column transfers: source partition, for in-flight accounting
	srcRng *Partition // range transfers: source partition, for in-flight accounting
	lo     uint64
	hi     uint64
	// xid is the source's WAL handoff sequence number (0 when the engine
	// runs without durability); the target logs it in its link record so
	// recovery can pair the two sides of the transfer.
	xid uint64
	// auth marks a transfer whose source's bounds covered the whole fetch
	// range (at extraction, or — for a fetch of the current balancing epoch
	// — just before that epoch's own shrink). An authoritative transfer
	// carried everything that exists for the range, so landing it satisfies
	// pending and recovering state outright; a non-authoritative one only
	// contributes data and the requester must keep probing.
	auth bool
	// stalled marks a payload that already took the StallTransfer fault,
	// so its release cannot stall again.
	stalled bool
}

// keyRange is an inclusive key interval.
type keyRange struct {
	lo, hi uint64
}

// linkEntry pairs an applied transfer's link range with the WAL sequence
// number of its link record, so SnapshotDurable can tell which entries a
// published checkpoint stamp covers.
type linkEntry struct {
	lr  durable.LinkRange
	seq uint64
}

// heldAck is an epoch acknowledgement parked by the DelayEpochDone fault.
type heldAck struct {
	obj   routing.ObjectID
	epoch uint64
}

// pendingRange is a key range granted to this AEU whose data has not
// arrived yet; commands touching it are deferred, not answered. The entry
// is removed when its transfer lands; whatever is left when the epoch
// closes (abandoned, errored, fetch frame lost) never got its data and is
// converted to a recovering range instead of being dropped.
type pendingRange struct {
	obj    routing.ObjectID
	lo, hi uint64
	epoch  uint64
	from   uint32 // AEU the fetch was addressed to — where the data still is
}

// recRange is a key range this AEU owns (per the routing tables) without
// being sure it holds the data, because a fault ate part of the balance
// handshake: the OpBalance itself (bounds reconciliation then picks the
// range up with no fetch attached), or the OpFetch / transfer of a granted
// range (the epoch then closes with the pending range unsatisfied). Either
// way some of the tuples may still sit in another AEU's tree. Answering for
// the range would serve misses for keys that exist, and writes accepted
// into it would collide with the live copy when a later transfer finally
// lands — so commands touching it defer (expiring honestly at their
// deadlines) while the AEU walks its peers with repair fetches. The range
// clears when an authoritative transfer covers it, or when every peer has
// been probed and every probe's payload has landed — at that point any data
// any peer held for the range has been extracted and linked here, so
// serving it is sound even if the range turns out to be genuinely empty.
type recRange struct {
	obj    routing.ObjectID
	lo, hi uint64
	// from is the most likely holder, probed first: the fetch target
	// recorded in the pending range when one existed, else the adjacent
	// previous owner (ordered ownership keeps AEU ranges contiguous, so
	// reconciled growth low of the old bounds came from ID-1 and growth
	// high of them from ID+1).
	from  uint32
	tries uint8 // probes sent so far (walk position)
	acks  uint8 // probe transfers landed so far
	stall uint8 // sweeps spent fully probed but not fully acked
}

// Generator produces workload commands through the AEU's outbox. Generate
// may route up to its internal batch of commands; it returns false when the
// workload is exhausted (the AEU then only serves incoming commands).
type Generator interface {
	Generate(a *AEU) bool
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(a *AEU) bool

// Generate implements Generator.
func (f GeneratorFunc) Generate(a *AEU) bool { return f(a) }

// AEU is one worker of the engine.
type AEU struct {
	ID   uint32
	Core topology.CoreID
	Node topology.NodeID

	router  *routing.Router
	machine *numasim.Machine
	mems    *mem.System
	cfg     Config
	faults  *faults.Injector

	sessions map[routing.ObjectID]*prefixtree.Session
	parts    map[routing.ObjectID]*Partition
	partList []*Partition

	// Mailbox for partition transfers (the copy/link payload path).
	// stalledMail holds payloads parked by the StallTransfer fault until
	// the next mailbox round releases them.
	mailMu      sync.Mutex
	mail        []transfer
	stalledMail []transfer
	mailCnt     atomic.Int32
	stalledCnt  atomic.Int32

	// Balancing state.
	pendingFetches map[uint64]int // epoch -> outstanding transfers
	pendingRanges  []pendingRange
	recovering     []recRange // adopted ranges whose data never arrived
	deferred       []command.Command
	requeue        []command.Command
	epochDone      func(aeu uint32, obj routing.ObjectID, epoch uint64)
	heldAcks       []heldAck // acks parked by the DelayEpochDone fault

	// Workload.
	Generator Generator
	Rng       *rand.Rand
	genDone   bool
	skewed    bool

	onClientResult func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error)

	// Durability (nil/false without a data directory). pendingAcks holds
	// client acks parked until the WAL fsync covering their records;
	// ckptReq is the engine's in-loop checkpoint-image request slot.
	wal         *durable.Log
	walSync     bool
	pendingAcks []parkedAck
	ckptReq     atomic.Pointer[CkptRequest]

	stop     atomic.Bool
	timeline *Timeline
	peers    []*AEU

	// Per-loop grouping scratch.
	groups    map[groupKey]*group
	order     []groupKey
	groupFree []*group // recycled groups; batches keep their capacity
	noCoSeq   uint64   // distinct group keys when coalescing is disabled

	// Per-group processing scratch, reused across groups and iterations;
	// the AEU loop is single-goroutine, so no synchronization is needed.
	// Anything handed out of the loop (deferred commands, replies retained
	// by a callback) must be cloned, never a scratch alias.
	scratch struct {
		valid       []uint64
		foreign     []uint64
		deferredIdx []int
		values      []uint64
		found       []bool
		validKVs    []prefixtree.KV
		foreignKVs  []prefixtree.KV
		replyKVs    []prefixtree.KV
		scanAggs    []colstore.ScanAgg
		scanSpecs   []colstore.ScanSpec
		scanScratch colstore.ScanScratch
	}

	// Counters, registered on the engine's metrics registry under
	// aeu.<id>.*; groupNS is the per-AEU command-group processing-time
	// histogram (virtual nanoseconds).
	opsDone     *metrics.Counter
	forwards    *metrics.Counter
	deferredCnt *metrics.Counter
	iterations  *metrics.Counter
	ctrlErrors  *metrics.Counter // control commands that could not be applied
	xferErrors  *metrics.Counter // failed fetches / dropped transfers
	boundsFixed *metrics.Counter // partitions realigned to the routing table
	repairs     *metrics.Counter // recovering ranges healed by a repair fetch
	expired     *metrics.Counter // deferred commands whose deadline passed
	// Block outcomes of shared column scans (see colstore.ScanStats):
	// values evaluated vs blocks skipped or accepted whole by zone maps.
	colBlocksScanned *metrics.Counter
	colBlocksPruned  *metrics.Counter
	colBlocksFullHit *metrics.Counter
	groupNS          *metrics.Histogram
}

type groupKey struct {
	obj     routing.ObjectID
	op      command.Op
	replyTo int32
	tag     uint64
	source  uint32
}

type group struct {
	keys  []uint64
	kvs   []prefixtree.KV
	scans []command.Command
	// scanKeys is the arena holding cloned scan bounds: drained commands
	// are decoded zero-copy, so the retained scans' Keys must not alias
	// the inbox buffer.
	scanKeys []uint64
	// deadline is the batch deadline (unix nanoseconds, 0 = none) while
	// every member agrees on it; deferral and forwarding preserve it.
	// NoReply batches coalesce commands from all sources, so members MAY
	// disagree: the first disagreement materializes dls with one deadline
	// per member (keys first, then kvs), and the group is processed as
	// per-deadline sub-batches — expiry must only ever answer members
	// that actually carry a passed deadline, never the whole batch.
	deadline uint64
	dls      []uint64
}

// mixedDeadlines reports whether the group's members disagree on their
// deadline (dls materialized).
//
//eris:hotpath
func (g *group) mixedDeadlines() bool { return len(g.dls) > 0 }

// New creates an AEU pinned to core id of the machine.
func New(r *routing.Router, mems *mem.System, id uint32, cfg Config) *AEU {
	machine := r.Machine()
	core := topology.CoreID(id)
	reg := r.Metrics()
	prefix := fmt.Sprintf("aeu.%d.", id)
	return &AEU{
		ID:               id,
		Core:             core,
		Node:             machine.Topology().NodeOfCore(core),
		router:           r,
		machine:          machine,
		mems:             mems,
		cfg:              cfg.withDefaults(),
		faults:           r.Faults(),
		sessions:         make(map[routing.ObjectID]*prefixtree.Session),
		parts:            make(map[routing.ObjectID]*Partition),
		pendingFetches:   make(map[uint64]int),
		groups:           make(map[groupKey]*group),
		Rng:              rand.New(rand.NewSource(int64(id)*7919 + 17)),
		opsDone:          reg.Counter(prefix + "ops"),
		forwards:         reg.Counter(prefix + "forwards"),
		deferredCnt:      reg.Counter(prefix + "deferred"),
		iterations:       reg.Counter(prefix + "iterations"),
		ctrlErrors:       reg.Counter(prefix + "control_errors"),
		xferErrors:       reg.Counter(prefix + "transfer_errors"),
		boundsFixed:      reg.Counter(prefix + "bounds_reconciled"),
		repairs:          reg.Counter(prefix + "range_repairs"),
		expired:          reg.Counter(prefix + "expired"),
		colBlocksScanned: reg.Counter(prefix + "colscan.blocks_scanned"),
		colBlocksPruned:  reg.Counter(prefix + "colscan.blocks_pruned"),
		colBlocksFullHit: reg.Counter(prefix + "colscan.blocks_full_hit"),
		// 250 ns to ~65 ms in 10 exponential buckets: command groups span
		// single-key lookups to full partition scans.
		groupNS: reg.Histogram(prefix+"group_ns", metrics.ExpBuckets(250, 4, 10)),
	}
}

// Router returns the routing layer.
func (a *AEU) Router() *routing.Router { return a.router }

// Machine returns the simulated machine.
func (a *AEU) Machine() *numasim.Machine { return a.machine }

// Outbox returns this AEU's private outgoing buffers.
//
//eris:hotpath
func (a *AEU) Outbox() *routing.Outbox { return a.router.Outbox(a.ID) }

// SetEpochDone installs the balancer's completion callback.
func (a *AEU) SetEpochDone(fn func(aeu uint32, obj routing.ObjectID, epoch uint64)) {
	a.epochDone = fn
}

// SetClientResult installs the engine's client result callback. The kvs
// slice may alias decoder or reply scratch that is reused immediately
// after the callback returns; implementations must copy what they keep.
// answered counts how many request keys (scan commands, for scans) the
// reply settles, which exceeds len(kvs) for missed lookups and for
// upsert/delete acks. A non-nil err marks the answered portion as failed
// (deadline expiry, unserved op) with no payload.
func (a *AEU) SetClientResult(fn func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error)) {
	a.onClientResult = fn
}

// SetTimeline installs a throughput timeline (Figure 13 measurements).
func (a *AEU) SetTimeline(tl *Timeline) { a.timeline = tl }

// AddIndexPartition attaches a range-partitioned index partition backed by
// the store of this AEU's node. Must be called before Run.
func (a *AEU) AddIndexPartition(obj routing.ObjectID, store *prefixtree.Store, lo, hi uint64) (*Partition, error) {
	if _, dup := a.parts[obj]; dup {
		return nil, fmt.Errorf("aeu %d: object %d already attached", a.ID, obj)
	}
	sess := store.NewSession()
	a.sessions[obj] = sess
	p := &Partition{
		Object: obj,
		Kind:   routing.RangePartitioned,
		Tree:   prefixtree.NewTree(sess),
		Lo:     lo,
		Hi:     hi,
	}
	a.parts[obj] = p
	a.partList = append(a.partList, p)
	return p, nil
}

// AddColumnPartition attaches a size-partitioned column partition allocated
// on this AEU's node.
func (a *AEU) AddColumnPartition(obj routing.ObjectID, cfg colstore.Config) (*Partition, error) {
	if _, dup := a.parts[obj]; dup {
		return nil, fmt.Errorf("aeu %d: object %d already attached", a.ID, obj)
	}
	p := &Partition{
		Object: obj,
		Kind:   routing.SizePartitioned,
		Col:    colstore.NewLocal(a.machine, cfg, a.mems.Node(a.Node)),
	}
	a.parts[obj] = p
	a.partList = append(a.partList, p)
	return p, nil
}

// Partition returns the local partition of obj, or nil.
func (a *AEU) Partition(obj routing.ObjectID) *Partition { return a.parts[obj] }

// Session returns this AEU's node-local allocation session for obj's store.
func (a *AEU) Session(obj routing.ObjectID) *prefixtree.Session { return a.sessions[obj] }

// Stop asks the AEU loop to exit after the current iteration.
func (a *AEU) Stop() { a.stop.Store(true) }

// Stopped reports whether Stop was called.
func (a *AEU) Stopped() bool { return a.stop.Load() }

// deliverTransfer places a partition payload into the mailbox; called by
// the sending AEU. A payload hit by the StallTransfer fault is parked in
// the stalled queue for one mailbox round — its balancing epoch stays open
// across loop iterations, exactly the straggler scenario the control plane
// must survive — and released by the receiving AEU's next loop pass.
func (a *AEU) deliverTransfer(t transfer) {
	if !t.stalled && a.faults.Should(faults.StallTransfer) {
		t.stalled = true
		a.mailMu.Lock() //eris:allowblock bounded mailbox append; contended only by control-plane transfer senders
		a.stalledMail = append(a.stalledMail, t)
		a.mailMu.Unlock()
		a.stalledCnt.Add(1)
		return
	}
	a.mailMu.Lock() //eris:allowblock bounded mailbox append; contended only by control-plane transfer senders
	a.mail = append(a.mail, t)
	a.mailMu.Unlock()
	a.mailCnt.Add(1)
}

// releaseStalled moves fault-parked transfer payloads into the live
// mailbox; it reports whether any were released.
func (a *AEU) releaseStalled() bool {
	if a.stalledCnt.Load() == 0 {
		return false
	}
	a.mailMu.Lock() //eris:allowblock bounded mailbox swap; contended only by control-plane transfer senders
	st := a.stalledMail
	a.stalledMail = nil
	a.mail = append(a.mail, st...)
	a.mailMu.Unlock()
	a.stalledCnt.Add(int32(-len(st)))
	a.mailCnt.Add(int32(len(st)))
	return len(st) > 0
}

// Stats snapshots AEU counters.
type Stats struct {
	Ops        int64
	Forwards   int64
	Deferred   int64
	Iterations int64
}

// Stats returns a snapshot of the AEU's counters.
func (a *AEU) Stats() Stats {
	return Stats{
		Ops:        a.opsDone.Load(),
		Forwards:   a.forwards.Load(),
		Deferred:   a.deferredCnt.Load(),
		Iterations: a.iterations.Load(),
	}
}

// ClockNS returns this AEU's virtual time in nanoseconds.
//
//eris:hotpath
func (a *AEU) ClockNS() float64 { return a.machine.ClockNS(a.Core) }

// ClockSec returns this AEU's virtual time in seconds.
func (a *AEU) ClockSec() float64 { return a.ClockNS() / 1e9 }

// CountOps records externally executed storage operations (generator-driven
// benchmark work) in the AEU's throughput accounting.
//
//eris:hotpath
func (a *AEU) CountOps(n int64) { a.countOps(n) }

// countOps records completed storage operations for throughput accounting.
//
//eris:hotpath
func (a *AEU) countOps(n int64) {
	a.machine.CountOps(a.Core, n)
	a.opsDone.Add(n)
	if a.timeline != nil {
		a.timeline.Record(a.ClockNS(), n)
	}
}
