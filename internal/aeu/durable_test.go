package aeu

import (
	"testing"
	"time"

	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/durable"
	"eris/internal/prefixtree"
	"eris/internal/topology"
)

// TestDurableServePathSteadyStateAllocs is the allocation regression
// guard for the logged write path: after warm-up, serving upsert and
// delete groups with WAL appends enabled must not allocate. The log's
// segment free-list and the writer's queue/spare ping-pong keep the
// group-commit machinery allocation-free at steady state.
func TestDurableServePathSteadyStateAllocs(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1<<14)
	a0 := h.aeus[0]
	mgr, err := durable.Open(durable.Options{Dir: t.TempDir(), SyncWrites: false})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a0.SetWAL(mgr.Log(int(a0.ID)))

	src := h.aeus[1].Outbox()
	keys := make([]uint64, 64)
	kvs := make([]prefixtree.KV, 64)
	for i := range keys {
		keys[i] = uint64(i*61) % (1 << 13) // all owned by AEU 0
		kvs[i] = prefixtree.KV{Key: keys[i], Value: uint64(i)}
	}
	run := func() {
		src.RouteUpsert(testObj, kvs, command.NoReply, 0)
		src.RouteDelete(testObj, keys[:8], command.NoReply, 0)
		src.Flush()
		h.router.Drain(a0.ID, a0.classify)
		a0.processGroups()
		if a0.wal != nil {
			a0.releaseDurableAcks()
		}
	}
	for i := 0; i < 300; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Errorf("logged serve path allocates %.1f times per cycle, want 0", avg)
	}
	if err := mgr.Flush(2 * time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := mgr.Stats(); st.Records == 0 || st.BytesLogged == 0 {
		t.Fatalf("no records logged: %+v", st)
	}
}

// Acks parked on the WAL release only once the covering fsync lands, and
// a clean loop exit flushes and releases every parked ack.
func TestSyncWritesGateAcks(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1<<10)
	a0 := h.aeus[0]
	mgr, err := durable.Open(durable.Options{Dir: t.TempDir(), SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a0.SetWAL(mgr.Log(int(a0.ID)))

	acked := 0
	a0.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
		if err == nil {
			acked++
		}
	})
	a0.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 0,
		ReplyTo: ClientReply, Tag: 1,
		KVs: []prefixtree.KV{{Key: 5, Value: 50}},
	})
	a0.processGroups()
	if acked != 0 {
		t.Fatalf("ack released before fsync (acked=%d)", acked)
	}
	if err := mgr.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	a0.releaseDurableAcks()
	if acked != 1 {
		t.Fatalf("ack not released after fsync (acked=%d)", acked)
	}
}

// moveRange runs the four-step balance dance transferring [250,499] from
// AEU 0 to AEU 1 (the same sequence TestBalanceFetchLinkSameNode pins),
// stopping with the payload still in AEU 1's mailbox when linkAt1 is
// false.
func moveRange(h *harness, linkAt1 bool) {
	h.router.UpdateRange(testObj, []csbtree.Entry{
		{Low: 0, Owner: 0}, {Low: 250, Owner: 1},
	})
	h.router.Inject(1, &command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply,
		Balance: &command.Balance{
			Epoch: 5, NewLo: 250, NewHi: 999,
			Fetches: []command.Fetch{{From: 0, Lo: 250, Hi: 499}},
		},
	})
	h.router.Inject(0, &command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: 0,
		ReplyTo: command.NoReply,
		Balance: &command.Balance{Epoch: 5, NewLo: 0, NewHi: 249},
	})
	h.step(0) // AEU 0 shrinks bounds
	h.step(1) // AEU 1 adopts bounds, sends fetch
	h.step(0) // AEU 0 serves fetch: extraction + handoff record
	if linkAt1 {
		h.step(1) // AEU 1 links the payload + link record
	}
}

// A snapshot may be discarded by the engine (transfer overlapped the
// collection, image timeout, checkpoint write error). Link provenance
// must therefore survive any number of snapshots and retire only once a
// checkpoint carrying it has been durably *published*.
func TestLinksSurviveDiscardedSnapshot(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	mgr, err := durable.Open(durable.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	for i, a := range h.aeus {
		a.SetWAL(mgr.Log(i))
	}
	for k := uint64(0); k < 500; k++ {
		h.aeus[0].Partition(testObj).Tree.Upsert(0, k, k, 1)
	}
	moveRange(h, true)

	a1 := h.aeus[1]
	if got := len(a1.Partition(testObj).links); got != 1 {
		t.Fatalf("links after transfer = %d, want 1", got)
	}

	// Two snapshots in a row model a discarded attempt plus its retry:
	// both images must carry the link.
	h.aeus[0].SnapshotDurable()
	if img := a1.SnapshotDurable(); len(img.Trees[0].Links) != 1 {
		t.Fatalf("first image Links = %d, want 1", len(img.Trees[0].Links))
	}
	h.aeus[0].SnapshotDurable()
	if img := a1.SnapshotDurable(); len(img.Trees[0].Links) != 1 {
		t.Fatalf("retry image lost the link: a discarded snapshot must not clear provenance")
	}

	// Publish a checkpoint carrying the link; only then may the entry
	// retire (the next snapshot observes the published stamp).
	img0 := h.aeus[0].SnapshotDurable()
	img1 := a1.SnapshotDurable()
	if err := mgr.WriteCheckpoint(durable.CheckpointData{
		Objects: []durable.ObjectMeta{{ID: uint32(testObj), Kind: durable.KindRange, Domain: 1000, Name: "t"}},
		AEUs:    []durable.AEUImage{img0, img1},
	}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	a1.SnapshotDurable() // observes the published stamp, retires the entry
	if got := len(a1.Partition(testObj).links); got != 0 {
		t.Fatalf("links after published checkpoint = %d, want 0 (retired)", got)
	}
	if img := a1.SnapshotDurable(); len(img.Trees[0].Links) != 0 {
		t.Fatalf("image after retirement still carries %d links", len(img.Trees[0].Links))
	}
}

// rngSum mirrors the engine checkpoint bracket: the range-transfer
// generation and in-flight sums across every AEU.
func rngSum(h *harness) (gen, inflight int64) {
	for _, a := range h.aeus {
		g, f := a.RngXferState(testObj)
		gen += g
		inflight += f
	}
	return gen, inflight
}

// The checkpoint bracket relies on extraction incrementing the in-flight
// count and the landed payload releasing it: a checkpoint collected while
// a range payload is afloat must observe inflight != 0 or a generation
// change and retry — otherwise a crash could lose the moved range, with
// its handoff generation pruned and its link record never written.
func TestRangeXferBracketPairs(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	for k := uint64(0); k < 500; k++ {
		h.aeus[0].Partition(testObj).Tree.Upsert(0, k, k, 1)
	}
	if gen, inflight := rngSum(h); gen != 0 || inflight != 0 {
		t.Fatalf("pre-transfer sums gen=%d inflight=%d", gen, inflight)
	}
	moveRange(h, false) // stop with the payload in AEU 1's mailbox
	gen1, inflight := rngSum(h)
	if gen1 == 0 || inflight != 1 {
		t.Fatalf("payload afloat: gen=%d inflight=%d, want gen>0 inflight=1", gen1, inflight)
	}
	h.step(1) // AEU 1 links it
	gen2, inflight := rngSum(h)
	if inflight != 0 {
		t.Fatalf("after link: inflight=%d, want 0", inflight)
	}
	if gen2 <= gen1 {
		t.Fatalf("link did not advance the generation: %d -> %d", gen1, gen2)
	}
}
