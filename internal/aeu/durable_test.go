package aeu

import (
	"testing"
	"time"

	"eris/internal/command"
	"eris/internal/durable"
	"eris/internal/prefixtree"
	"eris/internal/topology"
)

// TestDurableServePathSteadyStateAllocs is the allocation regression
// guard for the logged write path: after warm-up, serving upsert and
// delete groups with WAL appends enabled must not allocate. The log's
// segment free-list and the writer's queue/spare ping-pong keep the
// group-commit machinery allocation-free at steady state.
func TestDurableServePathSteadyStateAllocs(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1<<14)
	a0 := h.aeus[0]
	mgr, err := durable.Open(durable.Options{Dir: t.TempDir(), SyncWrites: false})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a0.SetWAL(mgr.Log(int(a0.ID)))

	src := h.aeus[1].Outbox()
	keys := make([]uint64, 64)
	kvs := make([]prefixtree.KV, 64)
	for i := range keys {
		keys[i] = uint64(i*61) % (1 << 13) // all owned by AEU 0
		kvs[i] = prefixtree.KV{Key: keys[i], Value: uint64(i)}
	}
	run := func() {
		src.RouteUpsert(testObj, kvs, command.NoReply, 0)
		src.RouteDelete(testObj, keys[:8], command.NoReply, 0)
		src.Flush()
		h.router.Drain(a0.ID, a0.classify)
		a0.processGroups()
		if a0.wal != nil {
			a0.releaseDurableAcks()
		}
	}
	for i := 0; i < 300; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Errorf("logged serve path allocates %.1f times per cycle, want 0", avg)
	}
	if err := mgr.Flush(2 * time.Second); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := mgr.Stats(); st.Records == 0 || st.BytesLogged == 0 {
		t.Fatalf("no records logged: %+v", st)
	}
}

// Acks parked on the WAL release only once the covering fsync lands, and
// a clean loop exit flushes and releases every parked ack.
func TestSyncWritesGateAcks(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1<<10)
	a0 := h.aeus[0]
	mgr, err := durable.Open(durable.Options{Dir: t.TempDir(), SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	a0.SetWAL(mgr.Log(int(a0.ID)))

	acked := 0
	a0.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
		if err == nil {
			acked++
		}
	})
	a0.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 0,
		ReplyTo: ClientReply, Tag: 1,
		KVs: []prefixtree.KV{{Key: 5, Value: 50}},
	})
	a0.processGroups()
	if acked != 0 {
		t.Fatalf("ack released before fsync (acked=%d)", acked)
	}
	if err := mgr.Flush(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	a0.releaseDurableAcks()
	if acked != 1 {
		t.Fatalf("ack not released after fsync (acked=%d)", acked)
	}
}
