package aeu

import (
	"eris/internal/command"
	"eris/internal/faults"
	"eris/internal/routing"
	"eris/internal/topology"
)

// handleBalance applies a balancing command: adopt the new partition
// bounds, then request the missing data from the source AEUs (Section
// 3.3.2). The routing tables were already updated by the balancer; until
// the fetched data arrives, commands for the granted ranges are deferred.
//
// A malformed or misdirected balance command is counted and dropped, never
// fatal: the balancer's ack wait times out and the next sampling window
// re-evaluates the imbalance against whatever state survived.
func (a *AEU) handleBalance(c command.Command) {
	b := c.Balance
	if b == nil {
		a.ctrlErrors.Inc()
		return
	}
	obj := routing.ObjectID(c.Object)
	p := a.parts[obj]
	if p == nil {
		// Nothing to rebalance here; ack so the cycle can still complete.
		a.ctrlErrors.Inc()
		a.ackEpoch(obj, b.Epoch)
		return
	}
	a.abandonStaleEpochs(b.Epoch)
	if p.Kind == routing.RangePartitioned {
		p.Lo, p.Hi = b.NewLo, b.NewHi
		p.reconArmed = false
	}
	if len(b.Fetches) == 0 {
		a.ackEpoch(obj, b.Epoch)
		return
	}
	a.pendingFetches[b.Epoch] += len(b.Fetches)
	for _, f := range b.Fetches {
		if p.Kind == routing.RangePartitioned {
			a.pendingRanges = append(a.pendingRanges, pendingRange{lo: f.Lo, hi: f.Hi, epoch: b.Epoch})
		}
		fetch := f
		cmd := command.Command{
			Op: command.OpFetch, Object: c.Object, Source: a.ID,
			ReplyTo: command.NoReply, Tag: b.Epoch, Fetch: &fetch,
		}
		a.Outbox().Send(f.From, &cmd)
	}
}

// handleFetch serves a fetch: extract the requested part of the local
// partition and ship it to the requester, choosing the cheap link
// mechanism when both AEUs share a node and the flatten/copy mechanism
// otherwise (Figure 7).
func (a *AEU) handleFetch(c command.Command) {
	f := c.Fetch
	if f == nil {
		a.ctrlErrors.Inc()
		return
	}
	obj := routing.ObjectID(c.Object)
	p := a.parts[obj]
	if p == nil {
		// The requester is waiting on this transfer; reply with an error so
		// it abandons the pending slot instead of keeping the epoch open.
		a.xferErrors.Inc()
		a.Outbox().Send(c.Source, &command.Command{
			Op: command.OpError, Object: c.Object, Source: a.ID,
			ReplyTo: command.NoReply, Tag: c.Tag,
		})
		return
	}
	if p.Kind == routing.RangePartitioned && a.overlapsPending(f.Lo, f.Hi) {
		// Part of the requested range is itself still in flight to this
		// AEU (back-to-back balancing cycles): defer the fetch until the
		// inbound transfer lands, otherwise the keys would be skipped.
		a.deferred = append(a.deferred, c)
		a.deferredCnt.Add(1)
		return
	}
	requester := c.Source
	target := a.peer(requester)
	sameNode := target.Node == a.Node

	t := transfer{obj: obj, epoch: c.Tag, from: a.ID, lo: f.Lo, hi: f.Hi}
	if p.Kind == routing.SizePartitioned {
		t.det = p.Col.DetachTail(a.Core, f.Tuples)
	} else {
		ex := p.Tree.ExtractRange(a.Core, f.Lo, f.Hi)
		if sameNode {
			t.ex = ex
		} else {
			// Cross-node: flatten to the exchange format, stream it over,
			// free the source nodes.
			t.kvs = ex.Flatten(a.Core)
			ex.Discard(a.Core, a.sessions[obj])
		}
	}
	target.deliverTransfer(t)
}

// receiveTransfers drains the transfer mailbox, linking or copying the
// payloads into the local partitions and releasing deferred commands once
// an epoch completes.
func (a *AEU) receiveTransfers() {
	a.mailMu.Lock()
	incoming := a.mail
	a.mail = nil
	a.mailMu.Unlock()
	a.mailCnt.Add(int32(-len(incoming)))

	for _, t := range incoming {
		p := a.parts[t.obj]
		if p == nil {
			// No local partition to absorb the payload: count it, complete
			// the fetch slot so the epoch is not stuck forever. The tuples
			// stay in the source's store when linkable (nothing was copied
			// out) — the conservation checker sees them there.
			a.xferErrors.Inc()
			a.completeFetch(t.obj, t.epoch)
			continue
		}
		switch {
		case t.ex != nil:
			p.Tree.Link(a.Core, t.ex)
		case t.kvs != nil:
			p.Tree.RebuildFrom(a.Core, t.kvs)
		case t.det != nil:
			if err := p.Col.LinkDetached(a.Core, a.Node, t.det); err != nil {
				// Chunks live on another node: copy them over.
				p.Col.CopyDetached(a.Core, t.det, a.mems.Free)
			}
		}
		a.completeFetch(t.obj, t.epoch)
	}
}

// completeFetch decrements the epoch's outstanding transfer count, clears
// satisfied pending ranges and requeues deferred commands.
func (a *AEU) completeFetch(obj routing.ObjectID, epoch uint64) {
	n, ok := a.pendingFetches[epoch]
	if !ok {
		return
	}
	n--
	if n > 0 {
		a.pendingFetches[epoch] = n
		return
	}
	delete(a.pendingFetches, epoch)
	// Drop this epoch's pending ranges.
	kept := a.pendingRanges[:0]
	for _, r := range a.pendingRanges {
		if r.epoch != epoch {
			kept = append(kept, r)
		}
	}
	a.pendingRanges = kept
	// Release deferred commands for reprocessing.
	if len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
	a.ackEpoch(obj, epoch)
}

// overlapsPending reports whether [lo, hi] intersects a range whose data
// has not arrived yet.
func (a *AEU) overlapsPending(lo, hi uint64) bool {
	for _, r := range a.pendingRanges {
		if lo <= r.hi && hi >= r.lo {
			return true
		}
	}
	return false
}

// Settle runs one synchronous loop iteration without workload generation:
// drain the inbox, process what arrived, absorb transfers, flush. The
// engine calls it in rounds after the AEU goroutines exited, so that
// balancing commands and partition payloads still in flight at shutdown —
// including fault-parked acks and stalled transfers — are applied instead
// of lost. It reports whether any work was done.
func (a *AEU) Settle() bool {
	busy := a.releaseHeldAcks()
	if a.router.Drain(a.ID, a.classify) > 0 {
		busy = true
	}
	if len(a.requeue) > 0 {
		a.drainRequeue()
		busy = true
	}
	if len(a.order) > 0 {
		a.processGroups()
		busy = true
	}
	if a.releaseStalled() {
		busy = true
	}
	if a.mailCnt.Load() > 0 {
		a.receiveTransfers()
		busy = true
	}
	if a.reconcileBounds() {
		busy = true
	}
	a.Outbox().Flush()
	return busy
}

// ackEpoch signals the balancer that this AEU finished the epoch. The
// DelayEpochDone fault parks the ack for one loop round, turning it into a
// late (possibly post-timeout, stale) acknowledgement.
func (a *AEU) ackEpoch(obj routing.ObjectID, epoch uint64) {
	if a.faults.Should(faults.DelayEpochDone) {
		a.heldAcks = append(a.heldAcks, heldAck{obj: obj, epoch: epoch})
		return
	}
	if a.epochDone != nil {
		a.epochDone(a.ID, obj, epoch)
	}
}

// releaseHeldAcks delivers acks parked by the DelayEpochDone fault; it
// reports whether any were delivered.
func (a *AEU) releaseHeldAcks() bool {
	if len(a.heldAcks) == 0 {
		return false
	}
	for _, h := range a.heldAcks {
		if a.epochDone != nil {
			a.epochDone(a.ID, h.obj, h.epoch)
		}
	}
	a.heldAcks = a.heldAcks[:0]
	return true
}

// abandonStaleEpochs drops transfer bookkeeping of epochs older than the
// cycle that just arrived. The balancer runs one cycle at a time, so a new
// balance command proves every older epoch's wait has ended (completed or
// timed out); fetch slots an injected fault left open would otherwise defer
// overlapping commands forever. Late transfers of an abandoned epoch still
// land safely: completeFetch ignores unknown epochs.
func (a *AEU) abandonStaleEpochs(current uint64) {
	stale := false
	for ep := range a.pendingFetches {
		if ep < current {
			delete(a.pendingFetches, ep)
			stale = true
		}
	}
	if !stale {
		return
	}
	a.xferErrors.Inc()
	kept := a.pendingRanges[:0]
	for _, r := range a.pendingRanges {
		if r.epoch >= current {
			kept = append(kept, r)
		}
	}
	a.pendingRanges = kept
	if len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
}

// handleError abandons the pending fetch slot a failed control command was
// holding open (Tag carries the balancing epoch), so the cycle completes
// with whatever data did arrive instead of hanging until timeout.
func (a *AEU) handleError(c command.Command) {
	a.xferErrors.Inc()
	a.completeFetch(routing.ObjectID(c.Object), c.Tag)
}

// reconcileEvery is how often (in loop iterations) an AEU compares its
// range-partition bounds against the published routing tables.
const reconcileEvery = 1024

// reconcileBounds realigns range-partition bounds with the routing tables
// after a lost balance command: the balancer updates the tables before the
// commands are sent, so an AEU whose OpBalance was dropped or corrupted
// keeps stale bounds and bounces commands with the actual owner forever.
// A mismatch is adopted only when (a) no transfer is in flight locally and
// (b) the same target bounds were observed by the previous sweep — the
// short healthy window between a table update and the command's delivery
// never repeats across two sweeps. The high bound of the last owner is
// left alone: the routing table cannot distinguish it from the domain end,
// which only the balancer knows. It reports whether any partition was
// realigned or newly flagged (Settle uses this to run another round).
func (a *AEU) reconcileBounds() bool {
	if len(a.pendingFetches) > 0 || len(a.pendingRanges) > 0 || a.mailCnt.Load() > 0 {
		return false
	}
	progress := false
	for _, p := range a.partList {
		if p.Kind != routing.RangePartitioned {
			continue
		}
		entries := a.router.OwnerEntries(p.Object)
		idx := int(a.ID)
		if idx >= len(entries) || entries[idx].Owner != a.ID {
			p.reconArmed = false
			continue
		}
		lo, hi := entries[idx].Low, p.Hi
		if idx+1 < len(entries) {
			hi = entries[idx+1].Low - 1
		}
		if p.Lo == lo && p.Hi == hi {
			p.reconArmed = false
			continue
		}
		if p.reconArmed && p.reconLo == lo && p.reconHi == hi {
			p.Lo, p.Hi = lo, hi
			p.reconArmed = false
			a.boundsFixed.Inc()
			progress = true
			continue
		}
		p.reconLo, p.reconHi, p.reconArmed = lo, hi, true
		progress = true
	}
	return progress
}

// RegisterPeers wires the AEU set of one engine so fetch handlers can
// address their transfer targets. It must be called once after all AEUs
// are created and before Run.
func RegisterPeers(aeus []*AEU) {
	for _, a := range aeus {
		a.peers = aeus
	}
}

func (a *AEU) peer(id uint32) *AEU { return a.peers[id] }

// CoreOf returns the core an AEU index is pinned to (AEU i == core i).
func CoreOf(id uint32) topology.CoreID { return topology.CoreID(id) }
