package aeu

import (
	"fmt"

	"eris/internal/command"
	"eris/internal/routing"
	"eris/internal/topology"
)

// handleBalance applies a balancing command: adopt the new partition
// bounds, then request the missing data from the source AEUs (Section
// 3.3.2). The routing tables were already updated by the balancer; until
// the fetched data arrives, commands for the granted ranges are deferred.
func (a *AEU) handleBalance(c command.Command) {
	b := c.Balance
	if b == nil {
		panic("aeu: balance command without payload")
	}
	obj := routing.ObjectID(c.Object)
	p := a.parts[obj]
	if p == nil {
		panic(fmt.Sprintf("aeu %d: balance for unknown object %d", a.ID, c.Object))
	}
	if p.Kind == routing.RangePartitioned {
		p.Lo, p.Hi = b.NewLo, b.NewHi
	}
	if len(b.Fetches) == 0 {
		a.ackEpoch(obj, b.Epoch)
		return
	}
	a.pendingFetches[b.Epoch] += len(b.Fetches)
	for _, f := range b.Fetches {
		if p.Kind == routing.RangePartitioned {
			a.pendingRanges = append(a.pendingRanges, pendingRange{lo: f.Lo, hi: f.Hi, epoch: b.Epoch})
		}
		fetch := f
		cmd := command.Command{
			Op: command.OpFetch, Object: c.Object, Source: a.ID,
			ReplyTo: command.NoReply, Tag: b.Epoch, Fetch: &fetch,
		}
		a.Outbox().Send(f.From, &cmd)
	}
}

// handleFetch serves a fetch: extract the requested part of the local
// partition and ship it to the requester, choosing the cheap link
// mechanism when both AEUs share a node and the flatten/copy mechanism
// otherwise (Figure 7).
func (a *AEU) handleFetch(c command.Command) {
	f := c.Fetch
	if f == nil {
		panic("aeu: fetch command without payload")
	}
	obj := routing.ObjectID(c.Object)
	p := a.parts[obj]
	if p == nil {
		panic(fmt.Sprintf("aeu %d: fetch for unknown object %d", a.ID, c.Object))
	}
	if p.Kind == routing.RangePartitioned && a.overlapsPending(f.Lo, f.Hi) {
		// Part of the requested range is itself still in flight to this
		// AEU (back-to-back balancing cycles): defer the fetch until the
		// inbound transfer lands, otherwise the keys would be skipped.
		a.deferred = append(a.deferred, c)
		a.deferredCnt.Add(1)
		return
	}
	requester := c.Source
	target := a.peer(requester)
	sameNode := target.Node == a.Node

	t := transfer{obj: obj, epoch: c.Tag, from: a.ID, lo: f.Lo, hi: f.Hi}
	if p.Kind == routing.SizePartitioned {
		t.det = p.Col.DetachTail(a.Core, f.Tuples)
	} else {
		ex := p.Tree.ExtractRange(a.Core, f.Lo, f.Hi)
		if sameNode {
			t.ex = ex
		} else {
			// Cross-node: flatten to the exchange format, stream it over,
			// free the source nodes.
			t.kvs = ex.Flatten(a.Core)
			ex.Discard(a.Core, a.sessions[obj])
		}
	}
	target.deliverTransfer(t)
}

// receiveTransfers drains the transfer mailbox, linking or copying the
// payloads into the local partitions and releasing deferred commands once
// an epoch completes.
func (a *AEU) receiveTransfers() {
	a.mailMu.Lock()
	incoming := a.mail
	a.mail = nil
	a.mailMu.Unlock()
	a.mailCnt.Add(int32(-len(incoming)))

	for _, t := range incoming {
		p := a.parts[t.obj]
		if p == nil {
			panic(fmt.Sprintf("aeu %d: transfer for unknown object %d", a.ID, t.obj))
		}
		switch {
		case t.ex != nil:
			p.Tree.Link(a.Core, t.ex)
		case t.kvs != nil:
			p.Tree.RebuildFrom(a.Core, t.kvs)
		case t.det != nil:
			if err := p.Col.LinkDetached(a.Core, a.Node, t.det); err != nil {
				// Chunks live on another node: copy them over.
				p.Col.CopyDetached(a.Core, t.det, a.mems.Free)
			}
		}
		a.completeFetch(t.obj, t.epoch)
	}
}

// completeFetch decrements the epoch's outstanding transfer count, clears
// satisfied pending ranges and requeues deferred commands.
func (a *AEU) completeFetch(obj routing.ObjectID, epoch uint64) {
	n, ok := a.pendingFetches[epoch]
	if !ok {
		return
	}
	n--
	if n > 0 {
		a.pendingFetches[epoch] = n
		return
	}
	delete(a.pendingFetches, epoch)
	// Drop this epoch's pending ranges.
	kept := a.pendingRanges[:0]
	for _, r := range a.pendingRanges {
		if r.epoch != epoch {
			kept = append(kept, r)
		}
	}
	a.pendingRanges = kept
	// Release deferred commands for reprocessing.
	if len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
	a.ackEpoch(obj, epoch)
}

// overlapsPending reports whether [lo, hi] intersects a range whose data
// has not arrived yet.
func (a *AEU) overlapsPending(lo, hi uint64) bool {
	for _, r := range a.pendingRanges {
		if lo <= r.hi && hi >= r.lo {
			return true
		}
	}
	return false
}

// Settle runs one synchronous loop iteration without workload generation:
// drain the inbox, process what arrived, absorb transfers, flush. The
// engine calls it in rounds after the AEU goroutines exited, so that
// balancing commands and partition payloads still in flight at shutdown
// are applied instead of lost. It reports whether any work was done.
func (a *AEU) Settle() bool {
	busy := false
	if a.router.Drain(a.ID, a.classify) > 0 {
		busy = true
	}
	if len(a.requeue) > 0 {
		for _, c := range a.requeue {
			a.classify(c)
		}
		a.requeue = a.requeue[:0]
		busy = true
	}
	if len(a.order) > 0 {
		a.processGroups()
		busy = true
	}
	if a.mailCnt.Load() > 0 {
		a.receiveTransfers()
		busy = true
	}
	a.Outbox().Flush()
	return busy
}

func (a *AEU) ackEpoch(obj routing.ObjectID, epoch uint64) {
	if a.epochDone != nil {
		a.epochDone(a.ID, obj, epoch)
	}
}

// RegisterPeers wires the AEU set of one engine so fetch handlers can
// address their transfer targets. It must be called once after all AEUs
// are created and before Run.
func RegisterPeers(aeus []*AEU) {
	for _, a := range aeus {
		a.peers = aeus
	}
}

func (a *AEU) peer(id uint32) *AEU { return a.peers[id] }

// CoreOf returns the core an AEU index is pinned to (AEU i == core i).
func CoreOf(id uint32) topology.CoreID { return topology.CoreID(id) }
