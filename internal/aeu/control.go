package aeu

import (
	"eris/internal/command"
	"eris/internal/durable"
	"eris/internal/faults"
	"eris/internal/routing"
	"eris/internal/topology"
)

// handleBalance applies a balancing command: adopt the new partition
// bounds, then request the missing data from the source AEUs (Section
// 3.3.2). The routing tables were already updated by the balancer; until
// the fetched data arrives, commands for the granted ranges are deferred.
//
// A malformed or misdirected balance command is counted and dropped, never
// fatal: the balancer's ack wait times out and the next sampling window
// re-evaluates the imbalance against whatever state survived.
func (a *AEU) handleBalance(c command.Command) {
	b := c.Balance
	if b == nil {
		a.ctrlErrors.Inc()
		return
	}
	obj := routing.ObjectID(c.Object)
	p := a.parts[obj]
	if p == nil {
		// Nothing to rebalance here; ack so the cycle can still complete.
		a.ctrlErrors.Inc()
		a.ackEpoch(obj, b.Epoch)
		return
	}
	a.abandonStaleEpochs(b.Epoch)
	dbg("aeu%d obj%d handleBalance epoch=%d new=[%d,%d] fetches=%d", a.ID, c.Object, b.Epoch, b.NewLo, b.NewHi, len(b.Fetches))
	if p.Kind == routing.RangePartitioned {
		p.prevLo, p.prevHi, p.prevEpoch = p.Lo, p.Hi, b.Epoch
		p.prevHoles = p.prevHoles[:0]
		for _, r := range a.recovering {
			if r.obj == obj {
				p.prevHoles = append(p.prevHoles, keyRange{lo: r.lo, hi: r.hi})
			}
		}
		p.Lo, p.Hi = b.NewLo, b.NewHi
		p.reconArmed = false
		// Recovering ranges the new bounds no longer cover are foreign now:
		// their keys forward to the new owner, whose own pending-range
		// machinery repairs them. Probing for them here would steal the new
		// owner's live data.
		a.pruneRecovering(obj, b.NewLo, b.NewHi)
	}
	if len(b.Fetches) == 0 {
		a.ackEpoch(obj, b.Epoch)
		return
	}
	a.pendingFetches[b.Epoch] += len(b.Fetches)
	for _, f := range b.Fetches {
		if p.Kind == routing.RangePartitioned {
			a.pendingRanges = append(a.pendingRanges, pendingRange{
				obj: obj, lo: f.Lo, hi: f.Hi, epoch: b.Epoch, from: f.From,
			})
		}
		fetch := f
		cmd := command.Command{
			Op: command.OpFetch, Object: c.Object, Source: a.ID,
			ReplyTo: command.NoReply, Tag: b.Epoch, Fetch: &fetch,
		}
		a.Outbox().Send(f.From, &cmd)
	}
}

// handleFetch serves a fetch: extract the requested part of the local
// partition and ship it to the requester, choosing the cheap link
// mechanism when both AEUs share a node and the flatten/copy mechanism
// otherwise (Figure 7).
func (a *AEU) handleFetch(c command.Command) {
	f := c.Fetch
	if f == nil {
		a.ctrlErrors.Inc()
		return
	}
	obj := routing.ObjectID(c.Object)
	p := a.parts[obj]
	if p == nil {
		// The requester is waiting on this transfer; reply with an error so
		// it abandons the pending slot instead of keeping the epoch open.
		a.xferErrors.Inc()
		a.Outbox().Send(c.Source, &command.Command{
			Op: command.OpError, Object: c.Object, Source: a.ID,
			ReplyTo: command.NoReply, Tag: c.Tag,
		})
		return
	}
	if p.Kind == routing.RangePartitioned &&
		(a.overlapsPending(f.Lo, f.Hi) || a.overlapsRecovering(obj, f.Lo, f.Hi)) {
		// Part of the requested range is itself still in flight to this
		// AEU (back-to-back balancing cycles, or a repair fetch healing a
		// lost balance command): defer the fetch until the inbound
		// transfer lands, otherwise the keys would be skipped.
		dbg("aeu%d obj%d handleFetch DEFER req=aeu%d [%d,%d] tag=%d", a.ID, c.Object, c.Source, f.Lo, f.Hi, c.Tag)
		a.deferred = append(a.deferred, c)
		a.deferredCnt.Add(1)
		return
	}
	requester := c.Source
	target := a.peer(requester)
	sameNode := target.Node == a.Node

	t := transfer{obj: obj, epoch: c.Tag, from: a.ID, lo: f.Lo, hi: f.Hi, auth: true}
	if p.Kind == routing.SizePartitioned {
		t.det = p.Col.DetachTail(a.Core, f.Tuples)
		t.srcCol = p
		p.colXferGen.Add(1)
		p.colInFlight.Add(1)
	} else {
		// The transfer is authoritative when this AEU's bounds covered the
		// whole range just before extraction — then every tuple that exists
		// for it is in the payload. A fetch of the current balancing epoch
		// is judged against the bounds before that epoch's own shrink (the
		// normal cycle order: the source's OpBalance lands before the
		// targets' fetches, with all the data still here). Anything else —
		// a repair probe to an AEU that only holds orphans, or a fetch that
		// raced a later cycle — may return a partial or empty payload, and
		// the requester must keep probing before trusting the range.
		// Ranges still recovering when that balance arrived are excepted:
		// the bounds claimed them but the data never came, and a trusted
		// empty transfer would hand the gap to the next owner as settled.
		t.auth = f.Lo >= p.Lo && f.Hi <= p.Hi ||
			(c.Tag != 0 && c.Tag == p.prevEpoch && f.Lo >= p.prevLo && f.Hi <= p.prevHi &&
				!overlapsHoles(p.prevHoles, f.Lo, f.Hi))
		// Extraction is the ownership handover: give up the bounds with the
		// data. Normally the balancer's own OpBalance already shrank them,
		// but if that command was lost this AEU would otherwise keep
		// claiming the range and answer misses from the freshly emptied
		// tree. An extraction fully outside the bounds (repairing orphans
		// after reconciliation already shrank them) leaves them untouched.
		oldLo, oldHi := p.Lo, p.Hi
		if f.Lo <= p.Lo && f.Hi >= p.Lo {
			p.Lo = f.Hi + 1 // may pass p.Hi: partition now empty, all keys forward
		} else if f.Hi >= p.Hi && f.Lo <= p.Hi {
			p.Hi = f.Lo - 1
		}
		ex := p.Tree.ExtractRange(a.Core, f.Lo, f.Hi)
		t.srcRng = p
		p.rngXferGen.Add(1)
		p.rngInFlight.Add(1)
		dbg("aeu%d obj%d handleFetch req=aeu%d [%d,%d] tag=%d extracted=%d auth=%v bounds [%d,%d]->[%d,%d]", a.ID, c.Object, c.Source, f.Lo, f.Hi, c.Tag, ex.Count(), t.auth, oldLo, oldHi, p.Lo, p.Hi)
		if a.wal != nil {
			// Log ownership of [lo, hi] hands off with the data: the
			// handoff record's sequence number is the transfer id the
			// target's link record will carry, pairing the two sides of
			// the transfer for recovery.
			t.xid = a.wal.AppendHandoff(uint32(obj), f.Lo, f.Hi, requester)
		}
		if sameNode {
			t.ex = ex
		} else {
			// Cross-node: flatten to the exchange format, stream it over,
			// free the source nodes.
			t.kvs = ex.Flatten(a.Core)
			ex.Discard(a.Core, a.sessions[obj])
		}
	}
	target.deliverTransfer(t)
}

// receiveTransfers drains the transfer mailbox, linking or copying the
// payloads into the local partitions and releasing deferred commands once
// an epoch completes.
func (a *AEU) receiveTransfers() {
	a.mailMu.Lock() //eris:allowblock bounded mailbox swap; contended only by control-plane transfer senders
	incoming := a.mail
	a.mail = nil
	a.mailMu.Unlock()
	a.mailCnt.Add(int32(-len(incoming)))

	for _, t := range incoming {
		p := a.parts[t.obj]
		if p == nil {
			// No local partition to absorb the payload: count it, complete
			// the fetch slot so the epoch is not stuck forever. The tuples
			// stay in the source's store when linkable (nothing was copied
			// out) — the conservation checker sees them there.
			a.xferErrors.Inc()
			if t.srcCol != nil {
				t.srcCol.colInFlight.Add(-1)
			}
			if t.srcRng != nil {
				t.srcRng.rngInFlight.Add(-1)
			}
			a.completeFetch(t.obj, t.epoch)
			continue
		}
		switch {
		case t.ex != nil:
			if a.wal != nil {
				// The link record is self-contained (it carries the moved
				// tuples): a transfer whose handoff record was lost to a
				// crash still replays. Flatten is a non-destructive read,
				// so linking afterwards is sound.
				seq := a.wal.AppendLink(uint32(t.obj), t.lo, t.hi, t.xid, t.ex.Flatten(a.Core))
				p.links = append(p.links, linkEntry{lr: durable.LinkRange{Xid: t.xid, Lo: t.lo, Hi: t.hi}, seq: seq})
			}
			p.Tree.Link(a.Core, t.ex)
		case t.kvs != nil:
			if a.wal != nil {
				seq := a.wal.AppendLink(uint32(t.obj), t.lo, t.hi, t.xid, t.kvs)
				p.links = append(p.links, linkEntry{lr: durable.LinkRange{Xid: t.xid, Lo: t.lo, Hi: t.hi}, seq: seq})
			}
			p.Tree.RebuildFrom(a.Core, t.kvs)
		case t.det != nil:
			if err := p.Col.LinkDetached(a.Core, a.Node, t.det); err != nil {
				// Chunks live on another node: copy them over.
				p.Col.CopyDetached(a.Core, t.det, a.mems.Free)
			}
			p.colXferGen.Add(1)
			if t.srcCol != nil {
				t.srcCol.colInFlight.Add(-1)
			}
		}
		if t.srcRng != nil {
			// Landed (even an empty payload arrives and completes here):
			// bump the target generation, release the source's in-flight
			// slot — the checkpoint bracket reads both.
			p.rngXferGen.Add(1)
			t.srcRng.rngInFlight.Add(-1)
		}
		if p.Kind == routing.RangePartitioned {
			dbg("aeu%d obj%d linked transfer [%d,%d] epoch=%d from=aeu%d auth=%v", a.ID, t.obj, t.lo, t.hi, t.epoch, t.from, t.auth)
			if t.auth {
				// The source held everything that exists for the range, so
				// its landing satisfies any pending or recovering range it
				// covers — balance fetches and repair fetches alike.
				a.clearPendingRange(t.obj, t.lo, t.hi)
				a.clearRecovering(t.obj, t.lo, t.hi)
			} else {
				// A non-authoritative payload contributes data (Link is
				// duplicate-safe) but proves nothing about other holders:
				// count the answer and let the repair walk decide.
				a.ackRecovering(t.obj, t.lo, t.hi)
			}
		}
		a.completeFetch(t.obj, t.epoch)
	}
}

// clearPendingRange removes [lo, hi] from obj's pending ranges, splitting
// entries the landed transfer only partially covers. Marking satisfaction
// per range (not per epoch) is what lets completeFetch tell delivered
// ranges from lost ones when the epoch closes.
func (a *AEU) clearPendingRange(obj routing.ObjectID, lo, hi uint64) {
	if len(a.pendingRanges) == 0 {
		return
	}
	var kept []pendingRange
	for _, r := range a.pendingRanges {
		if r.obj != obj || lo > r.hi || hi < r.lo {
			kept = append(kept, r)
			continue
		}
		if r.lo < lo {
			kept = append(kept, pendingRange{obj: r.obj, lo: r.lo, hi: lo - 1, epoch: r.epoch, from: r.from})
		}
		if r.hi > hi {
			kept = append(kept, pendingRange{obj: r.obj, lo: hi + 1, hi: r.hi, epoch: r.epoch, from: r.from})
		}
	}
	a.pendingRanges = kept
}

// clearRecovering removes [lo, hi] from obj's recovering ranges (splitting
// entries the interval only partially covers) and releases the deferred
// queue so work parked on the healed range reprocesses.
func (a *AEU) clearRecovering(obj routing.ObjectID, lo, hi uint64) {
	if len(a.recovering) == 0 {
		return
	}
	cleared := false
	var kept []recRange
	for _, r := range a.recovering {
		if r.obj != obj || lo > r.hi || hi < r.lo {
			kept = append(kept, r)
			continue
		}
		cleared = true
		// Fragments restart their walk: acks were counted against the old
		// interval and probes from here on use the new one.
		if r.lo < lo {
			kept = append(kept, recRange{obj: r.obj, lo: r.lo, hi: lo - 1, from: r.from})
		}
		if r.hi > hi {
			kept = append(kept, recRange{obj: r.obj, lo: hi + 1, hi: r.hi, from: r.from})
		}
	}
	a.recovering = kept
	if cleared {
		dbg("aeu%d obj%d clearRecovering [%d,%d]", a.ID, obj, lo, hi)
		a.repairs.Inc()
		if len(a.deferred) > 0 {
			a.requeue = append(a.requeue, a.deferred...)
			a.deferred = a.deferred[:0]
		}
	}
}

// overlapsHoles reports whether [lo, hi] intersects any of the intervals.
func overlapsHoles(holes []keyRange, lo, hi uint64) bool {
	for _, h := range holes {
		if lo <= h.hi && hi >= h.lo {
			return true
		}
	}
	return false
}

// ackRecovering records that a probe's transfer landed: the payload is
// linked, but a non-authoritative source proves nothing about other copies,
// so the range is only counted, not cleared — sendRepairs clears it once
// every peer has answered.
func (a *AEU) ackRecovering(obj routing.ObjectID, lo, hi uint64) {
	for i := range a.recovering {
		r := &a.recovering[i]
		if r.obj == obj && r.lo == lo && r.hi == hi {
			r.acks++
		}
	}
}

// pruneRecovering trims recovering ranges of obj to the bounds [lo, hi] just
// adopted (balance command or reconciliation): parts outside are foreign
// now, so their deferred commands must reprocess and forward to the owner.
func (a *AEU) pruneRecovering(obj routing.ObjectID, lo, hi uint64) {
	changed := false
	kept := a.recovering[:0]
	for _, r := range a.recovering {
		if r.obj != obj || (r.lo >= lo && r.hi <= hi) {
			kept = append(kept, r)
			continue
		}
		changed = true
		if nl, nh := max(r.lo, lo), min(r.hi, hi); nl <= nh {
			dbg("aeu%d obj%d pruneRecovering [%d,%d]->[%d,%d]", a.ID, obj, r.lo, r.hi, nl, nh)
			kept = append(kept, recRange{obj: r.obj, lo: nl, hi: nh, from: r.from})
		} else {
			dbg("aeu%d obj%d pruneRecovering [%d,%d] dropped", a.ID, obj, r.lo, r.hi)
		}
	}
	a.recovering = kept
	if changed && len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
}

// completeFetch decrements the epoch's outstanding transfer count, clears
// satisfied pending ranges and requeues deferred commands.
func (a *AEU) completeFetch(obj routing.ObjectID, epoch uint64) {
	n, ok := a.pendingFetches[epoch]
	if !ok {
		return
	}
	n--
	if n > 0 {
		a.pendingFetches[epoch] = n
		return
	}
	delete(a.pendingFetches, epoch)
	// Pending ranges whose transfer landed were already cleared; anything of
	// this epoch still listed never got its data (the fetch was answered
	// with an error, or the payload had nowhere to link). Keep the bounds —
	// the routing tables already point here — but repair the gap instead of
	// serving misses for keys that still sit at the source.
	kept := a.pendingRanges[:0]
	for _, r := range a.pendingRanges {
		if r.epoch != epoch {
			kept = append(kept, r)
			continue
		}
		dbg("aeu%d obj%d completeFetch epoch=%d UNSATISFIED [%d,%d] from=aeu%d -> recovering", a.ID, r.obj, epoch, r.lo, r.hi, r.from)
		a.recovering = append(a.recovering, recRange{obj: r.obj, lo: r.lo, hi: r.hi, from: r.from})
	}
	a.pendingRanges = kept
	// Release deferred commands for reprocessing.
	if len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
	a.ackEpoch(obj, epoch)
}

// overlapsPending reports whether [lo, hi] intersects a range whose data
// has not arrived yet.
//
//eris:hotpath
func (a *AEU) overlapsPending(lo, hi uint64) bool {
	for _, r := range a.pendingRanges {
		if lo <= r.hi && hi >= r.lo {
			return true
		}
	}
	return false
}

// Settle runs one synchronous loop iteration without workload generation:
// drain the inbox, process what arrived, absorb transfers, flush. The
// engine calls it in rounds after the AEU goroutines exited, so that
// balancing commands and partition payloads still in flight at shutdown —
// including fault-parked acks and stalled transfers — are applied instead
// of lost. It reports whether any work was done.
func (a *AEU) Settle() bool {
	busy := a.releaseHeldAcks()
	if a.router.Drain(a.ID, a.classify) > 0 {
		busy = true
	}
	if len(a.requeue) > 0 {
		a.drainRequeue()
		busy = true
	}
	if len(a.order) > 0 {
		a.processGroups()
		busy = true
	}
	if a.releaseStalled() {
		busy = true
	}
	if a.mailCnt.Load() > 0 {
		a.receiveTransfers()
		busy = true
	}
	if a.reconcileBounds() {
		busy = true
	}
	a.Outbox().Flush()
	return busy
}

// ackEpoch signals the balancer that this AEU finished the epoch. The
// DelayEpochDone fault parks the ack for one loop round, turning it into a
// late (possibly post-timeout, stale) acknowledgement.
func (a *AEU) ackEpoch(obj routing.ObjectID, epoch uint64) {
	if a.faults.Should(faults.DelayEpochDone) {
		a.heldAcks = append(a.heldAcks, heldAck{obj: obj, epoch: epoch})
		return
	}
	if a.epochDone != nil {
		a.epochDone(a.ID, obj, epoch)
	}
}

// releaseHeldAcks delivers acks parked by the DelayEpochDone fault; it
// reports whether any were delivered.
func (a *AEU) releaseHeldAcks() bool {
	if len(a.heldAcks) == 0 {
		return false
	}
	for _, h := range a.heldAcks {
		if a.epochDone != nil {
			a.epochDone(a.ID, h.obj, h.epoch)
		}
	}
	a.heldAcks = a.heldAcks[:0]
	return true
}

// abandonStaleEpochs drops transfer bookkeeping of epochs older than the
// cycle that just arrived. The balancer runs one cycle at a time, so a new
// balance command proves every older epoch's wait has ended (completed or
// timed out); fetch slots an injected fault left open would otherwise defer
// overlapping commands forever. Late transfers of an abandoned epoch still
// land safely: completeFetch ignores unknown epochs.
func (a *AEU) abandonStaleEpochs(current uint64) {
	stale := false
	for ep := range a.pendingFetches {
		if ep < current {
			delete(a.pendingFetches, ep)
			stale = true
		}
	}
	if !stale {
		return
	}
	a.xferErrors.Inc()
	kept := a.pendingRanges[:0]
	for _, r := range a.pendingRanges {
		if r.epoch >= current {
			kept = append(kept, r)
			continue
		}
		// The grant stands (routing tables already point here) but its data
		// never arrived — the fetch or transfer was eaten by a fault. Repair
		// with a direct fetch rather than serving misses from the empty
		// range while the tuples sit orphaned at the source.
		dbg("aeu%d obj%d abandon epoch=%d UNSATISFIED [%d,%d] from=aeu%d -> recovering", a.ID, r.obj, r.epoch, r.lo, r.hi, r.from)
		a.recovering = append(a.recovering, recRange{obj: r.obj, lo: r.lo, hi: r.hi, from: r.from})
	}
	a.pendingRanges = kept
	if len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
}

// handleError abandons the pending fetch slot a failed control command was
// holding open (Tag carries the balancing epoch), so the cycle completes
// with whatever data did arrive instead of hanging until timeout.
func (a *AEU) handleError(c command.Command) {
	a.xferErrors.Inc()
	a.completeFetch(routing.ObjectID(c.Object), c.Tag)
}

// reconcileEvery is how often (in loop iterations) an AEU compares its
// range-partition bounds against the published routing tables.
const reconcileEvery = 1024

// reconcileBounds realigns range-partition bounds with the routing tables
// after a lost balance command: the balancer updates the tables before the
// commands are sent, so an AEU whose OpBalance was dropped or corrupted
// keeps stale bounds and bounces commands with the actual owner forever.
// A mismatch is adopted only when (a) no transfer is in flight locally and
// (b) the same target bounds were observed by the previous sweep — the
// short healthy window between a table update and the command's delivery
// never repeats across two sweeps. The high bound of the last owner is
// left alone: the routing table cannot distinguish it from the domain end,
// which only the balancer knows. It reports whether any partition was
// realigned or newly flagged (Settle uses this to run another round).
func (a *AEU) reconcileBounds() bool {
	repaired := a.sendRepairs()
	if len(a.pendingFetches) > 0 || len(a.pendingRanges) > 0 || a.mailCnt.Load() > 0 {
		return repaired
	}
	progress := false
	for _, p := range a.partList {
		if p.Kind != routing.RangePartitioned {
			continue
		}
		lo, hi, ok := a.assignedRange(p)
		if !ok {
			p.reconArmed = false
			continue
		}
		if p.Lo == lo && p.Hi == hi {
			p.reconArmed = false
			continue
		}
		if p.reconArmed && p.reconLo == lo && p.reconHi == hi {
			dbg("aeu%d obj%d reconcile adopt [%d,%d]->[%d,%d]", a.ID, p.Object, p.Lo, p.Hi, lo, hi)
			a.noteRecoveryGrowth(p, lo, hi)
			p.Lo, p.Hi = lo, hi
			p.reconArmed = false
			a.pruneRecovering(p.Object, lo, hi)
			a.boundsFixed.Inc()
			progress = true
			continue
		}
		p.reconLo, p.reconHi, p.reconArmed = lo, hi, true
		progress = true
	}
	return progress || repaired
}

// assignedRange returns this AEU's key range for p per the current routing
// tables; ok is false when the tables list no range for it. The high bound
// of the last owner falls back to the partition's own: the table cannot
// distinguish it from the domain end, which only the balancer knows.
func (a *AEU) assignedRange(p *Partition) (lo, hi uint64, ok bool) {
	entries := a.router.OwnerEntries(p.Object)
	idx := int(a.ID)
	if idx >= len(entries) || entries[idx].Owner != a.ID {
		return 0, 0, false
	}
	lo, hi = entries[idx].Low, p.Hi
	if idx+1 < len(entries) {
		hi = entries[idx+1].Low - 1
	}
	return lo, hi, true
}

// noteRecoveryGrowth marks the parts of the adopted bounds [lo, hi] that
// the old bounds did not cover as recovering: the balance command granting
// them was lost, so their tuples never transferred and still sit in the
// adjacent previous owner's tree (ordered ownership keeps AEU ranges
// contiguous, so growth on the low side came from AEU ID-1 and growth on
// the high side from AEU ID+1). Without this, the AEU would serve misses
// for keys that exist and accept writes that collide with the data when a
// later cycle finally re-transfers the range.
func (a *AEU) noteRecoveryGrowth(p *Partition, lo, hi uint64) {
	if lo < p.Lo && a.ID > 0 {
		end := hi
		if p.Lo-1 < end {
			end = p.Lo - 1
		}
		a.recovering = append(a.recovering, recRange{obj: p.Object, lo: lo, hi: end, from: a.ID - 1})
	}
	if hi > p.Hi && int(a.ID)+1 < len(a.peers) {
		start := lo
		if p.Hi+1 > start {
			start = p.Hi + 1
		}
		a.recovering = append(a.recovering, recRange{obj: p.Object, lo: start, hi: hi, from: a.ID + 1})
	}
}

// repairStallSweeps is how many reconcile sweeps a fully-probed but not
// fully-acknowledged recovering range waits before restarting its walk: a
// probe fetch can be eaten by the same faults that opened the gap, and
// probes are idempotent (the repeat extract finds nothing, Link tolerates
// overlap), so retrying until the rule-limited injector runs dry is safe.
const repairStallSweeps = 4

// maxProbes is the length of a repair walk: every peer except this AEU.
func (a *AEU) maxProbes() uint8 {
	n := len(a.peers)
	if n <= 1 {
		return 0
	}
	if n > 256 {
		n = 256
	}
	return uint8(n - 1)
}

// probeTarget returns the try-th stop of a recovering range's walk: the
// recorded likely holder first, then every other peer in ID order.
func (a *AEU) probeTarget(r *recRange, try uint8) uint32 {
	if try == 0 {
		return r.from
	}
	i := uint8(0)
	for id := uint32(0); int(id) < len(a.peers); id++ {
		if id == a.ID || id == r.from {
			continue
		}
		i++
		if i == try {
			return id
		}
	}
	return r.from
}

// sendRepairs advances every recovering range's repair walk by one probe —
// a zero-epoch fetch riding the regular transfer machinery (extract, ship,
// link), so no balancer cycle is involved — and clears ranges whose walk
// completed: every peer probed, every probe's payload landed. An
// authoritative transfer short-circuits the walk in receiveTransfers.
// Ranges the routing tables currently assign elsewhere are left untouched
// (probing would steal the new owner's live data); the bounds prune on the
// next balance or reconcile adoption disposes of them. It reports whether
// any walk advanced.
func (a *AEU) sendRepairs() bool {
	if len(a.recovering) == 0 {
		return false
	}
	maxTries := a.maxProbes()
	progress := false
	cleared := false
	kept := a.recovering[:0]
	for i := range a.recovering {
		r := a.recovering[i]
		p := a.parts[r.obj]
		if p == nil {
			continue
		}
		if alo, ahi, ok := a.assignedRange(p); !ok || r.lo < alo || r.hi > ahi {
			kept = append(kept, r)
			continue
		}
		switch {
		case r.tries < maxTries:
			tgt := a.probeTarget(&r, r.tries)
			r.tries++
			if tgt == a.ID {
				r.acks++ // nothing to ask: any local data is already linked
			} else {
				dbg("aeu%d obj%d sendRepair probe=%d/%d [%d,%d] -> aeu%d", a.ID, r.obj, r.tries, maxTries, r.lo, r.hi, tgt)
				f := command.Fetch{From: tgt, Lo: r.lo, Hi: r.hi}
				a.Outbox().Send(tgt, &command.Command{
					Op: command.OpFetch, Object: uint32(r.obj), Source: a.ID,
					ReplyTo: command.NoReply, Fetch: &f,
				})
			}
			progress = true
			kept = append(kept, r)
		case r.acks >= r.tries:
			// Walk complete: whatever any peer held for the range is linked
			// here now, so the range is safe to serve.
			dbg("aeu%d obj%d repair walk done [%d,%d]", a.ID, r.obj, r.lo, r.hi)
			a.repairs.Inc()
			cleared = true
			progress = true
		default:
			if r.stall++; r.stall >= repairStallSweeps {
				r.tries, r.acks, r.stall = 0, 0, 0
				progress = true
			}
			kept = append(kept, r)
		}
	}
	a.recovering = kept
	if cleared && len(a.deferred) > 0 {
		a.requeue = append(a.requeue, a.deferred...)
		a.deferred = a.deferred[:0]
	}
	return progress
}

// ColXferState returns this AEU's column-transfer generation and in-flight
// payload count for obj (zero when it holds no partition of it). Client
// scans sum the readings across AEUs before and after a fan-out: equal sums
// with nothing in flight mean no rebalancing overlapped the scan, so every
// tuple was observed exactly once.
func (a *AEU) ColXferState(obj routing.ObjectID) (gen, inflight int64) {
	if p := a.parts[obj]; p != nil {
		return p.colXferGen.Load(), p.colInFlight.Load()
	}
	return 0, 0
}

// RngXferState returns this AEU's range-transfer generation and in-flight
// payload count for obj (zero when it holds no partition of it). The
// engine's checkpoint collection brackets itself with the sums across
// AEUs: equal sums with nothing in flight mean no range payload moved
// while the images were cut, so every moved range is fully inside exactly
// one image and no handoff record is pruned while its payload is afloat.
func (a *AEU) RngXferState(obj routing.ObjectID) (gen, inflight int64) {
	if p := a.parts[obj]; p != nil {
		return p.rngXferGen.Load(), p.rngInFlight.Load()
	}
	return 0, 0
}

// RegisterPeers wires the AEU set of one engine so fetch handlers can
// address their transfer targets. It must be called once after all AEUs
// are created and before Run.
func RegisterPeers(aeus []*AEU) {
	for _, a := range aeus {
		a.peers = aeus
	}
}

func (a *AEU) peer(id uint32) *AEU { return a.peers[id] }

// CoreOf returns the core an AEU index is pinned to (AEU i == core i).
func CoreOf(id uint32) topology.CoreID { return topology.CoreID(id) }
