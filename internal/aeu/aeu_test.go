package aeu

import (
	"sync"
	"testing"
	"time"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

const testObj routing.ObjectID = 1

type harness struct {
	machine *numasim.Machine
	mems    *mem.System
	router  *routing.Router
	stores  map[topology.NodeID]*prefixtree.Store
	aeus    []*AEU
}

// newHarness builds n AEUs over the given topology with one
// range-partitioned index object split evenly over [0, domain).
func newHarness(t testing.TB, topo *topology.Topology, n int, domain uint64) *harness {
	t.Helper()
	machine, err := numasim.New(topo, numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mems := mem.NewSystem(machine)
	router, err := routing.New(machine, mems, n, routing.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		machine: machine,
		mems:    mems,
		router:  router,
		stores:  make(map[topology.NodeID]*prefixtree.Store),
	}
	cfg := prefixtree.Config{KeyBits: 32, PrefixBits: 8}
	entries := make([]csbtree.Entry, n)
	span := domain / uint64(n)
	for i := 0; i < n; i++ {
		a := New(router, mems, uint32(i), Config{})
		node := a.Node
		store := h.stores[node]
		if store == nil {
			store, err = prefixtree.NewStore(machine, mems.Node(node), cfg)
			if err != nil {
				t.Fatal(err)
			}
			h.stores[node] = store
		}
		lo := uint64(i) * span
		hi := lo + span - 1
		if i == n-1 {
			hi = domain - 1
		}
		if _, err := a.AddIndexPartition(testObj, store, lo, hi); err != nil {
			t.Fatal(err)
		}
		entries[i] = csbtree.Entry{Low: lo, Owner: uint32(i)}
		h.aeus = append(h.aeus, a)
	}
	entries[0].Low = 0
	if err := router.RegisterRange(testObj, entries); err != nil {
		t.Fatal(err)
	}
	RegisterPeers(h.aeus)
	return h
}

// step runs one synchronous AEU iteration: drain + process + transfers.
func (h *harness) step(i int) {
	a := h.aeus[i]
	h.router.Drain(a.ID, a.classify)
	a.drainRequeue()
	a.processGroups()
	if a.mailCnt.Load() > 0 {
		a.receiveTransfers()
	}
	a.Outbox().Flush()
}

func TestLookupAndUpsertProcessing(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	// Route upserts from AEU 0; keys land on both partitions.
	ob := h.aeus[0].Outbox()
	kvs := []prefixtree.KV{{Key: 10, Value: 100}, {Key: 600, Value: 6000}}
	ob.RouteUpsert(testObj, kvs, command.NoReply, 0)
	ob.Flush()
	h.step(0)
	h.step(1)
	if got := h.aeus[0].Partition(testObj).Tree.Count(); got != 1 {
		t.Fatalf("aeu0 tree count = %d", got)
	}
	if got := h.aeus[1].Partition(testObj).Tree.Count(); got != 1 {
		t.Fatalf("aeu1 tree count = %d", got)
	}

	// Lookup with a client callback.
	var mu sync.Mutex
	var results []prefixtree.KV
	for _, a := range h.aeus {
		a.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
			mu.Lock()
			results = append(results, kvs...)
			mu.Unlock()
		})
	}
	ob.RouteLookup(testObj, []uint64{10, 600, 999}, ClientReply, 7)
	ob.Flush()
	h.step(0)
	h.step(1)
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[uint64]uint64{}
	for _, kv := range results {
		seen[kv.Key] = kv.Value
	}
	if seen[10] != 100 || seen[600] != 6000 {
		t.Fatalf("results = %+v", results)
	}
}

func TestOpsCounted(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	ob := h.aeus[1].Outbox()
	ob.RouteLookup(testObj, []uint64{1, 2, 3, 501}, command.NoReply, 0)
	ob.Flush()
	h.step(0)
	h.step(1)
	total := h.aeus[0].Stats().Ops + h.aeus[1].Stats().Ops
	if total != 4 {
		t.Fatalf("ops = %d, want 4", total)
	}
}

func TestForeignKeysForwarded(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	// Shrink AEU 1's bounds without telling the routing table: keys in
	// [500,750) now get forwarded back and forth; narrow the table instead
	// so the forward converges to AEU 0.
	h.aeus[1].Partition(testObj).Lo = 750
	h.aeus[0].Partition(testObj).Hi = 749
	if err := h.router.UpdateRange(testObj, []csbtree.Entry{
		{Low: 0, Owner: 0}, {Low: 750, Owner: 1},
	}); err != nil {
		t.Fatal(err)
	}
	// Seed the key where it will be found.
	h.aeus[0].Partition(testObj).Tree.Upsert(0, 600, 42, 1)

	// A stale client (old table view) sends the lookup to AEU 1 directly.
	h.router.Inject(1, &command.Command{
		Op: command.OpLookup, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, Keys: []uint64{600},
	})
	h.step(1) // AEU 1 forwards
	if got := h.aeus[1].Stats().Forwards; got != 1 {
		t.Fatalf("forwards = %d", got)
	}
	h.step(0) // AEU 0 answers
	if got := h.aeus[0].Stats().Ops; got != 1 {
		t.Fatalf("aeu0 ops = %d", got)
	}
}

func TestBalanceFetchLinkSameNode(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	// Seed AEU 0 with keys 0..499.
	for k := uint64(0); k < 500; k++ {
		h.aeus[0].Partition(testObj).Tree.Upsert(0, k, k, 1)
	}
	var acks []uint64
	for _, a := range h.aeus {
		a.SetEpochDone(func(aeu uint32, obj routing.ObjectID, epoch uint64) {
			acks = append(acks, epoch)
		})
	}
	// Balancer: AEU 1 takes over [250, 499] from AEU 0.
	if err := h.router.UpdateRange(testObj, []csbtree.Entry{
		{Low: 0, Owner: 0}, {Low: 250, Owner: 1},
	}); err != nil {
		t.Fatal(err)
	}
	h.router.Inject(1, &command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply,
		Balance: &command.Balance{
			Epoch: 5, NewLo: 250, NewHi: 999,
			Fetches: []command.Fetch{{From: 0, Lo: 250, Hi: 499}},
		},
	})
	h.router.Inject(0, &command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: 0,
		ReplyTo: command.NoReply,
		Balance: &command.Balance{Epoch: 5, NewLo: 0, NewHi: 249},
	})
	h.step(0) // AEU 0 shrinks bounds, acks
	h.step(1) // AEU 1 adopts bounds, sends fetch
	h.step(0) // AEU 0 serves fetch, mails extracted subtree
	h.step(1) // AEU 1 links it, acks
	if len(acks) != 2 {
		t.Fatalf("acks = %v", acks)
	}
	if got := h.aeus[0].Partition(testObj).Tree.Count(); got != 250 {
		t.Fatalf("aeu0 count = %d", got)
	}
	if got := h.aeus[1].Partition(testObj).Tree.Count(); got != 250 {
		t.Fatalf("aeu1 count = %d", got)
	}
	// Moved keys are found at the new owner.
	v, ok := h.aeus[1].Partition(testObj).Tree.Lookup(1, 300, 1)
	if !ok || v != 300 {
		t.Fatalf("moved key: (%d,%v)", v, ok)
	}
}

func TestBalanceFetchCopyCrossNode(t *testing.T) {
	h := newHarness(t, topology.Intel(), 40, 40000)
	src, dst := h.aeus[0], h.aeus[10] // nodes 0 and 1
	if src.Node == dst.Node {
		t.Fatal("test expects different nodes")
	}
	for k := uint64(0); k < 1000; k++ {
		src.Partition(testObj).Tree.Upsert(src.Core, k, k*3, 1)
	}
	e := h.machine.StartEpoch()
	h.router.Inject(dst.ID, &command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: dst.ID,
		ReplyTo: command.NoReply,
		Balance: &command.Balance{
			Epoch: 9, NewLo: 500, NewHi: 20000,
			Fetches: []command.Fetch{{From: 0, Lo: 500, Hi: 999}},
		},
	})
	h.step(10) // dst sends fetch
	h.step(0)  // src flattens + ships
	h.step(10) // dst rebuilds
	if got := dst.Partition(testObj).Tree.CountRange(dst.Core, 500, 999); got != 500 {
		t.Fatalf("dst holds %d moved keys", got)
	}
	if got := src.Partition(testObj).Tree.Count(); got != 500 {
		t.Fatalf("src count = %d", got)
	}
	if e.TotalLinkBytes() == 0 {
		t.Error("cross-node copy produced no link traffic")
	}
	v, ok := dst.Partition(testObj).Tree.Lookup(dst.Core, 700, 1)
	if !ok || v != 2100 {
		t.Fatalf("moved key: (%d,%v)", v, ok)
	}
}

func TestDeferredCommandsReleasedAfterTransfer(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	for k := uint64(400); k < 500; k++ {
		h.aeus[0].Partition(testObj).Tree.Upsert(0, k, k, 1)
	}
	// AEU 1 is granted [400,499] but the data has not arrived yet.
	h.aeus[1].handleBalance(command.Command{
		Op: command.OpBalance, Object: uint32(testObj),
		Balance: &command.Balance{
			Epoch: 3, NewLo: 400, NewHi: 999,
			Fetches: []command.Fetch{{From: 0, Lo: 400, Hi: 499}},
		},
	})
	// A lookup for the pending range must be deferred, not missed.
	h.aeus[1].classify(command.Command{
		Op: command.OpLookup, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, Keys: []uint64{450},
	})
	h.aeus[1].processGroups()
	if got := h.aeus[1].Stats().Ops; got != 0 {
		t.Fatalf("deferred lookup was executed (ops=%d)", got)
	}
	if got := h.aeus[1].Stats().Deferred; got != 1 {
		t.Fatalf("deferred = %d", got)
	}
	// Fetch flows to AEU 0; transfer comes back; deferred lookup executes
	// (requeued commands are reprocessed on the following iteration).
	h.aeus[1].Outbox().Flush()
	h.step(0)
	h.step(1)
	h.step(1)
	if got := h.aeus[1].Stats().Ops; got != 1 {
		t.Fatalf("ops after transfer = %d", got)
	}
}

func TestColumnScanSharing(t *testing.T) {
	machine, err := numasim.New(topology.SingleNode(2), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mems := mem.NewSystem(machine)
	router, err := routing.New(machine, mems, 2, routing.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a0 := New(router, mems, 0, Config{})
	a1 := New(router, mems, 1, Config{})
	RegisterPeers([]*AEU{a0, a1})
	const col routing.ObjectID = 2
	p0, err := a0.AddColumnPartition(col, colstore.Config{ChunkEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.RegisterSize(col, []uint32{0}); err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 100)
	for i := range vals {
		vals[i] = uint64(i)
	}
	p0.Col.Append(0, vals)

	var mu sync.Mutex
	got := map[uint64][]prefixtree.KV{}
	a0.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
		mu.Lock()
		got[tag] = kvs
		mu.Unlock()
	})
	// Two scans multicast from AEU 1; both must be answered from one pass.
	ob := a1.Outbox()
	ob.RouteScan(col, colstore.Predicate{Op: colstore.Less, Operand: 10}, ClientReply, 1)
	ob.RouteScan(col, colstore.Predicate{Op: colstore.Greater, Operand: 89}, ClientReply, 2)
	ob.Flush()
	router.Drain(0, a0.classify)
	a0.processGroups()
	if len(got) != 2 {
		t.Fatalf("results = %+v", got)
	}
	if got[1][0].Key != 10 { // matched count
		t.Errorf("scan 1 matched %d", got[1][0].Key)
	}
	if got[2][0].Key != 10 {
		t.Errorf("scan 2 matched %d", got[2][0].Key)
	}
	// One shared pass: column scanned once for both commands -> ops 2 but
	// partition access counter counts commands.
	if ops := a0.Stats().Ops; ops != 2 {
		t.Errorf("ops = %d", ops)
	}
}

func TestRunLoopEndToEnd(t *testing.T) {
	h := newHarness(t, topology.SingleNode(4), 4, 4000)
	// Each AEU generates uniform lookups until its virtual clock passes
	// 200 us; keys were bulk-loaded first.
	for i, a := range h.aeus {
		for k := uint64(i) * 1000; k < uint64(i+1)*1000; k++ {
			a.Partition(testObj).Tree.Upsert(a.Core, k, k, 1)
		}
	}
	// The bulk load above already advanced the virtual clocks; measure the
	// run relative to the post-load time.
	base := make([]float64, len(h.aeus))
	for i, a := range h.aeus {
		base[i] = a.ClockNS()
	}
	for i, a := range h.aeus {
		start := base[i]
		a.Generator = GeneratorFunc(func(a *AEU) bool {
			if a.ClockNS() > start+200e3 {
				return false
			}
			keys := make([]uint64, 32)
			for i := range keys {
				keys[i] = uint64(a.Rng.Int63n(4000))
			}
			a.Outbox().RouteLookup(testObj, keys, command.NoReply, 0)
			return true
		})
	}
	var wg sync.WaitGroup
	for _, a := range h.aeus {
		wg.Add(1)
		go func(a *AEU) {
			defer wg.Done()
			a.Run()
		}(a)
	}
	// Stop once every core passed the deadline plus drain slack.
	deadline := time.Now().Add(10 * time.Second)
	baseMin := h.machine.MinClock(0, 4)
	for h.machine.MinClock(0, 4) < baseMin+int64(300e6) { // +300 us in ps
		if time.Now().After(deadline) {
			t.Fatal("AEUs did not reach the virtual deadline in time")
		}
		time.Sleep(time.Millisecond)
	}
	for _, a := range h.aeus {
		a.Stop()
	}
	wg.Wait()
	var ops int64
	for _, a := range h.aeus {
		ops += a.Stats().Ops
	}
	if ops == 0 {
		t.Fatal("no operations executed")
	}
}

func TestDuplicatePartitionRejected(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	if _, err := h.aeus[0].AddIndexPartition(testObj, h.stores[0], 0, 1); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if _, err := h.aeus[0].AddColumnPartition(testObj, colstore.Config{}); err == nil {
		t.Fatal("duplicate column attach accepted")
	}
}

func TestPartitionSample(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	p := h.aeus[0].Partition(testObj)
	p.accesses.Add(10)
	p.cmdTimePS.Add(5000)
	p.cmdCount.Add(2)
	acc, mean := p.TakeSample()
	if acc != 10 || mean != 2500 {
		t.Fatalf("sample = (%d, %f)", acc, mean)
	}
	acc, mean = p.TakeSample()
	if acc != 0 || mean != 0 {
		t.Fatalf("second sample = (%d, %f)", acc, mean)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(10, 1)
	tl.Record(0.5e9, 100)
	tl.Record(0.6e9, 50)
	tl.Record(5.5e9, 10)
	tl.Record(-1, 1)   // clamps low
	tl.Record(1e12, 1) // clamps high
	if tl.Total() != 162 {
		t.Fatalf("total = %d", tl.Total())
	}
	s := tl.Series()
	if s[0] != 151 || s[5] != 10 {
		t.Fatalf("series = %v", s)
	}
	if tl.BinSec() != 1 {
		t.Fatalf("bin = %f", tl.BinSec())
	}
}
