package aeu

// Deterministic regression tests for the lost-balance recovery machinery:
// reconcile adoption marking granted-but-never-transferred ranges as
// recovering, the peer-walk repair probes that pull the orphaned tuples
// back, and the authority rules that decide which transfers may confirm a
// range. The chaos suite exercises the same paths under random faults;
// these tests pin the exact state transitions so a refactor that weakens
// one of them fails here with a readable story instead of a rare
// linearizability violation.

import (
	"sync"
	"testing"

	"eris/internal/command"
	"eris/internal/csbtree"
	"eris/internal/prefixtree"
	"eris/internal/topology"
)

// settleAll runs Settle rounds over every AEU until a full round does no
// work (or the round budget runs out — deterministic tests should converge
// in a handful of sweeps).
func (h *harness) settleAll(t *testing.T, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		busy := false
		for _, a := range h.aeus {
			if a.Settle() {
				busy = true
			}
		}
		if !busy {
			return
		}
	}
	t.Fatalf("settleAll: still busy after %d rounds", rounds)
}

// seed upserts kvs through the routing layer and lets every AEU absorb them.
func (h *harness) seed(t *testing.T, kvs []prefixtree.KV) {
	t.Helper()
	h.aeus[0].Outbox().RouteUpsert(testObj, kvs, command.NoReply, 0)
	h.aeus[0].Outbox().Flush()
	h.settleAll(t, 20)
}

// TestReconcileRepairHealsLostBalance replays the failure the chaos suite
// kept finding before the repair machinery existed: the balancer updates
// the routing table and shrinks the source, but the OpBalance granting
// [250,299] to AEU 1 is lost. AEU 1 must (a) adopt the table bounds via
// reconciliation, (b) defer lookups for the granted range instead of
// serving misses, and (c) walk its peers with probe fetches until the
// orphaned tuples are extracted from AEU 0 and linked locally.
func TestReconcileRepairHealsLostBalance(t *testing.T) {
	h := newHarness(t, topology.SingleNode(3), 3, 900)
	kvs := make([]prefixtree.KV, 0, 50)
	for k := uint64(250); k < 300; k++ {
		kvs = append(kvs, prefixtree.KV{Key: k, Value: k * 7})
	}
	h.seed(t, kvs)
	if got := h.aeus[0].Partition(testObj).Tree.Count(); got != 50 {
		t.Fatalf("seed landed %d keys on aeu0, want 50", got)
	}

	var mu sync.Mutex
	var results []prefixtree.KV
	for _, a := range h.aeus {
		a.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
			mu.Lock()
			results = append(results, kvs...)
			mu.Unlock()
		})
	}

	// The balancer's view: [250,299] moves from AEU 0 to AEU 1. Tables
	// update first, the source processes its shrink, and the target's
	// OpBalance (with the fetch list) is eaten by a fault.
	if err := h.router.UpdateRange(testObj, []csbtree.Entry{
		{Low: 0, Owner: 0}, {Low: 250, Owner: 1}, {Low: 600, Owner: 2},
	}); err != nil {
		t.Fatal(err)
	}
	h.aeus[0].handleBalance(command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: 0,
		Balance: &command.Balance{Epoch: 1, NewLo: 0, NewHi: 249},
	})

	// Reconciliation needs two sweeps observing the same table bounds
	// before adopting; run them one at a time so we can catch the moment
	// the recovering range exists but no probe answered yet.
	a1 := h.aeus[1]
	for i := 0; i < 10 && len(a1.recovering) == 0; i++ {
		a1.Settle()
	}
	if len(a1.recovering) != 1 {
		t.Fatalf("recovering = %+v, want one entry after adoption", a1.recovering)
	}
	if r := a1.recovering[0]; r.lo != 250 || r.hi != 299 || r.from != 0 {
		t.Fatalf("recovering = %+v, want [250,299] from aeu0", r)
	}
	if p := a1.Partition(testObj); p.Lo != 250 || p.Hi != 599 {
		t.Fatalf("aeu1 bounds [%d,%d], want adopted [250,599]", p.Lo, p.Hi)
	}

	// A lookup for the recovering range must be deferred, not answered
	// from the still-empty tree.
	a1.Outbox().RouteLookup(testObj, []uint64{260}, ClientReply, 1)
	a1.Outbox().Flush()
	a1.Settle()
	mu.Lock()
	if len(results) != 0 {
		t.Fatalf("lookup answered during recovery: %+v", results)
	}
	mu.Unlock()

	// Let the probe walk run: AEU 0's bounds no longer cover the range, so
	// its transfer is non-authoritative; the walk must still complete (all
	// peers probed, all payloads landed) and then release the deferred
	// lookup.
	h.settleAll(t, 50)
	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 || results[0].Key != 260 || results[0].Value != 260*7 {
		t.Fatalf("deferred lookup results = %+v, want key 260 value %d", results, 260*7)
	}
	if len(a1.recovering) != 0 {
		t.Fatalf("recovering not cleared: %+v", a1.recovering)
	}
	if got := a1.repairs.Load(); got != 1 {
		t.Fatalf("repairs counter = %d, want 1", got)
	}
	if got := a1.Partition(testObj).Tree.Count(); got != 50 {
		t.Fatalf("aeu1 tree count = %d, want the 50 repaired keys", got)
	}
	if got := h.aeus[0].Partition(testObj).Tree.Count(); got != 0 {
		t.Fatalf("aeu0 still holds %d orphaned keys", got)
	}
}

// TestRepairWalkFindsMisattributedOrphans pins the walk part of the repair:
// the recovering entry's recorded holder is wrong (AEU 0), the data sits at
// AEU 2, and the probe walk must reach it anyway instead of trusting the
// first empty answer.
func TestRepairWalkFindsMisattributedOrphans(t *testing.T) {
	h := newHarness(t, topology.SingleNode(3), 3, 900)
	kvs := make([]prefixtree.KV, 0, 50)
	for k := uint64(600); k < 650; k++ {
		kvs = append(kvs, prefixtree.KV{Key: k, Value: k + 1})
	}
	h.seed(t, kvs)

	// [600,649] now belongs to AEU 1 per the tables and AEU 1's bounds, but
	// the tuples never moved: AEU 2 shrank past them (its balance applied)
	// while AEU 1's fetch was lost, and the recovering entry blames the
	// wrong peer.
	if err := h.router.UpdateRange(testObj, []csbtree.Entry{
		{Low: 0, Owner: 0}, {Low: 300, Owner: 1}, {Low: 650, Owner: 2},
	}); err != nil {
		t.Fatal(err)
	}
	a1, a2 := h.aeus[1], h.aeus[2]
	a1.Partition(testObj).Hi = 649
	a2.Partition(testObj).Lo = 650
	a1.recovering = append(a1.recovering, recRange{obj: testObj, lo: 600, hi: 649, from: 0})

	h.settleAll(t, 50)
	if len(a1.recovering) != 0 {
		t.Fatalf("recovering not cleared: %+v", a1.recovering)
	}
	if got := a1.Partition(testObj).Tree.Count(); got != 50 {
		t.Fatalf("aeu1 tree count = %d, want 50 repaired keys", got)
	}
	if got := a2.Partition(testObj).Tree.Count(); got != 0 {
		t.Fatalf("aeu2 still holds %d orphaned keys", got)
	}
}

// TestTransferAuthorityRespectsHoles pins the authority rule for transfers
// served against pre-shrink bounds: a fetch tagged with the current balance
// epoch is trusted when the old bounds covered it — unless the range was
// itself still recovering when that balance arrived. Bounds that claim data
// which never arrived must not mint an authoritative (possibly empty)
// transfer, or the hole propagates to the next owner as settled state.
func TestTransferAuthorityRespectsHoles(t *testing.T) {
	h := newHarness(t, topology.SingleNode(3), 3, 900)
	a1, a2 := h.aeus[1], h.aeus[2]

	// AEU 1 owns [300,599] but [400,449] is a hole: granted by an earlier
	// cycle, data never arrived, repair still in flight.
	a1.recovering = append(a1.recovering, recRange{obj: testObj, lo: 400, hi: 449, from: 0})
	a1.handleBalance(command.Command{
		Op: command.OpBalance, Object: uint32(testObj), Source: 1,
		Balance: &command.Balance{Epoch: 7, NewLo: 500, NewHi: 599},
	})
	p := a1.Partition(testObj)
	if p.prevLo != 300 || p.prevHi != 599 || p.prevEpoch != 7 {
		t.Fatalf("prev bounds [%d,%d] epoch %d, want [300,599] epoch 7", p.prevLo, p.prevHi, p.prevEpoch)
	}
	if len(p.prevHoles) != 1 {
		t.Fatalf("prevHoles = %+v, want the recovering range snapshot", p.prevHoles)
	}
	if len(a1.recovering) != 0 {
		t.Fatalf("recovering = %+v, want pruned after shrink past it", a1.recovering)
	}

	// Epoch-7 fetch of the hole: pre-shrink bounds covered it, but the
	// snapshot says the data never arrived — must be non-authoritative.
	a1.handleFetch(command.Command{
		Op: command.OpFetch, Object: uint32(testObj), Source: 2, Tag: 7,
		Fetch: &command.Fetch{From: 1, Lo: 400, Hi: 449},
	})
	// Epoch-7 fetch of a hole-free part of the pre-shrink bounds: the
	// normal handover path, authoritative.
	a1.handleFetch(command.Command{
		Op: command.OpFetch, Object: uint32(testObj), Source: 2, Tag: 7,
		Fetch: &command.Fetch{From: 1, Lo: 300, Hi: 399},
	})
	// Zero-epoch probe of the same range: repair fetches never claim
	// authority from pre-shrink bounds.
	a1.handleFetch(command.Command{
		Op: command.OpFetch, Object: uint32(testObj), Source: 2, Tag: 0,
		Fetch: &command.Fetch{From: 1, Lo: 300, Hi: 399},
	})

	a2.mailMu.Lock()
	defer a2.mailMu.Unlock()
	if len(a2.mail) != 3 {
		t.Fatalf("aeu2 received %d transfers, want 3", len(a2.mail))
	}
	if a2.mail[0].auth {
		t.Fatal("transfer over a recovering hole marked authoritative")
	}
	if !a2.mail[1].auth {
		t.Fatal("pre-shrink-bounds transfer of the current epoch not authoritative")
	}
	if a2.mail[2].auth {
		t.Fatal("zero-epoch probe transfer marked authoritative")
	}
}

// TestNonAuthTransferDoesNotConfirm pins receive-side authority handling: a
// non-authoritative transfer links its payload (duplicate-safe) and counts
// as a probe acknowledgement, but must not clear the recovering range — only
// an authoritative transfer or walk exhaustion may do that.
func TestNonAuthTransferDoesNotConfirm(t *testing.T) {
	h := newHarness(t, topology.SingleNode(3), 3, 900)
	a1 := h.aeus[1]
	a1.recovering = append(a1.recovering, recRange{obj: testObj, lo: 400, hi: 449, from: 0, tries: 1})

	a1.deliverTransfer(transfer{obj: testObj, from: 0, lo: 400, hi: 449})
	a1.receiveTransfers()
	if len(a1.recovering) != 1 {
		t.Fatalf("recovering = %+v, want entry kept after non-auth transfer", a1.recovering)
	}
	if r := a1.recovering[0]; r.acks != 1 {
		t.Fatalf("acks = %d, want 1 (probe answered)", r.acks)
	}

	a1.deliverTransfer(transfer{obj: testObj, from: 0, lo: 400, hi: 449, auth: true})
	a1.receiveTransfers()
	if len(a1.recovering) != 0 {
		t.Fatalf("recovering = %+v, want cleared by authoritative transfer", a1.recovering)
	}
}

// TestPruneRecoveringTrimsToBounds pins the bounds prune: entries outside
// newly adopted bounds are dropped (their keys forward to the new owner),
// intersecting entries are trimmed and restart their walk.
func TestPruneRecoveringTrimsToBounds(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a0 := h.aeus[0]
	a0.recovering = append(a0.recovering,
		recRange{obj: testObj, lo: 100, hi: 199, from: 1, tries: 2, acks: 1},
		recRange{obj: testObj, lo: 700, hi: 799, from: 1},
	)
	a0.pruneRecovering(testObj, 150, 499)
	if len(a0.recovering) != 1 {
		t.Fatalf("recovering = %+v, want one trimmed entry", a0.recovering)
	}
	r := a0.recovering[0]
	if r.lo != 150 || r.hi != 199 {
		t.Fatalf("trimmed to [%d,%d], want [150,199]", r.lo, r.hi)
	}
	if r.tries != 0 || r.acks != 0 {
		t.Fatalf("walk counters not reset on trim: %+v", r)
	}
}
