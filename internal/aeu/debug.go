package aeu

// Balance-path debug tracing, enabled with ERIS_DEBUG_BALANCE=1. Meant for
// chasing fault-injection bugs: every ownership-changing event (balance
// commands, fetches, transfers, abandons, reconciliation, repairs) is
// stamped to stderr with a nanosecond clock so a failing history can be
// aligned with the control-plane timeline.

import (
	"fmt"
	"os"
	"time"
)

var debugBal = os.Getenv("ERIS_DEBUG_BALANCE") != ""

var debugEpoch = time.Now()

func dbg(format string, args ...any) {
	if !debugBal {
		return
	}
	fmt.Fprintf(os.Stderr, "%12.6f "+format+"\n",
		append([]any{time.Since(debugEpoch).Seconds()}, args...)...)
}
