package aeu

import "sync/atomic"

// Timeline bins completed operations by virtual time, producing the
// throughput-over-time series of the Figure 13 load balancer experiments.
// All AEUs share one Timeline; recording is atomic.
type Timeline struct {
	binNS    float64
	originNS float64
	bins     []atomic.Int64
}

// NewTimeline creates a timeline of spanSec seconds with binSec buckets.
func NewTimeline(spanSec, binSec float64) *Timeline {
	n := int(spanSec/binSec) + 2
	return &Timeline{binNS: binSec * 1e9, bins: make([]atomic.Int64, n)}
}

// SetOrigin makes subsequent Record calls relative to originNS of virtual
// time (the moment the measured run starts, excluding the load phase).
func (tl *Timeline) SetOrigin(originNS float64) { tl.originNS = originNS }

// Record adds n completed operations at virtual time tNS.
//
//eris:hotpath
func (tl *Timeline) Record(tNS float64, n int64) {
	idx := int((tNS - tl.originNS) / tl.binNS)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tl.bins) {
		idx = len(tl.bins) - 1
	}
	tl.bins[idx].Add(n)
}

// BinSec returns the bucket width in seconds.
func (tl *Timeline) BinSec() float64 { return tl.binNS / 1e9 }

// Series returns throughput (ops/s) per bucket.
func (tl *Timeline) Series() []float64 {
	out := make([]float64, len(tl.bins))
	for i := range tl.bins {
		out[i] = float64(tl.bins[i].Load()) / (tl.binNS / 1e9)
	}
	return out
}

// Total returns all recorded operations.
func (tl *Timeline) Total() int64 {
	var sum int64
	for i := range tl.bins {
		sum += tl.bins[i].Load()
	}
	return sum
}
