package aeu

// AEU hot-path microbenchmarks (run with -benchmem): the drain→classify→
// process path for a coalesced lookup group, and the full round-robin
// lookup loop across four AEUs. Both use NoReply commands so the numbers
// isolate the serving path (replies are covered by the routing benches).

import (
	"testing"

	"eris/internal/command"
	"eris/internal/prefixtree"
	"eris/internal/topology"
)

// benchHarness preloads every fourth key of the domain so lookups hit a
// populated index.
func benchHarness(b *testing.B, n int, domain uint64) *harness {
	b.Helper()
	h := newHarness(b, topology.SingleNode(n), n, domain)
	for _, a := range h.aeus {
		p := a.Partition(testObj)
		for k := p.Lo; k <= p.Hi; k += 4 {
			p.Tree.Upsert(a.Core, k, k*3, 1)
		}
	}
	return h
}

// BenchmarkDrainClassifyLookup64 measures one producer→consumer hop: AEU 1
// routes a 64-key batch that lands entirely in AEU 0's partition; AEU 0
// drains, classifies and processes the group.
func BenchmarkDrainClassifyLookup64(b *testing.B) {
	h := benchHarness(b, 2, 1<<14)
	src := h.aeus[1].Outbox()
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i*61) % (1 << 13) // all owned by AEU 0
	}
	a0 := h.aeus[0]
	for i := 0; i < 16; i++ { // warm buffers and scratch
		src.RouteLookup(testObj, keys, command.NoReply, 0)
		src.Flush()
		h.router.Drain(a0.ID, a0.classify)
		a0.processGroups()
	}
	b.SetBytes(64 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.RouteLookup(testObj, keys, command.NoReply, 0)
		src.Flush()
		h.router.Drain(a0.ID, a0.classify)
		a0.processGroups()
	}
}

// BenchmarkLookupLoop64x4 measures the full loop: AEU 0 routes a 64-key
// batch spanning all four partitions, then every AEU runs one synchronous
// drain+process+flush iteration.
func BenchmarkLookupLoop64x4(b *testing.B) {
	h := benchHarness(b, 4, 1<<14)
	ob := h.aeus[0].Outbox()
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i*1021) % (1 << 14)
	}
	for i := 0; i < 16; i++ {
		ob.RouteLookup(testObj, keys, command.NoReply, 0)
		ob.Flush()
		for j := range h.aeus {
			h.step(j)
		}
	}
	b.SetBytes(64 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob.RouteLookup(testObj, keys, command.NoReply, 0)
		ob.Flush()
		for j := range h.aeus {
			h.step(j)
		}
	}
}

// BenchmarkUpsertLoop64x4 is the upsert twin of BenchmarkLookupLoop64x4.
func BenchmarkUpsertLoop64x4(b *testing.B) {
	h := benchHarness(b, 4, 1<<14)
	ob := h.aeus[0].Outbox()
	kvs := make([]prefixtree.KV, 64)
	for i := range kvs {
		kvs[i] = prefixtree.KV{Key: uint64(i*1021) % (1 << 14), Value: uint64(i)}
	}
	for i := 0; i < 16; i++ {
		ob.RouteUpsert(testObj, kvs, command.NoReply, 0)
		ob.Flush()
		for j := range h.aeus {
			h.step(j)
		}
	}
	b.SetBytes(64 * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob.RouteUpsert(testObj, kvs, command.NoReply, 0)
		ob.Flush()
		for j := range h.aeus {
			h.step(j)
		}
	}
}
