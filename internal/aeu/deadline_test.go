package aeu

// Tests for command deadlines at the AEU: commands deferred across a
// rebalance cycle expire instead of retrying forever, and definitive
// failures (expiry, unserved ops) are answered, never silently dropped.

import (
	"errors"
	"testing"
	"time"

	"eris/internal/colstore"
	"eris/internal/command"
	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/prefixtree"
	"eris/internal/routing"
	"eris/internal/topology"
)

type capturedResult struct {
	tag      uint64
	answered int
	err      error
}

// captureResults installs a client callback on a and returns the capture
// slice pointer.
func captureResults(a *AEU) *[]capturedResult {
	var got []capturedResult
	a.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
		got = append(got, capturedResult{tag: tag, answered: answered, err: err})
	})
	return &got
}

// pendBalance grants AEU a the range [400,499] whose data never arrives,
// so commands for it are deferred indefinitely.
func pendBalance(a *AEU) {
	a.handleBalance(command.Command{
		Op: command.OpBalance, Object: uint32(testObj),
		Balance: &command.Balance{
			Epoch: 3, NewLo: 400, NewHi: 999,
			Fetches: []command.Fetch{{From: 0, Lo: 400, Hi: 499}},
		},
	})
}

// TestDeferredCommandExpiresOnSweep parks a deadline-carrying lookup in
// the deferred queue behind a transfer that never completes; the periodic
// sweep must answer it with ErrExpired instead of leaving the client
// waiting on the wedged epoch.
func TestDeferredCommandExpiresOnSweep(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a1 := h.aeus[1]
	got := captureResults(a1)
	pendBalance(a1)

	past := uint64(time.Now().Add(-time.Millisecond).UnixNano())
	a1.classify(command.Command{
		Op: command.OpLookup, Object: uint32(testObj), Source: 1,
		ReplyTo: ClientReply, Tag: 9, Keys: []uint64{450, 460}, Deadline: past,
	})
	a1.processGroups()
	if len(a1.deferred) != 1 {
		t.Fatalf("deferred = %d, want 1", len(a1.deferred))
	}
	if d := a1.deferred[0].Deadline; d != past {
		t.Fatalf("deferred command lost its deadline: %d, want %d", d, past)
	}

	a1.expireDeferred()
	if len(a1.deferred) != 0 {
		t.Fatalf("expired command still deferred: %d", len(a1.deferred))
	}
	if len(*got) != 1 {
		t.Fatalf("results = %+v", *got)
	}
	r := (*got)[0]
	if r.tag != 9 || r.answered != 2 || !errors.Is(r.err, ErrExpired) {
		t.Fatalf("expiry reply = %+v", r)
	}
	if n := a1.expired.Load(); n != 1 {
		t.Fatalf("aeu expired counter = %d", n)
	}
}

// TestDeferredCommandExpiresOnRequeue covers the other expiry path: the
// transfer completes, the deferred command is requeued, but its deadline
// passed while it was parked — the requeue drain must expire it rather
// than execute it.
func TestDeferredCommandExpiresOnRequeue(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a1 := h.aeus[1]
	got := captureResults(a1)
	pendBalance(a1)

	past := uint64(time.Now().Add(-time.Millisecond).UnixNano())
	a1.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 1,
		ReplyTo: ClientReply, Tag: 4, Deadline: past,
		KVs: []prefixtree.KV{{Key: 450, Value: 1}},
	})
	a1.processGroups()
	if len(a1.deferred) != 1 {
		t.Fatalf("deferred = %d, want 1", len(a1.deferred))
	}

	// The transfer lands: deferred work moves to the requeue...
	a1.Outbox().Flush()
	h.step(0)
	h.step(1)
	// ...and the drain expires it instead of applying the stale write.
	a1.drainRequeue()
	a1.processGroups()
	if len(*got) != 1 || !errors.Is((*got)[0].err, ErrExpired) {
		t.Fatalf("results = %+v", *got)
	}
	if v, ok := a1.Partition(testObj).Tree.Lookup(a1.Core, 450, 1); ok {
		t.Fatalf("expired upsert was applied: value %d", v)
	}
}

// TestLiveDeadlineSurvivesDeferral is the non-expired control: a deferred
// command whose deadline is still in the future executes normally once
// the transfer lands.
func TestLiveDeadlineSurvivesDeferral(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a1 := h.aeus[1]
	got := captureResults(a1)
	pendBalance(a1)

	future := uint64(time.Now().Add(time.Hour).UnixNano())
	a1.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 1,
		ReplyTo: ClientReply, Tag: 4, Deadline: future,
		KVs: []prefixtree.KV{{Key: 450, Value: 7}},
	})
	a1.processGroups()
	a1.expireDeferred()
	if len(a1.deferred) != 1 {
		t.Fatalf("live deferred command swept: %d", len(a1.deferred))
	}
	a1.Outbox().Flush()
	h.step(0)
	h.step(1)
	a1.drainRequeue()
	a1.processGroups()
	if len(*got) != 1 || (*got)[0].err != nil {
		t.Fatalf("results = %+v", *got)
	}
	if v, ok := a1.Partition(testObj).Tree.Lookup(a1.Core, 450, 1); !ok || v != 7 {
		t.Fatalf("deferred upsert lost: (%d,%v)", v, ok)
	}
}

// TestMixedDeadlineGroupExpiresOnlyCarriers batches two NoReply upserts
// from different sources into one coalesced group: one carries an already
// passed deadline, the other none. The group must be processed as
// per-deadline sub-batches so that, after deferral across a transfer,
// only the deadline-carrying member expires (the bug: mergeDeadline
// stamped the earliest non-zero deadline on the whole group, so the
// deadline-free write expired with it and was silently lost).
func TestMixedDeadlineGroupExpiresOnlyCarriers(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a1 := h.aeus[1]
	pendBalance(a1)

	past := uint64(time.Now().Add(-time.Millisecond).UnixNano())
	a1.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 0,
		ReplyTo: command.NoReply,
		KVs:     []prefixtree.KV{{Key: 450, Value: 7}},
	})
	a1.classify(command.Command{
		Op: command.OpUpsert, Object: uint32(testObj), Source: 1,
		ReplyTo: command.NoReply, Deadline: past,
		KVs: []prefixtree.KV{{Key: 460, Value: 9}},
	})
	// NoReply zeroes tag and source in the group key: both commands share
	// one group despite their different deadlines.
	if len(a1.order) != 1 {
		t.Fatalf("groups = %d, want 1 coalesced group", len(a1.order))
	}
	a1.processGroups()
	// Both keys sit in the pending range, but the members disagree on the
	// deadline: they must be deferred as two uniform commands, not one
	// merged one.
	if len(a1.deferred) != 2 {
		t.Fatalf("deferred = %d, want 2 per-deadline commands", len(a1.deferred))
	}

	// The transfer lands and the requeue drain runs: the deadline-free
	// write applies, the expired one is dropped and counted.
	a1.Outbox().Flush()
	h.step(0)
	h.step(1)
	a1.drainRequeue()
	a1.processGroups()
	if v, ok := a1.Partition(testObj).Tree.Lookup(a1.Core, 450, 1); !ok || v != 7 {
		t.Fatalf("deadline-free write lost to a batchmate's deadline: (%d,%v)", v, ok)
	}
	if _, ok := a1.Partition(testObj).Tree.Lookup(a1.Core, 460, 1); ok {
		t.Fatal("expired upsert was applied")
	}
	if n := a1.expired.Load(); n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
}

// TestUnknownOpAnswered sends a data command with an op this loop does not
// serve; a requester waiting on it must get an error reply instead of a
// silent drop (the bug: the default branch only counted and dropped).
func TestUnknownOpAnswered(t *testing.T) {
	h := newHarness(t, topology.SingleNode(2), 2, 1000)
	a0 := h.aeus[0]
	got := captureResults(a0)

	a0.classify(command.Command{
		Op: command.Op(200), Object: uint32(testObj), Source: 0,
		ReplyTo: ClientReply, Tag: 11, Keys: []uint64{1, 2, 3},
	})
	if len(*got) != 1 {
		t.Fatalf("results = %+v", *got)
	}
	r := (*got)[0]
	if r.tag != 11 || r.answered != 3 || r.err == nil {
		t.Fatalf("unknown-op reply = %+v", r)
	}
	if n := a0.ctrlErrors.Load(); n != 1 {
		t.Fatalf("ctrl_errors = %d", n)
	}

	// Without a reply address the drop stays silent — only the counter moves.
	a0.classify(command.Command{
		Op: command.Op(200), Object: uint32(testObj), Source: 0,
		ReplyTo: command.NoReply,
	})
	if len(*got) != 1 {
		t.Fatalf("NoReply unknown op was answered: %+v", *got)
	}
	if n := a0.ctrlErrors.Load(); n != 2 {
		t.Fatalf("ctrl_errors = %d", n)
	}
}

// TestNoCoalesceSplitsScanGroups checks the ablation switch applies to
// scans: with NoCoalesce every scan command forms its own group and runs
// its own partition pass (the bug: only lookup/upsert/delete groups were
// split, so the ablation under-reported uncoalesced scan cost).
func TestNoCoalesceSplitsScanGroups(t *testing.T) {
	for _, tc := range []struct {
		name       string
		noCoalesce bool
		wantGroups int
	}{
		{"coalesced", false, 1},
		{"split", true, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			machine, err := numasim.New(topology.SingleNode(2), numasim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			mems := mem.NewSystem(machine)
			router, err := routing.New(machine, mems, 2, routing.Config{})
			if err != nil {
				t.Fatal(err)
			}
			a0 := New(router, mems, 0, Config{NoCoalesce: tc.noCoalesce})
			a1 := New(router, mems, 1, Config{NoCoalesce: tc.noCoalesce})
			RegisterPeers([]*AEU{a0, a1})
			const col routing.ObjectID = 2
			p0, err := a0.AddColumnPartition(col, colstore.Config{ChunkEntries: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := router.RegisterSize(col, []uint32{0}); err != nil {
				t.Fatal(err)
			}
			vals := make([]uint64, 100)
			for i := range vals {
				vals[i] = uint64(i)
			}
			p0.Col.Append(0, vals)

			got := map[uint64]prefixtree.KV{}
			a0.SetClientResult(func(tag uint64, from uint32, kvs []prefixtree.KV, answered int, err error) {
				got[tag] = kvs[0]
			})
			ob := a1.Outbox()
			ob.RouteScan(col, colstore.Predicate{Op: colstore.Less, Operand: 10}, ClientReply, 1)
			ob.RouteScan(col, colstore.Predicate{Op: colstore.Greater, Operand: 89}, ClientReply, 2)
			ob.RouteScan(col, colstore.Predicate{Op: colstore.All}, ClientReply, 3)
			ob.Flush()
			router.Drain(0, a0.classify)
			if len(a0.order) != tc.wantGroups {
				t.Fatalf("scan groups = %d, want %d", len(a0.order), tc.wantGroups)
			}
			a0.processGroups()
			// Group shape must not change the answers.
			if got[1].Key != 10 || got[2].Key != 10 || got[3].Key != 100 {
				t.Fatalf("scan results = %+v", got)
			}
		})
	}
}
