package balance

import (
	"testing"

	"eris/internal/topology"
)

func TestPlanRangeFetches(t *testing.T) {
	// AEU 1 grows into [250,500) previously owned by AEUs 0 and 2.
	bounds := []uint64{0, 300, 400, 600}
	newBounds := []uint64{0, 250, 500, 600}
	plan, err := PlanRange(7, bounds, newBounds)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 7 {
		t.Errorf("epoch = %d", plan.Epoch)
	}
	// All three AEUs change bounds.
	if plan.Involved() != 3 {
		t.Fatalf("involved = %d: %+v", plan.Involved(), plan.Commands)
	}
	b0 := plan.Commands[0]
	if b0.NewLo != 0 || b0.NewHi != 249 || len(b0.Fetches) != 0 {
		t.Errorf("aeu0 = %+v", b0)
	}
	b1 := plan.Commands[1]
	if b1.NewLo != 250 || b1.NewHi != 499 {
		t.Errorf("aeu1 bounds = %+v", b1)
	}
	if len(b1.Fetches) != 2 {
		t.Fatalf("aeu1 fetches = %+v", b1.Fetches)
	}
	// Fetch [250,299] from AEU 0 and [400,499] from AEU 2.
	seen := map[uint32][2]uint64{}
	for _, f := range b1.Fetches {
		seen[f.From] = [2]uint64{f.Lo, f.Hi}
	}
	if seen[0] != [2]uint64{250, 299} || seen[2] != [2]uint64{400, 499} {
		t.Errorf("fetches = %v", seen)
	}
	b2 := plan.Commands[2]
	if b2.NewLo != 500 || b2.NewHi != 599 || len(b2.Fetches) != 0 {
		t.Errorf("aeu2 = %+v", b2)
	}
	// New routing entries ordered by AEU.
	for i, e := range plan.Entries {
		if e.Owner != uint32(i) || e.Low != newBounds[i] {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
	if plan.MovedTuplesEstimate != 150 {
		t.Errorf("moved estimate = %d", plan.MovedTuplesEstimate)
	}
}

func TestPlanRangeNoChange(t *testing.T) {
	bounds := []uint64{0, 100, 200}
	plan, err := PlanRange(1, bounds, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Involved() != 0 {
		t.Fatalf("involved = %d", plan.Involved())
	}
}

func TestPlanRangeRejectsMovedOuterBounds(t *testing.T) {
	if _, err := PlanRange(1, []uint64{0, 10, 20}, []uint64{0, 10, 30}); err == nil {
		t.Error("moved outer bound accepted")
	}
	if _, err := PlanRange(1, []uint64{0, 10, 20}, []uint64{0, 20}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPlanSizePrefersSameNode(t *testing.T) {
	// AEUs 0,1 on node 0; AEUs 2,3 on node 1. AEU 0 has surplus; AEU 1
	// (same node) and AEU 3 (remote) have deficits.
	counts := []int64{200, 0, 100, 100}
	nodes := []topology.NodeID{0, 0, 1, 1}
	plan, err := PlanSize(3, counts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// avg = 100: AEU 0 gives 100, AEU 1 needs 100. Same-node match.
	b1 := plan.Commands[1]
	if b1 == nil || len(b1.Fetches) != 1 || b1.Fetches[0].From != 0 || b1.Fetches[0].Tuples != 100 {
		t.Fatalf("plan = %+v", plan.Commands)
	}
	if plan.MovedTuplesEstimate != 100 {
		t.Errorf("moved = %d", plan.MovedTuplesEstimate)
	}
}

func TestPlanSizeCrossNodeFallback(t *testing.T) {
	// Surplus on node 0, deficit on node 1 only.
	counts := []int64{300, 100, 100, 100}
	nodes := []topology.NodeID{0, 0, 1, 1}
	plan, err := PlanSize(4, counts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// avg = 150: AEU 0 surplus 150; AEUs 1,2,3 deficit 50 each.
	totalFetched := int64(0)
	for _, b := range plan.Commands {
		for _, f := range b.Fetches {
			if f.From != 0 {
				t.Errorf("fetch from %d", f.From)
			}
			totalFetched += f.Tuples
		}
	}
	if totalFetched != 150 {
		t.Errorf("total fetched = %d", totalFetched)
	}
}

func TestPlanSizeBalanced(t *testing.T) {
	plan, err := PlanSize(1, []int64{100, 100}, []topology.NodeID{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Involved() != 0 {
		t.Errorf("balanced plan moved data: %+v", plan.Commands)
	}
	plan, err = PlanSize(1, nil, nil)
	if err != nil || plan.Involved() != 0 {
		t.Errorf("empty plan: %v %+v", err, plan)
	}
}

func TestPlanSizeRejectsBadInput(t *testing.T) {
	if _, err := PlanSize(1, []int64{1}, nil); err == nil {
		t.Error("node mismatch accepted")
	}
	if _, err := PlanSize(1, []int64{-1}, []topology.NodeID{0}); err == nil {
		t.Error("negative count accepted")
	}
}
