package balance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOneShotTargets(t *testing.T) {
	got := OneShot{}.Targets([]float64{0, 0, 4, 4, 4, 4, 0, 0})
	for _, v := range got {
		if v != 2 {
			t.Fatalf("targets = %v", got)
		}
	}
	if (OneShot{}).Name() != "One-Shot" {
		t.Error("name")
	}
}

func TestMovingAverageSmoothing(t *testing.T) {
	loads := []float64{0, 0, 4, 4, 4, 4, 0, 0} // Figure 6's skew
	ma1 := MovingAverage{Window: 1}.Targets(loads)
	// MA1 must smooth toward the neighbors but not equalize.
	if !(ma1[2] > ma1[1] && ma1[1] > 0) {
		t.Fatalf("ma1 = %v", ma1)
	}
	if almostEqual(ma1[0], ma1[3], 1e-9) {
		t.Fatalf("ma1 over-equalized: %v", ma1)
	}
	// Total load preserved.
	var sum float64
	for _, v := range ma1 {
		sum += v
	}
	if !almostEqual(sum, 16, 1e-9) {
		t.Fatalf("ma1 sum = %f", sum)
	}
}

func TestMAWideWindowEqualsOneShot(t *testing.T) {
	// The paper: MA7 on 8 partitions computes the full average.
	loads := []float64{0, 0, 4, 4, 4, 4, 0, 0}
	ma7 := MovingAverage{Window: 7}.Targets(loads)
	os := OneShot{}.Targets(loads)
	for i := range os {
		if !almostEqual(ma7[i], os[i], 1e-9) {
			t.Fatalf("MA7 %v != One-Shot %v", ma7, os)
		}
	}
}

func TestTargetsConservationProperty(t *testing.T) {
	check := func(raw []uint16, w8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			loads[i] = float64(r)
			sum += loads[i]
		}
		w := int(w8%8) + 1
		for _, alg := range []Algorithm{OneShot{}, MovingAverage{Window: w}} {
			targets := alg.Targets(loads)
			if len(targets) != len(loads) {
				return false
			}
			var tsum float64
			for _, v := range targets {
				if v < 0 {
					return false
				}
				tsum += v
			}
			if !almostEqual(tsum, sum, 1e-6*(sum+1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("uniform imbalance = %f", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Errorf("empty imbalance = %f", got)
	}
	if got := Imbalance([]float64{0, 0, 0}); got != 0 {
		t.Errorf("zero imbalance = %f", got)
	}
	// Figure 6's skew: mean 2, stddev 2 -> relative 1.
	if got := Imbalance([]float64{0, 0, 4, 4, 4, 4, 0, 0}); !almostEqual(got, 1, 1e-9) {
		t.Errorf("skewed imbalance = %f", got)
	}
}

func TestReboundEqualizesFigure6(t *testing.T) {
	// 8 partitions over [0, 800); load concentrated in partitions 2..5.
	bounds := []uint64{0, 100, 200, 300, 400, 500, 600, 700, 800}
	loads := []float64{0, 0, 4, 4, 4, 4, 0, 0}
	targets := OneShot{}.Targets(loads)
	nb, err := Rebound(bounds, loads, targets)
	if err != nil {
		t.Fatal(err)
	}
	if nb[0] != 0 || nb[8] != 800 {
		t.Fatalf("outer bounds moved: %v", nb)
	}
	// Each new partition must carry 2 units of load; the hot region
	// [200,600) carries 16 units uniformly (0.04/key), so interior
	// boundaries should divide it into 50-key slices.
	want := []uint64{0, 250, 300, 350, 400, 450, 500, 550, 800}
	for i, b := range nb {
		if b != want[i] {
			t.Fatalf("bounds = %v, want %v", nb, want)
		}
	}
}

func TestReboundNoLoadNoChange(t *testing.T) {
	bounds := []uint64{0, 10, 20, 30}
	nb, err := Rebound(bounds, []float64{0, 0, 0}, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bounds {
		if nb[i] != bounds[i] {
			t.Fatalf("bounds changed: %v", nb)
		}
	}
}

func TestReboundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(nRaw uint8, wRaw uint8) bool {
		n := int(nRaw%12) + 2
		domain := uint64(n) * 1000
		bounds := make([]uint64, n+1)
		for i := range bounds {
			bounds[i] = uint64(i) * 1000
		}
		bounds[n] = domain
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = float64(rng.Intn(100))
		}
		var alg Algorithm = OneShot{}
		if wRaw%2 == 0 {
			alg = MovingAverage{Window: int(wRaw%4) + 1}
		}
		nb, err := Rebound(bounds, loads, alg.Targets(loads))
		if err != nil {
			return false
		}
		// Invariants: outer bounds fixed, strictly increasing, inside domain.
		if nb[0] != 0 || nb[n] != domain {
			return false
		}
		for i := 1; i <= n; i++ {
			if nb[i] <= nb[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReboundRejectsBadInput(t *testing.T) {
	if _, err := Rebound([]uint64{0, 10}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("bound/load mismatch accepted")
	}
	if _, err := Rebound([]uint64{0, 10, 20}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("target mismatch accepted")
	}
	if _, err := Rebound([]uint64{0, 10, 20}, []float64{-1, 2}, []float64{1, 0}); err == nil {
		t.Error("negative load accepted")
	}
}

func TestReboundOneShotThenBalanced(t *testing.T) {
	// After a One-Shot rebound, re-measuring with the same underlying key
	// distribution (uniform within old partitions) must yield near-zero
	// imbalance: compute the load each new partition would receive.
	bounds := []uint64{0, 100, 200, 300, 400}
	loads := []float64{10, 0, 0, 30}
	nb, err := Rebound(bounds, loads, OneShot{}.Targets(loads))
	if err != nil {
		t.Fatal(err)
	}
	density := func(key uint64) float64 {
		for i := 0; i < len(loads); i++ {
			if key >= bounds[i] && key < bounds[i+1] {
				return loads[i] / float64(bounds[i+1]-bounds[i])
			}
		}
		return 0
	}
	newLoads := make([]float64, len(loads))
	for i := 0; i < len(newLoads); i++ {
		for k := nb[i]; k < nb[i+1]; k++ {
			newLoads[i] += density(k)
		}
	}
	if imb := Imbalance(newLoads); imb > 0.05 {
		t.Fatalf("imbalance after One-Shot = %f (loads %v, bounds %v)", imb, newLoads, nb)
	}
}
