package balance

import (
	"strings"
	"testing"
	"time"

	"eris/internal/csbtree"
	"eris/internal/faults"
	"eris/internal/mem"
	"eris/internal/numasim"
	"eris/internal/routing"
	"eris/internal/topology"
)

// TestFaultPlanErrorAborts drives evaluate against a routing table whose
// ownership order was corrupted: the cycle must abort (counted, recorded
// with the planning error), back off exponentially, and count the retry —
// never panic.
func TestFaultPlanErrorAborts(t *testing.T) {
	r := newRig(t, 2, 2000, routing.RangePartitioned)
	r.bal.Watch(testObj, 2000, AccessFrequency, OneShot{})
	// Swap the owners (Lows stay sorted, so the table itself builds fine);
	// range planning requires ordered ownership and must reject this.
	bad := []csbtree.Entry{{Low: 0, Owner: 1}, {Low: 1000, Owner: 0}}
	if err := r.router.UpdateRange(testObj, bad); err != nil {
		t.Fatal(err)
	}
	w := &r.bal.watched[0]
	interval := r.bal.cfg.SampleIntervalSec

	pAccesses(r.aeus[0].Partition(testObj), 100)
	r.bal.evaluate(w, 1.0)

	cycles := r.bal.Cycles()
	if len(cycles) != 1 || cycles[0].Outcome != Aborted {
		t.Fatalf("cycles after plan failure = %+v", cycles)
	}
	if !strings.Contains(cycles[0].Err, "ordered ownership") {
		t.Fatalf("abort error = %q", cycles[0].Err)
	}
	if got := r.bal.aborted.Load(); got != 1 {
		t.Fatalf("balance.aborted = %d", got)
	}
	if w.failStreak != 1 || w.backoffUntil <= 1.0 {
		t.Fatalf("backoff state = streak %d until %g", w.failStreak, w.backoffUntil)
	}

	// Within the backoff window the object is not evaluated at all.
	evals := r.bal.evaluated.Load()
	pAccesses(r.aeus[0].Partition(testObj), 100)
	r.bal.evaluate(w, 1.0+interval/2)
	if got := r.bal.evaluated.Load(); got != evals {
		t.Fatalf("evaluated during backoff: %d -> %d", evals, got)
	}

	// After the backoff expires the retry is counted, fails again, and the
	// backoff doubles.
	r.bal.evaluate(w, w.backoffUntil)
	if got := r.bal.retries.Load(); got != 1 {
		t.Fatalf("balance.retries = %d", got)
	}
	if got := r.bal.aborted.Load(); got != 2 {
		t.Fatalf("balance.aborted after retry = %d", got)
	}
	if w.failStreak != 2 {
		t.Fatalf("failStreak after second abort = %d", w.failStreak)
	}

	// A long streak is capped at backoffCapIntervals sampling windows.
	w.failStreak = 40
	r.bal.backoff(w, 5.0)
	if want := 5.0 + backoffCapIntervals*interval; w.backoffUntil != want {
		t.Fatalf("capped backoff = %g, want %g", w.backoffUntil, want)
	}
}

// TestFaultWaitAcksStaleTimeoutStopped exercises the three non-happy exits
// of the ack wait: a stale ack from a timed-out predecessor cycle is counted
// and discarded (it must never satisfy the current wait), an expired wait
// reports TimedOut, and a stopped balancer reports Stopped.
func TestFaultWaitAcksStaleTimeoutStopped(t *testing.T) {
	r := newRig(t, 2, 2000, routing.RangePartitioned)
	b := New(r.router, r.aeus, Config{AckTimeout: 20 * time.Millisecond})

	b.Ack(1, testObj, 3) // straggler from an older epoch
	b.Ack(0, testObj, 7)
	outcome, got := b.waitAcks(7, 1)
	if outcome != Completed || got != 1 {
		t.Fatalf("waitAcks = %v, %d", outcome, got)
	}
	if st := b.acksStale.Load(); st != 1 {
		t.Fatalf("balance.acks_stale = %d", st)
	}

	if outcome, got = b.waitAcks(9, 1); outcome != TimedOut || got != 0 {
		t.Fatalf("timed-out waitAcks = %v, %d", outcome, got)
	}

	close(b.stopCh)
	if outcome, _ = b.waitAcks(9, 1); outcome != Stopped {
		t.Fatalf("stopped waitAcks = %v", outcome)
	}
}

// TestFaultDropAckCounted arms the DropAck injection and checks that a
// dropped epoch acknowledgement is counted instead of silently lost, and
// that delivery resumes once the rule's limit is exhausted.
func TestFaultDropAckCounted(t *testing.T) {
	machine, err := numasim.New(topology.SingleNode(2), numasim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(7)
	router, err := routing.New(machine, mem.NewSystem(machine), 2, routing.Config{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	b := New(router, nil, Config{})

	inj.Arm(faults.DropAck, faults.Rule{Every: 1, Limit: 1})
	b.Ack(0, testObj, 1)
	if b.acksDropped.Load() != 1 || len(b.acks) != 0 {
		t.Fatalf("ack not dropped: dropped=%d queued=%d", b.acksDropped.Load(), len(b.acks))
	}
	b.Ack(0, testObj, 1)
	if len(b.acks) != 1 {
		t.Fatalf("ack after limit not delivered: queued=%d", len(b.acks))
	}
	if inj.Injected(faults.DropAck) != 1 {
		t.Fatalf("faults.injected = %d", inj.Injected(faults.DropAck))
	}
}

// TestFaultSamplingWindowNoDrift pins the drift fix in Run: the next window
// is advanced from the scheduled time, not from the clock after the
// evaluation, so a late evaluation keeps the sampling grid. The AEU
// goroutines are not started, so virtual time moves only when the test
// advances it: after evaluating at 1.5 intervals the next window is the 2.0
// grid point — the old drifting scheduler would have waited until 2.5.
func TestFaultSamplingWindowNoDrift(t *testing.T) {
	r := newRig(t, 2, 2000, routing.RangePartitioned)
	r.bal.Watch(testObj, 2000, AccessFrequency, OneShot{})
	go r.bal.Run()
	defer r.bal.Stop()
	time.Sleep(50 * time.Millisecond) // let Run latch its first schedule at ~0

	intervalNS := r.bal.cfg.SampleIntervalSec * 1e9
	advance := func(ns float64) {
		for c := 0; c < 2; c++ {
			r.machine.AdvanceNS(topology.CoreID(c), ns)
		}
	}
	waitEvals := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for r.bal.evaluated.Load() < n {
			if time.Now().After(deadline) {
				t.Fatalf("evaluations stuck at %d, want %d", r.bal.evaluated.Load(), n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	advance(1.5 * intervalNS) // clock 1.5 I: first window (1.0 I) fires late
	waitEvals(1)
	advance(0.6 * intervalNS) // clock 2.1 I: the kept grid fires at 2.0 I
	waitEvals(2)
}
